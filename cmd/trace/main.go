// Command trace renders timing diagrams of two-writer register runs in
// the style of the paper's Figures 3 and 4.
//
// Usage:
//
//	trace -scenario slowreader   # the Figure 4 situation, actually executed
//	trace -scenario crash        # a writer crash mid-protocol
//	trace -scenario random -seed 7
//	trace -scenario lemma2       # the paper's Figure 3 (impossible; annotated)
//	trace -scenario lemma4       # the paper's Figure 4 (impossible; annotated)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/proof"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

var explain = flag.Bool("explain", false, "also print the certified linearization, operation by operation")

func run() error {
	scenario := flag.String("scenario", "slowreader", "slowreader | crash | random | lemma2 | lemma4")
	seed := flag.Int64("seed", 1, "seed for -scenario random")
	flag.Parse()

	switch *scenario {
	case "lemma2":
		fmt.Println(trace.Figure3())
		return nil
	case "lemma4":
		fmt.Println(trace.Figure4())
		return nil
	case "slowreader":
		return slowReader()
	case "crash":
		return crash()
	case "random":
		return random(*seed)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
}

func render(tr core.Trace[int]) error {
	lin, err := proof.Certify(tr)
	if err != nil {
		return err
	}
	d := trace.Build(tr)
	trace.AttachPoints(d, lin)
	fmt.Println(d.Render())
	fmt.Println(trace.Legend)
	fmt.Printf("\ncertified atomic: %d potent + %d impotent writes, "+
		"%d/%d/%d reads of potent/impotent/initial\n",
		lin.Report.PotentWrites, lin.Report.ImpotentWrites,
		lin.Report.ReadsOfPotent, lin.Report.ReadsOfImp, lin.Report.ReadsOfInitial)
	for w, pf := range lin.Report.Prefinisher {
		fmt.Printf("impotent write op %d is prefinished by op %d\n", w, pf)
	}
	if *explain {
		fmt.Println()
		fmt.Print(proof.Explain(lin))
	}
	return nil
}

func slowReader() error {
	fmt.Println("slow reader (the Figure 4 situation, executed for real):")
	fmt.Println("the reader samples both tags, sleeps through Wr1 prefinishing Wr0's")
	fmt.Println("write, and legally returns the impotent write's value.")
	fmt.Println()
	cfg := sched.Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	res, err := sched.RunScript(cfg, sched.Faithful, []int{2, 2, 0, 1, 1, 0, 2})
	if err != nil {
		return err
	}
	return render(res.Trace)
}

func crash() error {
	fmt.Println("writer crash mid-protocol: Wr1 halts after its real read; the write")
	fmt.Println("never takes effect and nobody else is disturbed (Section 5).")
	fmt.Println()
	tw := core.New(1, 0, core.WithRecording[int]())
	tw.Writer(0).Write(100)
	tw.Writer(1).WriteCrashing(200, 1)
	_ = tw.Reader(1).Read()
	tw.Writer(0).Write(101)
	_ = tw.Reader(1).Read()
	d := trace.Build(tw.Recorder().Trace(0))
	fmt.Println(d.Render())
	fmt.Println(trace.Legend)
	lin, err := proof.Certify(tw.Recorder().Trace(0))
	if err != nil {
		return err
	}
	fmt.Printf("\ncertified atomic; %d crashed write dropped (it never performed its real write)\n",
		lin.Report.DroppedWrites)
	return nil
}

func random(seed int64) error {
	fmt.Printf("random interleaving (seed %d):\n\n", seed)
	cfg := sched.Config{Writes: [2]int{2, 2}, Readers: []int{2}}
	var out *sched.Result
	err := sched.Sample(cfg, sched.Faithful, 1, seed, func(r *sched.Result) error {
		out = r
		return nil
	})
	if err != nil {
		return err
	}
	return render(out.Trace)
}
