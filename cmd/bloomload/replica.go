package main

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/loadgen"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/replica"
)

// minReplicaSpeedup is the self-gate floor recorded into
// BENCH_replica_load.json: the quorum engine's closed-loop peak must be
// at least this multiple of the PR 9 per-op-goroutine client's on the
// identical workload. bloombench -replica enforces it; bloomload records
// the measurement next to the floor so the artifact is self-describing.
const minReplicaSpeedup = 2.0

// startReplicaCluster hosts m in-process replica servers.
func startReplicaCluster(m int) ([]string, func(), error) {
	var addrs []string
	var servers []*netreg.Server
	closeAll := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	for i := 0; i < m; i++ {
		st, err := netreg.NewStore("v0", 1, new(history.Sequencer))
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		srv, err := netreg.Serve("127.0.0.1:0", st)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, closeAll, nil
}

// runReplica is bloomload's -replica mode: the cluster load generator
// over an in-process replicated register. It sweeps the engine's
// saturation curve, probes every protocol variant's peak with its
// rounds/op and combining accounting, probes the legacy client as the
// speedup baseline, and (with -json) writes BENCH_replica_load.json.
func runReplica(cfg loadgen.ClusterConfig, mode replica.Mode, fracs []float64, singleRate float64, jsonOut bool) error {
	addrs, closeAll, err := startReplicaCluster(len(cfg.Addrs))
	if err != nil {
		return err
	}
	defer closeAll()
	cfg.Addrs = addrs
	cfg.Mode = mode
	fmt.Printf("in-process %d-replica cluster, %d clients x depth %d, %.0f%% reads, %dB values\n\n",
		len(addrs), cfg.Clients, cfg.Depth, cfg.ReadFrac*100, cfg.ValueBytes)

	var steps []loadgen.Result
	if singleRate > 0 {
		stepCfg := cfg
		stepCfg.Rate = singleRate
		r, err := loadgen.RunCluster(stepCfg)
		if err != nil {
			return err
		}
		r.Name = "single"
		steps = []loadgen.Result{r}
	} else {
		if steps, err = loadgen.SweepCluster(cfg, fracs); err != nil {
			return err
		}
	}

	fmt.Printf("== %s saturation curve (engine) ==\n\n", mode)
	fmt.Printf("%-10s %-13s %-13s %-9s %-10s %-10s %s\n",
		"step", "offered/s", "achieved/s", "backlog", "p50 us", "p99 us", "p999 us")
	var enginePeak float64
	for _, s := range steps {
		if s.Load.AchievedPS > enginePeak {
			enginePeak = s.Load.AchievedPS
		}
		fmt.Printf("%-10s %-13.0f %-13.0f %-9.3f %-10.1f %-10.1f %.1f\n",
			s.Name, s.Load.OfferedPS, s.Load.AchievedPS, s.Load.BacklogFrac,
			s.P50Us, s.P99Us, s.P999Us)
	}

	// Per-mode closed-loop probes: the protocol comparison with the
	// accounting that explains it.
	fmt.Printf("\n== protocol variants (closed-loop probes, engine) ==\n\n")
	fmt.Printf("%-8s %-13s %-10s %-12s %-14s %s\n",
		"mode", "ops/sec", "p99 us", "read rds/op", "combined frac", "elided")
	var modeRows []loadgen.ReplicaModeRow
	for _, m := range []replica.Mode{replica.ModeABD, replica.ModeFast, replica.ModeFrugal} {
		row, err := probeReplicaMode(cfg, m, false)
		if err != nil {
			return fmt.Errorf("probing %s: %w", m, err)
		}
		modeRows = append(modeRows, row)
		fmt.Printf("%-8s %-13.0f %-10.1f %-12.2f %-14.3f %d\n",
			row.Mode, row.OpsPerSec, row.P99Us, row.ReadRoundsPerOp, row.CombinedFrac, row.ElidedReads)
	}

	// The tentpole comparison: engine vs the PR 9 per-op-goroutine
	// client, identical workload, closed loop.
	legacyRow, err := probeReplicaMode(cfg, mode, true)
	if err != nil {
		return fmt.Errorf("probing legacy: %w", err)
	}
	engineProbe := steps[0].Load.AchievedPS
	if singleRate > 0 {
		engineProbe = enginePeak
	}
	speedup := 0.0
	if legacyRow.OpsPerSec > 0 {
		speedup = engineProbe / legacyRow.OpsPerSec
	}
	fmt.Printf("\n== engine vs legacy (%s, closed loop) ==\n\n", mode)
	fmt.Printf("%-8s %-13s %s\n", "client", "ops/sec", "p99 us")
	fmt.Printf("%-8s %-13.0f %.1f\n", "engine", engineProbe, steps[0].P99Us)
	fmt.Printf("%-8s %-13.0f %.1f\n", "legacy", legacyRow.OpsPerSec, legacyRow.P99Us)
	fmt.Printf("\nengine speedup: %.2fx (gate floor %.1fx, enforced by bloombench -replica)\n",
		speedup, minReplicaSpeedup)

	if !jsonOut {
		return nil
	}
	doc := loadgen.ReplicaLoadDoc{
		Replicas:     len(addrs),
		Clients:      cfg.Clients,
		Depth:        cfg.Depth,
		ReadFrac:     cfg.ReadFrac,
		ValueBytes:   cfg.ValueBytes,
		DurationSecs: cfg.Duration.Seconds(),
		EnginePeak:   engineProbe,
		LegacyPeak:   legacyRow.OpsPerSec,
		Speedup:      speedup,
		MinSpeedup:   minReplicaSpeedup,
		Modes:        modeRows,
		Sweep:        steps,
	}
	if err := doc.WriteFile("BENCH_replica_load.json"); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_replica_load.json")
	return nil
}

// probeReplicaMode runs one closed-loop probe against a fresh cluster in
// the given mode (engine or legacy), returning the row with its quorum
// accounting.
func probeReplicaMode(cfg loadgen.ClusterConfig, mode replica.Mode, legacy bool) (loadgen.ReplicaModeRow, error) {
	addrs, closeAll, err := startReplicaCluster(len(cfg.Addrs))
	if err != nil {
		return loadgen.ReplicaModeRow{}, err
	}
	defer closeAll()
	tally := obs.NewReplica(len(addrs))
	cfg.Addrs = addrs
	cfg.Mode = mode
	cfg.Rate = 0
	cfg.Legacy = legacy
	cfg.Tally = tally
	r, err := loadgen.RunCluster(cfg)
	if err != nil {
		return loadgen.ReplicaModeRow{}, err
	}
	row := loadgen.ReplicaModeRow{
		Mode:        mode.String(),
		OpsPerSec:   r.Load.AchievedPS,
		P99Us:       r.P99Us,
		ElidedReads: tally.Elided(obs.QRead),
	}
	if legacy {
		row.Mode = mode.String() + "-legacy"
	}
	if ok := tally.Ok(obs.QRead); ok > 0 {
		row.ReadRoundsPerOp = float64(tally.Rounds(obs.QRead)) / float64(ok)
		row.CombinedFrac = float64(tally.Combined(obs.QRead)) / float64(ok)
	}
	return row, nil
}
