// Command bloomload drives the open-loop load generator
// (internal/loadgen) against a register server and reports the
// saturation curve: a closed-loop probe finds peak throughput, then
// offered load is stepped as fractions of that peak and the latency
// distribution (p50/p99/p999, measured from scheduled arrivals) is
// reported at each step, together with the offered-vs-achieved
// accounting that closed-loop benchmarks cannot show.
//
// Usage:
//
//	bloomload [flags]
//
// By default bloomload starts its own in-process server on a loopback
// port (so one command measures the whole stack); -addr aims it at an
// external server instead. -compare additionally probes each server
// worker model (inline, bounded pool, goroutine per request) and the
// flat-combining write path. With -json the run is written to
// BENCH_loadgen.json for machine consumption (CI trend lines).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/netreg"
	"repro/internal/replica"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bloomload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "", "register server address (default: start an in-process server)")
	conns := flag.Int("conns", 4, "concurrent pipelined connections")
	depth := flag.Int("depth", 256, "per-connection pipeline depth")
	duration := flag.Duration("duration", 2*time.Second, "duration of each load step")
	readFrac := flag.Float64("readfrac", 0.9, "fraction of operations that are reads")
	valueBytes := flag.Int("value", 1, "write payload size in bytes")
	vsizes := flag.String("vsizes", "", "comma-separated write payload sizes to probe as an extra axis (e.g. 16,512,4096)")
	unique := flag.Bool("unique", false, "make every write value distinct (required for sharp certification runs)")
	registers := flag.Int("regs", 1, "registers to spread load over (Zipf-distributed)")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew parameter (> 1)")
	rate := flag.Float64("rate", 0, "run a single open-loop step at this ops/sec instead of the sweep")
	sweep := flag.String("sweep", "0.5,0.75,0.9,1.0", "offered-load fractions of probed peak")
	seed := flag.Int64("seed", 1, "arrival schedule seed")
	workers := flag.Int("workers", 0, "in-process server worker model (0 inline, n>0 pool, <0 per-request)")
	combine := flag.Bool("combine", false, "enable flat-combining write batching on the in-process server")
	compare := flag.Bool("compare", false, "also probe peak across server worker models and combining")
	jsonOut := flag.Bool("json", false, "write BENCH_loadgen.json")
	replicaLoad := flag.Bool("replica", false, "drive the replicated register: quorum clients over an in-process cluster")
	replicas := flag.Int("replicas", 3, "replica servers in -replica mode")
	clients := flag.Int("clients", 4, "quorum clients in -replica mode")
	qdepth := flag.Int("qdepth", 16, "concurrent logical ops per quorum client in -replica mode")
	modeName := flag.String("mode", "abd", "protocol variant in -replica mode (abd, fast, frugal)")
	flag.Parse()

	fracs, err := parseFracs(*sweep)
	if err != nil {
		return err
	}

	if *replicaLoad {
		mode, err := parseMode(*modeName)
		if err != nil {
			return err
		}
		vb := *valueBytes
		if vb <= 1 {
			vb = 16
		}
		return runReplica(loadgen.ClusterConfig{
			Addrs:      make([]string, *replicas),
			Clients:    *clients,
			Depth:      *qdepth,
			Duration:   *duration,
			ReadFrac:   *readFrac,
			ValueBytes: vb,
			Seed:       *seed,
		}, mode, fracs, *rate, *jsonOut)
	}

	sizes, err := parseSizes(*vsizes)
	if err != nil {
		return err
	}

	cfg := loadgen.Config{
		Conns:        *conns,
		Depth:        *depth,
		Duration:     *duration,
		ReadFrac:     *readFrac,
		ValueBytes:   *valueBytes,
		UniqueValues: *unique,
		ZipfS:        *zipfS,
		Seed:         *seed,
	}
	var regNames []string
	if *registers > 1 {
		regNames = make([]string, *registers)
		for i := 1; i < *registers; i++ {
			regNames[i] = fmt.Sprintf("reg%d", i)
		}
		cfg.Regs = regNames
	}

	cfg.Addr = *addr
	if cfg.Addr == "" {
		srv, err := startServer(regNames, *workers, *combine)
		if err != nil {
			return err
		}
		defer srv.Close()
		cfg.Addr = srv.Addr()
		fmt.Printf("in-process server on %s (workers=%d combining=%v)\n\n", cfg.Addr, *workers, *combine)
	}

	var steps []loadgen.Result
	if *rate > 0 {
		cfg.Rate = *rate
		r, err := loadgen.Run(cfg)
		if err != nil {
			return err
		}
		r.Name = "single"
		steps = []loadgen.Result{r}
	} else {
		if steps, err = loadgen.Sweep(cfg, fracs); err != nil {
			return err
		}
	}

	fmt.Printf("== saturation curve: %d conns x depth %d, %.0f%% reads, %dB values, %d register(s) ==\n\n",
		*conns, *depth, *readFrac*100, *valueBytes, *registers)
	fmt.Printf("%-10s %-13s %-13s %-9s %-10s %-10s %-10s %s\n",
		"step", "offered/s", "achieved/s", "backlog", "p50 us", "p99 us", "p999 us", "queue peak")
	var peak float64
	for _, s := range steps {
		if s.Load.AchievedPS > peak {
			peak = s.Load.AchievedPS
		}
		fmt.Printf("%-10s %-13.0f %-13.0f %-9.3f %-10.1f %-10.1f %-10.1f %d\n",
			s.Name, s.Load.OfferedPS, s.Load.AchievedPS, s.Load.BacklogFrac,
			s.P50Us, s.P99Us, s.P999Us, s.Load.QueuePeak)
	}
	fmt.Printf("\npeak achieved: %.0f ops/sec\n", peak)

	var vsizeRows []loadgen.Result
	if len(sizes) > 0 {
		fmt.Printf("\n== value-size axis (closed-loop probes) ==\n\n")
		fmt.Printf("%-12s %-13s %-10s %-10s %s\n", "size", "achieved/s", "p50 us", "p99 us", "p999 us")
		for _, sz := range sizes {
			vcfg := cfg
			vcfg.Rate = 0
			vcfg.ValueBytes = sz
			r, err := loadgen.Run(vcfg)
			if err != nil {
				return fmt.Errorf("vsize %d: %w", sz, err)
			}
			r.Name = fmt.Sprintf("vsize-%d", sz)
			vsizeRows = append(vsizeRows, r)
			fmt.Printf("%-12s %-13.0f %-10.1f %-10.1f %.1f\n",
				fmt.Sprintf("%dB", sz), r.Load.AchievedPS, r.P50Us, r.P99Us, r.P999Us)
		}
	}

	var modeRows []loadgen.WorkerRow
	if *compare && *addr == "" {
		fmt.Printf("\n== worker-model comparison (closed-loop probes) ==\n\n")
		fmt.Printf("%-14s %-12s %-14s %s\n", "model", "combining", "ops/sec", "p99 us")
		for _, m := range []struct {
			name    string
			workers int
			combine bool
		}{
			{"inline", 0, false},
			{"inline", 0, true},
			{"pool-4", 4, false},
			{"per-request", -1, false},
		} {
			row, err := probeMode(cfg, regNames, m.workers, m.combine)
			if err != nil {
				return fmt.Errorf("probing %s: %w", m.name, err)
			}
			row.Model = m.name
			modeRows = append(modeRows, row)
			fmt.Printf("%-14s %-12v %-14.0f %.1f\n", row.Model, row.Combining, row.OpsPerSec, row.P99Us)
		}
	}

	if !*jsonOut {
		return nil
	}
	doc := loadgen.BenchDoc{
		Conns:        *conns,
		Depth:        *depth,
		ReadFrac:     *readFrac,
		ValueBytes:   *valueBytes,
		Registers:    *registers,
		DurationSecs: duration.Seconds(),
		PeakOpsPS:    peak,
		Steps:        steps,
		WorkerModels: modeRows,
		VSizes:       vsizeRows,
	}
	if err := doc.WriteFile("BENCH_loadgen.json"); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_loadgen.json")
	return nil
}

// startServer builds the in-process store (default register plus any
// named ones) and serves it with the requested worker model.
func startServer(regNames []string, workers int, combine bool) (*netreg.Server, error) {
	st, err := netreg.NewStore("x", 1, nil)
	if err != nil {
		return nil, err
	}
	for _, name := range regNames {
		if name == "" {
			continue
		}
		if err := netreg.AddRegister(st, name, "x", 1, nil); err != nil {
			return nil, err
		}
	}
	st.SetWriteCombining(combine)
	return netreg.Serve("127.0.0.1:0", st, netreg.WithWorkers(workers))
}

// probeMode runs one closed-loop probe against a fresh in-process server
// in the given mode.
func probeMode(cfg loadgen.Config, regNames []string, workers int, combine bool) (loadgen.WorkerRow, error) {
	srv, err := startServer(regNames, workers, combine)
	if err != nil {
		return loadgen.WorkerRow{}, err
	}
	defer srv.Close()
	cfg.Addr = srv.Addr()
	cfg.Rate = 0
	r, err := loadgen.Run(cfg)
	if err != nil {
		return loadgen.WorkerRow{}, err
	}
	return loadgen.WorkerRow{
		Combining: combine,
		OpsPerSec: r.Load.AchievedPS,
		P99Us:     r.P99Us,
	}, nil
}

// parseSizes parses the -vsizes flag ("16,512,4096").
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// parseMode parses the -mode flag.
func parseMode(s string) (replica.Mode, error) {
	switch s {
	case "abd":
		return replica.ModeABD, nil
	case "fast":
		return replica.ModeFast, nil
	case "frugal":
		return replica.ModeFrugal, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want abd, fast, or frugal)", s)
	}
}

// parseFracs parses the -sweep flag ("0.5,0.75,1.0").
func parseFracs(s string) ([]float64, error) {
	var fracs []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad sweep fraction %q", part)
		}
		fracs = append(fracs, f)
	}
	if len(fracs) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return fracs, nil
}
