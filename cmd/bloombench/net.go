package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/wire"
)

// netDepths is the pipeline-depth sweep: 1 is the serial baseline (one
// request on the wire at a time), the rest are concurrent callers sharing
// one connection.
var netDepths = [...]int{1, 8, 64}

// speedupFloor is the transport rework's acceptance bar: binary frames +
// pipelining at depth 8 must beat JSON + serial round trips by at least
// this factor on single-connection loopback throughput.
const speedupFloor = 3.0

// minEnforceOps is the smallest op count at which the speedup floor is
// enforced: below it the measurement is noise-dominated (smoke tests run
// with ~50 ops) and the table only reports.
const minEnforceOps = 2000

// netRow is one cell of the codec × depth sweep.
type netRow struct {
	Codec      string  `json:"codec"`
	Depth      int     `json:"depth"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	BytesPerOp float64 `json:"bytes_per_op"` // both directions, framing included
}

// netFanOut summarizes the multi-register fan-out measurement: several
// registers hosted behind ONE listener, each hammered through its own
// pipelined connection.
type netFanOut struct {
	Registers int     `json:"registers"`
	Depth     int     `json:"depth"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// netBench is the BENCH_net.json document.
type netBench struct {
	Ops           int       `json:"ops_per_measurement"`
	Rows          []netRow  `json:"sweep"`
	FanOut        netFanOut `json:"multi_register_fan_out"`
	SpeedupDepth8 float64   `json:"speedup_binary_depth8_vs_json_serial"`
	SpeedupFloor  float64   `json:"speedup_floor"`
	Certified     bool      `json:"pipelined_run_certified_atomic"`
}

// netTable runs the T-net measurements: single-connection write
// throughput across codec (JSON vs binary) and pipeline depth, aggregate
// throughput of a multi-register fan-out behind one listener, and a
// certified pipelined two-writer run. With jsonOut it writes
// BENCH_net.json; at real op counts it enforces the ≥3x speedup bar.
func netTable(ops int, jsonOut bool) error {
	// Network round trips dwarf in-process accesses; cap like -faults so
	// the default -ops stays CI-sized, but keep enough ops that the
	// pipelined rows amortize their ramp-up.
	netOps := ops
	if netOps > 20000 {
		netOps = 20000
	}

	fmt.Println("== T-net: single-connection throughput, codec × pipeline depth ==")
	fmt.Println()
	fmt.Printf("%-8s %-7s %-12s %-14s %s\n", "codec", "depth", "ns/op", "ops/sec", "bytes/op")

	var rows []netRow
	for _, codec := range []wire.Codec{wire.JSON, wire.Binary} {
		for _, depth := range netDepths {
			row, err := measureNet(netOps, codec, depth)
			if err != nil {
				return fmt.Errorf("measuring %s depth %d: %w", codec, depth, err)
			}
			rows = append(rows, row)
			fmt.Printf("%-8s %-7d %-12.0f %-14.0f %.1f\n",
				row.Codec, row.Depth, row.NsPerOp, row.OpsPerSec, row.BytesPerOp)
		}
	}

	speedup := speedupOf(rows)
	fmt.Println()
	fmt.Printf("binary+pipelined (depth 8) vs json+serial: %.1fx\n", speedup)

	fan, err := measureFanOut(netOps)
	if err != nil {
		return fmt.Errorf("measuring fan-out: %w", err)
	}
	fmt.Println()
	fmt.Printf("multi-register fan-out: %d registers on ONE listener, depth %d each: %.0f ops/sec aggregate\n",
		fan.Registers, fan.Depth, fan.OpsPerSec)

	certified, err := certifiedPipelinedRun()
	if err != nil {
		return fmt.Errorf("certified pipelined run: %w", err)
	}
	cert := "pipelined two-writer run certified atomic (Section 7 linearizer)"
	if !certified {
		cert = "PIPELINED RUN CERTIFICATION FAILED"
	}
	fmt.Println()
	fmt.Println(cert)
	fmt.Println()
	fmt.Println("pipelining overlaps round trips on one connection: depth-d callers keep")
	fmt.Println("d requests in flight, the client batches their frames into one syscall,")
	fmt.Println("and the server answers a decoded burst with one flush. Binary framing")
	fmt.Println("then shrinks the per-frame cost (no JSON encode/decode, no reflection).")

	if !certified {
		return fmt.Errorf("pipelined run failed certification")
	}
	if netOps >= minEnforceOps && speedup < speedupFloor {
		return fmt.Errorf("speedup %.2fx below the %.1fx floor (binary depth 8 vs json serial)", speedup, speedupFloor)
	}

	if !jsonOut {
		return nil
	}
	doc := netBench{
		Ops:           netOps,
		Rows:          rows,
		FanOut:        fan,
		SpeedupDepth8: speedup,
		SpeedupFloor:  speedupFloor,
		Certified:     certified,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_net.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("wrote BENCH_net.json")
	return nil
}

// speedupOf divides json+serial latency by binary+depth-8 latency.
func speedupOf(rows []netRow) float64 {
	var jsonSerial, binDepth8 float64
	for _, r := range rows {
		switch {
		case r.Codec == wire.JSON.String() && r.Depth == 1:
			jsonSerial = r.NsPerOp
		case r.Codec == wire.Binary.String() && r.Depth == 8:
			binDepth8 = r.NsPerOp
		}
	}
	if binDepth8 == 0 {
		return 0
	}
	return jsonSerial / binDepth8
}

// measureNet times ops writes against a live server over ONE connection
// with the given codec, depth callers keeping requests in flight.
func measureNet(ops int, codec wire.Codec, depth int) (netRow, error) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		return netRow{}, err
	}
	defer srv.Close()

	ws := obs.NewWire()
	c, err := netreg.Dial[int](srv.Addr(),
		netreg.WithCodec(codec),
		netreg.WithTimeout(10*time.Second),
		netreg.WithWireStats(ws))
	if err != nil {
		return netRow{}, err
	}
	defer c.Close()

	per := ops / depth
	if per == 0 {
		per = 1
	}
	total := per * depth

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.WriteErr(d*per + i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return netRow{}, firstErr
	}

	in, out := ws.Bytes()
	return netRow{
		Codec:      codec.String(),
		Depth:      depth,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(total),
		OpsPerSec:  float64(total) / elapsed.Seconds(),
		BytesPerOp: float64(in+out) / float64(total),
	}, nil
}

// measureFanOut hosts several registers behind one listener and hammers
// each through its own pipelined connection, reporting aggregate
// throughput — the multi-register hosting path under load.
func measureFanOut(ops int) (netFanOut, error) {
	const (
		registers = 4
		depth     = 8
	)
	st, err := netreg.NewStore(0, 1, nil)
	if err != nil {
		return netFanOut{}, err
	}
	names := make([]string, registers)
	names[0] = "" // the default register counts as one of the hosted set
	for i := 1; i < registers; i++ {
		names[i] = fmt.Sprintf("reg%d", i)
		if err := netreg.AddRegister(st, names[i], 0, 1, nil); err != nil {
			return netFanOut{}, err
		}
	}
	srv, err := netreg.Serve("127.0.0.1:0", st)
	if err != nil {
		return netFanOut{}, err
	}
	defer srv.Close()

	clients := make([]*netreg.Client[int], registers)
	for i, name := range names {
		clients[i], err = netreg.Dial[int](srv.Addr(),
			netreg.WithRegister(name),
			netreg.WithTimeout(10*time.Second))
		if err != nil {
			return netFanOut{}, err
		}
		defer clients[i].Close()
	}

	per := ops / (registers * depth)
	if per == 0 {
		per = 1
	}
	total := per * registers * depth

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	for i := range clients {
		for d := 0; d < depth; d++ {
			wg.Add(1)
			go func(c *netreg.Client[int], d int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					if _, err := c.WriteErr(d*per + k); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(clients[i], d)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return netFanOut{}, firstErr
	}
	return netFanOut{
		Registers: registers,
		Depth:     depth,
		OpsPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}

// certifiedPipelinedRun drives the full two-writer protocol with every
// port of each node sharing ONE pipelined connection, then certifies the
// history: pipelining must not cost atomicity.
func certifiedPipelinedRun() (bool, error) {
	const (
		readers       = 2
		writesPerNode = 40
	)
	seq := new(history.Sequencer)
	type val = core.Tagged[string]

	servers := make([]*netreg.Server, 2)
	regs := make([]*netreg.Reg[val], 2)
	for i := range servers {
		srv, err := netreg.NewServer("127.0.0.1:0", val{Val: "v0"}, readers+1, seq)
		if err != nil {
			return false, err
		}
		defer srv.Close()
		servers[i] = srv
		if regs[i], err = netreg.NewSharedReg[val](srv.Addr(), readers+1,
			netreg.WithTimeout(10*time.Second)); err != nil {
			return false, err
		}
		defer regs[i].Close()
	}

	tw := core.New(readers, "v0",
		core.WithRegisters[string](regs[0], regs[1]),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < writesPerNode; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < writesPerNode; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()

	_, certErr := proof.Certify(tw.Recorder().Trace("v0"))
	return certErr == nil, nil
}
