package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	atomicregister "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// obsRow is one line of the observer-overhead sweep, in both the printed
// table and BENCH_obs.json.
type obsRow struct {
	Substrate       string  `json:"substrate"`
	WriteNs         float64 `json:"write_ns_per_op"`
	WriteObservedNs float64 `json:"write_observed_ns_per_op"`
	ReadNs          float64 `json:"read_ns_per_op"`
	ReadObservedNs  float64 `json:"read_observed_ns_per_op"`
}

// obsBench is the BENCH_obs.json document: the overhead sweep, the
// potency-agreement verdict, and a live snapshot of an observed contended
// run (so CI artifacts carry one real histogram).
type obsBench struct {
	Ops        int           `json:"ops_per_measurement"`
	Rows       []obsRow      `json:"substrates"`
	Agreement  obsAgreement  `json:"potency_agreement"`
	LiveSample *obs.Snapshot `json:"live_sample,omitempty"`
}

type obsAgreement struct {
	Schedules int   `json:"schedules_replayed"`
	Potent    int64 `json:"potent_writes"`
	Impotent  int64 `json:"impotent_writes"`
	Agree     bool  `json:"observer_matches_certifier"`
}

// obsTable measures the observability layer itself (T-obs): per-substrate
// latency with no observer attached (the always-paid nil check) and with
// one attached, then replays every schedule of a small configuration
// through the gated production implementation to check that the online
// potent/impotent counters agree with the Section 7 certifier, schedule by
// schedule.
func obsTable(ops int, jsonOut bool) error {
	fmt.Println("== T-obs: observer cost and live-counter fidelity ==")
	fmt.Println()
	fmt.Printf("%-14s %-22s %-22s\n", "", "write ns/op", "read ns/op")
	fmt.Printf("%-14s %-10s %-11s %-10s %-11s\n", "substrate", "no obs", "observed", "no obs", "observed")

	measure := func(f func(i int)) float64 {
		start := time.Now()
		for i := 0; i < ops; i++ {
			f(i)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ops)
	}

	var rows []obsRow
	for _, s := range []atomicregister.Substrate{
		atomicregister.Certifiable, atomicregister.FastPointer, atomicregister.FastSeqlock,
	} {
		plain := atomicregister.New(1, 0, atomicregister.WithSubstrate[int](s))
		observed := atomicregister.New(1, 0,
			atomicregister.WithSubstrate[int](s),
			atomicregister.WithObserver[int](atomicregister.NewObserver(1)))
		row := obsRow{
			Substrate:       s.String(),
			WriteNs:         measure(func(i int) { plain.Writer(0).Write(i) }),
			WriteObservedNs: measure(func(i int) { observed.Writer(0).Write(i) }),
			ReadNs:          measure(func(i int) { _ = plain.Reader(1).Read() }),
			ReadObservedNs:  measure(func(i int) { _ = observed.Reader(1).Read() }),
		}
		rows = append(rows, row)
		fmt.Printf("%-14s %-10.1f %-11.1f %-10.1f %-11.1f\n",
			row.Substrate, row.WriteNs, row.WriteObservedNs, row.ReadNs, row.ReadObservedNs)
	}
	fmt.Println()
	fmt.Println("an observed write pays the potency probe (one extra real read) plus two")
	fmt.Println("clock reads; with no observer attached the only cost is a nil check.")
	fmt.Println()

	agree, err := potencyAgreement()
	if err != nil {
		return err
	}
	verdict := "AGREE"
	if !agree.Agree {
		verdict = "MISMATCH"
	}
	fmt.Printf("online potency vs certifier: %d schedules replayed through production\n", agree.Schedules)
	fmt.Printf("goroutines, %d potent + %d impotent writes — %s\n", agree.Potent, agree.Impotent, verdict)
	fmt.Println()

	if !jsonOut {
		return nil
	}
	doc := obsBench{Ops: ops, Rows: rows, Agreement: agree, LiveSample: liveSample(ops)}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_obs.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_obs.json")
	fmt.Println()
	return nil
}

// observedScript expands a sched interleaving into a gate release script
// for an observer-attached replay: each writer's real write is followed by
// that writer's potency probe, an extra gated access. Inserting the probe
// release immediately after the write keeps the probe window empty, which
// is what makes the online classification provably exact on replays.
func observedScript(schedule []int) []int {
	perWriter := [2]int{}
	var script []int
	for _, p := range schedule {
		script = append(script, p)
		if p < 2 {
			perWriter[p]++
			if perWriter[p]%2 == 0 { // the write step: read=odd, write=even
				script = append(script, p)
			}
		}
	}
	return script
}

// potencyAgreement replays every interleaving of a 2-write, 1-reader
// configuration through the gated goroutine implementation with an
// observer attached, and checks the observer's potent/impotent counts
// against proof.Certify's classification on each schedule.
func potencyAgreement() (obsAgreement, error) {
	cfg := sched.Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	agg := obsAgreement{Agree: true}
	_, err := sched.Explore(cfg, sched.Faithful, func(r *sched.Result) error {
		ob := atomicregister.NewObserver(1)
		gs := core.NewGateSystem(1, "v0", core.WithObserver[string](ob))
		tw := gs.Register()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tw.Writer(i).Write(fmt.Sprintf("w%d", i))
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = tw.Reader(1).Read()
		}()
		gs.ReleaseScript(observedScript(r.Sched)...)
		wg.Wait()

		report, err := atomicregister.Certify(tw)
		if err != nil {
			return err
		}
		pot := ob.PotentWrites(0) + ob.PotentWrites(1)
		imp := ob.ImpotentWrites(0) + ob.ImpotentWrites(1)
		agg.Schedules++
		agg.Potent += pot
		agg.Impotent += imp
		if int(pot) != report.PotentWrites || int(imp) != report.ImpotentWrites {
			agg.Agree = false
			return fmt.Errorf("schedule %v: observer saw %d potent / %d impotent, certifier %d / %d",
				r.Sched, pot, imp, report.PotentWrites, report.ImpotentWrites)
		}
		return nil
	})
	return agg, err
}

// liveSample runs a short contended workload with an observer attached and
// returns its snapshot, so BENCH_obs.json carries real histogram series.
func liveSample(ops int) *obs.Snapshot {
	ob := atomicregister.NewObserver(1)
	reg := atomicregister.New(1, 0,
		atomicregister.WithSubstrate[int](atomicregister.FastSeqlock),
		atomicregister.WithObserver[int](ob))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wr := reg.WriterReader(i)
			for k := 0; k < ops; k++ {
				if k%4 == 3 {
					_ = wr.Read()
				} else {
					wr.Write(k)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := reg.Reader(1)
		for k := 0; k < ops; k++ {
			_ = r.Read()
		}
	}()
	wg.Wait()
	s := ob.Snapshot()
	return &s
}
