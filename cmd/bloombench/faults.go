package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/history"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/proof"
)

// faultSeed makes -faults deterministic: the same faults fire at the same
// points on every run, so the table (and CI) never flakes on luck.
const faultSeed = 20260805

// injectedDelay is the extra one-way latency the delayed round-trip
// measurement injects on every frame.
const injectedDelay = 200 * time.Microsecond

// faultRun summarizes the faulty two-writer run in BENCH_fault.json.
type faultRun struct {
	Seed          int64            `json:"seed"`
	WritesIssued  int              `json:"writes_issued"`
	WritesApplied int64            `json:"writes_applied"`
	Faults        map[string]int64 `json:"faults_injected"`
	Retries       int64            `json:"retries"`
	Reconnects    int64            `json:"reconnects"`
	BreakerOpens  int64            `json:"breaker_opens"`
	Certified     bool             `json:"certified_atomic"`
}

// faultBench is the BENCH_fault.json document: round-trip latency with and
// without injected delay, plus the faulty-run recovery stats.
type faultBench struct {
	Ops             int      `json:"ops_per_measurement"`
	CleanRTTNs      float64  `json:"clean_rtt_ns_per_op"`
	DelayedRTTNs    float64  `json:"delayed_rtt_ns_per_op"`
	InjectedDelayNs int64    `json:"injected_delay_ns"`
	Run             faultRun `json:"faulty_run"`
}

// faultTable runs the T-fault measurements: round-trip latency over a
// clean link versus one with injected delay, then a full two-writer run
// over links that drop and sever at seeded points, certified atomic by
// the Section 7 construction after the clients retry their way through.
func faultTable(ops int, jsonOut bool) error {
	// Network round trips are ~1000x slower than in-process accesses;
	// cap the latency loops so -faults stays CI-sized.
	netOps := ops
	if netOps > 2000 {
		netOps = 2000
	}

	fmt.Println("== T-fault: client recovery over a faulty link (networked registers) ==")
	fmt.Println()

	clean, err := measureRTT(netOps, nil)
	if err != nil {
		return err
	}
	delayed, err := measureRTT(netOps, &faultnet.Plan{
		Seed: faultSeed, Delay: injectedDelay, DelayProb: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %s\n", "round trip", "ns/op")
	fmt.Printf("%-26s %.0f\n", "clean link", clean)
	fmt.Printf("%-26s %.0f  (per-frame delay %v, both directions)\n", "delayed link", delayed, injectedDelay)
	fmt.Println()

	run, err := faultyRun()
	if err != nil {
		return err
	}
	kinds := make([]string, 0, len(run.Faults))
	for k := range run.Faults {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	faults := ""
	for _, k := range kinds {
		if faults != "" {
			faults += ", "
		}
		faults += fmt.Sprintf("%s %d", k, run.Faults[k])
	}
	fmt.Printf("faulty two-writer run (seed %d, drop+sever on every link):\n", run.Seed)
	fmt.Printf("  faults injected:   %s\n", faults)
	fmt.Printf("  recovery work:     %d retries, %d reconnects, %d breaker opens\n",
		run.Retries, run.Reconnects, run.BreakerOpens)
	verdict := "OK"
	if run.WritesApplied != int64(run.WritesIssued) {
		verdict = "MISMATCH"
	}
	fmt.Printf("  at most once:      %d writes issued, %d applied — %s\n",
		run.WritesIssued, run.WritesApplied, verdict)
	cert := "run certified atomic (Section 7 linearizer)"
	if !run.Certified {
		cert = "CERTIFICATION FAILED"
	}
	fmt.Printf("  certification:     %s\n", cert)
	fmt.Println()
	fmt.Println("retried writes are deduplicated server-side (client id + sequence")
	fmt.Println("number), so a replayed frame is answered with its original stamp")
	fmt.Println("instead of becoming a second *-action — which is what keeps the")
	fmt.Println("faulty run certifiable.")

	if !run.Certified || verdict != "OK" {
		return fmt.Errorf("faulty run failed: certified=%v, issued=%d, applied=%d",
			run.Certified, run.WritesIssued, run.WritesApplied)
	}

	if !jsonOut {
		return nil
	}
	doc := faultBench{
		Ops:             netOps,
		CleanRTTNs:      clean,
		DelayedRTTNs:    delayed,
		InjectedDelayNs: injectedDelay.Nanoseconds(),
		Run:             run,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_fault.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("wrote BENCH_fault.json")
	return nil
}

// measureRTT times ops sequential write round trips against a live
// register server, dialing through plan's faults when plan is non-nil.
func measureRTT(ops int, plan *faultnet.Plan) (float64, error) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	opts := []netreg.DialOption{netreg.WithTimeout(5 * time.Second)}
	if plan != nil {
		opts = append(opts, netreg.WithDialer(plan.Dialer()))
	}
	c, err := netreg.Dial[int](srv.Addr(), opts...)
	if err != nil {
		return 0, err
	}
	defer c.Close()

	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := c.WriteErr(i); err != nil {
			return 0, fmt.Errorf("round trip %d: %w", i, err)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops), nil
}

// faultyRun drives the full two-writer protocol over networked registers
// whose links drop and sever at seeded points, with retrying clients, and
// certifies the recovered history.
func faultyRun() (faultRun, error) {
	const (
		readers       = 2
		writesPerNode = 40
	)
	seq := new(history.Sequencer)
	type val = core.Tagged[string]

	servers := make([]*netreg.Server, 2)
	for i := range servers {
		st, err := netreg.NewStore(val{Val: "v0"}, readers+1, seq)
		if err != nil {
			return faultRun{}, err
		}
		if servers[i], err = netreg.Serve("127.0.0.1:0", st); err != nil {
			return faultRun{}, err
		}
		defer servers[i].Close()
	}

	plan := &faultnet.Plan{Seed: faultSeed, DropProb: 0.05, SeverProb: 0.02}
	rpc := obs.NewRPC()
	opts := []netreg.DialOption{
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(250 * time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 40, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
		netreg.WithRPCStats(rpc),
	}
	r0, err := netreg.NewReg[val](servers[0].Addr(), readers+1, opts...)
	if err != nil {
		return faultRun{}, err
	}
	defer r0.Close()
	r1, err := netreg.NewReg[val](servers[1].Addr(), readers+1, opts...)
	if err != nil {
		return faultRun{}, err
	}
	defer r1.Close()

	tw := core.New(readers, "v0",
		core.WithRegisters[string](r0, r1),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < writesPerNode; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < writesPerNode; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()

	var applied int64
	for _, srv := range servers {
		applied += srv.Store().Counters().Writes()
	}
	_, certErr := proof.Certify(tw.Recorder().Trace("v0"))
	ok, _ := rpc.Reconnects()
	return faultRun{
		Seed:          faultSeed,
		WritesIssued:  2 * writesPerNode,
		WritesApplied: applied,
		Faults:        plan.Stats().Injected,
		Retries:       rpc.Retries(obs.RPCRead) + rpc.Retries(obs.RPCWrite),
		Reconnects:    ok,
		BreakerOpens:  rpc.BreakerOpens(),
		Certified:     certErr == nil,
	}, nil
}
