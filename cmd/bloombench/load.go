package main

import (
	"fmt"
	"time"

	"repro/internal/loadgen"
	"repro/internal/netreg"
)

// loadFracs is the T-load offered-rate sweep, as fractions of the
// closed-loop probed peak.
var loadFracs = [...]float64{0.5, 0.75, 0.9}

// loadShape is the generator shape the T-load table runs with: enough
// connections and depth to saturate one core, a read-mostly mix.
var loadShape = loadgen.Config{
	Conns:    2,
	Depth:    256,
	ReadFrac: 0.9,
	Seed:     1,
}

// loadFloor is the tentpole acceptance bar: peak achieved multi-
// connection throughput must beat the single-connection depth-64 figure
// in BENCH_net.json (351K ops/s) by at least 3x on the same hardware.
const loadFloor = 3 * 351_000.0

// loadTable runs the T-load table: a closed-loop probe finds peak
// throughput, then open-loop Poisson arrivals are stepped as fractions
// of that peak and the latency distribution — measured from each
// operation's SCHEDULED arrival, so queueing delay is charged, not
// hidden (no coordinated omission) — is reported per step. With ops at
// real scale the peak is held to the ≥3x-over-single-connection floor.
// The full tool with every knob (conns, depth, mix, zipf register
// spread, worker models) is cmd/bloomload; this table is the compact
// CI-trended core of it.
func loadTable(ops int, jsonOut bool) error {
	srv, err := netreg.NewServer("127.0.0.1:0", "x", 1, nil)
	if err != nil {
		return err
	}
	defer srv.Close()

	cfg := loadShape
	cfg.Addr = srv.Addr()
	// Size each step so the probe retires roughly ops operations, with a
	// floor that keeps even smoke runs statistically non-degenerate.
	cfg.Duration = time.Duration(ops) * time.Microsecond
	if cfg.Duration < 250*time.Millisecond {
		cfg.Duration = 250 * time.Millisecond
	}

	steps, err := loadgen.Sweep(cfg, loadFracs[:])
	if err != nil {
		return err
	}

	fmt.Println("== T-load: open-loop saturation curve (Poisson arrivals, latency from scheduled arrival) ==")
	fmt.Println()
	fmt.Printf("%-10s %-13s %-13s %-9s %-10s %-10s %s\n",
		"step", "offered/s", "achieved/s", "backlog", "p50 us", "p99 us", "p999 us")
	var peak float64
	for _, s := range steps {
		if s.Load.AchievedPS > peak {
			peak = s.Load.AchievedPS
		}
		fmt.Printf("%-10s %-13.0f %-13.0f %-9.3f %-10.1f %-10.1f %.1f\n",
			s.Name, s.Load.OfferedPS, s.Load.AchievedPS, s.Load.BacklogFrac,
			s.P50Us, s.P99Us, s.P999Us)
	}
	fmt.Printf("\npeak achieved: %.0f ops/sec (floor at real op counts: %.0f)\n", peak, loadFloor)

	if ops >= minEnforceOps && peak < loadFloor {
		return fmt.Errorf("peak achieved %.0f ops/s is below the %.0f floor (3x single-connection depth-64)", peak, loadFloor)
	}

	if !jsonOut {
		return nil
	}
	doc := loadgen.BenchDoc{
		Conns:        cfg.Conns,
		Depth:        cfg.Depth,
		ReadFrac:     cfg.ReadFrac,
		ValueBytes:   1,
		Registers:    1,
		DurationSecs: cfg.Duration.Seconds(),
		PeakOpsPS:    peak,
		Steps:        steps,
	}
	if err := doc.WriteFile("BENCH_loadgen.json"); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("wrote BENCH_loadgen.json")
	return nil
}
