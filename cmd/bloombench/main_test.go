package main

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	atomicregister "repro"
	"repro/internal/obs"
)

// TestTablesSmoke runs every experiment table with tiny op counts: the
// tables are the repository's experiment harness, so "it still runs" is
// worth a cheap test. Output goes to stdout (go test swallows it unless
// -v); correctness of the numbers is covered by the package tests.
func TestTablesSmoke(t *testing.T) {
	const ops = 50
	costTable(ops)
	crashTable()
	stackTable()
	perfTable(ops)
	if err := substrateTable(ops, false); err != nil {
		t.Fatalf("substrateTable: %v", err)
	}
	if err := obsTable(ops, false); err != nil {
		t.Fatalf("obsTable: %v", err)
	}
}

// TestFaultTableSmoke runs the -faults mode end to end with a tiny op
// count: the faulty run inside it self-checks (at-most-once application
// and proof.Certify both gate its return value), so "no error" is the
// whole assertion.
func TestFaultTableSmoke(t *testing.T) {
	if err := faultTable(50, false); err != nil {
		t.Fatalf("faultTable: %v", err)
	}
}

// TestNetTableSmoke runs the -net mode end to end with a tiny op count:
// the certified pipelined run inside it self-checks, and at this size the
// speedup floor is reported but not enforced (loopback throughput over 50
// ops is noise).
func TestNetTableSmoke(t *testing.T) {
	if err := netTable(50, false); err != nil {
		t.Fatalf("netTable: %v", err)
	}
}

// TestObservedScript checks the release-script expansion that makes the
// potency-agreement replay exact: the probe release must directly follow
// each writer's second (write) access and nothing else.
func TestObservedScript(t *testing.T) {
	got := observedScript([]int{2, 0, 1, 0, 1, 2, 2})
	want := []int{2, 0, 1, 0, 0, 1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("script = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("script = %v, want %v", got, want)
		}
	}
}

// TestCertifyTableSmoke runs the -certify mode end to end with a tiny op
// count: every row self-checks (the offline and online rows must certify
// real traffic, the faulty row must certify the seeded lossy run, and
// the violation row must catch the synthetic non-atomic history), so "no
// error" is the whole assertion.
func TestCertifyTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several timed load probes")
	}
	dir := t.TempDir()
	t.Chdir(dir)
	if err := certifyTable(50, false); err != nil {
		t.Fatalf("certifyTable: %v", err)
	}
}

// TestReplicaTableSmoke runs the -replica mode end to end with a tiny op
// count: every row self-checks (no-quorum failures on a healthy cluster,
// a fast path that never engages, and an uncertified crash soak all fail
// it), so "no error" is the whole assertion.
func TestReplicaTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed quorum workloads and a crash soak")
	}
	dir := t.TempDir()
	t.Chdir(dir)
	if err := replicaTable(50, false); err != nil {
		t.Fatalf("replicaTable: %v", err)
	}
}

// TestServeMux exercises the -serve handlers over httptest, without
// binding a real socket or starting workloads.
func TestServeMux(t *testing.T) {
	ob := atomicregister.NewObserver(1)
	reg := atomicregister.New(1, 0, atomicregister.WithObserver[int](ob))
	reg.Writer(0).Write(7)
	_ = reg.Reader(1).Read()

	ls, err := newLinzSurface()
	if err != nil {
		t.Fatalf("newLinzSurface: %v", err)
	}
	defer ls.srv.Close()

	srv := httptest.NewServer(newServeMux(map[string]*obs.Observer{"certifiable": ob}, ls))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics returned %d", code)
	}
	for _, series := range []string{
		`bloom_writes_total{writer="0",potency="potent",substrate="certifiable"} 1`,
		`bloom_reads_total{reader="1",substrate="certifiable"} 1`,
		`bloom_op_latency_seconds_count{op="write",channel="writer0",substrate="certifiable"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics lacks %q\ngot:\n%s", series, body)
		}
	}

	if !strings.Contains(body, "linz_windows_total") {
		t.Errorf("/metrics lacks the linz_windows_total series\ngot:\n%s", body)
	}

	code, body = get("/vars")
	if code != 200 || !strings.Contains(body, `"potent_writes": 1`) {
		t.Fatalf("/vars returned %d, body %s", code, body)
	}
	if !strings.Contains(body, `"linz"`) {
		t.Errorf("/vars lacks the linz snapshot, body %s", body)
	}

	code, body = get("/debug/linz")
	if code != 200 || !strings.Contains(body, "no violation observed") {
		t.Fatalf("/debug/linz returned %d, body %s", code, body)
	}
	code, body = get("/debug/linz?demo=1")
	if code != 200 || !strings.Contains(body, "linz violation timeline") {
		t.Fatalf("/debug/linz?demo=1 returned %d without a rendered timeline, body %.200s", code, body)
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ returned %d", code)
	}
	if code, _ := get("/"); code != 200 {
		t.Fatalf("/ returned %d", code)
	}
	if code, _ := get("/nosuch"); code != 404 {
		t.Fatalf("/nosuch returned %d, want 404", code)
	}
}
