package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	atomicregister "repro"
	"repro/internal/linz"
	"repro/internal/netreg"
	"repro/internal/obs"
)

// serve runs an open-ended observed workload over every substrate and
// exposes it live:
//
//	/metrics       Prometheus text format, one series set per substrate
//	               (distinguished by a substrate label), plus the online
//	               linearizability checker's linz_* series
//	/vars          the same state as expvar-style JSON snapshots
//	/debug/linz    the online checker's live verdict; after a violation,
//	               the failed window's interactive timeline (?demo=1
//	               renders a synthetic violation's timeline)
//	/debug/pprof/  the standard pprof surface, on this mux
//	/              a plain index
//
// The Certifiable substrate's workload runs in recorded batches, each
// certified with the Section 7 checker afterwards, so the
// bloom_certify_runs_total series moves on a live page; the fast
// substrates run continuous unrecorded traffic.
func serve(addr string) error {
	observers := map[string]*obs.Observer{}
	stop := make(chan struct{}) // never closed; serve runs until killed
	var wg sync.WaitGroup
	for _, s := range []atomicregister.Substrate{
		atomicregister.Certifiable, atomicregister.FastPointer, atomicregister.FastSeqlock,
	} {
		ob := atomicregister.NewObserver(1)
		observers[s.String()] = ob
		wg.Add(1)
		go func(s atomicregister.Substrate, ob *atomicregister.Observer) {
			defer wg.Done()
			workload(s, ob, stop)
		}(s, ob)
	}

	ls, err := newLinzSurface()
	if err != nil {
		return err
	}
	ls.start(stop)

	fmt.Printf("serving /metrics, /vars, /debug/linz, and /debug/pprof/ on %s\n", addr)
	return http.ListenAndServe(addr, newServeMux(observers, ls))
}

// linzSurface is the -serve process's live certification loop: a
// journaled netreg server carrying continuous paced register traffic,
// with the online windowed checker shadowing it. Its tally feeds
// /metrics and /vars; /debug/linz shows the live verdict and renders
// the first violating window's timeline if one ever appears.
type linzSurface struct {
	j      *obs.Journal
	tally  *obs.Linz
	online *linz.Online
	srv    *netreg.Server
}

func newLinzSurface() (*linzSurface, error) {
	j := obs.NewJournal()
	st, err := netreg.NewStore("v0", 1, nil)
	if err != nil {
		return nil, err
	}
	srv, err := netreg.Serve("127.0.0.1:0", st, netreg.WithJournal(j))
	if err != nil {
		return nil, err
	}
	tally := obs.NewLinz()
	return &linzSurface{
		j:     j,
		tally: tally,
		online: linz.NewOnline(j, linz.OnlineOptions{
			Interval:     100 * time.Millisecond,
			CheckTimeout: 2 * time.Second,
			Tally:        tally,
		}),
		srv: srv,
	}, nil
}

// start launches the checker and the traffic it certifies: two
// long-lived connections doing paced writes and reads, so the linz_*
// series move on a live dashboard without saturating the process.
func (ls *linzSurface) start(stop <-chan struct{}) {
	ls.online.Start()
	for c := 0; c < 2; c++ {
		go func(c int) {
			cl, err := netreg.Dial[string](ls.srv.Addr(), netreg.WithTimeout(5*time.Second))
			if err != nil {
				return
			}
			defer cl.Close()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				if i%2 == 0 {
					if _, err := cl.WriteErr(fmt.Sprintf("c%d-%d", c, i)); err != nil {
						return
					}
				} else if _, _, err := cl.ReadErr(0); err != nil {
					return
				}
			}
		}(c)
	}
}

// workload drives one observed register forever: two writer-readers and a
// dedicated reader, paced so the process idles rather than spins. On the
// Certifiable substrate the traffic runs in recorded batches that are
// certified after each batch (feeding the observer's certify counters).
func workload(s atomicregister.Substrate, ob *atomicregister.Observer, stop <-chan struct{}) {
	const batch = 64
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		opts := []atomicregister.Option[int]{
			atomicregister.WithSubstrate[int](s),
			atomicregister.WithObserver[int](ob),
		}
		certified := s == atomicregister.Certifiable
		if certified {
			opts = append(opts, atomicregister.WithRecording[int]())
		}
		reg := atomicregister.New(1, 0, opts...)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wr := reg.WriterReader(i)
				for k := 0; k < batch; k++ {
					if k%4 == 3 {
						_ = wr.Read()
					} else {
						wr.Write(k)
					}
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := reg.Reader(1)
			for k := 0; k < batch; k++ {
				_ = r.Read()
			}
		}()
		wg.Wait()
		if certified {
			// Certify feeds the observer's certify counters itself.
			_, _ = atomicregister.Certify(reg)
		}
	}
}

// newServeMux builds the observability mux over a set of named observers
// and the live certification surface. Split out from serve so tests can
// exercise the handlers without binding a socket.
func newServeMux(observers map[string]*obs.Observer, ls *linzSurface) *http.ServeMux {
	names := make([]string, 0, len(observers))
	for name := range observers {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic series order across scrapes

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, name := range names {
			observers[name].WritePrometheus(w, obs.Label{Name: "substrate", Value: name})
		}
		ls.tally.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := map[string]any{"linz": ls.tally.Snapshot()}
		for _, name := range names {
			doc[name] = observers[name]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/linz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("demo") == "1" {
			// The synthetic violation: what a failed window looks like
			// without having to break the register to see one.
			rep := syntheticViolation()
			if len(rep.Failures) > 0 {
				w.Header().Set("Content-Type", "text/html; charset=utf-8")
				_ = linz.RenderTimeline(&rep.Failures[0], w)
				return
			}
		}
		if f := ls.online.FirstFailure(); f != nil {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_ = linz.RenderTimeline(f, w)
			return
		}
		s := ls.tally.Snapshot()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintln(w, "<!doctype html><meta charset=utf-8><title>linz</title>")
		fmt.Fprintln(w, "<body style=\"font-family:monospace;background:#111;color:#ddd;padding:2em\">")
		fmt.Fprintln(w, "<h2>online linearizability checker</h2>")
		fmt.Fprintf(w, "<p>no violation observed.</p>")
		fmt.Fprintf(w, "<pre>windows    ok %d / violation %d / undecided %d\n", s.WindowsOK, s.WindowsViolation, s.WindowsUndecided)
		fmt.Fprintf(w, "checked    %d ops (%.0f ops/s of checker busy time)\n", s.OpsChecked, s.CheckedPerSec)
		fmt.Fprintf(w, "lag        %d ops buffered, horizon %.3fs behind\n", s.LagOps, s.HorizonLagSec)
		fmt.Fprintf(w, "shed       %d ops, %d blurred cuts, %d journal drops</pre>\n", s.ShedOps, s.BlurredCuts, s.JournalDrops)
		fmt.Fprintln(w, "<p><a style=\"color:#8cf\" href=\"/debug/linz?demo=1\">render a synthetic violation's timeline</a></p>")
	})
	// The pprof surface, explicitly registered: this mux is not
	// http.DefaultServeMux, so the net/http/pprof init() registrations
	// don't reach it.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "bloombench observability surface")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /vars          JSON snapshots")
		fmt.Fprintln(w, "  /debug/linz    online linearizability verdict + timeline")
		fmt.Fprintln(w, "  /debug/pprof/  profiling")
	})
	return mux
}
