package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	atomicregister "repro"
	"repro/internal/obs"
)

// serve runs an open-ended observed workload over every substrate and
// exposes it live:
//
//	/metrics       Prometheus text format, one series set per substrate
//	               (distinguished by a substrate label)
//	/vars          the same state as expvar-style JSON snapshots
//	/debug/pprof/  the standard pprof surface, on this mux
//	/              a plain index
//
// The Certifiable substrate's workload runs in recorded batches, each
// certified with the Section 7 checker afterwards, so the
// bloom_certify_runs_total series moves on a live page; the fast
// substrates run continuous unrecorded traffic.
func serve(addr string) error {
	observers := map[string]*obs.Observer{}
	stop := make(chan struct{}) // never closed; serve runs until killed
	var wg sync.WaitGroup
	for _, s := range []atomicregister.Substrate{
		atomicregister.Certifiable, atomicregister.FastPointer, atomicregister.FastSeqlock,
	} {
		ob := atomicregister.NewObserver(1)
		observers[s.String()] = ob
		wg.Add(1)
		go func(s atomicregister.Substrate, ob *atomicregister.Observer) {
			defer wg.Done()
			workload(s, ob, stop)
		}(s, ob)
	}

	fmt.Printf("serving /metrics, /vars, and /debug/pprof/ on %s\n", addr)
	return http.ListenAndServe(addr, newServeMux(observers))
}

// workload drives one observed register forever: two writer-readers and a
// dedicated reader, paced so the process idles rather than spins. On the
// Certifiable substrate the traffic runs in recorded batches that are
// certified after each batch (feeding the observer's certify counters).
func workload(s atomicregister.Substrate, ob *atomicregister.Observer, stop <-chan struct{}) {
	const batch = 64
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		opts := []atomicregister.Option[int]{
			atomicregister.WithSubstrate[int](s),
			atomicregister.WithObserver[int](ob),
		}
		certified := s == atomicregister.Certifiable
		if certified {
			opts = append(opts, atomicregister.WithRecording[int]())
		}
		reg := atomicregister.New(1, 0, opts...)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wr := reg.WriterReader(i)
				for k := 0; k < batch; k++ {
					if k%4 == 3 {
						_ = wr.Read()
					} else {
						wr.Write(k)
					}
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := reg.Reader(1)
			for k := 0; k < batch; k++ {
				_ = r.Read()
			}
		}()
		wg.Wait()
		if certified {
			// Certify feeds the observer's certify counters itself.
			_, _ = atomicregister.Certify(reg)
		}
	}
}

// newServeMux builds the observability mux over a set of named observers.
// Split out from serve so tests can exercise the handlers without binding
// a socket.
func newServeMux(observers map[string]*obs.Observer) *http.ServeMux {
	names := make([]string, 0, len(observers))
	for name := range observers {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic series order across scrapes

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, name := range names {
			observers[name].WritePrometheus(w, obs.Label{Name: "substrate", Value: name})
		}
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := map[string]*obs.Observer{}
		for _, name := range names {
			doc[name] = observers[name]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	// The pprof surface, explicitly registered: this mux is not
	// http.DefaultServeMux, so the net/http/pprof init() registrations
	// don't reach it.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "bloombench observability surface")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /vars          JSON snapshots")
		fmt.Fprintln(w, "  /debug/pprof/  profiling")
	})
	return mux
}
