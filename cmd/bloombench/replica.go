package main

import (
	"encoding/json"
	"fmt"
	mathrand "math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/linz"
	"repro/internal/loadgen"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/wire"
)

// replicaSeed seeds the -replica mode's workload mixes and its kill
// plan; one fixed seed keeps the table replayable.
const replicaSeed = 20260808

// minEngineSpeedup is the self-gate floor: the quorum engine's
// closed-loop saturation throughput must be at least this multiple of
// the PR 9 per-op-goroutine client's on the identical workload, or the
// table fails. Measured locally at 3-4.5x; the floor leaves noise room.
const minEngineSpeedup = 2.0

// replicaBaseRow is the single-server reference: one client, one server,
// one round trip per operation — the RTT the quorum modes are measured
// against.
type replicaBaseRow struct {
	Ops         int     `json:"ops"`
	ReadMeanUs  float64 `json:"read_mean_us"`
	WriteMeanUs float64 `json:"write_mean_us"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// replicaModeRow is one protocol variant's measurement over the m-replica
// cluster under the mixed (90% read) workload.
type replicaModeRow struct {
	Mode             string  `json:"mode"`
	Ops              int     `json:"ops"`
	ReadRoundsPerOp  float64 `json:"read_rounds_per_op"`
	WriteRoundsPerOp float64 `json:"write_rounds_per_op"`
	FastReadFrac     float64 `json:"fast_read_frac"`
	ReadMeanUs       float64 `json:"read_mean_us"`
	WriteMeanUs      float64 `json:"write_mean_us"`
	ReadRTTOverhead  float64 `json:"read_rtt_overhead_vs_single"`
	BytesPerOp       float64 `json:"bytes_per_op"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	NoQuorum         int64   `json:"no_quorum"`
}

// replicaSoakRow is the tolerated-crash soak: f of m replicas killed
// permanently mid-run from a seeded plan, every journal merged and
// certified online.
type replicaSoakRow struct {
	Seed       int64  `json:"seed"`
	Replicas   int    `json:"replicas"`
	Killed     int    `json:"killed"`
	Ops        int64  `json:"ops_completed"`
	NoQuorum   int64  `json:"no_quorum"`
	OpsChecked int64  `json:"ops_checked"`
	WindowsOK  int64  `json:"windows_ok"`
	Certified  bool   `json:"certified_atomic_online"`
	Verdict    string `json:"verdict"`
}

// replicaSatRow is one side of the engine-vs-legacy saturation
// comparison: closed-loop peak logical throughput under the cluster load
// generator, identical workload both sides.
type replicaSatRow struct {
	Client       string  `json:"client"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P99Us        float64 `json:"p99_us"`
	CombinedFrac float64 `json:"combined_read_frac"`
}

// replicaBench is the BENCH_replica.json document.
type replicaBench struct {
	OpsTarget  int              `json:"ops_target"`
	Replicas   int              `json:"replicas"`
	Quorum     int              `json:"quorum"`
	Baseline   replicaBaseRow   `json:"single_server_baseline"`
	Modes      []replicaModeRow `json:"modes"`
	Saturation []replicaSatRow  `json:"saturation"`
	Speedup    float64          `json:"engine_speedup"`
	MinSpeedup float64          `json:"min_speedup"`
	Soak       replicaSoakRow   `json:"crash_soak"`
}

// replicaTable runs the T-replica measurements: plain ABD vs the
// fast-path and message-frugal variants over an m=3 cluster (rounds/op,
// RTT overhead vs a single server, bytes/op), then the tolerated-crash
// soak — f=2 of m=5 replicas killed permanently mid-run under a seeded
// plan, with the per-replica journals and the quorum clients' logical
// journal merged and certified atomic online. With jsonOut it writes
// BENCH_replica.json.
func replicaTable(ops int, jsonOut bool) error {
	const m = 3
	n := ops
	if n > 20000 {
		n = 20000
	}
	if n < 50 {
		n = 50
	}

	fmt.Println("== T-replica: ABD quorum register over m independent servers ==")
	fmt.Println()

	base, err := replicaBaseline(n)
	if err != nil {
		return fmt.Errorf("single-server baseline: %w", err)
	}
	fmt.Printf("%-8s %6d ops  read %7.1fµs  write %7.1fµs  %9.0f ops/s  (one round trip per op)\n",
		"single", base.Ops, base.ReadMeanUs, base.WriteMeanUs, base.OpsPerSec)

	var rows []replicaModeRow
	for _, mode := range []replica.Mode{replica.ModeABD, replica.ModeFast, replica.ModeFrugal} {
		row, err := replicaModeRun(mode, m, n, base)
		if err != nil {
			return fmt.Errorf("%s row: %w", mode, err)
		}
		rows = append(rows, row)
		fmt.Printf("%-8s %6d ops  read %7.1fµs (%.2f rounds, %4.0f%% fast, %.2fx single)  write %7.1fµs  %6.0f B/op  %9.0f ops/s\n",
			row.Mode, row.Ops, row.ReadMeanUs, row.ReadRoundsPerOp, row.FastReadFrac*100,
			row.ReadRTTOverhead, row.WriteMeanUs, row.BytesPerOp, row.OpsPerSec)
		if row.NoQuorum != 0 {
			return fmt.Errorf("%s: %d no-quorum failures on a healthy cluster", row.Mode, row.NoQuorum)
		}
	}
	// The variants must actually vary: plain ABD pays two rounds per
	// read; the fast path must beat it whenever any read hit agreement.
	if abd, fast := rows[0], rows[1]; abd.ReadRoundsPerOp != 2 || fast.ReadRoundsPerOp >= abd.ReadRoundsPerOp {
		return fmt.Errorf("fast path never engaged: abd %.2f rounds/read, fast %.2f", abd.ReadRoundsPerOp, fast.ReadRoundsPerOp)
	}

	sat, speedup, err := replicaSaturation()
	if err != nil {
		return fmt.Errorf("saturation comparison: %w", err)
	}
	for _, s := range sat {
		fmt.Printf("%-8s %9.0f ops/s  p99 %7.1fµs  combined %4.0f%%  (closed loop, 4 clients x depth 16)\n",
			s.Client, s.OpsPerSec, s.P99Us, s.CombinedFrac*100)
	}
	fmt.Printf("%-8s engine %.2fx legacy at saturation (gate floor %.1fx)\n", "speedup", speedup, minEngineSpeedup)
	if speedup < minEngineSpeedup {
		return fmt.Errorf("quorum engine only %.2fx the legacy client at saturation, want >= %.1fx", speedup, minEngineSpeedup)
	}

	soak, err := replicaSoak(n)
	if err != nil {
		return fmt.Errorf("crash soak: %w", err)
	}
	fmt.Printf("%-8s seed %d: %d of %d replicas killed mid-run, %d ops completed (%d no-quorum), %d ops checked in %d windows: %s\n",
		"soak", soak.Seed, soak.Killed, soak.Replicas, soak.Ops, soak.NoQuorum, soak.OpsChecked, soak.WindowsOK, soak.Verdict)
	if !soak.Certified {
		return fmt.Errorf("crash soak failed certification: %s", soak.Verdict)
	}

	fmt.Println()
	fmt.Println("reads and writes are two majority round trips (query-max-timestamp,")
	fmt.Println("write-back); the fast path skips a read's write-back when the quorum")
	fmt.Println("already agrees, and the frugal variant queries timestamps only and")
	fmt.Println("fetches the value once — same atomicity, certified online even while")
	fmt.Println("a minority of replicas is crashed for good.")

	if !jsonOut {
		return nil
	}
	doc := replicaBench{
		OpsTarget:  ops,
		Replicas:   m,
		Quorum:     m/2 + 1,
		Baseline:   base,
		Modes:      rows,
		Saturation: sat,
		Speedup:    speedup,
		MinSpeedup: minEngineSpeedup,
		Soak:       soak,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_replica.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("wrote BENCH_replica.json")
	return nil
}

// replicaVal builds the workload's JSON value: 1 KiB, large enough that
// the frugal variant's constant-size phase-1 messages show up in the
// bytes/op column.
func replicaVal(tag string) json.RawMessage {
	pad := make([]byte, 1024)
	for i := range pad {
		pad[i] = 'a' + byte(i%26)
	}
	v, _ := json.Marshal(tag + string(pad))
	return v
}

func replicaDialOpts(extra ...netreg.DialOption) []netreg.DialOption {
	return append([]netreg.DialOption{
		netreg.WithTimeout(time.Second),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}),
	}, extra...)
}

// replicaCluster starts m independent single-register stores.
func replicaCluster(m int, journaled bool) (addrs []string, servers []*netreg.Server, journals []*obs.Journal, err error) {
	for i := 0; i < m; i++ {
		st, err := netreg.NewStore("v0", 1, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		st.SetValBufCap(64 << 10) // 1 KiB values: default cap is plenty, set explicitly for clarity
		var opts []netreg.ServeOption
		var j *obs.Journal
		if journaled {
			j = obs.NewJournal(obs.WithJournalRing(1 << 16))
			opts = append(opts, netreg.WithJournal(j))
		}
		srv, err := netreg.Serve("127.0.0.1:0", st, opts...)
		if err != nil {
			return nil, nil, nil, err
		}
		addrs = append(addrs, srv.Addr())
		servers = append(servers, srv)
		journals = append(journals, j)
	}
	return addrs, servers, journals, nil
}

// replicaBaseline measures the single-server reference RTT: plain
// read/write ops on one store, one round trip each, with the same four
// closed-loop workers the mode rows use — so the overhead column
// isolates what replication adds, not what concurrency adds.
func replicaBaseline(n int) (replicaBaseRow, error) {
	st, err := netreg.NewStore("v0", 1, nil)
	if err != nil {
		return replicaBaseRow{}, err
	}
	srv, err := netreg.Serve("127.0.0.1:0", st)
	if err != nil {
		return replicaBaseRow{}, err
	}
	defer srv.Close()

	const workers = 4
	type lat struct {
		readSum, writeSum time.Duration
		reads, writes     int
	}
	lats := make([]lat, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		c, err := netreg.Dial[json.RawMessage](srv.Addr(), replicaDialOpts()...)
		if err != nil {
			return replicaBaseRow{}, err
		}
		defer c.Close()
		wg.Add(1)
		go func(i int, c *netreg.Client[json.RawMessage]) {
			defer wg.Done()
			val := replicaVal(fmt.Sprintf("base%d-", i))
			rng := mathrand.New(mathrand.NewSource(replicaSeed + int64(i)))
			l := &lats[i]
			for k := 0; k < n/workers; k++ {
				t0 := time.Now()
				var err error
				if rng.Float64() < 0.9 {
					_, err = c.Do(&wire.Request{Op: "read"})
					l.readSum += time.Since(t0)
					l.reads++
				} else {
					_, err = c.Do(&wire.Request{Op: "write", Val: val})
					l.writeSum += time.Since(t0)
					l.writes++
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i, c)
	}
	wg.Wait()
	wall := time.Since(start)
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			return replicaBaseRow{}, err
		}
	}

	var total lat
	for i := range lats {
		total.readSum += lats[i].readSum
		total.writeSum += lats[i].writeSum
		total.reads += lats[i].reads
		total.writes += lats[i].writes
	}
	row := replicaBaseRow{
		Ops:       total.reads + total.writes,
		OpsPerSec: float64(total.reads+total.writes) / wall.Seconds(),
	}
	if total.reads > 0 {
		row.ReadMeanUs = float64(total.readSum.Microseconds()) / float64(total.reads)
	}
	if total.writes > 0 {
		row.WriteMeanUs = float64(total.writeSum.Microseconds()) / float64(total.writes)
	}
	return row, nil
}

// replicaModeRun measures one protocol variant: 4 quorum clients over an
// m-replica cluster, 90% reads, closed loop.
func replicaModeRun(mode replica.Mode, m, n int, base replicaBaseRow) (replicaModeRow, error) {
	addrs, servers, _, err := replicaCluster(m, false)
	if err != nil {
		return replicaModeRow{}, err
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	const workers = 4
	ws := obs.NewWire()
	tally := obs.NewReplica(m)
	clients := make([]*replica.QClient, workers)
	for i := range clients {
		q, err := replica.Dial(addrs, replica.Options{
			Mode: mode, WriterID: uint32(i + 1), Tally: tally,
			Timeout: time.Second, Wire: ws,
		})
		if err != nil {
			return replicaModeRow{}, err
		}
		defer q.Close()
		clients[i] = q
	}

	type lat struct {
		readSum, writeSum time.Duration
		reads, writes     int
	}
	lats := make([]lat, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i, q := range clients {
		wg.Add(1)
		go func(i int, q *replica.QClient) {
			defer wg.Done()
			rng := mathrand.New(mathrand.NewSource(replicaSeed + int64(i)))
			l := &lats[i]
			for k := 0; k < n/workers; k++ {
				t0 := time.Now()
				var err error
				if rng.Float64() < 0.9 {
					_, err = q.Read()
					l.readSum += time.Since(t0)
					l.reads++
				} else {
					err = q.Write(replicaVal(fmt.Sprintf("c%d-%d-", i, k)))
					l.writeSum += time.Since(t0)
					l.writes++
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i, q)
	}
	wg.Wait()
	wall := time.Since(start)
	for range clients {
		if err := <-errs; err != nil {
			return replicaModeRow{}, err
		}
	}

	var total lat
	for i := range lats {
		total.readSum += lats[i].readSum
		total.writeSum += lats[i].writeSum
		total.reads += lats[i].reads
		total.writes += lats[i].writes
	}
	ops := total.reads + total.writes
	row := replicaModeRow{
		Mode:      mode.String(),
		Ops:       ops,
		OpsPerSec: float64(ops) / wall.Seconds(),
		NoQuorum:  tally.NoQuorum(obs.QRead) + tally.NoQuorum(obs.QWrite),
	}
	if ok := tally.Ok(obs.QRead); ok > 0 {
		row.ReadRoundsPerOp = float64(tally.Rounds(obs.QRead)) / float64(ok)
		row.FastReadFrac = float64(tally.Fast(obs.QRead)) / float64(ok)
	}
	if ok := tally.Ok(obs.QWrite); ok > 0 {
		row.WriteRoundsPerOp = float64(tally.Rounds(obs.QWrite)) / float64(ok)
	}
	if total.reads > 0 {
		row.ReadMeanUs = float64(total.readSum.Microseconds()) / float64(total.reads)
	}
	if total.writes > 0 {
		row.WriteMeanUs = float64(total.writeSum.Microseconds()) / float64(total.writes)
	}
	if base.ReadMeanUs > 0 {
		row.ReadRTTOverhead = row.ReadMeanUs / base.ReadMeanUs
	}
	if ops > 0 {
		in, out := ws.Bytes()
		row.BytesPerOp = float64(in+out) / float64(ops)
	}
	return row, nil
}

// replicaSaturation runs the tentpole comparison and its self-gate:
// the quorum engine vs the PR 9 per-op-goroutine client at closed-loop
// saturation — 4 clients x 16 concurrent logical ops each, 90% reads —
// on a fresh m=3 cluster per side. Returns both rows and the speedup;
// the caller fails the table when it is below minEngineSpeedup.
func replicaSaturation() ([]replicaSatRow, float64, error) {
	const m = 3
	var rows []replicaSatRow
	for _, side := range []struct {
		name   string
		legacy bool
	}{{"engine", false}, {"legacy", true}} {
		addrs, servers, _, err := replicaCluster(m, false)
		if err != nil {
			return nil, 0, err
		}
		tally := obs.NewReplica(m)
		r, err := loadgen.RunCluster(loadgen.ClusterConfig{
			Addrs:    addrs,
			Mode:     replica.ModeABD,
			Clients:  4,
			Depth:    16,
			Duration: time.Second,
			ReadFrac: 0.9,
			Seed:     replicaSeed,
			Legacy:   side.legacy,
			Tally:    tally,
		})
		for _, srv := range servers {
			srv.Close()
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s probe: %w", side.name, err)
		}
		row := replicaSatRow{
			Client:    side.name,
			OpsPerSec: r.Load.AchievedPS,
			P99Us:     r.P99Us,
		}
		if ok := tally.Ok(obs.QRead); ok > 0 {
			row.CombinedFrac = float64(tally.Combined(obs.QRead)) / float64(ok)
		}
		rows = append(rows, row)
	}
	if rows[1].OpsPerSec <= 0 {
		return rows, 0, fmt.Errorf("legacy probe achieved no throughput")
	}
	return rows, rows[0].OpsPerSec / rows[1].OpsPerSec, nil
}

// replicaSoak is the tolerated-crash acceptance run: m=5 journaled
// replicas, a seeded plan killing f=2 permanently mid-stream, four
// journaling quorum clients (one per mode plus a second writer), and a
// merged online checker over all six journals. Certification failing, any
// operation failing, or the kills not firing all fail the row.
func replicaSoak(n int) (replicaSoakRow, error) {
	const (
		m = 5
		f = 2
	)
	perClient := n / 4
	if perClient < 25 {
		perClient = 25
	}
	if perClient > 500 {
		perClient = 500
	}

	addrs, servers, journals, err := replicaCluster(m, true)
	if err != nil {
		return replicaSoakRow{}, err
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	initJSON, _ := json.Marshal("v0")
	qj := obs.NewJournal(obs.WithJournalRing(1 << 16))
	tally := obs.NewReplica(m)
	lt := obs.NewLinz()

	parts := []linz.JournalPart{{J: qj, Prefix: "q/"}}
	for i, j := range journals {
		parts = append(parts, linz.JournalPart{J: j, Prefix: fmt.Sprintf("r%d/", i)})
	}
	ol := linz.NewOnlineParts(parts, linz.OnlineOptions{
		Interval:     10 * time.Millisecond,
		CheckTimeout: 2 * time.Second,
		Tally:        lt,
	})
	for _, p := range parts {
		ol.SetInit(p.Prefix, obs.HashVal(initJSON))
	}
	ol.Start()

	modes := []replica.Mode{replica.ModeABD, replica.ModeFast, replica.ModeFrugal, replica.ModeABD}
	clients := make([]*replica.QClient, len(modes))
	for i, mode := range modes {
		q, err := replica.Dial(addrs, replica.Options{
			Mode: mode, WriterID: uint32(i + 1), Journal: qj, Tally: tally,
			Timeout: 2 * time.Second,
		})
		if err != nil {
			return replicaSoakRow{}, err
		}
		clients[i] = q
	}

	within := time.Duration(perClient) * 2 * time.Millisecond
	kills := faultnet.PlanKills(replicaSeed, m, f, within)
	killed := 0
	var killMu sync.Mutex
	stop := faultnet.Schedule(kills, func(r int) {
		killMu.Lock()
		killed++
		killMu.Unlock()
		servers[r].Close()
	})
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	for i, q := range clients {
		wg.Add(1)
		go func(i int, q *replica.QClient) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				var err error
				if i%2 == 0 {
					err = q.Write(replicaVal(fmt.Sprintf("s%d-%d-", i, k)))
				} else {
					_, err = q.Read()
				}
				if err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", i, k, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
			errs <- nil
		}(i, q)
	}
	wg.Wait()
	stop()
	for range clients {
		if err := <-errs; err != nil {
			return replicaSoakRow{}, err
		}
	}

	for _, q := range clients {
		q.Close()
	}
	for _, srv := range servers {
		srv.Close()
	}
	ol.Stop()

	snap := lt.Snapshot()
	row := replicaSoakRow{
		Seed:       replicaSeed,
		Replicas:   m,
		Killed:     killed,
		Ops:        tally.Ok(obs.QRead) + tally.Ok(obs.QWrite),
		NoQuorum:   tally.NoQuorum(obs.QRead) + tally.NoQuorum(obs.QWrite),
		OpsChecked: snap.OpsChecked,
		WindowsOK:  snap.WindowsOK,
	}
	row.Certified = ol.FirstFailure() == nil && snap.WindowsViolation == 0 && row.NoQuorum == 0 && killed == f
	switch {
	case ol.FirstFailure() != nil:
		row.Verdict = "VIOLATION: " + ol.FirstFailure().Reason
	case snap.WindowsViolation != 0:
		row.Verdict = "violating windows"
	case row.NoQuorum != 0:
		row.Verdict = "quorum lost inside tolerance"
	case killed != f:
		row.Verdict = fmt.Sprintf("only %d of %d kills fired", killed, f)
	default:
		row.Verdict = "certified atomic online"
	}
	return row, nil
}
