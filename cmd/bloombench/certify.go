package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/history"
	"repro/internal/linz"
	"repro/internal/loadgen"
	"repro/internal/netreg"
	"repro/internal/obs"
)

// violationHTML is the timeline artifact the -certify mode always
// writes: the synthetic non-atomic history rendered lane-per-client,
// violating operations highlighted. CI uploads it.
const violationHTML = "LINZ_violation.html"

// certOffline is the offline row: a journaled load-generator run checked
// after the fact as one history.
type certOffline struct {
	Ops        int     `json:"ops"`
	Keys       int     `json:"keys"`
	Segments   int     `json:"segments"`
	Blurred    int     `json:"blurred_cuts"`
	States     int64   `json:"dfs_states"`
	Drops      uint64  `json:"journal_drops"`
	CheckSecs  float64 `json:"check_secs"`
	CheckedPS  float64 `json:"checked_ops_per_sec"`
	ServerPeak float64 `json:"server_peak_ops_per_sec"`
	Verdict    string  `json:"verdict"`
}

// certOnline is the online row: the windowed checker running live
// against an open-loop run at half the measured peak.
type certOnline struct {
	OfferedPS     float64 `json:"offered_ops_per_sec"`
	AchievedPS    float64 `json:"achieved_ops_per_sec"`
	OpsChecked    int64   `json:"ops_checked"`
	WindowsOK     int64   `json:"windows_ok"`
	WindowsViol   int64   `json:"windows_violation"`
	WindowsUndec  int64   `json:"windows_undecided"`
	ShedOps       int64   `json:"shed_ops"`
	BlurredCuts   int64   `json:"blurred_cuts"`
	Drops         int64   `json:"journal_drops"`
	CheckedPerSec float64 `json:"checked_per_busy_sec"`
	Coverage      float64 `json:"coverage_frac"`
}

// certOverhead is the journal-overhead row: closed-loop peak with the
// tap disabled vs enabled.
type certOverhead struct {
	OffPS float64 `json:"peak_journal_off_ops_per_sec"`
	OnPS  float64 `json:"peak_journal_on_ops_per_sec"`
	Pct   float64 `json:"overhead_pct"`
}

// certFaulty is the seeded faulty pipelined row: the full two-writer
// protocol over lossy links with retrying clients, certified online.
type certFaulty struct {
	Seed       int64 `json:"seed"`
	Writes     int   `json:"writes_issued"`
	Faults     int64 `json:"faults_injected"`
	Retries    int64 `json:"retries"`
	OpsChecked int64 `json:"ops_checked"`
	WindowsOK  int64 `json:"windows_ok"`
	Certified  bool  `json:"certified_atomic_online"`
}

// certViolation is the negative control: a synthetic non-atomic history
// must fail with culprits and render the timeline artifact.
type certViolation struct {
	Ops      int    `json:"ops"`
	Verdict  string `json:"verdict"`
	Culprits int    `json:"culprit_ops"`
	HTML     string `json:"timeline_html"`
	Bytes    int    `json:"timeline_bytes"`
}

// certifyBench is the BENCH_certify.json document.
type certifyBench struct {
	OpsTarget int           `json:"ops_target"`
	Offline   certOffline   `json:"offline"`
	Online    certOnline    `json:"online"`
	Overhead  certOverhead  `json:"journal_overhead"`
	Faulty    certFaulty    `json:"faulty_pipelined_online"`
	Violation certViolation `json:"violation_demo"`
}

// certifyTable runs the T-certify measurements: how fast the windowed
// checker (internal/linz) certifies journaled histories offline, whether
// the online mode keeps up with live traffic, what the journal tap costs
// the hot path, that a seeded faulty pipelined protocol run still
// certifies atomic online, and that a known-bad history is caught and
// rendered. With jsonOut it writes BENCH_certify.json; the violation
// timeline artifact is always written.
func certifyTable(ops int, jsonOut bool) error {
	fmt.Println("== T-certify: live history journal + windowed linearizability checking ==")
	fmt.Println()

	off, err := certifyOffline(ops)
	if err != nil {
		return fmt.Errorf("offline row: %w", err)
	}
	fmt.Printf("%-10s %8d ops  %d keys  %d segments (%d blurred)  %d states  %.2fs check  %.1fM ops/s checked  verdict %s\n",
		"offline", off.Ops, off.Keys, off.Segments, off.Blurred, off.States,
		off.CheckSecs, off.CheckedPS/1e6, off.Verdict)
	if off.Verdict != "ok" {
		return fmt.Errorf("offline check of a real run returned %s", off.Verdict)
	}

	on, err := certifyOnline(ops, off.ServerPeak)
	if err != nil {
		return fmt.Errorf("online row: %w", err)
	}
	fmt.Printf("%-10s %8.0f offered/s  %d ops checked (%.0f%% coverage)  windows %d ok / %d violation / %d undecided  shed %d  %.1fM ops/s checker\n",
		"online", on.OfferedPS, on.OpsChecked, on.Coverage*100,
		on.WindowsOK, on.WindowsViol, on.WindowsUndec, on.ShedOps, on.CheckedPerSec/1e6)
	if on.WindowsViol != 0 {
		return fmt.Errorf("online checker reported %d violating windows on clean traffic", on.WindowsViol)
	}

	oh, err := certifyOverhead(ops)
	if err != nil {
		return fmt.Errorf("overhead row: %w", err)
	}
	fmt.Printf("%-10s journal off %.0f ops/s, on %.0f ops/s: %.1f%% overhead\n",
		"overhead", oh.OffPS, oh.OnPS, oh.Pct)

	fy, err := certifyFaulty(ops)
	if err != nil {
		return fmt.Errorf("faulty row: %w", err)
	}
	verdict := "certified atomic online"
	if !fy.Certified {
		verdict = "CERTIFICATION FAILED"
	}
	fmt.Printf("%-10s seed %d: %d writes over lossy links (%d faults, %d retries), %d ops checked in %d windows: %s\n",
		"faulty", fy.Seed, fy.Writes, fy.Faults, fy.Retries, fy.OpsChecked, fy.WindowsOK, verdict)
	if !fy.Certified {
		return fmt.Errorf("seeded faulty pipelined run failed online certification")
	}

	vd, err := certifyViolation()
	if err != nil {
		return fmt.Errorf("violation demo: %w", err)
	}
	fmt.Printf("%-10s %d-op synthetic history: verdict %s, %d culprit ops, timeline %s (%d bytes)\n",
		"violation", vd.Ops, vd.Verdict, vd.Culprits, vd.HTML, vd.Bytes)
	if vd.Verdict != "violation" {
		return fmt.Errorf("synthetic non-atomic history returned %s, want violation", vd.Verdict)
	}

	fmt.Println()
	fmt.Println("the journal taps every served op into per-connection SPSC rings; the")
	fmt.Println("checker partitions per register, cuts at quiescent instants below the")
	fmt.Println("journal horizon, threads the register value across cuts, and DFS-checks")
	fmt.Println("only genuinely concurrent segments — which is why million-op histories")
	fmt.Println("certify in seconds while a violating window renders as a timeline.")

	if !jsonOut {
		return nil
	}
	doc := certifyBench{
		OpsTarget: ops,
		Offline:   off,
		Online:    on,
		Overhead:  oh,
		Faulty:    fy,
		Violation: vd,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_certify.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("wrote BENCH_certify.json")
	return nil
}

// certifyDur scales one measurement run's duration to the -ops budget:
// smoke tests stay fast, real runs long enough to accumulate the target.
func certifyDur(ops int) time.Duration {
	switch {
	case ops <= 10000:
		return 250 * time.Millisecond
	case ops <= 200000:
		return time.Second
	default:
		return 2 * time.Second
	}
}

// certifyGen is the canonical certification workload: multiple registers,
// unique write values (so two writes can never alias in the checker),
// pipelined connections.
func certifyGen(addr string, dur time.Duration) loadgen.Config {
	return loadgen.Config{
		Addr:         addr,
		Conns:        4,
		Depth:        32,
		Duration:     dur,
		ReadFrac:     0.8,
		ValueBytes:   16,
		UniqueValues: true,
		Regs:         []string{"", "reg1", "reg2"},
		ZipfS:        1.2,
		Seed:         11,
	}
}

// certifyServer starts a journaled in-process server hosting the
// workload's registers.
func certifyServer(j *obs.Journal, workers int) (*netreg.Server, error) {
	st, err := netreg.NewStore("x", 1, nil)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"reg1", "reg2"} {
		if err := netreg.AddRegister(st, name, "x", 1, nil); err != nil {
			return nil, err
		}
	}
	opts := []netreg.ServeOption{netreg.WithWorkers(workers)}
	if j != nil {
		opts = append(opts, netreg.WithJournal(j))
	}
	return netreg.Serve("127.0.0.1:0", st, opts...)
}

// drainInto pumps journal records into a per-key history accumulation
// until stop is closed, then drains once more. Flagged records (refused
// ops, dedup replays) are skipped, as the checkers would. The history is
// the drainer's alone until done closes; count is the concurrently
// readable progress signal.
func drainInto(j *obs.Journal, h *linz.History, count *atomic.Int64, stop <-chan struct{}, done chan<- struct{}) {
	names := map[uint32]string{}
	drain := func() {
		for _, s := range j.Sources() {
			s.Drain(func(r obs.Rec) {
				if r.Flags != 0 {
					return
				}
				name, ok := names[r.Key]
				if !ok {
					name = j.KeyName(r.Key)
					names[r.Key] = name
				}
				kind := linz.Read
				if r.Kind == obs.JWrite {
					kind = linz.Write
				}
				h.Add(name, linz.Op{Inv: r.Inv, Res: r.Res, Val: r.Val, Client: r.Client, Kind: kind})
				count.Add(1)
			})
		}
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			drain()
			close(done)
			return
		case <-tick.C:
			drain()
		}
	}
}

// certifyOffline accumulates a journaled closed-loop run of ≈ ops
// operations and checks the whole history offline.
func certifyOffline(ops int) (certOffline, error) {
	j := obs.NewJournal(obs.WithJournalRing(1 << 17))
	srv, err := certifyServer(j, 0)
	if err != nil {
		return certOffline{}, err
	}
	defer srv.Close()

	h := linz.NewHistory()
	var drained atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go drainInto(j, h, &drained, stop, done)

	var peak float64
	cfg := certifyGen(srv.Addr(), certifyDur(ops))
	for iter := 0; drained.Load() < int64(ops) && iter < 40; iter++ {
		cfg.Seed++
		r, err := loadgen.Run(cfg)
		if err != nil {
			close(stop)
			<-done
			return certOffline{}, err
		}
		if r.Load.AchievedPS > peak {
			peak = r.Load.AchievedPS
		}
	}
	srv.Close() // closes conns → taps close → horizon unbounded
	close(stop)
	<-done

	rep := linz.Check(h, linz.Options{Timeout: 60 * time.Second})
	row := certOffline{
		Ops:        rep.Ops,
		Keys:       rep.Keys,
		Segments:   rep.Segments,
		Blurred:    rep.Blurred,
		States:     rep.States,
		Drops:      j.Drops(),
		CheckSecs:  rep.Elapsed.Seconds(),
		ServerPeak: peak,
		Verdict:    rep.Verdict.String(),
	}
	if rep.Elapsed > 0 {
		row.CheckedPS = float64(rep.Ops) / rep.Elapsed.Seconds()
	}
	return row, nil
}

// certifyOnline runs the windowed checker live against an open-loop run
// at half the measured peak — the regime the online mode is built for.
func certifyOnline(ops int, peak float64) (certOnline, error) {
	j := obs.NewJournal(obs.WithJournalRing(1 << 17))
	srv, err := certifyServer(j, 0)
	if err != nil {
		return certOnline{}, err
	}
	defer srv.Close()

	tally := obs.NewLinz()
	ol := linz.NewOnline(j, linz.OnlineOptions{
		Interval:     25 * time.Millisecond,
		CheckTimeout: 2 * time.Second,
		Tally:        tally,
	})
	ol.Start()

	cfg := certifyGen(srv.Addr(), certifyDur(ops))
	cfg.Rate = peak / 2
	if cfg.Rate < 1000 {
		cfg.Rate = 1000
	}
	if d := time.Duration(float64(ops) / cfg.Rate * float64(time.Second)); d > cfg.Duration {
		cfg.Duration = d
	}
	if cfg.Duration > 6*time.Second {
		cfg.Duration = 6 * time.Second
	}
	r, err := loadgen.Run(cfg)
	if err != nil {
		srv.Close()
		ol.Stop()
		return certOnline{}, err
	}
	srv.Close() // taps close → the final sweep sees an unbounded horizon
	ol.Stop()

	if f := ol.FirstFailure(); f != nil {
		return certOnline{}, fmt.Errorf("online checker failed clean traffic: %s", f.Reason)
	}
	snap := tally.Snapshot()
	row := certOnline{
		OfferedPS:     r.Load.OfferedPS,
		AchievedPS:    r.Load.AchievedPS,
		OpsChecked:    snap.OpsChecked,
		WindowsOK:     snap.WindowsOK,
		WindowsViol:   snap.WindowsViolation,
		WindowsUndec:  snap.WindowsUndecided,
		ShedOps:       snap.ShedOps,
		BlurredCuts:   snap.BlurredCuts,
		Drops:         snap.JournalDrops,
		CheckedPerSec: snap.CheckedPerSec,
	}
	if r.Load.Achieved > 0 {
		row.Coverage = float64(snap.OpsChecked) / float64(r.Load.Achieved)
	}
	return row, nil
}

// certifyOverhead probes the closed-loop peak with the journal tap
// disabled and enabled. The enabled run drains and discards on a relaxed
// cadence (the ring absorbs bursts; production drains from a spare core),
// so what's measured is the tap itself, not the drainer's CPU share.
// Probes alternate and each side keeps its best, which squeezes
// scheduler noise out of the comparison on small machines.
func certifyOverhead(ops int) (certOverhead, error) {
	dur := certifyDur(ops)
	probe := func(j *obs.Journal) (float64, error) {
		srv, err := certifyServer(j, 0)
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		if j != nil {
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				tick := time.NewTicker(2 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						for _, s := range j.Sources() {
							s.Drain(func(obs.Rec) {})
						}
					}
				}
			}()
			defer func() { close(stop); <-done }()
		}
		r, err := loadgen.Run(certifyGen(srv.Addr(), dur))
		if err != nil {
			return 0, err
		}
		return r.Load.AchievedPS, nil
	}

	var row certOverhead
	for i := 0; i < 3; i++ {
		off, err := probe(nil)
		if err != nil {
			return certOverhead{}, err
		}
		if off > row.OffPS {
			row.OffPS = off
		}
		on, err := probe(obs.NewJournal())
		if err != nil {
			return certOverhead{}, err
		}
		if on > row.OnPS {
			row.OnPS = on
		}
	}
	if row.OffPS > 0 {
		row.Pct = (row.OffPS - row.OnPS) / row.OffPS * 100
	}
	return row, nil
}

// certifyFaulty reruns the fault table's seeded lossy-link scenario —
// the full two-writer protocol, every port of a node sharing one
// pipelined connection, drops and severs injected, clients retrying —
// with both register servers journaled and online checkers live. The
// run must certify atomic online: at-most-once application (dedup
// replays are journaled flagged) is exactly what the checker would
// catch failing.
func certifyFaulty(ops int) (certFaulty, error) {
	const readers = 2
	writesPerNode := ops / 500
	if writesPerNode < 20 {
		writesPerNode = 20
	}
	if writesPerNode > 200 {
		writesPerNode = 200
	}

	seq := new(history.Sequencer)
	type val = core.Tagged[string]

	tally := obs.NewLinz()
	journals := make([]*obs.Journal, 2)
	onlines := make([]*linz.Online, 2)
	servers := make([]*netreg.Server, 2)
	regs := make([]*netreg.Reg[val], 2)

	plan := &faultnet.Plan{Seed: faultSeed, DropProb: 0.05, SeverProb: 0.02}
	rpc := obs.NewRPC()
	opts := []netreg.DialOption{
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(250 * time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 40, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
		netreg.WithRPCStats(rpc),
	}

	for i := range servers {
		st, err := netreg.NewStore(val{Val: "v0"}, readers+1, seq)
		if err != nil {
			return certFaulty{}, err
		}
		journals[i] = obs.NewJournal()
		srv, err := netreg.Serve("127.0.0.1:0", st, netreg.WithJournal(journals[i]), netreg.WithWorkers(4))
		if err != nil {
			return certFaulty{}, err
		}
		defer srv.Close()
		servers[i] = srv
		if regs[i], err = netreg.NewSharedReg[val](srv.Addr(), readers+1, opts...); err != nil {
			return certFaulty{}, err
		}
		defer regs[i].Close()
		onlines[i] = linz.NewOnline(journals[i], linz.OnlineOptions{
			Interval:     10 * time.Millisecond,
			CheckTimeout: 2 * time.Second,
			Tally:        tally,
		})
		onlines[i].Start()
	}

	tw := core.New(readers, "v0",
		core.WithRegisters[string](regs[0], regs[1]),
		core.WithSequencer[string](seq))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < writesPerNode; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < writesPerNode; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()

	for i := range servers {
		servers[i].Close()
		onlines[i].Stop()
	}

	certified := true
	for _, ol := range onlines {
		if ol.FirstFailure() != nil {
			certified = false
		}
	}
	snap := tally.Snapshot()
	if snap.WindowsViolation != 0 || snap.WindowsUndecided != 0 {
		certified = false
	}
	return certFaulty{
		Seed:       faultSeed,
		Writes:     2 * writesPerNode,
		Faults:     plan.Stats().Total(),
		Retries:    rpc.Retries(obs.RPCRead) + rpc.Retries(obs.RPCWrite),
		OpsChecked: snap.OpsChecked,
		WindowsOK:  snap.WindowsOK,
		Certified:  certified,
	}, nil
}

// syntheticViolation is the negative control: the Section 8 disagreement
// shape. Four writers write distinct values concurrently; two readers,
// reading twice during the writes, observe two of those values in
// opposite orders — so any linearization needs both w(1)<w(2) and
// w(2)<w(1), and none exists.
func syntheticViolation() *linz.Report {
	const ms = int64(time.Millisecond)
	ops := []linz.Op{
		{Kind: linz.Write, Client: 0, Val: 1, Inv: 0, Res: 100 * ms},
		{Kind: linz.Write, Client: 1, Val: 2, Inv: 2 * ms, Res: 98 * ms},
		{Kind: linz.Write, Client: 2, Val: 3, Inv: 4 * ms, Res: 96 * ms},
		{Kind: linz.Write, Client: 3, Val: 4, Inv: 6 * ms, Res: 94 * ms},
		{Kind: linz.Read, Client: 4, Val: 1, Inv: 10 * ms, Res: 20 * ms},
		{Kind: linz.Read, Client: 4, Val: 2, Inv: 30 * ms, Res: 40 * ms},
		{Kind: linz.Read, Client: 5, Val: 2, Inv: 12 * ms, Res: 22 * ms},
		{Kind: linz.Read, Client: 5, Val: 1, Inv: 32 * ms, Res: 42 * ms},
	}
	return linz.CheckKey("tournament", linz.Value{Known: true, V: 0}, ops,
		linz.Options{Timeout: 10 * time.Second})
}

// certifyViolation checks the negative control fails and renders its
// timeline artifact.
func certifyViolation() (certViolation, error) {
	rep := syntheticViolation()
	row := certViolation{Ops: rep.Ops, Verdict: rep.Verdict.String(), HTML: violationHTML}
	if len(rep.Failures) == 0 {
		return row, fmt.Errorf("no failure to render (verdict %s)", rep.Verdict)
	}
	f := &rep.Failures[0]
	row.Culprits = len(f.Culprits())

	out, err := os.Create(violationHTML)
	if err != nil {
		return row, err
	}
	if err := linz.RenderTimeline(f, out); err != nil {
		out.Close()
		return row, err
	}
	if err := out.Close(); err != nil {
		return row, err
	}
	info, err := os.Stat(violationHTML)
	if err != nil {
		return row, err
	}
	row.Bytes = int(info.Size())
	return row, nil
}
