// Command bloombench regenerates the repository's experiment tables
// (EXPERIMENTS.md): the Section 5 cost claims measured on live traffic
// (T-cost), wait-freedom under crashes (T-wf), a quick latency profile
// against the locked baseline and the MRMW construction (T-perf), and the
// substrate sweep comparing the certifiable mutex registers against the
// lock-free Pointer and Seqlock substrates.
//
// Usage:
//
//	bloombench [-ops N] [-json]
//	bloombench -faults [-ops N] [-json]
//	bloombench -net [-ops N] [-json]
//	bloombench -serve :8080
//
// With -json, the substrate sweep is also written to BENCH_substrates.json
// and the observability sweep to BENCH_obs.json in the current directory
// for machine consumption (CI trend lines).
//
// With -faults, bloombench instead runs the T-fault table: networked
// round-trip latency with and without injected delay, then the two-writer
// protocol over seeded faulty links (drops, severed connections) with
// retrying clients, certifying the recovered history with proof.Certify.
// Combined with -json it writes BENCH_fault.json.
//
// With -net, bloombench instead runs the T-net table: single-connection
// write throughput swept across codec (JSON vs binary framing) and
// pipeline depth (1, 8, 64), a multi-register fan-out behind one
// listener, and a certified pipelined two-writer run. At real op counts
// it enforces the transport rework's ≥3x bar (binary pipelined at depth 8
// vs JSON serial). Combined with -json it writes BENCH_net.json.
//
// With -load, bloombench instead runs the T-load table: the open-loop
// saturation curve (closed-loop peak probe, then Poisson arrivals
// stepped as fractions of the peak, latency measured from scheduled
// arrivals). At real op counts it enforces the raw-speed campaign's ≥3x
// bar over the single-connection depth-64 figure. Combined with -json it
// writes BENCH_loadgen.json. The full generator with every knob is
// cmd/bloomload.
//
// With -certify, bloombench instead runs the T-certify table: a journaled
// load-generator run checked offline as one history (internal/linz), the
// online windowed checker shadowing an open-loop run at half peak, the
// journal tap's hot-path overhead, the seeded faulty pipelined two-writer
// run certified atomic online, and a synthetic non-atomic history that
// must fail — its timeline is rendered to LINZ_violation.html. Combined
// with -json it writes BENCH_certify.json.
//
// With -serve, bloombench instead runs an open-ended observed workload
// over every substrate and serves /metrics (Prometheus text format),
// /vars (JSON snapshots), /debug/linz (the online checker's live verdict
// and, after a violation, the failed window's timeline), and
// /debug/pprof/ on the given address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	atomicregister "repro"
	"repro/internal/core"
	"repro/internal/lamport"
	"repro/internal/register"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bloombench:", err)
		os.Exit(1)
	}
}

// counters pulls the access counters off both real registers through the
// substrate-neutral Counted interface (every substrate implements it; the
// fast ones return nil counters unless counting was requested).
func counters(reg *atomicregister.TwoWriter[int]) (*register.Counters, *register.Counters) {
	r0 := reg.Reg(0).(register.Counted)
	r1 := reg.Reg(1).(register.Counted)
	return r0.Counters(), r1.Counters()
}

func run() error {
	ops := flag.Int("ops", 100000, "operations per measurement")
	jsonOut := flag.Bool("json", false, "also write BENCH_substrates.json and BENCH_obs.json (or BENCH_fault.json / BENCH_net.json with -faults / -net)")
	faults := flag.Bool("faults", false, "run the T-fault table (faulty-link recovery) instead of the default tables")
	netSweep := flag.Bool("net", false, "run the T-net table (wire codec × pipeline depth throughput) instead of the default tables")
	load := flag.Bool("load", false, "run the T-load table (open-loop saturation curve) instead of the default tables")
	certify := flag.Bool("certify", false, "run the T-certify table (journal + linearizability checking) instead of the default tables")
	replicaFlag := flag.Bool("replica", false, "run the T-replica table (ABD quorum register: variant costs + tolerated-crash soak) instead of the default tables")
	serveAddr := flag.String("serve", "", "serve /metrics, /vars, and /debug/pprof/ on this address instead of running the tables")
	flag.Parse()

	if *serveAddr != "" {
		return serve(*serveAddr)
	}
	if *faults {
		return faultTable(*ops, *jsonOut)
	}
	if *netSweep {
		return netTable(*ops, *jsonOut)
	}
	if *load {
		return loadTable(*ops, *jsonOut)
	}
	if *certify {
		return certifyTable(*ops, *jsonOut)
	}
	if *replicaFlag {
		return replicaTable(*ops, *jsonOut)
	}

	costTable(*ops)
	crashTable()
	stackTable()
	perfTable(*ops)
	if err := substrateTable(*ops, *jsonOut); err != nil {
		return err
	}
	fmt.Println()
	return obsTable(*ops, *jsonOut)
}

// stackTable reports the space cost of the footnote-3 substrate: safe bits
// per 1WnR atomic register for various shapes. The blow-up is why the
// paper assumes the real registers rather than building them.
func stackTable() {
	fmt.Println("== T-stack: safe bits per real register (footnote 3 substrate) ==")
	fmt.Println()
	fmt.Printf("%-10s %-14s %-14s %s\n", "readers", "domain size", "write budget", "safe bits")
	for _, shape := range []struct{ readers, k, budget int }{
		{2, 3, 8},
		{2, 5, 16},
		{3, 3, 8},
		{5, 3, 8},
		{3, 5, 32},
	} {
		domain := make([]int, shape.k)
		for i := range domain {
			domain[i] = i
		}
		a, err := lamport.NewAtomicN(shape.readers, domain, shape.budget, 0, register.NewSeededAdversary(1))
		if err != nil {
			fmt.Println("stack:", err)
			return
		}
		fmt.Printf("%-10d %-14d %-14d %d\n", shape.readers, shape.k, shape.budget, a.BitCount())
	}
	fmt.Println()
	fmt.Println("(cells grow as n + n(n-1) for n readers; bits per cell as (budget+1) × domain.)")
	fmt.Println()
}

// costTable measures the T-cost rows: real accesses per simulated
// operation (Section 5's claims: write = 1+1, read = 3, writer-read = 1–2,
// space = 1 extra bit per real register).
func costTable(ops int) {
	fmt.Println("== T-cost: real accesses per simulated operation (Section 5) ==")
	fmt.Println()
	fmt.Printf("%-28s %-14s %-10s %s\n", "operation", "paper claims", "measured", "verdict")

	row := func(name, claim string, measured float64, okLo, okHi float64) {
		verdict := "OK"
		if measured < okLo || measured > okHi {
			verdict = "MISMATCH"
		}
		fmt.Printf("%-28s %-14s %-10.2f %s\n", name, claim, measured, verdict)
	}

	// Writes.
	reg := atomicregister.New(1, 0)
	c0, c1 := counters(reg)
	for i := 0; i < ops; i++ {
		reg.Writer(i % 2).Write(i)
	}
	reads := float64(c0.TotalReads()+c1.TotalReads()) / float64(ops)
	writes := float64(c0.Writes()+c1.Writes()) / float64(ops)
	row("write: real reads", "1", reads, 1, 1)
	row("write: real writes", "1", writes, 1, 1)

	// Reads.
	base := c0.TotalReads() + c1.TotalReads()
	for i := 0; i < ops; i++ {
		_ = reg.Reader(1).Read()
	}
	perRead := float64(c0.TotalReads()+c1.TotalReads()-base) / float64(ops)
	row("read: real reads", "3", perRead, 3, 3)

	// Writer-as-reader.
	reg2 := atomicregister.New(0, 0)
	d0, d1 := counters(reg2)
	wr := reg2.WriterReader(0)
	other := reg2.WriterReader(1)
	wr.Write(1)
	base = d0.TotalReads() + d1.TotalReads()
	for i := 0; i < ops; i++ {
		if i%10 == 0 {
			other.Write(i) // keep both tags moving
		}
		_ = wr.Read()
	}
	baseAdj := base + int64(ops/10) // the other writer's protocol reads
	perWR := float64(d0.TotalReads()+d1.TotalReads()-baseAdj) / float64(ops)
	row("writer-as-reader: reads", "1-2", perWR, 1, 2)

	fmt.Println()
	fmt.Println("space: each real register stores one value plus ONE tag bit; values unbounded.")
	fmt.Println()
}

// crashTable demonstrates the T-wf rows: crashes at every protocol step
// leave the register fully usable.
func crashTable() {
	fmt.Println("== T-wf: wait-freedom under crashes (Sections 1 and 5) ==")
	fmt.Println()
	fmt.Printf("%-34s %-22s %s\n", "crash point", "write took effect?", "register usable after?")
	for step := 0; step < core.WriterSteps; step++ {
		reg := atomicregister.New(1, 0, atomicregister.WithRecording[int]())
		reg.Writer(0).Write(1)
		took := reg.Writer(1).WriteCrashing(2, step)
		reg.Writer(0).Write(3)
		usable := reg.Reader(1).Read() == 3
		if _, err := atomicregister.Certify(reg); err != nil {
			fmt.Printf("certification after crash failed: %v\n", err)
			return
		}
		names := []string{"before real read", "between read and write", "after real write"}
		fmt.Printf("writer crashed %-20s %-22v %v (run certified atomic)\n", names[step], took, usable)
	}
	for step := 0; step < core.ReaderSteps; step++ {
		reg := atomicregister.New(2, 0, atomicregister.WithRecording[int]())
		reg.Writer(0).Write(1)
		reg.Reader(1).ReadCrashing(step)
		usable := reg.Reader(2).Read() == 1
		if _, err := atomicregister.Certify(reg); err != nil {
			fmt.Printf("certification after crash failed: %v\n", err)
			return
		}
		fmt.Printf("reader crashed after %d real reads    %-22s %v (run certified atomic)\n", step, "n/a", usable)
	}
	fmt.Println()
}

// perfTable measures the T-perf rows: sequential latency per operation.
func perfTable(ops int) {
	fmt.Println("== T-perf: sequential latency (this machine, rough) ==")
	fmt.Println()
	fmt.Printf("%-40s %s\n", "operation", "ns/op")

	measure := func(name string, f func(i int)) {
		start := time.Now()
		for i := 0; i < ops; i++ {
			f(i)
		}
		fmt.Printf("%-40s %.1f\n", name, float64(time.Since(start).Nanoseconds())/float64(ops))
	}

	reg := atomicregister.New(1, 0)
	w := reg.Writer(0)
	r := reg.Reader(1)
	measure("two-writer: write", func(i int) { w.Write(i) })
	measure("two-writer: read", func(i int) { _ = r.Read() })
	wr := reg.WriterReader(0)
	measure("two-writer: writer-as-reader read", func(i int) { _ = wr.Read() })

	locked := register.NewLockedMRMW(0)
	measure("locked baseline: write", func(i int) { locked.Write(i) })
	measure("locked baseline: read", func(i int) { _ = locked.Read() })

	for _, writers := range []int{2, 4, 8} {
		m, err := atomicregister.NewMRMW(writers, 1, 0, false)
		if err != nil {
			fmt.Println("mrmw:", err)
			return
		}
		mw := m.Writer(0)
		mr := m.Reader(0)
		measure(fmt.Sprintf("MRMW (n=%d writers): write", writers), func(i int) { mw.Write(i) })
		measure(fmt.Sprintf("MRMW (n=%d writers): read", writers), func(i int) { _ = mr.Read() })
	}
	fmt.Println()
	fmt.Println("note: the locked baseline is faster per op but is not wait-free — a")
	fmt.Println("descheduled or crashed lock holder blocks every other processor, which")
	fmt.Println("is precisely what register protocols exist to avoid.")
	fmt.Println()
}

// substrateRow is one line of the substrate sweep, in both the printed
// table and BENCH_substrates.json.
type substrateRow struct {
	Substrate   string  `json:"substrate"`
	Certifiable bool    `json:"certifiable"`
	WriteNs     float64 `json:"write_ns_per_op"`
	ReadNs      float64 `json:"read_ns_per_op"`
}

// substrateTable measures sequential write and read latency of the full
// two-writer protocol over each real-register substrate, printing a table
// and optionally writing BENCH_substrates.json.
func substrateTable(ops int, jsonOut bool) error {
	fmt.Println("== T-substrate: protocol latency per real-register substrate ==")
	fmt.Println()
	fmt.Printf("%-14s %-14s %-12s %s\n", "substrate", "certifiable?", "write ns/op", "read ns/op")

	measure := func(f func(i int)) float64 {
		start := time.Now()
		for i := 0; i < ops; i++ {
			f(i)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ops)
	}

	var rows []substrateRow
	for _, s := range []atomicregister.Substrate{
		atomicregister.Certifiable, atomicregister.FastPointer, atomicregister.FastSeqlock,
	} {
		reg := atomicregister.New(1, 0, atomicregister.WithSubstrate[int](s))
		w := reg.Writer(0)
		r := reg.Reader(1)
		row := substrateRow{
			Substrate:   s.String(),
			Certifiable: s == atomicregister.Certifiable,
			WriteNs:     measure(func(i int) { w.Write(i) }),
			ReadNs:      measure(func(i int) { _ = r.Read() }),
		}
		rows = append(rows, row)
		fmt.Printf("%-14s %-14v %-12.1f %.1f\n", row.Substrate, row.Certifiable, row.WriteNs, row.ReadNs)
	}
	fmt.Println()
	fmt.Println("the fast substrates trade proof.Certify (no stamps) for lock-free real")
	fmt.Println("accesses; their runs are still checkable with CheckAtomic / the")
	fmt.Println("cross-substrate conformance suite.")

	if !jsonOut {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Ops  int            `json:"ops_per_measurement"`
		Rows []substrateRow `json:"substrates"`
	}{ops, rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_substrates.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("wrote BENCH_substrates.json")
	return nil
}
