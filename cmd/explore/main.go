// Command explore model-checks the two-writer protocol: it enumerates (or
// samples) interleavings of a configuration and runs the Section 7
// certifying linearizer on every schedule, reporting the classification
// statistics and any failure.
//
// Usage:
//
//	explore [-w0 N] [-w1 N] [-readers a,b,c] [-variant name] [-sample N] [-seed S]
//
// With -sample 0 (default) the search is exhaustive; check the printed
// schedule count estimate first for large configurations. Variants other
// than "faithful" are protocol ablations expected to fail: the tool then
// hunts for a violating schedule with the generic exhaustive checker.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/atomicity"
	"repro/internal/proof"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func parseReaders(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad reader count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseVariant(s string) (sched.Variant, error) {
	for _, v := range []sched.Variant{
		sched.Faithful, sched.NoThirdRead, sched.WrongTagRule, sched.WriteFirst, sched.NoTagBit,
	} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q (faithful, no-third-read, wrong-tag-rule, write-first, no-tag-bit)", s)
}

func run() error {
	w0 := flag.Int("w0", 2, "writes by writer 0")
	w1 := flag.Int("w1", 2, "writes by writer 1")
	wseq0 := flag.String("wseq0", "", "writer 0 op sequence over w/r (overrides -w0; 'r' = combined-automaton read)")
	wseq1 := flag.String("wseq1", "", "writer 1 op sequence over w/r (overrides -w1)")
	crashes := flag.Int("crashes", 0, "also explore up to N processor crashes at every point")
	readersFlag := flag.String("readers", "2", "comma-separated reads per reader")
	variantFlag := flag.String("variant", "faithful", "protocol variant")
	sample := flag.Int("sample", 0, "random schedules to sample (0 = exhaustive)")
	seed := flag.Int64("seed", 1, "sampling seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for exhaustive exploration (0 = sequential)")
	flag.Parse()

	readers, err := parseReaders(*readersFlag)
	if err != nil {
		return err
	}
	variant, err := parseVariant(*variantFlag)
	if err != nil {
		return err
	}
	cfg := sched.Config{
		Writes:    [2]int{*w0, *w1},
		Readers:   readers,
		WriterSeq: [2]string{*wseq0, *wseq1},
	}
	for i, s := range cfg.WriterSeq {
		if strings.Trim(s, "wr") != "" {
			return fmt.Errorf("writer %d sequence %q contains characters other than w/r", i, s)
		}
	}

	fmt.Printf("configuration: writer0 %s, writer1 %s, readers %v, variant %s\n",
		describeWriter(cfg, 0), describeWriter(cfg, 1), readers, variant)
	fmt.Printf("steps per schedule: up to %d; crash budget: %d; schedules: %s\n",
		cfg.TotalSteps(variant), *crashes, countLabel(cfg, variant, *crashes))

	if variant != sched.Faithful {
		return hunt(cfg, variant, *sample, *seed)
	}
	if *crashes > 0 {
		return exploreCrashes(cfg, variant, *crashes)
	}

	var mu sync.Mutex
	var agg proof.Report
	var n int64
	visit := func(r *sched.Result) error {
		lin, err := proof.Certify(r.Trace)
		if err != nil {
			return fmt.Errorf("schedule %v failed certification: %w", r.Sched, err)
		}
		rep := lin.Report
		mu.Lock()
		agg.PotentWrites += rep.PotentWrites
		agg.ImpotentWrites += rep.ImpotentWrites
		agg.ReadsOfPotent += rep.ReadsOfPotent
		agg.ReadsOfImp += rep.ReadsOfImp
		agg.ReadsOfInitial += rep.ReadsOfInitial
		n++
		mu.Unlock()
		return nil
	}
	switch {
	case *sample > 0:
		err = sched.Sample(cfg, variant, *sample, *seed, visit)
	case *parallel > 0:
		_, err = sched.ExploreParallel(cfg, variant, *parallel, visit)
	default:
		_, err = sched.Explore(cfg, variant, visit)
	}
	if err != nil {
		return err
	}

	fmt.Printf("\nall %d schedules certified atomic by the Section 7 construction.\n\n", n)
	fmt.Println("classification totals across schedules:")
	fmt.Printf("  potent writes:           %d\n", agg.PotentWrites)
	fmt.Printf("  impotent writes:         %d\n", agg.ImpotentWrites)
	fmt.Printf("  reads of potent writes:  %d\n", agg.ReadsOfPotent)
	fmt.Printf("  reads of impotent writes:%d\n", agg.ReadsOfImp)
	fmt.Printf("  reads of initial value:  %d\n", agg.ReadsOfInitial)
	fmt.Println("\nLemmas 1, 2, 4, 6 held on every schedule (the certifier checks them).")
	return nil
}

func describeWriter(cfg sched.Config, i int) string {
	if cfg.WriterSeq[i] != "" {
		return fmt.Sprintf("seq %q", cfg.WriterSeq[i])
	}
	return fmt.Sprintf("×%d writes", cfg.Writes[i])
}

func countLabel(cfg sched.Config, v sched.Variant, crashes int) string {
	if crashes > 0 {
		return "(enumerated with crash points)"
	}
	n := sched.CountSchedules(cfg, v)
	if n < 0 {
		return "(data-dependent: writer reads)"
	}
	return strconv.FormatInt(n, 10)
}

// exploreCrashes certifies every interleaving including crash points.
func exploreCrashes(cfg sched.Config, variant sched.Variant, budget int) error {
	var n, dropsW, dropsR int64
	_, err := sched.ExploreWithCrashes(cfg, variant, budget, func(r *sched.CrashResult) error {
		lin, err := proof.Certify(r.Trace)
		if err != nil {
			return fmt.Errorf("crash schedule %v failed certification: %w", r.Sched, err)
		}
		n++
		dropsW += int64(lin.Report.DroppedWrites)
		dropsR += int64(lin.Report.DroppedReads)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nall %d schedules (including crashes at every point) certified atomic.\n", n)
	fmt.Printf("crashed writes that never took effect: %d; crashed reads: %d\n", dropsW, dropsR)
	fmt.Println("(crash events appear in schedules as negative entries -(p+1).)")
	return nil
}

// hunt looks for a non-atomic schedule under an ablated protocol.
func hunt(cfg sched.Config, variant sched.Variant, sample int, seed int64) error {
	var bad []int
	var n int64
	visit := func(r *sched.Result) error {
		n++
		res, err := atomicity.Check(r.Trace.Ops(), sched.InitValue)
		if err != nil {
			return err
		}
		if !res.Linearizable {
			bad = r.Sched
			return sched.ErrStop
		}
		return nil
	}
	var err error
	if sample > 0 {
		err = sched.Sample(cfg, variant, sample, seed, visit)
	} else {
		_, err = sched.Explore(cfg, variant, visit)
	}
	if err != nil {
		return err
	}
	if bad == nil {
		fmt.Printf("\nno violation in %d schedules — try a larger configuration\n", n)
		fmt.Println("(the no-third-read ablation, for instance, needs -w0 2 -w1 2 -readers 2)")
		return nil
	}
	fmt.Printf("\nnon-atomic schedule found after %d schedules: %v\n", n, bad)
	fmt.Println("(processor indices: 0,1 = writers; 2+j = reader j)")
	fmt.Printf("the %s ablation breaks atomicity, as expected.\n", variant)
	return nil
}
