package main

import (
	"testing"

	"repro/internal/sched"
)

func TestParseReaders(t *testing.T) {
	got, err := parseReaders("1,2, 3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseReaders = %v, %v", got, err)
	}
	if got, err := parseReaders(""); err != nil || got != nil {
		t.Fatalf("empty readers = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "-1", "1,,2"} {
		if _, err := parseReaders(bad); err == nil {
			t.Errorf("parseReaders(%q) accepted", bad)
		}
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range []sched.Variant{
		sched.Faithful, sched.NoThirdRead, sched.WrongTagRule, sched.WriteFirst, sched.NoTagBit,
	} {
		got, err := parseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("parseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := parseVariant("bogus"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestDescribeWriter(t *testing.T) {
	cfg := sched.Config{Writes: [2]int{3, 0}, WriterSeq: [2]string{"", "wr"}}
	if got := describeWriter(cfg, 0); got != "×3 writes" {
		t.Errorf("describeWriter(0) = %q", got)
	}
	if got := describeWriter(cfg, 1); got != `seq "wr"` {
		t.Errorf("describeWriter(1) = %q", got)
	}
}

func TestCountLabel(t *testing.T) {
	cfg := sched.Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	if got := countLabel(cfg, sched.Faithful, 0); got != "210" {
		t.Errorf("countLabel = %q", got)
	}
	if got := countLabel(cfg, sched.Faithful, 1); got != "(enumerated with crash points)" {
		t.Errorf("crash countLabel = %q", got)
	}
	wr := sched.Config{WriterSeq: [2]string{"r", ""}}
	if got := countLabel(wr, sched.Faithful, 0); got != "(data-dependent: writer reads)" {
		t.Errorf("writer-read countLabel = %q", got)
	}
}
