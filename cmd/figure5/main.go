// Command figure5 reproduces Figure 5 of Bloom (PODC 1987): Lamport's
// counterexample showing that the natural four-writer tournament extension
// of the two-writer protocol is not atomic.
//
// It replays the paper's exact schedule over real Bloom two-writer
// registers and over hardware-atomic ones (footnote 6), prints the paper's
// table row for row, and then lets an exhaustive search rediscover a
// violating schedule from scratch.
//
// Usage:
//
//	figure5 [-skip-discover]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/counterexample"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figure5:", err)
		os.Exit(1)
	}
}

func run() error {
	skipDiscover := flag.Bool("skip-discover", false, "skip the exhaustive rediscovery search")
	flag.Parse()

	for _, hw := range []bool{false, true} {
		substrate := "real Bloom two-writer registers"
		if hw {
			substrate = "hardware-atomic two-writer registers (footnote 6)"
		}
		fmt.Printf("== Figure 5 replay over %s ==\n\n", substrate)
		res, err := counterexample.Figure5(hw)
		if err != nil {
			return err
		}
		fmt.Print(counterexample.FormatTable(res.Rows))
		fmt.Printf("\nreader saw %q after Wr01's write, then %q after Wr00's real write —\n",
			res.ReadBeforeCommit, res.ReadAfterCommit)
		fmt.Printf("the obsolete value reappeared.\n\n")
		fmt.Printf("exhaustive linearization search over the run's %d-operation history:\n", countOps(res))
		if res.Linearizable {
			fmt.Println("  UNEXPECTED: a linearization exists (the counterexample failed!)")
		} else {
			fmt.Printf("  no linearization exists (%d search states) — the history is NOT atomic.\n", res.StatesExplored)
		}
		if res.Inversion != "" {
			fmt.Printf("  diagnosis: %s\n", res.Inversion)
		}
		fmt.Println()
	}

	if *skipDiscover {
		return nil
	}
	fmt.Println("== Automatic rediscovery (no scripting) ==")
	fmt.Println()
	fmt.Println("searching all interleavings of Wr00, Wr01, Wr11 (one write each) and")
	fmt.Println("one reader (two reads) over the tournament construction...")
	d, err := counterexample.Discover(counterexample.DiscoverConfig{
		WriterActive: [4]bool{true, true, false, true},
		ReaderReads:  2,
	})
	if err != nil {
		return err
	}
	if !d.Found {
		fmt.Printf("no violation in %d schedules — UNEXPECTED\n", d.Schedules)
		return nil
	}
	fmt.Printf("violating schedule found after %d schedules: %v\n", d.Schedules, d.Sched)
	fmt.Println("  (processor indices: 0=Wr00 1=Wr01 2=Wr10 3=Wr11 4=reader)")
	if d.Inversion != "" {
		fmt.Printf("  diagnosis: %s\n", d.Inversion)
	}
	fmt.Println("\nconclusion (Section 8): the tournament extension fails for ANY two-writer")
	fmt.Println("register; use an unbounded-timestamp MRMW construction instead (see")
	fmt.Println("internal/vitanyi and atomicregister.NewMRMW).")

	fmt.Println("\n== \"And so forth\": the fully nested tournament tree ==")
	fmt.Println()
	for _, depth := range []int{2, 3} {
		if err := nestedDemo(depth); err != nil {
			return err
		}
	}
	return nil
}

// nestedDemo reproduces the failure on the fully nested 2^depth-writer
// tournament (each pair simulates a two-writer register from two real
// one-writer registers, pairs of pairs stack the protocol, and so forth).
// Unlike the flattened Figure 5, the nested version needs the stale
// writer parked between tournament LEVELS: it must finish its inner
// levels late (winning the inner tournaments) while its top-level tag
// choice is already obsolete.
func nestedDemo(depth int) error {
	tree, err := counterexample.NewTree(depth, "a")
	if err != nil {
		return err
	}
	n := tree.Writers()
	ws, err := tree.StartWrite(0, "x")
	if err != nil {
		return err
	}
	ws.Step() // top-level sibling read only; then the writer sleeps
	if err := tree.Write(n-1, "c"); err != nil {
		return err
	}
	if err := tree.Write(1, "d"); err != nil {
		return err
	}
	before := tree.Read()
	for ws.Step() {
	}
	if err := ws.Commit(); err != nil {
		return err
	}
	after := tree.Read()
	fmt.Printf("%d writers (depth %d): writer 0 parks after its top-level read; writer %d\n", n, depth, n-1)
	fmt.Printf("writes 'c'; writer 1 writes 'd'; a read sees %q; writer 0 finishes its\n", before)
	fmt.Printf("deeper levels and its one real write; a read now sees %q — %s\n\n",
		after, map[bool]string{true: "the obsolete value RESURRECTED.", false: "UNEXPECTED"}[after == "c" && before == "d"])
	return nil
}

func countOps(res *counterexample.Figure5Result) int {
	ops, err := res.History.Ops()
	if err != nil {
		return -1
	}
	return len(ops)
}
