// Bloomvet is the repository's static-analysis tool: a go/analysis
// multichecker over the bloomvet analyzer suite (internal/analysis), which
// statically enforces the wait-free and atomicity invariants the paper's
// construction depends on — no mixed plain/atomic access to shared words
// (atomicmix), no blocking primitives on //bloom:waitfree paths
// (waitfree), intact seqlock version discipline (seqlock), and intact
// cache-line sharding of the observability counters (obsshard).
//
// It speaks the go vet driver protocol, so the usual way to run it is
// through the toolchain:
//
//	go build -o bloomvet ./cmd/bloomvet
//	go vet -vettool=$PWD/bloomvet ./...
//
// Like any vettool it replaces the standard vet analyzers for that
// invocation; CI runs plain `go vet ./...` alongside it.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.All()...)
}
