// Bloomvet is the repository's static-analysis tool: the bloomvet
// analyzer suite (internal/analysis) run over whole programs. Four
// AST-level analyzers enforce the paper's access-discipline invariants —
// no mixed plain/atomic access to shared words (atomicmix), no blocking
// primitives on //bloom:waitfree paths (waitfree), intact seqlock version
// discipline (seqlock), intact cache-line sharding of the observability
// counters (obsshard) — and three ssair-based whole-program verifiers
// prove the hot paths allocation-free (allocfree), the lock-acquisition
// graph acyclic with no blocking under locks (lockorder), and
// cross-goroutine field access atomic-or-locked (sharedfield).
//
// It runs in two modes. Standalone, it is its own driver: it loads
// packages from source, carries facts across package boundaries
// in-process, prints every diagnostic with a per-analyzer summary, and
// exits non-zero exactly once if anything was reported:
//
//	go run ./cmd/bloomvet ./...
//	go run ./cmd/bloomvet -json ./... > bloomvet.json
//
// It also speaks the go vet driver protocol (detected by the .cfg
// argument vet passes), so the toolchain can drive it with full build
// tags and cgo handling:
//
//	go build -o bloomvet ./cmd/bloomvet
//	go vet -vettool=$PWD/bloomvet ./...
//
// Like any vettool it replaces the standard vet analyzers for that
// invocation; CI runs plain `go vet ./...` alongside it.
package main

import (
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(analysis.All()...)
	}
	os.Exit(standalone(os.Args[1:], os.Stdout, os.Stderr))
}

// vetProtocol reports whether the invocation came from go vet: the
// toolchain passes a single *.cfg file (or -V=full / -flags probes).
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") || a == "-flags" {
			return true
		}
	}
	return false
}
