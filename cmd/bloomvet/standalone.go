package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	ban "repro/internal/analysis"
	"repro/internal/analysis/atest"
)

// report is the machine-readable shape of a standalone run, written to
// stdout under -json (the CI artifact).
type report struct {
	Diagnostics []diagJSON     `json:"diagnostics"`
	Counts      map[string]int `json:"counts"`
	Packages    []string       `json:"packages"`
}

type diagJSON struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

// standalone runs the whole suite over the given package patterns and
// returns the process exit code: 0 clean, 1 diagnostics reported, 2
// driver failure. It is the single exit decision — callers os.Exit once.
func standalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bloomvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(stderr, "bloomvet: %v\n", err)
		return 2
	}
	pkgs, err := expand(modRoot, modPath, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bloomvet: %v\n", err)
		return 2
	}

	l := atest.NewLoader(map[string]string{
		modPath:              modRoot,
		"golang.org/x/tools": filepath.Join(modRoot, "third_party", "golang.org", "x", "tools"),
	})

	type diag struct {
		analyzer string
		pos      token.Position
		msg      string
	}
	var diags []diag
	counts := map[string]int{}
	for _, a := range ban.All() {
		counts[a.Name] = 0
	}
	for _, a := range ban.All() {
		for _, path := range pkgs {
			ds, err := l.Analyze(a, path)
			if err != nil {
				fmt.Fprintf(stderr, "bloomvet: %s: %v\n", a.Name, err)
				return 2
			}
			for _, d := range ds {
				diags = append(diags, diag{analyzer: a.Name, pos: l.Fset.Position(d.Pos), msg: d.Message})
				counts[a.Name]++
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos.Filename != diags[j].pos.Filename {
			return diags[i].pos.Filename < diags[j].pos.Filename
		}
		if diags[i].pos.Line != diags[j].pos.Line {
			return diags[i].pos.Line < diags[j].pos.Line
		}
		return diags[i].analyzer < diags[j].analyzer
	})

	if *jsonOut {
		r := report{Counts: counts, Packages: pkgs, Diagnostics: []diagJSON{}}
		for _, d := range diags {
			r.Diagnostics = append(r.Diagnostics, diagJSON{Analyzer: d.analyzer, Position: d.pos.String(), Message: d.msg})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintf(stderr, "bloomvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", d.pos, d.analyzer, d.msg)
		}
	}

	// Per-analyzer summary, stable order, always printed to stderr so the
	// JSON stream stays pure.
	var names []string
	for _, a := range ban.All() {
		names = append(names, a.Name)
	}
	total := 0
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s %d", n, counts[n]))
		total += counts[n]
	}
	fmt.Fprintf(stderr, "bloomvet: %d packages, %d diagnostics (%s)\n",
		len(pkgs), total, strings.Join(parts, ", "))

	if total > 0 {
		return 1
	}
	return 0
}

// findModule walks up from the working directory to go.mod and returns
// the module directory and path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to import paths. "dir/..." walks the
// tree under dir; other patterns name one directory. third_party,
// testdata, and hidden directories are skipped, as are directories with
// no non-test Go files.
func expand(modRoot, modPath string, patterns []string) ([]string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	toImport := func(dir string) (string, bool) {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", false
		}
		if rel == "." {
			return modPath, true
		}
		return modPath + "/" + filepath.ToSlash(rel), true
	}
	seen := map[string]bool{}
	var pkgs []string
	add := func(dir string) {
		if !hasGoFiles(dir) {
			return
		}
		if imp, ok := toImport(dir); ok && !seen[imp] {
			seen[imp] = true
			pkgs = append(pkgs, imp)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(cwd, rest)
			if rest == "." || rest == "" {
				base = cwd
			}
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (name == "third_party" || name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(pat, modPath) {
			add(filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(pat, modPath), "/"))))
			continue
		}
		add(filepath.Join(cwd, filepath.FromSlash(pat)))
	}
	sort.Strings(pkgs)
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
