package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	ban "repro/internal/analysis"
)

// TestStandaloneSelfRun drives the standalone mode in-process over the
// whole module: the repository must come back clean (exit 0), and the
// stderr summary must count every analyzer. This is the same claim CI's
// bloomvet job makes, minus the process boundary.
func TestStandaloneSelfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	code := standalone([]string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("standalone(./...) = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
	sum := stderr.String()
	for _, a := range ban.All() {
		if !strings.Contains(sum, a.Name+" 0") {
			t.Errorf("summary missing %q: %s", a.Name+" 0", sum)
		}
	}
	if !strings.Contains(sum, "0 diagnostics") {
		t.Errorf("summary does not report 0 diagnostics: %s", sum)
	}
}

// TestStandaloneJSON checks the machine-readable artifact shape on a
// single package: valid JSON on stdout, a count entry per analyzer, the
// package listed, and nothing but the report on stdout.
func TestStandaloneJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks a package and its deps")
	}
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	code := standalone([]string{"-json", "./internal/wire"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("standalone(-json ./internal/wire) = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	var r report
	if err := json.Unmarshal(stdout.Bytes(), &r); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if len(r.Diagnostics) != 0 {
		t.Errorf("clean package reported diagnostics: %+v", r.Diagnostics)
	}
	for _, a := range ban.All() {
		if _, ok := r.Counts[a.Name]; !ok {
			t.Errorf("counts missing analyzer %q: %v", a.Name, r.Counts)
		}
	}
	found := false
	for _, p := range r.Packages {
		if p == "repro/internal/wire" {
			found = true
		}
	}
	if !found {
		t.Errorf("packages %v does not include repro/internal/wire", r.Packages)
	}
}

// TestStandaloneReportsViolations seeds the run with the analyzer
// testdata tree, which must produce diagnostics and exit code 1 — the
// single non-zero exit the driver promises.
func TestStandaloneReportsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks packages")
	}
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	code := standalone([]string{"./internal/analysis/allocfree/testdata/src/a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("standalone over seeded violations = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[allocfree]") {
		t.Errorf("diagnostics missing [allocfree] tag:\n%s", stdout.String())
	}
}
