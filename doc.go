// Package atomicregister is a Go reproduction of Bard Bloom's
// "Constructing Two-Writer Atomic Registers" (PODC 1987): a wait-free
// 2-writer, n-reader atomic register built from two 1-writer, (n+1)-reader
// atomic registers with a single extra tag bit per register.
//
// # Quick start
//
//	reg := atomicregister.New(4, "initial")   // 2 writers, 4 readers
//	w0, w1 := reg.Writer(0), reg.Writer(1)
//	r := reg.Reader(1)
//
//	go func() { w0.Write("from writer 0") }()
//	go func() { w1.Write("from writer 1") }()
//	_ = r.Read()
//
// Each handle is one sequential process (the paper's automata); distinct
// handles run fully concurrently with no locks, no waiting, and no
// interference from crashed peers.
//
// # Verification
//
// Runs can be machine-checked. With recording enabled, Certify executes
// the paper's Section 7 proof as an algorithm, constructing an explicit
// linearization witness in near-linear time and validating it against the
// register property:
//
//	reg := atomicregister.New(4, "v0", atomicregister.WithRecording[string]())
//	// ... concurrent operations ...
//	report, err := atomicregister.Certify(reg) // err != nil ⇒ a bug, with the violated lemma named
//
// CheckAtomic runs the exponential Wing–Gong-style search instead, which
// needs no linearization-point stamps and therefore also works over the
// weak-register substrates.
//
// # Substrates
//
// By default the two "real" registers are mutex-backed atomic cells whose
// stamped accesses make runs certifiable. WithSubstrate selects a
// lock-free alternative instead — FastPointer (atomic.Pointer publish) or
// FastSeqlock (alloc-free double-buffered seqlock) — trading Certify for
// memory-speed real accesses:
//
//	reg := atomicregister.New(4, 0, atomicregister.WithSubstrate[int](atomicregister.FastSeqlock))
//
// Entirely different substrates plug in via WithRegisters:
//
//   - NewLamportStack builds them from safe boolean bits through Lamport's
//     construction chain (regular bit → unary multivalued → sequence-
//     numbered atomic cells → n-reader atomic register), honoring the
//     paper's footnote 3 all the way down.
//   - Any register.Reg[Tagged[V]] implementation of your own.
//
// # Observability
//
// WithObserver attaches an always-on metrics layer (package internal/obs):
// per-channel latency histograms and counts for every simulated operation
// on any substrate, plus the protocol's own semantics — potent vs.
// impotent writes classified online at the real write, writer-as-reader
// fast-path vs. slow-path reads, and Certify outcomes:
//
//	ob := atomicregister.NewObserver(4)
//	reg := atomicregister.New(4, 0, atomicregister.WithObserver[int](ob))
//	// ... concurrent operations ...
//	snap := ob.Snapshot()          // expvar-style JSON document
//	ob.WritePrometheus(w)          // Prometheus text format
//
// The disabled path costs one nil check per operation; `go run
// ./cmd/bloombench -serve :8080` exposes a live /metrics + /debug/pprof/
// surface over an observed workload.
//
// # Static analysis
//
// The disciplines behind those guarantees are enforced at compile time by
// cmd/bloomvet, a go/analysis multichecker (go vet -vettool=..., or
// standalone: go run ./cmd/bloomvet ./...): the wait-free annotations on
// the protocol's hot paths, all-atomic-or-all-plain access to shared
// words, the seqlock version-counter bracket, and the no-copy/padding
// rules of the sharded metrics — plus three whole-program concurrency
// passes over a small SSA-flavoured IR: //bloom:noalloc functions proven
// heap-allocation-free on every path (//bloom:allowalloc excuses
// deliberate cold-path allocation), a module-wide lock-order graph that
// must stay acyclic with no blocking under a held lock, and a static
// shared-field race check (fields reached from multiple goroutines must
// be always-atomic or always under one lock). See internal/analysis.
//
// NewMRMW provides an unbounded-timestamp multi-writer register in the
// style of Vitányi–Awerbuch for more than two writers — necessary because,
// as Section 8 of the paper shows (and internal/counterexample
// reproduces), the natural tournament extension of the two-writer protocol
// is not atomic.
package atomicregister
