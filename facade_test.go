package atomicregister_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	atomicregister "repro"
)

func TestQuickstartFlow(t *testing.T) {
	reg := atomicregister.New(2, "v0", atomicregister.WithRecording[string]())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := reg.Writer(i)
			for k := 0; k < 50; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= 2; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := reg.Reader(j)
			for k := 0; k < 50; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()
	rep, err := atomicregister.Certify(reg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PotentWrites+rep.ImpotentWrites != 100 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCheckAtomicSmallRun(t *testing.T) {
	reg := atomicregister.New(1, 0, atomicregister.WithRecording[int]())
	reg.Writer(0).Write(1)
	reg.Writer(1).Write(2)
	if got := reg.Reader(1).Read(); got != 2 {
		t.Fatalf("read %d", got)
	}
	ok, err := atomicregister.CheckAtomic(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sequential run judged non-atomic")
	}
}

func TestVerifyWithoutRecordingFails(t *testing.T) {
	reg := atomicregister.New(1, 0)
	if _, err := atomicregister.Certify(reg); err == nil {
		t.Error("Certify without recording must fail")
	}
	if _, err := atomicregister.CheckAtomic(reg); err == nil {
		t.Error("CheckAtomic without recording must fail")
	}
	if _, err := atomicregister.TimingDiagram(reg); err == nil {
		t.Error("TimingDiagram without recording must fail")
	}
}

func TestTimingDiagram(t *testing.T) {
	reg := atomicregister.New(1, "v0", atomicregister.WithRecording[string]())
	reg.Writer(0).Write("a")
	_ = reg.Reader(1).Read()
	out, err := atomicregister.TimingDiagram(reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Wr0", "Rd1", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram lacks %q:\n%s", want, out)
		}
	}
}

func TestLamportStackSubstrate(t *testing.T) {
	domain := []string{"v0", "a", "b"}
	init := atomicregister.Tagged[string]{Val: "v0"}
	r0, err := atomicregister.NewLamportStack(2, domain, 8, init, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := atomicregister.NewLamportStack(2, domain, 8, init, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := atomicregister.New(1, "v0",
		atomicregister.WithRegisters[string](r0, r1),
		atomicregister.WithRecording[string]())
	reg.Writer(0).Write("a")
	reg.Writer(1).Write("b")
	if got := reg.Reader(1).Read(); got != "b" {
		t.Fatalf("read %q over the safe-bit stack", got)
	}
	ok, err := atomicregister.CheckAtomic(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stack-backed run judged non-atomic")
	}
	// The stack cannot stamp linearization points, so Certify must
	// refuse rather than guess.
	if _, err := atomicregister.Certify(reg); err == nil {
		t.Fatal("Certify over an unstamped substrate must fail")
	}
}

func TestMRMWFacade(t *testing.T) {
	m, err := atomicregister.NewMRMW(4, 2, "v0", true)
	if err != nil {
		t.Fatal(err)
	}
	m.Writer(3).Write("c")
	m.Writer(1).Write("d")
	if got := m.Reader(0).Read(); got != "d" {
		t.Fatalf("read %q", got)
	}
}

func TestAccessCosts(t *testing.T) {
	wr, ww, rr, wrMin, wrMax := atomicregister.AccessCosts()
	if wr != 1 || ww != 1 || rr != 3 || wrMin != 1 || wrMax != 2 {
		t.Fatalf("AccessCosts = %d %d %d %d %d", wr, ww, rr, wrMin, wrMax)
	}
}

func TestWriterReaderFacade(t *testing.T) {
	reg := atomicregister.New(0, 0, atomicregister.WithRecording[int]())
	wr0 := reg.WriterReader(0)
	wr1 := reg.WriterReader(1)
	wr0.Write(1)
	if got := wr1.Read(); got != 1 {
		t.Fatalf("read %d", got)
	}
	wr1.Write(2)
	if got := wr0.Read(); got != 2 {
		t.Fatalf("read %d", got)
	}
	if _, err := atomicregister.Certify(reg); err != nil {
		t.Fatal(err)
	}
}
