package history

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	w := Op[string]{ID: 0, Proc: 1, IsWrite: true, Arg: "v", Inv: 3, Res: 9}
	if got := w.String(); got != "W1(v)[3,9]" {
		t.Errorf("write String = %q", got)
	}
	r := Op[string]{ID: 1, Proc: 2, Ret: "v", Inv: 4, Res: 8}
	if got := r.String(); got != "R2=v[4,8]" {
		t.Errorf("read String = %q", got)
	}
	p := Op[string]{ID: 2, Proc: 0, IsWrite: true, Arg: "x", Inv: 5, Res: PendingSeq}
	if got := p.String(); !strings.Contains(got, "pending") {
		t.Errorf("pending String = %q", got)
	}
}

func TestRecorderSequencerAccessor(t *testing.T) {
	seq := new(Sequencer)
	rec := NewRecorder[int](seq)
	if rec.Sequencer() != seq {
		t.Fatal("Sequencer accessor returned a different sequencer")
	}
}

func TestRecorderStar(t *testing.T) {
	rec := NewRecorder[string](nil)
	op, _ := rec.InvokeWrite(0, "a")
	starSeq := rec.Star(0, op, true, "a")
	rec.RespondWrite(0, op)
	h := rec.Snapshot()
	var star *Event[string]
	for i, e := range h.Events {
		if e.Kind.IsStar() {
			star = &h.Events[i]
		}
	}
	if star == nil || star.Kind != StarWrite || star.Seq != starSeq || star.Value != "a" {
		t.Fatalf("star event wrong: %+v", star)
	}
	// Read star too.
	rop, _ := rec.InvokeRead(1)
	rec.Star(1, rop, false, "a")
	rec.RespondRead(1, rop, "a")
	h = rec.Snapshot()
	ops, err := h.Ops()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Star == 0 {
			t.Fatalf("op %v has no star attached", op)
		}
	}
	// The external schedule drops both stars.
	ext := h.External()
	if got := ext.Len(); got != h.Len()-2 {
		t.Fatalf("external length %d, want %d", got, h.Len()-2)
	}
}

func TestOpsErrorBranches(t *testing.T) {
	// Duplicate operation ID.
	h := History[int]{Events: []Event[int]{
		{Seq: 1, Kind: InvokeWrite, Proc: 0, Op: 7, Value: 1},
		{Seq: 2, Kind: RespondWrite, Proc: 0, Op: 7},
		{Seq: 3, Kind: InvokeWrite, Proc: 1, Op: 7, Value: 2},
	}}
	if _, err := h.Ops(); err == nil {
		t.Error("duplicate op id accepted")
	}
	// Response for unknown operation (matching passes per-channel but the
	// op id never appeared): construct a star for an unknown op instead,
	// since matching catches orphan responses first.
	h = History[int]{Events: []Event[int]{
		{Seq: 1, Kind: StarWrite, Proc: 0, Op: 9, Value: 1},
	}}
	if _, err := h.Ops(); err == nil {
		t.Error("star for unknown op accepted")
	}
}
