package history

import (
	"sync"
	"sync/atomic"
)

// Sequencer issues globally ordered sequence numbers. A single Sequencer is
// shared by every component of one simulated system (the simulated
// register's ports and all underlying real registers) so that sequence
// numbers define one total order over all events, consistent with real
// time: if action A returns before action B starts, A's number is smaller.
//
// The zero value is ready to use; numbering starts at 1 so that 0 can mean
// "no sequence number assigned".
type Sequencer struct {
	n atomic.Int64
}

// Next returns the next sequence number.
func (s *Sequencer) Next() int64 { return s.n.Add(1) }

// Current returns the most recently issued sequence number (0 if none).
func (s *Sequencer) Current() int64 { return s.n.Load() }

// Recorder accumulates the external schedule of a simulated register from
// concurrently executing processors. It is safe for concurrent use.
//
// A Recorder shares a Sequencer with the rest of the system; events are
// appended in the order goroutines reach the recorder, which may differ
// slightly from sequence-number order, so Snapshot sorts before returning.
type Recorder[V comparable] struct {
	seq *Sequencer

	mu     sync.Mutex
	events []Event[V]
	nextOp int
}

// NewRecorder returns a recorder drawing sequence numbers from seq.
// If seq is nil, the recorder allocates a private Sequencer.
func NewRecorder[V comparable](seq *Sequencer) *Recorder[V] {
	if seq == nil {
		seq = new(Sequencer)
	}
	return &Recorder[V]{seq: seq}
}

// Sequencer returns the sequencer this recorder draws from, so other
// components (e.g. real registers) can share the global order.
func (r *Recorder[V]) Sequencer() *Sequencer { return r.seq }

func (r *Recorder[V]) append(e Event[V]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// InvokeRead records an R_start on proc's channel and returns the new
// operation's ID along with the event's sequence number.
func (r *Recorder[V]) InvokeRead(proc ProcID) (opID int, seq int64) {
	r.mu.Lock()
	opID = r.nextOp
	r.nextOp++
	r.mu.Unlock()
	seq = r.seq.Next()
	r.append(Event[V]{Seq: seq, Kind: InvokeRead, Proc: proc, Op: opID})
	return opID, seq
}

// InvokeWrite records a W_start(v) on proc's channel.
func (r *Recorder[V]) InvokeWrite(proc ProcID, v V) (opID int, seq int64) {
	r.mu.Lock()
	opID = r.nextOp
	r.nextOp++
	r.mu.Unlock()
	seq = r.seq.Next()
	r.append(Event[V]{Seq: seq, Kind: InvokeWrite, Proc: proc, Op: opID, Value: v})
	return opID, seq
}

// RespondRead records an R_finish(v) acknowledging operation opID.
func (r *Recorder[V]) RespondRead(proc ProcID, opID int, v V) int64 {
	seq := r.seq.Next()
	r.append(Event[V]{Seq: seq, Kind: RespondRead, Proc: proc, Op: opID, Value: v})
	return seq
}

// RespondWrite records a W_finish acknowledging operation opID.
func (r *Recorder[V]) RespondWrite(proc ProcID, opID int) int64 {
	seq := r.seq.Next()
	r.append(Event[V]{Seq: seq, Kind: RespondWrite, Proc: proc, Op: opID})
	return seq
}

// Star records an internal *-action for operation opID. isWrite selects
// W*(v) versus R*(v). It is used by components that can identify their own
// linearization points (such as the mutex-backed base registers).
func (r *Recorder[V]) Star(proc ProcID, opID int, isWrite bool, v V) int64 {
	seq := r.seq.Next()
	k := StarRead
	if isWrite {
		k = StarWrite
	}
	r.append(Event[V]{Seq: seq, Kind: k, Proc: proc, Op: opID, Value: v})
	return seq
}

// Snapshot returns a copy of the history recorded so far, sorted by
// sequence number. It may be called while processors are still running;
// the copy is a consistent prefix-plus-stragglers view suitable for
// post-run analysis once all processors have stopped.
func (r *Recorder[V]) Snapshot() History[V] {
	r.mu.Lock()
	events := make([]Event[V], len(r.events))
	copy(events, r.events)
	r.mu.Unlock()
	h := History[V]{Events: events}
	h.Sort()
	return h
}

// OpCount returns the number of operations started so far.
func (r *Recorder[V]) OpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextOp
}
