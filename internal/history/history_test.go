package history

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		InvokeRead:   "R_start",
		InvokeWrite:  "W_start",
		RespondRead:  "R_finish",
		RespondWrite: "W_finish",
		StarRead:     "R*",
		StarWrite:    "W*",
		Kind(99):     "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindClassification(t *testing.T) {
	for _, k := range []Kind{InvokeRead, InvokeWrite} {
		if !k.IsInvoke() || k.IsRespond() || k.IsStar() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{RespondRead, RespondWrite} {
		if k.IsInvoke() || !k.IsRespond() || k.IsStar() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{StarRead, StarWrite} {
		if k.IsInvoke() || k.IsRespond() || !k.IsStar() {
			t.Errorf("%v misclassified", k)
		}
	}
	if !InvokeWrite.HasValue() || InvokeRead.HasValue() || RespondWrite.HasValue() || !RespondRead.HasValue() {
		t.Error("HasValue misclassified")
	}
}

func TestSequencerMonotonic(t *testing.T) {
	var s Sequencer
	if s.Current() != 0 {
		t.Fatalf("fresh sequencer Current() = %d, want 0", s.Current())
	}
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		n := s.Next()
		if n <= prev {
			t.Fatalf("Next() = %d not greater than previous %d", n, prev)
		}
		prev = n
	}
}

func TestSequencerConcurrent(t *testing.T) {
	var s Sequencer
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	results := make([][]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int64, 0, perG)
			for i := 0; i < perG; i++ {
				out = append(out, s.Next())
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, goroutines*perG)
	for _, out := range results {
		for i, n := range out {
			if i > 0 && out[i] <= out[i-1] {
				t.Fatal("per-goroutine sequence not increasing")
			}
			if seen[n] {
				t.Fatalf("duplicate sequence number %d", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d distinct numbers, want %d", len(seen), goroutines*perG)
	}
}

func TestRecorderProducesInputCorrectHistory(t *testing.T) {
	rec := NewRecorder[string](nil)
	op, _ := rec.InvokeWrite(0, "a")
	rec.RespondWrite(0, op)
	op2, _ := rec.InvokeRead(1)
	rec.RespondRead(1, op2, "a")
	h := rec.Snapshot()
	if err := h.InputCorrect(); err != nil {
		t.Fatalf("InputCorrect: %v", err)
	}
	matched, pending, err := h.Matching()
	if err != nil {
		t.Fatalf("Matching: %v", err)
	}
	if matched != 2 || pending != 0 {
		t.Fatalf("matched = %d, pending = %d; want 2, 0", matched, pending)
	}
}

func TestOpsExtraction(t *testing.T) {
	rec := NewRecorder[int](nil)
	w, _ := rec.InvokeWrite(0, 42)
	rec.RespondWrite(0, w)
	r, _ := rec.InvokeRead(2)
	rec.RespondRead(2, r, 42)
	p, _ := rec.InvokeWrite(1, 7) // never acknowledged: pending
	_ = p

	h := rec.Snapshot()
	ops, err := h.Ops()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	if !ops[0].IsWrite || ops[0].Arg != 42 || ops[0].Pending() {
		t.Errorf("op0 = %v, want completed write of 42", ops[0])
	}
	if ops[1].IsWrite || ops[1].Ret != 42 {
		t.Errorf("op1 = %v, want read of 42", ops[1])
	}
	if !ops[2].Pending() || !ops[2].IsWrite || ops[2].Arg != 7 {
		t.Errorf("op2 = %v, want pending write of 7", ops[2])
	}
}

func TestPrecedesAndOverlaps(t *testing.T) {
	a := Op[int]{ID: 0, Inv: 1, Res: 4}
	b := Op[int]{ID: 1, Inv: 5, Res: 8}
	c := Op[int]{ID: 2, Inv: 3, Res: 6}
	pending := Op[int]{ID: 3, Inv: 6, Res: PendingSeq}

	if !a.Precedes(b) || b.Precedes(a) {
		t.Error("a should precede b")
	}
	if a.Precedes(c) || c.Precedes(a) || !a.Overlaps(c) {
		t.Error("a and c should overlap")
	}
	if pending.Precedes(b) {
		t.Error("a pending op precedes nothing")
	}
	if !a.Precedes(pending) {
		t.Error("a completed op can precede a pending one invoked later")
	}
}

func TestPrecedenceIsStrictPartialOrder(t *testing.T) {
	// Property: Precedes is irreflexive and transitive on arbitrary ops,
	// and Overlaps is symmetric.
	type triple struct{ AInv, ADur, BInv, BDur, CInv, CDur uint16 }
	f := func(tr triple) bool {
		mk := func(id int, inv, dur uint16) Op[int] {
			return Op[int]{ID: id, Inv: int64(inv), Res: int64(inv) + int64(dur) + 1}
		}
		a, b, c := mk(0, tr.AInv, tr.ADur), mk(1, tr.BInv, tr.BDur), mk(2, tr.CInv, tr.CDur)
		if a.Precedes(a) {
			return false
		}
		if a.Precedes(b) && b.Precedes(c) && !a.Precedes(c) {
			return false
		}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInputCorrectRejectsDoubleRequest(t *testing.T) {
	h := History[int]{Events: []Event[int]{
		{Seq: 1, Kind: InvokeRead, Proc: 0, Op: 0},
		{Seq: 2, Kind: InvokeRead, Proc: 0, Op: 1},
	}}
	if err := h.InputCorrect(); err == nil {
		t.Fatal("two requests without acknowledgment should not be input-correct")
	}
}

func TestInputCorrectRejectsOrphanAck(t *testing.T) {
	h := History[int]{Events: []Event[int]{
		{Seq: 1, Kind: RespondWrite, Proc: 0, Op: 0},
	}}
	if err := h.InputCorrect(); err == nil {
		t.Fatal("acknowledgment with no request should not be input-correct")
	}
}

func TestMatchingRejectsKindMismatch(t *testing.T) {
	h := History[int]{Events: []Event[int]{
		{Seq: 1, Kind: InvokeRead, Proc: 0, Op: 0},
		{Seq: 2, Kind: RespondWrite, Proc: 0, Op: 0},
	}}
	if _, _, err := h.Matching(); err == nil {
		t.Fatal("read request acknowledged by write ack should fail matching")
	}
}

func TestMatchingRejectsOpIDMismatch(t *testing.T) {
	h := History[int]{Events: []Event[int]{
		{Seq: 1, Kind: InvokeRead, Proc: 0, Op: 0},
		{Seq: 2, Kind: RespondRead, Proc: 0, Op: 9},
	}}
	if _, _, err := h.Matching(); err == nil {
		t.Fatal("ack for a different operation should fail matching")
	}
}

func TestExternalStripsStars(t *testing.T) {
	h := History[int]{Events: []Event[int]{
		{Seq: 1, Kind: InvokeWrite, Proc: 0, Op: 0, Value: 1},
		{Seq: 2, Kind: StarWrite, Proc: 0, Op: 0, Value: 1},
		{Seq: 3, Kind: RespondWrite, Proc: 0, Op: 0},
	}}
	ext := h.External()
	if ext.Len() != 2 {
		t.Fatalf("external history has %d events, want 2", ext.Len())
	}
	for _, e := range ext.Events {
		if e.Kind.IsStar() {
			t.Fatalf("external history contains *-action %v", e)
		}
	}
	if h.Len() != 3 {
		t.Fatal("External must not mutate the original")
	}
}

func TestSortRestoresOrder(t *testing.T) {
	h := History[int]{Events: []Event[int]{
		{Seq: 3, Kind: RespondWrite, Proc: 0, Op: 0},
		{Seq: 1, Kind: InvokeWrite, Proc: 0, Op: 0, Value: 1},
	}}
	h.Sort()
	if h.Events[0].Seq != 1 || h.Events[1].Seq != 3 {
		t.Fatalf("Sort failed: %v", h.Events)
	}
	if err := h.InputCorrect(); err != nil {
		t.Fatalf("sorted history should be input-correct: %v", err)
	}
}

func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder[int](nil)
	const procs, ops = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if i%2 == 0 {
					op, _ := rec.InvokeWrite(ProcID(p), i)
					rec.RespondWrite(ProcID(p), op)
				} else {
					op, _ := rec.InvokeRead(ProcID(p))
					rec.RespondRead(ProcID(p), op, i)
				}
			}
		}(p)
	}
	wg.Wait()
	h := rec.Snapshot()
	if err := h.InputCorrect(); err != nil {
		t.Fatalf("concurrent recording broke input-correctness: %v", err)
	}
	matched, pending, err := h.Matching()
	if err != nil {
		t.Fatal(err)
	}
	if matched != procs*ops || pending != 0 {
		t.Fatalf("matched = %d, pending = %d; want %d, 0", matched, pending, procs*ops)
	}
	if rec.OpCount() != procs*ops {
		t.Fatalf("OpCount = %d, want %d", rec.OpCount(), procs*ops)
	}
	// Sequence numbers must be strictly increasing after Sort.
	for i := 1; i < len(h.Events); i++ {
		if h.Events[i].Seq <= h.Events[i-1].Seq {
			t.Fatal("duplicate or non-increasing sequence numbers")
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event[string]{Seq: 7, Kind: InvokeWrite, Proc: 2, Op: 1, Value: "x"}
	if got := e.String(); got != "W_start^2(x)@7" {
		t.Errorf("Event.String() = %q", got)
	}
	e2 := Event[string]{Seq: 9, Kind: RespondWrite, Proc: 2, Op: 1}
	if got := e2.String(); got != "W_finish^2@9" {
		t.Errorf("Event.String() = %q", got)
	}
}
