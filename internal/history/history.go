// Package history models schedules of register actions in the style of
// Section 3 of Bloom's "Constructing Two-Writer Atomic Registers" (PODC
// 1987).
//
// A register's behaviour is described by a schedule: a sequence of actions
// on channels. Each channel connects one processor to the register and
// carries read requests R_start, read acknowledgments R_finish(v), write
// requests W_start(v), and write acknowledgments W_finish (Figure 1 of the
// paper). Internal *-actions R*(v) and W*(v) mark the instants at which
// operations "actually occur"; a schedule together with a legal placement
// of *-actions is a witness that the schedule is atomic.
//
// Events carry globally ordered sequence numbers. Following the paper, a
// "time" is a prefix of the schedule; we represent times by the sequence
// number of the last event in the prefix, so Seq values double as times and
// strictly increase along the schedule.
package history

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies an event in a register schedule.
type Kind uint8

// Event kinds, mirroring Figure 1 of the paper. Enums start at 1 so the
// zero Kind is invalid and cheap to detect.
const (
	// InvokeRead is R_start: a command to read.
	InvokeRead Kind = iota + 1
	// InvokeWrite is W_start(v): a command to write v.
	InvokeWrite
	// RespondRead is R_finish(v): communication of the read value v.
	RespondRead
	// RespondWrite is W_finish: acknowledgment of a write.
	RespondWrite
	// StarRead is R*(v): the internal event marking a read of v.
	StarRead
	// StarWrite is W*(v): the internal event marking a write of v.
	StarWrite
)

// String returns the paper's notation for the kind.
func (k Kind) String() string {
	switch k {
	case InvokeRead:
		return "R_start"
	case InvokeWrite:
		return "W_start"
	case RespondRead:
		return "R_finish"
	case RespondWrite:
		return "W_finish"
	case StarRead:
		return "R*"
	case StarWrite:
		return "W*"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsInvoke reports whether the kind is a request (R_start or W_start).
func (k Kind) IsInvoke() bool { return k == InvokeRead || k == InvokeWrite }

// IsRespond reports whether the kind is an acknowledgment.
func (k Kind) IsRespond() bool { return k == RespondRead || k == RespondWrite }

// IsStar reports whether the kind is an internal *-action.
func (k Kind) IsStar() bool { return k == StarRead || k == StarWrite }

// HasValue reports whether events of this kind carry a value.
func (k Kind) HasValue() bool {
	return k == InvokeWrite || k == RespondRead || k == StarRead || k == StarWrite
}

// ProcID names a processor (equivalently, the channel from that processor
// to the register, since each processor has exactly one channel per
// register it can access).
type ProcID int

// PendingSeq is the Seq assigned to the response of an operation that never
// responded (for example because its processor crashed). It orders after
// every real event.
const PendingSeq = int64(math.MaxInt64)

// Event is one action in a schedule.
type Event[V comparable] struct {
	// Seq is the event's position in the global order; strictly
	// increasing along a schedule. Seq values double as the paper's
	// "times" (prefixes of the schedule).
	Seq int64
	// Kind classifies the action.
	Kind Kind
	// Proc is the processor whose channel carries the action.
	Proc ProcID
	// Op links the invoke, *-action, and response of one operation.
	Op int
	// Value is meaningful only when Kind.HasValue().
	Value V
}

// String renders the event in the paper's notation, e.g. "W_start^3(v)".
func (e Event[V]) String() string {
	if e.Kind.HasValue() {
		return fmt.Sprintf("%s^%d(%v)@%d", e.Kind, e.Proc, e.Value, e.Seq)
	}
	return fmt.Sprintf("%s^%d@%d", e.Kind, e.Proc, e.Seq)
}

// Op is a matched operation: an invocation and, unless the operation is
// pending, its acknowledgment, with optional *-action.
type Op[V comparable] struct {
	// ID is the operation identifier, unique within a history.
	ID int
	// Proc is the processor that issued the operation.
	Proc ProcID
	// IsWrite distinguishes writes from reads.
	IsWrite bool
	// Arg is the written value (writes only).
	Arg V
	// Ret is the returned value (completed reads only).
	Ret V
	// Inv is the Seq of the invocation.
	Inv int64
	// Res is the Seq of the response, or PendingSeq if the operation
	// never completed.
	Res int64
	// Star is the Seq of the *-action, or 0 if none has been assigned.
	Star int64
}

// Pending reports whether the operation never received its acknowledgment.
func (o Op[V]) Pending() bool { return o.Res == PendingSeq }

// Precedes reports whether o entirely precedes p: o's acknowledgment occurs
// before p's invocation. This is the paper's precedence partial order on
// reads and writes.
func (o Op[V]) Precedes(p Op[V]) bool { return !o.Pending() && o.Res < p.Inv }

// Overlaps reports whether neither operation precedes the other.
func (o Op[V]) Overlaps(p Op[V]) bool { return !o.Precedes(p) && !p.Precedes(o) }

// String renders the operation compactly, e.g. "W3(v)[5,9]".
func (o Op[V]) String() string {
	res := "pending"
	if !o.Pending() {
		res = fmt.Sprintf("%d", o.Res)
	}
	if o.IsWrite {
		return fmt.Sprintf("W%d(%v)[%d,%s]", o.Proc, o.Arg, o.Inv, res)
	}
	return fmt.Sprintf("R%d=%v[%d,%s]", o.Proc, o.Ret, o.Inv, res)
}

// History is a schedule of events on a single simulated register, sorted by
// Seq.
type History[V comparable] struct {
	// Events is the schedule, in increasing Seq order.
	Events []Event[V]
}

// Sort orders the events by sequence number. Recorders may append events
// slightly out of order (a goroutine can be descheduled between obtaining a
// sequence number and appending); Sort restores the canonical order.
func (h *History[V]) Sort() {
	sort.Slice(h.Events, func(i, j int) bool { return h.Events[i].Seq < h.Events[j].Seq })
}

// InputCorrect reports whether the schedule's input is correct in the sense
// of Section 3: on each channel there are no two requests without an
// intervening acknowledgment. (A non-input-correct schedule places no
// obligation on the register.)
func (h *History[V]) InputCorrect() error {
	open := make(map[ProcID]Event[V])
	for _, e := range h.Events {
		switch {
		case e.Kind.IsInvoke():
			if prev, ok := open[e.Proc]; ok {
				return fmt.Errorf("history: channel %d issued %v before %v was acknowledged", e.Proc, e, prev)
			}
			open[e.Proc] = e
		case e.Kind.IsRespond():
			if _, ok := open[e.Proc]; !ok {
				return fmt.Errorf("history: channel %d acknowledged %v with no open request", e.Proc, e)
			}
			delete(open, e.Proc)
		}
	}
	return nil
}

// Matching verifies condition 1 of the paper's atomicity definition: there
// is a bijection between requests and acknowledgments along each channel
// such that the acknowledgment corresponding to a request is the first
// action on that channel following it. Pending requests (with no later
// action on their channel) are permitted and reported, not rejected: they
// correspond to crashed or still-running operations.
//
// It returns the number of matched pairs and the number of pending
// requests.
func (h *History[V]) Matching() (matched, pending int, err error) {
	open := make(map[ProcID]Event[V])
	for _, e := range h.Events {
		switch {
		case e.Kind.IsInvoke():
			if prev, ok := open[e.Proc]; ok {
				return 0, 0, fmt.Errorf("history: unmatched request %v followed by %v on channel %d", prev, e, e.Proc)
			}
			open[e.Proc] = e
		case e.Kind.IsRespond():
			req, ok := open[e.Proc]
			if !ok {
				return 0, 0, fmt.Errorf("history: acknowledgment %v with no matching request", e)
			}
			if (req.Kind == InvokeRead) != (e.Kind == RespondRead) {
				return 0, 0, fmt.Errorf("history: acknowledgment %v does not match request %v", e, req)
			}
			if req.Op != e.Op {
				return 0, 0, fmt.Errorf("history: acknowledgment %v matches request of a different operation %v", e, req)
			}
			delete(open, e.Proc)
			matched++
		}
	}
	return matched, len(open), nil
}

// Ops extracts the matched operations from the schedule, in invocation
// order. Pending operations (invocations with no acknowledgment) are
// included with Res = PendingSeq. Any *-actions present in the schedule are
// attached to their operations.
func (h *History[V]) Ops() ([]Op[V], error) {
	if _, _, err := h.Matching(); err != nil {
		return nil, err
	}
	byID := make(map[int]*Op[V])
	order := make([]int, 0, len(h.Events)/2)
	for _, e := range h.Events {
		switch e.Kind {
		case InvokeRead, InvokeWrite:
			op := &Op[V]{
				ID:      e.Op,
				Proc:    e.Proc,
				IsWrite: e.Kind == InvokeWrite,
				Inv:     e.Seq,
				Res:     PendingSeq,
			}
			if e.Kind == InvokeWrite {
				op.Arg = e.Value
			}
			if _, dup := byID[e.Op]; dup {
				return nil, fmt.Errorf("history: duplicate operation id %d", e.Op)
			}
			byID[e.Op] = op
			order = append(order, e.Op)
		case RespondRead, RespondWrite:
			op := byID[e.Op]
			if op == nil {
				return nil, fmt.Errorf("history: response %v for unknown operation", e)
			}
			op.Res = e.Seq
			if e.Kind == RespondRead {
				op.Ret = e.Value
			}
		case StarRead, StarWrite:
			op := byID[e.Op]
			if op == nil {
				return nil, fmt.Errorf("history: *-action %v for unknown operation", e)
			}
			op.Star = e.Seq
		}
	}
	ops := make([]Op[V], 0, len(order))
	for _, id := range order {
		ops = append(ops, *byID[id])
	}
	return ops, nil
}

// External returns a copy of the history with all internal *-actions
// removed, i.e. the external schedule in the sense of Section 2.
func (h *History[V]) External() History[V] {
	out := History[V]{Events: make([]Event[V], 0, len(h.Events))}
	for _, e := range h.Events {
		if !e.Kind.IsStar() {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Len returns the number of events in the schedule.
func (h *History[V]) Len() int { return len(h.Events) }
