// Package spec encodes the register specification of Section 3 of Bloom
// (PODC 1987) as checkable predicates.
//
// A schedule is "atomic initialized to v0" if either it is not
// input-correct, or (1) requests and acknowledgments match along each
// channel, and (2) the reads and writes can be shrunk to points: *-actions
// can be inserted, one inside each request/acknowledgment pair, such that
// each read's R*(v) returns the value of the latest preceding W*(v'), or v0
// if there is none. This package validates proposed witnesses (placements
// of *-actions); searching for a witness is the job of package atomicity,
// and constructing one for Bloom's protocol is the job of package proof.
package spec

import (
	"fmt"
	"sort"

	"repro/internal/history"
)

// Witness assigns each operation a linearization point. Points must be
// distinct; they are compared as int64 "times" on the same scale as the
// history's sequence numbers (a point may share its value with an existing
// event's sequence number, in which case the *-action is taken to occur
// immediately after that event; distinct operations must still receive
// distinct points).
type Witness map[int]int64

// ValidateWitness checks that w demonstrates that the operations ops (from
// an input-correct history) form an atomic schedule initialized to init.
//
// It verifies, per the paper's definition:
//
//  1. every completed operation has a point, and the point lies within the
//     operation's request/acknowledgment interval;
//  2. pending writes may have a point (the write "occurred") or none (it
//     did not); pending reads must have none;
//  3. points are distinct;
//  4. replaying the operations in point order satisfies the register
//     property: every read returns the latest previously written value, or
//     init if there is none.
//
// The point of an operation is interpreted as occurring after all events
// with Seq <= point and before all events with Seq > point; since points
// are distinct int64s, they induce a strict total order on operations.
func ValidateWitness[V comparable](ops []history.Op[V], init V, w Witness) error {
	type pointed struct {
		op history.Op[V]
		pt int64
	}
	seen := make(map[int64]int, len(w))
	var seq []pointed
	for _, op := range ops {
		pt, ok := w[op.ID]
		if !ok {
			if !op.Pending() {
				return fmt.Errorf("spec: completed operation %v has no *-action", op)
			}
			continue // a pending operation that never took effect
		}
		if op.Pending() && !op.IsWrite {
			return fmt.Errorf("spec: pending read %v must not have a *-action", op)
		}
		if pt < op.Inv {
			return fmt.Errorf("spec: *-action of %v at %d precedes its request at %d", op, pt, op.Inv)
		}
		if !op.Pending() && pt >= op.Res {
			return fmt.Errorf("spec: *-action of %v at %d does not precede its acknowledgment at %d", op, pt, op.Res)
		}
		if prev, dup := seen[pt]; dup {
			return fmt.Errorf("spec: operations %d and %d share *-action time %d", prev, op.ID, pt)
		}
		seen[pt] = op.ID
		seq = append(seq, pointed{op, pt})
	}
	sort.Slice(seq, func(i, j int) bool { return seq[i].pt < seq[j].pt })

	cur := init
	for _, p := range seq {
		if p.op.IsWrite {
			cur = p.op.Arg
			continue
		}
		if p.op.Ret != cur {
			return fmt.Errorf("spec: read %v returns %v but the latest write before its *-action wrote %v",
				p.op, p.op.Ret, cur)
		}
	}
	return nil
}

// ValidateHistory is a convenience wrapper: it checks input-correctness and
// matching of h, extracts its operations, and validates w against them.
func ValidateHistory[V comparable](h *history.History[V], init V, w Witness) error {
	if err := h.InputCorrect(); err != nil {
		// Per the definition, a non-input-correct schedule is vacuously
		// atomic: the user broke the interface. We still surface the
		// anomaly, because in this codebase the harness is the only
		// user and must never produce such schedules.
		return fmt.Errorf("spec: schedule is not input-correct (vacuously atomic, but the harness is buggy): %w", err)
	}
	ops, err := h.Ops()
	if err != nil {
		return err
	}
	return ValidateWitness(ops, init, w)
}

// CheckSequential verifies the register property on an already-serial
// operation sequence: every read returns the value of the latest preceding
// write, or init. It is the single-processor "register property" of the
// paper's introduction, and is used to sanity-check sequential runs.
func CheckSequential[V comparable](ops []history.Op[V], init V) error {
	cur := init
	for _, op := range ops {
		if op.Pending() {
			return fmt.Errorf("spec: sequential run contains pending operation %v", op)
		}
		if op.IsWrite {
			cur = op.Arg
			continue
		}
		if op.Ret != cur {
			return fmt.Errorf("spec: sequential read %v returned %v, want %v", op, op.Ret, cur)
		}
	}
	return nil
}

// WritesPrecedingReads reports, for diagnostics, the set of write values a
// read R could legally return under atomicity: the values of writes that do
// not begin after R ends and are not succeeded by another write that
// completes before R begins, plus init if no write completes before R
// begins. This is not a full atomicity check (it ignores cross-read
// constraints); it is a fast necessary condition used in error messages and
// property tests.
func WritesPrecedingReads[V comparable](ops []history.Op[V], init V) map[int][]V {
	var writes []history.Op[V]
	for _, op := range ops {
		if op.IsWrite {
			writes = append(writes, op)
		}
	}
	out := make(map[int][]V)
	for _, r := range ops {
		if r.IsWrite || r.Pending() {
			continue
		}
		var legal []V
		anyCompletedBefore := false
		for _, w := range writes {
			if w.Precedes(r) {
				anyCompletedBefore = true
			}
		}
		for _, w := range writes {
			if r.Precedes(w) {
				continue // w begins after r ends
			}
			// w is legal unless some other write w2 follows w and
			// completes before r begins.
			overwritten := false
			for _, w2 := range writes {
				if w2.ID != w.ID && w.Precedes(w2) && w2.Precedes(r) {
					overwritten = true
					break
				}
			}
			if !overwritten {
				legal = append(legal, w.Arg)
			}
		}
		if !anyCompletedBefore {
			legal = append(legal, init)
		}
		out[r.ID] = legal
	}
	return out
}
