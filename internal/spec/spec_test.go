package spec

import (
	"strings"
	"testing"

	"repro/internal/history"
)

// op builds a test operation.
func wr(id int, proc history.ProcID, v string, inv, res int64) history.Op[string] {
	return history.Op[string]{ID: id, Proc: proc, IsWrite: true, Arg: v, Inv: inv, Res: res}
}

func rd(id int, proc history.ProcID, v string, inv, res int64) history.Op[string] {
	return history.Op[string]{ID: id, Proc: proc, Ret: v, Inv: inv, Res: res}
}

func TestValidateWitnessAccepts(t *testing.T) {
	// W(a)[1,4]  R=a[5,8]  — points 2 and 6.
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 4),
		rd(1, 2, "a", 5, 8),
	}
	if err := ValidateWitness(ops, "init", Witness{0: 2, 1: 6}); err != nil {
		t.Fatalf("valid witness rejected: %v", err)
	}
}

func TestValidateWitnessInitialValue(t *testing.T) {
	ops := []history.Op[string]{rd(0, 2, "init", 1, 3)}
	if err := ValidateWitness(ops, "init", Witness{0: 2}); err != nil {
		t.Fatalf("read of initial value rejected: %v", err)
	}
	if err := ValidateWitness(ops, "other", Witness{0: 2}); err == nil {
		t.Fatal("read of wrong initial value accepted")
	}
}

func TestValidateWitnessRejectsPointOutsideInterval(t *testing.T) {
	ops := []history.Op[string]{wr(0, 0, "a", 5, 9)}
	for _, pt := range []int64{3, 4, 9, 12} {
		if err := ValidateWitness(ops, "i", Witness{0: pt}); err == nil {
			t.Errorf("point %d outside [5,9) accepted", pt)
		}
	}
	for _, pt := range []int64{5, 6, 8} {
		if err := ValidateWitness(ops, "i", Witness{0: pt}); err != nil {
			t.Errorf("point %d inside interval rejected: %v", pt, err)
		}
	}
}

func TestValidateWitnessRejectsMissingPoint(t *testing.T) {
	ops := []history.Op[string]{wr(0, 0, "a", 1, 4)}
	err := ValidateWitness(ops, "i", Witness{})
	if err == nil || !strings.Contains(err.Error(), "no *-action") {
		t.Fatalf("completed op without point accepted: %v", err)
	}
}

func TestValidateWitnessRejectsDuplicatePoints(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 10),
		wr(1, 1, "b", 1, 10),
	}
	if err := ValidateWitness(ops, "i", Witness{0: 5, 1: 5}); err == nil {
		t.Fatal("duplicate points accepted")
	}
}

func TestValidateWitnessRejectsWrongReadValue(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 4),
		wr(1, 1, "b", 5, 8),
		rd(2, 2, "a", 9, 12), // reads a after b took effect
	}
	if err := ValidateWitness(ops, "i", Witness{0: 2, 1: 6, 2: 10}); err == nil {
		t.Fatal("read of overwritten value accepted")
	}
}

func TestValidateWitnessPendingWrite(t *testing.T) {
	pendingW := history.Op[string]{ID: 0, IsWrite: true, Arg: "a", Inv: 1, Res: history.PendingSeq}
	read := rd(1, 2, "a", 5, 9)
	// The pending write may take effect...
	if err := ValidateWitness([]history.Op[string]{pendingW, read}, "i", Witness{0: 3, 1: 6}); err != nil {
		t.Fatalf("pending write with point rejected: %v", err)
	}
	// ...or never occur.
	readInit := rd(1, 2, "i", 5, 9)
	if err := ValidateWitness([]history.Op[string]{pendingW, readInit}, "i", Witness{1: 6}); err != nil {
		t.Fatalf("pending write without point rejected: %v", err)
	}
	// But a pending read must not linearize.
	pendingR := history.Op[string]{ID: 2, Inv: 10, Res: history.PendingSeq}
	if err := ValidateWitness([]history.Op[string]{pendingR}, "i", Witness{2: 11}); err == nil {
		t.Fatal("pending read with a point accepted")
	}
}

func TestValidateHistoryWrapsInputCorrectness(t *testing.T) {
	h := &history.History[string]{Events: []history.Event[string]{
		{Seq: 1, Kind: history.InvokeRead, Proc: 0, Op: 0},
		{Seq: 2, Kind: history.InvokeRead, Proc: 0, Op: 1},
	}}
	if err := ValidateHistory(h, "i", Witness{}); err == nil {
		t.Fatal("non-input-correct history must be flagged")
	}
}

func TestValidateHistoryEndToEnd(t *testing.T) {
	rec := history.NewRecorder[string](nil)
	w, _ := rec.InvokeWrite(0, "a")
	rec.RespondWrite(0, w)
	r, _ := rec.InvokeRead(2)
	rec.RespondRead(2, r, "a")
	h := rec.Snapshot()
	// Points: writes at seq of its invoke (allowed: >= Inv), read after.
	ops, err := h.Ops()
	if err != nil {
		t.Fatal(err)
	}
	wit := Witness{ops[0].ID: ops[0].Inv, ops[1].ID: ops[1].Inv}
	if err := ValidateHistory(&h, "i", wit); err != nil {
		t.Fatalf("end-to-end witness rejected: %v", err)
	}
}

func TestCheckSequential(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		rd(1, 2, "a", 3, 4),
		wr(2, 1, "b", 5, 6),
		rd(3, 2, "b", 7, 8),
	}
	if err := CheckSequential(ops, "i"); err != nil {
		t.Fatalf("valid sequential run rejected: %v", err)
	}
	bad := []history.Op[string]{wr(0, 0, "a", 1, 2), rd(1, 2, "i", 3, 4)}
	if err := CheckSequential(bad, "i"); err == nil {
		t.Fatal("stale sequential read accepted")
	}
	pend := []history.Op[string]{{ID: 0, IsWrite: true, Arg: "a", Inv: 1, Res: history.PendingSeq}}
	if err := CheckSequential(pend, "i"); err == nil {
		t.Fatal("pending op in sequential run accepted")
	}
}

func TestWritesPrecedingReads(t *testing.T) {
	// W(a)[1,2]  W(b)[3,4]  R[5,6]: only b is legal (a overwritten).
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 1, "b", 3, 4),
		rd(2, 2, "?", 5, 6),
	}
	legal := WritesPrecedingReads(ops, "i")[2]
	if len(legal) != 1 || legal[0] != "b" {
		t.Fatalf("legal = %v, want [b]", legal)
	}

	// Overlapping write: W(a)[1,2]  W(b)[3,10]  R[5,6]: a or b, not init.
	ops = []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 1, "b", 3, 10),
		rd(2, 2, "?", 5, 6),
	}
	legal = WritesPrecedingReads(ops, "i")[2]
	if len(legal) != 2 {
		t.Fatalf("legal = %v, want two values", legal)
	}

	// No completed write before the read: init is legal.
	ops = []history.Op[string]{
		wr(0, 0, "a", 4, 9),
		rd(1, 2, "?", 5, 6),
	}
	legal = WritesPrecedingReads(ops, "i")[1]
	found := map[string]bool{}
	for _, v := range legal {
		found[v] = true
	}
	if !found["a"] || !found["i"] || len(legal) != 2 {
		t.Fatalf("legal = %v, want [a i]", legal)
	}
}
