package register

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/history"
)

func TestAtomicSequential(t *testing.T) {
	r := NewAtomic(2, 10, nil)
	if got := r.Read(0); got != 10 {
		t.Fatalf("initial Read = %d, want 10", got)
	}
	r.Write(20)
	if got := r.Read(1); got != 20 {
		t.Fatalf("Read after Write = %d, want 20", got)
	}
}

func TestAtomicStampsIncrease(t *testing.T) {
	seq := new(history.Sequencer)
	r := NewAtomic(1, 0, seq)
	_, s1 := r.ReadStamped(0)
	s2 := r.WriteStamped(1)
	_, s3 := r.ReadStamped(0)
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("stamps not increasing: %d %d %d", s1, s2, s3)
	}
}

func TestAtomicSharedSequencerOrdersAcrossRegisters(t *testing.T) {
	seq := new(history.Sequencer)
	a := NewAtomic(1, 0, seq)
	b := NewAtomic(1, 0, seq)
	s1 := a.WriteStamped(1)
	s2 := b.WriteStamped(2)
	_, s3 := a.ReadStamped(0)
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("cross-register stamps not ordered: %d %d %d", s1, s2, s3)
	}
}

func TestAtomicCounters(t *testing.T) {
	r := NewAtomic(3, 0, nil)
	r.Read(0)
	r.Read(0)
	r.Read(2)
	r.Write(5)
	c := r.Counters()
	if c.Reads(0) != 2 || c.Reads(1) != 0 || c.Reads(2) != 1 {
		t.Fatalf("per-port reads = %d,%d,%d", c.Reads(0), c.Reads(1), c.Reads(2))
	}
	if c.TotalReads() != 3 || c.Writes() != 1 {
		t.Fatalf("totals = %d reads, %d writes", c.TotalReads(), c.Writes())
	}
	if c.Ports() != 3 {
		t.Fatalf("Ports = %d, want 3", c.Ports())
	}
}

func TestAtomicConcurrentReadersOneWriter(t *testing.T) {
	// The contract: one writer, many readers, under -race. Each reader
	// must only ever observe monotonically non-decreasing values given
	// the writer writes an increasing sequence.
	seq := new(history.Sequencer)
	const readers, writes = 4, 500
	r := NewAtomic(readers, 0, seq)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			r.Write(i)
		}
	}()
	errs := make(chan error, readers)
	for p := 0; p < readers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prev := -1
			for i := 0; i < writes; i++ {
				v := r.Read(p)
				if v < prev {
					errs <- errAt(p, prev, v)
					return
				}
				prev = v
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func errAt(port, prev, got int) error {
	return fmt.Errorf("atomic register regressed on port %d: read %d after %d", port, got, prev)
}

func TestAtomicConcurrentWritePanics(t *testing.T) {
	r := NewAtomic(1, 0, nil)
	// Simulate two overlapping writes by driving the misuse check
	// directly: set the writing flag as a concurrent writer would.
	if !r.writing.CompareAndSwap(false, true) {
		t.Fatal("setup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent write did not panic")
		}
	}()
	r.Write(1)
}

func TestLockedMRMW(t *testing.T) {
	r := NewLockedMRMW("a")
	if r.Read() != "a" {
		t.Fatal("initial value wrong")
	}
	r.Write("b")
	if r.Read() != "b" {
		t.Fatal("written value lost")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Write("x")
				_ = r.Read()
			}
		}(i)
	}
	wg.Wait()
}
