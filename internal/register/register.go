// Package register provides the shared-memory primitives underneath the
// constructions in this repository.
//
// The central model is the paper's "real" register: a 1-writer, n-reader
// register that some lower level (hardware, or a weaker construction, cf.
// footnote 3 of the paper) provides. Three strengths are modeled, after
// Lamport [L2]:
//
//   - Atomic: reads and writes behave as if they occur at a single instant.
//     The mutex-backed implementation additionally hands out a globally
//     ordered stamp from inside its critical section; that stamp is a valid
//     placement of the access's *-action, which lets package proof certify
//     arbitrarily long runs.
//   - RegularOnly: a read overlapping a write returns either the old or the
//     new value, chosen adversarially; non-overlapping reads are correct.
//   - SafeOnly: a read overlapping a write returns an arbitrary value of
//     the type; non-overlapping reads are correct.
//
// The weak registers exist to (a) serve as the base of the Lamport
// construction stack in package lamport and (b) provide known-broken inputs
// against which the atomicity checkers are validated.
package register

import (
	"sync"
	"sync/atomic"

	"repro/internal/history"
)

// Reg is a single-writer multi-reader register. Read takes the caller's
// port number (0-based) for access accounting and port-discipline checks;
// Write may be called only by the register's single owning writer, one
// write at a time.
type Reg[T any] interface {
	Read(port int) T
	Write(v T)
}

// Stamped is implemented by registers that can identify the linearization
// point (*-action) of each access. The returned stamp is drawn from a
// history.Sequencer shared across the whole system, inside the access's
// critical section, so stamps order accesses consistently with real time
// and with the register's serialization.
type Stamped[T any] interface {
	Reg[T]
	ReadStamped(port int) (T, int64)
	WriteStamped(v T) int64
}

// cacheLine is the assumed coherence granularity. 64 bytes covers x86-64
// and most arm64 parts; over-alignment is harmless, under-alignment only
// costs speed.
const cacheLine = 64

// paddedInt64 is an atomic counter occupying a full cache line, so that
// adjacent per-port counters never share a line (each reader port bumps
// its own counter on every access; sharing a line would make those bumps
// ping-pong the line between cores).
//
//bloom:sharded
type paddedInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counted is implemented by registers that expose access counters. The
// mutex-backed registers always count; the lock-free substrates count only
// when built with WithCounters (a nil Counters result means counting is
// off).
type Counted interface {
	Counters() *Counters
}

// Counters tallies accesses per port. All methods are safe for concurrent
// use. Each per-port read counter is padded to a cache line of its own, so
// counting on one port never contends with counting on another.
type Counters struct {
	reads  []paddedInt64
	writes atomic.Int64
}

func newCounters(ports int) *Counters {
	return &Counters{reads: make([]paddedInt64, ports)}
}

// Reads returns the number of reads performed through port.
func (c *Counters) Reads(port int) int64 { return c.reads[port].v.Load() }

// TotalReads returns the number of reads across all ports.
func (c *Counters) TotalReads() int64 {
	var n int64
	for i := range c.reads {
		n += c.reads[i].v.Load()
	}
	return n
}

// Writes returns the number of writes performed.
func (c *Counters) Writes() int64 { return c.writes.Load() }

// Ports returns the number of read ports.
func (c *Counters) Ports() int { return len(c.reads) }

// Atomic is a 1-writer, n-reader atomic register. It models the "real"
// registers Bloom's construction consumes: in a multiprocessor they would
// be hardware or a lower-level simulation; here a mutex serializes
// accesses, which realizes atomicity exactly (every access has an obvious
// instant at which it occurs — its critical section).
//
// The zero value is not usable; use NewAtomic.
type Atomic[T any] struct {
	mu      sync.Mutex
	val     T
	seq     *history.Sequencer
	writing atomic.Bool // single-writer discipline check
	c       *Counters
}

var _ Stamped[int] = (*Atomic[int])(nil)

// NewAtomic returns an atomic register over ports read ports, initialized
// to initial. If seq is nil the register allocates a private sequencer
// (stamps then order accesses of this register only).
func NewAtomic[T any](ports int, initial T, seq *history.Sequencer) *Atomic[T] {
	if seq == nil {
		seq = new(history.Sequencer)
	}
	return &Atomic[T]{val: initial, seq: seq, c: newCounters(ports)}
}

// Read returns the register's value as seen through port.
func (r *Atomic[T]) Read(port int) T {
	v, _ := r.ReadStamped(port)
	return v
}

// ReadStamped returns the value and the stamp of the read's *-action.
// The mutex is the point of this substrate — serialization is what makes
// its runs certifiable — so it is exempt from the wait-free check.
//
//bloom:allowblocking
func (r *Atomic[T]) ReadStamped(port int) (T, int64) {
	r.c.reads[port].v.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val, r.seq.Next()
}

// Write stores v. Only the owning writer may call Write, and a writer is
// sequential, so concurrent Writes indicate a harness bug; they panic.
func (r *Atomic[T]) Write(v T) { r.WriteStamped(v) }

// WriteStamped stores v and returns the stamp of the write's *-action.
// Blocking by design, like ReadStamped.
//
//bloom:allowblocking
func (r *Atomic[T]) WriteStamped(v T) int64 {
	if !r.writing.CompareAndSwap(false, true) {
		panic("register: concurrent writes to a single-writer register")
	}
	defer r.writing.Store(false)
	r.c.writes.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
	return r.seq.Next()
}

// Counters exposes the register's access counters.
func (r *Atomic[T]) Counters() *Counters { return r.c }

// LockedMRMW is a multi-writer multi-reader register protected by a single
// mutex. It is trivially atomic and serves as the "what you would do with
// locks" baseline in benchmarks; unlike the register constructions it is
// not wait-free — a crashed or descheduled lock holder blocks everyone,
// which is precisely the failure mode register protocols avoid.
type LockedMRMW[T any] struct {
	mu  sync.Mutex
	val T
}

// NewLockedMRMW returns a locked register initialized to initial.
func NewLockedMRMW[T any](initial T) *LockedMRMW[T] {
	return &LockedMRMW[T]{val: initial}
}

// Read returns the current value.
func (r *LockedMRMW[T]) Read() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// Write stores v.
func (r *LockedMRMW[T]) Write(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
}
