package register

import (
	"math/rand"
	"sync"
)

// Adversary supplies the nondeterministic choices weak registers are
// allowed to make when a read overlaps a write. Implementations must be
// safe for concurrent use.
type Adversary interface {
	// Flip returns an arbitrary boolean (used by RegularOnly to pick the
	// old or new value).
	Flip() bool
	// Intn returns an arbitrary integer in [0, n) (used by SafeOnly to
	// pick an arbitrary value from the register's domain).
	Intn(n int) int
}

// SeededAdversary resolves weak-register nondeterminism with a seeded
// pseudo-random stream; the same seed yields the same adversarial choices
// for a fixed sequence of queries.
type SeededAdversary struct {
	mu  sync.Mutex
	rng *rand.Rand
}

var _ Adversary = (*SeededAdversary)(nil)

// NewSeededAdversary returns an adversary driven by the given seed.
func NewSeededAdversary(seed int64) *SeededAdversary {
	return &SeededAdversary{rng: rand.New(rand.NewSource(seed))}
}

// Flip returns a pseudo-random boolean.
func (a *SeededAdversary) Flip() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rng.Intn(2) == 1
}

// Intn returns a pseudo-random integer in [0, n).
func (a *SeededAdversary) Intn(n int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rng.Intn(n)
}

// ScriptedAdversary replays a fixed sequence of choices, cycling when
// exhausted. It makes weak-register misbehaviour reproducible in tests:
// Flip consumes one scripted value (!=0 means true); Intn consumes one and
// reduces it mod n.
type ScriptedAdversary struct {
	mu     sync.Mutex
	script []int
	pos    int
}

var _ Adversary = (*ScriptedAdversary)(nil)

// NewScriptedAdversary returns an adversary replaying script. The script
// must be non-empty.
func NewScriptedAdversary(script ...int) *ScriptedAdversary {
	if len(script) == 0 {
		panic("register: empty adversary script")
	}
	return &ScriptedAdversary{script: script}
}

func (a *ScriptedAdversary) next() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := a.script[a.pos%len(a.script)]
	a.pos++
	return v
}

// Flip returns the next scripted choice as a boolean.
func (a *ScriptedAdversary) Flip() bool { return a.next() != 0 }

// Intn returns the next scripted choice reduced modulo n.
func (a *ScriptedAdversary) Intn(n int) int {
	v := a.next() % n
	if v < 0 {
		v += n
	}
	return v
}

// RegularOnly is a 1-writer, n-reader regular register: a read overlapping
// a write returns either the value being written or the previous value, at
// the adversary's choice; a read overlapping no write returns the current
// value. Regular registers permit new-old inversion — two sequential reads
// inside one write may see new then old — which is exactly what separates
// them from atomic registers, and what the checkers must be able to
// detect.
type RegularOnly[T any] struct {
	mu      sync.Mutex
	val     T // committed value
	pending T // value being written, valid while writing
	writing bool
	adv     Adversary
	c       *Counters
}

var _ Reg[int] = (*RegularOnly[int])(nil)

// NewRegularOnly returns a regular register with the given adversary.
func NewRegularOnly[T any](ports int, initial T, adv Adversary) *RegularOnly[T] {
	return &RegularOnly[T]{val: initial, adv: adv, c: newCounters(ports)}
}

// Read returns the committed value, or — while a write is in progress —
// the old or new value at the adversary's choice.
func (r *RegularOnly[T]) Read(port int) T {
	r.c.reads[port].v.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.writing && r.adv.Flip() {
		return r.pending
	}
	return r.val
}

// Write stores v in two phases so that reads can observe the overlap
// window. The yield between phases widens the window under real
// concurrency; under scripted tests the two phases are driven explicitly.
func (r *RegularOnly[T]) Write(v T) {
	r.BeginWrite(v)
	r.EndWrite()
}

// BeginWrite opens the overlap window for a write of v. Exposed (together
// with EndWrite) so deterministic tests can interleave reads inside the
// window.
func (r *RegularOnly[T]) BeginWrite(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.writing {
		panic("register: concurrent writes to a single-writer register")
	}
	r.writing = true
	r.pending = v
}

// EndWrite commits the pending value and closes the window.
func (r *RegularOnly[T]) EndWrite() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.writing {
		panic("register: EndWrite without BeginWrite")
	}
	r.val = r.pending
	r.writing = false
	r.c.writes.Add(1)
}

// Counters exposes the register's access counters.
func (r *RegularOnly[T]) Counters() *Counters { return r.c }

// SafeOnly is a 1-writer, n-reader safe register over a finite domain: a
// read overlapping a write returns an arbitrary domain value chosen by the
// adversary; a read overlapping no write returns the value of the latest
// preceding write. This is the weakest register Lamport considers and the
// base of the construction stack in package lamport.
type SafeOnly[T any] struct {
	mu      sync.Mutex
	val     T
	writing bool
	domain  []T
	adv     Adversary
	c       *Counters
}

var _ Reg[int] = (*SafeOnly[int])(nil)

// NewSafeOnly returns a safe register whose arbitrary reads are drawn from
// domain (which must be non-empty and should contain every value the
// register can legally hold).
func NewSafeOnly[T any](ports int, initial T, domain []T, adv Adversary) *SafeOnly[T] {
	if len(domain) == 0 {
		panic("register: safe register needs a non-empty domain")
	}
	d := make([]T, len(domain))
	copy(d, domain)
	return &SafeOnly[T]{val: initial, domain: d, adv: adv, c: newCounters(ports)}
}

// Read returns the committed value or, during a write, an arbitrary domain
// value.
func (r *SafeOnly[T]) Read(port int) T {
	r.c.reads[port].v.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.writing {
		return r.domain[r.adv.Intn(len(r.domain))]
	}
	return r.val
}

// Write stores v.
func (r *SafeOnly[T]) Write(v T) {
	r.BeginWrite(v)
	r.EndWrite(v)
}

// BeginWrite opens the overlap window.
func (r *SafeOnly[T]) BeginWrite(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.writing {
		panic("register: concurrent writes to a single-writer register")
	}
	_ = v
	r.writing = true
}

// EndWrite commits v and closes the window.
func (r *SafeOnly[T]) EndWrite(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.writing {
		panic("register: EndWrite without BeginWrite")
	}
	r.val = v
	r.writing = false
	r.c.writes.Add(1)
}

// Counters exposes the register's access counters.
func (r *SafeOnly[T]) Counters() *Counters { return r.c }
