package register

import (
	"testing"
)

func TestSeededAdversaryDeterministic(t *testing.T) {
	a := NewSeededAdversary(42)
	b := NewSeededAdversary(42)
	for i := 0; i < 100; i++ {
		if a.Flip() != b.Flip() {
			t.Fatal("same seed diverged on Flip")
		}
		if a.Intn(7) != b.Intn(7) {
			t.Fatal("same seed diverged on Intn")
		}
	}
}

func TestScriptedAdversary(t *testing.T) {
	a := NewScriptedAdversary(1, 0, 5)
	if !a.Flip() {
		t.Fatal("script[0]=1 should flip true")
	}
	if a.Flip() {
		t.Fatal("script[1]=0 should flip false")
	}
	if got := a.Intn(3); got != 2 {
		t.Fatalf("Intn(3) with script 5 = %d, want 2", got)
	}
	// Cycles.
	if !a.Flip() {
		t.Fatal("script should cycle back to 1")
	}
}

func TestScriptedAdversaryNegativeModulo(t *testing.T) {
	a := NewScriptedAdversary(-1)
	if got := a.Intn(3); got < 0 || got >= 3 {
		t.Fatalf("Intn out of range: %d", got)
	}
}

func TestScriptedAdversaryEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty script did not panic")
		}
	}()
	NewScriptedAdversary()
}

func TestRegularOnlyQuiescentReadsCorrect(t *testing.T) {
	r := NewRegularOnly(2, 10, NewSeededAdversary(1))
	if got := r.Read(0); got != 10 {
		t.Fatalf("initial read = %d", got)
	}
	r.Write(20)
	if got := r.Read(1); got != 20 {
		t.Fatalf("read after write = %d", got)
	}
	if r.Counters().Writes() != 1 || r.Counters().TotalReads() != 2 {
		t.Fatal("counters wrong")
	}
}

func TestRegularOnlyOverlapReturnsOldOrNew(t *testing.T) {
	// Force both choices with a scripted adversary.
	adv := NewScriptedAdversary(0, 1)
	r := NewRegularOnly(1, 1, adv)
	r.BeginWrite(2)
	if got := r.Read(0); got != 1 {
		t.Fatalf("scripted old choice returned %d, want 1", got)
	}
	if got := r.Read(0); got != 2 {
		t.Fatalf("scripted new choice returned %d, want 2", got)
	}
	r.EndWrite()
	if got := r.Read(0); got != 2 {
		t.Fatalf("committed value = %d, want 2", got)
	}
}

func TestRegularOnlyNewOldInversion(t *testing.T) {
	// The separating behaviour from atomicity: inside one write window,
	// read new then old.
	adv := NewScriptedAdversary(1, 0)
	r := NewRegularOnly(1, "old", adv)
	r.BeginWrite("new")
	first := r.Read(0)
	second := r.Read(0)
	r.EndWrite()
	if first != "new" || second != "old" {
		t.Fatalf("expected new-old inversion, got %q then %q", first, second)
	}
}

func TestRegularOnlyDoubleBeginPanics(t *testing.T) {
	r := NewRegularOnly(1, 0, NewSeededAdversary(1))
	r.BeginWrite(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double BeginWrite did not panic")
		}
	}()
	r.BeginWrite(2)
}

func TestRegularOnlyEndWithoutBeginPanics(t *testing.T) {
	r := NewRegularOnly(1, 0, NewSeededAdversary(1))
	defer func() {
		if recover() == nil {
			t.Fatal("EndWrite without BeginWrite did not panic")
		}
	}()
	r.EndWrite()
}

func TestSafeOnlyQuiescentReadsCorrect(t *testing.T) {
	r := NewSafeOnly(1, 0, []int{0, 1, 2, 3}, NewSeededAdversary(1))
	if got := r.Read(0); got != 0 {
		t.Fatalf("initial read = %d", got)
	}
	r.Write(3)
	if got := r.Read(0); got != 3 {
		t.Fatalf("read after write = %d", got)
	}
}

func TestSafeOnlyOverlapReturnsDomainValue(t *testing.T) {
	adv := NewScriptedAdversary(2)
	r := NewSafeOnly(1, 0, []int{10, 20, 30}, adv)
	r.BeginWrite(99)
	if got := r.Read(0); got != 30 {
		t.Fatalf("overlapped read = %d, want scripted domain value 30", got)
	}
	r.EndWrite(99)
	if got := r.Read(0); got != 99 {
		t.Fatalf("committed read = %d, want 99", got)
	}
}

func TestSafeOnlyEmptyDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty domain did not panic")
		}
	}()
	NewSafeOnly[int](1, 0, nil, NewSeededAdversary(1))
}

func TestSafeOnlyDomainCopied(t *testing.T) {
	domain := []int{1, 2}
	r := NewSafeOnly(1, 1, domain, NewScriptedAdversary(0))
	domain[0] = 99 // mutating the caller's slice must not affect the register
	r.BeginWrite(2)
	if got := r.Read(0); got != 1 {
		t.Fatalf("domain not copied at boundary: got %d", got)
	}
	r.EndWrite(2)
}
