// Lock-free "real" registers: the fast substrate family.
//
// The mutex-backed Atomic register realizes atomicity by serializing every
// access through one lock and drawing a global stamp inside the critical
// section — which is exactly what makes its runs certifiable, and exactly
// what caps its throughput: the paper's protocol is wait-free, but a
// substrate whose every real access takes a mutex is not.
//
// The two registers here keep the 1-writer, n-reader interface and the
// atomicity guarantee while touching no lock and no sequencer:
//
//   - Pointer[T] publishes each write as a fresh immutable snapshot behind
//     an atomic.Pointer. A write is one slot fill plus one atomic store
//     (the allocator is visited once per chunk of snapshots); a read is
//     one atomic load plus a dereference. Both are wait-free for any T.
//   - Seqlock[T] keeps the value inline in two alternating slots of atomic
//     words under a version counter (a double-buffered seqlock). Writes are
//     alloc-free and wait-free; reads are alloc-free and retry only when
//     two writes land inside one read, which the single-writer discipline
//     makes rare and bounded in practice. T must be pointer-free (checked
//     at construction).
//
// Neither register can stamp its accesses, so runs over them are checked
// with the exhaustive checker (CheckAtomic) rather than certified by
// package proof — see the cross-substrate conformance tests in
// internal/core.
package register

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// FastOption configures a lock-free register.
type FastOption func(*fastConfig)

type fastConfig struct {
	counters bool
}

// WithCounters enables per-port access counting on a lock-free register.
// Counting costs one padded atomic increment per access; it is off by
// default so the hot path stays a bare load or store.
func WithCounters() FastOption {
	return func(c *fastConfig) { c.counters = true }
}

// pointerChunk is how many snapshot slots a Pointer writer carves out of
// one allocation. Each write still publishes a fresh, never-reused slot;
// chunking only amortizes the allocator visit. A reader holding an old
// snapshot pins its whole chunk until the reader moves on — bounded, since
// the writer abandons a chunk after pointerChunk writes.
const pointerChunk = 64

// Pointer is a 1-writer, n-reader atomic register that publishes values
// behind an atomic.Pointer. Every write installs a pointer to a private
// copy of the value, so readers always dereference an immutable snapshot:
// the store instant is the access's single serialization point, which
// realizes atomicity with no lock, no retry, and no shared sequencer.
// Snapshots are allocated pointerChunk at a time from a writer-private
// chunk, so the allocator is visited once per chunk, not once per write.
//
// Unlike the mutex substrate, Pointer does not police the single-writer
// discipline (the check would put two atomic RMWs on an otherwise
// store-only hot path). Concurrent writes are a harness bug; they are
// memory-safe here (atomic stores simply interleave) and the conformance
// suite runs the protocol on top under -race.
//
// The zero value is not usable; use NewPointer.
type Pointer[T any] struct {
	p atomic.Pointer[T]
	c *Counters // nil unless WithCounters

	// Writer-private snapshot arena; never touched by readers except
	// through published pointers into it.
	chunk []T
	next  int
}

var _ Reg[int] = (*Pointer[int])(nil)
var _ Counted = (*Pointer[int])(nil)

// NewPointer returns a pointer-publishing register over ports read ports,
// initialized to initial.
func NewPointer[T any](ports int, initial T, opts ...FastOption) *Pointer[T] {
	var cfg fastConfig
	for _, o := range opts {
		o(&cfg)
	}
	r := &Pointer[T]{}
	if cfg.counters {
		r.c = newCounters(ports)
	}
	v := initial
	r.p.Store(&v)
	return r
}

// Read returns the register's value as seen through port.
//
//bloom:waitfree
//bloom:noalloc
func (r *Pointer[T]) Read(port int) T {
	if r.c != nil {
		r.c.reads[port].v.Add(1)
	}
	return *r.p.Load()
}

// Write stores v: fill the next snapshot slot, then one atomic store to
// publish it. The slot is never written again, so the plain fill is
// ordered before every reader's dereference by the publishing store. Only
// the owning writer may call Write. The chunked slot arena allocates once
// per pointerChunk writes by design — amortized, hence excused from the
// no-alloc claim rather than claiming it.
//
//bloom:waitfree
//bloom:allowalloc
func (r *Pointer[T]) Write(v T) {
	if r.c != nil {
		r.c.writes.Add(1)
	}
	if r.next == len(r.chunk) {
		r.chunk = make([]T, pointerChunk)
		r.next = 0
	}
	slot := &r.chunk[r.next]
	r.next++
	*slot = v
	r.p.Store(slot)
}

// Counters exposes the access counters, or nil if counting is off.
func (r *Pointer[T]) Counters() *Counters { return r.c }

// seqlockMaxWords bounds the inline value size (in 8-byte words) a
// Seqlock supports; larger values belong behind a Pointer anyway.
const seqlockMaxWords = 32

// Seqlock is a 1-writer, n-reader atomic register holding its value
// inline in two slots of atomic 8-byte words, alternated by a version
// counter (a double-buffered seqlock):
//
//	write: store words into slot[(version+1) & 1] → version++
//	read:  v1 := version
//	       load words from slot[v1 & 1]
//	       if version != v1, retry (slot may have been reused) else return
//
// The writer only ever mutates the slot readers are NOT directed to, so a
// read is torn only when it straddles TWO writes (the second write reuses
// the slot the read is in, and the version check catches it). Writes are
// alloc-free and wait-free — one plain load, the word stores, one atomic
// increment; reads are alloc-free and lock-free, with retries bounded by
// the writer's progress.
//
// Because readers copy raw words while a writer may be mid-store, the
// value type must be pointer-free (a torn pointer must never materialize,
// even transiently); NewSeqlock rejects types containing pointers, and the
// word-wise atomics keep the race detector satisfied.
//
// The zero value is not usable; use NewSeqlock.
type Seqlock[T any] struct {
	version atomic.Uint64
	_       [cacheLine - 8]byte // keep readers' version polling off the data words
	slots   [2][]atomic.Uint64
	nwords  int
	c       *Counters // nil unless WithCounters
}

// wordBuf is a word-aligned staging area big enough to read or write T
// through 8-byte windows: the zero-width leading field forces 8-byte
// alignment, and the trailing pad keeps the last (partial) word's access
// inside the buffer. Being exactly sizeof(T)+8 bytes, it costs only that
// much stack zeroing per access, not the worst-case value size.
type wordBuf[T any] struct {
	_   [0]uint64
	val T
	_   [8]byte
}

var _ Reg[int] = (*Seqlock[int])(nil)
var _ Counted = (*Seqlock[int])(nil)

// NewSeqlock returns a seqlock register over ports read ports, initialized
// to initial. It fails if T contains pointers (strings, slices, maps,
// interfaces, ...) or exceeds 8*seqlockMaxWords bytes; use Pointer for
// such types.
func NewSeqlock[T any](ports int, initial T, opts ...FastOption) (*Seqlock[T], error) {
	var cfg fastConfig
	for _, o := range opts {
		o(&cfg)
	}
	t := reflect.TypeOf(&initial).Elem()
	if hasPointers(t) {
		return nil, fmt.Errorf("register: seqlock value type %v contains pointers; use the Pointer substrate", t)
	}
	size := int(unsafe.Sizeof(initial))
	nwords := (size + 7) / 8
	if nwords > seqlockMaxWords {
		return nil, fmt.Errorf("register: seqlock value type %v is %d bytes, max %d", t, size, 8*seqlockMaxWords)
	}
	// Pad each slot to whole cache lines so the writer mutating one slot
	// never invalidates the line a reader is copying from the other.
	slotWords := ((nwords*8 + cacheLine - 1) / cacheLine) * (cacheLine / 8)
	backing := make([]atomic.Uint64, 2*slotWords)
	r := &Seqlock[T]{
		slots:  [2][]atomic.Uint64{backing[:slotWords], backing[slotWords:]},
		nwords: nwords,
	}
	if cfg.counters {
		r.c = newCounters(ports)
	}
	var buf wordBuf[T]
	buf.val = initial
	p := unsafe.Pointer(&buf)
	for i := 0; i < nwords; i++ {
		// Version starts at 0, so readers start on slot 0.
		r.slots[0][i].Store(*(*uint64)(unsafe.Add(p, i*8)))
	}
	return r, nil
}

// MustSeqlock is NewSeqlock that panics on error, for contexts (such as
// substrate selection in core.New) with no error return.
func MustSeqlock[T any](ports int, initial T, opts ...FastOption) *Seqlock[T] {
	r, err := NewSeqlock(ports, initial, opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// Read returns the register's value as seen through port, retrying while
// torn by an in-flight write. (Lock-free rather than wait-free in the
// strict sense — the retry loop is bounded by writer progress — but it
// never parks the goroutine, which is the property the annotation
// certifies; runtime.Gosched is a courtesy yield, not a block.)
//
//bloom:waitfree
//bloom:noalloc
func (r *Seqlock[T]) Read(port int) T {
	if r.c != nil {
		r.c.reads[port].v.Add(1)
	}
	var buf wordBuf[T]
	p := unsafe.Pointer(&buf)
	for spins := 0; ; spins++ {
		v1 := r.version.Load()
		slot := r.slots[v1&1]
		for i := 0; i < r.nwords; i++ {
			*(*uint64)(unsafe.Add(p, i*8)) = slot[i].Load()
		}
		if r.version.Load() == v1 {
			return buf.val
		}
		if spins > 64 {
			// Two writes landed inside this read and the second is
			// apparently descheduled mid-store; let it run rather
			// than burning the core.
			runtime.Gosched()
		}
	}
}

// Write stores v. Only the owning writer may call Write; a racing second
// writer is detected by the version counter moving under us (each write
// must advance it by exactly one) and panics.
//
//bloom:waitfree
//bloom:noalloc
func (r *Seqlock[T]) Write(v T) {
	if r.c != nil {
		r.c.writes.Add(1)
	}
	var buf wordBuf[T]
	buf.val = v
	p := unsafe.Pointer(&buf)
	v1 := r.version.Load()
	slot := r.slots[(v1+1)&1] // the slot readers are not directed to
	for i := 0; i < r.nwords; i++ {
		slot[i].Store(*(*uint64)(unsafe.Add(p, i*8)))
	}
	if r.version.Add(1) != v1+1 {
		panic("register: concurrent writes to a single-writer register")
	}
}

// Counters exposes the access counters, or nil if counting is off.
func (r *Seqlock[T]) Counters() *Counters { return r.c }

// hasPointers reports whether values of t contain pointers anywhere
// (including strings, slices, maps, channels, funcs, and interfaces).
func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		// Pointer, UnsafePointer, String, Slice, Map, Chan, Func,
		// Interface — and anything exotic: assume pointers.
		return true
	}
}
