package register

import (
	"strings"
	"sync"
	"testing"
)

// fastRegs builds one of each lock-free register over ports read ports so
// shared contract tests can sweep both.
func fastRegs(t *testing.T, ports int, initial int, opts ...FastOption) map[string]Reg[int] {
	t.Helper()
	sl, err := NewSeqlock(ports, initial, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Reg[int]{
		"pointer": NewPointer(ports, initial, opts...),
		"seqlock": sl,
	}
}

func TestFastSequential(t *testing.T) {
	for name, r := range fastRegs(t, 2, 10) {
		t.Run(name, func(t *testing.T) {
			if got := r.Read(0); got != 10 {
				t.Fatalf("initial Read = %d, want 10", got)
			}
			r.Write(20)
			if got := r.Read(1); got != 20 {
				t.Fatalf("Read after Write = %d, want 20", got)
			}
		})
	}
}

func TestFastCountersOptIn(t *testing.T) {
	// Without WithCounters the hot path carries no counters at all.
	for name, r := range fastRegs(t, 2, 0) {
		t.Run(name+"/off", func(t *testing.T) {
			r.Write(1)
			_ = r.Read(0)
			if c := r.(Counted).Counters(); c != nil {
				t.Fatalf("counters = %v, want nil when not requested", c)
			}
		})
	}
	for name, r := range fastRegs(t, 3, 0, WithCounters()) {
		t.Run(name+"/on", func(t *testing.T) {
			r.Read(0)
			r.Read(0)
			r.Read(2)
			r.Write(5)
			c := r.(Counted).Counters()
			if c == nil {
				t.Fatal("counters nil despite WithCounters")
			}
			if c.Reads(0) != 2 || c.Reads(1) != 0 || c.Reads(2) != 1 {
				t.Fatalf("per-port reads = %d,%d,%d", c.Reads(0), c.Reads(1), c.Reads(2))
			}
			if c.TotalReads() != 3 || c.Writes() != 1 || c.Ports() != 3 {
				t.Fatalf("totals = %d reads, %d writes, %d ports", c.TotalReads(), c.Writes(), c.Ports())
			}
		})
	}
}

// TestFastConcurrentReadersOneWriter is the single-writer atomicity
// contract under -race: an increasing write sequence must never appear to
// regress on any reader port.
func TestFastConcurrentReadersOneWriter(t *testing.T) {
	const readers, writes = 4, 2000
	for name, r := range fastRegs(t, readers, 0) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; i <= writes; i++ {
					r.Write(i)
				}
			}()
			errs := make(chan error, readers)
			for p := 0; p < readers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					prev := -1
					for i := 0; i < writes; i++ {
						v := r.Read(p)
						if v < prev {
							errs <- errAt(p, prev, v)
							return
						}
						prev = v
					}
				}(p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestSeqlockWideValue exercises a multi-word pointer-free value, where
// torn reads are actually possible and the version check must catch them:
// every field of the struct is written with the same generation number, so
// any mixed-generation read is a torn read that escaped the seqlock.
func TestSeqlockWideValue(t *testing.T) {
	type wide struct{ A, B, C, D int64 }
	r, err := NewSeqlock(2, wide{})
	if err != nil {
		t.Fatal(err)
	}
	const writes = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= writes; i++ {
			r.Write(wide{A: i, B: i, C: i, D: i})
		}
	}()
	errs := make(chan string, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				v := r.Read(p)
				if v.A != v.B || v.B != v.C || v.C != v.D {
					errs <- "torn read escaped the seqlock"
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestSeqlockRejectsPointerfulTypes(t *testing.T) {
	if _, err := NewSeqlock(1, "a string"); err == nil {
		t.Fatal("seqlock accepted a string value")
	} else if !strings.Contains(err.Error(), "contains pointers") {
		t.Fatalf("unexpected error: %v", err)
	}
	type withPtr struct {
		N int
		P *int
	}
	if _, err := NewSeqlock(1, withPtr{}); err == nil {
		t.Fatal("seqlock accepted a struct containing a pointer")
	}
	type oversized struct{ A [33]uint64 }
	if _, err := NewSeqlock(1, oversized{}); err == nil {
		t.Fatal("seqlock accepted an oversized value")
	}
	// Pointer-free composites are fine.
	type ok struct {
		A [4]int32
		B struct{ X, Y float64 }
	}
	if _, err := NewSeqlock(1, ok{}); err != nil {
		t.Fatalf("seqlock rejected a pointer-free struct: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSeqlock did not panic on a pointerful type")
		}
	}()
	MustSeqlock(1, "boom")
}

// TestSeqlockConcurrentWriteDetection hammers the single-writer register
// with two racing writers. The version-advance check makes any overlapping
// pair of writes panic in one of them; if the scheduler happens to never
// overlap them, all writes must at least be accounted for (no silent lost
// update either way).
func TestSeqlockConcurrentWriteDetection(t *testing.T) {
	const perWriter = 20000
	r := MustSeqlock(1, 0)
	var wg sync.WaitGroup
	panics := make(chan struct{}, 2)
	completed := make([]int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					panics <- struct{}{}
				}
			}()
			for i := 0; i < perWriter; i++ {
				r.Write(i)
				completed[w]++
			}
		}(w)
	}
	wg.Wait()
	close(panics)
	if len(panics) > 0 {
		return // overlap detected and punished, as designed
	}
	// The writers never overlapped: every write must have advanced the
	// version exactly once.
	if got := r.version.Load(); got != uint64(completed[0]+completed[1]) {
		t.Fatalf("version %d after %d undetected racing writes", got, completed[0]+completed[1])
	}
	t.Log("writers never overlapped; detection path not exercised this run")
}

// TestSeqlockOddSizedValue exercises a value whose size is not a multiple
// of 8, so the last word is partial and the staging buffer's tail pad is
// load-bearing.
func TestSeqlockOddSizedValue(t *testing.T) {
	type odd struct {
		A uint64
		B uint8
	}
	r := MustSeqlock(1, odd{A: 7, B: 3})
	if got := r.Read(0); got != (odd{A: 7, B: 3}) {
		t.Fatalf("initial = %+v", got)
	}
	r.Write(odd{A: 9, B: 250})
	if got := r.Read(0); got != (odd{A: 9, B: 250}) {
		t.Fatalf("after write = %+v", got)
	}
}
