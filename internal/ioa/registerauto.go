package ioa

import (
	"fmt"

	"repro/internal/history"
)

// Action names for the register signature (Figure 1 of the paper).
const (
	NameRStart  = "R_start"  // command to read
	NameRStar   = "R*"       // internal event marking a read of v
	NameRFinish = "R_finish" // communication of the read value v
	NameWStart  = "W_start"  // command to write value v
	NameWStar   = "W*"       // internal event marking a write of v
	NameWFinish = "W_finish" // acknowledgment of a write
)

// RStart builds the R_start action on channel c.
func RStart(c int) Action { return Action{Name: NameRStart, Channel: c} }

// RStar builds the internal R*(v) action on channel c.
func RStar(c int, v string) Action { return Action{Name: NameRStar, Channel: c, Value: v} }

// RFinish builds the R_finish(v) acknowledgment on channel c.
func RFinish(c int, v string) Action { return Action{Name: NameRFinish, Channel: c, Value: v} }

// WStart builds the W_start(v) action on channel c.
func WStart(c int, v string) Action { return Action{Name: NameWStart, Channel: c, Value: v} }

// WStar builds the internal W*(v) action on channel c.
func WStar(c int, v string) Action { return Action{Name: NameWStar, Channel: c, Value: v} }

// WFinish builds the W_finish acknowledgment on channel c.
func WFinish(c int) Action { return Action{Name: NameWFinish, Channel: c} }

// RegisterSignature returns the signature of a process "with the signature
// of a register" (Section 3) serving the given channels: requests are
// inputs, acknowledgments outputs, *-actions internal.
func RegisterSignature(channels []int) Signature {
	chanSet := make(map[int]bool, len(channels))
	for _, c := range channels {
		chanSet[c] = true
	}
	return func(a Action) Class {
		if !chanSet[a.Channel] {
			return NotInSignature
		}
		switch a.Name {
		case NameRStart, NameWStart:
			return Input
		case NameRFinish, NameWFinish:
			return Output
		case NameRStar, NameWStar:
			return Internal
		default:
			return NotInSignature
		}
	}
}

// MaxRegisterChannels bounds the canonical register automaton's channel
// count (its state uses a fixed-size array so states stay comparable).
const MaxRegisterChannels = 8

// pendPhase tracks a channel's pending operation.
type pendPhase uint8

const (
	idle      pendPhase = iota
	readWait            // R_start received, R* not yet taken
	readDone            // R* taken, R_finish not yet emitted
	writeWait           // W_start received, W* not yet taken
	writeDone           // W* taken, W_finish not yet emitted
)

// pendSlot is one channel's pending operation.
type pendSlot struct {
	phase pendPhase
	val   string // value to return (reads) or to write (writes)
}

// regState is the canonical register automaton's state. It is a
// comparable value.
type regState struct {
	cur  string
	pend [MaxRegisterChannels]pendSlot
}

// RegisterAutomaton is the canonical atomic register as an I/O automaton:
// each operation takes effect at its internal *-action, so every fair
// external schedule is atomic by construction. It is the specification
// automaton against which implementations are compared, and a worked
// example of the model of Section 2.
type RegisterAutomaton struct {
	name     string
	channels []int
	initial  string
}

var _ Automaton = (*RegisterAutomaton)(nil)

// NewRegisterAutomaton builds a register automaton named name serving the
// given channels (at most MaxRegisterChannels, each in [0,
// MaxRegisterChannels)), initialized to v0.
func NewRegisterAutomaton(name string, channels []int, v0 string) (*RegisterAutomaton, error) {
	if len(channels) > MaxRegisterChannels {
		return nil, fmt.Errorf("ioa: %d channels exceed the maximum %d", len(channels), MaxRegisterChannels)
	}
	for _, c := range channels {
		if c < 0 || c >= MaxRegisterChannels {
			return nil, fmt.Errorf("ioa: channel %d out of range [0,%d)", c, MaxRegisterChannels)
		}
	}
	return &RegisterAutomaton{name: name, channels: channels, initial: v0}, nil
}

// Name implements Automaton.
func (r *RegisterAutomaton) Name() string { return r.name }

// Sig implements Automaton.
func (r *RegisterAutomaton) Sig() Signature { return RegisterSignature(r.channels) }

// Initial implements Automaton.
func (r *RegisterAutomaton) Initial() State { return regState{cur: r.initial} }

// Step implements Automaton. Input actions are always accepted; a request
// arriving while another is pending on the same channel (a non-input-
// correct usage) is ignored, which keeps the automaton input-enabled as
// Section 2 requires.
func (r *RegisterAutomaton) Step(s State, a Action) (State, bool) {
	st, ok := s.(regState)
	if !ok {
		return nil, false
	}
	if r.Sig()(a) == NotInSignature {
		return nil, false
	}
	c := a.Channel
	slot := st.pend[c]
	switch a.Name {
	case NameRStart:
		if slot.phase != idle {
			return st, true // ignore improper input (input-enabled)
		}
		st.pend[c] = pendSlot{phase: readWait}
		return st, true
	case NameWStart:
		if slot.phase != idle {
			return st, true
		}
		st.pend[c] = pendSlot{phase: writeWait, val: a.Value}
		return st, true
	case NameRStar:
		if slot.phase != readWait || a.Value != st.cur {
			return nil, false
		}
		st.pend[c] = pendSlot{phase: readDone, val: st.cur}
		return st, true
	case NameWStar:
		if slot.phase != writeWait || a.Value != slot.val {
			return nil, false
		}
		st.cur = slot.val
		st.pend[c] = pendSlot{phase: writeDone, val: slot.val}
		return st, true
	case NameRFinish:
		if slot.phase != readDone || a.Value != slot.val {
			return nil, false
		}
		st.pend[c] = pendSlot{}
		return st, true
	case NameWFinish:
		if slot.phase != writeDone {
			return nil, false
		}
		st.pend[c] = pendSlot{}
		return st, true
	}
	return nil, false
}

// Enabled implements Automaton.
func (r *RegisterAutomaton) Enabled(s State) []Action {
	st, ok := s.(regState)
	if !ok {
		return nil
	}
	var out []Action
	for _, c := range r.channels {
		switch st.pend[c].phase {
		case readWait:
			out = append(out, RStar(c, st.cur))
		case readDone:
			out = append(out, RFinish(c, st.pend[c].val))
		case writeWait:
			out = append(out, WStar(c, st.pend[c].val))
		case writeDone:
			out = append(out, WFinish(c))
		}
	}
	return out
}

// userState is a UserAutomaton state.
type userState struct {
	next    int  // index into the script
	waiting bool // a request is outstanding
}

// UserOp is one scripted operation for a UserAutomaton.
type UserOp struct {
	// IsWrite selects W_start(Value) versus R_start.
	IsWrite bool
	// Value is the value to write (writes only).
	Value string
}

// UserAutomaton is a sequential environment process: it issues its
// scripted operations on one channel, each after the previous one's
// acknowledgment — so the input it generates is always input-correct.
type UserAutomaton struct {
	name    string
	channel int
	script  []UserOp
}

var _ Automaton = (*UserAutomaton)(nil)

// NewUserAutomaton builds a user issuing script on the given channel.
func NewUserAutomaton(name string, channel int, script []UserOp) *UserAutomaton {
	return &UserAutomaton{name: name, channel: channel, script: script}
}

// Name implements Automaton.
func (u *UserAutomaton) Name() string { return u.name }

// Sig implements Automaton: the user's outputs are the register's inputs
// and vice versa, restricted to its own channel.
func (u *UserAutomaton) Sig() Signature {
	return func(a Action) Class {
		if a.Channel != u.channel {
			return NotInSignature
		}
		switch a.Name {
		case NameRStart, NameWStart:
			return Output
		case NameRFinish, NameWFinish:
			return Input
		default:
			return NotInSignature
		}
	}
}

// Initial implements Automaton.
func (u *UserAutomaton) Initial() State { return userState{} }

// Step implements Automaton.
func (u *UserAutomaton) Step(s State, a Action) (State, bool) {
	st, ok := s.(userState)
	if !ok {
		return nil, false
	}
	switch u.Sig()(a) {
	case Input: // an acknowledgment
		if st.waiting {
			st.waiting = false
			st.next++
		}
		return st, true // always accept inputs
	case Output: // one of our requests
		if st.waiting || st.next >= len(u.script) {
			return nil, false
		}
		op := u.script[st.next]
		want := RStart(u.channel)
		if op.IsWrite {
			want = WStart(u.channel, op.Value)
		}
		if a != want {
			return nil, false
		}
		st.waiting = true
		return st, true
	}
	return nil, false
}

// Enabled implements Automaton.
func (u *UserAutomaton) Enabled(s State) []Action {
	st, ok := s.(userState)
	if !ok || st.waiting || st.next >= len(u.script) {
		return nil
	}
	op := u.script[st.next]
	if op.IsWrite {
		return []Action{WStart(u.channel, op.Value)}
	}
	return []Action{RStart(u.channel)}
}

// FilterRegisterInterface keeps only the register-interface events
// (requests and acknowledgments) of a schedule, dropping *-actions. In a
// closed composition (register plus users) every action is internal to the
// composition, so "the register's external schedule" is recovered by
// filtering the full schedule down to the interface actions.
func FilterRegisterInterface(sched []Action) []Action {
	var out []Action
	for _, a := range sched {
		switch a.Name {
		case NameRStart, NameWStart, NameRFinish, NameWFinish:
			out = append(out, a)
		}
	}
	return out
}

// ScheduleToHistory converts an external register schedule (R_start,
// W_start, R_finish, W_finish actions) into a history.History for the
// checkers, assigning sequence numbers by position and operation IDs by
// matching order per channel.
func ScheduleToHistory(sched []Action) (history.History[string], error) {
	var h history.History[string]
	type pending struct {
		op     int
		isRead bool
	}
	open := make(map[int]pending) // channel → open request
	nextOp := 0
	for i, a := range sched {
		e := history.Event[string]{Seq: int64(i + 1), Proc: history.ProcID(a.Channel), Value: a.Value}
		switch a.Name {
		case NameRStart, NameWStart:
			if _, dup := open[a.Channel]; dup {
				return h, fmt.Errorf("ioa: schedule not input-correct at %v", a)
			}
			e.Op = nextOp
			open[a.Channel] = pending{op: nextOp, isRead: a.Name == NameRStart}
			nextOp++
			if a.Name == NameRStart {
				e.Kind = history.InvokeRead
			} else {
				e.Kind = history.InvokeWrite
			}
		case NameRFinish, NameWFinish:
			p, ok := open[a.Channel]
			if !ok {
				return h, fmt.Errorf("ioa: acknowledgment %v with no open request", a)
			}
			if p.isRead != (a.Name == NameRFinish) {
				return h, fmt.Errorf("ioa: acknowledgment %v does not match the open request's kind", a)
			}
			e.Op = p.op
			delete(open, a.Channel)
			if a.Name == NameRFinish {
				e.Kind = history.RespondRead
			} else {
				e.Kind = history.RespondWrite
			}
		case NameRStar, NameWStar:
			return h, fmt.Errorf("ioa: internal action %v in an external schedule", a)
		default:
			return h, fmt.Errorf("ioa: unknown action %v", a)
		}
		h.Events = append(h.Events, e)
	}
	return h, nil
}
