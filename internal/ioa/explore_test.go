package ioa

import (
	"testing"

	"repro/internal/atomicity"
)

// closeBloom builds a closed Bloom system with the given user scripts.
func closeBloom(t *testing.T, n int, v0 string, writerScripts [2][]UserOp, readerScripts [][]UserOp) *Composition {
	t.Helper()
	sys, ch, err := NewBloomSystem(n, v0)
	if err != nil {
		t.Fatal(err)
	}
	comps := append([]Automaton(nil), sys.Components()...)
	for i := 0; i < 2; i++ {
		if len(writerScripts[i]) > 0 {
			comps = append(comps, NewUserAutomaton("U-Wr", ch.SimWriterChan(i), writerScripts[i]))
		}
	}
	for j, script := range readerScripts {
		if len(script) > 0 {
			comps = append(comps, NewUserAutomaton("U-Rd", ch.SimReaderChan(j+1), script))
		}
	}
	return Compose("closed", comps...)
}

// checkAtomicTerminal converts a terminal execution's simulated-register
// events to a history and checks linearizability.
func checkAtomicTerminal(t *testing.T, exec *Execution, v0 string) bool {
	t.Helper()
	var sim []Action
	for _, s := range exec.Steps {
		if s.Action.Channel >= 100 {
			sim = append(sim, s.Action)
		}
	}
	h, err := ScheduleToHistory(sim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := atomicity.CheckHistory(&h, v0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Linearizable
}

// TestExploreAllTwoWriters exhaustively verifies, at full action
// granularity in the I/O-automaton model, every execution of two
// overlapping writes — the schedule space in which impotent writes and
// prefinishing arise.
func TestExploreAllTwoWriters(t *testing.T) {
	comp := closeBloom(t, 1, "v0",
		[2][]UserOp{
			{{IsWrite: true, Value: "a"}},
			{{IsWrite: true, Value: "b"}},
		},
		[][]UserOp{nil},
	)
	n, err := ExploreAll(comp, 64, func(exec *Execution) error {
		if !checkAtomicTerminal(t, exec, "v0") {
			t.Fatalf("non-atomic execution:\n%v", exec.Schedule())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential 8-action chains: C(16,8) = 12870 interleavings.
	if n != 12870 {
		t.Fatalf("explored %d executions, want 12870", n)
	}
}

// TestExploreAllWriterAndReader exhaustively verifies one write
// overlapping one read, at full action granularity.
func TestExploreAllWriterAndReader(t *testing.T) {
	comp := closeBloom(t, 1, "v0",
		[2][]UserOp{
			{{IsWrite: true, Value: "a"}},
			nil,
		},
		[][]UserOp{{{}}},
	)
	reads := map[string]int{}
	n, err := ExploreAll(comp, 64, func(exec *Execution) error {
		if !checkAtomicTerminal(t, exec, "v0") {
			t.Fatalf("non-atomic execution:\n%v", exec.Schedule())
		}
		// Tally what the read returned across schedules.
		for _, s := range exec.Steps {
			if s.Action.Channel >= 200 && s.Action.Name == NameRFinish {
				reads[s.Action.Value]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8-action write chain × 11-action read chain: C(19,8) = 75582.
	if n != 75582 {
		t.Fatalf("explored %d executions, want 75582", n)
	}
	if reads["v0"] == 0 || reads["a"] == 0 {
		t.Fatalf("read outcomes unexercised: %v", reads)
	}
	t.Logf("read outcomes across schedules: %v", reads)
}

// TestExploreAllDepthBound confirms the livelock guard trips.
func TestExploreAllDepthBound(t *testing.T) {
	comp := closeBloom(t, 1, "v0",
		[2][]UserOp{{{IsWrite: true, Value: "a"}}, nil},
		[][]UserOp{nil},
	)
	if _, err := ExploreAll(comp, 3, func(*Execution) error { return nil }); err == nil {
		t.Fatal("depth bound did not trip")
	}
}

// TestExploreAllEarlyStop confirms ErrStopExploration is silent.
func TestExploreAllEarlyStop(t *testing.T) {
	comp := closeBloom(t, 1, "v0",
		[2][]UserOp{{{IsWrite: true, Value: "a"}}, {{IsWrite: true, Value: "b"}}},
		[][]UserOp{nil},
	)
	seen := 0
	n, err := ExploreAll(comp, 64, func(*Execution) error {
		seen++
		if seen == 3 {
			return ErrStopExploration
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("visited %d terminals, want 3", n)
	}
}
