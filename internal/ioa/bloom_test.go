package ioa

import (
	"testing"

	"repro/internal/atomicity"
)

func TestTaggedCodec(t *testing.T) {
	for _, v := range []string{"a", "", "with|pipe"} {
		for _, tag := range []uint8{0, 1} {
			got, gotTag := TaggedDecode(TaggedEncode(v, tag))
			if got != v || gotTag != tag {
				t.Errorf("roundtrip (%q,%d) → (%q,%d)", v, tag, got, gotTag)
			}
		}
	}
	if v, tag := TaggedDecode("bare"); v != "bare" || tag != 0 {
		t.Error("missing tag should decode as 0")
	}
}

func TestBloomChannelsLayout(t *testing.T) {
	ch, err := NewBloomChannels(2)
	if err != nil {
		t.Fatal(err)
	}
	// All register channels distinct and within range.
	seen := map[int]bool{}
	for reg := 0; reg < 2; reg++ {
		for _, c := range ch.RegChannels(reg) {
			if c < 0 || c >= MaxRegisterChannels {
				t.Errorf("channel %d out of range", c)
			}
			if seen[c] {
				t.Errorf("channel %d reused", c)
			}
			seen[c] = true
		}
	}
	// Wri writes Regi and reads Reg¬i (Figure 2).
	in := func(c int, reg int) bool {
		for _, x := range ch.RegChannels(reg) {
			if x == c {
				return true
			}
		}
		return false
	}
	if !in(ch.WriteChan(0), 0) || !in(ch.ReadChan(0), 1) {
		t.Error("writer 0 wiring wrong")
	}
	if !in(ch.WriteChan(1), 1) || !in(ch.ReadChan(1), 0) {
		t.Error("writer 1 wiring wrong")
	}
	if _, err := NewBloomChannels(5); err == nil {
		t.Error("too many readers accepted")
	}
}

// simInterface filters a schedule down to the simulated register's ports.
func simInterface(sched []Action) []Action {
	var out []Action
	for _, a := range sched {
		if a.Channel >= 100 {
			out = append(out, a)
		}
	}
	return out
}

// TestBloomSystemFairExecutionsAtomic composes the Figure 2 architecture
// (two spec register automata, two protocol writers, n protocol readers)
// with user automata and checks that every seeded fair execution's
// simulated-register schedule is atomic. This verifies the construction
// inside the paper's own formalism, independently of the goroutine
// implementation in package core.
func TestBloomSystemFairExecutionsAtomic(t *testing.T) {
	sys, ch, err := NewBloomSystem(2, "v0")
	if err != nil {
		t.Fatal(err)
	}
	u0 := NewUserAutomaton("U-Wr0", ch.SimWriterChan(0), []UserOp{
		{IsWrite: true, Value: "a"}, {IsWrite: true, Value: "b"},
	})
	u1 := NewUserAutomaton("U-Wr1", ch.SimWriterChan(1), []UserOp{
		{IsWrite: true, Value: "c"}, {IsWrite: true, Value: "d"},
	})
	ur1 := NewUserAutomaton("U-Rd1", ch.SimReaderChan(1), []UserOp{{}, {}, {}})
	ur2 := NewUserAutomaton("U-Rd2", ch.SimReaderChan(2), []UserOp{{}, {}, {}})
	closed := Compose("closed", append([]Automaton{u0, u1, ur1, ur2}, sys.Components()...)...)

	for seed := int64(0); seed < 40; seed++ {
		exec, err := NewRunner(closed, seed).Run(columnLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(closed.EnabledBy(exec.Final)) != 0 {
			t.Fatalf("seed %d: system did not quiesce", seed)
		}
		ext := simInterface(exec.Schedule())
		// 4 writes + 6 reads, two events each.
		if len(ext) != 20 {
			t.Fatalf("seed %d: %d interface events, want 20: %v", seed, len(ext), ext)
		}
		h, err := ScheduleToHistory(ext)
		if err != nil {
			t.Fatal(err)
		}
		res, err := atomicity.CheckHistory(&h, "v0")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			t.Fatalf("seed %d: Figure 2 composition produced a non-atomic schedule:\n%v", seed, ext)
		}
	}
}

// columnLimit bounds fair executions in tests (well above the ~70 steps a
// full run of the scripted users takes).
const columnLimit = 500

// TestBloomWriterProtocolSequence drives one writer through its protocol
// by hand and checks each phase.
func TestBloomWriterProtocolSequence(t *testing.T) {
	ch, err := NewBloomChannels(1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewBloomWriter(0, ch)
	s := w.Initial()

	if got := w.Enabled(s); len(got) != 0 {
		t.Fatalf("idle writer enabled %v", got)
	}
	s, ok := w.Step(s, WStart(ch.SimWriterChan(0), "x"))
	if !ok {
		t.Fatal("W_start rejected")
	}
	// The writer must now want to read Reg1.
	en := w.Enabled(s)
	if len(en) != 1 || en[0] != RStart(ch.ReadChan(0)) {
		t.Fatalf("enabled = %v, want R_start on the read channel", en)
	}
	s, _ = w.Step(s, en[0])
	// Deliver the read result: Reg1 holds ("v0", tag 1) → tag = 0⊕1 = 1.
	s, ok = w.Step(s, RFinish(ch.ReadChan(0), TaggedEncode("v0", 1)))
	if !ok {
		t.Fatal("R_finish rejected")
	}
	en = w.Enabled(s)
	want := WStart(ch.WriteChan(0), TaggedEncode("x", 1))
	if len(en) != 1 || en[0] != want {
		t.Fatalf("enabled = %v, want %v (tag rule i⊕t')", en, want)
	}
	s, _ = w.Step(s, en[0])
	s, _ = w.Step(s, WFinish(ch.WriteChan(0)))
	en = w.Enabled(s)
	if len(en) != 1 || en[0] != WFinish(ch.SimWriterChan(0)) {
		t.Fatalf("enabled = %v, want the simulated acknowledgment", en)
	}
	s, _ = w.Step(s, en[0])
	if got := w.Enabled(s); len(got) != 0 {
		t.Fatalf("writer not idle after ack: %v", got)
	}
}

// TestBloomReaderTargetsThirdRead checks the reader's t0⊕t1 dispatch.
func TestBloomReaderTargetsThirdRead(t *testing.T) {
	ch, err := NewBloomChannels(1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewBloomReader(1, ch)
	for _, tc := range []struct {
		t0, t1 uint8
		target int
	}{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		s := r.Initial()
		s, _ = r.Step(s, RStart(ch.SimReaderChan(1)))
		s, _ = r.Step(s, RStart(ch.ReaderChan(0, 1)))
		s, _ = r.Step(s, RFinish(ch.ReaderChan(0, 1), TaggedEncode("p", tc.t0)))
		s, _ = r.Step(s, RStart(ch.ReaderChan(1, 1)))
		s, _ = r.Step(s, RFinish(ch.ReaderChan(1, 1), TaggedEncode("q", tc.t1)))
		en := r.Enabled(s)
		want := RStart(ch.ReaderChan(tc.target, 1))
		if len(en) != 1 || en[0] != want {
			t.Fatalf("tags (%d,%d): enabled %v, want %v", tc.t0, tc.t1, en, want)
		}
	}
}

// TestBloomAutomataInputEnabled samples input-enabledness of the protocol
// automata.
func TestBloomAutomataInputEnabled(t *testing.T) {
	ch, err := NewBloomChannels(1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewBloomWriter(0, ch)
	mid, _ := w.Step(w.Initial(), WStart(ch.SimWriterChan(0), "x"))
	if err := CheckInputEnabled(w, []State{w.Initial(), mid},
		[]Action{
			WStart(ch.SimWriterChan(0), "y"),
			RFinish(ch.ReadChan(0), TaggedEncode("v", 0)),
			WFinish(ch.WriteChan(0)),
		}); err != nil {
		t.Fatal(err)
	}
	r := NewBloomReader(1, ch)
	rmid, _ := r.Step(r.Initial(), RStart(ch.SimReaderChan(1)))
	if err := CheckInputEnabled(r, []State{r.Initial(), rmid},
		[]Action{
			RStart(ch.SimReaderChan(1)),
			RFinish(ch.ReaderChan(0, 1), TaggedEncode("v", 0)),
			RFinish(ch.ReaderChan(1, 1), TaggedEncode("v", 1)),
		}); err != nil {
		t.Fatal(err)
	}
}
