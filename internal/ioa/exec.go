package ioa

import (
	"fmt"
	"math/rand"
)

// ExecStep is one action occurrence in an execution.
type ExecStep struct {
	// Action is the label taken.
	Action Action
	// Class is the action's class in the executing (composed) automaton.
	Class Class
	// Component is the index of the component whose locally controlled
	// action fired (-1 for environment-injected inputs).
	Component int
}

// Execution is an alternating state/action sequence, stored as the start
// state plus steps (the intermediate states are reproducible via Step).
type Execution struct {
	Start CompState
	Steps []ExecStep
	Final CompState
}

// Schedule returns the execution's action sequence.
func (e *Execution) Schedule() []Action {
	out := make([]Action, len(e.Steps))
	for i, s := range e.Steps {
		out[i] = s.Action
	}
	return out
}

// External returns the schedule with internal actions removed.
func (e *Execution) External() []Action {
	var out []Action
	for _, s := range e.Steps {
		if s.Class != Internal {
			out = append(out, s.Action)
		}
	}
	return out
}

// Runner generates fair executions of a composition. Fairness is
// implemented by round-robin polling with randomized choice among a
// component's enabled actions: a component with a continuously enabled
// locally controlled action is scheduled within one round, so every finite
// prefix extends to a fair execution.
type Runner struct {
	comp *Composition
	rng  *rand.Rand
}

// NewRunner returns a runner using a seeded source, so executions are
// reproducible.
func NewRunner(c *Composition, seed int64) *Runner {
	return &Runner{comp: c, rng: rand.New(rand.NewSource(seed))}
}

// Run executes up to maxSteps locally controlled steps from the initial
// state, stopping early when the composition quiesces (no component has an
// enabled action). The execution is fair for its length: components are
// polled round-robin starting from a rotating index.
func (r *Runner) Run(maxSteps int) (*Execution, error) {
	s := r.comp.Initial()
	exec := &Execution{Start: append(CompState(nil), s...)}
	start := 0
	for len(exec.Steps) < maxSteps {
		enabled := r.comp.EnabledBy(s)
		if len(enabled) == 0 {
			break
		}
		// Round-robin: first component at or after `start` with an
		// enabled action.
		chosen := -1
		n := len(r.comp.components)
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if len(enabled[i]) > 0 {
				chosen = i
				break
			}
		}
		start = (chosen + 1) % n
		acts := enabled[chosen]
		a := acts[r.rng.Intn(len(acts))]
		cls, _, err := r.comp.Classify(a)
		if err != nil {
			return nil, err
		}
		next, ok, err := r.comp.Step(s, a)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("ioa: component %d enabled %v but the composition cannot step it", chosen, a)
		}
		exec.Steps = append(exec.Steps, ExecStep{Action: a, Class: cls, Component: chosen})
		s = next
	}
	exec.Final = s
	return exec, nil
}

// Inject applies an environment input action to the state (for driving
// open systems in tests).
func (r *Runner) Inject(e *Execution, a Action) error {
	cls, _, err := r.comp.Classify(a)
	if err != nil {
		return err
	}
	if cls != Input {
		return fmt.Errorf("ioa: %v is not an input of the composition (class %v)", a, cls)
	}
	s := e.Final
	if s == nil {
		s = r.comp.Initial()
	}
	next, ok, err := r.comp.Step(s, a)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("ioa: composition rejected input %v (not input-enabled)", a)
	}
	e.Steps = append(e.Steps, ExecStep{Action: a, Class: Input, Component: -1})
	e.Final = next
	return nil
}

// Resume continues a paused execution for up to maxSteps more locally
// controlled steps (used interleaved with Inject).
func (r *Runner) Resume(e *Execution, maxSteps int) error {
	s := e.Final
	if s == nil {
		s = r.comp.Initial()
		e.Start = append(CompState(nil), s...)
	}
	for k := 0; k < maxSteps; k++ {
		enabled := r.comp.EnabledBy(s)
		if len(enabled) == 0 {
			break
		}
		var candidates []int
		for i := range r.comp.components {
			if len(enabled[i]) > 0 {
				candidates = append(candidates, i)
			}
		}
		i := candidates[r.rng.Intn(len(candidates))]
		acts := enabled[i]
		a := acts[r.rng.Intn(len(acts))]
		cls, _, err := r.comp.Classify(a)
		if err != nil {
			return err
		}
		next, ok, err := r.comp.Step(s, a)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("ioa: component %d enabled %v but the composition cannot step it", i, a)
		}
		e.Steps = append(e.Steps, ExecStep{Action: a, Class: cls, Component: i})
		s = next
	}
	e.Final = s
	return nil
}
