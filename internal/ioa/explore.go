package ioa

import (
	"errors"
	"fmt"
)

// ErrStopExploration ends an exploration early without error.
var ErrStopExploration = errors.New("ioa: stop exploration")

// ExploreAll enumerates every execution of a closed composition: from each
// state it branches over every enabled locally controlled action of every
// component, until the system quiesces (a terminal execution) or maxDepth
// actions have been taken (an error: the bound is meant to be slack, so
// hitting it indicates a livelock or an undersized bound).
//
// The visitor receives each terminal execution. Unlike the step machines
// in package sched, this explores at the full action granularity of the
// I/O-automaton model — requests, internal *-actions, and acknowledgments
// each interleave separately — so even tiny configurations produce tens of
// thousands of schedules; size accordingly.
func ExploreAll(c *Composition, maxDepth int, visit func(*Execution) error) (int64, error) {
	var count int64
	var steps []ExecStep
	initial := c.Initial()

	var dfs func(s CompState, depth int) error
	dfs = func(s CompState, depth int) error {
		enabled := c.EnabledBy(s)
		if len(enabled) == 0 {
			count++
			exec := &Execution{
				Start: append(CompState(nil), initial...),
				Steps: append([]ExecStep(nil), steps...),
				Final: append(CompState(nil), s...),
			}
			return visit(exec)
		}
		if depth >= maxDepth {
			return fmt.Errorf("ioa: exploration exceeded depth %d without quiescing", maxDepth)
		}
		for i := 0; i < len(c.components); i++ {
			for _, a := range enabled[i] {
				cls, _, err := c.Classify(a)
				if err != nil {
					return err
				}
				next, ok, err := c.Step(s, a)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("ioa: component %d enabled %v but the composition cannot step it", i, a)
				}
				steps = append(steps, ExecStep{Action: a, Class: cls, Component: i})
				err = dfs(next, depth+1)
				steps = steps[:len(steps)-1]
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := dfs(initial, 0)
	if errors.Is(err, ErrStopExploration) {
		err = nil
	}
	return count, err
}
