package ioa

import (
	"testing"

	"repro/internal/atomicity"
)

func mustRegister(t *testing.T, name string, chans []int, v0 string) *RegisterAutomaton {
	t.Helper()
	r, err := NewRegisterAutomaton(name, chans, v0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestActionString(t *testing.T) {
	if got := WStart(2, "a").String(); got != "W_start^2(a)" {
		t.Errorf("String = %q", got)
	}
	if got := WFinish(1).String(); got != "W_finish^1" {
		t.Errorf("String = %q", got)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		NotInSignature: "not-in-signature",
		Input:          "input",
		Output:         "output",
		Internal:       "internal",
		Class(9):       "Class(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestRegisterSignature(t *testing.T) {
	sig := RegisterSignature([]int{1, 2})
	cases := []struct {
		a    Action
		want Class
	}{
		{RStart(1), Input},
		{WStart(2, "v"), Input},
		{RFinish(1, "v"), Output},
		{WFinish(2), Output},
		{RStar(1, "v"), Internal},
		{WStar(2, "v"), Internal},
		{RStart(3), NotInSignature},
		{Action{Name: "bogus", Channel: 1}, NotInSignature},
	}
	for _, c := range cases {
		if got := sig(c.a); got != c.want {
			t.Errorf("sig(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestRegisterAutomatonInputEnabled(t *testing.T) {
	r := mustRegister(t, "Reg", []int{0, 1}, "v0")
	// Probe the initial state and a few states with pending operations.
	states := []State{r.Initial()}
	s, _ := r.Step(r.Initial(), WStart(0, "a"))
	states = append(states, s)
	s2, _ := r.Step(s, RStart(1))
	states = append(states, s2)
	inputs := []Action{RStart(0), RStart(1), WStart(0, "x"), WStart(1, "y")}
	if err := CheckInputEnabled(r, states, inputs); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAutomatonSequentialRun(t *testing.T) {
	r := mustRegister(t, "Reg", []int{0}, "v0")
	s := r.Initial()
	step := func(a Action) {
		t.Helper()
		next, ok := r.Step(s, a)
		if !ok {
			t.Fatalf("action %v rejected in state %v", a, s)
		}
		s = next
	}
	step(WStart(0, "a"))
	step(WStar(0, "a"))
	step(WFinish(0))
	step(RStart(0))
	// The only enabled action must be R*(a).
	enabled := r.Enabled(s)
	if len(enabled) != 1 || enabled[0] != RStar(0, "a") {
		t.Fatalf("enabled = %v, want [R*(a)]", enabled)
	}
	step(RStar(0, "a"))
	step(RFinish(0, "a"))
	if len(r.Enabled(s)) != 0 {
		t.Fatal("register should be quiescent")
	}
}

func TestRegisterAutomatonRejectsWrongStar(t *testing.T) {
	r := mustRegister(t, "Reg", []int{0}, "v0")
	s, _ := r.Step(r.Initial(), RStart(0))
	if _, ok := r.Step(s, RStar(0, "not-current")); ok {
		t.Fatal("R* with a wrong value accepted")
	}
	if _, ok := r.Step(s, RFinish(0, "v0")); ok {
		t.Fatal("R_finish before R* accepted")
	}
}

func TestRegisterAutomatonIgnoresImproperInput(t *testing.T) {
	r := mustRegister(t, "Reg", []int{0}, "v0")
	s, _ := r.Step(r.Initial(), RStart(0))
	// A second request on the same channel is improper; the automaton
	// must accept (input-enabledness) but may ignore it.
	next, ok := r.Step(s, RStart(0))
	if !ok {
		t.Fatal("improper input rejected (not input-enabled)")
	}
	if next != s {
		t.Fatal("improper input changed state")
	}
}

func TestNewRegisterAutomatonValidation(t *testing.T) {
	if _, err := NewRegisterAutomaton("r", []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, "v"); err == nil {
		t.Error("too many channels accepted")
	}
	if _, err := NewRegisterAutomaton("r", []int{MaxRegisterChannels}, "v"); err == nil {
		t.Error("out-of-range channel accepted")
	}
}

func TestComposeClassification(t *testing.T) {
	reg := mustRegister(t, "Reg", []int{0, 1}, "v0")
	u0 := NewUserAutomaton("U0", 0, []UserOp{{IsWrite: true, Value: "a"}})
	comp := Compose("sys", reg, u0)

	// U0's W_start is matched with Reg's input: internal to the system.
	cls, movers, err := comp.Classify(WStart(0, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if cls != Internal || len(movers) != 2 {
		t.Fatalf("W_start^0: class %v movers %v", cls, movers)
	}

	// Channel 1 has no user component: the register's ack is an output.
	cls, _, err = comp.Classify(WFinish(1))
	if err != nil {
		t.Fatal(err)
	}
	if cls != Output {
		t.Fatalf("W_finish^1 classified %v, want output", cls)
	}

	// The register's *-action stays internal.
	cls, _, err = comp.Classify(WStar(0, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if cls != Internal {
		t.Fatalf("W*^0 classified %v, want internal", cls)
	}

	// Foreign actions are not in the signature.
	cls, movers, err = comp.Classify(Action{Name: "bogus", Channel: 9})
	if err != nil || cls != NotInSignature || movers != nil {
		t.Fatalf("bogus action: %v %v %v", cls, movers, err)
	}
}

func TestComposeRejectsSharedOutputs(t *testing.T) {
	u1 := NewUserAutomaton("U", 0, []UserOp{{IsWrite: true, Value: "a"}})
	u2 := NewUserAutomaton("U'", 0, []UserOp{{IsWrite: true, Value: "a"}})
	comp := Compose("bad", u1, u2)
	if _, _, err := comp.Classify(WStart(0, "a")); err == nil {
		t.Fatal("two components sharing an output must be rejected")
	}
}

// TestFairExecutionsAreAtomic is Figure 1 + Section 3 in executable form:
// users compose with the canonical register automaton; every fair
// execution's external schedule, checked by the generic linearizability
// checker, is atomic.
func TestFairExecutionsAreAtomic(t *testing.T) {
	reg := mustRegister(t, "Reg", []int{0, 1, 2}, "v0")
	u0 := NewUserAutomaton("W0", 0, []UserOp{
		{IsWrite: true, Value: "a"}, {IsWrite: true, Value: "b"}, {},
	})
	u1 := NewUserAutomaton("W1", 1, []UserOp{
		{IsWrite: true, Value: "c"}, {}, {IsWrite: true, Value: "d"},
	})
	u2 := NewUserAutomaton("R", 2, []UserOp{{}, {}, {}, {}})
	comp := Compose("sys", reg, u0, u1, u2)

	for seed := int64(0); seed < 25; seed++ {
		exec, err := NewRunner(comp, seed).Run(200)
		if err != nil {
			t.Fatal(err)
		}
		if len(comp.EnabledBy(exec.Final)) != 0 {
			t.Fatal("execution did not quiesce")
		}
		// The composition is closed (register plus users), so every
		// action is internal to it; the register's interface events
		// are recovered by filtering.
		if got := exec.External(); len(got) != 0 {
			t.Fatalf("closed system has external actions: %v", got)
		}
		ext := FilterRegisterInterface(exec.Schedule())
		h, err := ScheduleToHistory(ext)
		if err != nil {
			t.Fatal(err)
		}
		res, err := atomicity.CheckHistory(&h, "v0")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			t.Fatalf("seed %d: fair execution not atomic:\n%v", seed, ext)
		}
		// 10 operations, 2 events each.
		if len(ext) != 20 {
			t.Fatalf("seed %d: external schedule has %d events, want 20", seed, len(ext))
		}
		// The full schedule additionally contains one *-action per op.
		if got := len(exec.Schedule()); got != 30 {
			t.Fatalf("seed %d: schedule has %d events, want 30", seed, got)
		}
	}
}

func TestRunnerDeterministicPerSeed(t *testing.T) {
	reg := mustRegister(t, "Reg", []int{0}, "v0")
	u := NewUserAutomaton("U", 0, []UserOp{{IsWrite: true, Value: "a"}, {}})
	mk := func() []Action {
		exec, err := NewRunner(Compose("sys", reg, u), 99).Run(100)
		if err != nil {
			t.Fatal(err)
		}
		return exec.Schedule()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("same seed diverged")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestInjectAndResume(t *testing.T) {
	// Drive the register as an open system: inject requests by hand.
	reg := mustRegister(t, "Reg", []int{0}, "v0")
	comp := Compose("sys", reg)
	r := NewRunner(comp, 1)
	exec := &Execution{}
	if err := r.Inject(exec, WStart(0, "a")); err != nil {
		t.Fatal(err)
	}
	if err := r.Resume(exec, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Inject(exec, RStart(0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Resume(exec, 10); err != nil {
		t.Fatal(err)
	}
	ext := exec.External()
	want := []Action{WStart(0, "a"), WFinish(0), RStart(0), RFinish(0, "a")}
	if len(ext) != len(want) {
		t.Fatalf("external = %v", ext)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("external[%d] = %v, want %v", i, ext[i], want[i])
		}
	}
	// Injecting a non-input action must fail.
	if err := r.Inject(exec, WFinish(0)); err == nil {
		t.Fatal("injecting an output action accepted")
	}
}

func TestScheduleToHistoryRejectsBadSchedules(t *testing.T) {
	if _, err := ScheduleToHistory([]Action{RFinish(0, "v")}); err == nil {
		t.Error("orphan ack accepted")
	}
	// Kind mismatch (regression: found by FuzzScheduleToHistory): a read
	// request must not be closed by a write acknowledgment.
	if _, err := ScheduleToHistory([]Action{RStart(0), WFinish(0)}); err == nil {
		t.Error("R_start closed by W_finish accepted")
	}
	if _, err := ScheduleToHistory([]Action{WStart(0, "v"), RFinish(0, "v")}); err == nil {
		t.Error("W_start closed by R_finish accepted")
	}
	if _, err := ScheduleToHistory([]Action{RStart(0), RStart(0)}); err == nil {
		t.Error("double request accepted")
	}
	if _, err := ScheduleToHistory([]Action{RStar(0, "v")}); err == nil {
		t.Error("internal action accepted in external schedule")
	}
	if _, err := ScheduleToHistory([]Action{{Name: "bogus"}}); err == nil {
		t.Error("unknown action accepted")
	}
}
