// Package ioa implements the simplified Lynch–Tuttle I/O automaton model
// of Section 2 of Bloom (PODC 1987).
//
// A process is an automaton with (possibly infinitely many) states and
// transitions labeled by actions. The automaton's alphabet is split into
// Input, Output, and Internal sub-alphabets; Input and Output actions are
// signals the automaton can accept and produce, Internal actions are
// invisible to other processes. An I/O automaton must be input-enabled:
// from every state there is a transition for every input action.
//
// Automata compose: if components have disjoint output and internal
// alphabets, the composition steps one component at a time, except that an
// action that is one component's output and another's input moves both and
// becomes internal to the composition (Section 2's composition rule).
//
// Executions alternate states and actions; a fair execution eventually
// lets every component that wants to take a locally controlled step take
// one. A schedule is an execution's action sequence; an external schedule
// omits internal actions. Protocol correctness is a property of the set of
// external fair schedules — for registers, the atomicity property checked
// by packages spec and atomicity.
package ioa

import (
	"fmt"
	"strings"
)

// Action is a transition label. Actions are compared by value: two actions
// are the same signal iff all fields are equal. Channel identifies the
// point-to-point channel the signal travels on (0 if none), and Value an
// attached value (empty if none); both are part of the action's identity,
// so W_start("a") and W_start("b") are distinct members of the alphabet,
// as in the paper.
type Action struct {
	// Name is the action's label, e.g. "W_start".
	Name string
	// Channel names the channel convention the action belongs to.
	Channel int
	// Value is the action's attached value, encoded as a string.
	Value string
}

// String renders the action, e.g. `W_start^2(a)`.
func (a Action) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	fmt.Fprintf(&b, "^%d", a.Channel)
	if a.Value != "" {
		fmt.Fprintf(&b, "(%s)", a.Value)
	}
	return b.String()
}

// Class classifies an action within an automaton's signature.
type Class uint8

// Action classes.
const (
	// NotInSignature marks actions foreign to the automaton.
	NotInSignature Class = iota
	// Input actions can be accepted at any time (input-enabledness).
	Input
	// Output actions are produced by the automaton.
	Output
	// Internal actions are invisible outside the automaton.
	Internal
)

// String names the class.
func (c Class) String() string {
	switch c {
	case NotInSignature:
		return "not-in-signature"
	case Input:
		return "input"
	case Output:
		return "output"
	case Internal:
		return "internal"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Signature assigns a class to every action. Alphabets may be infinite
// (e.g. W_start(v) for every v in an unbounded value set), so the
// signature is a function, not a set.
type Signature func(Action) Class

// State is an automaton state. Implementations should use comparable
// values so states can be deduplicated.
type State any

// Automaton is the simplified Lynch–Tuttle I/O automaton.
type Automaton interface {
	// Name identifies the automaton in diagnostics.
	Name() string
	// Sig returns the automaton's signature.
	Sig() Signature
	// Initial returns the start state.
	Initial() State
	// Step performs action a from state s, returning the successor
	// state. ok is false if the action is not enabled in s (never for
	// input actions of an input-enabled automaton: they must always be
	// accepted, if only by ignoring them).
	Step(s State, a Action) (next State, ok bool)
	// Enabled returns the locally controlled (output and internal)
	// actions enabled in s. The result may be empty (quiescence).
	Enabled(s State) []Action
}

// CheckInputEnabled probes that the automaton accepts each of the given
// input actions in each of the given states. It is a sampling check (the
// state space may be infinite), used by tests.
func CheckInputEnabled(a Automaton, states []State, inputs []Action) error {
	sig := a.Sig()
	for _, in := range inputs {
		if sig(in) != Input {
			return fmt.Errorf("ioa: %v is not an input action of %s", in, a.Name())
		}
		for _, s := range states {
			if _, ok := a.Step(s, in); !ok {
				return fmt.Errorf("ioa: automaton %s rejects input %v in state %v (not input-enabled)", a.Name(), in, s)
			}
		}
	}
	return nil
}

// Composition composes automata per Section 2. The components must have
// pairwise disjoint output alphabets and internal alphabets disjoint from
// everyone else's alphabets; Compose verifies this on the actions it can
// see (signatures are functions, so the check happens lazily per action
// during execution as well).
type Composition struct {
	name       string
	components []Automaton
}

// Compose builds the composition of the given automata.
func Compose(name string, components ...Automaton) *Composition {
	return &Composition{name: name, components: components}
}

// Name returns the composition's name.
func (c *Composition) Name() string { return c.name }

// Components returns the component automata.
func (c *Composition) Components() []Automaton { return c.components }

// CompState is a composition state: one state per component.
type CompState []State

// Initial returns the tuple of component initial states.
func (c *Composition) Initial() CompState {
	s := make(CompState, len(c.components))
	for i, a := range c.components {
		s[i] = a.Initial()
	}
	return s
}

// Classify returns the action's class in the composition and the indices
// of the components that participate in it. Per the paper: if one
// component outputs a and another inputs it, a is internal to the
// composition; otherwise a keeps the classification its single owner
// gives it.
func (c *Composition) Classify(a Action) (Class, []int, error) {
	var outputs, inputs, internals []int
	for i, comp := range c.components {
		switch comp.Sig()(a) {
		case Output:
			outputs = append(outputs, i)
		case Input:
			inputs = append(inputs, i)
		case Internal:
			internals = append(internals, i)
		}
	}
	if len(outputs) > 1 {
		return NotInSignature, nil, fmt.Errorf("ioa: action %v is an output of %d components; outputs must be disjoint", a, len(outputs))
	}
	if len(internals) > 0 {
		if len(outputs)+len(inputs) > 0 || len(internals) > 1 {
			return NotInSignature, nil, fmt.Errorf("ioa: internal action %v shared by multiple components", a)
		}
		return Internal, internals, nil
	}
	switch {
	case len(outputs) == 1 && len(inputs) > 0:
		// Matched output/input: both move; internal to the composition.
		return Internal, append(outputs, inputs...), nil
	case len(outputs) == 1:
		return Output, outputs, nil
	case len(inputs) > 0:
		return Input, inputs, nil
	default:
		return NotInSignature, nil, nil
	}
}

// Step performs action a from composition state s.
func (c *Composition) Step(s CompState, a Action) (CompState, bool, error) {
	_, movers, err := c.Classify(a)
	if err != nil {
		return nil, false, err
	}
	if len(movers) == 0 {
		return nil, false, nil
	}
	next := make(CompState, len(s))
	copy(next, s)
	for _, i := range movers {
		n, ok := c.components[i].Step(s[i], a)
		if !ok {
			return nil, false, nil
		}
		next[i] = n
	}
	return next, true, nil
}

// EnabledBy returns, for each component index, the locally controlled
// actions that component enables in s.
func (c *Composition) EnabledBy(s CompState) map[int][]Action {
	out := make(map[int][]Action)
	for i, comp := range c.components {
		if acts := comp.Enabled(s[i]); len(acts) > 0 {
			out[i] = acts
		}
	}
	return out
}
