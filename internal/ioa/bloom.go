package ioa

import (
	"fmt"
	"strings"
)

// This file encodes Bloom's construction in the formal model: the writer
// and reader protocols of Section 5 as I/O automata, wired per Figure 2 to
// two RegisterAutomaton instances playing the "real" 1-writer atomic
// registers. Composing them with user automata yields a closed system
// whose simulated-register schedules can be extracted and checked — the
// paper's architecture realized inside its own formalism, independent of
// the production implementation in package core.

// TaggedEncode encodes a (value, tag) pair as a register-automaton value
// string.
func TaggedEncode(v string, tag uint8) string { return fmt.Sprintf("%s|%d", v, tag) }

// TaggedDecode splits a register-automaton value string into value and
// tag. Missing tags decode as tag 0.
func TaggedDecode(s string) (string, uint8) {
	i := strings.LastIndexByte(s, '|')
	if i < 0 {
		return s, 0
	}
	var tag uint8
	if s[i+1:] == "1" {
		tag = 1
	}
	return s[:i], tag
}

// BloomChannels fixes the channel layout of the Figure 2 composition for
// n readers (n ≤ 2, limited by MaxRegisterChannels):
//
//	Reg0 serves: Wr0's write channel, Wr1's read channel, readers.
//	Reg1 serves: Wr1's write channel, Wr0's read channel, readers.
//	Simulated-register ports (to the environment): 100+i for writer i,
//	200+j for reader j.
type BloomChannels struct {
	n int
}

// NewBloomChannels lays out channels for n readers.
func NewBloomChannels(n int) (BloomChannels, error) {
	// Reg1's last channel is 3+2n; RegisterAutomaton needs it < MaxRegisterChannels.
	if n < 0 || 3+2*n >= MaxRegisterChannels {
		return BloomChannels{}, fmt.Errorf("ioa: %d readers exceed the channel space", n)
	}
	return BloomChannels{n: n}, nil
}

// WriteChan returns writer i's channel to its own register Regi.
func (c BloomChannels) WriteChan(i int) int {
	if i == 0 {
		return 0
	}
	return 2 + c.n
}

// ReadChan returns writer i's read channel to Reg¬i.
func (c BloomChannels) ReadChan(i int) int {
	if i == 0 {
		return 3 + c.n // on Reg1
	}
	return 1 // on Reg0
}

// ReaderChan returns reader j's (1-based) channel to register reg.
func (c BloomChannels) ReaderChan(reg, j int) int {
	if reg == 0 {
		return 1 + j
	}
	return 3 + c.n + j
}

// RegChannels returns all channels register reg serves.
func (c BloomChannels) RegChannels(reg int) []int {
	var out []int
	if reg == 0 {
		out = append(out, c.WriteChan(0), c.ReadChan(1))
	} else {
		out = append(out, c.WriteChan(1), c.ReadChan(0))
	}
	for j := 1; j <= c.n; j++ {
		out = append(out, c.ReaderChan(reg, j))
	}
	return out
}

// SimWriterChan returns writer i's simulated-register port.
func (c BloomChannels) SimWriterChan(i int) int { return 100 + i }

// SimReaderChan returns reader j's simulated-register port.
func (c BloomChannels) SimReaderChan(j int) int { return 200 + j }

// bwPhase is a BloomWriter protocol phase.
type bwPhase uint8

const (
	bwIdle      bwPhase = iota
	bwWantRead          // must issue R_start on the read channel
	bwReading           // waiting for R_finish
	bwWantWrite         // must issue W_start on the write channel
	bwWriting           // waiting for W_finish
	bwWantAck           // must acknowledge on the simulated port
)

// bwState is a BloomWriter state (comparable).
type bwState struct {
	phase bwPhase
	val   string // value being written
	tag   uint8  // tag chosen after the real read
}

// BloomWriter is writer Wri of Section 5 as an I/O automaton.
type BloomWriter struct {
	i  int
	ch BloomChannels
}

var _ Automaton = (*BloomWriter)(nil)

// NewBloomWriter builds writer i (0 or 1) over the channel layout.
func NewBloomWriter(i int, ch BloomChannels) *BloomWriter {
	return &BloomWriter{i: i, ch: ch}
}

// Name implements Automaton.
func (w *BloomWriter) Name() string { return fmt.Sprintf("Wr%d", w.i) }

// Sig implements Automaton.
func (w *BloomWriter) Sig() Signature {
	sim, rd, wr := w.ch.SimWriterChan(w.i), w.ch.ReadChan(w.i), w.ch.WriteChan(w.i)
	return func(a Action) Class {
		switch a.Channel {
		case sim:
			switch a.Name {
			case NameWStart:
				return Input
			case NameWFinish:
				return Output
			}
		case rd:
			switch a.Name {
			case NameRStart:
				return Output
			case NameRFinish:
				return Input
			}
		case wr:
			switch a.Name {
			case NameWStart:
				return Output
			case NameWFinish:
				return Input
			}
		}
		return NotInSignature
	}
}

// Initial implements Automaton.
func (w *BloomWriter) Initial() State { return bwState{} }

// Step implements Automaton.
func (w *BloomWriter) Step(s State, a Action) (State, bool) {
	st, ok := s.(bwState)
	if !ok {
		return nil, false
	}
	sim, rd, wr := w.ch.SimWriterChan(w.i), w.ch.ReadChan(w.i), w.ch.WriteChan(w.i)
	switch {
	case a.Channel == sim && a.Name == NameWStart:
		if st.phase != bwIdle {
			return st, true // improper input: ignore (input-enabled)
		}
		return bwState{phase: bwWantRead, val: a.Value}, true
	case a.Channel == rd && a.Name == NameRStart:
		if st.phase != bwWantRead {
			return nil, false
		}
		st.phase = bwReading
		return st, true
	case a.Channel == rd && a.Name == NameRFinish:
		if st.phase != bwReading {
			return st, true // stale ack: ignore
		}
		_, t := TaggedDecode(a.Value)
		st.tag = uint8(w.i) ^ t
		st.phase = bwWantWrite
		return st, true
	case a.Channel == wr && a.Name == NameWStart:
		if st.phase != bwWantWrite || a.Value != TaggedEncode(st.val, st.tag) {
			return nil, false
		}
		st.phase = bwWriting
		return st, true
	case a.Channel == wr && a.Name == NameWFinish:
		if st.phase != bwWriting {
			return st, true
		}
		st.phase = bwWantAck
		return st, true
	case a.Channel == sim && a.Name == NameWFinish:
		if st.phase != bwWantAck {
			return nil, false
		}
		return bwState{}, true
	}
	return nil, false
}

// Enabled implements Automaton.
func (w *BloomWriter) Enabled(s State) []Action {
	st, ok := s.(bwState)
	if !ok {
		return nil
	}
	switch st.phase {
	case bwWantRead:
		return []Action{RStart(w.ch.ReadChan(w.i))}
	case bwWantWrite:
		return []Action{WStart(w.ch.WriteChan(w.i), TaggedEncode(st.val, st.tag))}
	case bwWantAck:
		return []Action{WFinish(w.ch.SimWriterChan(w.i))}
	}
	return nil
}

// brPhase is a BloomReader protocol phase.
type brPhase uint8

const (
	brIdle  brPhase = iota
	brWant0         // must issue the read of Reg0
	brRead0
	brWant1 // must issue the read of Reg1
	brRead1
	brWant2 // must issue the final read of Reg(t0⊕t1)
	brRead2
	brWantAck
)

// brState is a BloomReader state (comparable).
type brState struct {
	phase  brPhase
	t0, t1 uint8
	ret    string
}

// BloomReader is reader Rdj of Section 5 as an I/O automaton.
type BloomReader struct {
	j  int // 1-based
	ch BloomChannels
}

var _ Automaton = (*BloomReader)(nil)

// NewBloomReader builds reader j (1-based) over the channel layout.
func NewBloomReader(j int, ch BloomChannels) *BloomReader {
	return &BloomReader{j: j, ch: ch}
}

// Name implements Automaton.
func (r *BloomReader) Name() string { return fmt.Sprintf("Rd%d", r.j) }

// regChan returns the channel for this reader's access to register reg.
func (r *BloomReader) regChan(reg int) int { return r.ch.ReaderChan(reg, r.j) }

// Sig implements Automaton.
func (r *BloomReader) Sig() Signature {
	sim := r.ch.SimReaderChan(r.j)
	c0, c1 := r.regChan(0), r.regChan(1)
	return func(a Action) Class {
		switch a.Channel {
		case sim:
			switch a.Name {
			case NameRStart:
				return Input
			case NameRFinish:
				return Output
			}
		case c0, c1:
			switch a.Name {
			case NameRStart:
				return Output
			case NameRFinish:
				return Input
			}
		}
		return NotInSignature
	}
}

// Initial implements Automaton.
func (r *BloomReader) Initial() State { return brState{} }

// target returns the register the final read goes to.
func (st brState) target() int { return int(st.t0 ^ st.t1) }

// Step implements Automaton.
func (r *BloomReader) Step(s State, a Action) (State, bool) {
	st, ok := s.(brState)
	if !ok {
		return nil, false
	}
	sim := r.ch.SimReaderChan(r.j)
	switch {
	case a.Channel == sim && a.Name == NameRStart:
		if st.phase != brIdle {
			return st, true
		}
		return brState{phase: brWant0}, true
	case a.Name == NameRStart && a.Channel == r.regChan(0) && st.phase == brWant0:
		st.phase = brRead0
		return st, true
	case a.Name == NameRFinish && a.Channel == r.regChan(0) && st.phase == brRead0:
		_, st.t0 = TaggedDecode(a.Value)
		st.phase = brWant1
		return st, true
	case a.Name == NameRStart && a.Channel == r.regChan(1) && st.phase == brWant1:
		st.phase = brRead1
		return st, true
	case a.Name == NameRFinish && a.Channel == r.regChan(1) && st.phase == brRead1:
		_, st.t1 = TaggedDecode(a.Value)
		st.phase = brWant2
		return st, true
	case a.Name == NameRStart && st.phase == brWant2 && a.Channel == r.regChan(st.target()):
		st.phase = brRead2
		return st, true
	case a.Name == NameRFinish && st.phase == brRead2 && a.Channel == r.regChan(st.target()):
		st.ret, _ = TaggedDecode(a.Value)
		st.phase = brWantAck
		return st, true
	case a.Channel == sim && a.Name == NameRFinish:
		if st.phase != brWantAck || a.Value != st.ret {
			return nil, false
		}
		return brState{}, true
	case a.Name == NameRFinish:
		return st, true // stale/foreign ack on one of our channels: ignore
	}
	return nil, false
}

// Enabled implements Automaton.
func (r *BloomReader) Enabled(s State) []Action {
	st, ok := s.(brState)
	if !ok {
		return nil
	}
	switch st.phase {
	case brWant0:
		return []Action{RStart(r.regChan(0))}
	case brWant1:
		return []Action{RStart(r.regChan(1))}
	case brWant2:
		return []Action{RStart(r.regChan(st.target()))}
	case brWantAck:
		return []Action{RFinish(r.ch.SimReaderChan(r.j), st.ret)}
	}
	return nil
}

// NewBloomSystem wires the Figure 2 architecture for n readers: two real
// register automata (initialized to (v0, tag 0)), two writers, and n
// readers. The returned composition is open at the simulated-register
// ports; compose it further with user automata (or drive it with
// Runner.Inject) to close it.
func NewBloomSystem(n int, v0 string) (*Composition, BloomChannels, error) {
	ch, err := NewBloomChannels(n)
	if err != nil {
		return nil, BloomChannels{}, err
	}
	reg0, err := NewRegisterAutomaton("Reg0", ch.RegChannels(0), TaggedEncode(v0, 0))
	if err != nil {
		return nil, BloomChannels{}, err
	}
	reg1, err := NewRegisterAutomaton("Reg1", ch.RegChannels(1), TaggedEncode(v0, 0))
	if err != nil {
		return nil, BloomChannels{}, err
	}
	comps := []Automaton{reg0, reg1, NewBloomWriter(0, ch), NewBloomWriter(1, ch)}
	for j := 1; j <= n; j++ {
		comps = append(comps, NewBloomReader(j, ch))
	}
	return Compose("BloomSystem", comps...), ch, nil
}
