package ioa

import (
	"testing"
)

// FuzzTaggedCodec checks the tagged-value encoding against arbitrary
// strings (pipes, newlines, empty, unicode): decode(encode(v,t)) must
// round-trip exactly.
func FuzzTaggedCodec(f *testing.F) {
	f.Add("", uint8(0))
	f.Add("plain", uint8(1))
	f.Add("with|pipe", uint8(0))
	f.Add("with\nnewline", uint8(1))
	f.Add("ünïcødé|", uint8(0))
	f.Fuzz(func(t *testing.T, v string, tag uint8) {
		tag &= 1
		got, gotTag := TaggedDecode(TaggedEncode(v, tag))
		if got != v || gotTag != tag {
			t.Fatalf("roundtrip (%q,%d) → (%q,%d)", v, tag, got, gotTag)
		}
	})
}

// FuzzScheduleToHistory feeds arbitrary action sequences to the
// schedule-to-history converter: it must never panic, and whenever it
// succeeds the resulting history must be input-correct with matching
// request/acknowledgment pairs.
func FuzzScheduleToHistory(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, "ab")
	f.Add([]byte{0, 2, 1, 3, 0, 2}, "xy")
	f.Fuzz(func(t *testing.T, kinds []byte, vals string) {
		if len(kinds) > 64 {
			return
		}
		names := []string{NameRStart, NameRFinish, NameWStart, NameWFinish, NameRStar}
		var sched []Action
		for i, k := range kinds {
			name := names[int(k)%len(names)]
			val := ""
			if name != NameRStart && name != NameWFinish && len(vals) > 0 {
				val = string(vals[i%len(vals)])
			}
			sched = append(sched, Action{Name: name, Channel: int(k) % 3, Value: val})
		}
		h, err := ScheduleToHistory(sched)
		if err != nil {
			return // malformed schedules are rejected, not crashed on
		}
		if err := h.InputCorrect(); err != nil {
			t.Fatalf("accepted schedule is not input-correct: %v", err)
		}
		if _, _, err := h.Matching(); err != nil {
			t.Fatalf("accepted schedule does not match: %v", err)
		}
	})
}
