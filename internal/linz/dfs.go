package linz

import (
	"sort"
	"time"
)

// The segment search is the Wing–Gong linearizability DFS in the
// iterative, entry-list formulation used by Lowe and by Porcupine: the
// segment's calls and returns form a doubly-linked list in time order;
// the candidates to linearize next are exactly the calls before the
// first return; linearizing an op "lifts" its two entries out of the
// list, failing forward to the next candidate and backtracking when a
// return is reached with nothing left to try. A memo cache of
// (linearized-set, register-value) states prunes re-exploration after
// backtracking.

// entry is one call or return event in the segment's time-ordered list.
type entry struct {
	prev, next *entry
	// match links a call to its return; nil on returns. "Is a call" is
	// exactly "match != nil".
	match *entry
	op    int
	time  int64
	ret   bool
}

// bestTrackCap bounds the segment size for which the search snapshots its
// deepest partial linearization (the basis of violation highlighting).
// Each new depth record costs a bitset clone; beyond this size the clones
// would dominate, and no timeline would render that many ops anyway.
const bestTrackCap = 4096

type segResult struct {
	verdict Verdict
	states  int64
	// best flags, per segment op, the deepest partial linearization found
	// before declaring violation; nil when untracked or not a violation.
	best []bool
}

// checkSegment searches one quiescent segment. init may be unknown; a
// first read then commits the register to the value it observes (sound:
// it can only make more histories pass, and any accepted history is
// witnessed by a real linearization).
func checkSegment(ops []Op, init Value, deadline time.Time, cacheBytes int) segResult {
	n := len(ops)
	entries := make([]entry, 0, 2*n)
	required := 0
	for i, op := range ops {
		if op.Pending() && op.Kind == Read {
			// A pending read constrains nothing: nobody saw its value.
			continue
		}
		entries = append(entries, entry{op: i, time: op.Inv})
		entries = append(entries, entry{op: i, time: op.Res, ret: true})
		if !op.Pending() {
			required++
		}
	}
	if required == 0 {
		return segResult{verdict: Ok, states: 1}
	}
	// Time order, calls before returns at the same instant: ops that
	// merely touch (A.Res == B.Inv) are concurrent under the strict
	// precedence order, so B must already be a candidate when A's return
	// is reached.
	idx := make([]*entry, len(entries))
	for i := range entries {
		idx[i] = &entries[i]
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if idx[a].time != idx[b].time {
			return idx[a].time < idx[b].time
		}
		return !idx[a].ret && idx[b].ret
	})
	head := &entry{}
	prev := head
	for _, e := range idx {
		prev.next = e
		e.prev = prev
		prev = e
	}
	// Link calls to returns (two entries per surviving op).
	rets := make([]*entry, n)
	for i := range entries {
		if entries[i].ret {
			rets[entries[i].op] = &entries[i]
		}
	}
	for i := range entries {
		if !entries[i].ret {
			entries[i].match = rets[entries[i].op]
		}
	}

	type frame struct {
		e       *entry
		prevVal Value
	}
	var (
		lin       = newBitset(n)
		val       = init
		remaining = required
		stack     = make([]frame, 0, required)
		memo      = newMemo(cacheBytes)
		memoOn    = false // lazily enabled at first backtrack: a straight-line success never reads it
		states    int64
		best      bitset
		bestN     = -1
		track     = n <= bestTrackCap
	)
	ent := head.next
	for {
		if remaining == 0 {
			return segResult{verdict: Ok, states: states}
		}
		states++
		if states&1023 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return segResult{verdict: Undecided, states: states}
		}
		if ent == nil || ent.match == nil {
			// Return entry (or list exhausted): nothing else can
			// linearize here. Backtrack.
			if len(stack) == 0 {
				r := segResult{verdict: Violation, states: states}
				if track && best != nil {
					r.best = make([]bool, n)
					for i := range r.best {
						r.best[i] = best.has(i)
					}
				} else if track {
					r.best = make([]bool, n)
				}
				return r
			}
			memoOn = true
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			val = f.prevVal
			lin.unset(f.e.op)
			if !ops[f.e.op].Pending() {
				remaining++
			}
			unlift(f.e)
			ent = f.e.next
			continue
		}
		op := ops[ent.op]
		nv, legal := step(val, op)
		if legal {
			lin.set(ent.op)
			if memo.visit(lin, nv, memoOn) {
				// Commit: this op linearizes here.
				stack = append(stack, frame{e: ent, prevVal: val})
				val = nv
				if !op.Pending() {
					remaining--
				}
				if track && required-remaining > bestN {
					bestN = required - remaining
					best = lin.clone()
				}
				lift(ent)
				ent = head.next
				continue
			}
			lin.unset(ent.op)
		}
		ent = ent.next
	}
}

// step applies one operation to the register model.
func step(v Value, op Op) (Value, bool) {
	if op.Kind == Write {
		return Value{Known: true, V: op.Val}, true
	}
	if !v.Known {
		return Value{Known: true, V: op.Val}, true
	}
	return v, v.V == op.Val
}

// lift removes an op's call and return entries from the list.
func lift(call *entry) {
	call.prev.next = call.next
	if call.next != nil {
		call.next.prev = call.prev
	}
	ret := call.match
	ret.prev.next = ret.next
	if ret.next != nil {
		ret.next.prev = ret.prev
	}
}

// unlift reinserts what lift removed, in reverse order.
func unlift(call *entry) {
	ret := call.match
	ret.prev.next = ret
	if ret.next != nil {
		ret.next.prev = ret
	}
	call.prev.next = call
	if call.next != nil {
		call.next.prev = call
	}
}

// memo is the visited-state cache: open-addressed on the bitset hash with
// per-bucket chains, byte-budgeted. Over budget it stops remembering —
// the search then degrades to plain DFS under the deadline.
type memo struct {
	m      map[uint64][]memoEnt
	bytes  int
	budget int
}

type memoEnt struct {
	lin bitset
	val Value
}

func newMemo(budget int) *memo {
	return &memo{m: make(map[uint64][]memoEnt), budget: budget}
}

// visit reports whether the state is new. With store=false it only
// consults the cache (the pre-first-backtrack regime, where nothing ever
// re-visits); with store=true new states are remembered, budget allowing.
func (c *memo) visit(lin bitset, val Value, store bool) bool {
	h := lin.hash() ^ (val.V * 0x9e3779b97f4a7c15)
	if val.Known {
		h ^= 0x5851f42d4c957f2d
	}
	for _, e := range c.m[h] {
		if e.val == val && e.lin.equal(lin) {
			return false
		}
	}
	if store && c.bytes < c.budget {
		c.m[h] = append(c.m[h], memoEnt{lin: lin.clone(), val: val})
		c.bytes += len(lin)*8 + 48
	}
	return true
}
