package linz

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Online continuously certifies live traffic: a background goroutine
// drains an obs.Journal on a fixed cadence, cuts each register's stream
// at per-key quiescent points below the journal horizon, and checks each
// window with the partitioned checker. Windows chain: the forced register
// value leaving one window seeds the next (blurring, soundly, when two
// overlapping writes leave it unforced), so the concatenated windows
// certify the same thing one big offline check would.
//
// The checker never pushes back on traffic. If it cannot keep up, the
// uncheckable backlog is shed — counted, and the affected registers'
// carried values blurred — in preference to stalling the journal rings
// into dropping records at random.
//
// An Online may merge several journals (NewOnlineParts): each part's
// registers are namespaced under its prefix, so an m-replica cluster's
// per-server journals plus the quorum client's logical journal all
// certify in one checker. Parts' clocks are never compared — every cut
// decision for a key uses its own part's horizon, which is sound because
// prefixing keeps the parts' key sets disjoint and the partitioned
// checker never relates operations across keys.
type Online struct {
	parts []JournalPart
	o     OnlineOptions

	stop chan struct{}
	done chan struct{}

	// pend buffers drained-but-not-yet-checkable ops per (part, journal
	// key id).
	pend map[pendKey][]Op
	// carry threads each register's forced value across windows, keyed by
	// the prefixed register name.
	carry map[string]Value

	// checkedThrough is, per part, the journal timestamp verification has
	// reached. Atomic: written by whichever goroutine drives Step (Start's
	// loop or a direct caller) and read for the lag gauge.
	checkedThrough []atomic.Int64
	// partOps counts, per part, the effective (Flags == 0) operations
	// drained so far — the exactly-once accounting tests compare it
	// against the number of logical operations a producer performed.
	partOps []atomic.Int64

	mu      sync.Mutex
	started bool
	stopped bool
	first   *Failure
	reports int64
}

// JournalPart is one journal merged into an Online checker. Prefix
// namespaces the part's register keys ("r0/" turns register "x" into
// "r0/x"), keeping parts' key sets disjoint — the property the merged
// checker's soundness rests on, since timestamps from different journals
// share no clock and must never be compared.
type JournalPart struct {
	J      *obs.Journal
	Prefix string
}

// pendKey addresses one register's pending ops: journal key ids are only
// unique within their part.
type pendKey struct {
	part int
	kid  uint32
}

// OnlineOptions tunes an Online checker. The zero value is ready to use.
type OnlineOptions struct {
	// Interval is the drain-and-check cadence. Default 50ms.
	Interval time.Duration
	// CheckTimeout bounds each window's check; an expiry yields an
	// undecided window (and blurs the carried values). Default 2×Interval.
	CheckTimeout time.Duration
	// MaxPending caps the buffered uncheckable backlog in ops; beyond it
	// the oldest ops are shed. Default 1 << 20.
	MaxPending int
	// Parallel and CacheBytes pass through to Options.
	Parallel   int
	CacheBytes int
	// Tally, when set, receives verdicts, shed counts and lag gauges.
	Tally *obs.Linz
	// OnViolation, when set, is called (from the checker goroutine) with
	// each violating window's report.
	OnViolation func(*Report)
}

// NewOnline returns a checker over the single journal j. Call Start for
// the background loop, or drive Step directly (tests, offline drains).
func NewOnline(j *obs.Journal, o OnlineOptions) *Online {
	return NewOnlineParts([]JournalPart{{J: j}}, o)
}

// NewOnlineParts returns a checker over several journals merged under
// their prefixes (see JournalPart). Prefixes should be distinct and
// non-overlapping; identical prefixes would let two parts' registers
// collide into one checked stream with incomparable clocks.
func NewOnlineParts(parts []JournalPart, o OnlineOptions) *Online {
	if len(parts) == 0 {
		panic("linz: NewOnlineParts needs at least one journal")
	}
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.CheckTimeout <= 0 {
		o.CheckTimeout = 2 * o.Interval
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1 << 20
	}
	return &Online{
		parts:          append([]JournalPart(nil), parts...),
		o:              o,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		pend:           make(map[pendKey][]Op),
		carry:          make(map[string]Value),
		checkedThrough: make([]atomic.Int64, len(parts)),
		partOps:        make([]atomic.Int64, len(parts)),
	}
}

// keyName recovers a pending key's full (prefixed) register name.
func (ol *Online) keyName(pk pendKey) string {
	return ol.parts[pk.part].Prefix + ol.parts[pk.part].J.KeyName(pk.kid)
}

// Start launches the background loop.
func (ol *Online) Start() {
	ol.mu.Lock()
	defer ol.mu.Unlock()
	if ol.started {
		return
	}
	ol.started = true
	go func() {
		defer close(ol.done)
		t := time.NewTicker(ol.o.Interval)
		defer t.Stop()
		for {
			select {
			case <-ol.stop:
				// Final sweep: with all sources closed the horizon is
				// unbounded, so everything left gets checked.
				ol.Step()
				return
			case <-t.C:
				ol.Step()
			}
		}
	}()
}

// Stop ends the loop after one final drain-and-check sweep and waits for
// it. Close the journal's sources first so the final horizon is
// unbounded and no tail goes unchecked.
func (ol *Online) Stop() {
	ol.mu.Lock()
	if !ol.started || ol.stopped {
		started := ol.started
		ol.stopped = true
		ol.mu.Unlock()
		if started {
			<-ol.done
		}
		return
	}
	ol.stopped = true
	ol.mu.Unlock()
	close(ol.stop)
	<-ol.done
}

// SetInit seeds a register's carried value (the value it holds before
// any journaled op). Without it the first window starts unknown.
func (ol *Online) SetInit(key string, val uint64) {
	ol.carry[key] = Value{Known: true, V: val}
}

// FirstFailure returns the first violating window's failure, if any.
func (ol *Online) FirstFailure() *Failure {
	ol.mu.Lock()
	defer ol.mu.Unlock()
	return ol.first
}

// Windows returns how many windows have been checked.
func (ol *Online) Windows() int64 {
	ol.mu.Lock()
	defer ol.mu.Unlock()
	return ol.reports
}

// PartOps returns how many effective (Flags == 0) operations have been
// drained from the part registered under prefix — one per logical op its
// producer journaled. Tests use it to pin exactly-once accounting: a
// combined quorum read must journal exactly one record, never zero or
// two. Unknown prefixes return 0.
func (ol *Online) PartOps(prefix string) int64 {
	for pi := range ol.parts {
		if ol.parts[pi].Prefix == prefix {
			return ol.partOps[pi].Load()
		}
	}
	return 0
}

// Step runs one drain-and-check round. It is the loop body of Start and
// must not be called concurrently with a started checker.
func (ol *Online) Step() {
	horizons := make([]int64, len(ol.parts))
	for pi, part := range ol.parts {
		horizons[pi] = part.J.Horizon()
		for _, s := range part.J.Sources() {
			s.Drain(func(r obs.Rec) {
				if r.Flags != 0 {
					return // refused, dedup-replayed, or metadata-only op: no fresh effect
				}
				ol.partOps[pi].Add(1)
				kind := Read
				if r.Kind == obs.JWrite {
					kind = Write
				}
				pk := pendKey{part: pi, kid: r.Key}
				ol.pend[pk] = append(ol.pend[pk], Op{
					Inv: r.Inv, Res: r.Res, Val: r.Val, Client: r.Client, Kind: kind,
				})
			})
		}
	}

	// Cut each key's stream at its last quiescent point below its OWN
	// part's horizon: everything before the cut is a complete prefix of
	// that register's history (in-flight and future ops all have Inv ≥
	// horizon), so it can be checked now and never revisited. Keys from
	// different parts never meet, so no cross-part clock comparison ever
	// happens.
	h := NewHistory()
	windowOps := 0
	for pk, ops := range ol.pend {
		horizon := horizons[pk.part]
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].Inv < ops[j].Inv })
		cut := 0
		maxRes := int64(math.MinInt64)
		for i, op := range ops {
			if maxRes < op.Inv && maxRes < horizon {
				cut = i
			}
			if op.Res > maxRes {
				maxRes = op.Res
			}
		}
		if maxRes < horizon {
			cut = len(ops)
		}
		if cut == 0 {
			ol.pend[pk] = ops
			continue
		}
		key := ol.keyName(pk)
		if v, ok := ol.carry[key]; ok && v.Known {
			h.SetInit(key, v.V)
		}
		for _, op := range ops[:cut] {
			h.Add(key, op)
		}
		windowOps += cut
		ol.pend[pk] = append(ops[:0:0], ops[cut:]...)
	}

	if windowOps > 0 {
		start := time.Now()
		rep := Check(h, Options{
			Timeout:    ol.o.CheckTimeout,
			Parallel:   ol.o.Parallel,
			CacheBytes: ol.o.CacheBytes,
		})
		took := time.Since(start)
		ol.o.Tally.Window(int(rep.Verdict), rep.Ops, took)
		for i := 0; i < rep.Blurred; i++ {
			ol.o.Tally.BlurredCut()
		}
		// Thread forced values into the next window; anything disputed
		// (violation) or unfinished (undecided) restarts unknown.
		for k, v := range rep.Finals {
			ol.carry[k] = v
		}
		for _, f := range rep.Failures {
			ol.carry[f.Key] = Value{}
		}
		for _, k := range rep.UndecidedKeys {
			ol.carry[k] = Value{}
		}
		if rep.Verdict == Violation {
			ol.mu.Lock()
			if ol.first == nil {
				f := rep.Failures[0]
				ol.first = &f
			}
			ol.mu.Unlock()
			if ol.o.OnViolation != nil {
				ol.o.OnViolation(rep)
			}
		}
		ol.mu.Lock()
		ol.reports++
		ol.mu.Unlock()
		for pi := range ol.parts {
			ol.checkedThrough[pi].Store(horizons[pi])
		}
	}

	ol.shed()

	backlog := 0
	var drops uint64
	lag := time.Duration(0)
	for pi, part := range ol.parts {
		backlog += part.J.Backlog()
		drops += part.J.Drops()
		if ct := ol.checkedThrough[pi].Load(); ct > 0 {
			if now := part.J.Now(); now > ct && time.Duration(now-ct) > lag {
				lag = time.Duration(now - ct)
			}
		}
	}
	for _, ops := range ol.pend {
		backlog += len(ops)
	}
	ol.o.Tally.SetLag(backlog, lag, drops)
}

// shed drops the oldest buffered ops when the uncheckable backlog
// exceeds MaxPending — the affected registers' carried values blur, and
// the shed ops are counted, but the journal rings stay drained and the
// checker stays current.
func (ol *Online) shed() {
	total := 0
	for _, ops := range ol.pend {
		total += len(ops)
	}
	if total <= ol.o.MaxPending {
		return
	}
	keep := ol.o.MaxPending / 2
	shed := 0
	for pk, ops := range ol.pend {
		want := 0
		if total > 0 {
			want = len(ops) * keep / total
		}
		if want < len(ops) {
			shed += len(ops) - want
			ol.pend[pk] = append(ops[:0:0], ops[len(ops)-want:]...)
			ol.carry[ol.keyName(pk)] = Value{}
		}
	}
	ol.o.Tally.Shed(shed)
}
