package linz_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/atomicity"
	"repro/internal/history"
	"repro/internal/linz"
)

// The differential oracle: internal/atomicity's exhaustive Wing–Gong
// checker, which this package must agree with on every history small
// enough for both. The contract is asymmetric because linz's windowed
// value threading is sound but deliberately not sharp (a blurred cut
// may mask a violation, never invent one):
//
//   - atomicity says linearizable  ⇒ linz says Ok;
//   - linz says Violation          ⇒ atomicity says not linearizable;
//   - no cut was blurred           ⇒ the verdicts agree exactly.

// diffMaxOps caps decoded histories: small enough that the exhaustive
// checker is instant, large enough to exercise multi-segment cutting.
const diffMaxOps = 12

// decodeDiffHistory turns arbitrary bytes into one small single-register
// history expressed in both checkers' vocabularies. Three bytes per
// operation: kind and client, value, interval geometry. Times land in a
// small range so operations genuinely overlap, and a value alphabet of
// five (including the initial value 0) makes read aliasing common.
func decodeDiffHistory(data []byte) ([]history.Op[uint64], []linz.Op) {
	var (
		hops []history.Op[uint64]
		lops []linz.Op
	)
	for i := 0; i+2 < len(data) && len(lops) < diffMaxOps; i += 3 {
		a, b, c := data[i], data[i+1], data[i+2]
		inv := int64(c % 40)
		res := inv + int64(a>>4)%6 + 1
		if b&0x80 != 0 {
			res = history.PendingSeq // == linz.PendingRes
		}
		val := uint64(b % 5)
		client := uint32(a>>1) % 4
		hop := history.Op[uint64]{
			ID:   len(hops),
			Proc: history.ProcID(client),
			Inv:  inv,
			Res:  res,
		}
		lop := linz.Op{Inv: inv, Res: res, Val: val, Client: client, Kind: linz.Read}
		if a&1 == 1 {
			hop.IsWrite = true
			hop.Arg = val
			lop.Kind = linz.Write
		} else {
			hop.Ret = val
		}
		hops = append(hops, hop)
		lops = append(lops, lop)
	}
	return hops, lops
}

// checkAgreement runs both checkers on one decoded history and enforces
// the contract above.
func checkAgreement(t *testing.T, hops []history.Op[uint64], lops []linz.Op) {
	t.Helper()
	res, err := atomicity.Check(hops, 0)
	if err != nil {
		t.Fatalf("oracle refused a %d-op history: %v", len(hops), err)
	}
	rep := linz.CheckKey("k", linz.Value{Known: true, V: 0}, lops,
		linz.Options{Timeout: 30 * time.Second, Parallel: 1})
	if rep.Verdict == linz.Undecided {
		t.Fatalf("undecided on %d ops with a 30s budget: %v", len(lops), lops)
	}
	if res.Linearizable && rep.Verdict != linz.Ok {
		t.Fatalf("linz rejected a linearizable history (%v, blurred=%d):\n%v\noracle witness %v",
			rep.Verdict, rep.Blurred, lops, res.Order)
	}
	if !res.Linearizable && rep.Verdict == linz.Ok && rep.Blurred == 0 {
		t.Fatalf("linz passed a non-linearizable history with no blurred cut:\n%v", lops)
	}
}

// diffCorpus seeds both the quick test and the fuzz target: hand-picked
// byte strings that decode to the shapes that have broken register
// checkers before (stale read, new/old inversion, pending writes racing
// reads, all-concurrent pileups).
var diffCorpus = [][]byte{
	{0x01, 0x01, 0x00, 0x00, 0x01, 0x05},                                     // write then stale read of init
	{0x11, 0x01, 0x00, 0x13, 0x02, 0x04, 0x00, 0x02, 0x08, 0x02, 0x01, 0x10}, // racing writes, trailing reads
	{0x01, 0x81, 0x00, 0x00, 0x01, 0x05},                                     // pending write, read of its value
	{0x31, 0x03, 0x00, 0x00, 0x03, 0x14, 0x00, 0x00, 0x20},                   // read far after a write
	{0x51, 0x02, 0x05, 0x51, 0x04, 0x05, 0x50, 0x02, 0x06, 0x50, 0x04, 0x06}, // same-interval pileup
}

// TestLinzAgainstExhaustiveQuick drives the differential contract over a
// deterministic random corpus, so every `go test` run re-proves
// agreement without the fuzzer. Histories span one to diffMaxOps
// operations with heavy overlap; blur and multi-segment cuts both occur
// (asserted below, so the corpus cannot silently go stale).
func TestLinzAgainstExhaustiveQuick(t *testing.T) {
	for _, seed := range diffCorpus {
		hops, lops := decodeDiffHistory(seed)
		checkAgreement(t, hops, lops)
	}

	rng := rand.New(rand.NewSource(7))
	iters := 4000
	if testing.Short() {
		iters = 400
	}
	var sawViolation, sawMultiOp bool
	for i := 0; i < iters; i++ {
		data := make([]byte, 3*(1+rng.Intn(diffMaxOps)))
		rng.Read(data)
		hops, lops := decodeDiffHistory(data)
		res, err := atomicity.Check(hops, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			sawViolation = true
		}
		if len(lops) > 4 {
			sawMultiOp = true
		}
		checkAgreement(t, hops, lops)
	}
	if !sawViolation || !sawMultiOp {
		t.Fatalf("corpus went stale: violations=%v multi-op=%v", sawViolation, sawMultiOp)
	}
}

// FuzzLinzAgainstExhaustive lets the fuzzer hunt for disagreement
// between the windowed checker and the exhaustive oracle (run in CI's
// fuzz step alongside the other targets).
func FuzzLinzAgainstExhaustive(f *testing.F) {
	for _, seed := range diffCorpus {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hops, lops := decodeDiffHistory(data)
		if len(lops) == 0 {
			return
		}
		checkAgreement(t, hops, lops)
	})
}
