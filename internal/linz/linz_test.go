package linz

import (
	"fmt"
	"testing"
	"time"
)

func wr(c uint32, val uint64, inv, res int64) Op {
	return Op{Inv: inv, Res: res, Val: val, Client: c, Kind: Write}
}

func rd(c uint32, val uint64, inv, res int64) Op {
	return Op{Inv: inv, Res: res, Val: val, Client: c, Kind: Read}
}

func known(v uint64) Value { return Value{Known: true, V: v} }

func TestSequentialOk(t *testing.T) {
	ops := []Op{
		wr(0, 1, 0, 10),
		rd(1, 1, 20, 30),
		wr(0, 2, 40, 50),
		rd(1, 2, 60, 70),
	}
	rep := CheckKey("x", known(0), ops, Options{})
	if rep.Verdict != Ok {
		t.Fatalf("verdict = %v, want ok (failures: %+v)", rep.Verdict, rep.Failures)
	}
	if rep.Segments != 4 {
		t.Fatalf("segments = %d, want 4 (every op quiescent)", rep.Segments)
	}
	if rep.Ops != 4 || rep.Keys != 1 {
		t.Fatalf("ops/keys = %d/%d", rep.Ops, rep.Keys)
	}
}

func TestStaleReadAcrossSegments(t *testing.T) {
	// The stale read sits alone in its own segment; only the forced-value
	// threading across quiescent cuts can catch it.
	ops := []Op{
		wr(0, 1, 0, 10),
		rd(1, 1, 20, 30),
		wr(0, 2, 40, 50),
		rd(1, 1, 60, 70), // stale: observes 1 after 2 was quiescently written
	}
	rep := CheckKey("x", known(0), ops, Options{})
	if rep.Verdict != Violation {
		t.Fatalf("verdict = %v, want violation", rep.Verdict)
	}
	f := rep.Failures[0]
	if f.Key != "x" || len(f.Ops) != 1 || f.Ops[0].Kind != Read {
		t.Fatalf("failure = %+v, want the lone stale read", f)
	}
	if f.Reason == "" {
		t.Fatal("failure has no reason")
	}
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	base := []Op{
		wr(0, 1, 0, 20),
		wr(1, 2, 10, 30),
	}
	for _, v := range []uint64{1, 2} {
		ops := append(append([]Op(nil), base...), rd(2, v, 40, 50))
		rep := CheckKey("x", known(0), ops, Options{})
		if rep.Verdict != Ok {
			t.Fatalf("read of %d after concurrent writes: verdict = %v, want ok", v, rep.Verdict)
		}
	}
}

// TestNewOldInversionAcrossCut is the four-client counterexample shape
// from the paper's Section 8 discussion: two overlapping writes, then two
// readers that disagree about which one won. The writes' carried value is
// blurred, but the first read re-commits it and the second read convicts.
func TestNewOldInversionAcrossCut(t *testing.T) {
	ops := []Op{
		wr(0, 1, 0, 20),
		wr(1, 2, 10, 30),
		rd(2, 2, 40, 50), // sees the new value...
		rd(3, 1, 60, 70), // ...then an older one reappears: not atomic
	}
	rep := CheckKey("x", known(0), ops, Options{})
	if rep.Verdict != Violation {
		t.Fatalf("verdict = %v, want violation (new-old inversion)", rep.Verdict)
	}
	if rep.Blurred != 1 {
		t.Fatalf("blurred = %d, want 1 (two maximal writes at the cut)", rep.Blurred)
	}
}

// TestNewOldInversionOneSegment is the same inversion with chained
// overlaps so the whole history is a single segment and the DFS itself
// must convict — and identify the culprit read for highlighting.
func TestNewOldInversionOneSegment(t *testing.T) {
	ops := []Op{
		wr(0, 1, 0, 60),
		wr(1, 2, 50, 90),
		rd(2, 2, 80, 110),
		rd(3, 1, 100, 130),
	}
	rep := CheckKey("x", known(0), ops, Options{})
	if rep.Verdict != Violation {
		t.Fatalf("verdict = %v, want violation", rep.Verdict)
	}
	if rep.Segments != 1 {
		t.Fatalf("segments = %d, want 1", rep.Segments)
	}
	f := rep.Failures[0]
	if len(f.Ops) != 4 || f.Linearized == nil {
		t.Fatalf("failure not tracked: %+v", f)
	}
	culprits := f.Culprits()
	if len(culprits) != 1 || f.Ops[culprits[0]].Client != 3 {
		t.Fatalf("culprits = %v, want the client-3 read (ops %+v)", culprits, f.Ops)
	}
}

func TestPendingWrite(t *testing.T) {
	// A pending write may take effect...
	ops := []Op{
		wr(0, 1, 0, PendingRes),
		rd(1, 1, 10, 20),
	}
	if rep := CheckKey("x", known(0), ops, Options{}); rep.Verdict != Ok {
		t.Fatalf("pending write should be allowed to land: %v", rep.Verdict)
	}
	// ...or not.
	ops = []Op{
		wr(0, 1, 0, PendingRes),
		rd(1, 0, 10, 20),
		rd(2, 0, 30, 40),
	}
	if rep := CheckKey("x", known(0), ops, Options{}); rep.Verdict != Ok {
		t.Fatalf("pending write must not be forced to land: %v", rep.Verdict)
	}
	// But it cannot land in the middle of contradicting reads.
	ops = []Op{
		wr(0, 1, 0, PendingRes),
		rd(1, 1, 10, 20),
		rd(2, 0, 30, 40),
	}
	if rep := CheckKey("x", known(0), ops, Options{}); rep.Verdict != Violation {
		t.Fatalf("value cannot revert after the pending write was observed: %v", rep.Verdict)
	}
}

func TestPendingReadUnconstrained(t *testing.T) {
	ops := []Op{
		wr(0, 1, 0, 10),
		rd(1, 99, 20, PendingRes), // never returned: the 99 is garbage
		rd(2, 1, 30, 40),
	}
	if rep := CheckKey("x", known(0), ops, Options{}); rep.Verdict != Ok {
		t.Fatalf("pending read must not constrain: %v", rep.Verdict)
	}
}

func TestUnknownInitCommits(t *testing.T) {
	ops := []Op{
		rd(0, 7, 0, 10),
		rd(1, 7, 20, 30),
	}
	if rep := CheckKey("x", Value{}, ops, Options{}); rep.Verdict != Ok {
		t.Fatalf("consistent reads of unknown init: %v", rep.Verdict)
	}
	ops = append(ops, rd(0, 8, 40, 50))
	if rep := CheckKey("x", Value{}, ops, Options{}); rep.Verdict != Violation {
		t.Fatalf("inconsistent reads of unknown init: %v", rep.Verdict)
	}
}

func TestBlurredCutIsSoundNotSharp(t *testing.T) {
	// Two overlapping writes with no disambiguating read: the carried
	// value is unforced, so the read of a third value after the cut is
	// (soundly) accepted against the blurred state — and the blur is
	// counted so reports can expose how sharp the run was.
	ops := []Op{
		wr(0, 1, 0, 20),
		wr(1, 2, 10, 30),
		rd(2, 3, 40, 50),
	}
	rep := CheckKey("x", known(0), ops, Options{})
	if rep.Verdict != Ok {
		t.Fatalf("verdict = %v, want ok (blurred cut commits to the read)", rep.Verdict)
	}
	if rep.Blurred != 1 {
		t.Fatalf("blurred = %d, want 1", rep.Blurred)
	}
}

func TestMultiKeyPartitioning(t *testing.T) {
	h := NewHistory()
	h.SetInit("good", 0)
	h.SetInit("bad", 0)
	// Interleaved in time, independent per key.
	h.Add("good", wr(0, 1, 0, 10))
	h.Add("bad", wr(1, 1, 5, 15))
	h.Add("good", rd(0, 1, 20, 30))
	h.Add("bad", rd(1, 2, 20, 30)) // nobody wrote 2 to bad
	rep := Check(h, Options{Parallel: 2})
	if rep.Verdict != Violation {
		t.Fatalf("verdict = %v, want violation", rep.Verdict)
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Key != "bad" {
		t.Fatalf("failures = %+v, want exactly key bad", rep.Failures)
	}
	if rep.Keys != 2 || rep.Ops != 4 {
		t.Fatalf("keys/ops = %d/%d", rep.Keys, rep.Ops)
	}
}

func TestUndecidedOnTimeout(t *testing.T) {
	ops := []Op{
		wr(0, 1, 0, 20),
		wr(1, 2, 10, 30),
		rd(2, 2, 15, 40),
	}
	rep := CheckKey("x", known(0), ops, Options{Timeout: time.Nanosecond})
	if rep.Verdict != Undecided {
		t.Fatalf("verdict = %v, want undecided under an expired deadline", rep.Verdict)
	}
	if len(rep.UndecidedKeys) != 1 || rep.UndecidedKeys[0] != "x" {
		t.Fatalf("undecided keys = %v", rep.UndecidedKeys)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Ok.String() != "ok" || Violation.String() != "violation" || Undecided.String() != "undecided" {
		t.Fatal("verdict strings drifted from the obs contract")
	}
	if got := Ok.merge(Undecided).merge(Violation); got != Violation {
		t.Fatalf("merge = %v, want violation to dominate", got)
	}
}

// TestLongSequentialFastPath pushes a large fully-quiescent history
// through the per-op fast path: this is the shape a low-concurrency
// bloomload run produces, and it must stay effectively linear time.
func TestLongSequentialFastPath(t *testing.T) {
	const n = 100_000
	h := NewHistory()
	for k := 0; k < 4; k++ {
		key := fmt.Sprintf("r%d", k)
		h.SetInit(key, 0)
		t0 := int64(k) // interleave keys in time
		var last uint64
		for i := 0; i < n/4; i++ {
			inv := t0 + int64(i)*8
			if i%3 == 0 {
				last = uint64(i + 1)
				h.Add(key, wr(0, last, inv, inv+3))
			} else {
				h.Add(key, rd(1, last, inv, inv+3))
			}
		}
	}
	start := time.Now()
	rep := Check(h, Options{})
	if rep.Verdict != Ok {
		t.Fatalf("verdict = %v, want ok (failures: %+v)", rep.Verdict, rep.Failures)
	}
	if rep.Ops != n {
		t.Fatalf("ops = %d, want %d", rep.Ops, n)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("fast path took %v for %d ops", d, n)
	}
}

// TestChainedOverlapSegment builds one long segment of pairwise-chained
// overlapping ops with a valid linearization: the DFS must get through it
// without pathological backtracking.
func TestChainedOverlapSegment(t *testing.T) {
	const n = 2000
	ops := make([]Op, 0, n)
	val := uint64(1)
	for i := 0; i < n; i++ {
		inv := int64(i) * 2
		res := inv + 3 // overlaps the next op's invocation at inv+2
		if i%2 == 0 {
			val = uint64(i + 1)
			ops = append(ops, wr(uint32(i%2), val, inv, res))
		} else {
			ops = append(ops, rd(uint32(i%2), val, inv, res))
		}
	}
	rep := CheckKey("x", known(0), ops, Options{Timeout: 20 * time.Second})
	if rep.Verdict != Ok {
		t.Fatalf("verdict = %v, want ok (undecided=%v)", rep.Verdict, rep.UndecidedKeys)
	}
	if rep.Segments != 1 {
		t.Fatalf("segments = %d, want 1 (chained overlap)", rep.Segments)
	}
}
