package linz

import "math/bits"

// bitset is a fixed-capacity bit vector indexed by an operation's position
// inside one segment. The DFS uses it as the "already linearized" set, and
// the memo cache uses (bitset, register value) pairs as state identity.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) unset(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// hash folds the words FNV-1a style; collisions are resolved by equal in
// the memo bucket, so the quality only affects bucket spread.
func (b bitset) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range b {
		h ^= w
		h *= prime64
	}
	return h
}
