package linz

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// RenderTimeline writes a self-contained interactive HTML page
// visualizing a violating window: one lane per client, a bar per
// operation spanning invocation→response, the ops that no linearization
// can explain highlighted in red, the deepest partial linearization the
// search found in green. Wheel zooms, drag pans, hovering an op shows
// its details. The page embeds everything — no external assets — so the
// file written on a failed certification is a portable, clickable repro.
func RenderTimeline(f *Failure, w io.Writer) error {
	if f == nil {
		return fmt.Errorf("linz: no failure to render")
	}
	type vizOp struct {
		Lane    int    `json:"lane"`
		Kind    string `json:"kind"`
		Val     string `json:"val"`
		Inv     int64  `json:"inv"`
		Res     int64  `json:"res"`
		Pending bool   `json:"pending"`
		Culprit bool   `json:"culprit"`
		Lin     bool   `json:"lin"`
	}
	type vizDoc struct {
		Key     string   `json:"key"`
		Reason  string   `json:"reason"`
		Init    string   `json:"init"`
		Clients []string `json:"clients"`
		Span    int64    `json:"span"`
		Ops     []vizOp  `json:"ops"`
	}

	clients := map[uint32]int{}
	var order []uint32
	for _, op := range f.Ops {
		if _, ok := clients[op.Client]; !ok {
			clients[op.Client] = 0
			order = append(order, op.Client)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i, c := range order {
		clients[c] = i
	}

	t0 := int64(0)
	tEnd := int64(1)
	for i, op := range f.Ops {
		if i == 0 || op.Inv < t0 {
			t0 = op.Inv
		}
		if !op.Pending() && op.Res > tEnd {
			tEnd = op.Res
		}
		if op.Inv > tEnd {
			tEnd = op.Inv
		}
	}

	culprit := map[int]bool{}
	for _, i := range f.Culprits() {
		culprit[i] = true
	}

	doc := vizDoc{
		Key:    f.Key,
		Reason: f.Reason,
		Init:   "unknown",
		Span:   tEnd - t0,
	}
	if f.Init.Known {
		doc.Init = fmt.Sprintf("%#x", f.Init.V)
	}
	for _, c := range order {
		doc.Clients = append(doc.Clients, fmt.Sprintf("client %d", c))
	}
	for i, op := range f.Ops {
		v := vizOp{
			Lane:    clients[op.Client],
			Kind:    op.Kind.String(),
			Val:     fmt.Sprintf("%#x", op.Val),
			Inv:     op.Inv - t0,
			Res:     op.Res - t0,
			Pending: op.Pending(),
			Culprit: culprit[i],
		}
		if v.Pending {
			v.Res = tEnd - t0
		}
		if f.Linearized != nil && f.Linearized[i] {
			v.Lin = true
		}
		doc.Ops = append(doc.Ops, v)
	}

	// encoding/json escapes <, > and & by default, so the payload cannot
	// break out of the <script> element.
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, timelineHead); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "<script>const DATA = %s;\n", data); err != nil {
		return err
	}
	_, err = io.WriteString(w, timelineScript)
	return err
}

const timelineHead = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>linz violation timeline</title>
<style>
  body { margin: 0; font: 13px/1.5 system-ui, sans-serif; background: #13151a; color: #e8e8ec; }
  header { padding: 14px 20px 10px; border-bottom: 1px solid #2a2e38; }
  header h1 { margin: 0 0 4px; font-size: 16px; }
  header .reason { color: #ff7b72; }
  header .meta { color: #8b919e; font-size: 12px; }
  #wrap { position: relative; overflow: hidden; }
  svg { display: block; cursor: grab; user-select: none; }
  svg:active { cursor: grabbing; }
  .lane-label { fill: #8b919e; font-size: 11px; }
  .lane-line { stroke: #232732; }
  .axis text { fill: #8b919e; font-size: 10px; }
  .axis line { stroke: #2a2e38; }
  .op rect { rx: 3; }
  .op text { font-size: 10px; pointer-events: none; }
  .op.w rect  { fill: #2f5e9e; }
  .op.r rect  { fill: #3a4150; }
  .op.lin rect { stroke: #3fb950; stroke-width: 1.5; }
  .op.culprit rect { fill: #8e2430; stroke: #ff7b72; stroke-width: 2; }
  .op text { fill: #dfe3ea; }
  #tip { position: absolute; display: none; background: #1d212b; border: 1px solid #3a4150;
         padding: 6px 9px; border-radius: 5px; pointer-events: none; font-size: 12px; z-index: 2; }
  #tip b { color: #79b8ff; }
  #tip.culprit b { color: #ff7b72; }
  .legend { padding: 8px 20px; color: #8b919e; font-size: 12px; }
  .legend span { margin-right: 16px; }
  .chip { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
</style>
</head>
<body>
<header>
  <h1>Linearizability violation &mdash; register <span id="key"></span></h1>
  <div class="reason" id="reason"></div>
  <div class="meta" id="meta"></div>
</header>
<div class="legend">
  <span><span class="chip" style="background:#2f5e9e"></span>write</span>
  <span><span class="chip" style="background:#3a4150"></span>read</span>
  <span><span class="chip" style="background:#3a4150;border:1.5px solid #3fb950"></span>deepest valid prefix</span>
  <span><span class="chip" style="background:#8e2430;border:2px solid #ff7b72"></span>cannot linearize</span>
  <span style="float:right">wheel: zoom &middot; drag: pan &middot; hover: details</span>
</div>
<div id="wrap"><div id="tip"></div></div>
`

const timelineScript = `
const W = Math.max(document.documentElement.clientWidth, 640);
const LANE_H = 34, TOP = 28, LEFT = 86, RIGHT = 16;
const H = TOP + DATA.clients.length * LANE_H + 14;
const wrap = document.getElementById('wrap');
const tip = document.getElementById('tip');
document.getElementById('key').textContent = DATA.key;
document.getElementById('reason').textContent = DATA.reason;
document.getElementById('meta').textContent =
  DATA.ops.length + ' ops · ' + DATA.clients.length + ' clients · window ' +
  fmtNs(DATA.span) + ' · initial value ' + DATA.init;

const svg = document.createElementNS('http://www.w3.org/2000/svg', 'svg');
svg.setAttribute('width', W); svg.setAttribute('height', H);
wrap.appendChild(svg);

// view = [t_left, t_right] in window-ns
let view = [ -DATA.span * 0.02, DATA.span * 1.02 ];
if (DATA.span <= 0) view = [-1, 1];

function x(t) { return LEFT + (t - view[0]) / (view[1] - view[0]) * (W - LEFT - RIGHT); }
function fmtNs(ns) {
  if (ns >= 1e9) return (ns / 1e9).toFixed(2) + ' s';
  if (ns >= 1e6) return (ns / 1e6).toFixed(2) + ' ms';
  if (ns >= 1e3) return (ns / 1e3).toFixed(1) + ' µs';
  return ns + ' ns';
}

function el(name, attrs, parent) {
  const e = document.createElementNS('http://www.w3.org/2000/svg', name);
  for (const k in attrs) e.setAttribute(k, attrs[k]);
  (parent || svg).appendChild(e);
  return e;
}

function render() {
  svg.textContent = '';
  // lanes
  DATA.clients.forEach((c, i) => {
    const y = TOP + i * LANE_H + LANE_H / 2;
    const t = el('text', { x: 8, y: y + 4, 'class': 'lane-label' });
    t.textContent = c;
    el('line', { x1: LEFT, y1: y, x2: W - RIGHT, y2: y, 'class': 'lane-line' });
  });
  // axis ticks: ~8 round steps
  const span = view[1] - view[0];
  const step = Math.pow(10, Math.floor(Math.log10(span / 8)));
  const mult = span / 8 / step > 5 ? 5 : span / 8 / step > 2 ? 2 : 1;
  const tick = step * mult;
  const g = el('g', { 'class': 'axis' });
  for (let t = Math.ceil(view[0] / tick) * tick; t <= view[1]; t += tick) {
    const px = x(t);
    if (px < LEFT || px > W - RIGHT) continue;
    el('line', { x1: px, y1: TOP - 12, x2: px, y2: H - 10 }, g);
    const lbl = el('text', { x: px + 3, y: TOP - 14 }, g);
    lbl.textContent = fmtNs(t);
  }
  // ops
  DATA.ops.forEach((op, i) => {
    const x0 = x(op.inv), x1 = Math.max(x(op.res), x0 + 2);
    if (x1 < LEFT || x0 > W - RIGHT) return;
    const y = TOP + op.lane * LANE_H + 6;
    const cls = 'op ' + (op.kind === 'write' ? 'w' : 'r') +
      (op.culprit ? ' culprit' : op.lin ? ' lin' : '');
    const grp = el('g', { 'class': cls });
    el('rect', { x: x0, y: y, width: x1 - x0, height: LANE_H - 14 }, grp);
    if (x1 - x0 > 46) {
      const t = el('text', { x: x0 + 5, y: y + 14 }, grp);
      t.textContent = (op.kind === 'write' ? 'W ' : 'R ') + op.val + (op.pending ? ' …' : '');
    }
    grp.addEventListener('mousemove', ev => {
      tip.style.display = 'block';
      tip.className = op.culprit ? 'culprit' : '';
      tip.innerHTML = '<b>' + op.kind + ' ' + op.val + (op.pending ? ' (pending)' : '') + '</b><br>' +
        DATA.clients[op.lane] + '<br>inv ' + fmtNs(op.inv) + ' → res ' +
        (op.pending ? 'never' : fmtNs(op.res)) +
        (op.culprit ? '<br>⚠ cannot be linearized' : op.lin ? '<br>in deepest valid prefix' : '');
      tip.style.left = Math.min(ev.clientX + 14, W - 220) + 'px';
      tip.style.top = (ev.clientY + 14) + 'px';
    });
    grp.addEventListener('mouseleave', () => { tip.style.display = 'none'; });
  });
}

svg.addEventListener('wheel', ev => {
  ev.preventDefault();
  const span = view[1] - view[0];
  const f = ev.deltaY > 0 ? 1.2 : 1 / 1.2;
  const pivot = view[0] + (ev.offsetX - LEFT) / (W - LEFT - RIGHT) * span;
  view = [ pivot - (pivot - view[0]) * f, pivot + (view[1] - pivot) * f ];
  render();
}, { passive: false });

let drag = null;
svg.addEventListener('mousedown', ev => { drag = { x: ev.clientX, view: [...view] }; });
window.addEventListener('mousemove', ev => {
  if (!drag) return;
  const dt = (drag.x - ev.clientX) / (W - LEFT - RIGHT) * (drag.view[1] - drag.view[0]);
  view = [drag.view[0] + dt, drag.view[1] + dt];
  render();
});
window.addEventListener('mouseup', () => { drag = null; });

render();
</script>
</body>
</html>
`
