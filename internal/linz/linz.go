// Package linz checks register histories for linearizability at
// production scale. It is the big sibling of internal/atomicity: where
// that package exhaustively searches toy histories (≤ 64 ops) over typed
// values, linz takes the millions of hashed operation records that
// obs.Journal captures from live netreg traffic and returns a verdict in
// seconds.
//
// Three ideas make that tractable:
//
//   - Partitioning (P-compositionality, Horn & Kroening): a history over
//     many registers is linearizable iff its per-register projections are.
//     Each register key is checked independently, in parallel.
//
//   - Quiescent-cut segmenting: inside one key, any instant that no
//     operation spans splits the history into segments that can be checked
//     one after another, threading the register value across the cut when
//     it is forced (exactly one write can be last). Real traffic is full
//     of such cuts, so the expensive search only ever sees short segments.
//     When the carried value is not forced (two overlapping writes with no
//     later read to disambiguate) the next segment starts from an unknown
//     value — still sound, never inventing a violation, and the blur is
//     counted so certification reports can say how sharp the check was.
//
//   - Memoized bitset DFS (Wing & Gong via Lowe's and Porcupine's
//     formulation): within a segment, depth-first search over "which op
//     linearizes next", with the linearized set kept as a bitset and a
//     cache of (bitset, value) states already proven dead ends. The cache
//     is byte-budgeted and the search deadline-bounded; running out of
//     either yields Undecided, never a wrong verdict.
//
// The register model allows an unknown initial value (the checker may
// join a run mid-stream): the first linearized read of a segment with
// unknown value commits the register to the value it observed. Pending
// operations (invoked, never returned) are handled as in the literature:
// pending reads impose no constraint and are dropped; pending writes may
// linearize anywhere after their invocation or not at all.
package linz

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an operation.
type Kind uint8

const (
	// Read observed Op.Val.
	Read Kind = iota + 1
	// Write stored Op.Val.
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	}
	return "?"
}

// PendingRes is the Res of an operation that was invoked but never
// returned (client crashed, run was cut short). It orders after every
// real timestamp.
const PendingRes = int64(math.MaxInt64)

// Op is one operation in a single register's history. Timestamps are
// monotonic nanoseconds on one clock (journal time); Op A precedes Op B
// iff A.Res < B.Inv, strictly — ops sharing an instant are concurrent.
type Op struct {
	// Inv and Res bracket the operation. Res is PendingRes if it never
	// returned; otherwise Inv ≤ Res.
	Inv, Res int64
	// Val is the value hash written or observed (obs.HashVal for journal
	// histories). Equal values must hash equal; collisions can only mask
	// a violation, never invent one.
	Val uint64
	// Client identifies the issuing client: one timeline lane. A single
	// client's ops must not overlap.
	Client uint32
	// Kind is Read or Write.
	Kind Kind
}

// Pending reports whether the operation never returned.
func (o Op) Pending() bool { return o.Res == PendingRes }

// Value is a register value that may be unknown (checker joined
// mid-stream, or a blurred cut). A read against an unknown value commits
// the register to the value read.
type Value struct {
	Known bool
	V     uint64
}

// Verdict is a checker outcome. The int values are the contract with
// obs.Linz.Window.
type Verdict int

const (
	// Ok: the history is linearizable.
	Ok Verdict = iota
	// Violation: the history is provably not linearizable.
	Violation
	// Undecided: the checker ran out of time or memo budget before
	// reaching a verdict. Never returned when a violation was found.
	Undecided
)

func (v Verdict) String() string {
	switch v {
	case Ok:
		return "ok"
	case Violation:
		return "violation"
	case Undecided:
		return "undecided"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// merge combines per-key verdicts: a violation anywhere decides the whole
// history; otherwise any undecided key leaves it undecided.
func (v Verdict) merge(o Verdict) Verdict {
	if v == Violation || o == Violation {
		return Violation
	}
	if v == Undecided || o == Undecided {
		return Undecided
	}
	return Ok
}

// History is a multi-register history under construction. Not safe for
// concurrent mutation; build it from one goroutine (or see
// Online, which owns its collection loop).
type History struct {
	keys map[string]*keyHist
}

// keyHist is owned by whichever single goroutine is building the
// History (see the History contract above); collection hands the whole
// structure off before checking starts, so no static lock or atomic
// discipline describes its fields.
//
//bloom:allowshared
type keyHist struct {
	init Value
	ops  []Op
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{keys: make(map[string]*keyHist)}
}

// SetInit declares register key's initial value. Without it the checker
// starts the key from an unknown value (sound, slightly weaker).
func (h *History) SetInit(key string, val uint64) {
	h.kh(key).init = Value{Known: true, V: val}
}

// Add appends one operation to register key's history, in any order.
func (h *History) Add(key string, op Op) {
	kh := h.kh(key)
	kh.ops = append(kh.ops, op)
}

func (h *History) kh(key string) *keyHist {
	kh := h.keys[key]
	if kh == nil {
		kh = &keyHist{}
		h.keys[key] = kh
	}
	return kh
}

// Len returns the total number of operations across all keys.
func (h *History) Len() int {
	n := 0
	for _, kh := range h.keys {
		n += len(kh.ops)
	}
	return n
}

// Keys returns the register names present, sorted.
func (h *History) Keys() []string {
	keys := make([]string, 0, len(h.keys))
	for k := range h.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Options tunes a check. The zero value is ready to use.
type Options struct {
	// Timeout bounds the whole check's wall time; keys not finished when
	// it expires come back Undecided. Zero means no limit.
	Timeout time.Duration
	// Parallel is the number of keys checked concurrently. Zero means
	// GOMAXPROCS.
	Parallel int
	// CacheBytes budgets each segment search's memo cache. Zero means
	// DefaultCacheBytes. When the budget is exhausted the search keeps
	// running without memoizing new states, bounded by Timeout.
	CacheBytes int
}

// DefaultCacheBytes is the per-segment memo budget: large enough that
// only adversarial segments ever hit it.
const DefaultCacheBytes = 64 << 20

// Failure describes one key's linearizability violation: the offending
// segment and, for segments small enough to track, the deepest partial
// linearization the search reached — the ops outside it are the ones that
// cannot be explained.
type Failure struct {
	// Key is the violating register.
	Key string
	// Init is the register value entering the segment.
	Init Value
	// Ops is the offending segment, sorted by invocation time.
	Ops []Op
	// Linearized flags, per op in Ops, membership in the deepest partial
	// linearization found. Nil when the segment was too large to track
	// (bestTrackCap).
	Linearized []bool
	// Reason is a one-line human explanation.
	Reason string
}

// Culprits returns the indices (into Ops) of completed operations outside
// the deepest partial linearization — the ops to highlight. Empty when
// tracking was off.
func (f *Failure) Culprits() []int {
	if f.Linearized == nil {
		return nil
	}
	var c []int
	for i, ok := range f.Linearized {
		if !ok && !f.Ops[i].Pending() {
			c = append(c, i)
		}
	}
	return c
}

// Report is a completed check.
type Report struct {
	Verdict Verdict
	// Ops and Keys size the checked history.
	Ops  int
	Keys int
	// Segments counts quiescent-cut segments across all keys; Blurred
	// counts segments entered with an unknown (unforced) value.
	Segments int
	Blurred  int
	// States counts DFS states explored (segment fast paths count one).
	States int64
	// Elapsed is the check's wall time.
	Elapsed time.Duration
	// Failures holds one Failure per violating key.
	Failures []Failure
	// UndecidedKeys lists keys that hit the time or memo budget.
	UndecidedKeys []string
	// Finals maps each Ok key to the register value it holds after the
	// history (forced value, or unknown): the seed for a follow-on
	// window's SetInit when chaining checks.
	Finals map[string]Value
}

// Check decides whether the history is linearizable. It always returns a
// report; the Verdict is Undecided only if the budget ran out first.
func Check(h *History, o Options) *Report {
	start := time.Now()
	var deadline time.Time
	if o.Timeout > 0 {
		deadline = start.Add(o.Timeout)
	}
	cacheBytes := o.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	workers := o.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	keys := h.Keys()
	results := make([]keyResult, len(keys))
	if workers > len(keys) {
		workers = len(keys)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				results[i] = checkKey(keys[i], h.keys[keys[i]], deadline, cacheBytes)
			}
		}()
	}
	wg.Wait()

	rep := &Report{Verdict: Ok, Keys: len(keys), Ops: h.Len(), Finals: make(map[string]Value, len(keys))}
	for i, r := range results {
		rep.Verdict = rep.Verdict.merge(r.verdict)
		rep.Segments += r.segments
		rep.Blurred += r.blurred
		rep.States += r.states
		switch r.verdict {
		case Ok:
			rep.Finals[keys[i]] = r.final
		case Violation:
			rep.Failures = append(rep.Failures, *r.failure)
		case Undecided:
			rep.UndecidedKeys = append(rep.UndecidedKeys, keys[i])
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// CheckKey checks a single register's history with a known-or-unknown
// initial value — the convenient form for tests and differential runs.
func CheckKey(key string, init Value, ops []Op, o Options) *Report {
	h := NewHistory()
	if init.Known {
		h.SetInit(key, init.V)
	}
	for _, op := range ops {
		h.Add(key, op)
	}
	return Check(h, o)
}

type keyResult struct {
	verdict  Verdict
	segments int
	blurred  int
	states   int64
	failure  *Failure
	final    Value
}

// checkKey runs one register's history: sort, cut at quiescent points,
// thread the value across cuts, search each segment.
func checkKey(key string, kh *keyHist, deadline time.Time, cacheBytes int) keyResult {
	res := keyResult{verdict: Ok}
	ops := make([]Op, 0, len(kh.ops))
	for _, op := range kh.ops {
		// A pending read constrains nothing and would fuse everything
		// after its invocation into one segment; drop it up front.
		if op.Pending() && op.Kind == Read {
			continue
		}
		ops = append(ops, op)
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Inv != ops[j].Inv {
			return ops[i].Inv < ops[j].Inv
		}
		return ops[i].Res < ops[j].Res
	})

	val := kh.init
	for start := 0; start < len(ops); {
		// Grow the segment until a quiescent cut: an instant after
		// ops[end-1]'s whole prefix has returned and strictly before the
		// next invocation. Pending ops have Res = PendingRes, so a segment
		// containing one runs to the end of the history.
		end := start + 1
		maxRes := ops[start].Res
		for end < len(ops) && ops[end].Inv <= maxRes {
			if ops[end].Res > maxRes {
				maxRes = ops[end].Res
			}
			end++
		}
		seg := ops[start:end]
		res.segments++
		if start > 0 && !val.Known {
			res.blurred++
		}

		if !deadline.IsZero() && time.Now().After(deadline) {
			res.verdict = res.verdict.merge(Undecided)
			return res
		}

		if len(seg) == 1 {
			// Fast path: a lone op needs no search. This is the common
			// case by far in low-concurrency traffic.
			res.states++
			op := seg[0]
			switch {
			case op.Kind == Write && op.Pending():
				// May or may not take effect — but it spans the rest of
				// the history, so this is the final segment either way.
				val = Value{}
			case op.Kind == Write:
				val = Value{Known: true, V: op.Val}
			case op.Pending():
				// Pending read: no constraint.
			case !val.Known:
				val = Value{Known: true, V: op.Val}
			case val.V != op.Val:
				res.verdict = Violation
				res.failure = buildFailure(key, val, seg, []bool{false})
				return res
			}
			start = end
			continue
		}

		sr := checkSegment(seg, val, deadline, cacheBytes)
		res.states += sr.states
		switch sr.verdict {
		case Violation:
			res.verdict = Violation
			res.failure = buildFailure(key, val, seg, sr.best)
			return res
		case Undecided:
			res.verdict = res.verdict.merge(Undecided)
			return res
		}
		val = carriedValue(seg, val)
		start = end
	}
	res.final = val
	return res
}

// carriedValue computes the register value leaving a linearizable
// segment. It is forced exactly when at most one write can linearize
// last: the last write of any linearization is maximal (no other write
// invoked after it returned), so a unique maximal write — and no pending
// write, which is always maximal — pins the value. No writes at all carry
// the incoming value through.
func carriedValue(seg []Op, in Value) Value {
	maxWriteInv := int64(math.MinInt64)
	writes := 0
	for _, op := range seg {
		if op.Kind == Write {
			writes++
			if op.Inv > maxWriteInv {
				maxWriteInv = op.Inv
			}
		}
	}
	if writes == 0 {
		return in
	}
	var last Op
	maximal := 0
	for _, op := range seg {
		if op.Kind == Write && op.Res >= maxWriteInv {
			maximal++
			last = op
		}
	}
	if maximal == 1 && !last.Pending() {
		return Value{Known: true, V: last.Val}
	}
	return Value{}
}

// buildFailure assembles a Failure from a violating segment and the
// search's deepest partial linearization (nil when untracked).
func buildFailure(key string, init Value, seg []Op, best []bool) *Failure {
	f := &Failure{
		Key:        key,
		Init:       init,
		Ops:        append([]Op(nil), seg...),
		Linearized: best,
	}
	reason := "no valid linearization of the segment exists"
	for _, i := range f.Culprits() {
		op := f.Ops[i]
		if op.Kind == Read {
			reason = fmt.Sprintf("read by client %d observed value %#x, which no linearization of the surrounding writes can produce at that point", op.Client, op.Val)
		} else {
			reason = fmt.Sprintf("write of %#x by client %d cannot be placed anywhere in its invocation window", op.Val, op.Client)
		}
		break
	}
	f.Reason = reason
	return f
}
