package linz

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestOnlineCleanStream(t *testing.T) {
	j := obs.NewJournal()
	tally := obs.NewLinz()
	ol := NewOnline(j, OnlineOptions{Tally: tally})
	ol.SetInit("x", 0)

	a, b := j.Source(), j.Source()
	kx := a.KeyID("x")
	if b.KeyID("x") != kx {
		t.Fatal("key ids diverged across sources")
	}
	const n = 200
	var last uint64
	var total int
	for i := 0; i < n; i++ {
		inv := j.Now()
		a.Begin(inv)
		last = uint64(i + 1)
		a.Record(obs.Rec{Inv: inv, Res: j.Now() + 1, Key: kx, Kind: obs.JWrite, Val: last})
		inv = j.Now() + 2
		b.Begin(inv)
		b.Record(obs.Rec{Inv: inv, Res: j.Now() + 3, Key: kx, Kind: obs.JRead, Val: last})
		total += 2
		if i%50 == 0 {
			ol.Step()
		}
	}
	a.Close()
	b.Close()
	ol.Step()

	s := tally.Snapshot()
	if s.WindowsViolation != 0 || s.WindowsUndecided != 0 {
		t.Fatalf("clean stream produced verdicts %d/%d/%d (failure: %+v)",
			s.WindowsOK, s.WindowsViolation, s.WindowsUndecided, ol.FirstFailure())
	}
	if s.WindowsOK == 0 || s.OpsChecked != int64(total) {
		t.Fatalf("ok windows = %d, ops checked = %d (want all %d)", s.WindowsOK, s.OpsChecked, total)
	}
	if ol.FirstFailure() != nil {
		t.Fatalf("unexpected failure: %+v", ol.FirstFailure())
	}
}

// TestOnlineThreadsValueAcrossWindows certifies that a window's forced
// register value seeds the next: the stale read is only convictable if
// the earlier window's write carried over.
func TestOnlineThreadsValueAcrossWindows(t *testing.T) {
	j := obs.NewJournal()
	tally := obs.NewLinz()
	var fired atomic.Int64
	ol := NewOnline(j, OnlineOptions{
		Tally:       tally,
		OnViolation: func(*Report) { fired.Add(1) },
	})
	ol.SetInit("x", 0)

	s := j.Source()
	kx := s.KeyID("x")
	const far = int64(1) << 40
	s.Begin(far + 10)
	s.Record(obs.Rec{Inv: far + 10, Res: far + 20, Key: kx, Kind: obs.JWrite, Val: 1})
	s.Begin(far + 50) // next op in flight: horizon moves past the write
	ol.Step()
	if got := tally.Snapshot().WindowsOK; got != 1 {
		t.Fatalf("first window: ok windows = %d, want 1", got)
	}

	// The read observes 2, but the carried value says this register
	// quiescently holds 1 and nothing else was written.
	s.Record(obs.Rec{Inv: far + 50, Res: far + 60, Key: kx, Kind: obs.JRead, Val: 2})
	s.Close()
	ol.Step()

	if ol.FirstFailure() == nil {
		t.Fatal("stale read across windows not caught: carry broken")
	}
	if f := ol.FirstFailure(); f.Key != "x" || len(f.Ops) != 1 || f.Ops[0].Kind != Read {
		t.Fatalf("failure = %+v, want the lone stale read on x", f)
	}
	if fired.Load() != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", fired.Load())
	}
	if tally.Violations() != 1 {
		t.Fatalf("tally violations = %d, want 1", tally.Violations())
	}
}

func TestOnlineErrRecordsSkipped(t *testing.T) {
	j := obs.NewJournal()
	ol := NewOnline(j, OnlineOptions{})
	ol.SetInit("x", 0)
	s := j.Source()
	kx := s.KeyID("x")
	const far = int64(1) << 40
	// A refused write must not count as having taken effect.
	s.Record(obs.Rec{Inv: far + 10, Res: far + 20, Key: kx, Kind: obs.JWrite, Val: 9, Flags: obs.JErr})
	s.Record(obs.Rec{Inv: far + 30, Res: far + 40, Key: kx, Kind: obs.JRead, Val: 0})
	s.Close()
	ol.Step()
	if f := ol.FirstFailure(); f != nil {
		t.Fatalf("errored write was checked as effective: %+v", f)
	}
	if ol.Windows() != 1 {
		t.Fatalf("windows = %d, want 1", ol.Windows())
	}
}

func TestOnlineShedsBacklog(t *testing.T) {
	j := obs.NewJournal()
	tally := obs.NewLinz()
	ol := NewOnline(j, OnlineOptions{Tally: tally, MaxPending: 16})
	s := j.Source()
	kx := s.KeyID("x")
	const far = int64(1) << 40
	// All ops overlap one in-flight op pinning the horizon below them:
	// nothing is checkable, the backlog grows, shedding must kick in.
	s.Begin(far)
	for i := int64(0); i < 100; i++ {
		s.Record(obs.Rec{Inv: far + 10 + i, Res: far + 1000 + i, Key: kx, Kind: obs.JWrite, Val: uint64(i)})
		s.Begin(far) // keep the horizon pinned at far
	}
	ol.Step()
	snap := tally.Snapshot()
	if snap.ShedOps == 0 {
		t.Fatal("backlog over MaxPending was not shed")
	}
	pending := 0
	for _, ops := range ol.pend {
		pending += len(ops)
	}
	if pending > 16 {
		t.Fatalf("pend after shed = %d, want ≤ MaxPending", pending)
	}
	if snap.WindowsViolation != 0 {
		t.Fatal("shedding must not manufacture verdicts")
	}
}

func TestOnlineStartStop(t *testing.T) {
	j := obs.NewJournal()
	tally := obs.NewLinz()
	ol := NewOnline(j, OnlineOptions{Interval: time.Millisecond, Tally: tally})
	ol.Start()
	ol.Start() // idempotent

	s := j.Source()
	kx := s.KeyID("x")
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for i := 0; i < 2000; i++ {
			inv := j.Now()
			s.Begin(inv)
			kind := obs.JWrite
			if i%2 == 1 {
				kind = obs.JRead
			} else {
				last = uint64(i)
			}
			s.Record(obs.Rec{Inv: inv, Res: j.Now() + 1, Key: kx, Kind: kind, Val: last})
		}
		s.Close()
	}()
	<-done
	ol.Stop()
	ol.Stop() // idempotent

	snap := tally.Snapshot()
	if snap.WindowsViolation != 0 {
		t.Fatalf("clean run violated: %+v", ol.FirstFailure())
	}
	if snap.OpsChecked != 2000 {
		t.Fatalf("ops checked = %d, want 2000 (final sweep must catch the tail)", snap.OpsChecked)
	}
}

func TestRenderTimeline(t *testing.T) {
	ops := []Op{
		wr(0, 1, 0, 60_000),
		wr(1, 2, 50_000, 90_000),
		rd(2, 2, 80_000, 110_000),
		rd(3, 1, 100_000, 130_000),
	}
	rep := CheckKey("x", known(0), ops, Options{})
	if rep.Verdict != Violation {
		t.Fatalf("setup: verdict = %v", rep.Verdict)
	}
	var sb strings.Builder
	if err := RenderTimeline(&rep.Failures[0], &sb); err != nil {
		t.Fatal(err)
	}
	html := sb.String()
	for _, want := range []string{
		"<!doctype html>",
		"client 3",
		`"culprit":true`,
		`"lin":true`,
		"const DATA =",
		"addEventListener('wheel'",
		"register <span",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("timeline missing %q", want)
		}
	}
	if strings.Contains(html, "</script></script>") {
		t.Fatal("script layout broken")
	}
	if err := RenderTimeline(nil, &sb); err == nil {
		t.Fatal("nil failure must error")
	}
}
