// Self-hosting: the analyzers run over this repository's own protocol
// packages and must come back clean. The packages listed are the ones the
// invariants are about — the register substrates, the protocol core, the
// observability shards, and the history they feed. A diagnostic here is
// either a real regression or a missing annotation; both belong in the
// diff that introduced them, not in a suppression list.
package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

var selfhostPkgs = []string{
	"repro/internal/history",
	"repro/internal/register",
	"repro/internal/obs",
	"repro/internal/core",
	"repro/internal/wire",
	"repro/internal/netreg",
	"repro/internal/loadgen",
	"repro/internal/linz",
}

func TestSelfHost(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analysis.All() {
		t.Run(a.Name, func(t *testing.T) {
			l := atest.NewLoader(map[string]string{"repro": root})
			diags := atest.Check(t, l, a, selfhostPkgs...)
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, l.Fset.Position(d.Pos), d.Message)
			}
		})
	}
}
