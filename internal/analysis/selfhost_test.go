// Self-hosting: the analyzers run over this repository's own packages and
// must come back clean. The packages listed are the ones the invariants
// are about — the register substrates, the protocol core, the
// observability shards, the history they feed — plus the analyzer suite
// itself, which has no excuse to fail its own checks. A diagnostic here is
// either a real regression or a missing annotation; both belong in the
// diff that introduced them, not in a suppression list. Offending
// positions are listed file:line so the regression is one click away.
package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

var selfhostPkgs = []string{
	"repro/internal/history",
	"repro/internal/register",
	"repro/internal/obs",
	"repro/internal/core",
	"repro/internal/wire",
	"repro/internal/netreg",
	"repro/internal/replica",
	"repro/internal/loadgen",
	"repro/internal/linz",
	"repro/internal/analysis",
	"repro/internal/analysis/atest",
	"repro/internal/analysis/ssair",
	"repro/internal/analysis/atomicmix",
	"repro/internal/analysis/waitfree",
	"repro/internal/analysis/seqlock",
	"repro/internal/analysis/obsshard",
	"repro/internal/analysis/allocfree",
	"repro/internal/analysis/lockorder",
	"repro/internal/analysis/sharedfield",
}

func TestSelfHost(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	// One loader for every analyzer: packages (and the standard library
	// under them) are typechecked once, ssair lowers each package once,
	// and facts accumulate in the shared store exactly as they would under
	// a real driver.
	l := atest.NewLoader(map[string]string{
		"repro":              root,
		"golang.org/x/tools": filepath.Join(root, "third_party", "golang.org", "x", "tools"),
	})
	for _, a := range analysis.All() {
		t.Run(a.Name, func(t *testing.T) {
			diags := atest.Check(t, l, a, selfhostPkgs...)
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, l.Fset.Position(d.Pos), d.Message)
			}
		})
	}
}
