package lockorder_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/lockorder"
)

// TestLockOrder checks the seeded cycles and blocking-under-lock sites,
// including the cross-package cycle in b that depends on a's exported
// facts.
func TestLockOrder(t *testing.T) {
	l := atest.Run(t, "testdata", lockorder.Analyzer, "a", "b")

	// Package a's contribution to the whole-program graph travels as a
	// LockEdges package fact; assert the edge set itself.
	var edges lockorder.LockEdges
	if !l.PackageFact("a", &edges) {
		t.Fatal("package a exported no LockEdges fact")
	}
	got := map[string]bool{}
	for _, e := range edges.Edges {
		got[e.From+"→"+e.To] = true
	}
	want := []string{
		"(a.pair).a→(a.pair).b",
		"(a.pair).b→(a.pair).a",
		"(a.rec).mu→(a.rec).mu",
		"(a.gate).inner→(a.gate).enter",
		"(a.gate).enter→(a.gate).inner",
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("LockEdges fact on a is missing edge %s (have %v)", w, got)
		}
	}

	// Per-function summaries travel as LockInfo object facts.
	facts := l.ObjectFacts(lockorder.Analyzer, "a")
	for fn, want := range map[string]string{
		"(*a.gate).lockInnerOnly": "acquires (a.gate).inner",
		"(*a.q).drain":            "blocks via channel receive",
		"(*a.Registry).Acquire":   "acquires (a.Registry).Mu",
	} {
		if got := facts[fn]; got != want {
			t.Errorf("LockInfo fact on %s = %q, want %q", fn, got, want)
		}
	}
}

// TestLockOrderCleanIdioms runs the known-clean idiom table: read→read
// cycles, consistent ordering with and without defer, TryLock probes, and
// select-with-default under a lock. Zero diagnostics expected.
func TestLockOrderCleanIdioms(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "clean")
}
