// Package a seeds lockorder violations: acquisition-order cycles (direct,
// transitive, and self), and blocking while holding a lock.
package a

import "sync"

type pair struct {
	a, b sync.Mutex
}

// lockAB and lockBA take the pair in opposite orders: each closes the
// cycle the other opens, so both acquisition sites are reported.
func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want `acquiring \(a\.pair\)\.b while holding \(a\.pair\)\.a completes a lock cycle: \(a\.pair\)\.a → \(a\.pair\)\.b → \(a\.pair\)\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want `acquiring \(a\.pair\)\.a while holding \(a\.pair\)\.b completes a lock cycle: \(a\.pair\)\.b → \(a\.pair\)\.a → \(a\.pair\)\.b`
	p.a.Unlock()
	p.b.Unlock()
}

type rec struct{ mu sync.Mutex }

// relock self-deadlocks: sync.Mutex is not reentrant.
func (r *rec) relock() {
	r.mu.Lock()
	r.mu.Lock() // want `acquiring \(a\.rec\)\.mu while holding \(a\.rec\)\.mu completes a lock cycle: \(a\.rec\)\.mu → \(a\.rec\)\.mu`
	r.mu.Unlock()
	r.mu.Unlock()
}

type gate struct {
	enter sync.Mutex
	inner sync.Mutex
}

// lockInner orders inner before enter; enterThen reaches inner through a
// callee's acquisition summary while holding enter — a transitive cycle,
// reported at the call site.
func (g *gate) lockInner() {
	g.inner.Lock()
	g.enter.Lock() // want `acquiring \(a\.gate\)\.enter while holding \(a\.gate\)\.inner completes a lock cycle: \(a\.gate\)\.inner → \(a\.gate\)\.enter → \(a\.gate\)\.inner`
	g.enter.Unlock()
	g.inner.Unlock()
}

func (g *gate) enterThen() {
	g.enter.Lock()
	g.lockInnerOnly() // want `acquiring \(a\.gate\)\.inner while holding \(a\.gate\)\.enter completes a lock cycle: \(a\.gate\)\.enter → \(a\.gate\)\.inner → \(a\.gate\)\.enter`
	g.enter.Unlock()
}

func (g *gate) lockInnerOnly() {
	g.inner.Lock()
	g.inner.Unlock()
}

type q struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

// sendLocked blocks on a channel inside the critical section.
func (s *q) sendLocked() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding \(a\.q\)\.mu`
	s.mu.Unlock()
}

// waitLocked waits on a WaitGroup inside the critical section.
func (s *q) waitLocked() {
	s.mu.Lock()
	s.wg.Wait() // want `\(\*sync\.WaitGroup\)\.Wait \(waits on a WaitGroup\) while holding \(a\.q\)\.mu`
	s.mu.Unlock()
}

// recvTransitively blocks through a callee carrying a blocking summary.
func (s *q) recvTransitively() {
	s.mu.Lock()
	s.drain() // want `\(\*a\.q\)\.drain → channel receive while holding \(a\.q\)\.mu`
	s.mu.Unlock()
}

func (s *q) drain() {
	<-s.ch
}

// Registry is exported (lock field included) so package b can build
// cross-package acquisition edges against it.
type Registry struct {
	Mu sync.Mutex
}

// Acquire carries its acquisition in a LockInfo fact for importers.
func (r *Registry) Acquire() { r.Mu.Lock() }

// Release frees what Acquire took.
func (r *Registry) Release() { r.Mu.Unlock() }

type double struct {
	outer sync.Mutex
	mu    sync.Mutex
	cond  *sync.Cond
}

// parkBoth waits on the cond with a second lock held: Wait releases only
// its own locker, so outer stays held across the park.
func (d *double) parkBoth(ready bool) {
	d.outer.Lock()
	d.mu.Lock()
	for !ready {
		d.cond.Wait() // want `\(\*sync\.Cond\)\.Wait \(waits on a condition variable\) while holding \(a\.double\)\.mu, \(a\.double\)\.outer`
	}
	d.mu.Unlock()
	d.outer.Unlock()
}

type slow struct {
	mu sync.Mutex
	ch chan int
}

// flush deliberately hands off under the lock; the stall is sanctioned by
// the escape hatch.
//
//bloom:allowblocking
func (s *slow) flush() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}
