// Package clean is the false-positive-resistance table for lockorder:
// known-clean locking idioms from the repository that must produce zero
// diagnostics.
package clean

import "sync"

type tree struct {
	parent sync.RWMutex
	child  sync.RWMutex
}

// readDown and readUp take read locks in opposite orders: a cycle whose
// every edge is read→read is exempt, because read locks of the paper's
// reader side admit each other.
func (t *tree) readDown() int {
	t.parent.RLock()
	defer t.parent.RUnlock()
	t.child.RLock()
	defer t.child.RUnlock()
	return 1
}

func (t *tree) readUp() int {
	t.child.RLock()
	defer t.child.RUnlock()
	t.parent.RLock()
	defer t.parent.RUnlock()
	return 2
}

type ordered struct {
	a, b sync.Mutex
}

// Both writers take a before b: a consistent order has no cycle, with or
// without defer.
func (o *ordered) deferred() {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	defer o.b.Unlock()
}

func (o *ordered) inline() {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

type opportunistic struct {
	a, b sync.Mutex
}

// tryReverse probes the reverse order with TryLock, which fails rather
// than waits: no edge, no cycle against forward().
func (o *opportunistic) forward() {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

func (o *opportunistic) tryReverse() bool {
	o.b.Lock()
	defer o.b.Unlock()
	if o.a.TryLock() {
		o.a.Unlock()
		return true
	}
	return false
}

type handoff struct {
	mu sync.Mutex
	ch chan int
}

// nonBlockingSend sends with a default arm: a select with default never
// waits, so doing it under the lock is fine.
func (h *handoff) nonBlockingSend() {
	h.mu.Lock()
	select {
	case h.ch <- 1:
	default:
	}
	h.mu.Unlock()
}

// unlockedSend blocks only after the critical section ends.
func (h *handoff) unlockedSend() {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- 1
}

type parking struct {
	mu   sync.Mutex
	cond *sync.Cond
	ok   bool
}

// park waits under exactly the cond's locker: Wait must be called with
// c.L held and releases it while parked, so this is the condition
// variable's required usage, not blocking under a lock.
func (p *parking) park() {
	p.mu.Lock()
	for !p.ok {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
