// Package b closes a lock cycle across a package boundary: one direction
// is a direct acquisition of a's exported lock, the other reaches it only
// through the LockInfo fact exported on a.Registry.Acquire.
package b

import (
	"sync"

	"a"
)

var mu sync.Mutex

// Forward acquires a's registry lock while holding b's — the edge exists
// only because Acquire's acquisition summary crossed the package boundary
// as a fact.
func Forward(r *a.Registry) {
	mu.Lock()
	r.Acquire() // want `acquiring \(a\.Registry\)\.Mu while holding b\.mu completes a lock cycle: b\.mu → \(a\.Registry\)\.Mu → b\.mu`
	r.Release()
	mu.Unlock()
}

// Backward takes the opposite order directly.
func Backward(r *a.Registry) {
	r.Mu.Lock()
	mu.Lock() // want `acquiring b\.mu while holding \(a\.Registry\)\.Mu completes a lock cycle: \(a\.Registry\)\.Mu → b\.mu → \(a\.Registry\)\.Mu`
	mu.Unlock()
	r.Mu.Unlock()
}
