// Package lockorder builds the whole-program lock-acquisition graph and
// rejects cycles and blocking while locked.
//
// The repo's server path is a small lattice of mutexes — the per-register
// writeMu, the flat-combining pendMu, the dedup windows, the journal
// gate, the client breaker — and its liveness argument is exactly "these
// are always taken in one order, and nothing waits while holding one".
// This analyzer makes that argument static:
//
//   - Every function is lowered to the ssair instruction stream, which
//     carries a must-hold lock set at each instruction. Acquiring lock B
//     (directly, or by calling a function that acquires B) while provably
//     holding lock A adds the edge A → B to the acquisition graph. Lock
//     identity is the mutex-typed struct field or variable, so the edge
//     (T).mu → (U).mu abstracts over instances.
//   - Edges travel across packages as LockEdges package facts and
//     per-function acquisition summaries travel as LockInfo object facts,
//     so the graph is whole-program under any fact-carrying driver.
//   - A cycle in the merged graph is a potential deadlock and is reported
//     at every local edge that participates in one. A cycle whose every
//     edge is read→read (RLock held, RLock acquired) is exempt: read
//     locks of the paper's reader side are mutually admissible.
//   - A blocking operation — channel send/receive, select without
//     default, or a call that transitively blocks (WaitGroup.Wait,
//     Cond.Wait, time.Sleep, Once.Do, or anything carrying a blocking
//     summary) — while provably holding any lock is reported: the
//     convoy that turns a microsecond critical section into a stall.
//     //bloom:allowblocking excuses a function, same hatch as waitfree.
//     One exception: a direct Cond.Wait with exactly one lock held is
//     the condition variable's required usage (Wait releases its locker
//     while parked) and is not reported; holding a second lock across
//     the wait still is.
//
// The must-hold set is an underapproximation (intersection at joins,
// TryLock never held), so every reported edge corresponds to a real
// syntactic hold — the analyzer under-claims rather than inventing
// cycles.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/ssair"
)

const markAllowBlocking = "//bloom:allowblocking"

// Analyzer reports lock-order cycles and blocking under locks.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "report lock-acquisition cycles and blocking calls made while holding a lock",
	Requires:  []*analysis.Analyzer{ssair.Analyzer},
	FactTypes: []analysis.Fact{(*LockInfo)(nil), (*LockEdges)(nil)},
	Run:       run,
}

// Acq is one lock a function may acquire, transitively.
type Acq struct {
	Key  string
	Read bool
}

// LockInfo summarizes a function for its callers: the locks it may
// acquire and, if it can block, one blocking chain.
type LockInfo struct {
	Acquires []Acq
	// BlocksChain is a call path to a blocking primitive, empty if the
	// function is not known to block.
	BlocksChain []string
}

// AFact marks LockInfo as a serializable analysis fact.
func (*LockInfo) AFact() {}

func (f *LockInfo) String() string {
	var parts []string
	if len(f.Acquires) > 0 {
		keys := make([]string, len(f.Acquires))
		for i, a := range f.Acquires {
			keys[i] = a.Key
			if a.Read {
				keys[i] += " (read)"
			}
		}
		parts = append(parts, "acquires "+strings.Join(keys, ", "))
	}
	if len(f.BlocksChain) > 0 {
		parts = append(parts, "blocks via "+strings.Join(f.BlocksChain, " → "))
	}
	return strings.Join(parts, "; ")
}

// Edge is one acquisition-order edge: To acquired while From held.
type Edge struct {
	From, To         string
	FromRead, ToRead bool
	Site             string // "pkg/file.go:line" of the acquisition
}

// LockEdges is the package fact carrying a package's contribution to the
// whole-program acquisition graph.
type LockEdges struct {
	Edges []Edge
}

// AFact marks LockEdges as a serializable analysis fact.
func (*LockEdges) AFact() {}

func (f *LockEdges) String() string {
	parts := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		parts[i] = e.From + "→" + e.To
	}
	return strings.Join(parts, " ")
}

// blockingCalls maps FullNames of stdlib primitives that wait.
var blockingCalls = map[string]string{
	"(*sync.WaitGroup).Wait": "waits on a WaitGroup",
	"(*sync.Cond).Wait":      "waits on a condition variable",
	"(*sync.Once).Do":        "may wait for a concurrent first call",
	"(sync.Locker).Lock":     "acquires a lock",
	"time.Sleep":             "sleeps",
}

// prependName prefixes a blocking chain with the callee's name, unless
// the chain already leads with it (the blockingCalls table embeds the
// name in its single element).
func prependName(name string, blocks []string) []string {
	if len(blocks) > 0 && strings.HasPrefix(blocks[0], name) {
		return blocks
	}
	return append([]string{name}, blocks...)
}

// localEdge is an edge with its in-package report position.
type localEdge struct {
	Edge
	pos token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	idx := pass.ResultOf[ssair.Analyzer].(*ssair.Index)

	type summary struct {
		acquires map[string]Acq
		blocks   []string // chain, nil if not blocking
	}
	sums := map[*ssair.Func]*summary{}
	excused := map[*ssair.Func]bool{}
	for _, f := range idx.Funcs {
		sums[f] = &summary{acquires: map[string]Acq{}}
		if f.Decl != nil && hasMarker(f.Decl.Doc, markAllowBlocking) {
			excused[f] = true
		}
	}
	// A literal inherits its parent's excuse: the annotation is on the
	// declared function the literal textually lives in.
	for _, f := range idx.Funcs {
		for p := f.Parent; p != nil; p = p.Parent {
			if excused[p] {
				excused[f] = true
			}
		}
	}

	// calleeInfo resolves a callee's acquisition/blocking summary from
	// the in-package fixpoint state or imported facts.
	calleeInfo := func(fn *types.Func) ([]Acq, []string, bool) {
		origin := fn.Origin()
		if reason, ok := blockingCalls[origin.FullName()]; ok {
			return nil, []string{origin.FullName() + " (" + reason + ")"}, true
		}
		if f, ok := idx.ByObj[origin]; ok {
			s := sums[f]
			var acqs []Acq
			for _, a := range s.acquires {
				acqs = append(acqs, a)
			}
			return acqs, s.blocks, true
		}
		if origin.Pkg() != nil && origin.Pkg() != pass.Pkg {
			var fact LockInfo
			if pass.ImportObjectFact(origin, &fact) {
				return fact.Acquires, fact.BlocksChain, true
			}
		}
		return nil, nil, false
	}

	// Fixpoint: a function's acquires/blocks grow from its own KLock and
	// KBlock instructions and from its callees' summaries.
	for {
		changed := false
		for _, f := range idx.Funcs {
			s := sums[f]
			add := func(a Acq) {
				if old, ok := s.acquires[a.Key]; !ok || (old.Read && !a.Read) {
					s.acquires[a.Key] = a
					changed = true
				}
			}
			setBlocks := func(chain []string) {
				if s.blocks == nil && !excused[f] {
					s.blocks = chain
					changed = true
				}
			}
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					ins := &b.Instrs[i]
					switch ins.Kind {
					case ssair.KLock:
						if ins.Lock != nil {
							add(Acq{Key: ssair.LockKey(ins.Lock), Read: ins.Read})
						}
					case ssair.KBlock:
						setBlocks([]string{ins.Reason})
					case ssair.KCall:
						var callees []*ssair.Func
						if ins.Closure != nil {
							callees = []*ssair.Func{ins.Closure}
						}
						if ins.Callee != nil {
							acqs, blocks, ok := calleeInfo(ins.Callee)
							if ok {
								for _, a := range acqs {
									add(a)
								}
								if blocks != nil {
									setBlocks(prependName(ins.Callee.Origin().FullName(), blocks))
								}
							}
							continue
						}
						for _, c := range callees {
							cs := sums[c]
							for _, a := range cs.acquires {
								add(a)
							}
							if cs.blocks != nil {
								setBlocks(append([]string{c.Name}, cs.blocks...))
							}
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Collect this package's edges and blocking-under-lock diagnostics.
	var edges []localEdge
	seenEdge := map[string]bool{}
	addEdge := func(from ssair.HeldLock, toKey string, toRead bool, pos token.Pos) {
		e := localEdge{
			Edge: Edge{
				From:     ssair.LockKey(from.Obj),
				FromRead: from.Read,
				To:       toKey,
				ToRead:   toRead,
				Site:     pass.Fset.Position(pos).String(),
			},
			pos: pos,
		}
		sig := e.From + "|" + e.To + "|" + fmt.Sprint(e.FromRead, e.ToRead)
		if !seenEdge[sig] {
			seenEdge[sig] = true
			edges = append(edges, e)
		}
	}

	type blockDiag struct {
		pos   token.Pos
		held  string
		chain string
	}
	var blockDiags []blockDiag

	for _, f := range idx.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				if len(ins.Held) == 0 {
					continue
				}
				switch ins.Kind {
				case ssair.KLock:
					if ins.Lock == nil {
						continue
					}
					toKey := ssair.LockKey(ins.Lock)
					for _, h := range ins.Held {
						addEdge(h, toKey, ins.Read, ins.Pos)
					}
				case ssair.KBlock:
					if !excused[f] {
						blockDiags = append(blockDiags, blockDiag{
							pos: ins.Pos, held: ssair.HeldKeys(ins.Held), chain: ins.Reason,
						})
					}
				case ssair.KCall:
					if ins.Callee == nil {
						continue
					}
					acqs, blocks, ok := calleeInfo(ins.Callee)
					if !ok {
						continue
					}
					for _, a := range acqs {
						for _, h := range ins.Held {
							addEdge(h, a.Key, a.Read, ins.Pos)
						}
					}
					if blocks != nil && !excused[f] {
						// A direct Cond.Wait with exactly one lock held is
						// the API's required usage: Wait must be called with
						// its locker held and releases it while parked, so
						// the single held lock is presumed to be c.L. Extra
						// locks stay held across the wait and are reported.
						if ins.Callee.Origin().FullName() == "(*sync.Cond).Wait" && len(ins.Held) == 1 {
							continue
						}
						chain := prependName(ins.Callee.Origin().FullName(), blocks)
						blockDiags = append(blockDiags, blockDiag{
							pos: ins.Pos, held: ssair.HeldKeys(ins.Held), chain: strings.Join(chain, " → "),
						})
					}
				}
			}
		}
	}

	// Merge imported packages' edges into the whole-program graph.
	graph := map[string][]Edge{}
	addToGraph := func(e Edge) { graph[e.From] = append(graph[e.From], e) }
	for _, e := range edges {
		addToGraph(e.Edge)
	}
	for _, pf := range pass.AllPackageFacts() {
		if le, ok := pf.Fact.(*LockEdges); ok {
			for _, e := range le.Edges {
				addToGraph(e)
			}
		}
	}

	// Report each local edge that closes a cycle: a path To ⇝ From exists
	// in the merged graph. A cycle made purely of read→read edges is
	// exempt.
	for _, e := range edges {
		if path, ok := findPath(graph, e.To, e.From); ok {
			cycle := append([]Edge{e.Edge}, path...)
			if allRead(cycle) {
				continue
			}
			pass.Reportf(e.pos, "acquiring %s while holding %s completes a lock cycle: %s",
				e.To, e.From, renderCycle(cycle))
		}
	}

	sort.Slice(blockDiags, func(i, j int) bool { return blockDiags[i].pos < blockDiags[j].pos })
	for _, d := range blockDiags {
		pass.Reportf(d.pos, "%s while holding %s", d.chain, d.held)
	}

	// Export facts: per-function summaries and the package's edge set.
	for _, f := range idx.Funcs {
		if f.Obj == nil {
			continue
		}
		s := sums[f]
		if len(s.acquires) == 0 && s.blocks == nil {
			continue
		}
		var acqs []Acq
		for _, a := range s.acquires {
			acqs = append(acqs, a)
		}
		sort.Slice(acqs, func(i, j int) bool { return acqs[i].Key < acqs[j].Key })
		pass.ExportObjectFact(f.Obj, &LockInfo{Acquires: acqs, BlocksChain: s.blocks})
	}
	if len(edges) > 0 {
		fe := &LockEdges{}
		for _, e := range edges {
			fe.Edges = append(fe.Edges, e.Edge)
		}
		sort.Slice(fe.Edges, func(i, j int) bool {
			return fe.Edges[i].From+fe.Edges[i].To < fe.Edges[j].From+fe.Edges[j].To
		})
		pass.ExportPackageFact(fe)
	}
	return nil, nil
}

// findPath reports a path from → to in the graph (from == to finds a
// self-loop only if an edge exists).
func findPath(graph map[string][]Edge, from, to string) ([]Edge, bool) {
	seen := map[string]bool{}
	var dfs func(at string) ([]Edge, bool)
	dfs = func(at string) ([]Edge, bool) {
		if seen[at] {
			return nil, false
		}
		seen[at] = true
		for _, e := range graph[at] {
			if e.To == to {
				return []Edge{e}, true
			}
			if rest, ok := dfs(e.To); ok {
				return append([]Edge{e}, rest...), true
			}
		}
		return nil, false
	}
	return dfs(from)
}

func allRead(cycle []Edge) bool {
	for _, e := range cycle {
		if !e.FromRead || !e.ToRead {
			return false
		}
	}
	return true
}

func renderCycle(cycle []Edge) string {
	parts := []string{cycle[0].From}
	for _, e := range cycle {
		parts = append(parts, e.To)
	}
	return strings.Join(parts, " → ")
}

// hasMarker reports whether the doc comment contains the marker as a
// standalone directive line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
