// Package a seeds waitfree violations: blocking primitives reachable from
// //bloom:waitfree annotated functions.
package a

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	ch = make(chan int)
)

//bloom:waitfree
func fastPath() int { // a clean root: no blocking anywhere
	return 42
}

//bloom:waitfree
func locksDirectly() {
	mu.Lock() // want `locksDirectly is annotated //bloom:waitfree but blocks: \(\*sync\.Mutex\)\.Lock \(acquires a mutex\)`
	mu.Unlock()
}

//bloom:waitfree
func sleepsTransitively() {
	helper() // want `sleepsTransitively is annotated //bloom:waitfree but blocks: a\.helper → time\.Sleep \(sleeps\)`
}

func helper() { time.Sleep(time.Millisecond) }

//bloom:waitfree
func sendsOnChannel() {
	ch <- 1 // want `blocks: channel send`
}

//bloom:waitfree
func receives() int {
	return <-ch // want `blocks: channel receive`
}

//bloom:waitfree
func selectsBlocking() {
	select { // want `blocks: select without default`
	case v := <-ch:
		_ = v
	case ch <- 2:
	}
}

//bloom:waitfree
func selectsNonBlocking() { // clean: a select with default never blocks
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// deliberateLock blocks by design; the annotation is the escape hatch that
// stops both reporting and propagation.
//
//bloom:allowblocking
func deliberateLock() {
	mu.Lock()
	mu.Unlock()
}

//bloom:waitfree
func usesEscapeHatch() { // clean: the blocking callee is //bloom:allowblocking
	deliberateLock()
}

func plainBlocking() { // unannotated blocking code is not a finding
	mu.Lock()
	mu.Unlock()
}

type gate struct{ once sync.Once }

//bloom:waitfree
func (g *gate) open() {
	g.once.Do(func() {}) // want `blocks: \(\*sync\.Once\)\.Do \(may wait for a concurrent first call\)`
}

//bloom:waitfree
func spawns() { // clean: the goroutine body blocks, the spawner does not
	go func() {
		<-ch
	}()
}

// Blocking is exported so package b can reach blocking code across the
// package boundary via the Blocks fact.
func Blocking() { time.Sleep(time.Millisecond) }
