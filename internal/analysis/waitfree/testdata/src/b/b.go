// Package b seeds a cross-package waitfree violation: the blocking sits in
// package a and arrives here through a Blocks fact.
package b

import "a"

//bloom:waitfree
func callsOtherPackage() {
	a.Blocking() // want `callsOtherPackage is annotated //bloom:waitfree but blocks: a\.Blocking → time\.Sleep \(sleeps\)`
}
