// Package waitfree checks that functions annotated //bloom:waitfree never
// block.
//
// The paper's construction is wait-free: a simulated operation is a fixed,
// finite sequence of real-register accesses — no locks, no waiting, no
// loops ("Constructing Two-Writer Atomic Registers", Section 5). The
// annotated roots are this repository's embodiment of that claim: the
// bookkeeping-free fast paths in internal/core and the lock-free substrate
// accesses in internal/register. The analyzer walks the static call graph
// from each root and reports any path that reaches a blocking primitive:
//
//   - channel operations: send, receive, range over a channel, and select
//     statements without a default clause;
//   - sync primitives: Mutex.Lock, RWMutex.Lock/RLock, Locker.Lock,
//     WaitGroup.Wait, Cond.Wait, Once.Do;
//   - time.Sleep.
//
// A function annotated //bloom:allowblocking is excused along with
// everything it calls — the escape hatch for code that blocks by design,
// such as the certifiable mutex substrate, whose whole point is to trade
// wait-freedom for a globally stamped critical section.
//
// The check is sound for the static call graph only: calls through
// interfaces and function values, and function literals, are not tracked
// (the certifiable-substrate arm of core's register dispatch is reached
// through exactly such an interface and is separately annotated). Blocking
// discovered in an imported package travels via Blocks facts, so a root in
// internal/core sees blocking introduced three packages away.
package waitfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Annotation markers, written on their own line in a function's doc
// comment.
const (
	markWaitFree      = "//bloom:waitfree"
	markAllowBlocking = "//bloom:allowblocking"
)

// Analyzer reports blocking primitives reachable from //bloom:waitfree
// functions.
var Analyzer = &analysis.Analyzer{
	Name:      "waitfree",
	Doc:       "report blocking calls reachable from //bloom:waitfree annotated functions",
	FactTypes: []analysis.Fact{(*Blocks)(nil)},
	Run:       run,
}

// Blocks is attached to a function through which a blocking primitive is
// reachable.
type Blocks struct {
	// Chain is the call path from the function to the primitive, e.g.
	// ["(*repro/internal/register.Atomic[int]).Read", "(*sync.Mutex).Lock"].
	Chain []string
}

// AFact marks Blocks as a serializable analysis fact.
func (*Blocks) AFact() {}

func (f *Blocks) String() string { return "blocks via " + strings.Join(f.Chain, " → ") }

// blockingCalls maps types.Func.FullName of known blocking functions and
// methods to a short reason.
var blockingCalls = map[string]string{
	"(*sync.Mutex).Lock":     "acquires a mutex",
	"(*sync.RWMutex).Lock":   "acquires a write lock",
	"(*sync.RWMutex).RLock":  "acquires a read lock",
	"(sync.Locker).Lock":     "acquires a lock",
	"(*sync.WaitGroup).Wait": "waits on a WaitGroup",
	"(*sync.Cond).Wait":      "waits on a condition variable",
	"(*sync.Once).Do":        "may wait for a concurrent first call",
	"time.Sleep":             "sleeps",
}

// culprit is one function's first discovered route to a blocking
// primitive: the in-function position that starts the route and the chain
// of callees below it.
type culprit struct {
	pos   token.Pos
	chain []string
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Collect this package's function declarations in source order, with
	// their annotations.
	type fnInfo struct {
		decl          *ast.FuncDecl
		fn            *types.Func
		waitFree      bool
		allowBlocking bool
	}
	var fns []*fnInfo
	byObj := map[*types.Func]*fnInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{
				decl:          fd,
				fn:            fn,
				waitFree:      hasMarker(fd.Doc, markWaitFree),
				allowBlocking: hasMarker(fd.Doc, markAllowBlocking),
			}
			fns = append(fns, info)
			byObj[fn] = info
		}
	}

	blocked := map[*types.Func]*culprit{}

	// directCulprit scans one function body for blocking primitives and
	// in-package/imported blocking callees, returning the first (in source
	// order) route to blocking, or nil. FuncLit subtrees are skipped: a
	// literal's execution context (inline, deferred, or a fresh goroutine)
	// is not tracked by the static call graph.
	scan := func(info *fnInfo) *culprit {
		var found *culprit
		report := func(pos token.Pos, chain ...string) {
			if found == nil || pos < found.pos {
				found = &culprit{pos: pos, chain: chain}
			}
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				report(n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				// The comm clauses belong to the select: with a default
				// clause the whole statement is non-blocking, so only the
				// clause bodies are scanned, not the channel operations.
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					report(n.Pos(), "select without default")
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, stmt := range cc.Body {
							ast.Inspect(stmt, visit)
						}
					}
				}
				return false
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(n.X.Pos(), "range over channel")
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn == nil {
					return true
				}
				// Generic instantiations share the origin's blocking
				// behavior; facts and the blocked map are keyed on it.
				origin := fn.Origin()
				if reason, ok := blockingCalls[origin.FullName()]; ok {
					report(n.Pos(), origin.FullName()+" ("+reason+")")
					return true
				}
				// In-package callee already known to block?
				if c, ok := blocked[origin]; ok {
					report(n.Pos(), append([]string{origin.FullName()}, c.chain...)...)
					return true
				}
				// Imported callee with a Blocks fact?
				if origin.Pkg() != nil && origin.Pkg() != pass.Pkg {
					var fact Blocks
					if pass.ImportObjectFact(origin, &fact) {
						report(n.Pos(), append([]string{origin.FullName()}, fact.Chain...)...)
					}
				}
			}
			return true
		}
		ast.Inspect(info.decl.Body, visit)
		return found
	}

	// Fixpoint over the in-package call graph. Each round scans every
	// not-yet-blocked, not-excused function; newly blocked functions make
	// their callers blocked in a later round. Bounded by the number of
	// functions.
	for {
		changed := false
		for _, info := range fns {
			if info.allowBlocking {
				continue
			}
			if _, done := blocked[info.fn]; done {
				continue
			}
			if c := scan(info); c != nil {
				blocked[info.fn] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Report at each annotated root, and export facts for everything else
	// so downstream packages inherit the result.
	for _, info := range fns {
		c, isBlocked := blocked[info.fn]
		if !isBlocked {
			continue
		}
		if info.waitFree {
			pass.Reportf(c.pos, "%s is annotated %s but blocks: %s",
				info.fn.Name(), markWaitFree, strings.Join(c.chain, " → "))
		}
		pass.ExportObjectFact(info.fn, &Blocks{Chain: c.chain})
	}
	return nil, nil
}

// hasMarker reports whether the doc comment contains the marker as a
// standalone directive line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// calleeFunc resolves the static callee of call: a declared function, a
// method on a concrete receiver, or an interface method (whose FullName
// still identifies it, e.g. (sync.Locker).Lock). Function values and
// builtins yield nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
