package waitfree_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/waitfree"
)

func TestWaitFree(t *testing.T) {
	atest.Run(t, "testdata", waitfree.Analyzer, "a", "b")
}
