package obsshard_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/obsshard"
)

func TestObsShard(t *testing.T) {
	atest.Run(t, "testdata", obsshard.Analyzer, "a")
}
