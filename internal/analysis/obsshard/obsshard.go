// Package obsshard checks the layout and handling of sharded counter
// structs (internal/obs's per-channel shards, internal/register's padded
// counters).
//
// The observability layer stays off the hot path's critical words by
// giving every channel its own cache-line-padded shard: recording is then
// a handful of uncontended atomic adds, and the wait-free cost claims
// measured in EXPERIMENTS.md survive having the observer attached. Two
// properties carry that design, and both die silently when violated:
//
//   - padding: a shard must end in a `_ [≥64]byte` pad (or have a total
//     size that is a multiple of 64 bytes), so adjacent shards in a slice
//     or array never share a cache line. Drop the pad and every recording
//     ping-pongs a line between channel goroutines — no test fails, the
//     benchmarks just quietly lose their shape.
//   - no copies: a shard holds atomic counters and must only move by
//     pointer. A by-value copy (assignment, range over a shard slice, a
//     value argument or receiver) snapshots the counters non-atomically
//     and detaches them from the live register — scrapers then read
//     frozen numbers.
//
// A struct participates if its name ends in "shard" or starts with
// "padded" (case-insensitive), or if its declaration carries a
// //bloom:sharded comment marker.
package obsshard

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// markSharded explicitly tags a struct as a sharded counter.
const markSharded = "//bloom:sharded"

// cacheLine is the assumed coherence granularity (the same constant as
// internal/register and internal/obs).
const cacheLine = 64

// Analyzer checks cache-line padding and pointer-only handling of shards.
var Analyzer = &analysis.Analyzer{
	Name:     "obsshard",
	Doc:      "check that sharded counters keep their cache-line padding and are never copied by value",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find sharded structs and check their padding.
	sharded := map[*types.TypeName]bool{}
	ins.WithStack([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		ts := n.(*ast.TypeSpec)
		if _, ok := ts.Type.(*ast.StructType); !ok {
			return false
		}
		if !isShardDecl(ts, stack) {
			return false
		}
		tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			return false
		}
		sharded[tn] = true
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return false
		}
		if !isPadded(pass, st) {
			pass.Reportf(ts.Name.Pos(),
				"sharded struct %s is not cache-line padded: it needs a trailing `_ [%d]byte` pad or a total size that is a multiple of %d bytes, or adjacent shards will false-share",
				ts.Name.Name, cacheLine, cacheLine)
		}
		return false
	})
	if len(sharded) == 0 {
		return nil, nil
	}

	isShardValue := func(t types.Type) (string, bool) {
		if t == nil {
			return "", false
		}
		if n, ok := t.(*types.Named); ok && sharded[n.Obj()] {
			return n.Obj().Name(), true
		}
		return "", false
	}

	// Pass 2: flag by-value copies.
	ins.Preorder([]ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.FuncDecl)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
					continue // initialization, not a copy of a live shard
				}
				if name, ok := isShardValue(pass.TypesInfo.TypeOf(rhs)); ok {
					pass.ReportRangef(rhs,
						"assignment copies shard %s by value, detaching its counters; take a pointer instead", name)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return
			}
			if name, ok := isShardValue(pass.TypesInfo.TypeOf(n.Value)); ok {
				pass.ReportRangef(n.Value,
					"range copies each %s by value; iterate by index and take &s[i]", name)
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if _, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
					continue
				}
				if name, ok := isShardValue(pass.TypesInfo.TypeOf(arg)); ok {
					pass.ReportRangef(arg,
						"call passes shard %s by value; pass a pointer instead", name)
				}
			}
		case *ast.FuncDecl:
			if n.Recv == nil || len(n.Recv.List) != 1 {
				return
			}
			if name, ok := isShardValue(pass.TypesInfo.TypeOf(n.Recv.List[0].Type)); ok {
				pass.Reportf(n.Recv.List[0].Type.Pos(),
					"method %s copies its %s receiver by value; use a pointer receiver", n.Name.Name, name)
			}
		}
	})
	return nil, nil
}

// isShardDecl reports whether the type spec declares a sharded struct: its
// name ends in "shard" or starts with "padded", or the declaration carries
// the //bloom:sharded marker (on the TypeSpec or its enclosing GenDecl).
func isShardDecl(ts *ast.TypeSpec, stack []ast.Node) bool {
	lower := strings.ToLower(ts.Name.Name)
	if strings.HasSuffix(lower, "shard") || strings.HasPrefix(lower, "padded") {
		return true
	}
	if hasMarker(ts.Doc) || hasMarker(ts.Comment) {
		return true
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if gd, ok := stack[i].(*ast.GenDecl); ok {
			return hasMarker(gd.Doc)
		}
	}
	return false
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == markSharded {
			return true
		}
	}
	return false
}

// isPadded reports whether the struct keeps adjacent elements of a
// shard array off each other's cache lines: either its last field is a
// blank byte-array pad of at least a cache line, or its total size is a
// multiple of the cache line (so the pad can be smaller, as in a padded
// counter that is exactly one line).
func isPadded(pass *analysis.Pass, st *types.Struct) bool {
	if n := st.NumFields(); n > 0 {
		last := st.Field(n - 1)
		if last.Name() == "_" {
			if arr, ok := last.Type().Underlying().(*types.Array); ok {
				if b, ok := arr.Elem().Underlying().(*types.Basic); ok &&
					b.Kind() == types.Byte && arr.Len() >= cacheLine {
					return true
				}
			}
		}
	}
	return pass.TypesSizes.Sizeof(st)%cacheLine == 0
}
