// Package a seeds obsshard violations: missing cache-line padding and
// by-value shard copies.
package a

import "sync/atomic"

type goodShard struct { // clean: trailing cache-line pad
	hits atomic.Int64
	miss atomic.Int64
	_    [64]byte
}

type bareShard struct { // want `sharded struct bareShard is not cache-line padded`
	hits atomic.Int64
}

type thinShard struct { // want `sharded struct thinShard is not cache-line padded`
	hits atomic.Int64
	_    [8]byte
}

type paddedCounter struct { // clean: exactly one cache line in total
	v atomic.Int64
	_ [56]byte
}

//bloom:sharded
type metrics struct { // want `sharded struct metrics is not cache-line padded`
	n atomic.Int64
}

type snapshot struct { // clean: not a shard, no constraints
	n int64
}

func totals(shards []goodShard) int64 {
	var sum int64
	for _, s := range shards { // want `range copies each goodShard by value`
		sum += s.hits.Load()
	}
	return sum
}

func totalsByPointer(shards []goodShard) int64 { // clean
	var sum int64
	for i := range shards {
		sum += shards[i].hits.Load()
	}
	return sum
}

func steal(shards []goodShard) int64 {
	s := shards[0] // want `assignment copies shard goodShard by value`
	return s.hits.Load()
}

func consume(s goodShard) int64 { return s.hits.Load() }

func caller(s *goodShard) int64 {
	return consume(*s) // want `call passes shard goodShard by value`
}

func (s goodShard) total() int64 { // want `method total copies its goodShard receiver by value`
	return s.hits.Load() + s.miss.Load()
}

func build() goodShard {
	s := goodShard{} // clean: composite-literal initialization
	return s
}
