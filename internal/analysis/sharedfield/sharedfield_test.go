package sharedfield_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/sharedfield"
)

// TestSharedField checks the seeded races: a plainly written field
// crossing a spawn boundary, atomic/plain mixing, a shared field inside a
// stored-and-spawned closure, and the //bloom:allowshared waiver.
func TestSharedField(t *testing.T) {
	atest.Run(t, "testdata", sharedfield.Analyzer, "a")
}

// TestSharedFieldCleanIdioms runs the known-clean discipline table:
// all-atomic, common-lock, per-goroutine confinement, publish-then-read,
// and locked-write/atomic-read. Zero diagnostics expected.
func TestSharedFieldCleanIdioms(t *testing.T) {
	atest.Run(t, "testdata", sharedfield.Analyzer, "clean")
}
