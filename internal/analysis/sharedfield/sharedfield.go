// Package sharedfield is a static race pass: a struct field reached from
// more than one goroutine context must be accessed either always
// atomically or always under one consistent lock.
//
// The -race detector only convicts schedules it happens to run; this
// analyzer convicts disciplines. It assigns every function a set of
// goroutine contexts and checks each field's accesses across them:
//
//   - Contexts are spawn sites. The synchronous context (package API,
//     tests, main) is one; every `go` statement is another, identified by
//     its position. `go` targets are resolved through function literals,
//     static calls, and stored closures (a func-typed variable or field
//     assigned a literal earlier). Contexts flow caller → callee over the
//     in-package call graph; a literal created in value position (a
//     stored callback) inherits its creator's contexts. Exported
//     functions always carry the synchronous context — any importer can
//     call them. Functions declared in _test.go files are invisible to
//     the analysis — they open no context (neither their spawns nor
//     their synchronous calls), and their own field accesses are not
//     collected: test harnesses deliberately hammer structures from
//     extra goroutines and call unexported internals directly, the
//     verdict is about the package's own discipline, and ignoring the
//     test variant wholesale keeps `go vet` (which analyzes it) in
//     agreement with the test loader (which never loads test files).
//   - A field of a struct declared in this package is *shared* when its
//     non-initialization accesses span two or more contexts. The analysis
//     is instance-blind: one spawn site looping `go s.serve(conn)` is a
//     single context, so per-connection state confined to its own
//     goroutine stays clean.
//   - Initialization is exempt: accesses rooted at a local freshly bound
//     to &T{...} / new(T) / T{...} happen before the value is published.
//     So are accesses rooted at a by-value local, parameter, or receiver:
//     those touch a stack copy ((cfg Config) withDefaults() normalizing
//     its own copy is the idiom), not shared storage.
//   - A shared field passes when all accesses are atomic (sync/atomic
//     package calls on &s.f or methods of an atomic.X-typed field), when
//     every access site provably holds one common lock (the ssair
//     must-hold set), or when no access after initialization writes —
//     publish-then-read-only is a discipline too. Everything else — plain
//     writes, atomic/plain mixing, lock-here-but-not-there — is reported.
//
// //bloom:allowshared on a field's comment (or on its struct type's doc
// comment, covering every field) waives the check: the escape hatch for
// ownership-handoff protocols like the flat-combining write batch, where
// a record is mutated only before publication and after retirement and
// no static discipline describes that exchange.
//
// The pass is per-package: sharing introduced by another package's
// goroutines calling into this one is out of scope (atomicmix covers
// cross-package atomic/plain mixing), so a clean report under-claims
// rather than inventing races.
package sharedfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/ssair"
)

const markAllowShared = "//bloom:allowshared"

// syncCtx is the synchronous (non-spawned) goroutine context.
const syncCtx = "sync"

// Analyzer reports struct fields shared across goroutine contexts
// without a consistent access discipline.
var Analyzer = &analysis.Analyzer{
	Name:     "sharedfield",
	Doc:      "report struct fields reached from multiple goroutines without an atomic-or-locked discipline",
	Requires: []*analysis.Analyzer{ssair.Analyzer},
	Run:      run,
}

// access is one field touch.
type access struct {
	fn     *ssair.Func
	pos    token.Pos
	write  bool
	atomic bool
	addr   bool
	held   []string // lock keys provably held
}

func run(pass *analysis.Pass) (interface{}, error) {
	idx := pass.ResultOf[ssair.Analyzer].(*ssair.Index)

	waived := collectWaivers(pass)

	// ---- goroutine context assignment ----

	ctxs := map[*ssair.Func]map[string]bool{}
	for _, f := range idx.Funcs {
		ctxs[f] = map[string]bool{}
	}
	addCtx := func(f *ssair.Func, c string) bool {
		if f == nil || ctxs[f][c] {
			return false
		}
		ctxs[f][c] = true
		return true
	}

	// Functions declared in _test.go files are invisible throughout: no
	// spawn contexts, no synchronous-root or call-graph contribution, no
	// collected accesses. The verdict is about the package's own
	// concurrency discipline — tests deliberately hammer structures from
	// extra goroutines and call unexported internals directly (an
	// exported Test function would otherwise act as a fresh synchronous
	// root and convict fields its package never shares). Ignoring the
	// test variant wholesale keeps `go vet` (which analyzes it) in
	// agreement with the test loader (which never loads test files).
	inTest := func(f *ssair.Func) bool {
		var pos token.Pos
		switch {
		case f.Decl != nil:
			pos = f.Decl.Pos()
		case f.Lit != nil:
			pos = f.Lit.Pos()
		default:
			return false
		}
		return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
	}

	// Spawn-site scan: resolve every `go` statement's targets.
	spawned := map[*ssair.Func]bool{}
	storedLits := collectStoredClosures(pass, idx)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			site := "go@" + pass.Fset.Position(g.Pos()).String()
			for _, f := range spawnTargets(pass, idx, storedLits, g.Call) {
				addCtx(f, site)
				spawned[f] = true
			}
			return true
		})
	}

	// Synchronous roots: exported functions, and declared functions with
	// no in-package synchronous caller and no spawn site (entry points
	// for tests, main, and importers).
	callees := map[*ssair.Func][]*ssair.Func{} // synchronous edges
	hasSyncCaller := map[*ssair.Func]bool{}
	for _, f := range idx.Funcs {
		if inTest(f) {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				switch ins.Kind {
				case ssair.KCall:
					var g *ssair.Func
					if ins.Closure != nil {
						g = ins.Closure
					} else if ins.Callee != nil {
						g = idx.ByObj[ins.Callee.Origin()]
					}
					if g != nil {
						callees[f] = append(callees[f], g)
						hasSyncCaller[g] = true
					}
				case ssair.KClosure:
					// A stored callback runs somewhere; approximate with
					// its creator's contexts.
					callees[f] = append(callees[f], ins.Closure)
					hasSyncCaller[ins.Closure] = true
				}
			}
		}
	}
	for _, f := range idx.Funcs {
		if inTest(f) {
			continue
		}
		if f.Obj != nil && (f.Obj.Exported() || (!hasSyncCaller[f] && !spawned[f])) {
			addCtx(f, syncCtx)
		}
	}

	// Propagate contexts caller → callee to fixpoint.
	for {
		changed := false
		for _, f := range idx.Funcs {
			for _, g := range callees[f] {
				for c := range ctxs[f] {
					if addCtx(g, c) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// ---- field access collection ----

	accesses := map[*types.Var][]access{}
	for _, f := range idx.Funcs {
		if inTest(f) {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				if ins.Kind != ssair.KField || ins.Field == nil {
					continue
				}
				if ins.Field.Pkg() != pass.Pkg || waived[ins.Field] {
					continue
				}
				if ins.Base != nil && f.FreshLocals[ins.Base] {
					continue // initializing a not-yet-published value
				}
				if isValueCopyBase(ins.Base) {
					continue // touches a by-value stack copy, not shared storage
				}
				var held []string
				for _, h := range ins.Held {
					held = append(held, ssair.LockKey(h.Obj))
				}
				accesses[ins.Field] = append(accesses[ins.Field], access{
					fn: f, pos: ins.Pos, write: ins.Write, atomic: ins.Atomic, addr: ins.Addr, held: held,
				})
			}
		}
	}

	// ---- per-field discipline check ----

	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding

	for field, accs := range accesses {
		fieldCtxs := map[string]bool{}
		for _, a := range accs {
			for c := range ctxs[a.fn] {
				fieldCtxs[c] = true
			}
		}
		if len(fieldCtxs) < 2 {
			continue // confined to one goroutine context
		}

		allAtomic, anyAtomic, anyWrite := true, false, false
		for _, a := range accs {
			if a.atomic {
				anyAtomic = true
			} else {
				allAtomic = false
			}
			if a.write {
				anyWrite = true
			}
		}
		if allAtomic {
			continue
		}
		if !anyWrite {
			continue // published once, read-only afterwards
		}

		// One common lock across every plain access? (Atomic accesses
		// need no lock: locked plain writes with atomic fast-path reads
		// is a sanctioned double-checked idiom.)
		var common map[string]bool
		for _, a := range accs {
			if a.atomic {
				continue
			}
			if common == nil {
				common = map[string]bool{}
				for _, k := range a.held {
					common[k] = true
				}
				continue
			}
			next := map[string]bool{}
			for _, k := range a.held {
				if common[k] {
					next[k] = true
				}
			}
			common = next
		}
		if len(common) > 0 {
			continue
		}

		// Report at the first lockless plain access.
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		at, what := accs[0].pos, describe(accs[0])
		for _, a := range accs {
			if !a.atomic && len(a.held) == 0 {
				at, what = a.pos, describe(a)
				break
			}
		}
		detail := "accesses must be all-atomic or share one lock"
		if anyAtomic {
			detail = "mixes atomic and plain access"
		}
		findings = append(findings, finding{
			pos: at,
			msg: "field " + ownerName(field) + "." + field.Name() + " is reached from " +
				strconv.Itoa(len(fieldCtxs)) + " goroutine contexts but " + what + "; " + detail +
				" (" + markAllowShared + " to waive)",
		})
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil, nil
}

// isValueCopyBase reports whether an access roots at a function-local
// variable — parameter, receiver, or local — of value (non-pointer) type:
// base.field then addresses a stack copy, so mutating it cannot race.
// The by-value options idiom, (cfg Config) withDefaults() normalizing its
// own copy, is the common instance.
func isValueCopyBase(base types.Object) bool {
	v, ok := base.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == nil || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		return false // package-level storage is shared
	}
	_, isPtr := v.Type().Underlying().(*types.Pointer)
	return !isPtr
}

func describe(a access) string {
	switch {
	case a.addr:
		return "its address escapes here"
	case a.write:
		return "is written plainly here"
	default:
		return "is read plainly here"
	}
}

func ownerName(field *types.Var) string {
	if owner := ssair.OwnerName(field); owner != "" {
		return owner
	}
	return "(?)"
}

// collectWaivers finds fields waived by //bloom:allowshared: on the
// field's own comment, or on its struct type's doc comment.
func collectWaivers(pass *analysis.Pass) map[*types.Var]bool {
	waived := map[*types.Var]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				typeWaived := hasMarker(gd.Doc, markAllowShared) || hasMarker(ts.Doc, markAllowShared) ||
					hasMarker(ts.Comment, markAllowShared)
				for _, f := range st.Fields.List {
					if !typeWaived && !hasMarker(f.Doc, markAllowShared) && !hasMarker(f.Comment, markAllowShared) {
						continue
					}
					for _, name := range f.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							waived[v] = true
						}
					}
				}
			}
		}
	}
	return waived
}

// collectStoredClosures maps func-typed variables and fields to the
// function literals assigned to them anywhere in the package, for
// resolving `go x.fn()` spawns through stored closures.
func collectStoredClosures(pass *analysis.Pass, idx *ssair.Index) map[types.Object][]*ssair.Func {
	stored := map[types.Object][]*ssair.Func{}
	record := func(obj types.Object, rhs ast.Expr) {
		if obj == nil {
			return
		}
		if lit, ok := stripParens(rhs).(*ast.FuncLit); ok {
			if f := idx.ByLit[lit]; f != nil {
				stored[obj] = append(stored[obj], f)
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						record(lhsObject(pass, s.Lhs[i]), s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						record(pass.TypesInfo.Defs[name], s.Values[i])
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := s.Key.(*ast.Ident); ok {
					record(pass.TypesInfo.Uses[id], s.Value)
				}
			}
			return true
		})
	}
	return stored
}

func lhsObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch e := stripParens(lhs).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

// spawnTargets resolves the functions a `go` call may run.
func spawnTargets(pass *analysis.Pass, idx *ssair.Index, stored map[types.Object][]*ssair.Func, call *ast.CallExpr) []*ssair.Func {
	switch fun := stripParens(call.Fun).(type) {
	case *ast.FuncLit:
		if f := idx.ByLit[fun]; f != nil {
			return []*ssair.Func{f}
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if f := idx.ByObj[fn.Origin()]; f != nil {
				return []*ssair.Func{f}
			}
			return nil
		}
		return stored[pass.TypesInfo.ObjectOf(fun)]
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if f := idx.ByObj[fn.Origin()]; f != nil {
				return []*ssair.Func{f}
			}
			return nil
		}
		return stored[pass.TypesInfo.ObjectOf(fun.Sel)]
	}
	return nil
}

func stripParens(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// hasMarker reports whether the comment group contains the marker as a
// standalone directive line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
