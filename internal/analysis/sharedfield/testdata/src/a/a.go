// Package a seeds sharedfield violations: struct fields reached from
// multiple goroutine contexts without an atomic or locked discipline.
package a

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // written plainly by the spawned loop, read by exported N
	m  int // always under mu: clean
}

// New initializes a fresh local before publication: exempt.
func New() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// Start spawns the loop goroutine; loop's context is the spawn site.
func (c *counter) Start() {
	go c.loop()
}

func (c *counter) loop() {
	for {
		c.n++ // want `field counter\.n is reached from 2 goroutine contexts but is written plainly here; accesses must be all-atomic or share one lock \(//bloom:allowshared to waive\)`
		c.mu.Lock()
		c.m++
		c.mu.Unlock()
	}
}

// Inc touches m only under mu, sharing the discipline with loop.
func (c *counter) Inc() {
	c.mu.Lock()
	c.m++
	c.mu.Unlock()
}

// N reads n plainly from the synchronous context.
func (c *counter) N() int {
	return c.n
}

type flag struct {
	raw int32 // stored atomically, but read plainly by the watcher
}

// Set stores atomically — but watch reads plainly, so the discipline is
// mixed and the atomic store protects nothing.
func (f *flag) Set() {
	atomic.StoreInt32(&f.raw, 1)
}

func (f *flag) Watch() {
	go f.watch()
}

func (f *flag) watch() {
	for f.raw == 0 { // want `field flag\.raw is reached from 2 goroutine contexts but is read plainly here; mixes atomic and plain access \(//bloom:allowshared to waive\)`
	}
}

type worker struct {
	n  int
	fn func()
}

// Setup stores a closure and spawns it through the field: the literal
// carries both its creator's synchronous context and the spawn site.
func (w *worker) Setup() {
	w.fn = func() {
		w.n++ // want `field worker\.n is reached from 2 goroutine contexts but is written plainly here; accesses must be all-atomic or share one lock \(//bloom:allowshared to waive\)`
	}
	go w.fn()
}

type batch struct {
	// val is mutated only before publication and after retirement; the
	// ownership-handoff protocol is the discipline, waived explicitly.
	//
	//bloom:allowshared
	val int
}

// Fill writes plainly from the synchronous context.
func Fill(b *batch) {
	b.val = 1
}

// Publish reads from a spawned goroutine; only the waiver keeps this
// quiet.
func Publish(b *batch) {
	go func() {
		_ = b.val
	}()
}
