// Package clean is the false-positive-resistance table for sharedfield:
// known-clean sharing disciplines from the repository that must produce
// zero diagnostics.
package clean

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	v atomic.Int64
}

// Every access to v is atomic: the all-atomic discipline.
func (g *gauge) Inc()   { g.v.Add(1) }
func (g *gauge) Watch() { go g.watch() }
func (g *gauge) watch() { _ = g.v.Load() }

type table struct {
	mu sync.Mutex
	m  int
}

// Every access to m holds mu: the common-lock discipline.
func (t *table) Put() {
	t.mu.Lock()
	t.m++
	t.mu.Unlock()
}

func (t *table) Run() { go t.drain() }

func (t *table) drain() {
	t.mu.Lock()
	t.m--
	t.mu.Unlock()
}

type conn struct {
	seq int
}

// Serve spawns one goroutine per connection, but seq is touched only by
// that connection's own goroutine: one spawn site is one context, so
// per-connection state stays confined.
func Serve() {
	for i := 0; i < 4; i++ {
		c := &conn{}
		go c.run()
	}
}

func (c *conn) run() {
	for i := 0; i < 3; i++ {
		c.seq++
	}
}

type config struct {
	limit int
}

// Load writes limit only while the value is a fresh unpublished local;
// afterwards every context only reads: publish-then-read-only.
func Load() *config {
	c := &config{}
	c.limit = 8
	return c
}

func (c *config) Limit() int { return c.limit }
func (c *config) Spawn()     { go c.report() }
func (c *config) report()    { _ = c.limit }

type fastpath struct {
	mu    sync.Mutex
	ready int32
}

// Set writes under the lock and readers poll atomically: the
// double-checked idiom — atomic accesses need no lock.
func (f *fastpath) Set() {
	f.mu.Lock()
	atomic.StoreInt32(&f.ready, 1)
	f.mu.Unlock()
}

func (f *fastpath) Poll() { go f.poll() }
func (f *fastpath) poll() { _ = atomic.LoadInt32(&f.ready) }
