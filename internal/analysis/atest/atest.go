// Package atest is a self-contained harness for the bloomvet analyzers —
// an offline stand-in for golang.org/x/tools/go/analysis/analysistest,
// which is not part of the x/tools subset vendored from the Go
// distribution (third_party/golang.org/x/tools).
//
// It loads packages with go/parser and go/types directly (standard-library
// imports are typechecked from GOROOT source, module-internal imports from
// the repository tree, testdata imports from the analyzer's testdata/src
// directory), runs an analyzer and its Requires prerequisites in
// dependency order with an in-memory fact store, and checks reported
// diagnostics against analysistest-style `// want "regexp"` comments.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Loader loads and typechecks packages for analysis. A single Loader
// caches packages and facts across Run/Check calls, so a dependency (and
// the standard library underneath it) is typechecked once per Loader.
type Loader struct {
	Fset *token.FileSet

	// roots maps an import-path prefix to the directory holding its
	// packages; the longest matching prefix wins. The empty prefix serves
	// testdata imports ("a" → <dir>/a).
	roots []root

	std   types.Importer
	pkgs  map[string]*pkg
	facts *factStore
}

type root struct {
	prefix string
	dir    string
}

type pkg struct {
	path  string
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
	// results memoizes analyzer runs: analyzer → result.
	results map[*analysis.Analyzer]interface{}
	// diags collects the diagnostics each analyzer reported on this
	// package.
	diags map[*analysis.Analyzer][]analysis.Diagnostic
}

// NewLoader returns a loader that resolves each prefix from the paired
// directory (see Loader.roots) and everything else from GOROOT source.
func NewLoader(prefixDirs map[string]string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  map[string]*pkg{},
		facts: newFactStore(),
	}
	for prefix, dir := range prefixDirs {
		l.roots = append(l.roots, root{prefix: prefix, dir: dir})
	}
	// Longest prefix first.
	sort.Slice(l.roots, func(i, j int) bool { return len(l.roots[i].prefix) > len(l.roots[j].prefix) })
	return l
}

// Import implements types.Importer over the loader's roots, falling back
// to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	for _, r := range l.roots {
		var rel string
		switch {
		case r.prefix == "" && !strings.Contains(path, "."):
			rel = path
		case path == r.prefix:
			rel = "."
		case strings.HasPrefix(path, r.prefix+"/"):
			rel = strings.TrimPrefix(path, r.prefix+"/")
		default:
			continue
		}
		dir := filepath.Join(r.dir, filepath.FromSlash(rel))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			p, err := l.load(path, dir)
			if err != nil {
				return nil, err
			}
			return p.tpkg, nil
		}
	}
	return l.std.Import(path)
}

// load parses and typechecks the package in dir (memoized by import path).
func (l *Loader) load(path, dir string) (*pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("atest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := &types.Config{Importer: l, Sizes: sizes()}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("atest: typechecking %s: %v", path, err)
	}
	p := &pkg{
		path:    path,
		files:   files,
		tpkg:    tpkg,
		info:    info,
		results: map[*analysis.Analyzer]interface{}{},
		diags:   map[*analysis.Analyzer][]analysis.Diagnostic{},
	}
	l.pkgs[path] = p
	return p, nil
}

func sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// run applies a (and, first, its Requires closure and its fact passes over
// dependencies) to the package, memoized.
func (l *Loader) run(a *analysis.Analyzer, p *pkg) (interface{}, error) {
	if res, ok := p.results[a]; ok {
		return res, nil
	}
	// Fact-producing analyzers must have run over the package's loaded
	// dependencies first (the "vertical" dependency).
	if len(a.FactTypes) > 0 {
		for _, imp := range p.tpkg.Imports() {
			if dep, ok := l.pkgs[imp.Path()]; ok {
				if _, err := l.run(a, dep); err != nil {
					return nil, err
				}
			}
		}
	}
	resultOf := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		res, err := l.run(req, p)
		if err != nil {
			return nil, err
		}
		resultOf[req] = res
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.Fset,
		Files:      p.files,
		Pkg:        p.tpkg,
		TypesInfo:  p.info,
		TypesSizes: sizes(),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			p.diags[a] = append(p.diags[a], d)
		},
		ReadFile:          os.ReadFile,
		ImportObjectFact:  l.facts.importObjectFact,
		ExportObjectFact:  l.facts.exportObjectFact,
		ImportPackageFact: l.facts.importPackageFact,
		ExportPackageFact: func(f analysis.Fact) { l.facts.exportPackageFact(p.tpkg, f) },
		AllObjectFacts:    func() []analysis.ObjectFact { return l.facts.allObjectFacts(a) },
		AllPackageFacts:   func() []analysis.PackageFact { return l.facts.allPackageFacts(a) },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, fmt.Errorf("atest: %s on %s: %v", a.Name, p.path, err)
	}
	if a.ResultType != nil && res != nil && reflect.TypeOf(res) != a.ResultType {
		return nil, fmt.Errorf("atest: %s returned %T, want %v", a.Name, res, a.ResultType)
	}
	p.results[a] = res
	return res, nil
}

// factStore is the in-memory fact table shared by all packages of one
// Loader (the moral equivalent of the .facts files a real driver writes).
type factStore struct {
	obj map[types.Object]map[reflect.Type]analysis.Fact
	pkg map[*types.Package]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[types.Object]map[reflect.Type]analysis.Fact{},
		pkg: map[*types.Package]map[reflect.Type]analysis.Fact{},
	}
}

func (s *factStore) exportObjectFact(obj types.Object, f analysis.Fact) {
	m := s.obj[obj]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		s.obj[obj] = m
	}
	m[reflect.TypeOf(f)] = f
}

func (s *factStore) importObjectFact(obj types.Object, f analysis.Fact) bool {
	stored, ok := s.obj[obj][reflect.TypeOf(f)]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (s *factStore) exportPackageFact(p *types.Package, f analysis.Fact) {
	m := s.pkg[p]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		s.pkg[p] = m
	}
	m[reflect.TypeOf(f)] = f
}

func (s *factStore) importPackageFact(p *types.Package, f analysis.Fact) bool {
	stored, ok := s.pkg[p][reflect.TypeOf(f)]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (s *factStore) allObjectFacts(a *analysis.Analyzer) []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, m := range s.obj {
		for _, ft := range a.FactTypes {
			if f, ok := m[reflect.TypeOf(ft)]; ok {
				out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
			}
		}
	}
	return out
}

func (s *factStore) allPackageFacts(a *analysis.Analyzer) []analysis.PackageFact {
	var out []analysis.PackageFact
	for p, m := range s.pkg {
		for _, ft := range a.FactTypes {
			if f, ok := m[reflect.TypeOf(ft)]; ok {
				out = append(out, analysis.PackageFact{Package: p, Fact: f})
			}
		}
	}
	return out
}

// Run loads testdata/src/<path> for each given package path, applies the
// analyzer to each in order, and checks its diagnostics against the
// `// want "regexp"` comments in those packages' sources. testdata is the
// analyzer's testdata directory (containing src/). The loader is returned
// so the test can additionally assert exported facts.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) *Loader {
	t.Helper()
	srcdir := filepath.Join(testdata, "src")
	l := NewLoader(map[string]string{"": srcdir})
	for _, path := range paths {
		p, err := l.load(path, filepath.Join(srcdir, filepath.FromSlash(path)))
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		if _, err := l.run(a, p); err != nil {
			t.Fatal(err)
		}
		checkWants(t, l, a, p)
	}
	return l
}

// Analyze loads the package at the import path through the loader's roots,
// applies the analyzer (with its Requires closure and fact passes over
// loaded dependencies), and returns its diagnostics. It is the
// testing-free entry point used by the cmd/bloomvet standalone driver.
func (l *Loader) Analyze(a *analysis.Analyzer, path string) ([]analysis.Diagnostic, error) {
	tp, err := l.Import(path)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %v", path, err)
	}
	p, ok := l.pkgs[tp.Path()]
	if !ok {
		return nil, fmt.Errorf("loading %s: resolved outside the loader roots", path)
	}
	if _, err := l.run(a, p); err != nil {
		return nil, err
	}
	return p.diags[a], nil
}

// Check loads the given packages from their prefix roots, applies the
// analyzer, and returns every diagnostic it reported; it fails the test on
// load or analysis errors. Use it for self-hosting runs where the expected
// diagnostic set is empty.
func Check(t *testing.T, l *Loader, a *analysis.Analyzer, paths ...string) []analysis.Diagnostic {
	t.Helper()
	var out []analysis.Diagnostic
	for _, path := range paths {
		diags, err := l.Analyze(a, path)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diags...)
	}
	return out
}

// ObjectFacts returns the facts the analyzer exported on objects of the
// package with the given import path, rendered by their String method and
// keyed by the object's name (method facts are keyed by the
// types.Func.FullName form, e.g. "(*a.T).m"). It lets tests assert the
// facts an analyzer exports — the package-boundary currency — rather than
// only its diagnostics.
func (l *Loader) ObjectFacts(a *analysis.Analyzer, path string) map[string]string {
	out := map[string]string{}
	for _, of := range l.facts.allObjectFacts(a) {
		if of.Object.Pkg() == nil || of.Object.Pkg().Path() != path {
			continue
		}
		key := of.Object.Name()
		if fn, ok := of.Object.(*types.Func); ok {
			key = fn.FullName()
		}
		out[key] = fmt.Sprint(of.Fact)
	}
	return out
}

// PackageFact copies the analyzer-namespaced package fact of the package
// with the given import path into f, reporting whether one was exported.
// The package must already have been loaded by this Loader.
func (l *Loader) PackageFact(path string, f analysis.Fact) bool {
	p, ok := l.pkgs[path]
	if !ok {
		return false
	}
	return l.facts.importPackageFact(p.tpkg, f)
}

// wantRe extracts the quoted regexps of a `// want "..." "..."` comment;
// both double-quoted and backquoted patterns are accepted, as in
// analysistest.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants compares the analyzer's diagnostics on p against the `// want`
// comments in p's files.
func checkWants(t *testing.T, l *Loader, a *analysis.Analyzer, p *pkg) {
	t.Helper()
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	expects := map[string][]*expectation{} // "file:line" → expectations
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRe.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					expects[key] = append(expects[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range p.diags[a] {
		pos := l.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, e := range expects[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}
