// Package atomicmix reports words that are accessed both through
// sync/atomic and through plain loads and stores.
//
// The real registers (internal/register) realize Lamport's atomic-register
// contract only if every access to a shared word goes through one
// serialization mechanism. A word that is sometimes read with
// atomic.LoadUint64 and sometimes with a plain dereference has no such
// mechanism: the plain access can tear, be reordered, or be hoisted out of
// a loop, and no schedule-replaying test is guaranteed to catch it. The
// analyzer therefore enforces the all-or-nothing rule: once any site
// touches a variable through sync/atomic, every site must.
//
// Tracking is by object (struct field or variable). A use inside a
// composite literal key (initialization before publication, e.g.
// &S{ctr: 1}) is exempt — the value is not shared yet. Cross-package
// mixing is caught through facts: a package that accesses its own words
// atomically exports an AtomicWord fact per word, and downstream plain
// accesses of those words are flagged wherever they occur in the module.
//
// Fields of the typed atomics (atomic.Uint64, atomic.Pointer, ...) need no
// analysis: their only access path is their methods, which is why the
// hot-path code in this repository prefers them. The analyzer exists for
// the places where plain words are unavoidable — and for regressions that
// would quietly mix the two styles.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer flags mixed plain/atomic access to the same word.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "report words accessed both through sync/atomic and through plain loads/stores",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*AtomicWord)(nil)},
	Run:       run,
}

// AtomicWord is attached to a variable (struct field or package-level var)
// that is accessed through sync/atomic somewhere in its defining package.
type AtomicWord struct {
	// At is the position of one atomic access, for diagnostics.
	At string
}

// AFact marks AtomicWord as a serializable analysis fact.
func (*AtomicWord) AFact() {}

func (f *AtomicWord) String() string { return "atomic word (e.g. at " + f.At + ")" }

// atomicFuncs are the sync/atomic free functions whose first argument is
// the address of the word being accessed.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Words known to be atomic: seeded with facts from imported packages,
	// extended by this package's own atomic call sites.
	atomicAt := map[types.Object]string{}
	for _, of := range pass.AllObjectFacts() {
		if f, ok := of.Fact.(*AtomicWord); ok {
			atomicAt[of.Object] = f.At
		}
	}

	// sanctioned holds the operand nodes that appear inside a sync/atomic
	// call (the x.f in atomic.LoadUint64(&x.f)); uses inside them are the
	// atomic accesses themselves, not violations.
	sanctioned := map[ast.Node]bool{}

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return
		}
		operand := ast.Unparen(addr.X)
		obj := addressedObject(pass, operand)
		if obj == nil {
			return
		}
		sanctioned[operand] = true
		if _, seen := atomicAt[obj]; !seen {
			atomicAt[obj] = pass.Fset.Position(operand.Pos()).String()
		}
	})

	// Second sweep: every other use of an atomic word is a plain access.
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		id := n.(*ast.Ident)
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		at, isAtomic := atomicAt[obj]
		if !isAtomic {
			return true
		}
		// The access expression is the ident or, for a field, the
		// enclosing selector; anything inside a sanctioned operand or a
		// composite-literal key is exempt.
		var access ast.Expr = id
		for i := len(stack) - 1; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.SelectorExpr:
				if p.Sel == id {
					access = p
				}
			case *ast.KeyValueExpr:
				if p.Key == id {
					return true // initialization in a composite literal
				}
			}
			if sanctioned[stack[i]] {
				return true
			}
		}
		pass.ReportRangef(access, "plain %s of %s, which is accessed atomically (e.g. at %s); use sync/atomic consistently",
			accessKind(stack, access), objName(obj), at)
		return true
	})

	// Export facts for this package's own words so downstream packages see
	// them. Only package-level declarations survive export; that is fine —
	// locals cannot be accessed from other packages anyway.
	for obj, at := range atomicAt {
		if obj.Pkg() == pass.Pkg {
			pass.ExportObjectFact(obj, &AtomicWord{At: at})
		}
	}
	return nil, nil
}

// calleeFunc resolves the static callee of call, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// addressedObject returns the variable an &-operand denotes: a struct
// field for x.f, a plain variable for x; nil for anything else (index
// expressions, results of calls, ...).
func addressedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// accessKind reports whether the access expression is written or read,
// from its immediate context in the node stack.
func accessKind(stack []ast.Node, access ast.Expr) string {
	// Find access's parent (the node just above it on the stack).
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != access {
			continue
		}
		if i == 0 {
			break
		}
		switch p := stack[i-1].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == access {
					return "write"
				}
			}
		case *ast.IncDecStmt:
			return "write"
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return "address-taking"
			}
		}
		break
	}
	return "read"
}

func objName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return fmt.Sprintf("field %s", v.Name())
	}
	return obj.Name()
}
