// Package b seeds a cross-package atomicmix violation: the word was
// sanctioned as atomic in package a, the plain access happens here.
package b

import "a"

func leak(e *a.Exported) uint64 {
	return e.Ctr // want `plain read of field Ctr, which is accessed atomically`
}
