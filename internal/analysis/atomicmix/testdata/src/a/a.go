// Package a seeds atomicmix violations: words accessed both through
// sync/atomic and through plain loads/stores.
package a

import "sync/atomic"

type counterHolder struct {
	ctr  uint64
	name string
}

func bump(h *counterHolder) {
	atomic.AddUint64(&h.ctr, 1) // sanctions ctr as an atomic word
}

func peek(h *counterHolder) uint64 {
	return h.ctr // want `plain read of field ctr, which is accessed atomically`
}

func reset(h *counterHolder) {
	h.ctr = 0 // want `plain write of field ctr`
}

func alias(h *counterHolder) *uint64 {
	return &h.ctr // want `plain address-taking of field ctr`
}

func fine(h *counterHolder) string {
	return h.name // a word never touched atomically is unconstrained
}

func fresh() *counterHolder {
	return &counterHolder{ctr: 1} // composite-literal initialization is exempt
}

var hits uint64

func recordHit() { atomic.AddUint64(&hits, 1) }

func report() uint64 {
	return hits // want `plain read of hits`
}

func swapTwice(h *counterHolder) uint64 {
	old := atomic.SwapUint64(&h.ctr, 7) // atomic sites are of course fine
	return old + atomic.LoadUint64(&hits)
}

// Exported carries an atomic word across the package boundary; package b
// reads it plainly.
type Exported struct {
	Ctr uint64
}

// Bump sanctions Exported.Ctr as atomic in its defining package, which
// exports an AtomicWord fact for downstream packages.
func Bump(e *Exported) { atomic.AddUint64(&e.Ctr, 1) }
