package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	atest.Run(t, "testdata", atomicmix.Analyzer, "a", "b")
}
