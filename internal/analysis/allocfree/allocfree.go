// Package allocfree proves functions annotated //bloom:noalloc are
// heap-allocation-free on every path, transitively.
//
// The repository's hot paths — wire frame parse/append, Store.handle,
// the journal Record fast path, the loadgen ring operations, the obs
// counter and histogram fast paths — are benchmarked at 0 allocs/op and
// CI gates on that number. But a runtime gate only covers the schedules
// and inputs a benchmark happens to exercise; this analyzer makes the
// same claim static, over all paths, at vet time.
//
// A function annotated //bloom:noalloc must not reach, through any call
// chain the static call graph can see, an instruction that allocates:
//
//   - make, new, &T{...}, slice and map literals, map assignment;
//   - string conversions ([]byte ↔ string) and string concatenation;
//   - interface boxing of a non-constant, non-pointer-shaped value
//     (including variadic ... slices, charged at the caller — which is
//     why a fmt.Sprintf call is flagged at the call site);
//   - append, unless it reuses a caller-owned buffer (b = append(b, ...)
//     or return append(b, ...) where b roots in a parameter, result, or
//     receiver — the amortized pre-sized append idiom);
//   - creating a closure that captures variables, spawning a goroutine,
//     or taking a method value;
//   - calling through a function value or interface (the callee is
//     unverifiable), or calling a function that itself allocates.
//
// //bloom:allowalloc excuses a function and everything it calls: the
// escape hatch for cold paths reached from a hot one (error construction,
// cache misses like the wire interner, dedup-window bookkeeping) whose
// allocations are deliberate and amortized or off the fast path.
//
// Standard-library packages are not lowered (see ssair), so a stdlib
// call's body is trusted not to allocate; what the call forces at the
// call site — variadic ...any boxing, string conversion — is still
// charged to the caller, and the runtime allocs/op gate cross-checks the
// residue. This keeps the verdict identical under go vet (which would
// otherwise compute stdlib facts) and the in-repo test loader (which
// never does). The whitelist below documents the hot-path stdlib surface
// the claim actually leans on — sync.Pool Get/Put as the sanctioned
// pooled-buffer amortization idiom, the mutex and atomic primitives, the
// time arithmetic — all measured at 0 allocs/op in steady state.
//
// Allocation discovered in an imported package travels via Allocates
// facts, so a //bloom:noalloc root sees an allocation introduced three
// packages away.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/ssair"
)

// Annotation markers, written on their own line in a function's doc
// comment.
const (
	markNoAlloc    = "//bloom:noalloc"
	markAllowAlloc = "//bloom:allowalloc"
)

// Analyzer reports heap allocations reachable from //bloom:noalloc
// annotated functions.
var Analyzer = &analysis.Analyzer{
	Name:      "allocfree",
	Doc:       "report heap allocations reachable from //bloom:noalloc annotated functions",
	Requires:  []*analysis.Analyzer{ssair.Analyzer},
	FactTypes: []analysis.Fact{(*Allocates)(nil)},
	Run:       run,
}

// Allocates is attached to a function through which a heap allocation is
// reachable.
type Allocates struct {
	// Chain is the call path from the function to the allocation, ending
	// in the allocation reason, e.g. ["repro/internal/wire.getBuf", "make"].
	Chain []string
}

// AFact marks Allocates as a serializable analysis fact.
func (*Allocates) AFact() {}

func (f *Allocates) String() string { return "allocates via " + strings.Join(f.Chain, " → ") }

// whitelistPkgs are packages whose every function is allocation-free.
var whitelistPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"runtime":     true,
}

// whitelistFuncs are individually known allocation-free (or sanctioned
// amortized) standard-library functions, by types.Func.FullName.
var whitelistFuncs = map[string]bool{
	"(*sync.Mutex).Lock":       true,
	"(*sync.Mutex).Unlock":     true,
	"(*sync.Mutex).TryLock":    true,
	"(*sync.RWMutex).Lock":     true,
	"(*sync.RWMutex).Unlock":   true,
	"(*sync.RWMutex).RLock":    true,
	"(*sync.RWMutex).RUnlock":  true,
	"(*sync.RWMutex).TryLock":  true,
	"(*sync.RWMutex).TryRLock": true,
	// Pooled buffers are the sanctioned amortization idiom: steady-state
	// Get returns a recycled buffer and Put recycles it, 0 allocs/op.
	"(*sync.Pool).Get": true,
	"(*sync.Pool).Put": true,
	// json.Valid runs a pooled scanner over the raw bytes without building
	// a value: 0 allocs/op in steady state, matching the runtime gate on
	// the server write path that calls it.
	"encoding/json.Valid":         true,
	"time.Now":                    true,
	"time.Since":                  true,
	"(time.Time).Sub":             true,
	"(time.Time).UnixNano":        true,
	"(time.Duration).Nanoseconds": true,
	"(time.Duration).Seconds":     true,
}

func whitelisted(fn *types.Func) bool {
	if fn.Pkg() != nil && whitelistPkgs[fn.Pkg().Path()] {
		return true
	}
	return whitelistFuncs[fn.FullName()]
}

// culprit is one function's first discovered route to an allocation.
type culprit struct {
	pos   token.Pos
	chain []string
}

func run(pass *analysis.Pass) (interface{}, error) {
	idx := pass.ResultOf[ssair.Analyzer].(*ssair.Index)

	type fnInfo struct {
		f          *ssair.Func
		noAlloc    bool
		allowAlloc bool
	}
	var fns []*fnInfo
	excused := map[*types.Func]bool{}
	for _, f := range idx.Funcs {
		info := &fnInfo{f: f}
		if f.Decl != nil {
			info.noAlloc = hasMarker(f.Decl.Doc, markNoAlloc)
			info.allowAlloc = hasMarker(f.Decl.Doc, markAllowAlloc)
			if info.allowAlloc {
				excused[f.Obj] = true
			}
		}
		fns = append(fns, info)
	}

	// allocates maps a scanned Func to its first allocation route.
	allocates := map[*ssair.Func]*culprit{}

	scan := func(info *fnInfo) *culprit {
		var found *culprit
		report := func(pos token.Pos, chain ...string) {
			if found == nil || pos < found.pos {
				found = &culprit{pos: pos, chain: chain}
			}
		}
		for _, b := range info.f.Blocks {
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				switch ins.Kind {
				case ssair.KAlloc:
					report(ins.Pos, ins.Reason)
				case ssair.KGo:
					report(ins.Pos, "go statement (new goroutine)")
				case ssair.KClosure:
					if len(ins.Closure.Captures) > 0 {
						report(ins.Pos, "closure captures "+ins.Closure.Captures[0].Name())
					}
				case ssair.KDynCall:
					what := "function value"
					if ins.Callee != nil {
						what = "interface method " + ins.Callee.FullName()
					}
					report(ins.Pos, "call through "+what+" (unverifiable)")
				case ssair.KCall:
					if ins.Closure != nil {
						// Direct call of a literal: charge its body.
						if c, ok := allocates[ins.Closure]; ok {
							report(ins.Pos, append([]string{ins.Closure.Name}, c.chain...)...)
						}
						continue
					}
					if ins.Callee == nil {
						continue
					}
					origin := ins.Callee.Origin()
					if excused[origin] || whitelisted(origin) {
						continue
					}
					// In-package callee already known to allocate?
					if f, ok := idx.ByObj[origin]; ok {
						if c, ok := allocates[f]; ok {
							report(ins.Pos, append([]string{origin.FullName()}, c.chain...)...)
						}
						continue
					}
					// Imported callee with an Allocates fact?
					if origin.Pkg() != nil && origin.Pkg() != pass.Pkg {
						var fact Allocates
						if pass.ImportObjectFact(origin, &fact) {
							report(ins.Pos, append([]string{origin.FullName()}, fact.Chain...)...)
						}
					}
				}
			}
		}
		return found
	}

	// Fixpoint over the in-package call graph (declared functions and
	// literals alike). Bounded by the number of functions.
	for {
		changed := false
		for _, info := range fns {
			if info.allowAlloc {
				continue
			}
			if _, done := allocates[info.f]; done {
				continue
			}
			if c := scan(info); c != nil {
				allocates[info.f] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, info := range fns {
		c, does := allocates[info.f]
		if !does {
			continue
		}
		if info.noAlloc {
			pass.Reportf(c.pos, "%s is annotated %s but allocates: %s",
				info.f.Obj.Name(), markNoAlloc, strings.Join(c.chain, " → "))
		}
		if info.f.Obj != nil {
			pass.ExportObjectFact(info.f.Obj, &Allocates{Chain: c.chain})
		}
	}
	return nil, nil
}

// hasMarker reports whether the doc comment contains the marker as a
// standalone directive line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
