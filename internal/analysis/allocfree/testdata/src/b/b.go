// Package b checks that Allocates facts cross package boundaries: the
// allocation lives in package a, the annotation here.
package b

import "a"

// viaImport reaches an allocation two packages deep through the imported
// Exported function's fact.
//
//bloom:noalloc
func viaImport() {
	_ = a.Exported() // want `viaImport is annotated //bloom:noalloc but allocates: a\.Exported → new`
}
