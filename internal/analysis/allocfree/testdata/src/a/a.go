// Package a seeds allocfree violations: //bloom:noalloc functions that
// reach heap allocations directly, through calls, closures, goroutines,
// and unverifiable indirect calls.
package a

import "fmt"

// makesSlice allocates directly.
//
//bloom:noalloc
func makesSlice() []int {
	return make([]int, 4) // want `makesSlice is annotated //bloom:noalloc but allocates: make`
}

// news allocates with new.
//
//bloom:noalloc
func news() *int {
	return new(int) // want `news is annotated //bloom:noalloc but allocates: new`
}

// takesAddress heap-allocates a composite literal by taking its address.
//
//bloom:noalloc
func takesAddress() *point {
	return &point{1, 2} // want `takesAddress is annotated //bloom:noalloc but allocates: &composite literal`
}

type point struct{ x, y int }

// grows appends to a locally rooted slice, which may grow.
//
//bloom:noalloc
func grows(v byte) []byte {
	var b []byte
	b = append(b, v) // want `grows is annotated //bloom:noalloc but allocates: append may grow`
	return b
}

// mapAssigns inserts into a map, which may grow the bucket array.
//
//bloom:noalloc
func mapAssigns(m map[int]int) {
	m[1] = 2 // want `mapAssigns is annotated //bloom:noalloc but allocates: map assignment`
}

// converts copies a byte slice into a fresh string.
//
//bloom:noalloc
func converts(b []byte) string {
	return string(b) // want `converts is annotated //bloom:noalloc but allocates: string conversion`
}

// concats builds a new string.
//
//bloom:noalloc
func concats(a, b string) string {
	return a + b // want `concats is annotated //bloom:noalloc but allocates: string concatenation`
}

// boxes converts a non-pointer-shaped value to an interface.
//
//bloom:noalloc
func boxes(v int) interface{} {
	return v // want `boxes is annotated //bloom:noalloc but allocates: interface boxing`
}

// variadicCall pays for the ... slice at the call site, which is why a
// fmt call inside a hot path is flagged at the caller.
//
//bloom:noalloc
func variadicCall(n int) {
	_ = fmt.Sprintf("%d", n) // want `variadicCall is annotated //bloom:noalloc but allocates: variadic call`
}

// closes creates a capturing closure.
//
//bloom:noalloc
func closes(n int) func() int {
	f := func() int { return n } // want `closes is annotated //bloom:noalloc but allocates: closure captures n`
	return f
}

// spawns starts a goroutine.
//
//bloom:noalloc
func spawns() {
	go helper() // want `spawns is annotated //bloom:noalloc but allocates: go statement \(new goroutine\)`
}

// dynCall calls through a function value the analyzer cannot verify.
//
//bloom:noalloc
func dynCall(f func()) {
	f() // want `dynCall is annotated //bloom:noalloc but allocates: call through function value \(unverifiable\)`
}

// transitive reaches an allocation through an unannotated helper; the
// chain names the route.
//
//bloom:noalloc
func transitive() {
	_ = helper() // want `transitive is annotated //bloom:noalloc but allocates: a\.helper → new`
}

func helper() *int { return new(int) }

// coldPath is excused: //bloom:allowalloc is the cold-path escape hatch,
// and the excuse covers callers that reach it.
//
//bloom:allowalloc
func coldPath() *int { return new(int) }

// callsCold stays clean because its only allocation route is excused.
//
//bloom:noalloc
func callsCold() {
	_ = coldPath()
}

// Exported allocates and is exported so package b can observe the
// Allocates fact across the package boundary.
func Exported() *int { return new(int) }
