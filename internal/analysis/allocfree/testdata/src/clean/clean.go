// Package clean is the false-positive-resistance table for allocfree:
// every function here is annotated //bloom:noalloc, uses a known-clean
// repository idiom, and must produce zero diagnostics.
package clean

import (
	"sync"
	"sync/atomic"
)

var bufPool = sync.Pool{New: func() interface{} { return new([64]byte) }}

// pooled uses the sanctioned sync.Pool amortization idiom: steady-state
// Get returns a recycled buffer and Put recycles it.
//
//bloom:noalloc
func pooled() {
	b := bufPool.Get().(*[64]byte)
	b[0] = 1
	bufPool.Put(b)
}

// presized appends into a caller-owned buffer: the amortized pre-sized
// append idiom, b = append(b, ...) rooted in a parameter.
//
//bloom:noalloc
func presized(b []byte, v byte) []byte {
	b = append(b, v)
	b = append(b, v, v)
	return b
}

type counters struct {
	n  atomic.Uint64
	mu sync.Mutex
	m  uint64
}

// atomics uses sync/atomic and mutex primitives, both whitelisted.
//
//bloom:noalloc
func (c *counters) atomics() {
	c.n.Add(1)
	c.mu.Lock()
	c.m++
	c.mu.Unlock()
}

// constBox boxes only constants, which the compiler interns statically.
//
//bloom:noalloc
func constBox() interface{} {
	return 42
}

// pointerBox converts an already-pointer-shaped value to an interface,
// which needs no heap copy.
//
//bloom:noalloc
func pointerBox(p *counters) interface{} {
	return p
}

// stackValue builds value composites and takes no addresses, so nothing
// escapes.
//
//bloom:noalloc
func stackValue() int {
	v := [4]int{1, 2, 3, 4}
	s := struct{ a, b int }{5, 6}
	return v[0] + s.a
}

// constPanic panics with a constant, the repo's guard idiom on
// never-taken branches.
//
//bloom:noalloc
func constPanic(ok bool) {
	if !ok {
		panic("invariant violated")
	}
}
