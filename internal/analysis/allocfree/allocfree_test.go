package allocfree_test

import (
	"testing"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/atest"
)

// TestAllocFree checks the seeded violations, including an annotation in
// package b convicted by an allocation living in package a.
func TestAllocFree(t *testing.T) {
	l := atest.Run(t, "testdata", allocfree.Analyzer, "a", "b")

	// Assert the exported facts themselves, not just the diagnostics:
	// facts are the currency that crosses package boundaries, and b's
	// single diagnostic only proves one of them arrived.
	facts := l.ObjectFacts(allocfree.Analyzer, "a")
	for fn, want := range map[string]string{
		"a.Exported": "allocates via new",
		"a.helper":   "allocates via new",
	} {
		if got := facts[fn]; got != want {
			t.Errorf("Allocates fact on %s = %q, want %q", fn, got, want)
		}
	}
	if got, ok := facts["a.callsCold"]; ok {
		t.Errorf("callsCold carries Allocates fact %q; its only route is //bloom:allowalloc-excused", got)
	}
}

// TestAllocFreeCleanIdioms runs the known-clean idiom table: pooled
// buffers, caller-owned pre-sized append, atomics, constant boxing. Zero
// diagnostics expected (the package has no want comments).
func TestAllocFreeCleanIdioms(t *testing.T) {
	atest.Run(t, "testdata", allocfree.Analyzer, "clean")
}
