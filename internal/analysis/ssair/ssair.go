// Package ssair lowers every function of a package to a flat, SSA-style
// instruction stream over its control-flow graph, shared by the
// whole-program concurrency analyzers (allocfree, lockorder, sharedfield).
//
// The paper's disciplines are properties of every execution path — a
// wait-free operation allocates nothing and waits on nothing on ANY path,
// a lock order is acyclic over ANY interleaving — so the analyzers need a
// path-structured view of each function, not a syntax tree. This pass
// builds exactly the slice of SSA they consume:
//
//   - each function (and each function literal) becomes a Func of basic
//     Blocks, built on golang.org/x/tools/go/cfg, with the statements of
//     each block lowered to abstract instructions in evaluation order:
//     heap allocations (KAlloc, with the reason — make, &T{...}, interface
//     boxing, map growth, closure capture, string conversion, ...), calls
//     (KCall static / KDynCall dynamic), goroutine spawns (KGo), closure
//     creation (KClosure), lock acquisitions and releases (KLock/KUnlock,
//     with the lock's identity resolved to the mutex field or variable),
//     struct-field accesses (KField, classified plain vs sync/atomic,
//     read vs write), and blocking channel operations (KBlock);
//   - a forward must-hold dataflow over the blocks annotates every
//     instruction with the set of locks provably held when it executes
//     (intersection at joins; a deferred Unlock keeps its lock held to
//     function exit, which is what defer means).
//
// It is deliberately not full go/ssa (no virtual registers, no phi nodes,
// no value numbering — none of the consumers need them, and the x/tools
// subset vendored from the Go distribution does not ship go/ssa); it is
// the fragment that makes the concurrency checks path-sensitive while
// staying driver-independent: the same IR builds under the atest loader,
// the standalone bloomvet driver, and go vet's unitchecker.
//
// Approximations, chosen to under-claim (fewer held locks, more
// allocations) rather than over-claim: TryLock never counts as held; a
// callee that acquires-and-leaks a lock for its caller is not tracked;
// value composite literals and address-of-local are treated as
// non-escaping (stack) while &T{...}, slice, and map literals always
// count as heap.
package ssair

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// Analyzer builds the package's lowered IR; the concurrency analyzers
// consume it via Requires.
var Analyzer = &analysis.Analyzer{
	Name:       "ssair",
	Doc:        "lower functions to a CFG-ordered instruction stream for the concurrency analyzers",
	Run:        run,
	ResultType: reflect.TypeOf((*Index)(nil)),
}

// Index is the lowered view of one package.
type Index struct {
	Pkg *types.Package
	// Funcs holds every function with a body: declared functions first
	// (in file order), then function literals (each linked to its parent).
	Funcs []*Func
	// ByObj maps a declared function's object to its IR.
	ByObj map[*types.Func]*Func
	// ByLit maps a function literal to its IR.
	ByLit map[*ast.FuncLit]*Func
}

// Func is one function's (or function literal's) lowered body.
type Func struct {
	// Obj is the declared function's object; nil for a literal.
	Obj *types.Func
	// Decl / Lit is the syntax; exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Parent is the enclosing Func of a literal, nil for declarations.
	Parent *Func
	// Name is a printable name: the types.Func full name, or
	// "parent$litN" for literals.
	Name string
	// Blocks is the control-flow graph with lowered instructions.
	Blocks []*Block
	// Owned holds the objects a caller hands this function: parameters,
	// named results, and the receiver. Appending to an Owned slice is
	// amortized by the caller's buffer reuse, not a fresh allocation.
	Owned map[types.Object]bool
	// FreshLocals are locals bound to a struct value allocated in this
	// function (x := &T{...}, x := new(T), x := T{...}): field accesses
	// through them are initialization of a not-yet-shared value.
	FreshLocals map[types.Object]bool
	// Captures are the free variables a literal closes over (nil for
	// declarations and capture-free literals): their presence is what
	// makes creating the closure allocate.
	Captures []*types.Var
	// DeferredUnlocks are locks released only by a deferred call: held
	// from their acquisition to function exit.
	DeferredUnlocks []types.Object
}

// Pos returns the function's declaration position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Block is one basic block: instructions in evaluation order plus
// successor indices into Func.Blocks.
type Block struct {
	Index  int32
	Succs  []int32
	Instrs []Instr
}

// Kind classifies an instruction.
type Kind uint8

const (
	// KAlloc is a heap allocation; Reason says why.
	KAlloc Kind = iota + 1
	// KCall is a statically resolved call (Callee), or a direct call of a
	// function literal (Closure).
	KCall
	// KDynCall is a call through a function value or interface whose
	// target the static callgraph cannot resolve.
	KDynCall
	// KGo spawns a goroutine running Callee or Closure (either may be nil
	// when the target is dynamic).
	KGo
	// KClosure creates a function-literal value (Closure).
	KClosure
	// KLock acquires Lock (Read reports RLock); KUnlock releases it.
	KLock
	KUnlock
	// KField is a struct-field access: Field, Write, Atomic, Addr.
	KField
	// KBlock is a blocking primitive other than a lock: channel send or
	// receive outside a select-with-default, a select without a default
	// clause, or a range over a channel.
	KBlock
)

// Instr is one abstract instruction.
type Instr struct {
	Kind Kind
	Pos  token.Pos

	// Callee is the static target of a KCall / KGo.
	Callee *types.Func
	// Closure is the literal's IR for KClosure, direct-literal KCall, and
	// literal KGo.
	Closure *Func
	// Deferred marks a KCall lowered from a defer statement.
	Deferred bool

	// Lock identifies the mutex of a KLock/KUnlock: the mutex-typed
	// struct field or variable. Read reports RLock/RUnlock.
	Lock types.Object
	Read bool

	// Field is the struct field of a KField access.
	Field *types.Var
	// Write reports a store (assignment, ++/--, or an atomic mutation).
	Write bool
	// Atomic reports access through sync/atomic (package function on
	// &field, or a method of an atomic.X-typed field).
	Atomic bool
	// Addr reports the field's address escaping to a non-atomic use; its
	// subsequent accesses are untrackable.
	Addr bool
	// Base is the root object of the access path (x in x.a.b.f), when it
	// is a simple variable; used for freshly-allocated-value exemptions.
	Base types.Object

	// Reason explains a KAlloc or KBlock.
	Reason string

	// Held is the set of locks provably held when this instruction
	// executes, sorted by LockKey. Filled by the must-hold dataflow.
	Held []HeldLock
}

// HeldLock is one element of a must-hold set.
type HeldLock struct {
	Obj  types.Object
	Read bool // held in read (RLock) mode
}

// LockKey renders a lock's identity as a stable, package-qualified
// string: "(pkgpath.Type).field" for a struct field,
// "pkgpath.varname" for a package-level variable, and
// "pkgpath.varname@local" for a function-local one. Cross-package lock
// facts are keyed on it.
func LockKey(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Find the named struct owning the field via its position in the
		// package scope is not recorded; qualify with the package path
		// and field name plus owner when recoverable from the object.
		return fieldKey(v)
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path() + "."
	}
	if isPackageLevel(obj) {
		return pkg + obj.Name()
	}
	return pkg + obj.Name() + "@local"
}

// fieldOwner caches field → owning named type (types.Var does not point
// back at its struct, so ownership is recovered by scanning the field's
// package scope once). sync.Map because analyzers of different packages
// may consult it concurrently under a parallel driver.
var fieldOwner sync.Map // *types.Var → *types.TypeName (may store nil TypeName as missing)

// fieldKey renders a field lock's identity.
func fieldKey(v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path() + "."
	}
	if tn := ownerOf(v); tn != nil {
		return "(" + pkg + tn.Name() + ")." + v.Name()
	}
	return "(" + pkg + "?)." + v.Name()
}

// OwnerName returns the name of the package-scope named struct type
// declaring field v, or "" when it is unknown (unnamed or local type).
func OwnerName(v *types.Var) string {
	if tn := ownerOf(v); tn != nil {
		return tn.Name()
	}
	return ""
}

// ownerOf finds the package-scope named struct type declaring field v,
// or nil for fields of unnamed or function-local struct types.
func ownerOf(v *types.Var) *types.TypeName {
	if tn, ok := fieldOwner.Load(v); ok {
		if tn == nil {
			return nil
		}
		return tn.(*types.TypeName)
	}
	var found *types.TypeName
	if p := v.Pkg(); p != nil {
		scope := p.Scope()
	scan:
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					found = tn
					break scan
				}
			}
		}
	}
	if found == nil {
		fieldOwner.Store(v, (*types.TypeName)(nil))
		return nil
	}
	fieldOwner.Store(v, found)
	return found
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// stdlibPackage reports whether the pass is analyzing a standard-library
// package, by whether its first file lives under GOROOT.
func stdlibPackage(pass *analysis.Pass) bool {
	goroot := runtime.GOROOT()
	if goroot == "" || len(pass.Files) == 0 {
		return false
	}
	name := pass.Fset.Position(pass.Files[0].Pos()).Filename
	rel, err := filepath.Rel(goroot, name)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// run lowers the package.
func run(pass *analysis.Pass) (interface{}, error) {
	idx := &Index{
		Pkg:   pass.Pkg,
		ByObj: map[*types.Func]*Func{},
		ByLit: map[*ast.FuncLit]*Func{},
	}
	// Standard-library packages are deliberately not lowered, so the
	// consumers compute no facts for them under any driver. The test
	// loader typechecks stdlib from GOROOT source without running
	// analyzers over it; lowering stdlib under go vet would give the two
	// drivers different whole-program views (every fmt call would, for
	// example, carry a blocking chain down to the runtime's GC channels).
	// Stdlib behavior enters the analyses only through each consumer's
	// curated tables, which keeps every verdict reproducible in-repo.
	if stdlibPackage(pass) {
		return idx, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f := &Func{Obj: obj, Decl: fd, Name: obj.FullName()}
			idx.Funcs = append(idx.Funcs, f)
			idx.ByObj[obj] = f
		}
	}
	// Lower bodies (literal Funcs are appended to idx.Funcs as they are
	// encountered, and lowered in turn).
	for i := 0; i < len(idx.Funcs); i++ {
		lowerFunc(pass, idx, idx.Funcs[i])
	}
	for _, f := range idx.Funcs {
		computeHeld(f)
	}
	return idx, nil
}

// computeHeld runs the forward must-hold dataflow and annotates each
// instruction's Held set.
func computeHeld(f *Func) {
	n := len(f.Blocks)
	if n == 0 {
		return
	}
	in := make([]map[types.Object]bool, n)  // lock → read-mode
	out := make([]map[types.Object]bool, n) // nil = not yet computed
	preds := make([][]int32, n)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.Index)
		}
	}
	// Deferred unlocks never emit KUnlock (see lowerer), so their locks
	// stay in the state to function exit with no extra handling here.

	worklist := []int32{0}
	queued := map[int32]bool{0: true}
	for len(worklist) > 0 {
		bi := worklist[0]
		worklist = worklist[1:]
		queued[bi] = false
		b := f.Blocks[bi]

		// in[b] = intersection of computed predecessor outs (entry: empty).
		var state map[types.Object]bool
		if bi == 0 {
			state = map[types.Object]bool{}
		} else {
			for _, p := range preds[bi] {
				po := out[p]
				if po == nil {
					continue // unvisited pred: identity for intersection
				}
				if state == nil {
					state = copyLocks(po)
					continue
				}
				for obj := range state {
					if _, ok := po[obj]; !ok {
						delete(state, obj)
					}
				}
			}
			if state == nil {
				state = map[types.Object]bool{}
			}
		}
		in[bi] = copyLocks(state)

		for i := range b.Instrs {
			ins := &b.Instrs[i]
			ins.Held = heldSlice(state)
			switch ins.Kind {
			case KLock:
				if ins.Lock != nil {
					state[ins.Lock] = ins.Read
				}
			case KUnlock:
				if ins.Lock != nil {
					delete(state, ins.Lock)
				}
			}
		}

		if !sameLocks(out[bi], state) {
			out[bi] = state
			for _, s := range b.Succs {
				if !queued[s] {
					queued[s] = true
					worklist = append(worklist, s)
				}
			}
		}
	}
}

func copyLocks(m map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func sameLocks(a, b map[types.Object]bool) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func heldSlice(state map[types.Object]bool) []HeldLock {
	if len(state) == 0 {
		return nil
	}
	out := make([]HeldLock, 0, len(state))
	for obj, read := range state {
		out = append(out, HeldLock{Obj: obj, Read: read})
	}
	sort.Slice(out, func(i, j int) bool { return LockKey(out[i].Obj) < LockKey(out[j].Obj) })
	return out
}

// HeldKeys renders a held set for diagnostics.
func HeldKeys(held []HeldLock) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = LockKey(h.Obj)
		if h.Read {
			parts[i] += " (read)"
		}
	}
	return strings.Join(parts, ", ")
}
