package ssair

// This file lowers one function body to the instruction stream: it walks
// the nodes of each cfg basic block in evaluation order and emits Instrs.
// The walk is syntax-directed but type-informed: every classification
// (allocation, lock identity, atomic access, blocking op) is made from
// pass.TypesInfo, never from names in source.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// how a call site is reached.
const (
	callNormal = iota
	callDefer
	callGo
)

type lowerer struct {
	pass *analysis.Pass
	idx  *Index
	fn   *Func
	blk  *Block
	// comms maps a select communication statement to whether its select
	// blocks (no default clause). Nonblocking comms lower their operands
	// but emit no KBlock.
	comms map[ast.Stmt]bool
	// chanRanges holds the range-operand expressions of `for range ch`
	// loops: the receive that the cfg does not materialize.
	chanRanges map[ast.Expr]bool
}

func lowerFunc(pass *analysis.Pass, idx *Index, f *Func) {
	var body *ast.BlockStmt
	var ftyp *ast.FuncType
	var recv *ast.FieldList
	if f.Decl != nil {
		body, ftyp, recv = f.Decl.Body, f.Decl.Type, f.Decl.Recv
	} else {
		body, ftyp = f.Lit.Body, f.Lit.Type
	}
	f.Owned = map[types.Object]bool{}
	f.FreshLocals = map[types.Object]bool{}
	collectOwned(pass, recv, f.Owned)
	collectOwned(pass, ftyp.Params, f.Owned)
	collectOwned(pass, ftyp.Results, f.Owned)
	if f.Lit != nil {
		f.Captures = captures(pass, f.Lit)
	}

	lw := &lowerer{
		pass:       pass,
		idx:        idx,
		fn:         f,
		comms:      map[ast.Stmt]bool{},
		chanRanges: map[ast.Expr]bool{},
	}
	lw.scanBody(body)

	g := cfg.New(body, lw.mayReturn)
	for _, b := range g.Blocks {
		nb := &Block{Index: b.Index}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, s.Index)
		}
		lw.blk = nb
		for _, n := range b.Nodes {
			lw.node(n)
		}
		f.Blocks = append(f.Blocks, nb)
	}
}

func collectOwned(pass *analysis.Pass, fl *ast.FieldList, into map[types.Object]bool) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				into[obj] = true
			}
		}
	}
}

// captures returns the variables a function literal closes over: idents
// used in its body that resolve to function-scoped variables declared
// outside the literal.
func captures(pass *analysis.Pass, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if isPackageLevel(v) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// scanBody pre-indexes the select statements (to distinguish blocking
// comms from select-with-default) and channel ranges of this body.
// Nested function literals are scanned again when they are lowered; their
// entries here are simply never consulted.
func (lw *lowerer) scanBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range s.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					lw.comms[comm] = !hasDefault
				}
			}
		case *ast.RangeStmt:
			if t := lw.typeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					lw.chanRanges[s.X] = true
				}
			}
		}
		return true
	})
}

// mayReturn reports whether a call can return, for cfg construction.
func (lw *lowerer) mayReturn(c *ast.CallExpr) bool {
	switch fun := unparen(c.Fun).(type) {
	case *ast.Ident:
		if b, ok := lw.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return false
		}
	case *ast.SelectorExpr:
		if fn, ok := lw.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			name := fn.FullName()
			if name == "os.Exit" || name == "runtime.Goexit" || strings.HasPrefix(name, "log.Fatal") ||
				strings.HasPrefix(name, "(*testing.common).Fatal") {
				return false
			}
		}
	}
	return true
}

func (lw *lowerer) emit(ins Instr) {
	lw.blk.Instrs = append(lw.blk.Instrs, ins)
}

func (lw *lowerer) typeOf(x ast.Expr) types.Type {
	if tv, ok := lw.pass.TypesInfo.Types[x]; ok {
		return tv.Type
	}
	return nil
}

func (lw *lowerer) isConst(x ast.Expr) bool {
	tv, ok := lw.pass.TypesInfo.Types[x]
	return ok && tv.Value != nil
}

func (lw *lowerer) obj(x ast.Expr) types.Object {
	switch e := unparen(x).(type) {
	case *ast.Ident:
		return lw.pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return lw.pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

// node lowers one cfg block node.
func (lw *lowerer) node(n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if blocking, ok := lw.comms[s]; ok {
			lw.commAssign(s, blocking)
			return
		}
		lw.assign(s)
	case *ast.ExprStmt:
		if blocking, ok := lw.comms[s]; ok {
			// <-ch as a select comm.
			if u, ok := unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				lw.expr(u.X)
				if blocking {
					lw.emit(Instr{Kind: KBlock, Pos: s.Pos(), Reason: "select without default"})
				}
				return
			}
		}
		lw.expr(s.X)
	case *ast.SendStmt:
		blocking, isComm := lw.comms[s]
		lw.expr(s.Chan)
		lw.expr(s.Value)
		switch {
		case !isComm:
			lw.emit(Instr{Kind: KBlock, Pos: s.Arrow, Reason: "channel send"})
		case blocking:
			lw.emit(Instr{Kind: KBlock, Pos: s.Arrow, Reason: "select without default"})
		}
	case *ast.IncDecStmt:
		lw.exprCtx(s.X, true)
	case *ast.ReturnStmt:
		lw.ret(s)
	case *ast.GoStmt:
		lw.call(s.Call, callGo)
	case *ast.DeferStmt:
		lw.deferStmt(s)
	case *ast.ValueSpec:
		lw.valueSpec(s)
	case ast.Expr:
		lw.expr(s)
		if lw.chanRanges[s] {
			lw.emit(Instr{Kind: KBlock, Pos: s.Pos(), Reason: "range over channel"})
		}
	}
}

// commAssign lowers `x := <-ch` appearing as a select communication.
func (lw *lowerer) commAssign(s *ast.AssignStmt, blocking bool) {
	if len(s.Rhs) == 1 {
		if u, ok := unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			lw.expr(u.X)
		}
	}
	if blocking {
		lw.emit(Instr{Kind: KBlock, Pos: s.Pos(), Reason: "select without default"})
	}
	for _, lhs := range s.Lhs {
		lw.lvalue(lhs)
	}
}

func (lw *lowerer) assign(s *ast.AssignStmt) {
	// Fresh-local tracking: x := &T{...} / new(T) / T{...} binds x to a
	// value no other goroutine can see yet.
	if s.Tok == token.DEFINE && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := lw.pass.TypesInfo.Defs[id]; obj != nil && isFreshExpr(lw, s.Rhs[0]) {
				lw.fn.FreshLocals[obj] = true
			}
		}
	}

	// Caller-owned amortized append: b = append(b, ...) where b's root
	// object is a parameter/result/receiver reuses the caller's buffer.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok && lw.isBuiltin(call, "append") && len(call.Args) > 0 {
			base := rootObj(lw.pass, call.Args[0])
			dst := rootObj(lw.pass, s.Lhs[0])
			amortized := base != nil && base == dst && lw.fn.Owned[base]
			lw.lowerAppend(call, amortized)
			lw.lvalue(s.Lhs[0])
			return
		}
	}

	for i, rhs := range s.Rhs {
		lw.expr(rhs)
		// Interface boxing on assignment.
		if len(s.Lhs) == len(s.Rhs) {
			if dst := lw.typeOf(s.Lhs[i]); dst != nil {
				lw.box(dst, rhs)
			}
		}
	}
	for _, lhs := range s.Lhs {
		lw.lvalue(lhs)
	}
}

// lvalue lowers an assignment target. Only a direct field selector is a
// field write; an index or deref target reads its base.
func (lw *lowerer) lvalue(lhs ast.Expr) {
	switch e := unparen(lhs).(type) {
	case *ast.Ident:
		// plain variable; nothing to record
	case *ast.SelectorExpr:
		lw.exprCtx(e, true)
	case *ast.IndexExpr:
		lw.expr(e.X)
		lw.expr(e.Index)
		if t := lw.typeOf(e.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				lw.emit(Instr{Kind: KAlloc, Pos: e.Pos(), Reason: "map assignment"})
			}
		}
	case *ast.StarExpr:
		lw.expr(e.X)
	default:
		lw.expr(lhs)
	}
}

func (lw *lowerer) valueSpec(s *ast.ValueSpec) {
	for i, v := range s.Values {
		lw.expr(v)
		if i < len(s.Names) {
			if obj := lw.pass.TypesInfo.Defs[s.Names[i]]; obj != nil {
				if isFreshExpr(lw, v) && len(s.Names) == len(s.Values) {
					lw.fn.FreshLocals[obj] = true
				}
				lw.box(obj.Type(), v)
			}
		}
	}
}

func (lw *lowerer) ret(s *ast.ReturnStmt) {
	sig, _ := lw.fnSignature()
	for i, r := range s.Results {
		// return append(b, ...) on an owned root is the tail of the
		// caller-owned amortized append idiom (binary.AppendUvarint's
		// shape): the grown slice goes straight back to the caller who
		// owns the buffer.
		if call, ok := unparen(r).(*ast.CallExpr); ok && lw.isBuiltin(call, "append") && len(call.Args) > 0 {
			base := rootObj(lw.pass, call.Args[0])
			lw.lowerAppend(call, base != nil && lw.fn.Owned[base])
			continue
		}
		lw.expr(r)
		if sig != nil && sig.Results().Len() == len(s.Results) {
			lw.box(sig.Results().At(i).Type(), r)
		}
	}
}

func (lw *lowerer) fnSignature() (*types.Signature, bool) {
	if lw.fn.Obj != nil {
		sig, ok := lw.fn.Obj.Type().(*types.Signature)
		return sig, ok
	}
	if t := lw.typeOf(lw.fn.Lit); t != nil {
		sig, ok := t.(*types.Signature)
		return sig, ok
	}
	return nil, false
}

func (lw *lowerer) deferStmt(s *ast.DeferStmt) {
	// `defer mu.Unlock()` keeps mu held for the remainder of the
	// function: record it and emit no KUnlock.
	if sel, ok := unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := lw.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			if kind, ok := lockMethods[fn.FullName()]; ok && (kind == lockRelease || kind == lockReleaseRead) {
				if obj := lw.lockTarget(sel); obj != nil {
					lw.fn.DeferredUnlocks = append(lw.fn.DeferredUnlocks, obj)
					return
				}
			}
		}
	}
	lw.call(s.Call, callDefer)
}

// expr lowers an expression in value (read) context.
func (lw *lowerer) expr(x ast.Expr) { lw.exprCtx(x, false) }

func (lw *lowerer) exprCtx(x ast.Expr, write bool) {
	if x == nil || lw.isConst(x) {
		return
	}
	switch e := x.(type) {
	case *ast.Ident, *ast.BasicLit:
		// no instruction
	case *ast.ParenExpr:
		lw.exprCtx(e.X, write)
	case *ast.SelectorExpr:
		lw.selector(e, write)
	case *ast.CallExpr:
		lw.call(e, callNormal)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			lw.addrOf(e)
		case token.ARROW:
			lw.expr(e.X)
			lw.emit(Instr{Kind: KBlock, Pos: e.OpPos, Reason: "channel receive"})
		default:
			lw.expr(e.X)
		}
	case *ast.BinaryExpr:
		lw.expr(e.X)
		lw.expr(e.Y)
		if e.Op == token.ADD {
			if t := lw.typeOf(e); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					lw.emit(Instr{Kind: KAlloc, Pos: e.OpPos, Reason: "string concatenation"})
				}
			}
		}
	case *ast.StarExpr:
		lw.expr(e.X)
	case *ast.IndexExpr:
		lw.expr(e.X)
		if t, ok := lw.pass.TypesInfo.Types[e.Index]; !ok || !t.IsType() {
			lw.expr(e.Index) // not a generic instantiation
		}
	case *ast.IndexListExpr:
		lw.expr(e.X)
	case *ast.SliceExpr:
		lw.expr(e.X)
		lw.expr(e.Low)
		lw.expr(e.High)
		lw.expr(e.Max)
	case *ast.TypeAssertExpr:
		lw.expr(e.X)
	case *ast.CompositeLit:
		lw.composite(e, false)
	case *ast.FuncLit:
		lit := lw.lit(e)
		lw.emit(Instr{Kind: KClosure, Pos: e.Pos(), Closure: lit})
	case *ast.KeyValueExpr:
		lw.expr(e.Value)
	}
}

// selector lowers a selector expression: a field access, a method value,
// or a qualified identifier.
func (lw *lowerer) selector(e *ast.SelectorExpr, write bool) {
	sel, ok := lw.pass.TypesInfo.Selections[e]
	if !ok {
		// Qualified identifier (pkg.Name): no field involved.
		return
	}
	switch sel.Kind() {
	case types.FieldVal:
		lw.expr(e.X) // prefix path first, in evaluation order
		if v, ok := lw.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			lw.emit(Instr{
				Kind:  KField,
				Pos:   e.Sel.Pos(),
				Field: v,
				Write: write,
				Base:  rootObj(lw.pass, e),
			})
		}
	case types.MethodVal:
		lw.expr(e.X)
		lw.emit(Instr{Kind: KAlloc, Pos: e.Pos(), Reason: "method value"})
	case types.MethodExpr:
		// T.M: a static func value, no allocation.
	}
}

// addrOf lowers &x.
func (lw *lowerer) addrOf(e *ast.UnaryExpr) {
	switch x := unparen(e.X).(type) {
	case *ast.CompositeLit:
		lw.compositeElems(x)
		lw.emit(Instr{Kind: KAlloc, Pos: e.OpPos, Reason: "&composite literal"})
	case *ast.SelectorExpr:
		if sel, ok := lw.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			lw.expr(x.X)
			if v, ok := lw.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
				// Address escapes to a non-atomic use: subsequent
				// accesses through the pointer are untrackable, so
				// record a conservative write.
				lw.emit(Instr{
					Kind:  KField,
					Pos:   x.Sel.Pos(),
					Field: v,
					Write: true,
					Addr:  true,
					Base:  rootObj(lw.pass, x),
				})
			}
			return
		}
		lw.expr(e.X)
	case *ast.Ident:
		// Address of a local: assumed stack; see package doc.
	default:
		lw.expr(e.X)
	}
}

func (lw *lowerer) composite(e *ast.CompositeLit, addressed bool) {
	lw.compositeElems(e)
	if t := lw.typeOf(e); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice:
			lw.emit(Instr{Kind: KAlloc, Pos: e.Pos(), Reason: "slice literal"})
		case *types.Map:
			lw.emit(Instr{Kind: KAlloc, Pos: e.Pos(), Reason: "map literal"})
		default:
			if addressed {
				lw.emit(Instr{Kind: KAlloc, Pos: e.Pos(), Reason: "&composite literal"})
			}
		}
	}
}

func (lw *lowerer) compositeElems(e *ast.CompositeLit) {
	isStruct := false
	if t := lw.typeOf(e); t != nil {
		_, isStruct = t.Underlying().(*types.Struct)
	}
	for _, el := range e.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if !isStruct {
				lw.expr(kv.Key)
			}
			lw.expr(kv.Value)
			continue
		}
		lw.expr(el)
	}
}

// lit creates (and schedules lowering of) a function literal's Func.
func (lw *lowerer) lit(e *ast.FuncLit) *Func {
	if f, ok := lw.idx.ByLit[e]; ok {
		return f
	}
	f := &Func{
		Lit:    e,
		Parent: lw.fn,
		Name:   fmt.Sprintf("%s$lit%d", lw.fn.Name, len(lw.idx.ByLit)+1),
	}
	lw.idx.Funcs = append(lw.idx.Funcs, f)
	lw.idx.ByLit[e] = f
	return f
}

const (
	lockAcquire = iota
	lockAcquireRead
	lockRelease
	lockReleaseRead
	lockTry
)

var lockMethods = map[string]int{
	"(*sync.Mutex).Lock":       lockAcquire,
	"(*sync.Mutex).Unlock":     lockRelease,
	"(*sync.Mutex).TryLock":    lockTry,
	"(*sync.RWMutex).Lock":     lockAcquire,
	"(*sync.RWMutex).Unlock":   lockRelease,
	"(*sync.RWMutex).RLock":    lockAcquireRead,
	"(*sync.RWMutex).RUnlock":  lockReleaseRead,
	"(*sync.RWMutex).TryLock":  lockTry,
	"(*sync.RWMutex).TryRLock": lockTry,
}

// lockTarget resolves the mutex identity of a lock-method selector: the
// mutex-typed field or variable the method is invoked on, including
// methods promoted from an embedded Mutex.
func (lw *lowerer) lockTarget(fun *ast.SelectorExpr) types.Object {
	if sel, ok := lw.pass.TypesInfo.Selections[fun]; ok {
		if idx := sel.Index(); len(idx) > 1 {
			// Promoted method: the lock is the embedded field reached by
			// the selection path (minus the final method index).
			t := lw.typeOf(fun.X)
			var field *types.Var
			for _, i := range idx[:len(idx)-1] {
				t = derefType(t)
				st, ok := t.Underlying().(*types.Struct)
				if !ok || i >= st.NumFields() {
					return nil
				}
				field = st.Field(i)
				t = field.Type()
			}
			return field
		}
	}
	switch recv := unparen(fun.X).(type) {
	case *ast.SelectorExpr:
		lw.expr(recv.X)
		if v, ok := lw.pass.TypesInfo.Uses[recv.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := lw.pass.TypesInfo.Uses[recv].(*types.Var); ok {
			return v
		}
	default:
		lw.expr(fun.X)
	}
	return nil
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return types.Typ[types.Invalid]
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// atomicWriteness reports whether a sync/atomic function or method name
// mutates (everything except Load).
func atomicWriteness(name string) bool {
	return !strings.HasPrefix(name, "Load")
}

// call lowers a call expression reached normally, via defer, or via go.
func (lw *lowerer) call(e *ast.CallExpr, how int) {
	// Conversion T(x).
	if tv, ok := lw.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
		lw.conversion(e, tv.Type)
		return
	}

	fun := unparen(e.Fun)

	// Builtin.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := lw.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			lw.builtin(e, b.Name())
			return
		}
	}

	// Direct call of a function literal.
	if litExpr, ok := fun.(*ast.FuncLit); ok {
		lit := lw.lit(litExpr)
		lw.args(e, nil)
		lw.emitCall(Instr{Kind: KCall, Pos: e.Lparen, Closure: lit}, how)
		return
	}

	var callee *types.Func
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// unsafe.Add / unsafe.Slice and friends are compiler intrinsics
		// typed as builtins, not functions: pointer arithmetic, no call.
		if b, ok := lw.pass.TypesInfo.Uses[sel.Sel].(*types.Builtin); ok {
			lw.builtin(e, b.Name())
			return
		}
		callee, _ = lw.pass.TypesInfo.Uses[sel.Sel].(*types.Func)

		if callee != nil {
			// Lock / unlock.
			if kind, ok := lockMethods[callee.FullName()]; ok {
				obj := lw.lockTarget(sel)
				switch kind {
				case lockAcquire:
					lw.emit(Instr{Kind: KLock, Pos: e.Lparen, Lock: obj})
				case lockAcquireRead:
					lw.emit(Instr{Kind: KLock, Pos: e.Lparen, Lock: obj, Read: true})
				case lockRelease:
					lw.emit(Instr{Kind: KUnlock, Pos: e.Lparen, Lock: obj})
				case lockReleaseRead:
					lw.emit(Instr{Kind: KUnlock, Pos: e.Lparen, Lock: obj, Read: true})
				case lockTry:
					// A failed TryLock holds nothing; never counted held.
				}
				return
			}

			// sync/atomic package function: atomic.AddInt64(&s.n, 1).
			if callee.Pkg() != nil && callee.Pkg().Path() == "sync/atomic" && callee.Type().(*types.Signature).Recv() == nil {
				lw.atomicPkgCall(e, callee)
				return
			}

			// Method of a sync/atomic type: s.n.Add(1).
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
				callee.Pkg() != nil && callee.Pkg().Path() == "sync/atomic" {
				lw.atomicMethodCall(e, sel, callee)
				return
			}
		}

		// Method call (or interface method): lower the receiver prefix.
		// The receiver field itself, when the target of a method call, is
		// used by address (or copied wholesale), not loaded as a shared
		// word, so it emits no KField — see package doc.
		if selKind, ok := lw.pass.TypesInfo.Selections[sel]; ok && selKind.Kind() == types.MethodVal {
			switch recv := unparen(sel.X).(type) {
			case *ast.SelectorExpr:
				lw.expr(recv.X)
			case *ast.Ident:
				// nothing
			default:
				lw.expr(sel.X)
			}
			lw.args(e, callee)
			if callee != nil && isInterfaceMethod(callee) {
				lw.emitCall(Instr{Kind: KDynCall, Pos: e.Lparen, Callee: callee}, how)
			} else {
				lw.emitCall(Instr{Kind: KCall, Pos: e.Lparen, Callee: callee}, how)
			}
			return
		}
		if callee == nil {
			// Calling a func-typed field (w.fn()): the call loads the field.
			lw.expr(sel)
		}
	} else if id, ok := fun.(*ast.Ident); ok {
		callee, _ = lw.pass.TypesInfo.Uses[id].(*types.Func)
	} else {
		// Computed function value: f()() etc.
		lw.expr(fun)
	}

	lw.args(e, callee)
	if callee != nil {
		lw.emitCall(Instr{Kind: KCall, Pos: e.Lparen, Callee: callee}, how)
	} else {
		lw.emitCall(Instr{Kind: KDynCall, Pos: e.Lparen}, how)
	}
}

// emitCall finalizes a call instruction per its invocation mode.
func (lw *lowerer) emitCall(ins Instr, how int) {
	switch how {
	case callDefer:
		ins.Deferred = true
	case callGo:
		ins.Kind = KGo
	}
	lw.emit(ins)
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// args lowers a call's arguments and charges interface boxing and
// variadic-slice allocations per the callee's (instantiated) signature.
func (lw *lowerer) args(e *ast.CallExpr, callee *types.Func) {
	for _, a := range e.Args {
		lw.expr(a)
	}
	tv, ok := lw.pass.TypesInfo.Types[e.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, a := range e.Args {
		switch {
		case sig.Variadic() && i >= np-1:
			// handled below
		case i < np:
			lw.box(params.At(i).Type(), a)
		}
	}
	if sig.Variadic() && e.Ellipsis == token.NoPos && len(e.Args) >= np {
		// Passing k>0 loose variadic args materializes a []T.
		if len(e.Args) > np-1 {
			lw.emit(Instr{Kind: KAlloc, Pos: e.Lparen, Reason: "variadic call"})
		}
	}
}

// box charges an interface-boxing allocation when a concrete,
// non-constant, non-pointer-shaped value converts to an interface type.
func (lw *lowerer) box(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	t := lw.typeOf(src)
	if t == nil || types.IsInterface(t) {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if lw.isConst(src) {
		return // compiler materializes constants in static data
	}
	if isPointerShaped(t) {
		return // direct interface, no heap copy
	}
	lw.emit(Instr{Kind: KAlloc, Pos: src.Pos(), Reason: "interface boxing"})
}

func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func (lw *lowerer) builtin(e *ast.CallExpr, name string) {
	switch name {
	case "make":
		for _, a := range e.Args[1:] {
			lw.expr(a)
		}
		lw.emit(Instr{Kind: KAlloc, Pos: e.Lparen, Reason: "make"})
	case "new":
		lw.emit(Instr{Kind: KAlloc, Pos: e.Lparen, Reason: "new"})
	case "append":
		lw.lowerAppend(e, false)
	case "panic":
		if len(e.Args) == 1 {
			lw.expr(e.Args[0])
			lw.box(types.NewInterfaceType(nil, nil), e.Args[0])
		}
	default:
		// len, cap, copy, delete, close, clear, min, max, ...
		for _, a := range e.Args {
			lw.expr(a)
		}
	}
}

// lowerAppend lowers an append call; amortized appends (caller-owned
// buffer, result assigned back) do not allocate.
func (lw *lowerer) lowerAppend(e *ast.CallExpr, amortized bool) {
	for _, a := range e.Args {
		lw.expr(a)
	}
	if !amortized {
		lw.emit(Instr{Kind: KAlloc, Pos: e.Lparen, Reason: "append may grow"})
	}
}

// conversion lowers T(x).
func (lw *lowerer) conversion(e *ast.CallExpr, dst types.Type) {
	arg := e.Args[0]
	lw.expr(arg)
	src := lw.typeOf(arg)
	if src == nil || dst == nil {
		return
	}
	if types.IsInterface(dst) {
		lw.box(dst, arg)
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	dstStr := isString(du)
	srcStr := isString(su)
	switch {
	case dstStr && isByteOrRuneSlice(su):
		lw.emit(Instr{Kind: KAlloc, Pos: e.Lparen, Reason: "string conversion"})
	case srcStr && isByteOrRuneSlice(du):
		lw.emit(Instr{Kind: KAlloc, Pos: e.Lparen, Reason: "string conversion"})
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// atomicPkgCall lowers atomic.LoadInt64(&s.n) / atomic.AddUint32(&s.n, 1).
func (lw *lowerer) atomicPkgCall(e *ast.CallExpr, callee *types.Func) {
	write := atomicWriteness(callee.Name())
	emitted := false
	if len(e.Args) > 0 {
		if u, ok := unparen(e.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if fieldSel, ok := unparen(u.X).(*ast.SelectorExpr); ok {
				if sel, ok := lw.pass.TypesInfo.Selections[fieldSel]; ok && sel.Kind() == types.FieldVal {
					lw.expr(fieldSel.X)
					if v, ok := lw.pass.TypesInfo.Uses[fieldSel.Sel].(*types.Var); ok {
						lw.emit(Instr{
							Kind:   KField,
							Pos:    fieldSel.Sel.Pos(),
							Field:  v,
							Write:  write,
							Atomic: true,
							Base:   rootObj(lw.pass, fieldSel),
						})
						emitted = true
					}
				}
			}
		}
	}
	start := 0
	if emitted {
		start = 1
	}
	for _, a := range e.Args[start:] {
		lw.expr(a)
	}
	lw.emit(Instr{Kind: KCall, Pos: e.Lparen, Callee: callee})
}

// atomicMethodCall lowers s.n.Add(1) where n is an atomic.X field.
func (lw *lowerer) atomicMethodCall(e *ast.CallExpr, fun *ast.SelectorExpr, callee *types.Func) {
	write := atomicWriteness(callee.Name())
	if fieldSel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
		if sel, ok := lw.pass.TypesInfo.Selections[fieldSel]; ok && sel.Kind() == types.FieldVal {
			lw.expr(fieldSel.X)
			if v, ok := lw.pass.TypesInfo.Uses[fieldSel.Sel].(*types.Var); ok {
				lw.emit(Instr{
					Kind:   KField,
					Pos:    fieldSel.Sel.Pos(),
					Field:  v,
					Write:  write,
					Atomic: true,
					Base:   rootObj(lw.pass, fieldSel),
				})
			}
		} else {
			lw.expr(fun.X)
		}
	} else if _, ok := unparen(fun.X).(*ast.Ident); !ok {
		lw.expr(fun.X)
	}
	for _, a := range e.Args {
		lw.expr(a)
	}
	lw.emit(Instr{Kind: KCall, Pos: e.Lparen, Callee: callee})
}

func (lw *lowerer) isBuiltin(e *ast.CallExpr, name string) bool {
	id, ok := unparen(e.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := lw.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isFreshExpr reports whether an expression yields a value no other
// goroutine can reference yet: &T{...}, new(T), or a composite value.
func isFreshExpr(lw *lowerer, x ast.Expr) bool {
	switch e := unparen(x).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := lw.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new" || b.Name() == "make"
			}
		}
	}
	return false
}

// rootObj returns the base variable of an access path (x in x.a[i].b),
// or nil when the path roots in something other than a simple variable.
func rootObj(pass *analysis.Pass, x ast.Expr) types.Object {
	for {
		switch e := x.(type) {
		case *ast.ParenExpr:
			x = e.X
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(e)
		default:
			return nil
		}
	}
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}
