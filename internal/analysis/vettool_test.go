package analysis_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVettool builds cmd/bloomvet and drives it the way CI does — through
// go vet's -vettool protocol over the whole module. The in-process
// self-host test above gives the fast signal; this one proves the
// unitchecker plumbing (fact serialization between compilation units
// included) works end to end.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the tree; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "bloomvet")

	build := exec.Command("go", "build", "-o", bin, "./cmd/bloomvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/bloomvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=bloomvet ./...: %v\n%s", err, out)
	}
}
