// Package a seeds seqlock violations: broken version-counter brackets in
// writers and missing re-checks in readers.
package a

import "sync/atomic"

// publishing is the double-buffered shape of internal/register.Seqlock:
// slot stores first, one version increment to publish.
type publishing struct {
	version atomic.Uint64
	slots   [2][4]atomic.Uint64
}

func (r *publishing) writeGood(vals [4]uint64) { // clean
	v1 := r.version.Load()
	for i, v := range vals {
		r.slots[(v1+1)&1][i].Store(v)
	}
	if r.version.Add(1) != v1+1 {
		panic("concurrent writers")
	}
}

func (r *publishing) writeTorn(vals [4]uint64) {
	v1 := r.version.Load()
	r.version.Add(1)
	for i, v := range vals {
		r.slots[(v1+1)&1][i].Store(v) // want `stores into a slot after the version counter was published`
	}
}

func (r *publishing) readGood(port int) [4]uint64 { // clean
	for {
		v1 := r.version.Load()
		var out [4]uint64
		for i := range out {
			out[i] = r.slots[v1&1][i].Load()
		}
		if r.version.Load() == v1 {
			return out
		}
	}
}

func (r *publishing) readUnchecked() [4]uint64 { // want `copies the slots but never re-checks the version counter`
	v1 := r.version.Load()
	var out [4]uint64
	for i := range out {
		out[i] = r.slots[v1&1][i].Load()
	}
	return out
}

func (r *publishing) readEarlyCheck() [4]uint64 { // want `re-checks the version counter before the slot copy completes`
	v1 := r.version.Load()
	if r.version.Load() != v1 {
		return r.readEarlyCheck()
	}
	var out [4]uint64
	for i := range out {
		out[i] = r.slots[v1&1][i].Load()
	}
	return out
}

// classic is the traditional odd/even seqlock: the write sits between two
// increments.
type classic struct {
	seq  atomic.Uint64 //bloom:seqlock-version
	data [4]atomic.Uint64
}

func (c *classic) writeGood(vals [4]uint64) { // clean
	c.seq.Add(1)
	for i, v := range vals {
		c.data[i].Store(v)
	}
	c.seq.Add(1)
}

func (c *classic) writeOutsideBracket(vals [4]uint64) {
	c.data[0].Store(vals[0]) // want `stores into a slot before the version counter entered the write bracket`
	c.seq.Add(1)
	for i, v := range vals[1:] {
		c.data[i+1].Store(v)
	}
	c.seq.Add(1)
}

func (c *classic) writeUnpublished(vals [4]uint64) { // want `stores into the slots but never advances the version counter`
	for i, v := range vals {
		c.data[i].Store(v)
	}
}

// aliased mirrors internal/register.Seqlock: methods reach the slots
// through a local alias (slot := r.slots[...]), and bump an unrelated
// side counter the analyzer must not mistake for a slot store.
type aliased struct {
	version atomic.Uint64
	slots   [2][]atomic.Uint64
	hits    atomic.Int64
}

func (r *aliased) writeGood(vals []uint64) { // clean
	r.hits.Add(1)
	v1 := r.version.Load()
	slot := r.slots[(v1+1)&1]
	for i, v := range vals {
		slot[i].Store(v)
	}
	r.version.Add(1)
}

func (r *aliased) writeTornAlias(vals []uint64) {
	v1 := r.version.Load()
	slot := r.slots[(v1+1)&1]
	r.version.Add(1)
	for i, v := range vals {
		slot[i].Store(v) // want `stores into a slot after the version counter was published`
	}
}

func (r *aliased) readGood() uint64 { // clean: the hit counter is not a slot access
	r.hits.Add(1)
	for {
		v1 := r.version.Load()
		slot := r.slots[v1&1]
		v := slot[0].Load()
		if r.version.Load() == v1 {
			return v
		}
	}
}

// notASeqlock has atomic words but no version counter; its methods are
// unconstrained.
type notASeqlock struct {
	totals [4]atomic.Uint64
}

func (n *notASeqlock) bump(i int) { n.totals[i].Add(1) }

func (n *notASeqlock) read(i int) uint64 { return n.totals[i].Load() }
