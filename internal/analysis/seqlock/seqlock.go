// Package seqlock checks the version-counter discipline of seqlock-style
// registers (internal/register.Seqlock and anything shaped like it).
//
// A seqlock read is allowed to race with a write by construction; what
// makes the race benign is a strict protocol around the version counter:
//
//   - the writer completes every store into the data slots before the
//     version increment that publishes them (in the classic odd/even
//     bracket, between the two increments);
//   - the reader loads the version, copies the slots, and then re-checks
//     the version — returning the copy only if it did not move.
//
// Break either half and a torn value escapes: a slot store after the
// publishing increment is visible to a reader that already re-checked, and
// a reader that skips the re-check returns bytes half-old, half-new. Both
// mistakes are silent at runtime on almost every schedule, which is why
// this analyzer pins them down statically.
//
// A struct participates if it has a version field — an atomic integer
// (atomic.Uint32/Uint64/Int32/Int64) named like a version counter
// ("version", "seq", "ver") or carrying a //bloom:seqlock-version comment —
// alongside slot fields: arrays or slices (possibly nested) of atomic
// integers. Within each method of such a struct the analyzer classifies
// each atomic call on the version field or on the slot fields (directly,
// or through a local alias such as slot := r.slots[v1&1]) as a version
// load, a version increment, a slot store, or a slot load — atomics
// unrelated to the seqlock, like side-channel counters, are ignored — and
// checks, in source order:
//
//   - writer methods (≥1 slot store and, if correct, ≥1 version increment):
//     all slot stores precede the final version increment; with two or
//     more increments (the classic bracket) the stores also follow the
//     first one; a writer with no increment at all is reported.
//   - reader methods (≥1 slot load, no slot store): after the last slot
//     load there is a comparison of the version against an earlier load.
//
// Source order approximates execution order, which is exact for the
// straight-line bodies this shape produces (the reader's retry loop only
// repeats the correctly-ordered body). Constructors are exempt: they are
// free functions, not methods, and initialize slots before the value is
// shared.
package seqlock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// markVersion explicitly tags a struct field as a seqlock version counter.
const markVersion = "//bloom:seqlock-version"

// Analyzer checks seqlock writer/reader version-counter discipline.
var Analyzer = &analysis.Analyzer{
	Name:     "seqlock",
	Doc:      "check that seqlock writers bracket slot stores with the version counter and readers re-check it",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// versionNames are field names treated as version counters.
var versionNames = map[string]bool{"version": true, "seq": true, "ver": true}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find seqlock structs, their version fields, and their slot
	// fields.
	versionFields := map[types.Object]bool{} // the version field objects
	slotFields := map[types.Object]bool{}    // the data-slot field objects
	seqlockStructs := map[*types.TypeName]bool{}
	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		var version, slots []types.Object
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				switch {
				case isAtomicInt(obj.Type()) &&
					(versionNames[strings.ToLower(name.Name)] || hasFieldMarker(f)):
					version = append(version, obj)
				case containsAtomicInt(obj.Type()):
					slots = append(slots, obj)
				}
			}
		}
		if len(version) > 0 && len(slots) > 0 {
			if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
				seqlockStructs[tn] = true
				for _, v := range version {
					versionFields[v] = true
				}
				for _, s := range slots {
					slotFields[s] = true
				}
			}
		}
	})
	if len(seqlockStructs) == 0 {
		return nil, nil
	}

	// Pass 2: check each method of a seqlock struct.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Recv == nil || fd.Body == nil {
			return
		}
		recv := receiverTypeName(pass, fd)
		if recv == nil || !seqlockStructs[recv] {
			return
		}
		checkMethod(pass, fd, versionFields, slotFields)
	})
	return nil, nil
}

// event is one classified atomic operation in a method body.
type event struct {
	kind eventKind
	pos  token.Pos
	node ast.Node
}

type eventKind int

const (
	versionLoad eventKind = iota
	versionAdd
	slotStore
	slotLoad
	versionCmp
)

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, versionFields, slotFields map[types.Object]bool) {
	var events []event
	// snapshots are local variables assigned from a version load (v1 :=
	// r.version.Load()); comparisons against them count as re-checks.
	snapshots := map[types.Object]bool{}
	// slotAliases are locals assigned from a slot field (slot :=
	// r.slots[v1&1]); atomic calls through them are slot accesses.
	slotAliases := map[types.Object]bool{}

	isSlotUse := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		for {
			ix, ok := e.(*ast.IndexExpr)
			if !ok {
				break
			}
			e = ast.Unparen(ix.X)
		}
		if isFieldUse(pass, e, slotFields) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			return slotAliases[pass.TypesInfo.Uses[id]]
		}
		return false
	}

	add := func(kind eventKind, n ast.Node) {
		events = append(events, event{kind: kind, pos: n.Pos(), node: n})
	}

	isVersionLoadExpr := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return false
		}
		return isFieldUse(pass, sel.X, versionFields)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v1 := r.version.Load() records a snapshot variable; slot :=
			// r.slots[v1&1] records a slot alias.
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj == nil {
						continue
					}
					switch {
					case isVersionLoadExpr(rhs):
						snapshots[obj] = true
					case isSlotUse(rhs):
						slotAliases[obj] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if isVersionLoadExpr(side) || isSnapshotUse(pass, side, snapshots) {
					add(versionCmp, n)
					return true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil || !isAtomicIntMethodRecv(fn) {
				return true
			}
			onVersion := isFieldUse(pass, sel.X, versionFields)
			onSlot := !onVersion && isSlotUse(sel.X)
			switch sel.Sel.Name {
			case "Load":
				if onVersion {
					add(versionLoad, n)
				} else if onSlot {
					add(slotLoad, n)
				}
			case "Add", "CompareAndSwap", "Swap", "Store":
				if onVersion {
					add(versionAdd, n) // any RMW or store publishes
				} else if onSlot {
					add(slotStore, n)
				}
			}
		}
		return true
	})

	var stores, loads, adds, cmps []event
	for _, e := range events {
		switch e.kind {
		case slotStore:
			stores = append(stores, e)
		case slotLoad:
			loads = append(loads, e)
		case versionAdd:
			adds = append(adds, e)
		case versionCmp:
			cmps = append(cmps, e)
		}
	}

	name := fd.Name.Name
	switch {
	case len(stores) > 0:
		// Writer discipline.
		if len(adds) == 0 {
			pass.Reportf(fd.Name.Pos(),
				"seqlock writer %s stores into the slots but never advances the version counter; readers cannot detect the torn window", name)
			return
		}
		first, last := adds[0].pos, adds[len(adds)-1].pos
		for _, s := range stores {
			if s.pos > last {
				pass.Reportf(s.pos,
					"seqlock writer %s stores into a slot after the version counter was published; all slot stores must precede the final version increment", name)
			} else if len(adds) >= 2 && s.pos < first {
				pass.Reportf(s.pos,
					"seqlock writer %s stores into a slot before the version counter entered the write bracket; slot stores must sit between the two increments", name)
			}
		}
	case len(loads) > 0:
		// Reader discipline: a version re-check must follow the slot copy.
		lastLoad := loads[len(loads)-1].pos
		for _, c := range cmps {
			if c.pos > lastLoad {
				return // re-check after the copy: correct
			}
		}
		if len(cmps) == 0 {
			pass.Reportf(fd.Name.Pos(),
				"seqlock reader %s copies the slots but never re-checks the version counter; a torn read can escape", name)
		} else {
			pass.Reportf(fd.Name.Pos(),
				"seqlock reader %s re-checks the version counter before the slot copy completes; the re-check must follow the last slot load", name)
		}
	}
}

// receiverTypeName resolves a method's receiver to the named type it is
// declared on (through pointers and generic instantiation).
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// isFieldUse reports whether e denotes one of the given field objects
// (e.g. r.version).
func isFieldUse(pass *analysis.Pass, e ast.Expr, fields map[types.Object]bool) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		return fields[s.Obj()]
	}
	return false
}

// isSnapshotUse reports whether e is a use of a recorded version-snapshot
// variable.
func isSnapshotUse(pass *analysis.Pass, e ast.Expr, snapshots map[types.Object]bool) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return snapshots[pass.TypesInfo.Uses[id]]
}

// isAtomicInt reports whether t is one of sync/atomic's integer types.
func isAtomicInt(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Uint32", "Uint64", "Int32", "Int64", "Uintptr":
		return true
	}
	return false
}

// containsAtomicInt reports whether t is an array or slice (possibly
// nested) whose element type is an atomic integer — the shape of seqlock
// data slots.
func containsAtomicInt(t types.Type) bool {
	switch t := t.(type) {
	case *types.Array:
		return isAtomicInt(t.Elem()) || containsAtomicInt(t.Elem())
	case *types.Slice:
		return isAtomicInt(t.Elem()) || containsAtomicInt(t.Elem())
	}
	return false
}

// isAtomicIntMethodRecv reports whether fn is a method of a sync/atomic
// integer type.
func isAtomicIntMethodRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isAtomicInt(t)
}

// hasFieldMarker reports whether the field carries the explicit
// //bloom:seqlock-version marker in its doc or line comment.
func hasFieldMarker(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == markVersion {
				return true
			}
		}
	}
	return false
}
