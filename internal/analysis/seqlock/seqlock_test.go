package seqlock_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/seqlock"
)

func TestSeqlock(t *testing.T) {
	atest.Run(t, "testdata", seqlock.Analyzer, "a")
}
