// Package analysis gathers bloomvet, the repository's static-analysis
// suite: a family of golang.org/x/tools/go/analysis analyzers that encode
// the paper's implementation invariants as compile-time checks.
//
// The runtime checkers (proof.Certify, atomicity.Check, the -race soaks)
// validate one schedule at a time; the analyzers here validate the code for
// every schedule, by construction:
//
//   - atomicmix: a word accessed through sync/atomic is accessed through
//     sync/atomic everywhere — a single plain load of a seqlock word or a
//     published pointer reintroduces exactly the torn reads the real
//     registers exist to rule out (Lamport's atomic-register contract).
//   - waitfree: code reachable from a //bloom:waitfree annotation never
//     blocks — no mutexes, no channel operations, no sleeps — which is the
//     paper's central claim for the construction ("no waiting, no loops").
//   - seqlock: seqlock writers finish their slot stores before publishing
//     the version counter, and seqlock readers re-check the counter after
//     copying, so a read torn by two writes is always detected.
//   - obsshard: per-channel metric shards stay cache-line padded and are
//     never copied by value, preserving both the no-false-sharing layout
//     and the atomicity of their counters.
//
// Three analyzers work on ssair, a per-function SSA-style instruction
// lowering over control-flow graphs (package ssair), which makes them
// path-sensitive and, via facts, whole-program:
//
//   - allocfree: functions annotated //bloom:noalloc are proven
//     heap-allocation-free on every path, transitively — the static twin
//     of the runtime allocs/op CI gate (//bloom:allowalloc is the cold-path
//     escape hatch).
//   - lockorder: the interprocedural lock-acquisition graph over
//     sync.Mutex/RWMutex is acyclic (no potential deadlock), and nothing
//     blocks while provably holding a lock.
//   - sharedfield: a struct field reached from more than one goroutine
//     context (spawn-site analysis over go statements and stored closures)
//     is accessed always atomically, always under one common lock, or
//     never written after initialization (//bloom:allowshared waives
//     ownership-handoff fields).
//
// The analyzers are assembled into one vet tool by cmd/bloomvet; run it as
//
//	go run ./cmd/bloomvet ./...
//
// or through go vet's unitchecker protocol:
//
//	go build -o bloomvet ./cmd/bloomvet
//	go vet -vettool=$PWD/bloomvet ./...
//
// Each analyzer lives in its own subpackage with an analysistest-style
// testdata tree of seeded violations; package atest is the self-contained
// harness that drives them (the upstream analysistest is not part of the
// vendored x/tools subset).
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/obsshard"
	"repro/internal/analysis/seqlock"
	"repro/internal/analysis/sharedfield"
	"repro/internal/analysis/waitfree"
)

// All returns the bloomvet analyzers in a fixed order: the four AST-level
// checks from the original suite, then the three ssair-based whole-program
// concurrency verifiers.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		waitfree.Analyzer,
		seqlock.Analyzer,
		obsshard.Analyzer,
		allocfree.Analyzer,
		lockorder.Analyzer,
		sharedfield.Analyzer,
	}
}
