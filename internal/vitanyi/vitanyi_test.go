package vitanyi

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/atomicity"
)

func TestSequential(t *testing.T) {
	m, err := New(4, 2, "v0", true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Writers() != 4 || m.Readers() != 2 || m.InitialValue() != "v0" {
		t.Fatal("accessors wrong")
	}
	if got := m.Reader(0).Read(); got != "v0" {
		t.Fatalf("initial read = %q", got)
	}
	// The Figure 5 sequence, non-overlapping: a correct multi-writer
	// register handles it trivially.
	m.Writer(3).Write("c")
	if got := m.Reader(0).Read(); got != "c" {
		t.Fatalf("read = %q, want c", got)
	}
	m.Writer(1).Write("d")
	if got := m.Reader(1).Read(); got != "d" {
		t.Fatalf("read = %q, want d", got)
	}
	m.Writer(0).Write("x")
	if got := m.Reader(0).Read(); got != "x" {
		t.Fatalf("read = %q, want x", got)
	}

	h := m.History()
	res, err := atomicity.CheckHistory(&h, "v0")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("sequential history not linearizable")
	}
}

// TestFigure5ShapeSurvives replays the overlap pattern that kills the
// tournament construction: one writer stalls mid-write while two others
// complete. The [VA]-style register stays atomic because the stalled
// writer's eventual publish carries a timestamp that the later writes
// supersede — its value cannot "reappear".
func TestFigure5ShapeSurvives(t *testing.T) {
	m, err := New(4, 1, "a", true)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the stalled writer by hand: collect now, publish later.
	w0 := m.Writer(0)
	op, _ := m.rec.InvokeWrite(w0.chanID(), "x")
	stale := m.collect(0) // Wr00's "real reads"

	m.Writer(3).Write("c")
	m.Writer(1).Write("d")
	if got := m.Reader(0).Read(); got != "d" {
		t.Fatalf("read before stalled publish = %q, want d", got)
	}

	// Wr00 wakes up and publishes with its stale timestamp.
	m.regs[0].Write(entry[string]{seq: stale.seq + 1, writer: 0, val: "x"})
	m.rec.RespondWrite(w0.chanID(), op)

	// The superseded values do NOT reappear: 'd' (ts 2) still wins over
	// 'x' (ts 1).
	if got := m.Reader(0).Read(); got != "d" {
		t.Fatalf("read after stalled publish = %q, want d (no reappearance)", got)
	}

	h := m.History()
	res, err := atomicity.CheckHistory(&h, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("the Figure 5 overlap broke the [VA]-style register")
	}
}

func TestConcurrentStressChecked(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		m, err := New(4, 2, "v0", true)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w := m.Writer(i)
				for k := 0; k < 5; k++ {
					w.Write(fmt.Sprintf("w%d-%d", i, k))
				}
			}(i)
		}
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				r := m.Reader(j)
				for k := 0; k < 8; k++ {
					_ = r.Read()
				}
			}(j)
		}
		wg.Wait()
		h := m.History()
		res, err := atomicity.CheckHistory(&h, "v0")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			t.Fatalf("seed %d: concurrent history not linearizable", seed)
		}
	}
}

func TestConcurrentLargeUnchecked(t *testing.T) {
	// A larger unrecorded run under -race: readers must see
	// nondecreasing per-writer generations.
	m, err := New(3, 3, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 200
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := m.Writer(i)
			for k := 1; k <= writes; k++ {
				w.Write(k)
			}
		}(i)
	}
	for j := 0; j < 3; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := m.Reader(j)
			for k := 0; k < writes; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()
}

func TestAccessesPerOp(t *testing.T) {
	m, err := New(4, 1, "v", false)
	if err != nil {
		t.Fatal(err)
	}
	r, w := m.AccessesPerOp()
	if r != 4 || w != 5 {
		t.Fatalf("AccessesPerOp = %d, %d; want 4, 5", r, w)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 1, "v", false); err == nil {
		t.Error("zero writers accepted")
	}
	if _, err := New(1, -1, "v", false); err == nil {
		t.Error("negative readers accepted")
	}
	m, _ := New(1, 1, "v", false)
	for _, f := range []func(){
		func() { m.Writer(1) },
		func() { m.Reader(1) },
		func() { m.History() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNewerOrder(t *testing.T) {
	a := entry[string]{seq: 2, writer: 0}
	b := entry[string]{seq: 1, writer: 3}
	if !newer(a, b) || newer(b, a) {
		t.Error("timestamp order wrong")
	}
	c := entry[string]{seq: 2, writer: 1}
	if !newer(c, a) || newer(a, c) {
		t.Error("writer tiebreak wrong")
	}
	if newer(a, a) {
		t.Error("newer must be irreflexive")
	}
}
