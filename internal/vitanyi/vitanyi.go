// Package vitanyi implements an unbounded-timestamp multi-writer,
// multi-reader atomic register in the style of Vitányi–Awerbuch [VA], the
// reference the paper cites for protocols that actually do extend past two
// writers (Section 8 shows the natural tournament extension fails; this
// construction is the classic approach that works).
//
// Layout: one single-writer, all-reader atomic register per writer,
// holding (timestamp, writer, value). A write collects all registers,
// picks a timestamp one larger than the maximum it saw, and publishes. A
// read collects all registers and returns the value of the lexicographically
// largest (timestamp, writer) pair.
//
// Timestamps grow without bound — the price of simplicity that the
// bounded-construction literature ([PB] and successors) works to remove;
// bounded versions are out of scope here (see DESIGN.md).
package vitanyi

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/register"
)

// entry is the content of one per-writer register.
type entry[V comparable] struct {
	seq    int64
	writer int
	val    V
}

// newer reports whether a supersedes b in the (timestamp, writer)
// lexicographic order.
func newer[V comparable](a, b entry[V]) bool {
	if a.seq != b.seq {
		return a.seq > b.seq
	}
	return a.writer > b.writer
}

// MRMW is the multi-writer multi-reader atomic register.
type MRMW[V comparable] struct {
	writers int
	readers int
	regs    []*register.Atomic[entry[V]]
	init    V
	rec     *history.Recorder[V]
}

// New builds a register with the given numbers of writers and readers,
// initialized to v0. If record is true, an external history is collected
// for post-run atomicity checking.
func New[V comparable](writers, readers int, v0 V, record bool) (*MRMW[V], error) {
	if writers < 1 || readers < 0 {
		return nil, fmt.Errorf("vitanyi: invalid configuration: %d writers, %d readers", writers, readers)
	}
	seq := new(history.Sequencer)
	m := &MRMW[V]{writers: writers, readers: readers, init: v0}
	ports := writers + readers
	m.regs = make([]*register.Atomic[entry[V]], writers)
	for w := range m.regs {
		m.regs[w] = register.NewAtomic(ports, entry[V]{val: v0, writer: -1}, seq)
	}
	if record {
		m.rec = history.NewRecorder[V](seq)
	}
	return m, nil
}

// Writers returns the number of writers.
func (m *MRMW[V]) Writers() int { return m.writers }

// Readers returns the number of dedicated readers.
func (m *MRMW[V]) Readers() int { return m.readers }

// History returns the external history recorded so far; it panics if the
// register was built without recording.
func (m *MRMW[V]) History() history.History[V] {
	if m.rec == nil {
		panic("vitanyi: register built without recording")
	}
	return m.rec.Snapshot()
}

// InitialValue returns v0.
func (m *MRMW[V]) InitialValue() V { return m.init }

// collect reads every per-writer register through the given port and
// returns the lexicographically largest entry.
func (m *MRMW[V]) collect(port int) entry[V] {
	best := m.regs[0].Read(port)
	for _, r := range m.regs[1:] {
		if e := r.Read(port); newer(e, best) {
			best = e
		}
	}
	return best
}

// Writer is the handle for one writer; it is one sequential automaton.
type Writer[V comparable] struct {
	m *MRMW[V]
	i int
}

// Writer returns the handle for writer i (0-based).
func (m *MRMW[V]) Writer(i int) *Writer[V] {
	if i < 0 || i >= m.writers {
		panic(fmt.Sprintf("vitanyi: writer %d out of range [0,%d)", i, m.writers))
	}
	return &Writer[V]{m: m, i: i}
}

// chan IDs: writers 0..w-1; readers w..w+r-1.
func (w *Writer[V]) chanID() history.ProcID { return history.ProcID(w.i) }

// Write performs one write: collect, bump the max timestamp, publish.
func (w *Writer[V]) Write(v V) {
	var op int
	if w.m.rec != nil {
		op, _ = w.m.rec.InvokeWrite(w.chanID(), v)
	}
	best := w.m.collect(w.i)
	w.m.regs[w.i].Write(entry[V]{seq: best.seq + 1, writer: w.i, val: v})
	if w.m.rec != nil {
		w.m.rec.RespondWrite(w.chanID(), op)
	}
}

// Reader is the handle for one reader; it is one sequential automaton.
type Reader[V comparable] struct {
	m *MRMW[V]
	j int
}

// Reader returns the handle for reader j (0-based).
func (m *MRMW[V]) Reader(j int) *Reader[V] {
	if j < 0 || j >= m.readers {
		panic(fmt.Sprintf("vitanyi: reader %d out of range [0,%d)", j, m.readers))
	}
	return &Reader[V]{m: m, j: j}
}

func (r *Reader[V]) chanID() history.ProcID { return history.ProcID(r.m.writers + r.j) }

// Read returns the value of the largest (timestamp, writer) pair.
func (r *Reader[V]) Read() V {
	var op int
	if r.m.rec != nil {
		op, _ = r.m.rec.InvokeRead(r.chanID())
	}
	best := r.m.collect(r.m.writers + r.j)
	if r.m.rec != nil {
		r.m.rec.RespondRead(r.chanID(), op, best.val)
	}
	return best.val
}

// AccessesPerOp returns the number of real-register accesses one
// operation costs: a read collects n registers; a write collects n and
// publishes once. Contrast with Bloom's two-writer costs (3 and 2).
func (m *MRMW[V]) AccessesPerOp() (read, write int) {
	return m.writers, m.writers + 1
}
