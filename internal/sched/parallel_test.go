package sched

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/proof"
)

func TestExploreParallelMatchesSequentialCount(t *testing.T) {
	cfg := Config{Writes: [2]int{2, 1}, Readers: []int{2}}
	want, err := Explore(cfg, Faithful, func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreParallel(cfg, Faithful, 4, func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel visited %d schedules, sequential %d", got, want)
	}
}

func TestExploreParallelCertifiesEverything(t *testing.T) {
	cfg := Config{Writes: [2]int{2, 2}, Readers: []int{2}}
	n, err := ExploreParallel(cfg, Faithful, 0, func(r *Result) error {
		_, err := proof.Certify(r.Trace)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := CountSchedules(cfg, Faithful); n != want {
		t.Fatalf("visited %d schedules, want %d", n, want)
	}
}

func TestExploreParallelPropagatesError(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	boom := errors.New("boom")
	var fired atomic.Int64
	_, err := ExploreParallel(cfg, Faithful, 4, func(*Result) error {
		if fired.Add(1) == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestExploreParallelStopsSilently(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	var fired atomic.Int64
	n, err := ExploreParallel(cfg, Faithful, 4, func(*Result) error {
		if fired.Add(1) == 5 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStop leaked: %v", err)
	}
	if n == 0 {
		t.Fatal("no schedules counted before stop")
	}
}

func TestExploreParallelEmptyConfig(t *testing.T) {
	n, err := ExploreParallel(Config{}, Faithful, 2, func(r *Result) error {
		if len(r.Trace.Writes)+len(r.Trace.Reads) != 0 {
			t.Fatal("empty config produced operations")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("empty config visited %d schedules, want 1", n)
	}
}

func TestExploreParallelWriterReads(t *testing.T) {
	cfg := Config{WriterSeq: [2]string{"wr", "w"}, Readers: []int{1}}
	want, err := Explore(cfg, Faithful, func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreParallel(cfg, Faithful, 3, func(r *Result) error {
		_, err := proof.Certify(r.Trace)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel visited %d, sequential %d", got, want)
	}
}
