package sched

import (
	"testing"

	"repro/internal/atomicity"
	"repro/internal/proof"
)

// TestWriterReadsCertifyExhaustively verifies the Section 5 local-copy
// optimization over EVERY interleaving: both writers interleave writes and
// reads (as combined automata) against a dedicated reader, and each
// schedule — including the virtual own-register accesses — certifies.
func TestWriterReadsCertifyExhaustively(t *testing.T) {
	cfg := Config{
		WriterSeq: [2]string{"wr", "rw"},
		Readers:   []int{2},
	}
	var agg proof.Report
	var virtuals int64
	n, err := Explore(cfg, Faithful, func(r *Result) error {
		lin, err := proof.Certify(r.Trace)
		if err != nil {
			t.Logf("failing schedule: %v", r.Sched)
			return err
		}
		agg.ReadsOfPotent += lin.Report.ReadsOfPotent
		agg.ReadsOfImp += lin.Report.ReadsOfImp
		agg.ReadsOfInitial += lin.Report.ReadsOfInitial
		agg.ImpotentWrites += lin.Report.ImpotentWrites
		for _, rr := range r.Trace.Reads {
			if rr.Virtual0 || rr.Virtual1 {
				virtuals++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no schedules explored")
	}
	if virtuals == 0 {
		t.Fatal("no virtual reads occurred; the optimization was unexercised")
	}
	t.Logf("explored %d schedules; virtual-read ops %d; classification %+v", n, virtuals, agg)
	if agg.ImpotentWrites == 0 || agg.ReadsOfImp == 0 {
		t.Error("interesting cases unexercised with writer-readers present")
	}
}

// TestWriterReadsCrossChecked confirms the generic checker agrees on a
// smaller writer-read configuration.
func TestWriterReadsCrossChecked(t *testing.T) {
	cfg := Config{
		WriterSeq: [2]string{"wr", "w"},
		Readers:   []int{1},
	}
	_, err := Explore(cfg, Faithful, func(r *Result) error {
		if _, err := proof.Certify(r.Trace); err != nil {
			return err
		}
		res, err := atomicity.Check(r.Trace.Ops(), InitValue)
		if err != nil {
			return err
		}
		if !res.Linearizable {
			t.Fatalf("generic checker rejected writer-read schedule %v", r.Sched)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriterReadSeesOwnWriteImmediately pins the one-real-read fast path:
// right after writer 0 writes, the tag sum equals its index, so its next
// read costs a single real access (the read of Reg1); the own-register
// accesses — the first sample and the final read — are virtual.
func TestWriterReadSeesOwnWriteImmediately(t *testing.T) {
	cfg := Config{WriterSeq: [2]string{"wr", ""}, Readers: nil}
	// Writer 0 alone: write (2 steps), then read (must take 1 step).
	res, err := RunScript(cfg, Faithful, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Reads) != 1 {
		t.Fatalf("got %d reads", len(res.Trace.Reads))
	}
	rr := res.Trace.Reads[0]
	if !rr.Virtual0 || !rr.Virtual2 || rr.Virtual1 {
		t.Fatalf("virtual pattern wrong: %+v", rr)
	}
	if rr.Ret != WriteValue(0, 0) {
		t.Fatalf("writer read %d, want its own write %d", rr.Ret, WriteValue(0, 0))
	}
	if _, err := proof.Certify(res.Trace); err != nil {
		t.Fatal(err)
	}
}

// TestWriterReadTwoRealReads pins the two-real-read slow path: after the
// OTHER writer's write flips the tag sum, writer 0's read targets Reg1 and
// needs a second real access.
func TestWriterReadTwoRealReads(t *testing.T) {
	cfg := Config{WriterSeq: [2]string{"r", "w"}, Readers: nil}
	// Writer 1 completes its write (2 steps), then writer 0 reads: the
	// sum of tags is now 1 ≠ 0, so the read takes 2 steps.
	res, err := RunScript(cfg, Faithful, []int{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Trace.Reads[0]
	if rr.Virtual2 {
		t.Fatalf("final read should be real: %+v", rr)
	}
	if rr.R2Reg != 1 || rr.Ret != WriteValue(1, 0) {
		t.Fatalf("read %d from Reg%d, want writer 1's value from Reg1", rr.Ret, rr.R2Reg)
	}
	if _, err := proof.Certify(res.Trace); err != nil {
		t.Fatal(err)
	}
}

// TestWriterReadCrashExploration crashes combined automata mid-read too.
func TestWriterReadCrashExploration(t *testing.T) {
	cfg := Config{WriterSeq: [2]string{"r", "w"}, Readers: []int{1}}
	crashedReads := 0
	_, err := ExploreWithCrashes(cfg, Faithful, 1, func(r *CrashResult) error {
		for _, rr := range r.Trace.Reads {
			if rr.Crashed && rr.ReaderIndex == -1 {
				crashedReads++
			}
		}
		_, err := proof.Certify(r.Trace)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if crashedReads == 0 {
		t.Fatal("no writer-read crashed mid-operation; crash path unexercised")
	}
}

// TestCountSchedulesWriterReads pins the -1 sentinel.
func TestCountSchedulesWriterReads(t *testing.T) {
	cfg := Config{WriterSeq: [2]string{"r", ""}, Readers: nil}
	if got := CountSchedules(cfg, Faithful); got != -1 {
		t.Fatalf("CountSchedules = %d, want -1 for data-dependent configs", got)
	}
	// And WriterSeq of all-'w' agrees with Writes.
	a := Config{Writes: [2]int{2, 1}, Readers: []int{1}}
	b := Config{WriterSeq: [2]string{"ww", "w"}, Readers: []int{1}}
	if CountSchedules(a, Faithful) != CountSchedules(b, Faithful) {
		t.Fatal("WriterSeq all-w disagrees with Writes")
	}
}
