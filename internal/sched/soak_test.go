package sched

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/proof"
)

// TestSoakExhaustive is the opt-in deep exploration: millions of
// schedules, certified in parallel. It runs only when SOAK=1 is set,
// keeping the default suite fast:
//
//	SOAK=1 go test ./internal/sched -run TestSoakExhaustive -v -timeout 30m
func TestSoakExhaustive(t *testing.T) {
	if os.Getenv("SOAK") == "" {
		t.Skip("set SOAK=1 to run the deep exhaustive exploration")
	}
	cfgs := []Config{
		{Writes: [2]int{2, 2}, Readers: []int{1, 1}}, // 4,204,200 schedules
		{Writes: [2]int{3, 2}, Readers: []int{2}},
		{WriterSeq: [2]string{"wrw", "rwr"}, Readers: []int{2}},
	}
	for _, cfg := range cfgs {
		n, err := ExploreParallel(cfg, Faithful, runtime.GOMAXPROCS(0), func(r *Result) error {
			_, err := proof.Certify(r.Trace)
			return err
		})
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		t.Logf("config %+v: %d schedules certified", cfg, n)
	}
}
