// Package sched explores interleavings of Bloom's two-writer protocol as a
// deterministic step machine: the "formal mode" counterpart of the
// goroutine implementation in package core.
//
// Each processor (two writers, n readers) is compiled to its I/O-automaton
// step function; one step is one real-register access. An interleaving is
// a sequence of processor indices; the explorer enumerates all of them
// (exhaustively for small configurations, by seeded sampling for larger
// ones) and hands each completed schedule to a visitor as a core.Trace, so
// the Section 7 certifier and the exhaustive checker can pass judgment on
// every reachable schedule.
//
// Writers can be configured as the paper's combined writer/reader automata
// (WriterSeq), exercising the local-copy optimization: their simulated
// reads serve the own-register accesses virtually and cost one or two real
// reads.
//
// The machine also implements deliberately broken protocol variants
// (ablations): removing the tag bit, dropping the third read, writing
// before reading, or using the wrong tag rule. Exploring these finds
// concrete non-atomic schedules, demonstrating why each element of the
// protocol is necessary.
package sched

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/history"
)

// Variant selects the protocol the step machine runs.
type Variant int

// Protocol variants. Faithful is the paper's protocol; the others are
// ablations that each break atomicity.
const (
	// Faithful is the protocol of Section 5.
	Faithful Variant = iota + 1
	// NoThirdRead makes the reader return v0 or v1 (the value it read
	// alongside the chosen tag) instead of performing the third real
	// read. Ablation: the re-read is what protects against a write
	// landing between the tag sample and the return.
	NoThirdRead
	// WrongTagRule makes the writer set t := t' instead of t := i ⊕ t'.
	// Ablation: writers no longer "pull" the tag sum toward their own
	// index, so readers are directed to stale registers.
	WrongTagRule
	// WriteFirst makes the writer write (with the tag it last observed)
	// before performing its read. Ablation: the single-real-write-last
	// discipline is what makes writes take effect atomically.
	WriteFirst
	// NoTagBit freezes both tags at 0, so readers always read Reg0.
	// Ablation: without the tag, Wr1's writes are invisible.
	NoTagBit
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Faithful:
		return "faithful"
	case NoThirdRead:
		return "no-third-read"
	case WrongTagRule:
		return "wrong-tag-rule"
	case WriteFirst:
		return "write-first"
	case NoTagBit:
		return "no-tag-bit"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config sizes a scenario. Writer i performs Writes[i] simulated writes
// with distinct values WriteValue(i, k); reader j performs Readers[j]
// simulated reads. The register starts at InitValue.
//
// WriterSeq optionally turns writer i into the paper's combined
// writer/reader automaton: a string over 'w' (simulated write) and 'r'
// (simulated read with the local-copy optimization), performed in order.
// When WriterSeq[i] is empty it defaults to Writes[i] × 'w'.
type Config struct {
	Writes    [2]int
	Readers   []int
	WriterSeq [2]string
}

// seqFor returns writer i's operation sequence.
func (c Config) seqFor(i int) string {
	if c.WriterSeq[i] != "" {
		return c.WriterSeq[i]
	}
	return strings.Repeat("w", c.Writes[i])
}

// hasWriterReads reports whether any writer performs simulated reads
// (which makes schedule lengths data-dependent).
func (c Config) hasWriterReads() bool {
	return strings.ContainsRune(c.WriterSeq[0], 'r') || strings.ContainsRune(c.WriterSeq[1], 'r')
}

// InitValue is the simulated register's initial value in explorer runs.
const InitValue = 0

// WriteValue returns the value writer i writes in its k-th simulated write
// (0-based). Values are globally unique so reads-from is unambiguous.
func WriteValue(i, k int) int { return (i+1)*1000 + k + 1 }

// TotalSteps returns the maximum number of machine steps a full run takes
// (exact when no writer performs simulated reads; a writer read takes one
// or two steps depending on the tags it encounters).
func (c Config) TotalSteps(v Variant) int {
	perWrite := 2 // real read + real write
	perRead := 3  // three real reads
	if v == NoThirdRead {
		perRead = 2
	}
	var n int
	for i := 0; i < 2; i++ {
		for _, op := range c.seqFor(i) {
			if op == 'w' {
				n += perWrite
			} else {
				n += 2 // upper bound: a writer read is 1–2 real accesses
			}
		}
	}
	for _, r := range c.Readers {
		n += r * perRead
	}
	return n
}

// Stamp layout: each machine step s performs exactly one real access at
// stamp 16s+16. Around an access at stamp a, sub-events take fixed slots:
//
//	a-7  invocation (when this is the operation's first access)
//	a-2  virtual read served from the local copy, ordered before a
//	a    the real access
//	a+2  virtual read ordered after a
//	a+3  second virtual read ordered after a
//	a+7  acknowledgment (when this is the operation's last access)
//
// All slots are distinct across steps (16 > 7+7+1), so stamps form one
// total order. This is the "narrow interval" convention: invocations and
// acknowledgments hug the operation's real accesses, which only shrinks
// intervals relative to the goroutine implementation and therefore makes
// the atomicity check strictly harder to pass, never easier.
const (
	stampStride   = 16
	slotInvoke    = -7
	slotVirtBefor = -2
	slotVirtAfter = 2
	slotVirtAftr2 = 3
	slotRespond   = 7
)

// cell is a real register's content.
type cell struct {
	val int
	tag uint8
}

// A machine (and the automaton states inside it) is single-owner state:
// sequential exploration mutates one machine on one goroutine, and the
// parallel explorer hands each cloned machine to exactly one worker
// through the tasks channel — the handoff is the happens-before, and a
// clone never escapes its worker. The sharedfield pass is instance-blind
// and cannot see per-instance confinement, hence the waivers.

// wstate is a writer's automaton state.
//
//bloom:allowshared
type wstate struct {
	done       int // completed simulated operations (index into seqFor)
	writesDone int // completed simulated writes (for value numbering)
	// phase: 0 = between operations / before a write's real read;
	// 1 = write in flight, real read done; 2 = writer-read in flight,
	// first pass done, second real read of Reg¬i needed.
	phase   int
	readTag uint8
	readVal int
	rec     core.WriteRec[int] // write record under construction
	rrec    core.ReadRec[int]  // writer-read record under construction
}

// rstate is a reader's automaton state.
//
//bloom:allowshared
type rstate struct {
	done   int
	phase  int // 0,1,2: next real read to perform
	t0, t1 uint8
	v0, v1 int
	rec    core.ReadRec[int]
}

// machine is the composed system state.
//
//bloom:allowshared
type machine struct {
	cfg     Config
	variant Variant
	regs    [2]cell
	ws      [2]wstate
	rs      []rstate
	step    int // machine steps taken so far

	writes []core.WriteRec[int]
	reads  []core.ReadRec[int]
	sched  []int // processor index per step, for replay/diagnostics
}

func newMachine(cfg Config, v Variant) *machine {
	return &machine{
		cfg:     cfg,
		variant: v,
		regs:    [2]cell{{val: InitValue}, {val: InitValue}},
		rs:      make([]rstate, len(cfg.Readers)),
	}
}

// numProcs returns the number of processors: writers 0 and 1, then readers.
func (m *machine) numProcs() int { return 2 + len(m.rs) }

// enabled reports whether processor p has a step to take.
func (m *machine) enabled(p int) bool {
	if p < 2 {
		return m.ws[p].done < len(m.cfg.seqFor(p))
	}
	j := p - 2
	return m.rs[j].done < m.cfg.Readers[j]
}

// done reports whether every processor has finished all its operations.
func (m *machine) done() bool {
	for p := 0; p < m.numProcs(); p++ {
		if m.enabled(p) {
			return false
		}
	}
	return true
}

func (m *machine) accessStamp() int64 { return int64(m.step)*stampStride + stampStride }

// doStep advances processor p by one step. The caller must ensure p is
// enabled.
func (m *machine) doStep(p int) {
	stamp := m.accessStamp()
	if p < 2 {
		m.writerStep(p, stamp)
	} else {
		m.readerStep(p-2, stamp)
	}
	m.sched = append(m.sched, p)
	m.step++
}

func (m *machine) writerStep(i int, stamp int64) {
	w := &m.ws[i]
	if w.phase == 2 || (w.phase == 0 && m.cfg.seqFor(i)[w.done] == 'r') {
		m.writerReadStep(i, stamp)
		return
	}
	val := WriteValue(i, w.writesDone)
	writeFirst := m.variant == WriteFirst

	if w.phase == 0 {
		w.rec = core.WriteRec[int]{
			OpID:       opID(i, w.done),
			Writer:     i,
			Val:        val,
			InvokeSeq:  stamp + slotInvoke,
			RespondSeq: history.PendingSeq,
		}
		if writeFirst {
			// Ablation: perform the real write first, using the tag
			// the writer would have computed from its previous read
			// (stale; initially 0).
			t := m.mutTag(i, w.readTag)
			m.regs[i] = cell{val: val, tag: t}
			w.rec.DidWrite = true
			w.rec.WriteSeq = stamp
			w.rec.WriteTag = t
			w.phase = 1
			return
		}
		other := m.regs[1-i]
		w.readTag, w.readVal = other.tag, other.val
		w.rec.DidRead = true
		w.rec.ReadSeq = stamp
		w.rec.ReadTag = other.tag
		w.rec.ReadVal = other.val
		w.phase = 1
		return
	}

	// Second phase of a write.
	if writeFirst {
		// The (now useless) read.
		other := m.regs[1-i]
		w.readTag, w.readVal = other.tag, other.val
		w.rec.DidRead = true
		w.rec.ReadSeq = stamp
		w.rec.ReadTag = other.tag
		w.rec.ReadVal = other.val
	} else {
		t := m.mutTag(i, w.readTag)
		m.regs[i] = cell{val: val, tag: t}
		w.rec.DidWrite = true
		w.rec.WriteSeq = stamp
		w.rec.WriteTag = t
	}
	w.rec.RespondSeq = stamp + slotRespond
	m.writes = append(m.writes, w.rec)
	w.phase = 0
	w.done++
	w.writesDone++
}

// writerReadStep performs one step of a combined writer/reader simulated
// read (Section 5's optimization): the own-register accesses are served
// from the machine's register state — which IS the writer's local copy,
// since only this writer mutates it — at virtual stamps adjacent to the
// real access.
func (m *machine) writerReadStep(i int, stamp int64) {
	w := &m.ws[i]
	if w.phase == 2 {
		// Second real read of Reg¬i.
		other := m.regs[1-i]
		w.rrec.R2Seq, w.rrec.R2Reg, w.rrec.Ret = stamp, 1-i, other.val
		w.rrec.RespondSeq = stamp + slotRespond
		m.reads = append(m.reads, w.rrec)
		w.phase = 0
		w.done++
		return
	}

	own, other := m.regs[i], m.regs[1-i]
	rr := core.ReadRec[int]{
		OpID:        opID(i, w.done),
		Proc:        core.ChanWriterRead(i),
		ReaderIndex: -1,
		InvokeSeq:   stamp + slotInvoke,
		RespondSeq:  history.PendingSeq,
	}
	if i == 0 {
		// R0 is the virtual read of Reg0 (own), R1 the real read of Reg1.
		rr.R0Seq, rr.T0, rr.Virtual0 = stamp+slotVirtBefor, own.tag, true
		rr.R1Seq, rr.T1 = stamp, other.tag
	} else {
		rr.R0Seq, rr.T0 = stamp, other.tag
		rr.R1Seq, rr.T1, rr.Virtual1 = stamp+slotVirtAfter, own.tag, true
	}
	target := int(rr.T0 ^ rr.T1)
	if target == i {
		// Serve the final read locally too: one real access total.
		rr.R2Seq, rr.R2Reg, rr.Virtual2, rr.Ret = stamp+slotVirtAftr2, i, true, own.val
		rr.RespondSeq = stamp + slotRespond
		m.reads = append(m.reads, rr)
		w.done++
		return
	}
	// The target is the other register: a second real access is needed.
	rr.R2Reg = 1 - i
	w.rrec = rr
	w.phase = 2
}

// mutTag applies the variant's tag rule.
func (m *machine) mutTag(i int, readTag uint8) uint8 {
	switch m.variant {
	case WrongTagRule:
		return readTag
	case NoTagBit:
		return 0
	default:
		return uint8(i) ^ readTag
	}
}

func (m *machine) readerStep(j int, stamp int64) {
	r := &m.rs[j]
	switch r.phase {
	case 0:
		r.rec = core.ReadRec[int]{
			OpID:        opID(2+j, r.done),
			Proc:        core.ChanReader(j + 1),
			ReaderIndex: j + 1,
			InvokeSeq:   stamp + slotInvoke,
			RespondSeq:  history.PendingSeq,
		}
		c := m.regs[0]
		r.t0, r.v0 = c.tag, c.val
		r.rec.R0Seq, r.rec.T0 = stamp, c.tag
		r.phase = 1
	case 1:
		c := m.regs[1]
		r.t1, r.v1 = c.tag, c.val
		r.rec.R1Seq, r.rec.T1 = stamp, c.tag
		if m.variant == NoThirdRead {
			// Ablation: return the value sampled alongside the tag.
			target := int(r.t0 ^ r.t1)
			ret := r.v0
			if target == 1 {
				ret = r.v1
			}
			// Fabricate the "third read" just after the second so
			// downstream consumers see a structurally complete record;
			// the certifier will reject it (correctly).
			r.rec.R2Seq, r.rec.R2Reg, r.rec.Ret = stamp+slotVirtAfter, target, ret
			r.rec.RespondSeq = stamp + slotRespond
			m.reads = append(m.reads, r.rec)
			r.phase = 0
			r.done++
			return
		}
		r.phase = 2
	case 2:
		target := int(r.t0 ^ r.t1)
		c := m.regs[target]
		r.rec.R2Seq, r.rec.R2Reg, r.rec.Ret = stamp, target, c.val
		r.rec.RespondSeq = stamp + slotRespond
		m.reads = append(m.reads, r.rec)
		r.phase = 0
		r.done++
	}
}

// opID assigns globally unique operation IDs per (processor, op index).
func opID(proc, k int) int { return proc*10000 + k }

// trace packages the completed run.
func (m *machine) trace() core.Trace[int] {
	return core.Trace[int]{
		Init:   InitValue,
		Writes: append([]core.WriteRec[int](nil), m.writes...),
		Reads:  append([]core.ReadRec[int](nil), m.reads...),
	}
}

// clone deep-copies the machine for branching search.
func (m *machine) clone() *machine {
	c := *m
	c.rs = append([]rstate(nil), m.rs...)
	c.writes = append([]core.WriteRec[int](nil), m.writes...)
	c.reads = append([]core.ReadRec[int](nil), m.reads...)
	c.sched = append([]int(nil), m.sched...)
	return &c
}
