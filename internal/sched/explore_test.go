package sched

import (
	"testing"

	"repro/internal/atomicity"
	"repro/internal/proof"
)

func TestCountSchedulesMatchesExplore(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	want := CountSchedules(cfg, Faithful)
	got, err := Explore(cfg, Faithful, func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Explore visited %d schedules, CountSchedules says %d", got, want)
	}
	// 2+2+3 steps: 7!/(2!2!3!) = 210.
	if want != 210 {
		t.Fatalf("CountSchedules = %d, want 210", want)
	}
}

// TestEveryScheduleCertifies is the paper's main theorem, checked
// exhaustively: over every interleaving of the configuration, the Section
// 7 construction produces a valid linearization. It also confirms that the
// state space actually exercises the interesting cases (impotent writes,
// reads of impotent writes — Figures 3 and 4 territory) rather than
// vacuously passing.
func TestEveryScheduleCertifies(t *testing.T) {
	cfg := Config{Writes: [2]int{2, 2}, Readers: []int{2}}
	if testing.Short() {
		cfg = Config{Writes: [2]int{2, 1}, Readers: []int{1}}
	}
	var agg proof.Report
	n, err := Explore(cfg, Faithful, func(r *Result) error {
		lin, err := proof.Certify(r.Trace)
		if err != nil {
			t.Logf("failing schedule: %v", r.Sched)
			return err
		}
		rep := lin.Report
		agg.PotentWrites += rep.PotentWrites
		agg.ImpotentWrites += rep.ImpotentWrites
		agg.ReadsOfPotent += rep.ReadsOfPotent
		agg.ReadsOfImp += rep.ReadsOfImp
		agg.ReadsOfInitial += rep.ReadsOfInitial
		return nil
	})
	if err != nil {
		t.Fatalf("a schedule failed certification: %v", err)
	}
	if n != CountSchedules(cfg, Faithful) {
		t.Fatalf("visited %d schedules, want %d", n, CountSchedules(cfg, Faithful))
	}
	t.Logf("explored %d schedules: %+v", n, agg)
	if agg.ImpotentWrites == 0 {
		t.Error("no schedule produced an impotent write; state space too small to be meaningful")
	}
	if agg.ReadsOfImp == 0 {
		t.Error("no schedule produced a read of an impotent write (Figure 4 case unexercised)")
	}
	if agg.ReadsOfInitial == 0 || agg.ReadsOfPotent == 0 || agg.PotentWrites == 0 {
		t.Error("some Section 7 case was never exercised")
	}
}

// TestExhaustiveAgreement cross-checks the certifier against the generic
// exhaustive linearizability checker on every schedule of a small
// configuration: both must accept.
func TestExhaustiveAgreement(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{2}}
	_, err := Explore(cfg, Faithful, func(r *Result) error {
		if _, err := proof.Certify(r.Trace); err != nil {
			return err
		}
		res, err := atomicity.Check(r.Trace.Ops(), InitValue)
		if err != nil {
			return err
		}
		if !res.Linearizable {
			t.Fatalf("generic checker rejected schedule %v that the certifier accepted", r.Sched)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAblationsBreakAtomicity verifies that every protocol mutant has at
// least one reachable non-atomic schedule — i.e., each protocol element is
// load-bearing — while the faithful protocol has none.
func TestAblationsBreakAtomicity(t *testing.T) {
	// NoThirdRead is the subtlest mutation: a single read cannot exhibit
	// an inversion (the sampled value is always current at some instant
	// inside the read), so it needs two writes per writer and two
	// sequential reads before a stale two-generations-old value can
	// escape. The other mutations fail in the minimal configuration.
	cfgFor := func(v Variant) Config {
		if v == NoThirdRead {
			return Config{Writes: [2]int{2, 2}, Readers: []int{2}}
		}
		return Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	}
	for _, v := range []Variant{NoThirdRead, WrongTagRule, WriteFirst, NoTagBit} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			var badSched []int
			_, err := Explore(cfgFor(v), v, func(r *Result) error {
				res, err := atomicity.Check(r.Trace.Ops(), InitValue)
				if err != nil {
					return err
				}
				if !res.Linearizable {
					badSched = r.Sched
					return ErrStop
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if badSched == nil {
				t.Fatalf("ablation %v: no non-atomic schedule found; the mutation is not load-bearing", v)
			}
			t.Logf("ablation %v: non-atomic schedule %v", v, badSched)
		})
	}

	// Control: the faithful protocol survives the same exhaustive search.
	bad := false
	_, err := Explore(cfgFor(Faithful), Faithful, func(r *Result) error {
		res, err := atomicity.Check(r.Trace.Ops(), InitValue)
		if err != nil {
			return err
		}
		if !res.Linearizable {
			bad = true
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("faithful protocol produced a non-atomic schedule")
	}
}

// TestSlowReaderScript drives the paper's slow-reader scenario (the
// situation of Figure 4 / Section 7.2's discussion): a reader samples both
// tags, sleeps through a prefinished write, and ends up returning an
// impotent write's value — legally.
func TestSlowReaderScript(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	// reader, reader, W0 read, W1 read, W1 write, W0 write, reader.
	script := []int{2, 2, 0, 1, 1, 0, 2}
	res, err := RunScript(cfg, Faithful, script)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := proof.Certify(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	rep := lin.Report
	if rep.ImpotentWrites != 1 || rep.PotentWrites != 1 {
		t.Fatalf("report = %+v, want exactly one impotent and one potent write", rep)
	}
	if rep.ReadsOfImp != 1 {
		t.Fatalf("report = %+v, want the read to return the impotent write", rep)
	}
	// The impotent write is W0 (writer 0's only write), prefinished by W1.
	w0ID, w1ID := opID(0, 0), opID(1, 0)
	if got := rep.Prefinisher[w0ID]; got != w1ID {
		t.Fatalf("prefinisher of W0 = op %d, want op %d (W1)", got, w1ID)
	}
}

func TestRunScriptRejectsBadScripts(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 0}, Readers: nil}
	if _, err := RunScript(cfg, Faithful, []int{5}); err == nil {
		t.Error("unknown processor accepted")
	}
	if _, err := RunScript(cfg, Faithful, []int{1}); err == nil {
		t.Error("disabled processor accepted")
	}
	if _, err := RunScript(cfg, Faithful, []int{0}); err == nil {
		t.Error("incomplete script accepted")
	}
	if _, err := RunScript(cfg, Faithful, []int{0, 0}); err != nil {
		t.Errorf("complete script rejected: %v", err)
	}
}

func TestSampleCertifies(t *testing.T) {
	cfg := Config{Writes: [2]int{5, 5}, Readers: []int{4, 4}}
	runs := 0
	err := Sample(cfg, Faithful, 200, 42, func(r *Result) error {
		runs++
		_, err := proof.Certify(r.Trace)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 200 {
		t.Fatalf("ran %d samples, want 200", runs)
	}
}

func TestSampleDeterministicForSeed(t *testing.T) {
	cfg := Config{Writes: [2]int{2, 2}, Readers: []int{2}}
	collect := func(seed int64) [][]int {
		var scheds [][]int
		if err := Sample(cfg, Faithful, 5, seed, func(r *Result) error {
			scheds = append(scheds, append([]int(nil), r.Sched...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return scheds
	}
	a, b := collect(7), collect(7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("same seed, different schedules")
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatal("same seed, different schedules")
			}
		}
	}
}

func TestWriteValueUnique(t *testing.T) {
	seen := map[int]bool{InitValue: true}
	for i := 0; i < 2; i++ {
		for k := 0; k < 100; k++ {
			v := WriteValue(i, k)
			if seen[v] {
				t.Fatalf("WriteValue(%d,%d) = %d collides", i, k, v)
			}
			seen[v] = true
		}
	}
}

func TestTotalSteps(t *testing.T) {
	cfg := Config{Writes: [2]int{2, 1}, Readers: []int{3, 1}}
	if got := cfg.TotalSteps(Faithful); got != 2*2+1*2+3*3+1*3 {
		t.Fatalf("TotalSteps faithful = %d", got)
	}
	if got := cfg.TotalSteps(NoThirdRead); got != 2*2+1*2+3*2+1*2 {
		t.Fatalf("TotalSteps no-third-read = %d", got)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Faithful:     "faithful",
		NoThirdRead:  "no-third-read",
		WrongTagRule: "wrong-tag-rule",
		WriteFirst:   "write-first",
		NoTagBit:     "no-tag-bit",
		Variant(42):  "Variant(42)",
	}
	for v, want := range names {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", v, got, want)
		}
	}
}
