package sched

import (
	"testing"

	"repro/internal/atomicity"
	"repro/internal/proof"
)

// TestExploreWithCrashesCertifies is the abstract's fault-tolerance claim
// ("can survive the failure of any set of readers and writers") checked
// exhaustively: every interleaving of protocol steps and crash points
// still certifies atomic. (Crashes interrupt processors between real
// accesses; the crash-after-real-write-before-ack case is merged into one
// step here and is covered by the goroutine tests in internal/core.)
func TestExploreWithCrashesCertifies(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	var withDrops int64
	n, err := ExploreWithCrashes(cfg, Faithful, 2, func(r *CrashResult) error {
		lin, err := proof.Certify(r.Trace)
		if err != nil {
			t.Logf("failing schedule: %v", r.Sched)
			return err
		}
		if lin.Report.DroppedWrites > 0 {
			withDrops++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := CountSchedules(cfg, Faithful)
	if n <= baseline {
		t.Fatalf("crash exploration visited %d schedules, no more than the %d crash-free ones", n, baseline)
	}
	if withDrops == 0 {
		t.Fatal("no schedule dropped a crashed write; crash points unexercised")
	}
	t.Logf("explored %d schedules (%d crash-free), %d with dropped writes", n, baseline, withDrops)
}

// TestExploreWithCrashesCrossCheck validates crash schedules against the
// generic checker as well: pending operations may or may not take effect,
// and both checkers must agree the histories are linearizable.
func TestExploreWithCrashesCrossCheck(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	_, err := ExploreWithCrashes(cfg, Faithful, 1, func(r *CrashResult) error {
		res, err := atomicity.Check(r.Trace.Ops(), InitValue)
		if err != nil {
			return err
		}
		if !res.Linearizable {
			t.Fatalf("generic checker rejected crash schedule %v", r.Sched)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashEventEncoding pins the schedule encoding of crashes.
func TestCrashEventEncoding(t *testing.T) {
	if CrashEvent(0) != -1 || CrashEvent(3) != -4 {
		t.Fatal("CrashEvent encoding changed")
	}
}

// TestExploreWithCrashesZeroBudgetMatchesExplore confirms that with no
// crash budget the exploration degenerates to the crash-free one.
func TestExploreWithCrashesZeroBudgetMatchesExplore(t *testing.T) {
	cfg := Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	n, err := ExploreWithCrashes(cfg, Faithful, 0, func(r *CrashResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := CountSchedules(cfg, Faithful); n != want {
		t.Fatalf("zero-budget crash exploration visited %d schedules, want %d", n, want)
	}
}

// TestCrashedReaderLeavesPendingRead confirms a reader crash mid-read
// produces a pending read record that the certifier drops.
func TestCrashedReaderLeavesPendingRead(t *testing.T) {
	cfg := Config{Writes: [2]int{0, 0}, Readers: []int{1}}
	found := false
	_, err := ExploreWithCrashes(cfg, Faithful, 1, func(r *CrashResult) error {
		if len(r.Trace.Reads) == 1 && r.Trace.Reads[0].Crashed {
			found = true
			lin, err := proof.Certify(r.Trace)
			if err != nil {
				return err
			}
			if lin.Report.DroppedReads != 1 {
				t.Fatalf("report = %+v, want 1 dropped read", lin.Report)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no schedule crashed the reader mid-read")
	}
}
