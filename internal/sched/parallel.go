package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ExploreParallel enumerates the same schedule space as Explore but fans
// the search out over workers goroutines (0 = GOMAXPROCS). The frontier is
// split at the root: each first-step branch becomes one task, and workers
// run depth-first searches over disjoint subtrees, so no state is shared
// except the visit callback, which must therefore be safe for concurrent
// use.
//
// If any visit returns an error, the exploration cancels and returns it
// (ErrStop cancels silently). On a full run the schedule count is exact;
// after an early stop it counts only the schedules visited before
// cancellation took effect.
func ExploreParallel(cfg Config, v Variant, workers int, visit func(*Result) error) (int64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	root := newMachine(cfg, v)
	if root.done() {
		// Zero-operation configuration: one empty schedule.
		if err := visit(&Result{Trace: root.trace()}); err != nil && !errors.Is(err, ErrStop) {
			return 0, err
		}
		return 1, nil
	}

	// Seed tasks: expand the root two levels deep to get enough
	// independent subtrees to balance across workers.
	var frontier []*machine
	expand := func(ms []*machine) []*machine {
		var out []*machine
		for _, m := range ms {
			if m.done() {
				out = append(out, m) // keep terminal nodes as tasks
				continue
			}
			for p := 0; p < m.numProcs(); p++ {
				if !m.enabled(p) {
					continue
				}
				c := m.clone()
				c.doStep(p)
				out = append(out, c)
			}
		}
		return out
	}
	frontier = expand(expand([]*machine{root}))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tasks := make(chan *machine)
	var count atomic.Int64
	var firstErr atomic.Value // error
	var wg sync.WaitGroup

	worker := func() {
		defer wg.Done()
		var dfs func(m *machine) error
		dfs = func(m *machine) error {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if m.done() {
				count.Add(1)
				return visit(&Result{Trace: m.trace(), Sched: m.sched})
			}
			for p := 0; p < m.numProcs(); p++ {
				if !m.enabled(p) {
					continue
				}
				c := m.clone()
				c.doStep(p)
				if err := dfs(c); err != nil {
					return err
				}
			}
			return nil
		}
		for m := range tasks {
			if err := dfs(m); err != nil {
				if !errors.Is(err, context.Canceled) {
					firstErr.CompareAndSwap(nil, &err)
				}
				cancel()
				return
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
feed:
	for _, m := range frontier {
		select {
		case tasks <- m:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()

	if ep := firstErr.Load(); ep != nil {
		err := *ep.(*error)
		if errors.Is(err, ErrStop) {
			return count.Load(), nil
		}
		return count.Load(), fmt.Errorf("sched: parallel exploration: %w", err)
	}
	return count.Load(), nil
}
