package sched

import (
	"errors"

	"repro/internal/core"
	"repro/internal/history"
)

// Crash exploration: in addition to taking a protocol step, any processor
// may crash — permanently halting with its current operation (if any) left
// pending. ExploreWithCrashes enumerates every interleaving of steps AND
// crash points, certifying that the construction tolerates the failure of
// any set of readers and writers at any moment, as the abstract claims
// ("can survive the failure of any set of readers and writers").

// crashMachine wraps machine with crash bookkeeping.
type crashMachine struct {
	*machine
	crashed []bool // per processor
	crashes int    // crashes taken so far
}

func newCrashMachine(cfg Config, v Variant) *crashMachine {
	m := newMachine(cfg, v)
	return &crashMachine{machine: m, crashed: make([]bool, m.numProcs())}
}

func (c *crashMachine) clone() *crashMachine {
	return &crashMachine{
		machine: c.machine.clone(),
		crashed: append([]bool(nil), c.crashed...),
		crashes: c.crashes,
	}
}

// enabledLive reports whether p can take a protocol step.
func (c *crashMachine) enabledLive(p int) bool {
	return !c.crashed[p] && c.machine.enabled(p)
}

// canCrash reports whether crashing p is a distinct, interesting event:
// the processor must still have work (crashing an already-finished
// processor changes nothing) and not be crashed already.
func (c *crashMachine) canCrash(p int) bool {
	return !c.crashed[p] && c.machine.enabled(p)
}

// crash halts processor p, flushing its in-flight operation (if any) as a
// crashed record.
func (c *crashMachine) crash(p int) {
	c.crashed[p] = true
	c.crashes++
	if p < 2 {
		w := &c.ws[p]
		switch w.phase {
		case 1:
			// In-flight write: the real read happened (or, for the
			// WriteFirst ablation, the real write); record it pending.
			w.rec.Crashed = true
			w.rec.RespondSeq = history.PendingSeq
			c.writes = append(c.writes, w.rec)
		case 2:
			// In-flight writer-read awaiting its second real access.
			w.rrec.Crashed = true
			w.rrec.RespondSeq = history.PendingSeq
			c.reads = append(c.reads, w.rrec)
		}
		return
	}
	r := &c.rs[p-2]
	if r.phase != 0 {
		r.rec.Crashed = true
		r.rec.RespondSeq = history.PendingSeq
		c.reads = append(c.reads, r.rec)
	}
}

// done reports whether every live processor has finished.
func (c *crashMachine) done() bool {
	for p := 0; p < c.numProcs(); p++ {
		if c.enabledLive(p) {
			return false
		}
	}
	return true
}

// CrashResult is one completed schedule of a crash exploration.
type CrashResult struct {
	// Trace is the run, including pending (crashed) operations.
	Trace core.Trace[int]
	// Sched is the interleaving; crashes appear as ^p (encoded as
	// -(p+1)).
	Sched []int
	// Crashed lists which processors crashed.
	Crashed []bool
}

// CrashEvent encodes "processor p crashes" in a schedule.
func CrashEvent(p int) int { return -(p + 1) }

// ExploreWithCrashes enumerates every interleaving of the configuration
// in which up to maxCrashes processors crash, at every possible point.
// Crashing a processor that has finished all its operations is not
// explored separately (it is indistinguishable from not crashing).
func ExploreWithCrashes(cfg Config, v Variant, maxCrashes int, visit func(*CrashResult) error) (int64, error) {
	var count int64
	var dfs func(m *crashMachine) error
	dfs = func(m *crashMachine) error {
		if m.done() {
			count++
			return visit(&CrashResult{
				Trace:   m.trace(),
				Sched:   m.sched,
				Crashed: m.crashed,
			})
		}
		for p := 0; p < m.numProcs(); p++ {
			if m.enabledLive(p) {
				c := m.clone()
				c.doStep(p)
				if err := dfs(c); err != nil {
					return err
				}
			}
			if m.crashes < maxCrashes && m.canCrash(p) {
				c := m.clone()
				c.crash(p)
				c.sched = append(c.sched, CrashEvent(p))
				if err := dfs(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := dfs(newCrashMachine(cfg, v))
	if errors.Is(err, ErrStop) {
		err = nil
	}
	return count, err
}
