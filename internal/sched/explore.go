package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Result is one completed schedule.
type Result struct {
	// Trace is the run in certifier form.
	Trace core.Trace[int]
	// Sched is the interleaving: the processor index (0, 1 = writers;
	// 2+j = reader j) that took each step.
	Sched []int
}

// ErrStop can be returned by a visitor to end exploration early without
// reporting an error.
var ErrStop = errors.New("sched: stop exploration")

// Explore enumerates every interleaving of the configuration under the
// given protocol variant, invoking visit on each completed schedule. It
// returns the number of schedules visited. If visit returns an error,
// exploration stops; ErrStop stops silently.
//
// The number of interleavings is the multinomial coefficient of the
// processors' step counts; keep configurations small (a few hundred
// thousand schedules explore in about a second).
func Explore(cfg Config, v Variant, visit func(*Result) error) (int64, error) {
	var count int64
	var dfs func(m *machine) error
	dfs = func(m *machine) error {
		if m.done() {
			count++
			return visit(&Result{Trace: m.trace(), Sched: m.sched})
		}
		for p := 0; p < m.numProcs(); p++ {
			if !m.enabled(p) {
				continue
			}
			c := m.clone()
			c.doStep(p)
			if err := dfs(c); err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(newMachine(cfg, v))
	if errors.Is(err, ErrStop) {
		err = nil
	}
	return count, err
}

// CountSchedules returns the number of interleavings Explore would visit,
// computed combinatorially (without running them). It returns -1 for
// configurations with writer reads, whose step counts are data-dependent.
func CountSchedules(cfg Config, v Variant) int64 {
	if cfg.hasWriterReads() {
		return -1
	}
	perWrite, perRead := 2, 3
	if v == NoThirdRead {
		perRead = 2
	}
	var steps []int
	for i := 0; i < 2; i++ {
		steps = append(steps, len(cfg.seqFor(i))*perWrite)
	}
	for _, r := range cfg.Readers {
		steps = append(steps, r*perRead)
	}
	// Multinomial (sum steps)! / prod(steps!) computed incrementally.
	result := int64(1)
	total := 0
	for _, s := range steps {
		for i := 1; i <= s; i++ {
			total++
			result = result * int64(total) / int64(i)
		}
	}
	return result
}

// Sample runs n schedules with uniformly random interleavings drawn from
// the given seed, invoking visit on each. It is the large-configuration
// complement of Explore.
func Sample(cfg Config, v Variant, n int, seed int64, visit func(*Result) error) error {
	rng := rand.New(rand.NewSource(seed))
	for run := 0; run < n; run++ {
		m := newMachine(cfg, v)
		for !m.done() {
			// Choose uniformly among enabled processors.
			var enabled []int
			for p := 0; p < m.numProcs(); p++ {
				if m.enabled(p) {
					enabled = append(enabled, p)
				}
			}
			m.doStep(enabled[rng.Intn(len(enabled))])
		}
		if err := visit(&Result{Trace: m.trace(), Sched: m.sched}); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// RunScript executes one exact interleaving: script[k] is the processor
// that takes step k. The script must schedule every processor exactly
// through all its operations.
func RunScript(cfg Config, v Variant, script []int) (*Result, error) {
	m := newMachine(cfg, v)
	for k, p := range script {
		if p < 0 || p >= m.numProcs() {
			return nil, fmt.Errorf("sched: step %d schedules unknown processor %d", k, p)
		}
		if !m.enabled(p) {
			return nil, fmt.Errorf("sched: step %d schedules processor %d, which has no step to take", k, p)
		}
		m.doStep(p)
	}
	if !m.done() {
		return nil, fmt.Errorf("sched: script ended after %d steps but the run is incomplete (up to %d needed)", len(script), cfg.TotalSteps(v))
	}
	return &Result{Trace: m.trace(), Sched: m.sched}, nil
}
