package lamport

import (
	"fmt"
)

// RegularVal is Lamport's Construction 4: a k-valued regular register from
// k regular boolean registers, in unary. Value index v is represented by
// bit v being the lowest set bit.
//
//	write v: set bit v to true, then clear bits v-1 … 0, in that
//	         (descending) order;
//	read:    scan bits 0, 1, 2, … and return the first set one.
//
// Stale set bits above the current value are harmless: the upward scan
// shadows them. A read overlapping writes may catch intermediate patterns,
// but the value it returns is always one a current-or-overlapping write
// put there — regularity, per Lamport's proof.
type RegularVal struct {
	bits []BoolReg
}

// NewRegularVal builds a k-valued regular register over the given bit
// registers (one per value index), initialized to value index initial.
// The bits must themselves be initialized to the unary pattern for
// initial: exactly bit `initial` set. NewRegularValFromBits trusts the
// caller; use NewRegularValStack to get a correctly initialized one from
// fresh safe bits.
func NewRegularVal(bits []BoolReg) *RegularVal {
	if len(bits) == 0 {
		panic("lamport: k-valued register needs at least one bit")
	}
	return &RegularVal{bits: bits}
}

// K returns the domain size.
func (r *RegularVal) K() int { return len(r.bits) }

// Read returns the current value index as seen through the reader's port.
func (r *RegularVal) Read(port int) int {
	for i, b := range r.bits {
		if b.Read(port) {
			return i
		}
	}
	// Unreachable with a correct writer: the scan passed every bit
	// while each was momentarily false. Lamport's construction
	// guarantees some bit reads true because the writer sets the new
	// bit before clearing lower ones. Returning the top index keeps the
	// register total; the checkers would flag it if it ever happened.
	return len(r.bits) - 1
}

// Write stores value index v.
func (r *RegularVal) Write(v int) {
	if v < 0 || v >= len(r.bits) {
		panic(fmt.Sprintf("lamport: value index %d outside domain [0,%d)", v, len(r.bits)))
	}
	r.bits[v].Write(true)
	for i := v - 1; i >= 0; i-- {
		r.bits[i].Write(false)
	}
}
