package lamport

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/register"
)

func adv(seed int64) register.Adversary { return register.NewSeededAdversary(seed) }

func TestRegularBitSequential(t *testing.T) {
	b := NewRegularBit(false, adv(1))
	if b.Read(0) {
		t.Fatal("initial bit not false")
	}
	b.Write(true)
	if !b.Read(0) {
		t.Fatal("bit not true after write")
	}
	b.Write(false)
	if b.Read(0) {
		t.Fatal("bit not false after write")
	}
}

func TestRegularBitSuppressesNoopWrites(t *testing.T) {
	b := NewRegularBit(false, adv(1))
	b.Write(false)
	b.Write(false)
	if got := b.PhysicalWrites(); got != 0 {
		t.Fatalf("no-op writes reached the safe bit %d times", got)
	}
	b.Write(true)
	b.Write(true)
	if got := b.PhysicalWrites(); got != 1 {
		t.Fatalf("physical writes = %d, want 1", got)
	}
}

func TestRegularBitOverlapIsOldOrNew(t *testing.T) {
	// Drive the safe bit's window directly: during a physical write the
	// safe bit returns arbitrary values, but because the regular bit
	// only physically writes on change, "arbitrary boolean" is always
	// old-or-new. Here we just confirm the safe layer is exercised.
	b := NewRegularBit(false, register.NewScriptedAdversary(1, 0))
	b.safe.BeginWrite(true)
	first := b.Read(0)  // scripted: arbitrary picks domain[1] = true (new)
	second := b.Read(0) // scripted: arbitrary picks domain[0] = false (old)
	b.safe.EndWrite(true)
	if first != true || second != false {
		t.Fatalf("overlapped reads = %v, %v; want true, false", first, second)
	}
}

func TestReplicatedBasics(t *testing.T) {
	r := NewReplicated(NewRegularBit(false, adv(1)), NewRegularBit(false, adv(2)))
	if r.NumCopies() != 2 {
		t.Fatal("copy count wrong")
	}
	r.Write(true)
	if !r.Read(0) || !r.Read(1) {
		t.Fatal("write did not reach all copies")
	}
}

func TestReplicationIsNotAtomic(t *testing.T) {
	// Construction 2 preserves regularity but not atomicity: park the
	// writer between copies and observe a new-old inversion across
	// readers — reader 0 sees the new value, then reader 1 (strictly
	// later) sees the old one.
	r := NewReplicated(NewRegularBit(false, adv(1)), NewRegularBit(false, adv(2)))
	r.WriteCopies(true, 0, 1) // write copy 0, park before copy 1
	if got := r.Read(0); !got {
		t.Fatal("reader 0 should see the new value")
	}
	if got := r.Read(1); got {
		t.Fatal("reader 1 should still see the old value: the inversion")
	}
	r.WriteCopies(true, 1, 2) // resume
	if !r.Read(1) {
		t.Fatal("reader 1 should see the new value after the write completes")
	}
}

func TestReplicatedWriteCopiesBounds(t *testing.T) {
	r := NewReplicated(NewRegularBit(false, adv(1)))
	for _, rng := range [][2]int{{-1, 1}, {0, 2}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", rng)
				}
			}()
			r.WriteCopies(true, rng[0], rng[1])
		}()
	}
}

func TestRegularValSequential(t *testing.T) {
	const k = 5
	bits := make([]BoolReg, k)
	for i := range bits {
		bits[i] = NewRegularBit(i == 2, adv(int64(i)))
	}
	r := NewRegularVal(bits)
	if r.K() != k {
		t.Fatal("K wrong")
	}
	if got := r.Read(0); got != 2 {
		t.Fatalf("initial read = %d, want 2", got)
	}
	for _, v := range []int{0, 4, 1, 3, 0, 0, 4} {
		r.Write(v)
		if got := r.Read(0); got != v {
			t.Fatalf("read = %d, want %d", got, v)
		}
	}
}

func TestRegularValShadowing(t *testing.T) {
	// Stale high bits are shadowed by the upward scan.
	bits := make([]BoolReg, 4)
	for i := range bits {
		bits[i] = NewRegularBit(i == 3, adv(int64(i)))
	}
	r := NewRegularVal(bits)
	r.Write(0) // sets bit 0, clears nothing below; bit 3 remains set
	if got := r.Read(0); got != 0 {
		t.Fatalf("read = %d, want 0 (stale bit 3 must be shadowed)", got)
	}
	if !bits[3].Read(0) {
		t.Fatal("test premise broken: bit 3 should still be set")
	}
}

func TestRegularValDomainPanics(t *testing.T) {
	bits := []BoolReg{NewRegularBit(true, adv(1))}
	r := NewRegularVal(bits)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain write did not panic")
		}
	}()
	r.Write(1)
}

func TestCodec(t *testing.T) {
	c, err := NewCodec([]string{"a", "b", "c"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Indices() != 15 || c.MaxSeq() != 4 {
		t.Fatalf("Indices = %d, MaxSeq = %d", c.Indices(), c.MaxSeq())
	}
	for seq := 0; seq <= 4; seq++ {
		for _, v := range []string{"a", "b", "c"} {
			p := Pair[string]{Seq: seq, Val: v}
			if got := c.Decode(c.Encode(p)); got != p {
				t.Fatalf("roundtrip %v → %v", p, got)
			}
		}
	}
	if _, err := NewCodec([]string{}, 1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewCodec([]string{"a", "a"}, 1); err == nil {
		t.Error("duplicate domain accepted")
	}
	if _, err := NewCodec([]string{"a"}, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestCodecBudgetExhaustionPanics(t *testing.T) {
	c, err := NewCodec([]string{"a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("budget exhaustion did not panic")
		}
	}()
	c.Encode(Pair[string]{Seq: 2, Val: "a"})
}

func TestCellSequential(t *testing.T) {
	c, err := NewCodec([]string{"x", "y", "z"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cell := NewCell(c, "x", adv(3))
	if got := cell.Read(); got != "x" {
		t.Fatalf("initial = %q", got)
	}
	cell.Write("y")
	if got := cell.Read(); got != "y" {
		t.Fatalf("after write = %q", got)
	}
	cell.Write("z")
	cell.Write("x")
	if got := cell.Read(); got != "x" {
		t.Fatalf("after writes = %q", got)
	}
}

func TestCellMonotoneCache(t *testing.T) {
	// The reader cache must never go backwards even if the regular
	// layer serves an old pair during overlap.
	c, err := NewCodec([]string{"x", "y"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cell := NewCell(c, "x", adv(4))
	cell.WritePair(Pair[string]{Seq: 5, Val: "y"})
	if got := cell.ReadPair(); got.Seq != 5 || got.Val != "y" {
		t.Fatalf("ReadPair = %+v", got)
	}
	// Manually regress the regular layer (as an overlapping read might
	// observe); the cache must still answer with seq 5.
	cell.reg.Write(c.Encode(Pair[string]{Seq: 3, Val: "x"}))
	if got := cell.ReadPair(); got.Seq != 5 || got.Val != "y" {
		t.Fatalf("cache went backwards: %+v", got)
	}
}

func TestCellSeqDecreasePanics(t *testing.T) {
	c, err := NewCodec([]string{"x"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cell := NewCell(c, "x", adv(5))
	cell.WritePair(Pair[string]{Seq: 4, Val: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing seq did not panic")
		}
	}()
	cell.WritePair(Pair[string]{Seq: 3, Val: "x"})
}

func TestAtomicNSequential(t *testing.T) {
	a, err := NewAtomicN(3, []string{"v0", "a", "b"}, 8, "v0", adv(6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Readers() != 3 {
		t.Fatal("Readers wrong")
	}
	for port := 0; port < 3; port++ {
		if got := a.Read(port); got != "v0" {
			t.Fatalf("initial read port %d = %q", port, got)
		}
	}
	a.Write("a")
	for port := 0; port < 3; port++ {
		if got := a.Read(port); got != "a" {
			t.Fatalf("port %d read %q, want a", port, got)
		}
	}
	a.Write("b")
	if got := a.Read(1); got != "b" {
		t.Fatalf("read %q, want b", got)
	}
	if a.BitCount() == 0 {
		t.Fatal("BitCount should be positive")
	}
}

func TestAtomicNValidation(t *testing.T) {
	if _, err := NewAtomicN(0, []string{"a"}, 1, "a", adv(1)); err == nil {
		t.Error("zero readers accepted")
	}
	if _, err := NewAtomicN(1, nil, 1, "a", adv(1)); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestAtomicNPortBounds(t *testing.T) {
	a, err := NewAtomicN(2, []string{"a"}, 1, "a", adv(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad port did not panic")
		}
	}()
	a.Read(2)
}

// TestAtomicNConcurrentMonotone runs one writer and several readers
// concurrently (under -race in CI runs): each reader must observe a
// nondecreasing sequence of values given monotone writes.
func TestAtomicNConcurrentMonotone(t *testing.T) {
	const readers, writes = 3, 30
	domain := make([]int, writes+1)
	for i := range domain {
		domain[i] = i
	}
	a, err := NewAtomicN(readers, domain, writes+1, 0, adv(7))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			a.Write(i)
		}
	}()
	errs := make(chan error, readers)
	for p := 0; p < readers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prev := -1
			for i := 0; i < writes; i++ {
				v := a.Read(p)
				if v < prev {
					errs <- fmt.Errorf("reader %d regressed: %d after %d", p, v, prev)
					return
				}
				prev = v
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
