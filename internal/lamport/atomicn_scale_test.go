package lamport_test

import (
	"sync"
	"testing"

	"repro/internal/atomicity"
	"repro/internal/history"
	"repro/internal/lamport"
	"repro/internal/register"
)

// TestAtomicNLargeConcurrentAtomic runs the reader-write-back construction
// under heavy goroutine concurrency and checks the full recorded history
// with the linear-time single-writer atomicity checker — a scale the
// exhaustive checker cannot reach (thousands of operations).
func TestAtomicNLargeConcurrentAtomic(t *testing.T) {
	// Sizing note: the unary encoding makes cost quadratic-ish in the
	// write budget (bits per cell = (budget+1) × domain size, and every
	// read scans them), so "large" here means large for a safe-bit
	// substrate — a few thousand recorded operations is the useful
	// ceiling.
	const (
		readers = 3
		writes  = 40
		reads   = 60
	)
	domain := make([]int, writes+1)
	for i := range domain {
		domain[i] = i
	}
	for seed := int64(1); seed <= 3; seed++ {
		a, err := lamport.NewAtomicN(readers, domain, writes+1, 0, register.NewSeededAdversary(seed))
		if err != nil {
			t.Fatal(err)
		}
		rec := history.NewRecorder[int](nil)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= writes; k++ {
				op, _ := rec.InvokeWrite(0, k)
				a.Write(k)
				rec.RespondWrite(0, op)
			}
		}()
		for p := 0; p < readers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				proc := history.ProcID(1 + p)
				for k := 0; k < reads; k++ {
					op, _ := rec.InvokeRead(proc)
					v := a.Read(p)
					rec.RespondRead(proc, op, v)
				}
			}(p)
		}
		wg.Wait()

		h := rec.Snapshot()
		ops, err := h.Ops()
		if err != nil {
			t.Fatal(err)
		}
		if err := atomicity.CheckSingleWriterAtomic(ops, 0); err != nil {
			t.Fatalf("seed %d: AtomicN over safe bits violated atomicity: %v", seed, err)
		}
	}
}

// TestReplicationInversionCaughtAtScale drives Construction 2 (replication
// without write-back) concurrently and lets the fast checker hunt for the
// new-old inversion it permits. Replication is regular, so any violation
// found must be an inversion, and the run must still pass the regularity
// checker.
func TestReplicationInversionCaughtAtScale(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 40 && !found; seed++ {
		r := lamport.NewReplicated(
			lamport.NewRegularBit(false, register.NewSeededAdversary(seed)),
			lamport.NewRegularBit(false, register.NewSeededAdversary(seed+100)),
		)
		rec := history.NewRecorder[int](nil)
		// Deterministic interleaving that produces the inversion: the
		// writer parks between copies while reader 0 then reader 1 read.
		wop, _ := rec.InvokeWrite(0, 1)
		r.WriteCopies(true, 0, 1)
		rop0, _ := rec.InvokeRead(1)
		v0 := b2i(r.Read(0))
		rec.RespondRead(1, rop0, v0)
		rop1, _ := rec.InvokeRead(2)
		v1 := b2i(r.Read(1))
		rec.RespondRead(2, rop1, v1)
		r.WriteCopies(true, 1, 2)
		rec.RespondWrite(0, wop)

		h := rec.Snapshot()
		ops, err := h.Ops()
		if err != nil {
			t.Fatal(err)
		}
		// Regularity must hold...
		if err := atomicity.CheckRegular(ops, 0); err != nil {
			t.Fatalf("replication violated regularity: %v", err)
		}
		// ...but atomicity must not, whenever the inversion fired.
		if v0 == 1 && v1 == 0 {
			found = true
			if err := atomicity.CheckSingleWriterAtomic(ops, 0); err == nil {
				t.Fatal("inversion not caught by the single-writer checker")
			}
		}
	}
	if !found {
		t.Fatal("the replication inversion never fired")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
