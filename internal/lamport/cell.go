package lamport

import (
	"fmt"

	"repro/internal/register"
)

// Pair is a sequence-numbered value, the currency of Construction 5.
type Pair[V comparable] struct {
	// Seq is the writer's sequence number, strictly increasing per
	// logical value generation.
	Seq int
	// Val is the user value.
	Val V
}

// Codec maps a finite value domain and a write budget onto the unary
// index space of a RegularVal: index = seq*len(domain) + indexOf(val).
type Codec[V comparable] struct {
	domain  []V
	index   map[V]int
	maxSeq  int
	indices int
}

// NewCodec builds a codec for the given domain (non-empty, duplicate-free)
// and maximum sequence number.
func NewCodec[V comparable](domain []V, maxSeq int) (*Codec[V], error) {
	if len(domain) == 0 {
		return nil, fmt.Errorf("lamport: empty value domain")
	}
	if maxSeq < 0 {
		return nil, fmt.Errorf("lamport: negative sequence budget %d", maxSeq)
	}
	idx := make(map[V]int, len(domain))
	for i, v := range domain {
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("lamport: duplicate domain value %v", v)
		}
		idx[v] = i
	}
	return &Codec[V]{
		domain:  append([]V(nil), domain...),
		index:   idx,
		maxSeq:  maxSeq,
		indices: (maxSeq + 1) * len(domain),
	}, nil
}

// Indices returns the size of the unary index space (the number of
// regular bits one cell needs).
func (c *Codec[V]) Indices() int { return c.indices }

// MaxSeq returns the sequence budget.
func (c *Codec[V]) MaxSeq() int { return c.maxSeq }

// Domain returns a copy of the value domain.
func (c *Codec[V]) Domain() []V { return append([]V(nil), c.domain...) }

// Encode maps a pair to its unary index.
func (c *Codec[V]) Encode(p Pair[V]) int {
	i, ok := c.index[p.Val]
	if !ok {
		panic(fmt.Sprintf("lamport: value %v outside the declared domain", p.Val))
	}
	if p.Seq < 0 || p.Seq > c.maxSeq {
		panic(fmt.Sprintf("lamport: sequence number %d exhausts the write budget %d — "+
			"this run is longer than the bounded-domain stack was built for", p.Seq, c.maxSeq))
	}
	return p.Seq*len(c.domain) + i
}

// Decode maps a unary index back to its pair.
func (c *Codec[V]) Decode(idx int) Pair[V] {
	return Pair[V]{Seq: idx / len(c.domain), Val: c.domain[idx%len(c.domain)]}
}

// Cell is Lamport's Construction 5: a 1-writer, 1-reader atomic register
// carrying sequence-numbered pairs, built from a regular register (itself
// built from regular bits in unary). The reader caches the
// highest-sequence pair it has returned and never goes backwards, which
// upgrades regularity to atomicity for a single reader.
//
// Sequence numbers are supplied by the caller and must be nondecreasing,
// with equal numbers only for identical pairs (the enclosing multi-reader
// construction reuses one top-level number across its cells).
type Cell[V comparable] struct {
	codec *Codec[V]
	reg   *RegularVal

	// Reader-side state (owned by the single reader).
	cached Pair[V]

	// Writer-side state (owned by the single writer).
	lastSeq int
}

// NewCell builds a cell over fresh safe bits, initialized to (0, initial).
func NewCell[V comparable](codec *Codec[V], initial V, adv register.Adversary) *Cell[V] {
	init := codec.Encode(Pair[V]{Seq: 0, Val: initial})
	bits := make([]BoolReg, codec.Indices())
	for i := range bits {
		bits[i] = NewRegularBit(i == init, adv)
	}
	return &Cell[V]{
		codec:  codec,
		reg:    NewRegularVal(bits),
		cached: Pair[V]{Seq: 0, Val: initial},
	}
}

// ReadPair returns the highest-sequence pair the reader has evidence for:
// the regular register's current content, or the cached pair if the
// regular read surfaced an older one (the new-old inversion Construction 5
// exists to suppress).
func (c *Cell[V]) ReadPair() Pair[V] {
	p := c.codec.Decode(c.reg.Read(0))
	if p.Seq >= c.cached.Seq {
		c.cached = p
	}
	return c.cached
}

// WritePair stores p. Sequence numbers must not decrease.
func (c *Cell[V]) WritePair(p Pair[V]) {
	if p.Seq < c.lastSeq {
		panic(fmt.Sprintf("lamport: sequence number %d decreased below %d", p.Seq, c.lastSeq))
	}
	c.lastSeq = p.Seq
	c.reg.Write(c.codec.Encode(p))
}

// Read returns the cell's current value (dropping the sequence number).
func (c *Cell[V]) Read() V { return c.ReadPair().Val }

// Write stores v under the next sequence number (for standalone 1W1R use).
func (c *Cell[V]) Write(v V) {
	c.WritePair(Pair[V]{Seq: c.lastSeq + 1, Val: v})
}
