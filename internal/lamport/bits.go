// Package lamport implements the register constructions of Lamport's "On
// interprocess communication" [L2], the substrate below Bloom's two-writer
// protocol. Footnote 3 of the paper notes that the "real" 1-writer atomic
// registers of the simulation "may be simulated using more primitive
// regular and safe one-reader, one-writer registers, using protocols from
// Lamport and others"; this package supplies that simulation, so the
// two-writer register can run on nothing stronger than safe bits:
//
//	safe 1W1R bit                                (register.SafeOnly)
//	→ regular 1W1R bit        (Construction 3: write only on change)
//	→ regular 1W1R k-valued   (Construction 4: unary encoding)
//	→ atomic 1W1R cell        (Construction 5: sequence numbers, reader cache)
//	→ atomic 1WnR register    (reader write-back over 1W1R cells)
//
// Replication (Construction 2: 1WnR safe/regular from n copies) is also
// provided, together with the classic demonstration that replication alone
// is *not* atomic.
//
// Sequence numbers are unbounded in principle; because the unary encoding
// of Construction 4 needs a finite domain, each stack instance declares a
// write budget (MaxWrites) and panics beyond it. This is the documented
// bounded-run substitution: bounded-timestamp constructions exist in the
// literature but are far outside this paper's scope.
package lamport

import (
	"fmt"

	"repro/internal/register"
)

// BoolReg is a single-writer boolean register; the reader passes its port
// (always 0 for one-reader registers).
type BoolReg interface {
	Read(port int) bool
	Write(v bool)
}

// safeBoolDomain is the domain handed to safe bits.
var safeBoolDomain = []bool{false, true}

// NewSafeBit returns a 1W1R safe boolean register (the weakest primitive,
// Lamport's Construction 1 stands in for hardware).
func NewSafeBit(initial bool, adv register.Adversary) *register.SafeOnly[bool] {
	return register.NewSafeOnly(1, initial, safeBoolDomain, adv)
}

// RegularBit is Lamport's Construction 3: a regular 1W1R boolean register
// from a safe one. The writer suppresses writes that would not change the
// value; every physical write then changes the bit, so a concurrent read's
// "arbitrary" result — necessarily one of the two booleans — is always
// either the old or the new value, which is exactly regularity.
type RegularBit struct {
	safe *register.SafeOnly[bool]
	last bool // writer-local shadow of the committed value

	physicalWrites int64 // for tests: how many writes reached the safe bit
}

var _ BoolReg = (*RegularBit)(nil)

// NewRegularBit builds a regular bit over a fresh safe bit.
func NewRegularBit(initial bool, adv register.Adversary) *RegularBit {
	return &RegularBit{safe: NewSafeBit(initial, adv), last: initial}
}

// Read returns the bit (port must be 0).
func (b *RegularBit) Read(port int) bool { return b.safe.Read(port) }

// Write stores v, touching the safe bit only when the value changes.
func (b *RegularBit) Write(v bool) {
	if v == b.last {
		return
	}
	b.safe.Write(v)
	b.last = v
	b.physicalWrites++
}

// PhysicalWrites reports how many writes reached the underlying safe bit.
func (b *RegularBit) PhysicalWrites() int64 { return b.physicalWrites }

// Replicated is Lamport's Construction 2: an n-reader register from n
// one-reader copies. The writer writes every copy; reader r reads its own.
// Replication preserves safety and regularity but not atomicity: reader A
// may see the new value in its copy while reader B still sees the old one
// later — a new-old inversion across readers.
type Replicated struct {
	copies []BoolReg
}

var _ BoolReg = (*Replicated)(nil)

// NewReplicated builds an n-reader register from the given one-reader
// copies (one per reader).
func NewReplicated(copies ...BoolReg) *Replicated {
	if len(copies) == 0 {
		panic("lamport: replication needs at least one copy")
	}
	return &Replicated{copies: copies}
}

// Read returns reader port's copy.
func (r *Replicated) Read(port int) bool { return r.copies[port].Read(0) }

// Write stores v in every copy, in ascending port order.
func (r *Replicated) Write(v bool) {
	for _, c := range r.copies {
		c.Write(v)
	}
}

// WriteCopies writes v to the copies in [from, to) only. Exposed so tests
// can park the writer mid-replication and demonstrate the inversion that
// makes Construction 2 non-atomic.
func (r *Replicated) WriteCopies(v bool, from, to int) {
	if from < 0 || to > len(r.copies) || from > to {
		panic(fmt.Sprintf("lamport: WriteCopies range [%d,%d) out of bounds", from, to))
	}
	for _, c := range r.copies[from:to] {
		c.Write(v)
	}
}

// NumCopies returns the number of reader copies.
func (r *Replicated) NumCopies() int { return len(r.copies) }
