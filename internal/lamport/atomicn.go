package lamport

import (
	"fmt"

	"repro/internal/register"
)

// AtomicN is a 1-writer, n-reader atomic register built from 1W1R atomic
// cells with reader write-back: the standard unbounded-timestamp
// construction (in the spirit of [VA]) that closes the gap replication
// (Construction 2) leaves open.
//
// Layout: the writer owns one cell per reader (wcell[r]); each reader r
// owns one report cell per other reader (rcell[r][s], written by r, read
// by s).
//
//	write(v): seq++; write (seq,v) to every wcell[r].
//	read by r: collect (seq,val) from wcell[r] and from rcell[s][r] for
//	           all s ≠ r; pick the pair with the largest seq; report it
//	           to rcell[r][s] for all s ≠ r; return its value.
//
// The write-back is what prevents new-old inversion between readers: once
// reader A returns a value, every later read by any reader sees at least
// A's sequence number (via A's report cells), so no later read returns an
// older value.
//
// AtomicN satisfies register.Reg, so it can serve directly as one of the
// two "real" registers underneath Bloom's two-writer construction — the
// full footnote-3 stack from safe bits up.
type AtomicN[V comparable] struct {
	n     int
	wcell []*Cell[V]
	rcell [][]*Cell[V]
	seq   int // writer-owned
}

var _ register.Reg[int] = (*AtomicN[int])(nil)

// NewAtomicN builds the register for n readers over fresh safe bits.
// domain is the finite set of values the register may hold (including
// initial); maxWrites bounds the number of writes the instance supports
// (the documented bounded-run substitution for unbounded sequence
// numbers). adv resolves the safe bits' nondeterminism.
func NewAtomicN[V comparable](n int, domain []V, maxWrites int, initial V, adv register.Adversary) (*AtomicN[V], error) {
	if n < 1 {
		return nil, fmt.Errorf("lamport: AtomicN needs at least one reader, got %d", n)
	}
	codec, err := NewCodec(domain, maxWrites)
	if err != nil {
		return nil, err
	}
	a := &AtomicN[V]{n: n}
	a.wcell = make([]*Cell[V], n)
	for r := 0; r < n; r++ {
		a.wcell[r] = NewCell(codec, initial, adv)
	}
	a.rcell = make([][]*Cell[V], n)
	for r := 0; r < n; r++ {
		a.rcell[r] = make([]*Cell[V], n)
		for s := 0; s < n; s++ {
			if s == r {
				continue
			}
			a.rcell[r][s] = NewCell(codec, initial, adv)
		}
	}
	return a, nil
}

// Readers returns n.
func (a *AtomicN[V]) Readers() int { return a.n }

// Write stores v (single writer, sequential calls).
func (a *AtomicN[V]) Write(v V) {
	a.seq++
	p := Pair[V]{Seq: a.seq, Val: v}
	for r := 0; r < a.n; r++ {
		a.wcell[r].WritePair(p)
	}
}

// Read returns the register's value as seen by reader port (0-based).
// Each port must be used by at most one sequential reader.
func (a *AtomicN[V]) Read(port int) V {
	if port < 0 || port >= a.n {
		panic(fmt.Sprintf("lamport: reader port %d out of range [0,%d)", port, a.n))
	}
	best := a.wcell[port].ReadPair()
	for s := 0; s < a.n; s++ {
		if s == port {
			continue
		}
		if p := a.rcell[s][port].ReadPair(); p.Seq > best.Seq {
			best = p
		}
	}
	for s := 0; s < a.n; s++ {
		if s == port {
			continue
		}
		a.rcell[port][s].WritePair(best)
	}
	return best.Val
}

// BitCount reports how many underlying safe bits the instance uses, for
// cost accounting in experiments.
func (a *AtomicN[V]) BitCount() int {
	perCell := a.wcell[0].codec.Indices()
	cells := a.n + a.n*(a.n-1)
	return cells * perCell
}
