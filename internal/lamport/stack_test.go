package lamport_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/atomicity"
	"repro/internal/core"
	"repro/internal/lamport"
	"repro/internal/register"
)

// taggedDomain enumerates every Tagged value the Bloom construction can
// store in a real register: each user value with each tag bit.
func taggedDomain(values []string) []core.Tagged[string] {
	out := make([]core.Tagged[string], 0, 2*len(values))
	for _, v := range values {
		out = append(out, core.Tagged[string]{Val: v, Tag: 0}, core.Tagged[string]{Val: v, Tag: 1})
	}
	return out
}

// newStackRegister builds one of Bloom's "real" registers entirely from
// safe bits: the full footnote-3 stack.
func newStackRegister(t *testing.T, readers int, values []string, maxWrites int, v0 string, seed int64) *lamport.AtomicN[core.Tagged[string]] {
	t.Helper()
	a, err := lamport.NewAtomicN(
		readers,
		taggedDomain(values),
		maxWrites,
		core.Tagged[string]{Val: v0, Tag: 0},
		register.NewSeededAdversary(seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestBloomOverSafeBitsSequential runs the two-writer register on real
// registers built from safe bits, sequentially.
func TestBloomOverSafeBitsSequential(t *testing.T) {
	values := []string{"v0", "a", "b", "c"}
	r0 := newStackRegister(t, 2, values, 8, "v0", 1)
	r1 := newStackRegister(t, 2, values, 8, "v0", 2)
	tw := core.New(1, "v0", core.WithRegisters[string](r0, r1))

	if got := tw.Reader(1).Read(); got != "v0" {
		t.Fatalf("initial read = %q", got)
	}
	tw.Writer(0).Write("a")
	if got := tw.Reader(1).Read(); got != "a" {
		t.Fatalf("read = %q, want a", got)
	}
	tw.Writer(1).Write("b")
	if got := tw.Reader(1).Read(); got != "b" {
		t.Fatalf("read = %q, want b", got)
	}
	tw.Writer(0).Write("c")
	if got := tw.Reader(1).Read(); got != "c" {
		t.Fatalf("read = %q, want c", got)
	}
}

// TestBloomOverSafeBitsConcurrent is the full footnote-3 experiment: the
// two-writer atomic register, running on nothing stronger than safe
// boolean registers with an adversarial scheduler inside them, produces
// linearizable histories under real goroutine concurrency.
func TestBloomOverSafeBitsConcurrent(t *testing.T) {
	const (
		writesPerW = 4
		readers    = 2
		readsPerR  = 4
	)
	var values []string
	values = append(values, "v0")
	for i := 0; i < 2; i++ {
		for k := 0; k < writesPerW; k++ {
			values = append(values, fmt.Sprintf("w%d-%d", i, k))
		}
	}
	for seed := int64(0); seed < 5; seed++ {
		r0 := newStackRegister(t, readers+1, values, writesPerW+1, "v0", seed*2+1)
		r1 := newStackRegister(t, readers+1, values, writesPerW+1, "v0", seed*2+2)
		tw := core.New(readers, "v0",
			core.WithRegisters[string](r0, r1),
			core.WithRecording[string]())

		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w := tw.Writer(i)
				for k := 0; k < writesPerW; k++ {
					w.Write(fmt.Sprintf("w%d-%d", i, k))
				}
			}(i)
		}
		for j := 1; j <= readers; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				r := tw.Reader(j)
				for k := 0; k < readsPerR; k++ {
					_ = r.Read()
				}
			}(j)
		}
		wg.Wait()

		h := tw.Recorder().History()
		res, err := atomicity.CheckHistory(&h, "v0")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			t.Fatalf("seed %d: Bloom over the safe-bit stack produced a non-atomic history", seed)
		}
	}
}

// TestStackIsNotCertifiable documents that the safe-bit substrate cannot
// stamp linearization points, so runs over it are checked by the generic
// checker rather than certified.
func TestStackIsNotCertifiable(t *testing.T) {
	values := []string{"v0"}
	r0 := newStackRegister(t, 2, values, 2, "v0", 1)
	r1 := newStackRegister(t, 2, values, 2, "v0", 2)
	tw := core.New(1, "v0", core.WithRegisters[string](r0, r1))
	if tw.Certifiable() {
		t.Fatal("safe-bit stack must not claim certifiability")
	}
}

// TestStackCost documents the space cost of the full stack, which is why
// the paper's "real registers" are worth assuming rather than building.
func TestStackCost(t *testing.T) {
	values := []string{"v0", "a", "b"}
	r0 := newStackRegister(t, 3, values, 8, "v0", 1)
	bits := r0.BitCount()
	// 3 readers: 3 writer cells + 6 report cells = 9 cells, each
	// (8+1)*6 = 54 unary bits.
	if bits != 9*54 {
		t.Fatalf("BitCount = %d, want %d", bits, 9*54)
	}
	t.Logf("one 3-reader register over a 3-value domain with budget 8: %d safe bits", bits)
}
