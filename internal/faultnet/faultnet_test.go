package faultnet_test

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// nopConn is a writable sink implementing net.Conn, for driving fault
// decisions without a real peer.
type nopConn struct{ closed chan struct{} }

func newNopConn() *nopConn { return &nopConn{closed: make(chan struct{})} }

func (c *nopConn) Read(b []byte) (int, error)  { <-c.closed; return 0, net.ErrClosed }
func (c *nopConn) Write(b []byte) (int, error) { return len(b), nil }
func (c *nopConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}
func (c *nopConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *nopConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *nopConn) SetDeadline(t time.Time) error      { return nil }
func (c *nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *nopConn) SetWriteDeadline(t time.Time) error { return nil }

// faultTrace drives n writes through a fresh plan with the given seed and
// returns the per-operation fault trace (which kind fired on each write,
// as tally deltas).
func faultTrace(t *testing.T, seed int64, n int) []string {
	t.Helper()
	p := &faultnet.Plan{Seed: seed, DropProb: 0.3, GarbleProb: 0.2}
	c := p.Wrap(newNopConn())
	var trace []string
	prev := map[string]int64{}
	for i := 0; i < n; i++ {
		if _, err := c.Write([]byte("0123456789abcdef")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		cur := p.Stats().Injected
		step := "ok"
		for kind, count := range cur {
			if count > prev[kind] {
				step = kind
			}
		}
		prev = cur
		trace = append(trace, step)
	}
	return trace
}

// TestSeededDeterminism is the package's core promise: the same seed and
// the same operation sequence inject the same faults, operation for
// operation.
func TestSeededDeterminism(t *testing.T) {
	a := faultTrace(t, 42, 300)
	b := faultTrace(t, 42, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: seed 42 run A injected %q, run B %q", i, a[i], b[i])
		}
	}
	other := faultTrace(t, 43, 300)
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical fault traces; the seed is ignored")
	}
}

// TestZeroPlanIsTransparent checks that the zero plan passes bytes through
// untouched (so wiring faultnet in costs nothing until faults are asked
// for).
func TestZeroPlanIsTransparent(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	p := &faultnet.Plan{}
	fc := p.Wrap(client)
	defer fc.Close()

	go fc.Write([]byte("hello\n"))
	line, err := bufio.NewReader(server).ReadString('\n')
	if err != nil || line != "hello\n" {
		t.Fatalf("read %q, %v through zero plan", line, err)
	}
	if n := p.Stats().Total(); n != 0 {
		t.Fatalf("zero plan injected %d faults", n)
	}
}

// TestDropSwallowsWrite checks that a dropped write is reported successful
// but never delivered.
func TestDropSwallowsWrite(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	p := &faultnet.Plan{Seed: 1, DropProb: 1}
	fc := p.Wrap(client)
	defer fc.Close()

	if n, err := fc.Write([]byte("lost\n")); n != 5 || err != nil {
		t.Fatalf("dropped write returned (%d, %v), want (5, nil)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("peer received %q despite DropProb=1", buf[:n])
	}
	if got := p.Stats().Injected["drop"]; got != 1 {
		t.Fatalf("drop tally = %d, want 1", got)
	}
}

// TestSeverClosesConn checks that a sever fails the operation with an
// injected error and kills the connection.
func TestSeverClosesConn(t *testing.T) {
	p := &faultnet.Plan{Seed: 1, SeverProb: 1}
	fc := p.Wrap(newNopConn())
	_, err := fc.Write([]byte("x"))
	if err == nil || !faultnet.Injected(err) {
		t.Fatalf("severed write error = %v, want an injected fault", err)
	}
}

// TestGarbleCorrupts checks that garbled payloads arrive changed (and the
// caller's buffer is left alone).
func TestGarbleCorrupts(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	p := &faultnet.Plan{Seed: 1, GarbleProb: 1}
	fc := p.Wrap(client)
	defer fc.Close()

	orig := []byte(`{"op":"write","val":"x"}` + "\n")
	sent := append([]byte(nil), orig...)
	go fc.Write(sent)
	buf := make([]byte, len(orig))
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("garbled frame arrived intact")
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("garble mangled the caller's buffer")
	}
}

// TestStallReleasedByClose checks the one-way-stall kind: the operation
// blocks indefinitely but Close releases it — which is how a peer's
// deadline-driven teardown eventually unsticks the link.
func TestStallReleasedByClose(t *testing.T) {
	p := &faultnet.Plan{Seed: 1, StallProb: 1}
	fc := p.Wrap(newNopConn())
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-done:
		if !faultnet.Injected(err) {
			t.Fatalf("stall error = %v, want an injected fault", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the stalled write")
	}
}

// TestDelayAddsLatency checks that the delay kind slows the operation by
// roughly the configured amount.
func TestDelayAddsLatency(t *testing.T) {
	p := &faultnet.Plan{Seed: 1, DelayProb: 1, Delay: 30 * time.Millisecond}
	fc := p.Wrap(newNopConn())
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delayed write took %v, want ≈30ms", d)
	}
}

// echoServer accepts connections and echoes lines back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadBytes('\n')
					if err != nil {
						return
					}
					if _, err := conn.Write(line); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestProxyPassThrough checks the in-process proxy end to end with no
// faults: bytes cross both hops unchanged.
func TestProxyPassThrough(t *testing.T) {
	target := echoServer(t)
	px, err := faultnet.NewProxy(target, &faultnet.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || line != "ping\n" {
		t.Fatalf("echo through proxy = %q, %v", line, err)
	}
}

// TestProxySever checks that a sever-everything plan breaks proxied
// connections promptly rather than hanging them.
func TestProxySever(t *testing.T) {
	target := echoServer(t)
	px, err := faultnet.NewProxy(target, &faultnet.Plan{Seed: 1, SeverProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	conn.Write([]byte("ping\n"))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("read %q through a sever-all proxy", buf[:n])
	}
}

// TestDialerWraps checks the dial-hook path against a live listener.
func TestDialerWraps(t *testing.T) {
	target := echoServer(t)
	p := &faultnet.Plan{Seed: 9, DropProb: 1}
	conn, err := p.Dialer()(target)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("never arrives\n")); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Injected["drop"] != 1 {
		t.Fatalf("stats = %+v, want one drop", p.Stats())
	}
}
