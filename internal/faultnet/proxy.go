package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Proxy is an in-process TCP proxy that pumps every accepted connection to
// a fixed target address through fault-injecting connections, so an
// unmodified client/server pair suffers the plan on both directions of the
// link. Clients dial Proxy.Addr instead of the real server.
type Proxy struct {
	plan   *Plan
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	pumps  sync.WaitGroup
}

// NewProxy starts a proxy to target on an ephemeral localhost port.
func NewProxy(target string, p *Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	px := &Proxy{plan: p, target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	px.pumps.Add(1)
	go px.acceptLoop()
	return px, nil
}

// Addr returns the proxy's listen address, to be dialed instead of the
// target.
func (px *Proxy) Addr() string { return px.ln.Addr().String() }

// Close stops the proxy and severs every pumped connection.
func (px *Proxy) Close() error {
	px.mu.Lock()
	if px.closed {
		px.mu.Unlock()
		return nil
	}
	px.closed = true
	err := px.ln.Close()
	for c := range px.conns {
		c.Close()
	}
	px.mu.Unlock()
	px.pumps.Wait()
	return err
}

// track registers c for Close; it reports false if the proxy is already
// closed (c is then closed on the spot).
func (px *Proxy) track(c net.Conn) bool {
	px.mu.Lock()
	defer px.mu.Unlock()
	if px.closed {
		c.Close()
		return false
	}
	px.conns[c] = struct{}{}
	return true
}

func (px *Proxy) untrack(c net.Conn) {
	px.mu.Lock()
	delete(px.conns, c)
	px.mu.Unlock()
}

func (px *Proxy) acceptLoop() {
	defer px.pumps.Done()
	for {
		client, err := px.ln.Accept()
		if err != nil {
			return // listener closed
		}
		upstream, err := net.Dial("tcp", px.target)
		if err != nil {
			client.Close()
			continue // target down; the client sees a severed link
		}
		// Faults are injected on the client-facing side, one wrapped conn
		// per direction pair; the upstream side stays clean so the server
		// is only ever confused by what the plan let through.
		faulty := px.plan.Wrap(client)
		if !px.track(faulty) || !px.track(upstream) {
			faulty.Close()
			upstream.Close()
			return
		}
		px.pumps.Add(2)
		go px.pump(faulty, upstream)
		go px.pump(upstream, faulty)
	}
}

// pump copies src to dst until either side fails, then severs both so the
// peer notices promptly.
func (px *Proxy) pump(dst, src net.Conn) {
	defer px.pumps.Done()
	_, _ = io.Copy(dst, src)
	dst.Close()
	src.Close()
	px.untrack(dst)
	px.untrack(src)
}
