// Package faultnet injects deterministic, seedable faults into network
// links, so the repository's networked registers (internal/netreg) can be
// exercised — and their recovery machinery certified — under the failure
// modes the paper's model abstracts away: slow links, lost frames, severed
// connections, corrupted bytes, and peers that stall in one direction.
//
// A Plan describes the fault mix (per-operation probabilities plus a fixed
// injected delay) and a seed. Every wrapped connection draws its decisions
// from a private PRNG derived from the plan seed and the connection's
// accept/dial index, so a sequential client replaying the same operations
// against the same plan hits the same faults — "seeded points", not
// wall-clock luck. Faults are decided independently per Read and per Write
// call — per syscall, not per frame. netreg's buffered, pipelined
// transport coalesces a burst of frames into one Write, so a single fault
// decision covers the whole batch: one drop loses every frame in it, and
// the client's retry machinery re-sends each affected request with its
// original sequence number. A sequential client flushing one frame per
// Write degenerates to the old per-frame behavior, keeping existing
// seeded tests deterministic.
//
// The package is usable two ways:
//
//   - as a dial hook: Plan.Dialer wraps net.Dial so a netreg client's own
//     connection misbehaves (netreg.WithDialer);
//   - as an in-process proxy: NewProxy listens on an ephemeral port and
//     pumps bytes to a target address through fault-injecting connections,
//     so both directions of an unmodified client/server pair suffer.
//
// Injected fault counts are tallied per kind (Stats), so tests and
// benchmarks can assert that a "faulty" run actually was.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault identifies one injected fault kind.
type Fault int

// The fault kinds a Plan can inject.
const (
	// FaultDelay sleeps for the plan's Delay before performing the
	// operation: a slow link.
	FaultDelay Fault = iota
	// FaultDrop swallows a Write (reported as successful, nothing sent):
	// a lost frame. Reads are never dropped — on a stream that would be
	// indistinguishable from a stall, which has its own kind.
	FaultDrop
	// FaultSever closes the connection and fails the operation: a broken
	// link.
	FaultSever
	// FaultGarble flips bits in the payload before delivering it:
	// corruption. On the JSON transport this almost always breaks
	// framing; on the binary transport it is fully deterministic — the
	// flip hits byte 0 of the batch, the high byte of a length prefix,
	// turning it into a length far beyond wire.MaxFrame, which the peer
	// rejects cleanly and drops the link. Either way the receiver never
	// parses a corrupted frame as valid.
	FaultGarble
	// FaultStall blocks the operation until the connection is closed: a
	// peer that went silent in one direction without breaking the link.
	FaultStall
	numFaults
)

// String names the fault kind.
func (f Fault) String() string {
	switch f {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultSever:
		return "sever"
	case FaultGarble:
		return "garble"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Plan is a seeded fault mix. The zero value injects nothing; set Seed and
// the per-kind probabilities (each in [0,1], checked independently per
// Read/Write in the order delay, stall, sever, garble, drop — at most one
// fault fires per operation, except delay which composes with the rest).
// One Plan may back many connections; its tallies aggregate across them.
type Plan struct {
	// Seed derives every connection's private PRNG. Two runs with the
	// same seed, the same connection order, and the same per-connection
	// operation sequence inject the same faults.
	Seed int64

	// Delay is the latency added when FaultDelay fires (and the
	// probability below is nonzero). Fixed, not sampled, so latency
	// benchmarks see a deterministic offset.
	Delay time.Duration

	// DelayProb, DropProb, SeverProb, GarbleProb, StallProb are the
	// per-operation probabilities of each kind.
	DelayProb, DropProb, SeverProb, GarbleProb, StallProb float64

	conns  atomic.Int64 // next connection index
	tally  [numFaults]atomic.Int64
	reads  atomic.Int64 // operations seen, for Stats
	writes atomic.Int64
}

// Stats is a point-in-time copy of a plan's injected-fault tallies.
type Stats struct {
	Reads, Writes int64            // operations that passed through
	Injected      map[string]int64 // fault kind → count, nonzero kinds only
}

// Total returns the total number of injected faults.
func (s Stats) Total() int64 {
	var n int64
	for _, c := range s.Injected {
		n += c
	}
	return n
}

// Stats copies the plan's tallies.
func (p *Plan) Stats() Stats {
	s := Stats{
		Reads:    p.reads.Load(),
		Writes:   p.writes.Load(),
		Injected: make(map[string]int64),
	}
	for f := Fault(0); f < numFaults; f++ {
		if c := p.tally[f].Load(); c > 0 {
			s.Injected[f.String()] = c
		}
	}
	return s
}

// Wrap returns conn with the plan's faults injected into its Read, Write
// and Close paths. Each call assigns the next connection index, from which
// the connection's PRNG is derived.
func (p *Plan) Wrap(conn net.Conn) *Conn {
	idx := p.conns.Add(1)
	return &Conn{
		Conn:   conn,
		plan:   p,
		rng:    rand.New(rand.NewSource(p.Seed ^ int64(uint64(idx)*0x9e3779b97f4a7c15))),
		closed: make(chan struct{}),
	}
}

// Dialer returns a dial function (the netreg.WithDialer shape) that dials
// TCP and wraps the resulting connection with the plan's faults.
func (p *Plan) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return p.Wrap(c), nil
	}
}

// Conn is a net.Conn with plan-driven faults on Read and Write. The
// embedded connection carries addresses and deadlines unchanged.
type Conn struct {
	net.Conn
	plan *Plan

	mu  sync.Mutex // guards rng: Read and Write may race on a pumped link
	rng *rand.Rand

	once   sync.Once
	closed chan struct{}
}

// injectedError marks failures manufactured by the fault plan, so tests
// can tell injected faults from real transport errors (see Injected).
type injectedError struct{ f Fault }

func (e injectedError) Error() string { return "faultnet: injected " + e.f.String() }

// Injected reports whether err was manufactured by a fault plan.
func Injected(err error) bool {
	var ie injectedError
	return errors.As(err, &ie)
}

// decide rolls the connection's PRNG for one operation and returns the
// fault to inject (or -1), having already slept the delay if one fired.
func (c *Conn) decide(isWrite bool) Fault {
	p := c.plan
	if isWrite {
		p.writes.Add(1)
	} else {
		p.reads.Add(1)
	}
	c.mu.Lock()
	delay := p.DelayProb > 0 && c.rng.Float64() < p.DelayProb
	var fault Fault = -1
	switch {
	case p.StallProb > 0 && c.rng.Float64() < p.StallProb:
		fault = FaultStall
	case p.SeverProb > 0 && c.rng.Float64() < p.SeverProb:
		fault = FaultSever
	case p.GarbleProb > 0 && c.rng.Float64() < p.GarbleProb:
		fault = FaultGarble
	case isWrite && p.DropProb > 0 && c.rng.Float64() < p.DropProb:
		fault = FaultDrop
	}
	c.mu.Unlock()
	if delay {
		p.tally[FaultDelay].Add(1)
		t := time.NewTimer(p.Delay)
		select {
		case <-t.C:
		case <-c.closed:
			t.Stop()
		}
	}
	return fault
}

// stall blocks until the connection is closed, then reports the stall.
func (c *Conn) stall() error {
	c.plan.tally[FaultStall].Add(1)
	<-c.closed
	return injectedError{FaultStall}
}

// sever closes the connection and reports the break.
func (c *Conn) sever() error {
	c.plan.tally[FaultSever].Add(1)
	c.Close()
	return injectedError{FaultSever}
}

// garble flips one bit in every 16th byte of b (at least one).
func (c *Conn) garble(b []byte) {
	c.plan.tally[FaultGarble].Add(1)
	for i := 0; i < len(b); i += 16 {
		b[i] ^= 0x20
	}
}

// Read reads from the connection, subject to the plan.
func (c *Conn) Read(b []byte) (int, error) {
	switch c.decide(false) {
	case FaultStall:
		return 0, c.stall()
	case FaultSever:
		return 0, c.sever()
	case FaultGarble:
		n, err := c.Conn.Read(b)
		if n > 0 {
			c.garble(b[:n])
		}
		return n, err
	}
	return c.Conn.Read(b)
}

// Write writes to the connection, subject to the plan.
func (c *Conn) Write(b []byte) (int, error) {
	switch c.decide(true) {
	case FaultStall:
		return 0, c.stall()
	case FaultSever:
		return 0, c.sever()
	case FaultDrop:
		c.plan.tally[FaultDrop].Add(1)
		return len(b), nil // reported sent, never delivered
	case FaultGarble:
		// Corrupt a copy: the caller's buffer is not ours to mangle.
		g := append([]byte(nil), b...)
		c.garble(g)
		return c.Conn.Write(g)
	}
	return c.Conn.Write(b)
}

// Close closes the connection and releases any stalled operations.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Listener wraps every accepted connection with the plan's faults.
type Listener struct {
	net.Listener
	plan *Plan
}

// NewListener returns ln with the plan applied to accepted connections.
func NewListener(ln net.Listener, p *Plan) *Listener {
	return &Listener{Listener: ln, plan: p}
}

// Accept accepts the next connection, wrapped.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Wrap(c), nil
}
