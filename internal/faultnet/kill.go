package faultnet

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Kill is one scheduled permanent crash in a replica cluster: replica
// Replica dies After the run starts and never comes back. Permanent
// crashes are the failure model quorum replication is built for (f <
// m/2 replicas may die and atomicity must hold); they are deliberately
// distinct from the crash-RESTART soaks the earlier fault plans drive,
// where the same server returns with its state.
type Kill struct {
	Replica int
	After   time.Duration
}

// killSeedMix decorrelates the kill schedule's PRNG from a fault plan
// sharing the same seed (ASCII "kill" — arbitrary, fixed forever so
// seeded runs replay).
const killSeedMix = 0x6b696c6c

// PlanKills deterministically picks f distinct victims among m replicas
// and staggers their crash times across within: victim i dies near the
// (i+1)/(f+1) point of the window, jittered by the seeded PRNG, so kills
// land mid-stream rather than clustering at either edge. The same
// (seed, m, f, within) always yields the same schedule — the property
// that makes a crash soak's journal replayable. Results are sorted by
// crash time. f is clamped to [0, m].
func PlanKills(seed int64, m, f int, within time.Duration) []Kill {
	if m <= 0 || f <= 0 || within <= 0 {
		return nil
	}
	if f > m {
		f = m
	}
	rng := rand.New(rand.NewSource(seed ^ killSeedMix))
	victims := rng.Perm(m)[:f]
	slot := within / time.Duration(f+1)
	kills := make([]Kill, 0, f)
	for i, v := range victims {
		after := slot * time.Duration(i+1)
		if jitter := int64(slot / 2); jitter > 0 {
			after += time.Duration(rng.Int63n(2*jitter) - jitter)
		}
		if after <= 0 {
			after = 1
		}
		kills = append(kills, Kill{Replica: v, After: after})
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i].After < kills[j].After })
	return kills
}

// Schedule arms the kill plan: kill(k.Replica) fires once per entry at
// its offset from now, each on its own goroutine. The returned stop
// function cancels any kills that have not fired yet and waits for the
// in-flight ones to return; it is idempotent. The kill callback is the
// caller's crash lever — for a netreg cluster, closing the replica's
// listener and severing its live connections.
func Schedule(kills []Kill, kill func(replica int)) (stop func()) {
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for _, k := range kills {
		wg.Add(1)
		go func(k Kill) {
			defer wg.Done()
			t := time.NewTimer(k.After)
			defer t.Stop()
			select {
			case <-t.C:
				kill(k.Replica)
			case <-quit:
			}
		}(k)
	}
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		wg.Wait()
	}
}
