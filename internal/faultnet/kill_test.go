package faultnet

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestPlanKillsDeterministic(t *testing.T) {
	a := PlanKills(42, 5, 2, time.Second)
	b := PlanKills(42, 5, 2, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := PlanKills(43, 5, 2, time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced the same schedule: %v", a)
	}
}

func TestPlanKillsShape(t *testing.T) {
	const m, f = 7, 3
	kills := PlanKills(7, m, f, time.Second)
	if len(kills) != f {
		t.Fatalf("got %d kills, want %d", len(kills), f)
	}
	seen := map[int]bool{}
	last := time.Duration(0)
	for _, k := range kills {
		if k.Replica < 0 || k.Replica >= m {
			t.Errorf("victim %d out of range [0,%d)", k.Replica, m)
		}
		if seen[k.Replica] {
			t.Errorf("victim %d killed twice", k.Replica)
		}
		seen[k.Replica] = true
		if k.After <= 0 || k.After > time.Second {
			t.Errorf("kill offset %v outside (0, 1s]", k.After)
		}
		if k.After < last {
			t.Errorf("schedule not sorted: %v after %v", k.After, last)
		}
		last = k.After
	}
	// f clamps to m; degenerate inputs yield no kills.
	if got := PlanKills(1, 3, 5, time.Second); len(got) != 3 {
		t.Errorf("f>m not clamped: %d kills", len(got))
	}
	if got := PlanKills(1, 0, 1, time.Second); got != nil {
		t.Errorf("m=0 yielded kills: %v", got)
	}
}

func TestScheduleFiresAndStops(t *testing.T) {
	var mu sync.Mutex
	fired := map[int]int{}
	kills := []Kill{{Replica: 0, After: time.Millisecond}, {Replica: 1, After: 2 * time.Millisecond}, {Replica: 2, After: time.Hour}}
	stop := Schedule(kills, func(r int) {
		mu.Lock()
		fired[r]++
		mu.Unlock()
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(fired)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("near kills did not fire; fired=%v", fired)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if fired[0] != 1 || fired[1] != 1 {
		t.Errorf("near kills fired wrong counts: %v", fired)
	}
	if fired[2] != 0 {
		t.Errorf("cancelled kill fired: %v", fired)
	}
}
