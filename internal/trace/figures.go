package trace

// Figure3 reproduces the paper's Figure 3: the timing diagram used in the
// proof of Lemma 2 (by contradiction). It depicts a hypothetical schedule
// in which the impotent write W0 has an impotent prefinisher W1, which in
// turn is prefinished by W1'. The proof orders the five marked times as
// T1r' < T1r ... and derives a contradiction; the schedule below is
// therefore IMPOSSIBLE — no execution of the protocol realizes it, which
// the exhaustive explorer confirms (see EXPERIMENTS.md, F3).
func Figure3() string {
	return `Figure 3 (Lemma 2, proof by contradiction — this schedule is IMPOSSIBLE):

  time          T1r'  T1r   T0r   T1w   T0w
  Reg0 tag        0     1     1     1     0
                              |           |
  Wr0                         [ read Reg1 ........ write Reg0 ]   = W0 (impotent)
  Wr1           [ read Reg0 . write Reg1 ]                        = W1 (impotent?)
  Wr1'    [ ... write Reg0 ]                                      = W1' prefinishes W1
  Reg1 tag        0     0     0     1     1

  W1 prefinishes W0 (its real write falls between W0's read and write);
  the proof assumes W1 is itself impotent and derives that Reg0's tag bit
  must be both 0 and 1 at time T1r — contradiction. Hence every impotent
  write's prefinisher is potent (Lemma 2).`
}

// Figure4 reproduces the paper's Figure 4: the timing used in the proof of
// Lemma 4. If a read R returns the value of an impotent write W0 whose
// assigned *-action (just before its prefinisher W1's) fell BEFORE R
// began, the tag bits would have to sum to 0 and 1 simultaneously;
// impossible. Hence the impotent write's *-action always lands inside the
// reader's interval, and Step 3's placement is legitimate.
func Figure4() string {
	return `Figure 4 (Lemma 4, proof by contradiction — this schedule is IMPOSSIBLE):

  time        Ts0   Ts1   T0    T1    T2
               |     |    |     |     |
  W0*  ........*     |    |     |     |    (impotent write's assigned point)
  W1*  ..............*    |     |     |    (its potent prefinisher's point)
  Rd           .          [ a ... b ... c ]  = R, reads W0's value at T2

  With both write points before the read's first sample T0, the reader's
  two tag samples force t0 ⊕ t1 = 0 while W1's potency forces t0 ⊕ t1 = 1.
  Contradiction: so Ts0 lies inside [T0, T2] and Step 3 may place the
  read's *-action immediately after W0's.`
}
