package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/proof"
	"repro/internal/sched"
)

// slowReaderTrace reproduces the paper's slow-reader scenario via the
// deterministic step machine.
func slowReaderTrace(t *testing.T) core.Trace[int] {
	t.Helper()
	cfg := sched.Config{Writes: [2]int{1, 1}, Readers: []int{1}}
	res, err := sched.RunScript(cfg, sched.Faithful, []int{2, 2, 0, 1, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestRenderContainsLanes(t *testing.T) {
	d := Build(slowReaderTrace(t))
	out := d.Render()
	for _, want := range []string{"time", "Reg0 tag", "Reg1 tag", "Wr0", "Wr1", "Rd1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	// The writer's real write and read marks appear.
	if !strings.Contains(out, "W") {
		t.Errorf("no real-write mark:\n%s", out)
	}
	for _, m := range []string{"a", "b", "c0"} {
		if !strings.Contains(out, m) {
			t.Errorf("no %q reader mark:\n%s", m, out)
		}
	}
}

func TestRenderTagTransition(t *testing.T) {
	out := Build(slowReaderTrace(t)).Render()
	// Reg1's tag flips to 1 at W1's real write; the tag lane must show
	// both values.
	lines := strings.Split(out, "\n")
	var reg1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "Reg1 tag") {
			reg1 = l
		}
	}
	if !strings.Contains(reg1, "0") || !strings.Contains(reg1, "1") {
		t.Fatalf("Reg1 tag lane missing transition: %q", reg1)
	}
}

func TestRenderCrashMark(t *testing.T) {
	tw := core.New(1, "v0", core.WithRecording[string]())
	tw.Writer(0).Write("a")
	tw.Writer(1).WriteCrashing("b", 1)
	_ = tw.Reader(1).Read()
	out := Build(tw.Recorder().Trace("v0")).Render()
	if !strings.Contains(out, "X") {
		t.Fatalf("crash mark missing:\n%s", out)
	}
}

func TestRenderWriterReaderLane(t *testing.T) {
	tw := core.New(0, "v0", core.WithRecording[string]())
	wr := tw.WriterReader(0)
	wr.Write("a")
	_ = wr.Read()
	out := Build(tw.Recorder().Trace("v0")).Render()
	if !strings.Contains(out, "Wr0(read)") {
		t.Fatalf("writer read-channel lane missing:\n%s", out)
	}
}

func TestAttachPoints(t *testing.T) {
	tr := slowReaderTrace(t)
	lin, err := proof.Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	d := Build(tr)
	AttachPoints(d, lin)
	out := d.Render()
	if !strings.Contains(out, "*-acts") {
		t.Fatalf("points lane missing:\n%s", out)
	}
	// The slow-reader run anchors three *-actions at W1's real write
	// (the impotent write, the read of it, and W1 itself).
	if !strings.Contains(out, "***") {
		t.Fatalf("triple anchor not rendered:\n%s", out)
	}
}

func TestLaneName(t *testing.T) {
	cases := map[history.ProcID]string{
		0:  "Wr0",
		1:  "Wr1",
		2:  "Rd1",
		5:  "Rd4",
		-1: "Wr0(read)",
		-2: "Wr1(read)",
	}
	for ch, want := range cases {
		if got := laneName(ch); got != want {
			t.Errorf("laneName(%d) = %q, want %q", ch, got, want)
		}
	}
}

func TestStaticFigures(t *testing.T) {
	f3 := Figure3()
	if !strings.Contains(f3, "IMPOSSIBLE") || !strings.Contains(f3, "Lemma 2") {
		t.Error("Figure3 text incomplete")
	}
	f4 := Figure4()
	if !strings.Contains(f4, "IMPOSSIBLE") || !strings.Contains(f4, "Lemma 4") {
		t.Error("Figure4 text incomplete")
	}
	if Legend == "" {
		t.Error("empty legend")
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]int64{1, 1, 2, 3, 3, 3, 4})
	want := []int64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v", got)
		}
	}
}
