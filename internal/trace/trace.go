// Package trace renders recorded runs as ASCII timing diagrams in the
// style of Figures 3 and 4 of Bloom (PODC 1987): one lane per processor
// showing operation intervals and real-register accesses, plus one lane
// per real register tracking its tag bit over time.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/proof"
)

// mark is one labeled point on a lane.
type mark struct {
	seq   int64
	label string
}

// lane is one row of the diagram.
type lane struct {
	name  string
	marks []mark
	// spans are [start,end] seq pairs drawn as dashes (operation
	// intervals).
	spans [][2]int64
}

// Diagram is a renderable timing diagram.
type Diagram struct {
	lanes []lane
	// tag transitions per register: seq → new tag.
	tags [2][]mark
	seqs []int64
	// points counts certified *-actions per anchor stamp (optional).
	points map[int64]int
}

// AttachPoints adds a certified linearization's *-action anchors to the
// diagram: the rendering gains a lane showing how many simulated
// operations take effect immediately after each γ event.
func AttachPoints[V comparable](d *Diagram, lin *proof.Linearization[V]) {
	d.points = make(map[int64]int, len(lin.Ops))
	for _, op := range lin.Ops {
		d.points[op.Key.Anchor]++
	}
}

// laneName renders a channel as the paper's processor names.
func laneName(ch history.ProcID) string {
	switch {
	case ch == 0:
		return "Wr0"
	case ch == 1:
		return "Wr1"
	case ch < 0:
		return fmt.Sprintf("Wr%d(read)", -int(ch)-1)
	default:
		return fmt.Sprintf("Rd%d", int(ch)-1)
	}
}

// Build assembles a diagram from a recorded trace. Only stamped traces
// render usefully; unstamped accesses (stamp 0) are skipped.
func Build[V comparable](tr core.Trace[V]) *Diagram {
	d := &Diagram{}
	byChan := make(map[history.ProcID]*lane)
	getLane := func(ch history.ProcID) *lane {
		if l, ok := byChan[ch]; ok {
			return l
		}
		l := &lane{name: laneName(ch)}
		byChan[ch] = l
		return l
	}
	addSeq := func(s int64) {
		if s > 0 {
			d.seqs = append(d.seqs, s)
		}
	}

	for _, w := range tr.Writes {
		l := getLane(history.ProcID(w.Writer))
		end := w.RespondSeq
		if w.Crashed {
			// Draw crashed ops to their last completed access.
			end = w.InvokeSeq
			if w.DidRead {
				end = w.ReadSeq
			}
			if w.DidWrite {
				end = w.WriteSeq
			}
		}
		l.spans = append(l.spans, [2]int64{w.InvokeSeq, end})
		addSeq(w.InvokeSeq)
		if !w.Crashed {
			addSeq(w.RespondSeq)
		}
		if w.DidRead {
			l.marks = append(l.marks, mark{w.ReadSeq, fmt.Sprintf("r%d", 1-w.Writer)})
			addSeq(w.ReadSeq)
		}
		if w.DidWrite {
			l.marks = append(l.marks, mark{w.WriteSeq, "W"})
			addSeq(w.WriteSeq)
			d.tags[w.Writer] = append(d.tags[w.Writer], mark{w.WriteSeq, fmt.Sprintf("%d", w.WriteTag)})
		}
		if w.Crashed {
			// Applied after the access marks so the crash stays visible.
			l.marks = append(l.marks, mark{end, "X "})
		}
	}
	for _, r := range tr.Reads {
		l := getLane(r.Proc)
		end := r.RespondSeq
		if r.Crashed {
			end = r.InvokeSeq
			for _, s := range []int64{r.R0Seq, r.R1Seq, r.R2Seq} {
				if s > end {
					end = s
				}
			}
		}
		l.spans = append(l.spans, [2]int64{r.InvokeSeq, end})
		addSeq(r.InvokeSeq)
		if !r.Crashed {
			addSeq(r.RespondSeq)
		}
		if r.R0Seq > 0 {
			l.marks = append(l.marks, mark{r.R0Seq, "a"})
			addSeq(r.R0Seq)
		}
		if r.R1Seq > 0 {
			l.marks = append(l.marks, mark{r.R1Seq, "b"})
			addSeq(r.R1Seq)
		}
		if r.R2Seq > 0 {
			l.marks = append(l.marks, mark{r.R2Seq, fmt.Sprintf("c%d", r.R2Reg)})
			addSeq(r.R2Seq)
		}
		if r.Crashed {
			l.marks = append(l.marks, mark{end, "X "})
		}
	}

	// Stable lane order: Wr0, Wr1, writer read-channels, readers.
	keys := make([]history.ProcID, 0, len(byChan))
	for ch := range byChan {
		keys = append(keys, ch)
	}
	sort.Slice(keys, func(i, j int) bool {
		rank := func(ch history.ProcID) int {
			if ch >= 0 {
				return int(ch) * 2
			}
			return (-int(ch)-1)*2 + 1
		}
		return rank(keys[i]) < rank(keys[j])
	})
	for _, ch := range keys {
		d.lanes = append(d.lanes, *byChan[ch])
	}

	sort.Slice(d.seqs, func(i, j int) bool { return d.seqs[i] < d.seqs[j] })
	d.seqs = dedupe(d.seqs)
	return d
}

func dedupe(s []int64) []int64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// colWidth is the width of one timeline column.
const colWidth = 4

// Render draws the diagram. Columns are γ stamps in order; each processor
// lane shows its operation intervals as dashes with access marks:
//
//	r0/r1 = a writer's real read of Reg0/Reg1, W = its real write,
//	a/b   = a reader's first/second real read, cN = its final read of RegN,
//	X     = crash.
//
// Tag lanes show each register's tag bit at every write that sets it.
func (d *Diagram) Render() string {
	col := make(map[int64]int, len(d.seqs))
	for i, s := range d.seqs {
		col[s] = i
	}
	width := len(d.seqs) * colWidth

	var b strings.Builder
	writeRow := func(name string, cells []string) {
		fmt.Fprintf(&b, "%-10s", name)
		for _, c := range cells {
			fmt.Fprintf(&b, "%-*s", colWidth, c)
		}
		b.WriteString("\n")
	}

	// Header: stamps.
	head := make([]string, len(d.seqs))
	for i, s := range d.seqs {
		head[i] = fmt.Sprintf("%d", s)
	}
	writeRow("time", head)

	// *-action lane (when a linearization is attached): how many
	// simulated operations take effect just after each γ event.
	if d.points != nil {
		cells := make([]string, len(d.seqs))
		for i, s := range d.seqs {
			switch n := d.points[s]; {
			case n == 0:
			case n <= 3:
				cells[i] = strings.Repeat("*", n)
			default:
				cells[i] = fmt.Sprintf("*%d", n) // keep within the column
			}
		}
		writeRow("*-acts", cells)
	}

	// Tag lanes.
	for reg := 0; reg < 2; reg++ {
		cells := make([]string, len(d.seqs))
		cur := "0"
		marks := append([]mark(nil), d.tags[reg]...)
		sort.Slice(marks, func(i, j int) bool { return marks[i].seq < marks[j].seq })
		mi := 0
		for i, s := range d.seqs {
			for mi < len(marks) && marks[mi].seq <= s {
				cur = marks[mi].label
				mi++
			}
			cells[i] = cur
		}
		writeRow(fmt.Sprintf("Reg%d tag", reg), cells)
	}

	// Processor lanes.
	for _, l := range d.lanes {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		for _, sp := range l.spans {
			start, end := 0, width-1
			if c, ok := col[sp[0]]; ok {
				start = c * colWidth
			}
			if c, ok := col[sp[1]]; ok {
				end = c*colWidth + 1
			}
			for i := start; i <= end && i < width; i++ {
				row[i] = '-'
			}
			if start < width {
				row[start] = '['
			}
			if _, ok := col[sp[1]]; ok && end < width {
				row[end] = ']'
			}
		}
		cells := string(row)
		for _, m := range l.marks {
			c, ok := col[m.seq]
			if !ok {
				continue
			}
			pos := c * colWidth
			cells = cells[:pos] + m.label + cells[pos+len(m.label):]
		}
		fmt.Fprintf(&b, "%-10s%s\n", l.name, strings.TrimRight(cells, " "))
	}
	return b.String()
}

// Legend explains the rendering symbols.
const Legend = `legend: [---] operation interval   rN writer's real read of RegN
        W real write   a/b reader's 1st/2nd read   cN final read of RegN
        X crash point  RegN tag rows show the tag bit over time`
