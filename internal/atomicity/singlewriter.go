package atomicity

import (
	"fmt"
	"sort"

	"repro/internal/history"
)

// CheckSingleWriterAtomic decides atomicity for single-writer histories in
// O(n log n), using Lamport's characterization: a single-writer register
// is atomic iff it is regular and free of new-old inversions. It requires
//
//   - exactly one writing processor (its writes are totally ordered by
//     sequentiality), and
//   - uniquely valued writes (so reads-from is a function).
//
// This is the workhorse for checking the 1-writer constructions of
// package lamport at scales the exhaustive checker cannot touch. Pending
// reads are ignored; pending writes are treated as overlapping everything
// after their invocation.
func CheckSingleWriterAtomic[V comparable](ops []history.Op[V], init V) error {
	var writes []history.Op[V]
	var reads []history.Op[V]
	writerSeen := false
	var writer history.ProcID
	for _, op := range ops {
		if op.IsWrite {
			if writerSeen && op.Proc != writer {
				return fmt.Errorf("atomicity: history has writes by processors %d and %d; single-writer checker does not apply", writer, op.Proc)
			}
			writer, writerSeen = op.Proc, true
			writes = append(writes, op)
		} else if !op.Pending() {
			reads = append(reads, op)
		}
	}
	// Writer order: by invocation (the writer is sequential, so this is
	// also response order for completed writes).
	sort.Slice(writes, func(i, j int) bool { return writes[i].Inv < writes[j].Inv })
	idxOf := make(map[V]int, len(writes)+1)
	idxOf[init] = 0
	for i, w := range writes {
		if i > 0 && writes[i-1].Overlaps(w) {
			return fmt.Errorf("atomicity: writes %v and %v by one writer overlap; input is not a legal single-writer history", writes[i-1], w)
		}
		if _, dup := idxOf[w.Arg]; dup {
			return fmt.Errorf("atomicity: write value %v is not unique; single-writer checker does not apply", w.Arg)
		}
		idxOf[w.Arg] = i + 1 // 0 is the initial value
	}

	// Per-read regularity: the write a read returns must not begin after
	// the read ends, and no later write may complete before the read
	// begins.
	idx := make(map[int]int, len(reads)) // read opID → write index returned
	for _, r := range reads {
		j, ok := idxOf[r.Ret]
		if !ok {
			return fmt.Errorf("atomicity: read %v returned %v, which was never written", r, r.Ret)
		}
		idx[r.ID] = j
		if j > 0 {
			w := writes[j-1]
			if r.Precedes(w) {
				return fmt.Errorf("atomicity: read %v returned %v from the future (write %v begins after it ends)", r, r.Ret, w)
			}
		}
		// Largest write index that completes before the read begins.
		k := sort.Search(len(writes), func(i int) bool { return !writes[i].Precedes(r) })
		if j < k {
			return fmt.Errorf("atomicity: stale read: %v returned write #%d's value %v although write #%d (%v) completed before it began",
				r, j, r.Ret, k, writes[k-1].Arg)
		}
	}

	// New-old inversion: for reads r1 ≺ r2, idx(r2) ≥ idx(r1). Sweep
	// reads by invocation, maintaining the maximal idx among reads whose
	// response precedes the current invocation.
	byInv := append([]history.Op[V](nil), reads...)
	sort.Slice(byInv, func(i, j int) bool { return byInv[i].Inv < byInv[j].Inv })
	byRes := append([]history.Op[V](nil), reads...)
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].Res < byRes[j].Res })
	maxIdx, maxOp := -1, history.Op[V]{}
	ri := 0
	for _, r := range byInv {
		for ri < len(byRes) && byRes[ri].Res < r.Inv {
			if j := idx[byRes[ri].ID]; j > maxIdx {
				maxIdx, maxOp = j, byRes[ri]
			}
			ri++
		}
		if idx[r.ID] < maxIdx {
			return fmt.Errorf("atomicity: new-old inversion: %v returned write #%d's value after the earlier read %v returned write #%d's",
				r, idx[r.ID], maxOp, maxIdx)
		}
	}
	return nil
}
