package atomicity

import (
	"strings"
	"testing"

	"repro/internal/history"
)

func wr(id int, proc history.ProcID, v string, inv, res int64) history.Op[string] {
	return history.Op[string]{ID: id, Proc: proc, IsWrite: true, Arg: v, Inv: inv, Res: res}
}

func rd(id int, proc history.ProcID, v string, inv, res int64) history.Op[string] {
	return history.Op[string]{ID: id, Proc: proc, Ret: v, Inv: inv, Res: res}
}

func mustCheck(t *testing.T, ops []history.Op[string], init string) Result[string] {
	t.Helper()
	res, err := Check(ops, init)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		rd(1, 2, "a", 3, 4),
		wr(2, 1, "b", 5, 6),
		rd(3, 2, "b", 7, 8),
	}
	res := mustCheck(t, ops, "i")
	if !res.Linearizable {
		t.Fatal("sequential history must be linearizable")
	}
	if len(res.Order) != 4 {
		t.Fatalf("witness has %d ops, want 4", len(res.Order))
	}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	if res := mustCheck(t, nil, "i"); !res.Linearizable {
		t.Fatal("empty history must be linearizable")
	}
}

func TestConcurrentReadsEitherValue(t *testing.T) {
	// A read overlapping a write may return old or new.
	for _, ret := range []string{"i", "a"} {
		ops := []history.Op[string]{
			wr(0, 0, "a", 1, 10),
			rd(1, 2, ret, 2, 9),
		}
		if res := mustCheck(t, ops, "i"); !res.Linearizable {
			t.Errorf("overlapping read returning %q must be linearizable", ret)
		}
	}
	// But not an unrelated value.
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 10),
		rd(1, 2, "z", 2, 9),
	}
	if res := mustCheck(t, ops, "i"); res.Linearizable {
		t.Error("read of a never-written value accepted")
	}
}

func TestStaleReadRejected(t *testing.T) {
	// W(a) completes, then R returns init: not atomic.
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		rd(1, 2, "i", 3, 4),
	}
	if res := mustCheck(t, ops, "i"); res.Linearizable {
		t.Fatal("stale read accepted")
	}
}

func TestNewOldInversionRejected(t *testing.T) {
	// Two sequential reads during one write seeing new then old: the
	// canonical non-atomic (but regular) behaviour.
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 20),
		rd(1, 2, "a", 2, 5), // new
		rd(2, 2, "i", 6, 9), // then old again
	}
	if res := mustCheck(t, ops, "i"); res.Linearizable {
		t.Fatal("new-old inversion accepted by exhaustive checker")
	}
	if msg := NewOldInversion(ops, "i"); msg == "" {
		// π(r2) = init which is "older": init is not a write, so the
		// detector cannot see it — use written values instead.
		t.Log("inversion with initial value not detected by NewOldInversion (by design: init is not a write)")
	}

	ops = []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "b", 3, 20),
		rd(2, 2, "b", 4, 7),
		rd(3, 2, "a", 8, 11),
	}
	if res := mustCheck(t, ops, "i"); res.Linearizable {
		t.Fatal("new-old inversion accepted")
	}
	if msg := NewOldInversion(ops, "i"); !strings.Contains(msg, "new-old inversion") {
		t.Fatalf("NewOldInversion = %q, want a diagnosis", msg)
	}
}

func TestFigure5ShapeIsNotLinearizable(t *testing.T) {
	// The essential shape of the paper's four-writer counterexample:
	// W(x) spans everything; W(c) completes; then W(d) completes; then a
	// read returns c. 'c' reappearing after 'd' is non-atomic.
	ops := []history.Op[string]{
		wr(0, 0, "x", 1, 100),
		wr(1, 1, "c", 2, 5),
		wr(2, 2, "d", 6, 9),
		rd(3, 3, "c", 10, 13),
	}
	res := mustCheck(t, ops, "i")
	if res.Linearizable {
		t.Fatal("Figure 5 history accepted — the checker failed to prove the counterexample")
	}
	if res.StatesExplored == 0 {
		t.Fatal("exhaustive search did not run")
	}
}

func TestPendingWriteMayOrMayNotTakeEffect(t *testing.T) {
	pending := history.Op[string]{ID: 0, Proc: 0, IsWrite: true, Arg: "a", Inv: 1, Res: history.PendingSeq}
	// A later read may see the pending write...
	ops := []history.Op[string]{pending, rd(1, 2, "a", 5, 8)}
	if res := mustCheck(t, ops, "i"); !res.Linearizable {
		t.Fatal("pending write's value must be readable")
	}
	// ...or not.
	ops = []history.Op[string]{pending, rd(1, 2, "i", 5, 8)}
	if res := mustCheck(t, ops, "i"); !res.Linearizable {
		t.Fatal("pending write must be allowed to never occur")
	}
	// Pending reads constrain nothing.
	pendingRead := history.Op[string]{ID: 2, Proc: 3, Inv: 9, Res: history.PendingSeq}
	ops = []history.Op[string]{pending, rd(1, 2, "i", 5, 8), pendingRead}
	if res := mustCheck(t, ops, "i"); !res.Linearizable {
		t.Fatal("pending read broke linearizability")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// W(a) then W(b) sequentially; a read after both must not see "a"
	// unless... it cannot: W(b) is after W(a).
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "b", 3, 4),
		rd(2, 2, "a", 5, 8),
	}
	if res := mustCheck(t, ops, "i"); res.Linearizable {
		t.Fatal("read of superseded value accepted")
	}
}

func TestWitnessOrderIsValid(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 10),
		wr(1, 1, "b", 2, 11),
		rd(2, 2, "a", 3, 9),
		rd(3, 3, "b", 12, 15),
	}
	res := mustCheck(t, ops, "i")
	if !res.Linearizable {
		t.Fatal("valid concurrent history rejected")
	}
	// Replay the witness to confirm it is a real linearization.
	byID := map[int]history.Op[string]{}
	for _, op := range ops {
		byID[op.ID] = op
	}
	cur := "i"
	for _, id := range res.Order {
		op := byID[id]
		if op.IsWrite {
			cur = op.Arg
		} else if op.Ret != cur {
			t.Fatalf("witness replay: read %d returned %q, register held %q", id, op.Ret, cur)
		}
	}
}

func TestTooLargeRejected(t *testing.T) {
	ops := make([]history.Op[string], MaxOps+1)
	for i := range ops {
		ops[i] = wr(i, 0, "a", int64(2*i+1), int64(2*i+2))
	}
	if _, err := Check(ops, "i"); err == nil {
		t.Fatal("oversized history accepted")
	}
}

func TestCheckHistoryFromRecorder(t *testing.T) {
	rec := history.NewRecorder[string](nil)
	w, _ := rec.InvokeWrite(0, "a")
	rec.RespondWrite(0, w)
	r, _ := rec.InvokeRead(2)
	rec.RespondRead(2, r, "a")
	h := rec.Snapshot()
	res, err := CheckHistory(&h, "i")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("recorded history rejected")
	}
}

func TestCheckRegular(t *testing.T) {
	// New-old inversion is regular but not atomic.
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "b", 3, 20),
		rd(2, 2, "b", 4, 7),
		rd(3, 2, "a", 8, 11),
	}
	if err := CheckRegular(ops, "i"); err != nil {
		t.Fatalf("regular history rejected: %v", err)
	}
	// A read of a long-overwritten value is not even regular.
	ops = []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "b", 3, 4),
		rd(2, 2, "a", 5, 8),
	}
	if err := CheckRegular(ops, "i"); err == nil {
		t.Fatal("non-regular read accepted")
	}
}

func TestCheckSafe(t *testing.T) {
	// A garbage value during an overlapping write is safe.
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 10),
		rd(1, 2, "garbage", 2, 9),
	}
	if err := CheckSafe(ops, "i"); err != nil {
		t.Fatalf("safe behaviour rejected: %v", err)
	}
	// A garbage value with no overlapping write is not safe.
	ops = []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		rd(1, 2, "garbage", 3, 9),
	}
	if err := CheckSafe(ops, "i"); err == nil {
		t.Fatal("unsafe read accepted")
	}
	// Read of init before any write is safe.
	ops = []history.Op[string]{rd(0, 2, "i", 1, 2)}
	if err := CheckSafe(ops, "i"); err != nil {
		t.Fatalf("initial read rejected: %v", err)
	}
}

func TestMemoizationCutsStateSpace(t *testing.T) {
	// Many overlapping writes of the same value: memoization should keep
	// the explored state count far below the factorial blowup.
	var ops []history.Op[string]
	for i := 0; i < 12; i++ {
		ops = append(ops, wr(i, history.ProcID(i), "v", 1, 100))
	}
	ops = append(ops, rd(12, 99, "v", 101, 102))
	res := mustCheck(t, ops, "i")
	if !res.Linearizable {
		t.Fatal("history rejected")
	}
}
