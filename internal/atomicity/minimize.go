package atomicity

import (
	"fmt"

	"repro/internal/history"
)

// Minimize shrinks a non-linearizable history to a locally minimal
// violating core: it greedily removes operations while the remainder stays
// non-linearizable. The result explains a violation in as few operations
// as possible — typically the three or four operations of a stale read or
// new-old inversion — which turns a thousand-operation failure into a
// readable counterexample.
//
// Minimize returns an error if ops is linearizable to begin with (there is
// nothing to minimize) or exceeds the exhaustive checker's capacity.
func Minimize[V comparable](ops []history.Op[V], init V) ([]history.Op[V], error) {
	res, err := Check(ops, init)
	if err != nil {
		return nil, err
	}
	if res.Linearizable {
		return nil, fmt.Errorf("atomicity: history is linearizable; nothing to minimize")
	}
	cur := append([]history.Op[V](nil), ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]history.Op[V], 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			res, err := Check(cand, init)
			if err != nil {
				return nil, err
			}
			if !res.Linearizable {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur, nil
}

// Describe renders operations compactly for violation reports.
func Describe[V comparable](ops []history.Op[V]) string {
	out := ""
	for i, op := range ops {
		if i > 0 {
			out += "  "
		}
		out += op.String()
	}
	return out
}
