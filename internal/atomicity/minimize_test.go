package atomicity

import (
	"math/rand"
	"testing"

	"repro/internal/history"
)

func TestMinimizeShrinksToCore(t *testing.T) {
	// Bury a new-old inversion among harmless operations.
	ops := []history.Op[string]{
		wr(0, 0, "x1", 1, 2),
		rd(1, 2, "x1", 3, 4),
		wr(2, 0, "a", 5, 6),
		wr(3, 0, "b", 7, 40),
		rd(4, 2, "b", 8, 11),
		rd(5, 2, "a", 12, 15), // inversion: a after b
		rd(6, 3, "b", 41, 44),
	}
	min, err := Minimize(ops, "i")
	if err != nil {
		t.Fatal(err)
	}
	if len(min) >= len(ops) {
		t.Fatalf("minimization did not shrink: %d ops", len(min))
	}
	// The core must itself be non-linearizable and small (the inversion
	// needs 4 ops: two writes, two reads).
	res, err := Check(min, "i")
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("minimized history is linearizable")
	}
	if len(min) > 4 {
		t.Fatalf("core has %d ops, want ≤ 4: %s", len(min), Describe(min))
	}
}

func TestMinimizeRejectsLinearizable(t *testing.T) {
	ops := []history.Op[string]{wr(0, 0, "a", 1, 2), rd(1, 2, "a", 3, 4)}
	if _, err := Minimize(ops, "i"); err == nil {
		t.Fatal("minimizing a linearizable history must fail")
	}
}

func TestMinimizeIsStable(t *testing.T) {
	// Property: for randomly padded violations, the core stays
	// non-linearizable and no single op can be removed from it.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var ops []history.Op[string]
		seqv := int64(1)
		next := func() int64 { seqv += 2; return seqv }
		// Random harmless prefix.
		id := 10
		prev := "i"
		for k := rng.Intn(4); k > 0; k-- {
			v := "p" + string(rune('a'+id))
			ops = append(ops, wr(id, 0, v, next(), next()))
			prev = v
			id++
		}
		_ = prev
		// The violation: completed write then a stale read.
		ops = append(ops, wr(id, 0, "fresh", next(), next()))
		staleVal := "i"
		if len(ops) > 1 {
			staleVal = ops[len(ops)-2].Arg
		}
		ops = append(ops, rd(id+1, 2, staleVal, next(), next()))
		min, err := Minimize(ops, "i")
		if err != nil {
			t.Fatal(err)
		}
		for i := range min {
			cand := append(append([]history.Op[string]{}, min[:i]...), min[i+1:]...)
			res, err := Check(cand, "i")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Linearizable {
				t.Fatalf("trial %d: core not minimal; removing %v keeps it violating", trial, min[i])
			}
		}
	}
}

func TestDescribe(t *testing.T) {
	ops := []history.Op[string]{wr(0, 0, "a", 1, 2), rd(1, 2, "a", 3, 4)}
	s := Describe(ops)
	if s == "" {
		t.Fatal("empty description")
	}
}
