package atomicity

import (
	"testing"

	"repro/internal/history"
)

// FuzzCheck decodes arbitrary bytes into a small operation history and
// cross-checks invariants of the exhaustive checker:
//
//   - it never panics and never reports an error on well-formed input;
//   - a reported witness, replayed, satisfies the register property;
//   - linearizable implies regular (the Lamport hierarchy).
func FuzzCheck(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x13, 0x37})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x12, 0x34})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 40 {
			data = data[:40]
		}
		// Decode: each pair of bytes is one operation.
		var ops []history.Op[string]
		now := int64(1)
		for i := 0; i+1 < len(data); i += 2 {
			a, b := data[i], data[i+1]
			inv := now
			now += int64(a%5) + 1
			res := now
			now++
			op := history.Op[string]{
				ID:   i / 2,
				Proc: history.ProcID(a % 4),
				Inv:  inv,
				Res:  res,
			}
			if a%2 == 0 {
				op.IsWrite = true
				op.Arg = string(rune('a' + b%6))
			} else {
				op.Ret = string(rune('a' + b%6))
				if b%7 == 0 {
					op.Ret = "init"
				}
			}
			ops = append(ops, op)
		}
		res, err := Check(ops, "init")
		if err != nil {
			t.Fatalf("well-formed input errored: %v", err)
		}
		if !res.Linearizable {
			return
		}
		// Replay the witness.
		byID := map[int]history.Op[string]{}
		for _, op := range ops {
			byID[op.ID] = op
		}
		cur := "init"
		for _, id := range res.Order {
			op := byID[id]
			if op.IsWrite {
				cur = op.Arg
			} else if op.Ret != cur {
				t.Fatalf("witness replay failed at op %d: read %q, register %q", id, op.Ret, cur)
			}
		}
		// Atomic ⊆ regular.
		if err := CheckRegular(ops, "init"); err != nil {
			t.Fatalf("linearizable history not regular: %v", err)
		}
	})
}
