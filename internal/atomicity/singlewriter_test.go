package atomicity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
)

// genSingleWriter builds a random single-writer history: one writer
// produces unique values; readers return values picked from plausible
// candidates (sometimes illegally stale, to exercise rejections).
func genSingleWriter(seed int64, pBad float64) []history.Op[string] {
	rng := rand.New(rand.NewSource(seed))
	now := int64(1)
	tick := func() int64 { now += int64(1 + rng.Intn(3)); return now }
	var ops []history.Op[string]
	var written []string
	cur := "init"
	id := 0
	for i := 0; i < 3+rng.Intn(8); i++ {
		if rng.Intn(2) == 0 {
			v := "w" + string(rune('a'+id))
			inv := tick()
			res := tick()
			ops = append(ops, history.Op[string]{ID: id, Proc: 0, IsWrite: true, Arg: v, Inv: inv, Res: res})
			written = append(written, v)
			cur = v
		} else {
			ret := cur
			if rng.Float64() < pBad && len(written) > 1 {
				ret = written[rng.Intn(len(written))] // possibly stale
			}
			inv := tick()
			res := tick()
			ops = append(ops, history.Op[string]{ID: id, Proc: history.ProcID(1 + rng.Intn(3)), Ret: ret, Inv: inv, Res: res})
		}
		id++
	}
	return ops
}

// TestSingleWriterAgreesWithExhaustive is the cross-validation property:
// on random single-writer histories — clean and corrupted — the
// linear-time checker and the exhaustive search must return the same
// verdict.
func TestSingleWriterAgreesWithExhaustive(t *testing.T) {
	f := func(seed int64, corrupt bool) bool {
		p := 0.0
		if corrupt {
			p = 0.5
		}
		ops := genSingleWriter(seed, p)
		fast := CheckSingleWriterAtomic(ops, "init") == nil
		res, err := Check(ops, "init")
		if err != nil {
			return false
		}
		if fast != res.Linearizable {
			t.Logf("disagreement on seed %d (corrupt %v): fast=%v exhaustive=%v\n%s",
				seed, corrupt, fast, res.Linearizable, Describe(ops))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleWriterRejectsTwoWriters(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 1, "b", 3, 4),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err == nil {
		t.Fatal("two writers accepted")
	}
}

func TestSingleWriterRejectsDuplicateValues(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "a", 3, 4),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err == nil {
		t.Fatal("duplicate write values accepted")
	}
}

func TestSingleWriterRejectsOverlappingWrites(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 10),
		wr(1, 0, "b", 5, 15),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err == nil {
		t.Fatal("overlapping writes by one writer accepted")
	}
}

func TestSingleWriterDetectsStaleRead(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "b", 3, 4),
		rd(2, 2, "a", 5, 6),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err == nil {
		t.Fatal("stale read accepted")
	}
}

func TestSingleWriterDetectsFutureRead(t *testing.T) {
	ops := []history.Op[string]{
		rd(0, 2, "a", 1, 2),
		wr(1, 0, "a", 5, 6),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err == nil {
		t.Fatal("read from the future accepted")
	}
}

func TestSingleWriterDetectsInversion(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		wr(1, 0, "b", 3, 20),
		rd(2, 2, "b", 4, 7),
		rd(3, 2, "a", 8, 11),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err == nil {
		t.Fatal("new-old inversion accepted")
	}
}

func TestSingleWriterAcceptsCleanConcurrentHistory(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 10),
		rd(1, 2, "i", 2, 3),
		rd(2, 2, "a", 4, 12),
		wr(3, 0, "b", 11, 15),
		rd(4, 3, "a", 12, 13),
		rd(5, 2, "b", 16, 18),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
}

func TestSingleWriterIgnoresPendingReads(t *testing.T) {
	ops := []history.Op[string]{
		wr(0, 0, "a", 1, 2),
		{ID: 1, Proc: 2, Inv: 3, Res: history.PendingSeq}, // pending read
		rd(2, 2, "a", 5, 6),
	}
	if err := CheckSingleWriterAtomic(ops, "i"); err != nil {
		t.Fatalf("pending read broke the checker: %v", err)
	}
}
