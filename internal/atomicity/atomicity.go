// Package atomicity decides whether small register histories are atomic
// (linearizable), regular, or safe.
//
// The exhaustive checker is a Wing–Gong-style depth-first search over
// linearization orders with memoization on (set of linearized operations,
// current register value). It is exponential in the worst case and is
// intended for histories of at most a few dozen operations: model-checking
// runs, scripted scenarios, and — crucially — *proving* the four-writer
// counterexample of Section 8 non-atomic, which requires showing that no
// linearization exists.
//
// Long histories produced by Bloom's protocol are certified instead by
// package proof, which constructs an explicit witness in near-linear time
// using the paper's Section 7 algorithm.
package atomicity

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/spec"
)

// MaxOps is the largest number of operations the exhaustive checker
// accepts; the search set is represented as a 64-bit mask.
const MaxOps = 64

// ErrTooLarge is returned when a history exceeds MaxOps operations.
var ErrTooLarge = errors.New("atomicity: history too large for exhaustive checking")

// Result reports the outcome of an exhaustive linearizability check.
type Result[V comparable] struct {
	// Linearizable is true if a witness exists.
	Linearizable bool
	// Order is a witness: operation IDs in linearization order
	// (only when Linearizable).
	Order []int
	// StatesExplored counts distinct memoized search states.
	StatesExplored int
}

type checker[V comparable] struct {
	ops      []history.Op[V] // reads completed; pending reads dropped
	init     V
	required uint64 // mask of operations that must linearize
	visited  map[stateKey[V]]struct{}
	order    []int
	found    bool
}

type stateKey[V comparable] struct {
	mask uint64
	val  V
}

// Check decides whether the completed operations of ops are linearizable
// with respect to the sequential register specification, starting from
// init.
//
// Pending writes (Res == history.PendingSeq) may linearize at any point
// after their invocation or not at all; pending reads are ignored, since
// they returned nothing and place no constraint on the history.
func Check[V comparable](ops []history.Op[V], init V) (Result[V], error) {
	kept := make([]history.Op[V], 0, len(ops))
	for _, op := range ops {
		if op.Pending() && !op.IsWrite {
			continue
		}
		kept = append(kept, op)
	}
	if len(kept) > MaxOps {
		return Result[V]{}, fmt.Errorf("%w: %d operations (max %d)", ErrTooLarge, len(kept), MaxOps)
	}
	// Sorting by invocation keeps the search order close to real time,
	// which empirically finds witnesses quickly on valid histories.
	sort.Slice(kept, func(i, j int) bool { return kept[i].Inv < kept[j].Inv })

	c := &checker[V]{
		ops:     kept,
		init:    init,
		visited: make(map[stateKey[V]]struct{}),
	}
	for i, op := range kept {
		if !op.Pending() {
			c.required |= 1 << uint(i)
		}
	}
	c.search(0, init)
	res := Result[V]{Linearizable: c.found, StatesExplored: len(c.visited)}
	if c.found {
		res.Order = append([]int(nil), c.order...)
	}
	return res, nil
}

func (c *checker[V]) search(taken uint64, cur V) {
	if c.found {
		return
	}
	if taken&c.required == c.required {
		c.found = true
		return
	}
	key := stateKey[V]{taken, cur}
	if _, seen := c.visited[key]; seen {
		return
	}
	c.visited[key] = struct{}{}

	for i, op := range c.ops {
		bit := uint64(1) << uint(i)
		if taken&bit != 0 {
			continue
		}
		// op may be linearized next only if it is minimal: no other
		// untaken operation entirely precedes it.
		minimal := true
		for j, p := range c.ops {
			if i == j || taken&(1<<uint(j)) != 0 {
				continue
			}
			if p.Precedes(op) {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		next := cur
		if op.IsWrite {
			next = op.Arg
		} else if op.Ret != cur {
			continue // the read could not have returned cur
		}
		c.order = append(c.order, op.ID)
		c.search(taken|bit, next)
		if c.found {
			return
		}
		c.order = c.order[:len(c.order)-1]
	}
}

// CheckHistory extracts the operations of h and runs Check. It fails if the
// history is not input-correct, since such a history signals a bug in the
// harness rather than in the register.
func CheckHistory[V comparable](h *history.History[V], init V) (Result[V], error) {
	if err := h.InputCorrect(); err != nil {
		return Result[V]{}, err
	}
	ops, err := h.Ops()
	if err != nil {
		return Result[V]{}, err
	}
	return Check(ops, init)
}

// CheckRegular reports whether every completed read in ops returns a value
// it could legally see under regularity: the value of some write that does
// not begin after the read ends and is not overwritten by another write
// that completes before the read begins, or init if no write completes
// before the read begins.
func CheckRegular[V comparable](ops []history.Op[V], init V) error {
	legal := spec.WritesPrecedingReads(ops, init)
	for _, op := range ops {
		if op.IsWrite || op.Pending() {
			continue
		}
		ok := false
		for _, v := range legal[op.ID] {
			if v == op.Ret {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("atomicity: read %v returned %v, not among its regular-legal values %v",
				op, op.Ret, legal[op.ID])
		}
	}
	return nil
}

// CheckSafe reports whether every completed read that overlaps no write
// returns the value of the latest write completing before it (or init).
// Reads overlapping a write may return anything, so they are not checked.
// The latest preceding write must be unique; if preceding writes overlap
// one another the read is skipped, since "the last write" is then
// undefined for a safe register.
func CheckSafe[V comparable](ops []history.Op[V], init V) error {
	for _, r := range ops {
		if r.IsWrite || r.Pending() {
			continue
		}
		overlapsWrite := false
		var preceding []history.Op[V]
		for _, w := range ops {
			if !w.IsWrite {
				continue
			}
			switch {
			case w.Precedes(r):
				preceding = append(preceding, w)
			case w.Overlaps(r):
				overlapsWrite = true
			}
		}
		if overlapsWrite {
			continue
		}
		want := init
		if len(preceding) > 0 {
			// The latest preceding write must be unique.
			sort.Slice(preceding, func(i, j int) bool { return preceding[i].Res < preceding[j].Res })
			last := preceding[len(preceding)-1]
			unique := true
			for _, w := range preceding[:len(preceding)-1] {
				if !w.Precedes(last) {
					unique = false
					break
				}
			}
			if !unique {
				continue
			}
			want = last.Arg
		}
		if r.Ret != want {
			return fmt.Errorf("atomicity: non-overlapped read %v returned %v, want %v", r, r.Ret, want)
		}
	}
	return nil
}

// NewOldInversion looks for the classic atomicity violation in a history
// with uniquely valued writes: two reads R1, R2 with R1 entirely preceding
// R2, where R2 returns an older write than R1 ("older" meaning the write R2
// read entirely precedes the write R1 read). It returns a description of
// the first inversion found, or "" if none.
//
// This is a sound but incomplete violation detector: the four-writer
// counterexample of Figure 5 manifests as exactly this kind of inversion
// (value 'c' reappearing after 'd' superseded it).
func NewOldInversion[V comparable](ops []history.Op[V], init V) string {
	writeOf := make(map[V]history.Op[V])
	for _, w := range ops {
		if !w.IsWrite {
			continue
		}
		if _, dup := writeOf[w.Arg]; dup {
			return "" // values not unique; detector does not apply
		}
		writeOf[w.Arg] = w
	}
	var reads []history.Op[V]
	for _, r := range ops {
		if !r.IsWrite && !r.Pending() {
			reads = append(reads, r)
		}
	}
	for _, r1 := range reads {
		for _, r2 := range reads {
			if !r1.Precedes(r2) {
				continue
			}
			w1, ok1 := writeOf[r1.Ret]
			w2, ok2 := writeOf[r2.Ret]
			if !ok1 || !ok2 {
				continue
			}
			if w2.Precedes(w1) {
				return fmt.Sprintf("new-old inversion: %v read %v (written by %v) but the later read %v returned the older %v (written by %v)",
					r1, r1.Ret, w1, r2, r2.Ret, w2)
			}
		}
	}
	return ""
}
