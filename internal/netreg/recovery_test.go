package netreg_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/netreg"
	"repro/internal/obs"
)

// TestCloseInterruptsHungRoundTrip is the regression test for the Close
// deadlock: a round trip hung on a stalled server (and no WithTimeout to
// save it) must be interrupted by Close, not block it forever.
func TestCloseInterruptsHungRoundTrip(t *testing.T) {
	addr := stalledServer(t)
	c, err := netreg.Dial[string](addr) // deliberately no timeout
	if err != nil {
		t.Fatal(err)
	}

	readDone := make(chan error, 1)
	go func() {
		_, _, err := c.ReadErr(0)
		readDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the read hang on the stalled server

	closeDone := make(chan error, 1)
	go func() { closeDone <- c.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind the hung round trip")
	}
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("hung read returned no error after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not interrupt the in-flight read")
	}
}

// rawExchange sends one raw JSON frame and decodes one reply, bypassing
// the client (for wire-level server tests).
func rawExchange(t *testing.T, conn net.Conn, dec *json.Decoder, frame string) map[string]any {
	t.Helper()
	if _, err := conn.Write([]byte(frame + "\n")); err != nil {
		t.Fatalf("send %s: %v", frame, err)
	}
	var resp map[string]any
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode reply to %s: %v", frame, err)
	}
	return resp
}

// TestInvalidWriteValueRejected is the regression test for the unvalidated
// write path: a write with a missing value must get a server error reply —
// not be stored as garbage that poisons every later read of the register.
func TestInvalidWriteValueRejected(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "good", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))

	resp := rawExchange(t, conn, dec, `{"op":"write"}`)
	errMsg, _ := resp["err"].(string)
	if !strings.Contains(errMsg, "invalid write value") {
		t.Fatalf("write with no value replied %v, want an invalid-value error", resp)
	}

	// The connection survives, and the register still holds valid JSON.
	resp = rawExchange(t, conn, dec, `{"op":"read","port":0}`)
	if resp["err"] != nil {
		t.Fatalf("read after rejected write: %v", resp["err"])
	}
	if got := resp["val"]; got != "good" {
		t.Fatalf("register value after rejected write = %v, want %q", got, "good")
	}
	if n := srv.Store().Counters().Writes(); n != 0 {
		t.Fatalf("rejected write was applied (%d writes)", n)
	}
}

// TestWriteDedupAtMostOnce checks the wire-level at-most-once contract: a
// retransmitted write (same client id and sequence number) is answered
// with its original stamp and applied exactly once. Pipelined clients may
// deliver first arrivals out of order, so an out-of-order-but-new
// sequence number applies normally; only a sequence number the dedup
// window has already evicted is refused.
func TestWriteDedupAtMostOnce(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "init", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Store().SetDedupWindow(3)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))

	frame := `{"op":"write","val":"\"once\"","client":"c1","seq":7}`
	first := rawExchange(t, conn, dec, frame)
	retried := rawExchange(t, conn, dec, frame)
	if first["stamp"] != retried["stamp"] {
		t.Fatalf("retried write got stamp %v, original %v — applied twice", retried["stamp"], first["stamp"])
	}
	if n := srv.Store().Counters().Writes(); n != 1 {
		t.Fatalf("write applied %d times, want exactly once", n)
	}

	// seq 3 arrives after seq 7 — out of order but never seen, so it is a
	// legitimate first arrival (a pipelined burst's frames may be enqueued
	// in any order) and must apply.
	ooo := rawExchange(t, conn, dec, `{"op":"write","val":"\"ooo\"","client":"c1","seq":3}`)
	if ooo["err"] != nil {
		t.Fatalf("out-of-order first write refused: %v", ooo["err"])
	}
	if n := srv.Store().Counters().Writes(); n != 2 {
		t.Fatalf("writes applied = %d, want 2", n)
	}

	// Push seqs 8 and 9: with a window of 3 holding {3,8,9}, seq 7 has
	// been evicted and a late replay of it can no longer be verified — it
	// must be refused, never re-applied.
	for _, f := range []string{
		`{"op":"write","val":"\"w8\"","client":"c1","seq":8}`,
		`{"op":"write","val":"\"w9\"","client":"c1","seq":9}`,
	} {
		if r := rawExchange(t, conn, dec, f); r["err"] != nil {
			t.Fatalf("fill write refused: %v", r["err"])
		}
	}
	stale := rawExchange(t, conn, dec, frame)
	if msg, _ := stale["err"].(string); !strings.Contains(msg, "stale") {
		t.Fatalf("evicted-seq replay replied %v, want a stale error", stale)
	}
	if n := srv.Store().Counters().Writes(); n != 4 {
		t.Fatalf("writes applied = %d, want 4", n)
	}

	// A different client is not confused by c1's dedup state.
	other := rawExchange(t, conn, dec, `{"op":"write","val":"\"theirs\"","client":"c2","seq":1}`)
	if other["err"] != nil {
		t.Fatalf("other client's write: %v", other["err"])
	}
	if n := srv.Store().Counters().Writes(); n != 5 {
		t.Fatalf("writes applied = %d, want 5", n)
	}
}

// TestRetryRecoversFromFaultyLink is the tentpole end to end at the client
// level: against a link that drops requests and severs at seeded points,
// a retrying client completes every write, each applied exactly once, and
// the tally shows the recovery work.
func TestRetryRecoversFromFaultyLink(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := &faultnet.Plan{Seed: 11, DropProb: 0.25, SeverProb: 0.1}
	rpc := obs.NewRPC()
	c, err := netreg.Dial[int](srv.Addr(),
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(150*time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 12, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}),
		netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const writes = 25
	var stamps []int64
	for i := 0; i < writes; i++ {
		s, err := c.WriteErr(i)
		if err != nil {
			t.Fatalf("write %d through faulty link: %v", i, err)
		}
		stamps = append(stamps, s)
	}

	// At most once: the authoritative count matches the issued count, and
	// every stamp is distinct and increasing (a duplicate application
	// would mint a second stamp for the same write).
	if n := srv.Store().Counters().Writes(); n != writes {
		t.Fatalf("server applied %d writes, client issued %d", n, writes)
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] <= stamps[i-1] {
			t.Fatalf("stamps not strictly increasing: %v", stamps)
		}
	}
	if v, _, err := c.ReadErr(0); err != nil || v != writes-1 {
		t.Fatalf("final read = %d, %v; want %d", v, err, writes-1)
	}
	if plan.Stats().Total() == 0 {
		t.Fatal("the faulty run injected no faults; the test proved nothing")
	}
	if rpc.Retries(obs.RPCWrite) == 0 {
		t.Fatal("no write retries recorded despite injected faults")
	}
	if ok, _ := rpc.Reconnects(); ok == 0 {
		t.Fatal("no reconnects recorded despite injected severs")
	}
}

// TestBreakerFastFailsAndRecovers walks the breaker's full cycle: trips
// open after consecutive failures, fast-fails with ErrUnavailable while
// open, and closes again once the server is back.
func TestBreakerFastFailsAndRecovers(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	st := srv.Store()

	rpc := obs.NewRPC()
	const cooldown = 150 * time.Millisecond
	c, err := netreg.Dial[int](addr,
		netreg.WithTimeout(100*time.Millisecond),
		netreg.WithBreaker(2, cooldown),
		netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.WriteErr(1); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	srv.Close()

	// Two consecutive failures trip the breaker...
	for i := 0; i < 2; i++ {
		if _, err := c.WriteErr(2); err == nil {
			t.Fatalf("write %d against a dead server succeeded", i)
		}
	}
	if got := rpc.BreakerOpens(); got != 1 {
		t.Fatalf("breaker opens = %d, want 1", got)
	}
	// ...after which failures are fast (no network, no timeout wait).
	start := time.Now()
	_, err = c.WriteErr(3)
	if !errors.Is(err, netreg.ErrUnavailable) {
		t.Fatalf("open-breaker write error = %v, want ErrUnavailable", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("fast-fail took %v", d)
	}
	if got := rpc.BreakerFastFails(); got == 0 {
		t.Fatal("no fast-fails recorded")
	}

	// Server comes back on the same store; after the cooldown the
	// half-open probe succeeds and the breaker closes.
	srv2, err := netreg.Serve(addr, st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := c.WriteErr(4); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.WriteErr(5); err != nil {
		t.Fatalf("write after breaker closed: %v", err)
	}
	if v, _, err := c.ReadErr(0); err != nil || v != 5 {
		t.Fatalf("final read = %d, %v; want 5", v, err)
	}
}

// TestReadStampedPortBounds is the regression test for the unchecked port
// index: an out-of-range port must panic with a diagnosable message that
// names the port, not a bare index error.
func TestReadStampedPortBounds(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r, err := netreg.NewReg[int](srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, port := range []int{-1, 5} {
		func() {
			defer func() {
				msg, _ := recover().(string)
				if !strings.Contains(msg, "out of range") || !strings.Contains(msg, "port") {
					t.Fatalf("ReadStamped(%d) panic = %q, want a port-out-of-range message", port, msg)
				}
			}()
			r.ReadStamped(port)
			t.Fatalf("ReadStamped(%d) did not panic", port)
		}()
	}
}

// TestServerRestartPreservesState checks the Store/Serve split: a server
// incarnation can be killed and a new one started over the same store,
// and clients reconnect to the same register contents.
func TestServerRestartPreservesState(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "v0", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	c, err := netreg.Dial[string](addr,
		netreg.WithTimeout(time.Second),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 20, Backoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WriteErr("survives"); err != nil {
		t.Fatal(err)
	}

	st := srv.Store()
	srv.Close()
	srv2, err := netreg.Serve(addr, st)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	v, _, err := c.ReadErr(0)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if v != "survives" {
		t.Fatalf("read after restart = %q, want %q", v, "survives")
	}
}
