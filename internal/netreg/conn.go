package netreg

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/wire"
)

// clientBufSize sizes the client's per-connection buffers; see
// serverBufSize.
const clientBufSize = 64 << 10

// sendQueueDepth bounds how many requests can sit between the callers and
// the writer goroutine. It is backpressure, not a pipeline limit: a full
// queue parks the caller in its enqueue select, it never drops requests.
const sendQueueDepth = 256

// flushSpins is how many scheduler yields the write loop spends waiting
// for more frames before flushing a batch (see writeLoop).
const flushSpins = 3

// call is one in-flight request: the frame to send and the channel its
// response (or the connection's failure) comes back on. done is buffered
// so a delivery never blocks on a caller that has already timed out and
// left.
type call struct {
	req  *wire.Request
	done chan callResult
}

type callResult struct {
	resp wire.Response
	err  error
}

// clientConn is one pipelined connection: a writer goroutine multiplexes
// every caller's frames onto the socket (batching bursts into one flush),
// and a reader goroutine dispatches responses to the in-flight calls by
// request id. A connection that fails in any way is failed as a whole —
// every in-flight call gets the error, and the Client dials a fresh
// connection on demand — because a byte stream with a torn frame cannot
// be resynchronized, only abandoned.
type clientConn struct {
	conn net.Conn
	wr   *wire.Writer
	rd   *wire.Reader
	ws   *obs.Wire

	sendq chan *call
	down  chan struct{} // closed when the conn is failed

	mu      sync.Mutex
	pending map[uint64]*call
	dead    bool
	err     error
}

// newClientConn wraps an established connection and starts its writer and
// reader goroutines.
func newClientConn(conn net.Conn, codec wire.Codec, ws *obs.Wire) *clientConn {
	rwc := StatConn(conn, ws)
	cc := &clientConn{
		conn:    conn,
		wr:      wire.NewWriter(codec, bufio.NewWriterSize(rwc, clientBufSize)),
		rd:      wire.NewReader(codec, bufio.NewReaderSize(rwc, clientBufSize)),
		ws:      ws,
		sendq:   make(chan *call, sendQueueDepth),
		down:    make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	go cc.writeLoop()
	go cc.readLoop()
	return cc
}

// enqueue registers the call as pending. The caller then pushes it onto
// sendq itself (so it can select against its own timeout).
func (cc *clientConn) enqueue(ca *call) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.dead {
		return cc.err
	}
	cc.pending[ca.req.ID] = ca
	return nil
}

// forget abandons a pending call (its caller timed out); a late response
// with this id is dropped by the read loop.
func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// failErr returns the error the connection died with (ErrClosed before
// any is recorded, for the window between close and teardown).
func (cc *clientConn) failErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return ErrClosed
}

// fail tears the connection down exactly once: marks it dead, releases
// the writer goroutine, closes the socket (which unblocks the reader),
// and delivers err to every in-flight call. The delivery sends cannot
// actually block — every call's done channel has capacity 1 and receives
// exactly one result — so callers may invoke fail while holding locks.
//
//bloom:allowblocking
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.err = err
	pend := cc.pending
	cc.pending = make(map[uint64]*call)
	cc.mu.Unlock()
	close(cc.down)
	cc.conn.Close()
	for _, ca := range pend {
		ca.done <- callResult{err: err}
	}
}

// writeLoop drains the send queue onto the socket. Whatever has queued up
// while the previous flush was on the wire goes out as one batch: under a
// serial caller every frame flushes immediately, under concurrent callers
// the flush syscall amortizes across the burst.
//
// Before paying for a flush, the loop yields the processor a few times
// while the queue is empty. A batch of responses wakes a batch of callers,
// but the scheduler delivers them one by one — without the yields the
// first caller's re-issued request would flush alone, the server would
// answer it alone, and a deep pipeline would collapse into near-lockstep
// with a syscall per frame. The yields give the just-woken callers their
// turn to enqueue, re-forming the batch; when nothing else is runnable
// (a serial caller) they return immediately and cost nanoseconds.
func (cc *clientConn) writeLoop() {
	for {
		select {
		case ca := <-cc.sendq:
			if err := cc.write(ca); err != nil {
				cc.fail(err)
				return
			}
			for spin := 0; spin < flushSpins; spin++ {
			drain:
				for {
					select {
					case ca := <-cc.sendq:
						if err := cc.write(ca); err != nil {
							cc.fail(err)
							return
						}
						spin = 0
					default:
						break drain
					}
				}
				runtime.Gosched()
			}
			if err := cc.wr.Flush(); err != nil {
				cc.fail(fmt.Errorf("netreg: send: %w", wrapTimeout(err)))
				return
			}
		case <-cc.down:
			return
		}
	}
}

// write buffers one request frame.
func (cc *clientConn) write(ca *call) error {
	if err := cc.wr.WriteRequest(ca.req); err != nil {
		return fmt.Errorf("netreg: send: %w", wrapTimeout(err))
	}
	cc.ws.FrameOut()
	return nil
}

// readLoop dispatches response frames to their in-flight calls. Any read
// failure fails the whole connection: frames after a torn one cannot be
// trusted.
func (cc *clientConn) readLoop() {
	for {
		var resp wire.Response
		if err := cc.rd.ReadResponse(&resp); err != nil {
			cc.fail(fmt.Errorf("netreg: receive: %w", wrapTimeout(err)))
			return
		}
		cc.ws.FrameIn()
		cc.mu.Lock()
		ca := cc.pending[resp.ID]
		delete(cc.pending, resp.ID)
		cc.mu.Unlock()
		if ca != nil {
			// The decoded Val aliases the reader's frame buffer, which the
			// next ReadResponse reuses; the caller consumes it after this
			// loop has moved on, so it must get its own copy.
			if len(resp.Val) > 0 {
				resp.Val = append([]byte(nil), resp.Val...)
			}
			ca.done <- callResult{resp: resp}
		}
	}
}

// StatConn wraps conn so every byte read and written counts into ws —
// the same wrapper the client and server connections use internally,
// exported for other transports over the same wire protocol (the
// replica quorum engine counts its sockets with it). A nil tally
// returns conn unchanged. Deadline and close calls pass through to the
// wrapped connection.
func StatConn(conn net.Conn, ws *obs.Wire) net.Conn {
	if ws == nil {
		return conn
	}
	return statConn{Conn: conn, ws: ws}
}

// statConn counts a connection's bytes into a Wire tally. Frames are
// counted at the codec layer; this sees what actually hit the socket,
// length prefixes, batching and all.
type statConn struct {
	net.Conn
	ws *obs.Wire
}

func (c statConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.ws.AddBytesIn(n)
	return n, err
}

func (c statConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.ws.AddBytesOut(n)
	return n, err
}
