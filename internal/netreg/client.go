package netreg

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/register"
)

var _ register.Stamped[int] = (*Reg[int])(nil)

// ErrTimeout wraps round trips that exceeded the client's deadline (see
// WithTimeout). Test with errors.Is.
var ErrTimeout = errors.New("netreg: round trip timed out")

// DialOption configures a Client.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout time.Duration
	rpc     *obs.RPC
}

// WithTimeout bounds every round trip: the connection's read and write
// deadlines are armed before each exchange, so a stalled or dead server
// surfaces as a counted ErrTimeout instead of a hung client. A timed-out
// connection is broken (the stream may hold a partial frame) and the
// client refuses further round trips.
func WithTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithRPCStats attaches a round-trip tally: every exchange records its
// operation kind, latency, and outcome (ok / timeout / error). One tally
// may be shared across the clients of a whole Reg.
func WithRPCStats(r *obs.RPC) DialOption {
	return func(c *dialConfig) { c.rpc = r }
}

// Client accesses a remote register. One Client holds one connection and
// serializes its requests; since every register user (a writer or one
// reader port) is a sequential automaton, a client per user is the
// natural arrangement.
//
// Transport errors are returned from ReadErr/WriteErr. The Reg adapter
// (for plugging into core.WithRegisters, whose interface is error-free
// shared memory) panics on transport failure — the demo transport treats
// a broken link like broken hardware. Production-grade retry or failover
// is out of scope; the paper's registers never fail partially either.
type Client[V any] struct {
	mu      sync.Mutex
	conn    net.Conn
	dec     *json.Decoder
	enc     *json.Encoder
	done    bool
	broken  error // sticky transport failure; round trips refuse after it
	timeout time.Duration
	rpc     *obs.RPC
}

// Dial connects to a register server.
func Dial[V any](addr string, opts ...DialOption) (*Client[V], error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netreg: dial %s: %w", addr, err)
	}
	return &Client[V]{
		conn:    conn,
		dec:     json.NewDecoder(bufio.NewReader(conn)),
		enc:     json.NewEncoder(conn),
		timeout: cfg.timeout,
		rpc:     cfg.rpc,
	}, nil
}

// Close releases the connection.
func (c *Client[V]) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return nil
	}
	c.done = true
	return c.conn.Close()
}

func (c *Client[V]) roundTrip(req request) (response, error) {
	op := obs.RPCWrite
	if req.Op == "read" {
		op = obs.RPCRead
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return response{}, ErrClosed
	}
	if c.broken != nil {
		// The stream may hold a partial frame from the failed exchange;
		// resynchronizing is impossible, so fail fast and loudly.
		return response{}, fmt.Errorf("netreg: connection broken by earlier failure: %w", c.broken)
	}
	start := time.Now()
	resp, err := c.exchange(req)
	if c.rpc != nil {
		outcome := obs.RPCOK
		switch {
		case isTimeout(err):
			outcome = obs.RPCTimeout
		case err != nil:
			outcome = obs.RPCError
		}
		c.rpc.Record(op, time.Since(start), outcome)
	}
	if err != nil && resp.Err == "" {
		// Transport-level failure (not a well-formed server error reply):
		// the connection is no longer usable.
		c.broken = err
	}
	return resp, err
}

// exchange performs one deadline-bounded request/response on the locked
// connection. A non-empty resp.Err marks a server-side (application)
// error; any other failure is transport-level.
func (c *Client[V]) exchange(req request) (response, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return response{}, fmt.Errorf("netreg: arming deadline: %w", err)
		}
	}
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("netreg: send: %w", wrapTimeout(err))
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("netreg: receive: %w", wrapTimeout(err))
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("netreg: server: %s", resp.Err)
	}
	return resp, nil
}

// wrapTimeout tags deadline expirations with ErrTimeout so callers can
// errors.Is them without knowing the transport.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// isTimeout reports whether err stems from a deadline expiration.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.Is(err, ErrTimeout) || errors.Is(err, os.ErrDeadlineExceeded) ||
		(errors.As(err, &ne) && ne.Timeout())
}

// ReadErr performs a remote read through the given port.
func (c *Client[V]) ReadErr(port int) (V, int64, error) {
	var v V
	resp, err := c.roundTrip(request{Op: "read", Port: port})
	if err != nil {
		return v, 0, err
	}
	if err := json.Unmarshal(resp.Val, &v); err != nil {
		return v, 0, fmt.Errorf("netreg: decoding value: %w", err)
	}
	return v, resp.Stamp, nil
}

// WriteErr performs a remote write (single-writer discipline applies).
func (c *Client[V]) WriteErr(v V) (int64, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("netreg: encoding value: %w", err)
	}
	resp, err := c.roundTrip(request{Op: "write", Val: raw})
	if err != nil {
		return 0, err
	}
	return resp.Stamp, nil
}

// Reg is a register.Stamped adapter over one or more clients: reads fan
// in through per-port clients (each port is one sequential user, so each
// gets its own connection), writes go through the writer's client.
type Reg[V any] struct {
	// ReadClients[port] serves reads for that port; WriteClient serves
	// the single writer. Entries may alias when one process plays
	// several roles in tests.
	ReadClients []*Client[V]
	WriteClient *Client[V]
}

// NewReg dials one connection per read port plus one for the writer. Dial
// options (deadlines, a shared RPC tally) apply to every connection.
func NewReg[V any](addr string, ports int, opts ...DialOption) (*Reg[V], error) {
	r := &Reg[V]{}
	for p := 0; p < ports; p++ {
		c, err := Dial[V](addr, opts...)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.ReadClients = append(r.ReadClients, c)
	}
	w, err := Dial[V](addr, opts...)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.WriteClient = w
	return r, nil
}

// Close releases all connections.
func (r *Reg[V]) Close() {
	for _, c := range r.ReadClients {
		if c != nil {
			c.Close()
		}
	}
	if r.WriteClient != nil {
		r.WriteClient.Close()
	}
}

// Read implements register.Reg; it panics on transport failure (see the
// Client doc comment).
func (r *Reg[V]) Read(port int) V {
	v, _ := r.ReadStamped(port)
	return v
}

// ReadStamped implements register.Stamped.
func (r *Reg[V]) ReadStamped(port int) (V, int64) {
	v, stamp, err := r.ReadClients[port].ReadErr(port)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote read failed: %v", err))
	}
	return v, stamp
}

// Write implements register.Reg; it panics on transport failure.
func (r *Reg[V]) Write(v V) { r.WriteStamped(v) }

// WriteStamped implements register.Stamped.
func (r *Reg[V]) WriteStamped(v V) int64 {
	stamp, err := r.WriteClient.WriteErr(v)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote write failed: %v", err))
	}
	return stamp
}
