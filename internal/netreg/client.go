package netreg

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mathrand "math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/register"
)

var _ register.Stamped[int] = (*Reg[int])(nil)

// ErrTimeout wraps round trips that exceeded the client's deadline (see
// WithTimeout). Test with errors.Is.
var ErrTimeout = errors.New("netreg: round trip timed out")

// ErrUnavailable marks round trips refused without touching the network
// because the client's circuit breaker is open (see WithBreaker): the
// server has failed repeatedly and the client degrades to fast-fail until
// the cooldown elapses. Test with errors.Is.
var ErrUnavailable = errors.New("netreg: server unavailable (circuit open)")

// DialOption configures a Client.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout    time.Duration
	rpc        *obs.RPC
	dial       func(addr string) (net.Conn, error)
	retry      RetryPolicy
	breakAfter int
	cooldown   time.Duration
}

// WithTimeout bounds every round-trip attempt: the connection's read and
// write deadlines are armed before each exchange, so a stalled or dead
// server surfaces as a counted ErrTimeout instead of a hung client. The
// failed connection is discarded; the next attempt (a retry, or the next
// round trip) reconnects.
func WithTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithRPCStats attaches a round-trip tally: every exchange records its
// operation kind, latency, and outcome (ok / timeout / error), and the
// recovery machinery records retries, reconnects, and breaker events. One
// tally may be shared across the clients of a whole Reg.
func WithRPCStats(r *obs.RPC) DialOption {
	return func(c *dialConfig) { c.rpc = r }
}

// WithDialer substitutes the function used for every connect and
// reconnect (the default dials TCP). This is the hook by which
// faultnet-style wrappers inject faults into the client's own link.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dial = dial }
}

// RetryPolicy bounds the client's in-round-trip retries. A transport
// failure (not a server error reply) discards the connection; with
// retries left, the client backs off, reconnects, and re-sends the same
// request — same sequence number, so the server applies a retried write
// at most once.
type RetryPolicy struct {
	// Attempts is the number of retries after the first attempt
	// (0 = fail on the first transport error).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry.
	// Zero means DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero means DefaultMaxBackoff.
	MaxBackoff time.Duration
}

// Default backoff bounds used when a RetryPolicy leaves them zero.
const (
	DefaultBackoff    = 2 * time.Millisecond
	DefaultMaxBackoff = 250 * time.Millisecond
)

// WithRetry enables reconnect-and-resend on transport failure, with
// capped exponential backoff and jitter (each sleep is uniform in
// [d/2, d] for the current cap d).
func WithRetry(p RetryPolicy) DialOption {
	return func(c *dialConfig) { c.retry = p }
}

// WithBreaker arms a circuit breaker: after failures consecutive failed
// round trips (each already past its retry budget), the client fast-fails
// every round trip with ErrUnavailable for the cooldown duration, then
// lets one through (half-open); success closes the breaker, failure
// re-opens it.
func WithBreaker(failures int, cooldown time.Duration) DialOption {
	return func(c *dialConfig) {
		c.breakAfter = failures
		c.cooldown = cooldown
	}
}

// Client accesses a remote register. One Client holds one connection and
// serializes its requests; since every register user (a writer or one
// reader port) is a sequential automaton, a client per user is the
// natural arrangement.
//
// Transport errors are returned from ReadErr/WriteErr after the retry
// budget (WithRetry) is exhausted; a broken connection is discarded and
// the next attempt reconnects, so one failure is never sticky. Every
// request carries the client's id and a per-request sequence number, and
// the server deduplicates writes on them: a write whose response was lost
// and which is re-sent is applied AT MOST ONCE, which is what keeps
// retried runs certifiable (a replayed write must never become two
// *-actions). The Reg adapter (for plugging into core.WithRegisters,
// whose interface is error-free shared memory) panics only when even this
// machinery gives up.
type Client[V any] struct {
	addr       string
	dial       func(addr string) (net.Conn, error)
	timeout    time.Duration
	rpc        *obs.RPC
	retry      RetryPolicy
	breakAfter int
	cooldown   time.Duration
	id         string

	// mu serializes round trips. It is intentionally NOT taken by Close:
	// a round trip can be blocked on the network for a long time (or
	// forever, with no deadline), and Close must be able to interrupt it
	// by closing the connection out from under it.
	mu          sync.Mutex
	seq         uint64
	consecFails int
	openUntil   time.Time
	dec         *json.Decoder
	enc         *json.Encoder

	// connMu guards conn and closed only and is never held across I/O,
	// so Close cannot block behind an in-flight exchange.
	connMu        sync.Mutex
	conn          net.Conn
	closed        bool
	everConnected bool
}

// newClientID returns a process-unique, collision-resistant id; the
// server's write dedup table is keyed by it.
func newClientID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("netreg: reading client id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Dial connects to a register server.
func Dial[V any](addr string, opts ...DialOption) (*Client[V], error) {
	cfg := dialConfig{
		dial: func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.retry.Backoff <= 0 {
		cfg.retry.Backoff = DefaultBackoff
	}
	if cfg.retry.MaxBackoff <= 0 {
		cfg.retry.MaxBackoff = DefaultMaxBackoff
	}
	c := &Client[V]{
		addr:       addr,
		dial:       cfg.dial,
		timeout:    cfg.timeout,
		rpc:        cfg.rpc,
		retry:      cfg.retry,
		breakAfter: cfg.breakAfter,
		cooldown:   cfg.cooldown,
		id:         newClientID(),
	}
	if err := c.ensureConn(); err != nil {
		return nil, fmt.Errorf("netreg: dial %s: %w", addr, err)
	}
	return c, nil
}

// Close releases the connection. It never waits on an in-flight round
// trip: closing the connection is what interrupts one.
func (c *Client[V]) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// isClosed reports whether Close has been called.
func (c *Client[V]) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// ensureConn dials if no live connection is held. Re-dials after the
// first successful connect are counted as reconnects.
func (c *Client[V]) ensureConn() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return ErrClosed
	}
	if c.conn != nil {
		c.connMu.Unlock()
		return nil
	}
	reconnect := c.everConnected
	c.connMu.Unlock()

	start := time.Now()
	conn, err := c.dial(c.addr)
	if reconnect {
		c.rpc.RecordReconnect(time.Since(start), err == nil)
	}
	if err != nil {
		return fmt.Errorf("netreg: connect %s: %w", c.addr, err)
	}

	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return ErrClosed
	}
	c.conn = conn
	c.everConnected = true
	c.connMu.Unlock()
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(conn)
	return nil
}

// dropConn discards the current connection (its stream may hold a partial
// frame; resynchronizing is impossible, so reconnect instead).
func (c *Client[V]) dropConn() {
	c.connMu.Lock()
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// backoffSleep sleeps the retry's backoff: exponential in the attempt
// number, capped by the policy, with uniform jitter in [d/2, d] so
// retrying clients don't re-collide in lockstep.
func (c *Client[V]) backoffSleep(attempt int) {
	d := c.retry.Backoff << uint(attempt-1)
	if d <= 0 || d > c.retry.MaxBackoff {
		d = c.retry.MaxBackoff
	}
	half := int64(d / 2)
	if half > 0 {
		d = time.Duration(half + mathrand.Int63n(half+1))
	}
	time.Sleep(d)
}

func (c *Client[V]) roundTrip(req request) (response, error) {
	op := obs.RPCWrite
	if req.Op == "read" {
		op = obs.RPCRead
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.isClosed() {
		return response{}, ErrClosed
	}
	// Breaker: while open, refuse without touching the network; after the
	// cooldown one round trip is let through (half-open).
	if c.breakAfter > 0 && !c.openUntil.IsZero() && time.Now().Before(c.openUntil) {
		c.rpc.RecordBreakerFastFail()
		return response{}, fmt.Errorf("%w; retry after %s", ErrUnavailable, time.Until(c.openUntil).Round(time.Millisecond))
	}

	// One request identity for all attempts: a retried write re-sends the
	// same sequence number, and the server applies it at most once.
	c.seq++
	req.Client = c.id
	req.Seq = c.seq

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.rpc.RecordRetry(op)
			c.backoffSleep(attempt)
		}
		if err := c.ensureConn(); err != nil {
			lastErr = err
		} else {
			start := time.Now()
			resp, err := c.exchange(req)
			if c.rpc != nil {
				outcome := obs.RPCOK
				switch {
				case isTimeout(err):
					outcome = obs.RPCTimeout
				case err != nil:
					outcome = obs.RPCError
				}
				c.rpc.Record(op, time.Since(start), outcome)
			}
			if err == nil || resp.Err != "" {
				// Success, or a well-formed server error reply: the
				// connection is in sync and the breaker sees health.
				c.consecFails = 0
				c.openUntil = time.Time{}
				return resp, err
			}
			lastErr = err
			c.dropConn()
		}
		if c.isClosed() {
			return response{}, ErrClosed
		}
		if attempt >= c.retry.Attempts {
			break
		}
	}

	c.consecFails++
	if c.breakAfter > 0 && c.consecFails >= c.breakAfter {
		c.openUntil = time.Now().Add(c.cooldown)
		c.rpc.RecordBreakerOpen()
	}
	return response{}, lastErr
}

// exchange performs one deadline-bounded request/response on the held
// connection. A non-empty resp.Err marks a server-side (application)
// error; any other failure is transport-level.
func (c *Client[V]) exchange(req request) (response, error) {
	c.connMu.Lock()
	conn := c.conn
	c.connMu.Unlock()
	if conn == nil {
		return response{}, ErrClosed
	}
	if c.timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return response{}, fmt.Errorf("netreg: arming deadline: %w", err)
		}
	}
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("netreg: send: %w", wrapTimeout(err))
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("netreg: receive: %w", wrapTimeout(err))
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("netreg: server: %s", resp.Err)
	}
	return resp, nil
}

// wrapTimeout tags deadline expirations with ErrTimeout so callers can
// errors.Is them without knowing the transport.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// isTimeout reports whether err stems from a deadline expiration.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.Is(err, ErrTimeout) || errors.Is(err, os.ErrDeadlineExceeded) ||
		(errors.As(err, &ne) && ne.Timeout())
}

// ReadErr performs a remote read through the given port.
func (c *Client[V]) ReadErr(port int) (V, int64, error) {
	var v V
	resp, err := c.roundTrip(request{Op: "read", Port: port})
	if err != nil {
		return v, 0, err
	}
	if err := json.Unmarshal(resp.Val, &v); err != nil {
		return v, 0, fmt.Errorf("netreg: decoding value: %w", err)
	}
	return v, resp.Stamp, nil
}

// WriteErr performs a remote write (single-writer discipline applies).
func (c *Client[V]) WriteErr(v V) (int64, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("netreg: encoding value: %w", err)
	}
	resp, err := c.roundTrip(request{Op: "write", Val: raw})
	if err != nil {
		return 0, err
	}
	return resp.Stamp, nil
}

// Reg is a register.Stamped adapter over one or more clients: reads fan
// in through per-port clients (each port is one sequential user, so each
// gets its own connection), writes go through the writer's client.
type Reg[V any] struct {
	// ReadClients[port] serves reads for that port; WriteClient serves
	// the single writer. Entries may alias when one process plays
	// several roles in tests.
	ReadClients []*Client[V]
	WriteClient *Client[V]
}

// NewReg dials one connection per read port plus one for the writer. Dial
// options (deadlines, retry/breaker policy, a shared RPC tally) apply to
// every connection.
func NewReg[V any](addr string, ports int, opts ...DialOption) (*Reg[V], error) {
	r := &Reg[V]{}
	for p := 0; p < ports; p++ {
		c, err := Dial[V](addr, opts...)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.ReadClients = append(r.ReadClients, c)
	}
	w, err := Dial[V](addr, opts...)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.WriteClient = w
	return r, nil
}

// Close releases all connections.
func (r *Reg[V]) Close() {
	for _, c := range r.ReadClients {
		if c != nil {
			c.Close()
		}
	}
	if r.WriteClient != nil {
		r.WriteClient.Close()
	}
}

// Read implements register.Reg; it panics on transport failure (see the
// Client doc comment — with a retry policy the client absorbs transient
// faults first, and with a breaker the failure is a fast ErrUnavailable
// rather than a hang).
func (r *Reg[V]) Read(port int) V {
	v, _ := r.ReadStamped(port)
	return v
}

// ReadStamped implements register.Stamped.
func (r *Reg[V]) ReadStamped(port int) (V, int64) {
	if port < 0 || port >= len(r.ReadClients) {
		panic(fmt.Sprintf("netreg: read port %d out of range [0,%d)", port, len(r.ReadClients)))
	}
	v, stamp, err := r.ReadClients[port].ReadErr(port)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote read failed: %v", err))
	}
	return v, stamp
}

// Write implements register.Reg; it panics on transport failure, like
// Read.
func (r *Reg[V]) Write(v V) { r.WriteStamped(v) }

// WriteStamped implements register.Stamped.
func (r *Reg[V]) WriteStamped(v V) int64 {
	stamp, err := r.WriteClient.WriteErr(v)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote write failed: %v", err))
	}
	return stamp
}
