package netreg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/register"
)

var _ register.Stamped[int] = (*Reg[int])(nil)

// Client accesses a remote register. One Client holds one connection and
// serializes its requests; since every register user (a writer or one
// reader port) is a sequential automaton, a client per user is the
// natural arrangement.
//
// Transport errors are returned from ReadErr/WriteErr. The Reg adapter
// (for plugging into core.WithRegisters, whose interface is error-free
// shared memory) panics on transport failure — the demo transport treats
// a broken link like broken hardware. Production-grade retry or failover
// is out of scope; the paper's registers never fail partially either.
type Client[V any] struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	done bool
}

// Dial connects to a register server.
func Dial[V any](addr string) (*Client[V], error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netreg: dial %s: %w", addr, err)
	}
	return &Client[V]{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close releases the connection.
func (c *Client[V]) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return nil
	}
	c.done = true
	return c.conn.Close()
}

func (c *Client[V]) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return response{}, ErrClosed
	}
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("netreg: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("netreg: receive: %w", err)
	}
	if resp.Err != "" {
		return response{}, fmt.Errorf("netreg: server: %s", resp.Err)
	}
	return resp, nil
}

// ReadErr performs a remote read through the given port.
func (c *Client[V]) ReadErr(port int) (V, int64, error) {
	var v V
	resp, err := c.roundTrip(request{Op: "read", Port: port})
	if err != nil {
		return v, 0, err
	}
	if err := json.Unmarshal(resp.Val, &v); err != nil {
		return v, 0, fmt.Errorf("netreg: decoding value: %w", err)
	}
	return v, resp.Stamp, nil
}

// WriteErr performs a remote write (single-writer discipline applies).
func (c *Client[V]) WriteErr(v V) (int64, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("netreg: encoding value: %w", err)
	}
	resp, err := c.roundTrip(request{Op: "write", Val: raw})
	if err != nil {
		return 0, err
	}
	return resp.Stamp, nil
}

// Reg is a register.Stamped adapter over one or more clients: reads fan
// in through per-port clients (each port is one sequential user, so each
// gets its own connection), writes go through the writer's client.
type Reg[V any] struct {
	// ReadClients[port] serves reads for that port; WriteClient serves
	// the single writer. Entries may alias when one process plays
	// several roles in tests.
	ReadClients []*Client[V]
	WriteClient *Client[V]
}

// NewReg dials one connection per read port plus one for the writer.
func NewReg[V any](addr string, ports int) (*Reg[V], error) {
	r := &Reg[V]{}
	for p := 0; p < ports; p++ {
		c, err := Dial[V](addr)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.ReadClients = append(r.ReadClients, c)
	}
	w, err := Dial[V](addr)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.WriteClient = w
	return r, nil
}

// Close releases all connections.
func (r *Reg[V]) Close() {
	for _, c := range r.ReadClients {
		if c != nil {
			c.Close()
		}
	}
	if r.WriteClient != nil {
		r.WriteClient.Close()
	}
}

// Read implements register.Reg; it panics on transport failure (see the
// Client doc comment).
func (r *Reg[V]) Read(port int) V {
	v, _ := r.ReadStamped(port)
	return v
}

// ReadStamped implements register.Stamped.
func (r *Reg[V]) ReadStamped(port int) (V, int64) {
	v, stamp, err := r.ReadClients[port].ReadErr(port)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote read failed: %v", err))
	}
	return v, stamp
}

// Write implements register.Reg; it panics on transport failure.
func (r *Reg[V]) Write(v V) { r.WriteStamped(v) }

// WriteStamped implements register.Stamped.
func (r *Reg[V]) WriteStamped(v V) int64 {
	stamp, err := r.WriteClient.WriteErr(v)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote write failed: %v", err))
	}
	return stamp
}
