package netreg

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mathrand "math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/register"
	"repro/internal/wire"
)

var _ register.Stamped[int] = (*Reg[int])(nil)

// ErrTimeout wraps round trips that exceeded the client's deadline (see
// WithTimeout). Test with errors.Is.
var ErrTimeout = errors.New("netreg: round trip timed out")

// ErrUnavailable marks round trips refused without touching the network
// because the client's circuit breaker is open (see WithBreaker): the
// server has failed repeatedly and the client degrades to fast-fail until
// the cooldown elapses. Test with errors.Is.
var ErrUnavailable = errors.New("netreg: server unavailable (circuit open)")

// DialOption configures a Client.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout    time.Duration
	rpc        *obs.RPC
	wire       *obs.Wire
	codec      wire.Codec
	regName    string
	dial       func(addr string) (net.Conn, error)
	retry      RetryPolicy
	breakAfter int
	cooldown   time.Duration
	jitterSeed int64
	seeded     bool
}

// WithTimeout bounds every round-trip attempt: the caller waits at most d
// for its response before abandoning the connection, so a stalled or dead
// server surfaces as a counted ErrTimeout instead of a hung client. The
// failed connection is discarded; the next attempt (a retry, or the next
// round trip) reconnects.
func WithTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithRPCStats attaches a round-trip tally: every exchange records its
// operation kind, latency, and outcome (ok / timeout / error), and the
// recovery machinery records retries, reconnects, and breaker events. One
// tally may be shared across the clients of a whole Reg.
func WithRPCStats(r *obs.RPC) DialOption {
	return func(c *dialConfig) { c.rpc = r }
}

// WithWireStats attaches a transport tally: frames and bytes in each
// direction, and the in-flight pipeline gauge. One tally may be shared
// across clients.
func WithWireStats(w *obs.Wire) DialOption {
	return func(c *dialConfig) { c.wire = w }
}

// WithCodec selects the frame encoding this client speaks (the default is
// the binary framing; wire.JSON restores the original newline-delimited
// JSON for wire-compat tests). The server sniffs and answers in kind, so
// no configuration is needed on its side.
func WithCodec(c wire.Codec) DialOption {
	return func(cfg *dialConfig) { cfg.codec = c }
}

// WithRegister aims the client at a named register instance on a
// multi-register server (see AddRegister). The default is the default
// register, "".
func WithRegister(name string) DialOption {
	return func(c *dialConfig) { c.regName = name }
}

// WithDialer substitutes the function used for every connect and
// reconnect (the default dials TCP). This is the hook by which
// faultnet-style wrappers inject faults into the client's own link.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dial = dial }
}

// RetryPolicy bounds the client's in-round-trip retries. A transport
// failure (not a server error reply) discards the connection; with
// retries left, the client backs off, reconnects, and re-sends the same
// request — same sequence number, so the server applies a retried write
// at most once.
type RetryPolicy struct {
	// Attempts is the number of retries after the first attempt
	// (0 = fail on the first transport error).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry.
	// Zero means DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero means DefaultMaxBackoff.
	MaxBackoff time.Duration
}

// Default backoff bounds used when a RetryPolicy leaves them zero.
const (
	DefaultBackoff    = 2 * time.Millisecond
	DefaultMaxBackoff = 250 * time.Millisecond
)

// WithRetry enables reconnect-and-resend on transport failure, with
// capped exponential backoff and jitter (each sleep is uniform in
// [d/2, d] for the current cap d).
func WithRetry(p RetryPolicy) DialOption {
	return func(c *dialConfig) { c.retry = p }
}

// WithJitterSeed seeds the client's private backoff-jitter PRNG, making
// retry timing a pure function of the seed and the sequence of sleeps —
// which is what lets a run under a seeded faultnet plan replay its
// backoff schedule exactly. Unseeded clients draw a random seed at Dial.
//
// This option exists because the jitter originally came from the global
// math/rand source: a process-wide mutex on the retry path (every
// backing-off client serialized through it), and no way to reproduce a
// faulty run's timing no matter how carefully the fault plan was seeded.
func WithJitterSeed(seed int64) DialOption {
	return func(c *dialConfig) {
		c.jitterSeed = seed
		c.seeded = true
	}
}

// WithBreaker arms a circuit breaker: after failures consecutive failed
// round trips (each already past its retry budget), the client fast-fails
// every round trip with ErrUnavailable for the cooldown duration, then
// lets one through (half-open); success closes the breaker, failure
// re-opens it.
func WithBreaker(failures int, cooldown time.Duration) DialOption {
	return func(c *dialConfig) {
		c.breakAfter = failures
		c.cooldown = cooldown
	}
}

// Client accesses a remote register over one pipelined connection. Any
// number of goroutines may call ReadErr/WriteErr concurrently: each
// request carries a unique id, a writer goroutine multiplexes the frames
// onto the connection (batching concurrent bursts into one syscall), and
// a reader goroutine hands each response back to its caller. A single
// sequential caller gets exactly the old serial behavior; N concurrent
// callers get a pipeline N deep over the same connection.
//
// Transport errors are returned from ReadErr/WriteErr after the retry
// budget (WithRetry) is exhausted; a broken connection is discarded —
// failing every request in flight on it over to their own retries — and
// the next attempt reconnects, so one failure is never sticky. Every
// request carries the client's id and a per-request sequence number, and
// the server deduplicates writes on them: a write whose response was lost
// and which is re-sent is applied AT MOST ONCE, which is what keeps
// retried runs certifiable (a replayed write must never become two
// *-actions). The Reg adapter (for plugging into core.WithRegisters,
// whose interface is error-free shared memory) panics only when even this
// machinery gives up.
type Client[V any] struct {
	addr       string
	dial       func(addr string) (net.Conn, error)
	timeout    time.Duration
	rpc        *obs.RPC
	ws         *obs.Wire
	codec      wire.Codec
	regName    string
	retry      RetryPolicy
	breakAfter int
	cooldown   time.Duration
	id         string

	// seq issues request identities: one per logical round trip, reused
	// across its retries, doubling as the pipeline correlation id.
	seq atomic.Uint64

	// brkMu guards the breaker state; round trips from many goroutines
	// share it. halfOpen is true while the single post-cooldown probe is
	// in flight: the first caller past an expired cooldown claims the
	// probe slot, and everyone else keeps fast-failing until the probe
	// resolves (success closes the breaker, failure re-opens it for a
	// fresh cooldown).
	brkMu       sync.Mutex
	consecFails int
	openUntil   time.Time
	halfOpen    bool

	// jitterMu guards rng, the client-private backoff-jitter source (see
	// WithJitterSeed). Contention on it is bounded by the client's own
	// concurrent retries — never by other clients, unlike the global
	// math/rand source it replaced.
	jitterMu sync.Mutex
	rng      *mathrand.Rand

	// connMu guards cur and closed only and is never held across I/O, so
	// Close cannot block behind an in-flight exchange. dialMu serializes
	// actual dials so a burst of retrying callers shares one reconnect
	// instead of racing N dials.
	connMu        sync.Mutex
	cur           *clientConn
	closed        bool
	everConnected bool
	dialMu        sync.Mutex
}

// newClientID returns a process-unique, collision-resistant id; the
// server's write dedup tables are keyed by it.
func newClientID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("netreg: reading client id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Dial connects to a register server.
func Dial[V any](addr string, opts ...DialOption) (*Client[V], error) {
	cfg := dialConfig{
		dial: func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.retry.Backoff <= 0 {
		cfg.retry.Backoff = DefaultBackoff
	}
	if cfg.retry.MaxBackoff <= 0 {
		cfg.retry.MaxBackoff = DefaultMaxBackoff
	}
	seed := cfg.jitterSeed
	if !cfg.seeded {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("netreg: reading jitter seed entropy: %v", err))
		}
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	c := &Client[V]{
		addr:       addr,
		dial:       cfg.dial,
		timeout:    cfg.timeout,
		rpc:        cfg.rpc,
		ws:         cfg.wire,
		codec:      cfg.codec,
		regName:    cfg.regName,
		retry:      cfg.retry,
		breakAfter: cfg.breakAfter,
		cooldown:   cfg.cooldown,
		id:         newClientID(),
		rng:        mathrand.New(mathrand.NewSource(seed)),
	}
	if _, err := c.getConn(); err != nil {
		return nil, fmt.Errorf("netreg: dial %s: %w", addr, err)
	}
	return c, nil
}

// Close releases the connection. It never waits on an in-flight round
// trip: failing the connection is what interrupts one.
func (c *Client[V]) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	cc := c.cur
	c.cur = nil
	c.connMu.Unlock()
	if cc != nil {
		cc.fail(ErrClosed)
	}
	return nil
}

// isClosed reports whether Close has been called.
func (c *Client[V]) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// getConn returns the live connection, dialing one if none is held.
// Re-dials after the first successful connect are counted as reconnects.
// Concurrent callers needing a dial serialize on dialMu and share its
// result.
func (c *Client[V]) getConn() (*clientConn, error) {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, ErrClosed
	}
	if cc := c.cur; cc != nil {
		c.connMu.Unlock()
		return cc, nil
	}
	c.connMu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Someone else may have dialed while this caller waited its turn.
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, ErrClosed
	}
	if cc := c.cur; cc != nil {
		c.connMu.Unlock()
		return cc, nil
	}
	reconnect := c.everConnected
	c.connMu.Unlock()

	start := time.Now()
	conn, err := c.dial(c.addr)
	if reconnect {
		c.rpc.RecordReconnect(time.Since(start), err == nil)
	}
	if err != nil {
		return nil, fmt.Errorf("netreg: connect %s: %w", c.addr, err)
	}
	cc := newClientConn(conn, c.codec, c.ws)

	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		cc.fail(ErrClosed)
		return nil, ErrClosed
	}
	c.cur = cc
	c.everConnected = true
	c.connMu.Unlock()
	return cc, nil
}

// dropConn discards a failed connection (its stream may hold a partial
// frame; resynchronizing is impossible, so reconnect instead). Only the
// given connection is dropped: a racing caller that already dialed a
// replacement keeps it.
func (c *Client[V]) dropConn(cc *clientConn, err error) {
	c.connMu.Lock()
	if c.cur == cc {
		c.cur = nil
	}
	c.connMu.Unlock()
	cc.fail(err)
}

// jitterBackoff computes the retry sleep for the given attempt (1-based):
// exponential in the attempt number, capped by the policy, with uniform
// jitter in [d/2, d] drawn from rnd so retrying clients don't re-collide
// in lockstep. Pure in (policy, attempt, rnd draws) — the determinism
// tests replay it against a known-seed source.
func jitterBackoff(p RetryPolicy, attempt int, rnd func(n int64) int64) time.Duration {
	d := p.Backoff << uint(attempt-1)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := int64(d / 2)
	if half > 0 {
		d = time.Duration(half + rnd(half+1))
	}
	return d
}

// randInt63n draws from the client's private jitter PRNG.
func (c *Client[V]) randInt63n(n int64) int64 {
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	return c.rng.Int63n(n)
}

// backoffSleep sleeps the retry's backoff (see jitterBackoff). The jitter
// comes from the client's own seeded PRNG, not the global math/rand
// source: no cross-client mutex on the retry path, and runs under seeded
// fault plans replay their backoff schedule (see WithJitterSeed).
func (c *Client[V]) backoffSleep(attempt int) {
	time.Sleep(jitterBackoff(c.retry, attempt, c.randInt63n))
}

// breakerCheck fast-fails while the breaker is open; after the cooldown
// expires exactly ONE caller is admitted as the half-open probe and
// everyone else keeps fast-failing until it resolves. Admitting every
// caller racing the cooldown boundary — the bug this replaced — turned
// recovery into a stampede: with m replicas' breakers expiring together,
// a still-dead server absorbed whole bursts of doomed round trips (each
// burning its full retry budget) before the breaker could re-open.
func (c *Client[V]) breakerCheck() error {
	if c.breakAfter <= 0 {
		return nil
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	if c.openUntil.IsZero() {
		return nil
	}
	if time.Now().Before(c.openUntil) {
		c.rpc.RecordBreakerFastFail()
		return fmt.Errorf("%w; retry after %s", ErrUnavailable, time.Until(c.openUntil).Round(time.Millisecond))
	}
	if c.halfOpen {
		// The cooldown expired but another caller already claimed the
		// probe slot; fail fast until the probe's verdict is in.
		c.rpc.RecordBreakerFastFail()
		return fmt.Errorf("%w; half-open probe in flight", ErrUnavailable)
	}
	c.halfOpen = true
	return nil
}

// breakerOK records a healthy exchange: the breaker sees health and a
// half-open probe's success closes it.
func (c *Client[V]) breakerOK() {
	c.brkMu.Lock()
	c.consecFails = 0
	c.openUntil = time.Time{}
	c.halfOpen = false
	c.brkMu.Unlock()
}

// breakerFail records a round trip that exhausted its retry budget,
// opening the breaker when the threshold is reached. A failed half-open
// probe re-opens immediately for a fresh cooldown — the probe already
// proved the server is still down; counting back up to the threshold
// would admit breakAfter-1 more doomed round trips per cooldown.
func (c *Client[V]) breakerFail() {
	c.brkMu.Lock()
	c.consecFails++
	if c.breakAfter > 0 && (c.halfOpen || c.consecFails >= c.breakAfter) {
		c.openUntil = time.Now().Add(c.cooldown)
		c.halfOpen = false
		c.rpc.RecordBreakerOpen()
	}
	c.brkMu.Unlock()
}

// roundTrip performs one logical access: assign the request its identity
// once, then attempt (and re-attempt, per the retry policy) to exchange
// it. A retried request re-sends the same sequence number, and the server
// applies a retried write at most once.
func (c *Client[V]) roundTrip(req *wire.Request) (wire.Response, error) {
	op := obs.RPCWrite
	switch req.Op {
	case "read", "qread", "qts":
		op = obs.RPCRead
	}
	if c.isClosed() {
		return wire.Response{}, ErrClosed
	}
	if err := c.breakerCheck(); err != nil {
		return wire.Response{}, err
	}

	// One request identity for all attempts; the sequence number doubles
	// as the pipeline correlation id.
	id := c.seq.Add(1)
	req.ID, req.Seq = id, id
	req.Client = c.id
	req.Reg = c.regName

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.rpc.RecordRetry(op)
			c.backoffSleep(attempt)
		}
		cc, err := c.getConn()
		if err != nil {
			lastErr = err
		} else {
			start := time.Now()
			resp, err := c.do(cc, req)
			if c.rpc != nil {
				outcome := obs.RPCOK
				switch {
				case isTimeout(err):
					outcome = obs.RPCTimeout
				case err != nil:
					outcome = obs.RPCError
				}
				c.rpc.Record(op, time.Since(start), outcome)
			}
			if err == nil {
				// Success, or a well-formed server error reply: the
				// connection is in sync and the breaker sees health.
				c.breakerOK()
				if resp.Err != "" {
					return resp, fmt.Errorf("netreg: server: %s", resp.Err)
				}
				return resp, nil
			}
			lastErr = err
			c.dropConn(cc, err)
		}
		if c.isClosed() {
			return wire.Response{}, ErrClosed
		}
		if attempt >= c.retry.Attempts {
			break
		}
	}

	c.breakerFail()
	return wire.Response{}, lastErr
}

// do performs one attempt over the given connection: register the call,
// hand the frame to the writer goroutine, and wait for the reader
// goroutine to deliver the response — bounded by the client's timeout, so
// a stalled server surfaces as ErrTimeout rather than a hung caller.
func (c *Client[V]) do(cc *clientConn, req *wire.Request) (wire.Response, error) {
	ca := &call{req: req, done: make(chan callResult, 1)}
	if err := cc.enqueue(ca); err != nil {
		return wire.Response{}, err
	}
	c.ws.OpStart()
	defer c.ws.OpDone()

	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case cc.sendq <- ca:
	case <-cc.down:
		cc.forget(req.ID)
		return wire.Response{}, cc.failErr()
	case <-timeoutC:
		cc.forget(req.ID)
		return wire.Response{}, fmt.Errorf("netreg: send: %w", ErrTimeout)
	}
	select {
	case r := <-ca.done:
		return r.resp, r.err
	case <-timeoutC:
		cc.forget(req.ID)
		return wire.Response{}, fmt.Errorf("netreg: receive: %w", ErrTimeout)
	}
}

// wrapTimeout tags deadline expirations with ErrTimeout so callers can
// errors.Is them without knowing the transport.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// isTimeout reports whether err stems from a deadline expiration.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.Is(err, ErrTimeout) || errors.Is(err, os.ErrDeadlineExceeded) ||
		(errors.As(err, &ne) && ne.Timeout())
}

// Do performs one logical round trip for a caller-built request — the
// hook by which the replica quorum client (internal/replica) reuses this
// client's whole recovery stack (pipelining, retry with per-client
// jittered backoff, reconnect, circuit breaker, at-most-once dedup
// identity) per replica. The client owns the request's identity: ID, Seq,
// Client, and Reg are overwritten. A server error reply is returned as a
// non-nil error alongside the response. The response value does not alias
// the connection's frame buffer and is safe to retain.
func (c *Client[V]) Do(req *wire.Request) (wire.Response, error) {
	return c.roundTrip(req)
}

// Addr returns the server address the client dials.
func (c *Client[V]) Addr() string { return c.addr }

// ReadErr performs a remote read through the given port.
func (c *Client[V]) ReadErr(port int) (V, int64, error) {
	var v V
	resp, err := c.roundTrip(&wire.Request{Op: "read", Port: port})
	if err != nil {
		return v, 0, err
	}
	if err := json.Unmarshal(resp.Val, &v); err != nil {
		return v, 0, fmt.Errorf("netreg: decoding value: %w", err)
	}
	return v, resp.Stamp, nil
}

// WriteErr performs a remote write (single-writer discipline applies).
func (c *Client[V]) WriteErr(v V) (int64, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("netreg: encoding value: %w", err)
	}
	resp, err := c.roundTrip(&wire.Request{Op: "write", Val: raw})
	if err != nil {
		return 0, err
	}
	return resp.Stamp, nil
}

// Reg is a register.Stamped adapter over one or more clients: reads fan
// in through per-port clients, writes go through the writer's client.
type Reg[V any] struct {
	// ReadClients[port] serves reads for that port; WriteClient serves
	// the single writer. Entries may alias when one process plays
	// several roles — NewSharedReg aliases them all onto one pipelined
	// connection.
	ReadClients []*Client[V]
	WriteClient *Client[V]
}

// NewReg dials one connection per read port plus one for the writer —
// each port is one sequential user, so each gets a serial connection of
// its own. Dial options (deadlines, retry/breaker policy, a shared RPC
// tally) apply to every connection.
func NewReg[V any](addr string, ports int, opts ...DialOption) (*Reg[V], error) {
	r := &Reg[V]{}
	for p := 0; p < ports; p++ {
		c, err := Dial[V](addr, opts...)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.ReadClients = append(r.ReadClients, c)
	}
	w, err := Dial[V](addr, opts...)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.WriteClient = w
	return r, nil
}

// NewSharedReg dials ONE pipelined connection and serves every port (and
// the writer) over it: the ports' concurrent accesses multiplex as
// in-flight requests on the shared link instead of occupying a connection
// each. This is the arrangement the pipelined transport exists for — and
// runs over it certify exactly like per-connection runs, because stamps
// are assigned server-side regardless of how requests traveled.
func NewSharedReg[V any](addr string, ports int, opts ...DialOption) (*Reg[V], error) {
	c, err := Dial[V](addr, opts...)
	if err != nil {
		return nil, err
	}
	r := &Reg[V]{WriteClient: c}
	for p := 0; p < ports; p++ {
		r.ReadClients = append(r.ReadClients, c)
	}
	return r, nil
}

// Close releases all connections (aliased clients close once; Close is
// idempotent).
func (r *Reg[V]) Close() {
	for _, c := range r.ReadClients {
		if c != nil {
			c.Close()
		}
	}
	if r.WriteClient != nil {
		r.WriteClient.Close()
	}
}

// Read implements register.Reg; it panics on transport failure (see the
// Client doc comment — with a retry policy the client absorbs transient
// faults first, and with a breaker the failure is a fast ErrUnavailable
// rather than a hang).
func (r *Reg[V]) Read(port int) V {
	v, _ := r.ReadStamped(port)
	return v
}

// ReadStamped implements register.Stamped.
func (r *Reg[V]) ReadStamped(port int) (V, int64) {
	if port < 0 || port >= len(r.ReadClients) {
		panic(fmt.Sprintf("netreg: read port %d out of range [0,%d)", port, len(r.ReadClients)))
	}
	v, stamp, err := r.ReadClients[port].ReadErr(port)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote read failed: %v", err))
	}
	return v, stamp
}

// Write implements register.Reg; it panics on transport failure, like
// Read.
func (r *Reg[V]) Write(v V) { r.WriteStamped(v) }

// WriteStamped implements register.Stamped.
func (r *Reg[V]) WriteStamped(v V) int64 {
	stamp, err := r.WriteClient.WriteErr(v)
	if err != nil {
		panic(fmt.Sprintf("netreg: remote write failed: %v", err))
	}
	return stamp
}
