package netreg

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/wire"
)

// WithJournal taps every operation the server completes into j: one
// obs.Source (a lock-light SPSC ring) per connection, one fixed-size
// record per op — register key, kind, value hash, and the monotonic
// invocation/response instants bracketing the register access. The
// online checker (internal/linz.Online) drains it to certify live
// traffic. Without the option the hot path pays a single nil check.
func WithJournal(j *obs.Journal) ServeOption {
	return func(c *serveConfig) { c.journal = j }
}

// connTap journals one connection's operations.
//
// The inline worker model has exactly one operation in flight per
// connection, handled on the connection goroutine: recording is the
// journal's native wait-free SPSC protocol (beginInline / recordInline).
//
// The dispatching worker models complete operations out of order on
// worker goroutines, which breaks both the single-producer ring contract
// and the sequential-producer horizon argument (a completion must not
// advance the bound past an older, still-running invocation). Those
// models run the tap gated (beginGated / recordGated): a mutex
// serializes ring access — those models already serialize on their
// encode path — and a FIFO of in-flight invocations maintains the
// source's LowInv as the oldest running invocation, falling back to a
// fresh under-lock clock read when the connection goes idle (any later
// begin reads the clock after it, so the bound stays a true lower
// bound).
type connTap struct {
	j   *obs.Journal
	src *obs.Source

	// lastRes is the inline model's invocation stamp: the previous
	// record's response instant (see beginInline).
	lastRes int64

	mu       sync.Mutex
	base     int64
	inflight []tapSlot
}

type tapSlot struct {
	inv  int64
	done bool
}

func newConnTap(j *obs.Journal) *connTap {
	t := &connTap{j: j, src: j.Source()}
	t.lastRes = j.Now()
	return t
}

// beginInline stamps an invocation on the inline model's single
// connection goroutine — without touching the clock or the ring. The
// producer is sequential, so the previous record's response instant
// lower-bounds this operation's true invocation; using it as the stamp
// widens the recorded interval by the inter-op gap (sound: a wider
// interval only admits more linearizations, and with pipelined traffic
// the gap is the decode time). It publishes no Begin either: the bound
// the previous recordInline left (that same response instant) already
// lower-bounds every future record, so the horizon contract holds
// as-is. Net cost of journaling an op: one clock read, one record.
//
//bloom:waitfree
//bloom:noalloc
func (t *connTap) beginInline() int64 {
	return t.lastRes
}

// recordInline journals one completed operation on the inline model's
// connection goroutine.
//
//bloom:waitfree
//bloom:noalloc
func (t *connTap) recordInline(req *wire.Request, resp *wire.Response, inv int64) {
	rec := t.buildRec(req, resp, inv)
	t.lastRes = rec.Res
	t.src.Record(rec)
}

// buildRec assembles the journal record for one completed operation.
//
//bloom:waitfree
//bloom:noalloc
func (t *connTap) buildRec(req *wire.Request, resp *wire.Response, inv int64) obs.Rec {
	rec := obs.Rec{Inv: inv, Res: t.j.Now(), Key: t.src.KeyID(req.Reg)}
	switch req.Op {
	case "write", "qwrite":
		// An effective qwrite is a write of the replica's q-cell; a stale
		// one arrives here with resp.Dup set and is skipped by checkers
		// (recording it as a fresh write of an old value would fabricate
		// a new-old inversion that never happened).
		rec.Kind = obs.JWrite
		rec.Val = obs.HashVal(req.Val)
	case "qts":
		// Timestamp-only query: no value crosses the wire, so there is no
		// register effect to check — JMeta tells checkers to skip it.
		rec.Kind = obs.JRead
		rec.Flags |= obs.JMeta
	default:
		rec.Kind = obs.JRead
		rec.Val = obs.HashVal(resp.Val)
	}
	if resp.Err != "" {
		rec.Flags |= obs.JErr
	}
	if resp.Dup {
		rec.Flags |= obs.JDup
	}
	return rec
}

// beginGated stamps an invocation for the dispatching worker models,
// returning the instant and the in-flight handle recordGated needs back.
func (t *connTap) beginGated() (inv, handle int64) {
	t.mu.Lock()
	// The clock is read under the lock: it totally orders this invocation
	// against every completion's idle-bound clock read, so the bound
	// published there can never overtake an invocation it didn't see.
	inv = t.j.Now()
	if len(t.inflight) == 0 {
		t.src.Begin(inv)
	}
	t.inflight = append(t.inflight, tapSlot{inv: inv})
	handle = t.base + int64(len(t.inflight)) - 1
	t.mu.Unlock()
	return inv, handle
}

// recordGated journals one completed operation from a worker goroutine.
func (t *connTap) recordGated(req *wire.Request, resp *wire.Response, inv, handle int64) {
	rec := t.buildRec(req, resp, inv)
	t.mu.Lock()
	t.inflight[handle-t.base].done = true
	for len(t.inflight) > 0 && t.inflight[0].done {
		t.inflight = t.inflight[1:]
		t.base++
	}
	// Publish the record before advancing the bound: a checker snapshots
	// the horizon first and drains second, so whatever the bound admits
	// must already be in the ring.
	t.src.RecordOnly(rec)
	if len(t.inflight) > 0 {
		t.src.Begin(t.inflight[0].inv)
	} else {
		t.src.Begin(t.j.Now())
	}
	t.mu.Unlock()
}

// close marks the connection's source finished once no more records can
// arrive (the worker models call it after their WaitGroup drains).
func (t *connTap) close() {
	t.src.Close()
}
