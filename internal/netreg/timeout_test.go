package netreg_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/netreg"
	"repro/internal/obs"
)

// stalledServer accepts connections and reads their requests but never
// replies — the pathological peer a deadline exists for.
func stalledServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestTimeoutStalledServer is the regression test for hung round trips: a
// client with a deadline against a server that never replies must return a
// counted ErrTimeout promptly instead of blocking forever.
func TestTimeoutStalledServer(t *testing.T) {
	addr := stalledServer(t)
	rpc := obs.NewRPC()
	c, err := netreg.Dial[string](addr, netreg.WithTimeout(100*time.Millisecond), netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, _, err = c.ReadErr(0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read against a stalled server succeeded")
	}
	if !errors.Is(err, netreg.ErrTimeout) {
		t.Fatalf("read error = %v; want errors.Is(err, ErrTimeout)", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out read took %v; deadline was 100ms", elapsed)
	}
	if got := rpc.Timeouts(obs.RPCRead); got != 1 {
		t.Fatalf("read timeouts counted = %d, want 1", got)
	}
	if got := rpc.Ok(obs.RPCRead); got != 0 {
		t.Fatalf("read oks counted = %d, want 0", got)
	}

	// The broken connection (a partial frame may be in flight) is
	// discarded, never resynchronized: the next round trip reconnects —
	// and against a still-stalled server times out afresh rather than
	// silently succeeding on a desynchronized stream.
	if _, err := c.WriteErr("x"); err == nil {
		t.Fatal("round trip against a still-stalled server succeeded")
	}
	if ok, _ := rpc.Reconnects(); ok != 1 {
		t.Fatalf("reconnects recorded = %d, want 1 (the discarded conn's replacement)", ok)
	}
}

// TestTimeoutCountsWrites covers the write path's timeout accounting.
func TestTimeoutCountsWrites(t *testing.T) {
	addr := stalledServer(t)
	rpc := obs.NewRPC()
	c, err := netreg.Dial[int](addr, netreg.WithTimeout(100*time.Millisecond), netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WriteErr(7); !errors.Is(err, netreg.ErrTimeout) {
		t.Fatalf("write error = %v; want ErrTimeout", err)
	}
	if got := rpc.Timeouts(obs.RPCWrite); got != 1 {
		t.Fatalf("write timeouts counted = %d, want 1", got)
	}
}

// TestRPCStatsHealthyPath checks that instrumented round trips against a
// live server count as ok with sane latencies.
func TestRPCStatsHealthyPath(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rpc := obs.NewRPC()
	reg, err := netreg.NewReg[int](srv.Addr(), 2, netreg.WithTimeout(5*time.Second), netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	reg.Write(41)
	for p := 0; p < 2; p++ {
		if got := reg.Read(p); got != 41 {
			t.Fatalf("port %d read %d, want 41", p, got)
		}
	}
	s := rpc.Snapshot()
	if rpc.Ok(obs.RPCRead) != 2 || rpc.Ok(obs.RPCWrite) != 1 {
		t.Fatalf("counts = %+v, want 2 reads / 1 write ok", s)
	}
	if rpc.Timeouts(obs.RPCRead)+rpc.Timeouts(obs.RPCWrite)+rpc.Errors(obs.RPCRead)+rpc.Errors(obs.RPCWrite) != 0 {
		t.Fatalf("unexpected failures: %+v", s)
	}
	for _, op := range s.Ops {
		if op.Ok > 0 && op.Latency.Count != op.Ok {
			t.Fatalf("op %s latency count %d != ok count %d", op.Op, op.Latency.Count, op.Ok)
		}
	}
}
