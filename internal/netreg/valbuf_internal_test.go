package netreg

import (
	"testing"

	"repro/internal/wire"
)

// bigJSONVal returns a JSON string value whose encoding is roughly n
// bytes — comfortably past any cap the tests set below it.
func bigJSONVal(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = 'a' + byte(i%26)
	}
	v[0], v[n-1] = '"', '"'
	return v
}

// TestValBufCapRetainsLargeValues is the PR-9 thrashing regression test:
// with the default 64 KiB cap, every read of a larger value drops the
// connection buffer (one fresh allocation per op — the bug's symptom);
// after SetValBufCap raises the cap past the value size, the buffer is
// retained and the steady-state read path allocates nothing.
func TestValBufCapRetainsLargeValues(t *testing.T) {
	st, err := NewStore("x", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := bigJSONVal(128 << 10) // 2× the default cap
	var resp wire.Response
	st.handle(&wire.Request{Op: "qwrite", TS: 1, WID: 1, Val: val}, &resp, nil)
	if resp.Err != "" {
		t.Fatalf("installing the large value: %s", resp.Err)
	}

	read := &wire.Request{Op: "qread"}
	if buf := st.handle(read, &resp, nil); buf != nil {
		t.Fatalf("over-cap buffer (cap %d) retained under the default cap %d", cap(buf), DefaultValBufCap)
	}

	st.SetValBufCap(256 << 10)
	valBuf := st.handle(read, &resp, nil) // grow once
	if valBuf == nil {
		t.Fatal("raised cap still dropped the buffer")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		valBuf = st.handle(read, &resp, valBuf)
	}); allocs != 0 {
		t.Fatalf("reads of a %d-byte value allocate %.1f allocs/op under a raised cap, want 0", len(val), allocs)
	}
	if string(resp.Val) != string(val) || resp.Stamp != 1 || resp.WID != 1 {
		t.Fatal("retained-buffer read corrupted the value")
	}
}

// BenchmarkStoreValBuf is a CI allocs/op gate (with BenchmarkFrame):
// `go test -run=NONE -bench=BenchmarkStoreValBuf -benchmem` must report
// 0 allocs/op for both sizes — val128Ki exceeds DefaultValBufCap and is
// only allocation-free because the raised cap retains the buffer, which
// is exactly the regression the gate keeps caught.
func BenchmarkStoreValBuf(b *testing.B) {
	for _, bc := range []struct {
		name string
		size int
		cap  int
	}{
		{"val1Ki-defaultCap", 1 << 10, 0},
		{"val128Ki-raisedCap", 128 << 10, 256 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			st, err := NewStore("x", 1, nil)
			if err != nil {
				b.Fatal(err)
			}
			if bc.cap > 0 {
				st.SetValBufCap(bc.cap)
			}
			val := bigJSONVal(bc.size)
			var resp wire.Response
			st.handle(&wire.Request{Op: "qwrite", TS: 1, WID: 1, Val: val}, &resp, nil)
			if resp.Err != "" {
				b.Fatalf("installing the value: %s", resp.Err)
			}
			read := &wire.Request{Op: "qread"}
			valBuf := st.handle(read, &resp, nil)
			b.SetBytes(int64(bc.size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				valBuf = st.handle(read, &resp, valBuf)
			}
			if valBuf == nil {
				b.Fatal("buffer dropped mid-benchmark")
			}
		})
	}
}
