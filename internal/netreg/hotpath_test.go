package netreg_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/netreg"
	"repro/internal/obs"
)

// TestWorkerModels runs the same concurrent mixed workload against each
// per-connection worker model (inline, bounded pool, goroutine per
// request) and checks that all three give the same answers: every write
// applied exactly once (distinct stamps, authoritative counter matches),
// every read well-formed.
func TestWorkerModels(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"inline", 0},
		{"pool4", 4},
		{"per-request", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := netreg.NewStore("init", 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := netreg.Serve("127.0.0.1:0", st, netreg.WithWorkers(tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			c, err := netreg.Dial[string](srv.Addr(), netreg.WithTimeout(5*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const (
				goroutines = 8
				opsEach    = 50
			)
			stampCh := make(chan int64, goroutines*opsEach)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < opsEach; i++ {
						if i%2 == 0 {
							s, err := c.WriteErr(fmt.Sprintf("g%d-i%d", g, i))
							if err != nil {
								t.Errorf("write: %v", err)
								return
							}
							stampCh <- s
						} else {
							v, _, err := c.ReadErr(0)
							if err != nil {
								t.Errorf("read: %v", err)
								return
							}
							if v == "" {
								t.Error("read returned an empty value")
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(stampCh)

			seen := make(map[int64]bool)
			n := 0
			for s := range stampCh {
				if seen[s] {
					t.Fatalf("stamp %d minted twice — a write applied twice", s)
				}
				seen[s] = true
				n++
			}
			if want := goroutines * opsEach / 2; n != want {
				t.Fatalf("collected %d write stamps, want %d", n, want)
			}
			if got := st.Counters().Writes(); got != int64(goroutines*opsEach/2) {
				t.Fatalf("server applied %d writes, want %d", got, goroutines*opsEach/2)
			}
		})
	}
}

// TestWriteCombining turns on flat-combining write batching and hammers
// one register from many separate connections: every write must still be
// applied exactly once with its own stamp, and dedup must keep working
// through the combiner (a retransmission is answered with its original
// stamp, not re-applied).
func TestWriteCombining(t *testing.T) {
	st, err := netreg.NewStore(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.SetWriteCombining(true)
	srv, err := netreg.Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		clients   = 8
		writesPer = 200
	)
	stampCh := make(chan int64, clients*writesPer)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := netreg.Dial[int](srv.Addr(), netreg.WithTimeout(5*time.Second))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < writesPer; i++ {
				s, err := c.WriteErr(g*writesPer + i)
				if err != nil {
					t.Errorf("write: %v", err)
					return
				}
				stampCh <- s
			}
		}(g)
	}
	wg.Wait()
	close(stampCh)

	seen := make(map[int64]bool)
	for s := range stampCh {
		if seen[s] {
			t.Fatalf("stamp %d minted twice under combining", s)
		}
		seen[s] = true
	}
	if got := st.Counters().Writes(); got != clients*writesPer {
		t.Fatalf("combined writes applied = %d, want %d", got, clients*writesPer)
	}

	// Dedup through the combiner: a retransmitted frame (same client id
	// and seq) must be answered from the window, not applied again.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	frame := `{"op":"write","val":"-1","client":"dup","seq":1}`
	first := rawExchange(t, conn, dec, frame)
	retry := rawExchange(t, conn, dec, frame)
	if first["stamp"] != retry["stamp"] {
		t.Fatalf("retransmission under combining got stamp %v, original %v", retry["stamp"], first["stamp"])
	}
	if got := st.Counters().Writes(); got != clients*writesPer+1 {
		t.Fatalf("writes after dedup probe = %d, want %d", got, clients*writesPer+1)
	}
}

// TestDedupSurvivesPipelinedRetryStorm is the windowed-dedup stress:
// more total writes than DefaultDedupWindow pushed through one pipelined
// connection by many concurrent callers, over a seeded faulty link that
// forces timeout/reconnect/retry storms (one dropped frame fails every
// in-flight call on the connection over to its own retry). At-most-once
// must hold for every write — and because concurrent in-flight depth
// stays far below the window, no retry may ever be refused as stale.
func TestDedupSurvivesPipelinedRetryStorm(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Fault decisions are per syscall, and the pipelined transport
	// coalesces a burst of frames into one Write — so a single drop loses
	// a whole batch of in-flight writes at once, which is exactly the
	// storm under test.
	plan := &faultnet.Plan{Seed: 7, DropProb: 0.05, SeverProb: 0.02}
	rpc := obs.NewRPC()
	c, err := netreg.Dial[int](srv.Addr(),
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(100*time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 30, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
		netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 64 concurrent callers × 70 writes = 4480 > DefaultDedupWindow
	// (4096), so the per-client window wraps during the run while depth
	// stays ≈64 ≪ window.
	const (
		callers   = 64
		writesPer = 70
		total     = callers * writesPer
	)
	if total <= netreg.DefaultDedupWindow {
		t.Fatalf("workload %d does not exceed the dedup window %d; the test proves nothing", total, netreg.DefaultDedupWindow)
	}
	stampCh := make(chan int64, total)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				s, err := c.WriteErr(g*writesPer + i)
				if err != nil {
					// Any error is a failure: a "stale" refusal here
					// would be a false rejection (depth ≪ window), and a
					// transport error means the retry budget was sized
					// wrong for the seeded plan.
					t.Errorf("write through retry storm: %v", err)
					return
				}
				stampCh <- s
			}
		}(g)
	}
	wg.Wait()
	close(stampCh)
	if t.Failed() {
		return
	}

	seen := make(map[int64]bool)
	for s := range stampCh {
		if seen[s] {
			t.Fatalf("stamp %d minted twice — a retried write applied twice", s)
		}
		seen[s] = true
	}
	if len(seen) != total {
		t.Fatalf("collected %d stamps, want %d", len(seen), total)
	}
	if got := srv.Store().Counters().Writes(); got != total {
		t.Fatalf("server applied %d writes, client issued %d", got, total)
	}
	if plan.Stats().Total() == 0 {
		t.Fatal("the seeded plan injected no faults; the test proved nothing")
	}
	if rpc.Retries(obs.RPCWrite) == 0 {
		t.Fatal("no write retries recorded despite injected faults")
	}
}
