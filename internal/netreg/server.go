// Package netreg hosts the paper's "real" registers on the network,
// realizing the introduction's motivating scenario: each node exposes the
// register it alone writes, every other node reads it remotely, and the
// two-writer protocol on top turns the pair into one shared atomic
// register — no locks held across machines, no node ever waiting on a
// peer's progress to finish its own operation.
//
// The transport is deliberately simple (newline-delimited JSON over TCP):
// the point is the register semantics, not the RPC framework. Each access
// is one request/response exchange; the server assigns the access's
// *-action stamp inside its register's critical section, so runs over the
// network remain certifiable by package proof when the servers share a
// sequencer (as in-process tests do).
//
// Failure semantics: the register state and the write-dedup table live in
// a Store that survives server incarnations (the analog of the scenario's
// file system surviving a crashed file server), so a killed listener can
// be restarted over the same Store and retrying clients pick up where
// they left off. Writes carry the client's id and sequence number and are
// applied AT MOST ONCE: a write whose response was lost and which the
// client re-sends is answered from the dedup table with its original
// stamp instead of being applied again — a replayed write must never
// become two *-actions, or atomicity certification breaks.
package netreg

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/history"
	"repro/internal/register"
)

// request is the wire format of one access.
type request struct {
	// Op is "read" or "write".
	Op string `json:"op"`
	// Port is the reader's port (reads only).
	Port int `json:"port,omitempty"`
	// Val is the value written (writes only), as raw JSON.
	Val json.RawMessage `json:"val,omitempty"`
	// Client identifies the sending client for write dedup.
	Client string `json:"client,omitempty"`
	// Seq is the client's per-request sequence number; a retried request
	// re-sends the same Seq, which is how the server recognizes it.
	Seq uint64 `json:"seq,omitempty"`
}

// response is the wire format of an access result.
type response struct {
	// Val is the value read (reads only), as raw JSON.
	Val json.RawMessage `json:"val,omitempty"`
	// Stamp is the access's *-action stamp.
	Stamp int64 `json:"stamp"`
	// Err reports a server-side failure.
	Err string `json:"err,omitempty"`
}

// dedupEntry remembers a client's last applied write, so a retransmission
// of it is answered rather than re-applied.
type dedupEntry struct {
	seq  uint64
	resp response
}

// Store is the durable state behind a register server: the register
// itself plus the write-dedup table. It outlives any one Server, so a
// crashed-and-restarted server (Serve on the same Store) presents the
// same register — state survives the way the scenario's file system
// survives a crashed file server — and in-flight retries still
// deduplicate correctly across the restart.
type Store struct {
	reg *register.Atomic[string]

	// writeMu serializes the dedup check with the write it guards;
	// without it a retransmitted write racing its original (possible when
	// a client times out while the server is merely slow) could be
	// applied twice — or trip the register's single-writer panic.
	writeMu sync.Mutex
	applied map[string]dedupEntry
}

// NewStore builds a server store: a register over ports read ports
// initialized to initial's JSON, drawing stamps from seq (nil for a
// private sequencer), plus an empty dedup table.
func NewStore[V any](initial V, ports int, seq *history.Sequencer) (*Store, error) {
	raw, err := json.Marshal(initial)
	if err != nil {
		return nil, fmt.Errorf("netreg: encoding initial value: %w", err)
	}
	return &Store{
		reg:     register.NewAtomic(ports, string(raw), seq),
		applied: make(map[string]dedupEntry),
	}, nil
}

// write validates and applies one write request, deduplicating retries.
func (st *Store) write(req request) response {
	// Reject values that are not one valid JSON document: stored garbage
	// would make every later read of this register fail client-side (or
	// kill the conn outright when the encoder rejects the RawMessage) —
	// better to refuse the one bad write with a survivable error reply.
	if len(req.Val) == 0 || !json.Valid(req.Val) {
		return response{Err: fmt.Sprintf("invalid write value: %d bytes, not a JSON document", len(req.Val))}
	}
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if req.Client != "" {
		if e, ok := st.applied[req.Client]; ok && req.Seq <= e.seq {
			if req.Seq == e.seq {
				// A retransmission of the last applied write: answer with
				// the original outcome, do not apply again.
				return e.resp
			}
			return response{Err: fmt.Sprintf("stale write seq %d from client %s (last applied %d)", req.Seq, req.Client, e.seq)}
		}
	}
	resp := response{Stamp: st.reg.WriteStamped(string(req.Val))}
	if req.Client != "" {
		st.applied[req.Client] = dedupEntry{seq: req.Seq, resp: resp}
	}
	return resp
}

// Counters exposes the store's register access counters, so tests and
// benchmarks can assert at-most-once application (writes issued == writes
// applied) directly against the authoritative state.
func (st *Store) Counters() *register.Counters { return st.reg.Counters() }

// read serves one read request.
func (st *Store) read(req request) response {
	if req.Port < 0 || req.Port >= st.reg.Counters().Ports() {
		return response{Err: fmt.Sprintf("port %d out of range", req.Port)}
	}
	v, stamp := st.reg.ReadStamped(req.Port)
	return response{Val: json.RawMessage(v), Stamp: stamp}
}

// Server hosts one single-writer register (one Store) behind a listener.
// Values travel and are stored as canonical JSON, so the server is
// value-type agnostic.
type Server struct {
	st *Store

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
}

// NewServer starts a register server on addr (use "127.0.0.1:0" for an
// ephemeral test port) over a fresh Store. The register is initialized to
// initial's JSON and draws stamps from seq (nil for a private sequencer).
func NewServer[V any](addr string, initial V, ports int, seq *history.Sequencer) (*Server, error) {
	st, err := NewStore(initial, ports, seq)
	if err != nil {
		return nil, err
	}
	return Serve(addr, st)
}

// Serve starts a server incarnation on addr over an existing Store. Use
// it to restart a crashed/closed server on the state it left behind.
func Serve(addr string, st *Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netreg: listen: %w", err)
	}
	s := &Server{
		st:    st,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
	}
	s.handlers.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Store returns the server's backing store, for restarting a new
// incarnation after Close.
func (s *Server) Store() *Store { return s.st }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections, waiting for handlers to
// drain. The Store survives and can back a new incarnation via Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.handlers.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away (or sent garbage; drop the link)
		}
		var resp response
		switch req.Op {
		case "read":
			resp = s.st.read(req)
		case "write":
			resp = s.st.write(req)
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// ErrClosed is returned by clients after Close.
var ErrClosed = errors.New("netreg: client closed")
