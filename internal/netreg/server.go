// Package netreg hosts the paper's "real" registers on the network,
// realizing the introduction's motivating scenario: each node exposes the
// register it alone writes, every other node reads it remotely, and the
// two-writer protocol on top turns the pair into one shared atomic
// register — no locks held across machines, no node ever waiting on a
// peer's progress to finish its own operation.
//
// The transport is built for throughput (see internal/wire): compact
// length-prefixed binary frames by default, assembled in pooled buffers
// and written through buffered writers so a batch of frames costs one
// syscall, with the original newline-delimited JSON framing still spoken
// for wire-compatibility tests (WithCodec). The server negotiates by
// sniffing the first byte of each connection, so one listener serves both
// codecs at once. Clients pipeline: every request carries an id, a writer
// goroutine multiplexes all in-flight operations of a connection, and a
// reader goroutine dispatches responses back to the waiting callers — the
// connection is never idle waiting for one round trip to finish before
// the next may start. The server assigns each access's *-action stamp
// inside its register's critical section, so runs over the network remain
// certifiable by package proof when the servers share a sequencer (as
// in-process tests do), pipelined or not.
//
// One listener hosts many simulated registers: requests name a register
// instance, and the Store behind the server holds a sharded map of them
// ("" is the default register, so single-register deployments never think
// about names).
//
// Failure semantics: the register state and the write-dedup tables live
// in the Store, which survives server incarnations (the analog of the
// scenario's file system surviving a crashed file server), so a killed
// listener can be restarted over the same Store and retrying clients pick
// up where they left off. Writes carry the client's id and sequence
// number and are applied AT MOST ONCE: a write whose response was lost
// and which the client re-sends is answered from the dedup window with
// its original stamp instead of being applied again — a replayed write
// must never become two *-actions, or atomicity certification breaks.
package netreg

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/wire"
)

// serverBufSize sizes the per-connection read and write buffers: large
// enough that a deep pipelined burst of small frames coalesces into one
// syscall each way.
const serverBufSize = 64 << 10

// ServeOption configures a Server incarnation.
type ServeOption func(*serveConfig)

type serveConfig struct {
	wire    *obs.Wire
	workers int
	journal *obs.Journal
}

// WithServerWire attaches a transport tally to the server: frames and
// bytes in each direction across all connections. One tally may be shared
// by several server incarnations.
func WithServerWire(w *obs.Wire) ServeOption {
	return func(c *serveConfig) { c.wire = w }
}

// WithWorkers selects the per-connection worker model:
//
//   - 0 (the default): requests are handled inline on the connection's
//     read goroutine — no handoff, no copies, the fastest model when the
//     handler never blocks (which register accesses don't).
//   - n > 0: a bounded pool of n workers per connection; the read
//     goroutine decodes and dispatches, so a request that does block
//     stalls only its worker, not the whole pipeline.
//   - n < 0: one goroutine per request — unbounded concurrency, useful
//     as the ceiling case in worker-model benchmarks.
//
// Dispatched requests are copied out of the decoder's reused frame
// buffer first (see the wire.Reader aliasing contract), which is part of
// the price the non-inline models pay per request.
func WithWorkers(n int) ServeOption {
	return func(c *serveConfig) { c.workers = n }
}

// Server hosts a Store's registers behind a listener. Values travel and
// are stored as canonical JSON, so the server is value-type agnostic.
type Server struct {
	st      *Store
	ws      *obs.Wire
	jnl     *obs.Journal
	workers int

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
}

// NewServer starts a register server on addr (use "127.0.0.1:0" for an
// ephemeral test port) over a fresh Store. The default register is
// initialized to initial's JSON and draws stamps from seq (nil for a
// private sequencer).
func NewServer[V any](addr string, initial V, ports int, seq *history.Sequencer, opts ...ServeOption) (*Server, error) {
	st, err := NewStore(initial, ports, seq)
	if err != nil {
		return nil, err
	}
	return Serve(addr, st, opts...)
}

// Serve starts a server incarnation on addr over an existing Store. Use
// it to restart a crashed/closed server on the state it left behind.
func Serve(addr string, st *Store, opts ...ServeOption) (*Server, error) {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netreg: listen: %w", err)
	}
	s := &Server{
		st:      st,
		ws:      cfg.wire,
		jnl:     cfg.journal,
		workers: cfg.workers,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
	}
	s.handlers.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Store returns the server's backing store, for restarting a new
// incarnation after Close.
func (s *Server) Store() *Store { return s.st }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections, waiting for handlers to
// drain. The Store survives and can back a new incarnation via Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.handlers.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

// serve pumps one connection: sniff the codec, then hand the framed
// stream to the configured worker model (WithWorkers).
func (s *Server) serve(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	rwc := StatConn(conn, s.ws)
	br := bufio.NewReaderSize(rwc, serverBufSize)
	bw := bufio.NewWriterSize(rwc, serverBufSize)
	codec, err := wire.Sniff(br)
	if err != nil {
		return // client went away before its first byte
	}
	rd := wire.NewReader(codec, br)
	wr := wire.NewWriter(codec, bw)
	var tap *connTap
	if s.jnl != nil {
		tap = newConnTap(s.jnl)
		defer tap.close()
	}
	if s.workers == 0 {
		s.serveInline(rd, wr, tap)
	} else {
		s.serveWorkers(rd, wr, s.workers, tap)
	}
}

// serveInline is the default worker model: decode, handle, and encode on
// the one connection goroutine. Responses are buffered and flushed only
// when no decoded request remains — so a pipelined burst is answered
// with one syscall, while a serial client still gets every reply
// immediately (its next request hasn't arrived yet, so the buffer state
// is empty and the flush fires). The request, the response value buffer,
// and the encoder scratch are all reused across iterations: the loop
// allocates nothing in steady state.
// The journal tap (WithJournal) brackets the handle call: one clock read
// and one atomic store on each side when enabled, a single nil check when
// not.
func (s *Server) serveInline(rd *wire.Reader, wr *wire.Writer, tap *connTap) {
	var (
		req    wire.Request
		resp   wire.Response
		valBuf []byte
	)
	for {
		if rd.Buffered() == 0 {
			if err := wr.Flush(); err != nil {
				return
			}
		}
		if err := rd.ReadRequest(&req); err != nil {
			wr.Flush()
			return // client went away (or sent garbage; drop the link)
		}
		s.ws.FrameIn()
		if tap == nil {
			valBuf = s.st.handle(&req, &resp, valBuf)
		} else {
			inv := tap.beginInline()
			valBuf = s.st.handle(&req, &resp, valBuf)
			tap.recordInline(&req, &resp, inv)
		}
		if err := wr.WriteResponse(&resp); err != nil {
			return
		}
		s.ws.FrameOut()
	}
}

// reqPool recycles request copies for the dispatching worker models.
var reqPool = sync.Pool{New: func() any { return new(wire.Request) }}

// copyReq copies a decoded request out of the reader's reused frame
// buffer into a pooled request that may outlive the next decode.
// (Reg and Client are interned by the reader and safe to retain as is.)
func copyReq(req *wire.Request) *wire.Request {
	cp := reqPool.Get().(*wire.Request)
	buf := cp.Val
	*cp = *req
	cp.Val = append(buf[:0], req.Val...)
	return cp
}

// putReq returns a request copy to the pool, dropping buffers one
// oversized value grew past the steady-state cap.
func putReq(cp *wire.Request) {
	if cap(cp.Val) > serverBufSize {
		cp.Val = nil
	}
	reqPool.Put(cp)
}

// serveWorkers is the dispatching worker model: the connection goroutine
// decodes and dispatches, and workers (a bounded pool of n for n > 0,
// a fresh goroutine per request for n < 0) handle and encode. Encoding
// serializes on a per-connection mutex; the worker that retires the last
// in-flight request flushes, which batches a pipelined burst's responses
// the way the inline model's buffered-request check does.
// With a journal tap, invocations are stamped on the (sequential) decode
// goroutine and completions recorded through the tap's gate, which keeps
// the horizon sound despite out-of-order completion (see connTap).
func (s *Server) serveWorkers(rd *wire.Reader, wr *wire.Writer, n int, tap *connTap) {
	var (
		wmu      sync.Mutex
		inflight atomic.Int64
		wg       sync.WaitGroup
	)
	handleOne := func(req *wire.Request, valBuf []byte, inv, handle int64) []byte {
		var resp wire.Response
		valBuf = s.st.handle(req, &resp, valBuf)
		if tap != nil {
			tap.recordGated(req, &resp, inv, handle)
		}
		wmu.Lock()
		if err := wr.WriteResponse(&resp); err == nil {
			s.ws.FrameOut()
			if inflight.Add(-1) == 0 {
				wr.Flush()
			}
		} else {
			// The connection is broken; keep draining requests so the
			// reader's teardown never blocks, but stop encoding.
			inflight.Add(-1)
		}
		wmu.Unlock()
		return valBuf
	}

	type workItem struct {
		req         *wire.Request
		inv, handle int64
	}
	var work chan workItem
	if n > 0 {
		work = make(chan workItem, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var valBuf []byte
				for it := range work {
					valBuf = handleOne(it.req, valBuf, it.inv, it.handle)
					putReq(it.req)
				}
			}()
		}
	}

	var req wire.Request
	for {
		if err := rd.ReadRequest(&req); err != nil {
			break // client went away (or sent garbage; drop the link)
		}
		s.ws.FrameIn()
		inflight.Add(1)
		cp := copyReq(&req)
		var inv, handle int64
		if tap != nil {
			inv, handle = tap.beginGated()
		}
		if n > 0 {
			work <- workItem{req: cp, inv: inv, handle: handle}
		} else {
			wg.Add(1)
			go func() {
				defer wg.Done()
				handleOne(cp, nil, inv, handle)
				putReq(cp)
			}()
		}
	}
	if work != nil {
		close(work)
	}
	wg.Wait()
	wmu.Lock()
	wr.Flush()
	wmu.Unlock()
}

// ErrClosed is returned by clients after Close.
var ErrClosed = errors.New("netreg: client closed")
