// Package netreg hosts the paper's "real" registers on the network,
// realizing the introduction's motivating scenario: each node exposes the
// register it alone writes, every other node reads it remotely, and the
// two-writer protocol on top turns the pair into one shared atomic
// register — no locks held across machines, no node ever waiting on a
// peer's progress to finish its own operation.
//
// The transport is deliberately simple (newline-delimited JSON over TCP):
// the point is the register semantics, not the RPC framework. Each access
// is one request/response exchange; the server assigns the access's
// *-action stamp inside its register's critical section, so runs over the
// network remain certifiable by package proof when the servers share a
// sequencer (as in-process tests do).
package netreg

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/history"
	"repro/internal/register"
)

// request is the wire format of one access.
type request struct {
	// Op is "read" or "write".
	Op string `json:"op"`
	// Port is the reader's port (reads only).
	Port int `json:"port,omitempty"`
	// Val is the value written (writes only), as raw JSON.
	Val json.RawMessage `json:"val,omitempty"`
}

// response is the wire format of an access result.
type response struct {
	// Val is the value read (reads only), as raw JSON.
	Val json.RawMessage `json:"val,omitempty"`
	// Stamp is the access's *-action stamp.
	Stamp int64 `json:"stamp"`
	// Err reports a server-side failure.
	Err string `json:"err,omitempty"`
}

// Server hosts one single-writer register. Values travel and are stored
// as canonical JSON, so the server is value-type agnostic.
type Server struct {
	reg *register.Atomic[string]

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
}

// NewServer starts a register server on addr (use "127.0.0.1:0" for an
// ephemeral test port). The register is initialized to initial's JSON and
// draws stamps from seq (nil for a private sequencer).
func NewServer[V any](addr string, initial V, ports int, seq *history.Sequencer) (*Server, error) {
	raw, err := json.Marshal(initial)
	if err != nil {
		return nil, fmt.Errorf("netreg: encoding initial value: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netreg: listen: %w", err)
	}
	s := &Server{
		reg:   register.NewAtomic(ports, string(raw), seq),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
	}
	s.handlers.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections, waiting for handlers to
// drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.handlers.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away (or sent garbage; drop the link)
		}
		var resp response
		switch req.Op {
		case "read":
			if req.Port < 0 || req.Port >= s.reg.Counters().Ports() {
				resp.Err = fmt.Sprintf("port %d out of range", req.Port)
				break
			}
			v, stamp := s.reg.ReadStamped(req.Port)
			resp.Val = json.RawMessage(v)
			resp.Stamp = stamp
		case "write":
			resp.Stamp = s.reg.WriteStamped(string(req.Val))
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// ErrClosed is returned by clients after Close.
var ErrClosed = errors.New("netreg: client closed")
