package netreg

import (
	mathrand "math/rand"
	"reflect"
	"testing"
	"time"
)

// TestJitterBackoffDeterministic pins the PR-9 bugfix contract: backoff
// jitter is a pure function of the client's seeded PRNG, not the global
// locked math/rand source, so two clients with the same seed replay the
// same backoff schedule draw for draw.
func TestJitterBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 8, Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	schedule := func(seed int64) []time.Duration {
		rng := mathrand.New(mathrand.NewSource(seed))
		var out []time.Duration
		for attempt := 1; attempt <= p.Attempts; attempt++ {
			out = append(out, jitterBackoff(p, attempt, rng.Int63n))
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different backoff schedules:\n%v\n%v", a, b)
	}
	if c := schedule(43); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced the same schedule: %v", a)
	}
}

// TestJitterBackoffBounds checks the documented envelope: each sleep is
// uniform in [d/2, d] for the capped exponential d of its attempt.
func TestJitterBackoffBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 10, Backoff: time.Millisecond, MaxBackoff: 32 * time.Millisecond}
	rng := mathrand.New(mathrand.NewSource(1))
	for attempt := 1; attempt <= p.Attempts; attempt++ {
		d := p.Backoff << uint(attempt-1)
		if d <= 0 || d > p.MaxBackoff {
			d = p.MaxBackoff
		}
		for i := 0; i < 200; i++ {
			got := jitterBackoff(p, attempt, rng.Int63n)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
}

// TestWithJitterSeedClientStreams dials two real clients with the same
// seed and checks their private jitter PRNGs produce identical streams —
// the end-to-end form of the determinism the pure-function test pins.
func TestWithJitterSeedClientStreams(t *testing.T) {
	st, err := NewStore("v", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dial := func(seed int64) *Client[string] {
		c, err := Dial[string](srv.Addr(), WithJitterSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	c1, c2, c3 := dial(7), dial(7), dial(8)
	var s1, s2, s3 []int64
	for i := 0; i < 32; i++ {
		s1 = append(s1, c1.randInt63n(1<<30))
		s2 = append(s2, c2.randInt63n(1<<30))
		s3 = append(s3, c3.randInt63n(1<<30))
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same-seed clients diverged:\n%v\n%v", s1, s2)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatalf("different-seed clients coincided: %v", s1)
	}
}
