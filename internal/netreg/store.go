package netreg

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/history"
	"repro/internal/register"
	"repro/internal/wire"
)

// storeShards is the bucket count of the register-name map. Lookups take a
// shard read lock only; independent registers on one server never contend
// on shared map state.
const storeShards = 16

// DefaultDedupWindow is how many applied writes per client each register
// remembers for at-most-once dedup. A retransmission inside the window is
// answered with its original stamp; a sequence number older than anything
// retained is refused. The window must comfortably exceed a client's
// maximum in-flight pipeline depth plus its retry budget, which in
// practice is a few dozen.
const DefaultDedupWindow = 4096

// clientWindow is one client's recent applied writes on one register.
// Pipelined clients issue sequence numbers concurrently, so first
// arrivals may be out of order; the window therefore remembers a set of
// applied seqs (not just a high-water mark) and refuses only what it has
// already evicted and can no longer verify.
type clientWindow struct {
	stamps     map[uint64]int64 // applied seq → its original stamp
	order      []uint64         // applied seqs in arrival order, for eviction
	evicted    bool
	evictedMax uint64 // highest seq evicted; anything ≤ it is unverifiable
}

// regState is one named register instance: the register itself plus its
// private dedup table.
type regState struct {
	reg *register.Atomic[string]

	// writeMu serializes the dedup check with the write it guards;
	// without it a retransmitted write racing its original (possible when
	// a client times out while the server is merely slow) could be
	// applied twice — or trip the register's single-writer panic.
	writeMu sync.Mutex
	applied map[string]*clientWindow
}

// storeShard is one bucket of the register-name map. The trailing pad
// keeps adjacent shards on separate cache lines, so lookups of
// independent registers never false-share.
type storeShard struct {
	mu   sync.RWMutex
	regs map[string]*regState
	_    [64]byte
}

// Store is the durable state behind a register server: a sharded map of
// named register instances, each with its own write-dedup table. It
// outlives any one Server, so a crashed-and-restarted server (Serve on
// the same Store) presents the same registers — state survives the way
// the scenario's file system survives a crashed file server — and
// in-flight retries still deduplicate correctly across the restart. One
// Store behind one listener is how a single server hosts many simulated
// registers: requests carry a register name, "" being the default
// register every Store starts with.
type Store struct {
	window int // dedup window per client per register
	shards [storeShards]storeShard
}

// newStore returns an empty store with the default dedup window.
func newStore() *Store {
	st := &Store{window: DefaultDedupWindow}
	for i := range st.shards {
		st.shards[i].regs = make(map[string]*regState)
	}
	return st
}

// NewStore builds a server store holding one default register (name "")
// over ports read ports, initialized to initial's JSON, drawing stamps
// from seq (nil for a private sequencer). Add more named registers with
// AddRegister.
func NewStore[V any](initial V, ports int, seq *history.Sequencer) (*Store, error) {
	st := newStore()
	if err := AddRegister(st, "", initial, ports, seq); err != nil {
		return nil, err
	}
	return st, nil
}

// AddRegister adds a named register instance to the store: a register
// over ports read ports initialized to initial's JSON, drawing stamps
// from seq (nil for a private sequencer), with a fresh dedup table.
// Adding a name twice is an error.
func AddRegister[V any](st *Store, name string, initial V, ports int, seq *history.Sequencer) error {
	raw, err := json.Marshal(initial)
	if err != nil {
		return fmt.Errorf("netreg: encoding initial value for register %q: %w", name, err)
	}
	rs := &regState{
		reg:     register.NewAtomic(ports, string(raw), seq),
		applied: make(map[string]*clientWindow),
	}
	sh := st.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.regs[name]; dup {
		return fmt.Errorf("netreg: register %q already exists", name)
	}
	sh.regs[name] = rs
	return nil
}

// SetDedupWindow overrides the per-client dedup window (see
// DefaultDedupWindow). Call before serving; tests use tiny windows to
// exercise eviction.
func (st *Store) SetDedupWindow(n int) {
	if n > 0 {
		st.window = n
	}
}

// shard returns the bucket for a register name.
func (st *Store) shard(name string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &st.shards[h.Sum32()%storeShards]
}

// lookup returns the named register, or nil.
func (st *Store) lookup(name string) *regState {
	sh := st.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.regs[name]
}

// Registers returns the store's register names, sorted.
func (st *Store) Registers() []string {
	var names []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for name := range sh.regs {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Counters exposes the default register's access counters, so tests and
// benchmarks can assert at-most-once application (writes issued == writes
// applied) directly against the authoritative state.
func (st *Store) Counters() *register.Counters { return st.RegisterCounters("") }

// RegisterCounters exposes a named register's access counters, or nil if
// no such register exists.
func (st *Store) RegisterCounters(name string) *register.Counters {
	rs := st.lookup(name)
	if rs == nil {
		return nil
	}
	return rs.reg.Counters()
}

// write validates and applies one write request, deduplicating retries.
func (st *Store) write(req *wire.Request) wire.Response {
	rs := st.lookup(req.Reg)
	if rs == nil {
		return wire.Response{Err: fmt.Sprintf("unknown register %q", req.Reg)}
	}
	// Reject values that are not one valid JSON document: stored garbage
	// would make every later read of this register fail client-side —
	// better to refuse the one bad write with a survivable error reply.
	if len(req.Val) == 0 || !json.Valid(req.Val) {
		return wire.Response{Err: fmt.Sprintf("invalid write value: %d bytes, not a JSON document", len(req.Val))}
	}
	rs.writeMu.Lock()
	defer rs.writeMu.Unlock()
	var w *clientWindow
	if req.Client != "" {
		w = rs.applied[req.Client]
		if w != nil {
			if stamp, ok := w.stamps[req.Seq]; ok {
				// A retransmission of an applied write: answer with the
				// original outcome, do not apply again.
				return wire.Response{Stamp: stamp}
			}
			if w.evicted && req.Seq <= w.evictedMax {
				// Beyond the window we can no longer tell a replay from a
				// fresh-but-ancient write; refusing is the only answer
				// that cannot double-apply.
				return wire.Response{Err: fmt.Sprintf("stale write seq %d from client %s (dedup window passed %d)", req.Seq, req.Client, w.evictedMax)}
			}
		}
	}
	resp := wire.Response{Stamp: rs.reg.WriteStamped(string(req.Val))}
	if req.Client != "" {
		if w == nil {
			w = &clientWindow{stamps: make(map[uint64]int64)}
			rs.applied[req.Client] = w
		}
		w.stamps[req.Seq] = resp.Stamp
		w.order = append(w.order, req.Seq)
		if len(w.order) > st.window {
			old := w.order[0]
			w.order = w.order[1:]
			delete(w.stamps, old)
			w.evicted = true
			if old > w.evictedMax {
				w.evictedMax = old
			}
		}
	}
	return resp
}

// read serves one read request.
func (st *Store) read(req *wire.Request) wire.Response {
	rs := st.lookup(req.Reg)
	if rs == nil {
		return wire.Response{Err: fmt.Sprintf("unknown register %q", req.Reg)}
	}
	if req.Port < 0 || req.Port >= rs.reg.Counters().Ports() {
		return wire.Response{Err: fmt.Sprintf("port %d out of range", req.Port)}
	}
	v, stamp := rs.reg.ReadStamped(req.Port)
	return wire.Response{Val: json.RawMessage(v), Stamp: stamp}
}
