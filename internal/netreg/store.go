package netreg

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/history"
	"repro/internal/register"
	"repro/internal/wire"
)

// storeShards is the bucket count of the register-name map. Lookups take a
// shard read lock only; independent registers on one server never contend
// on shared map state.
const storeShards = 16

// DefaultDedupWindow is how many applied writes per client each register
// remembers for at-most-once dedup. A retransmission inside the window is
// answered with its original stamp; a sequence number older than anything
// retained is refused. The window must comfortably exceed a client's
// maximum in-flight pipeline depth plus its retry budget, which in
// practice is a few dozen.
const DefaultDedupWindow = 4096

// clientWindow is one client's recent applied writes on one register.
// Pipelined clients issue sequence numbers concurrently, so first
// arrivals may be out of order; the window therefore remembers a set of
// applied seqs (not just a high-water mark) and refuses only what it has
// already evicted and can no longer verify.
type clientWindow struct {
	stamps     map[uint64]int64 // applied seq → its original stamp
	order      []uint64         // applied seqs in arrival order, for eviction
	evicted    bool
	evictedMax uint64 // highest seq evicted; anything ≤ it is unverifiable
}

// regState is one named register instance: the register itself plus its
// private dedup table.
type regState struct {
	reg *register.Atomic[string]

	// The replica q-cell: the timestamped value the ABD quorum ops
	// (qread/qts/qwrite) serve. It is deliberately separate from reg —
	// the paper's two-writer register has its own port discipline and
	// sequencer, while the q-cell is a plain (ts, wid, val) triple whose
	// only invariant is monotone lexicographic growth under qwrite
	// max-merge. qMu serializes the compare with the overwrite it guards;
	// the critical section is a comparison and at most one copy, so the
	// lock is never held across I/O.
	qMu  sync.Mutex
	qTS  int64
	qWID uint32
	qVal []byte

	// writeMu serializes the dedup check with the write it guards;
	// without it a retransmitted write racing its original (possible when
	// a client times out while the server is merely slow) could be
	// applied twice — or trip the register's single-writer panic.
	writeMu sync.Mutex
	applied map[string]*clientWindow

	// pendMu/pend is the flat-combining publication list (see
	// SetWriteCombining): writers enqueue here, and whichever of them
	// holds writeMu applies the whole batch in one critical section.
	// free is the previously drained array, recycled so steady-state
	// publishes append into warm capacity instead of reallocating the
	// list every batch.
	pendMu sync.Mutex
	pend   []*writeOp
	free   []*writeOp
}

// publish enqueues one write on the combining list.
//
//bloom:noalloc
func (rs *regState) publish(op *writeOp) {
	rs.pendMu.Lock()
	rs.pend = append(rs.pend, op)
	rs.pendMu.Unlock()
}

// drain takes the current combining list for the lock holder to apply,
// installing the previously drained array (emptied, capacity intact) as
// the new list.
//
//bloom:noalloc
func (rs *regState) drain() []*writeOp {
	rs.pendMu.Lock()
	batch := rs.pend
	rs.pend = rs.free[:0]
	rs.free = nil
	rs.pendMu.Unlock()
	return batch
}

// recycle returns an applied batch's array for the next drain to reuse.
// Entries are cleared so the array does not pin writeOps now back in the
// pool.
//
//bloom:noalloc
func (rs *regState) recycle(batch []*writeOp) {
	for i := range batch {
		batch[i] = nil
	}
	rs.pendMu.Lock()
	rs.free = batch[:0]
	rs.pendMu.Unlock()
}

// writeOp is one write published to a register's combining list. The
// enqueuing goroutine blocks on writeMu until the op is applied — by
// itself or by an earlier lock holder — so req and resp stay valid for
// the combiner to fill in.
type writeOp struct {
	req     *wire.Request
	resp    *wire.Response
	applied bool // written and read only under writeMu
}

// writeOpPool recycles writeOps so the combining path stays
// allocation-free in steady state.
var writeOpPool = sync.Pool{New: func() any { return new(writeOp) }}

// storeShard is one bucket of the register-name map. The trailing pad
// keeps adjacent shards on separate cache lines, so lookups of
// independent registers never false-share.
type storeShard struct {
	mu   sync.RWMutex
	regs map[string]*regState
	_    [64]byte
}

// Store is the durable state behind a register server: a sharded map of
// named register instances, each with its own write-dedup table. It
// outlives any one Server, so a crashed-and-restarted server (Serve on
// the same Store) presents the same registers — state survives the way
// the scenario's file system survives a crashed file server — and
// in-flight retries still deduplicate correctly across the restart. One
// Store behind one listener is how a single server hosts many simulated
// registers: requests carry a register name, "" being the default
// register every Store starts with.
type Store struct {
	// window is the dedup window per client per register. Atomic because
	// SetDedupWindow may race with serving goroutines reading it on the
	// write path; a torn plain int would silently corrupt eviction.
	window  atomic.Int64
	combine atomic.Bool
	// valCap caps the per-connection reusable response value buffer (see
	// handle). Atomic for the same reason as window: SetValBufCap may race
	// with serving goroutines consulting it after every read.
	valCap atomic.Int64
	shards [storeShards]storeShard
}

// newStore returns an empty store with the default dedup window.
func newStore() *Store {
	st := &Store{}
	st.window.Store(DefaultDedupWindow)
	st.valCap.Store(DefaultValBufCap)
	for i := range st.shards {
		st.shards[i].regs = make(map[string]*regState)
	}
	return st
}

// NewStore builds a server store holding one default register (name "")
// over ports read ports, initialized to initial's JSON, drawing stamps
// from seq (nil for a private sequencer). Add more named registers with
// AddRegister.
func NewStore[V any](initial V, ports int, seq *history.Sequencer) (*Store, error) {
	st := newStore()
	if err := AddRegister(st, "", initial, ports, seq); err != nil {
		return nil, err
	}
	return st, nil
}

// AddRegister adds a named register instance to the store: a register
// over ports read ports initialized to initial's JSON, drawing stamps
// from seq (nil for a private sequencer), with a fresh dedup table.
// Adding a name twice is an error.
func AddRegister[V any](st *Store, name string, initial V, ports int, seq *history.Sequencer) error {
	raw, err := json.Marshal(initial)
	if err != nil {
		return fmt.Errorf("netreg: encoding initial value for register %q: %w", name, err)
	}
	rs := &regState{
		reg:     register.NewAtomic(ports, string(raw), seq),
		applied: make(map[string]*clientWindow),
		// The q-cell starts at (0, 0, initial): every replica of a cluster
		// seeded with the same initial value agrees before the first
		// qwrite, so a quorum read of the untouched register is well
		// defined.
		qVal: append([]byte(nil), raw...),
	}
	sh := st.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.regs[name]; dup {
		return fmt.Errorf("netreg: register %q already exists", name)
	}
	sh.regs[name] = rs
	return nil
}

// SetDedupWindow overrides the per-client dedup window (see
// DefaultDedupWindow). Call before serving; tests use tiny windows to
// exercise eviction.
func (st *Store) SetDedupWindow(n int) {
	if n > 0 {
		st.window.Store(int64(n))
	}
}

// SetWriteCombining toggles flat-combining write batching: concurrent
// writes to one register publish themselves to its combining list, and
// whichever writer holds the serialization lock applies the whole batch
// in one critical section — turning W contending lock handoffs into one
// acquisition doing W applies. Off by default (a single pipelined
// connection's writes are already serial); turn it on when many
// connections write the same register. Safe to toggle while serving.
func (st *Store) SetWriteCombining(on bool) { st.combine.Store(on) }

// shard returns the bucket for a register name. The FNV-1a hash is
// inlined rather than taken from hash/fnv: the Hash object and the
// string→[]byte conversion both allocate, and this is on every
// request's path.
//
//bloom:waitfree
//bloom:noalloc
func (st *Store) shard(name string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return &st.shards[h%storeShards]
}

// lookup returns the named register, or nil.
//
//bloom:noalloc
func (st *Store) lookup(name string) *regState {
	sh := st.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.regs[name]
}

// Registers returns the store's register names, sorted.
func (st *Store) Registers() []string {
	var names []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for name := range sh.regs {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Counters exposes the default register's access counters, so tests and
// benchmarks can assert at-most-once application (writes issued == writes
// applied) directly against the authoritative state.
func (st *Store) Counters() *register.Counters { return st.RegisterCounters("") }

// RegisterCounters exposes a named register's access counters, or nil if
// no such register exists.
func (st *Store) RegisterCounters(name string) *register.Counters {
	rs := st.lookup(name)
	if rs == nil {
		return nil
	}
	return rs.reg.Counters()
}

// DefaultValBufCap is the default cap on the response value buffer a
// connection keeps between requests; one giant value must not pin its
// capacity forever. Serving values larger than the cap works but
// reallocates the buffer on every read — a workload whose steady-state
// values exceed 64 KiB should raise the cap with SetValBufCap so the
// buffer is retained instead of thrashing the allocator (the bug this
// replaced a hard-wired cap to fix: bloomload's upper value-size rungs
// paid one fresh multi-hundred-KiB allocation per op).
const DefaultValBufCap = 64 << 10

// SetValBufCap overrides the per-connection value-buffer retention cap
// (see DefaultValBufCap). Buffers that grew past the cap are dropped
// after the response is encoded; buffers within it are reused across
// requests. Safe to call while serving.
func (st *Store) SetValBufCap(n int) {
	if n > 0 {
		st.valCap.Store(int64(n))
	}
}

// The fail* helpers format survivable error replies. Error construction
// is the cold path — a malformed or refused request — so its fmt
// allocations are deliberately excused from the hot-path no-alloc claim.
// They take concrete (non-variadic) arguments so the callers do not pay
// for the ...any boxing either.

//bloom:allowalloc
func failUnknownOp(resp *wire.Response, op string) {
	resp.Err = fmt.Sprintf("unknown op %q", op)
}

//bloom:allowalloc
func failUnknownReg(resp *wire.Response, name string) {
	resp.Err = fmt.Sprintf("unknown register %q", name)
}

//bloom:allowalloc
func failBadValue(resp *wire.Response, n int) {
	resp.Err = fmt.Sprintf("invalid write value: %d bytes, not a JSON document", n)
}

//bloom:allowalloc
func failStaleSeq(resp *wire.Response, seq uint64, client string, evictedMax uint64) {
	resp.Err = fmt.Sprintf("stale write seq %d from client %s (dedup window passed %d)", seq, client, evictedMax)
}

//bloom:allowalloc
func failBadPort(resp *wire.Response, port int) {
	resp.Err = fmt.Sprintf("port %d out of range", port)
}

// handle serves one request into resp, which it fully overwrites. valBuf
// is the connection's reusable value buffer: a read's response value is
// copied into it (resp.Val aliases it, valid until the next handle call
// on the same buffer), and the possibly-grown buffer is returned — the
// encode-immediately loop this feeds never holds a response across
// requests, so reuse is safe and keeps the read path allocation-free.
//
//bloom:noalloc
func (st *Store) handle(req *wire.Request, resp *wire.Response, valBuf []byte) []byte {
	*resp = wire.Response{}
	switch req.Op {
	case "read":
		valBuf = st.readInto(req, resp, valBuf)
	case "write":
		st.writeReq(req, resp)
	case "qread":
		valBuf = st.qReadInto(req, resp, valBuf)
	case "qts":
		st.qTimestamp(req, resp)
	case "qwrite":
		st.qWriteBack(req, resp)
	default:
		failUnknownOp(resp, req.Op)
	}
	resp.ID = req.ID
	return valBuf
}

// writeReq validates and applies one write request into resp,
// deduplicating retries. With combining off the caller applies under the
// register's write lock itself; with combining on it publishes the op
// and whichever writer holds the lock applies the whole batch.
//
//bloom:noalloc
func (st *Store) writeReq(req *wire.Request, resp *wire.Response) {
	rs := st.lookup(req.Reg)
	if rs == nil {
		failUnknownReg(resp, req.Reg)
		return
	}
	// Reject values that are not one valid JSON document: stored garbage
	// would make every later read of this register fail client-side —
	// better to refuse the one bad write with a survivable error reply.
	if len(req.Val) == 0 || !json.Valid(req.Val) {
		failBadValue(resp, len(req.Val))
		return
	}
	if !st.combine.Load() {
		rs.writeMu.Lock()
		st.applyWriteLocked(rs, req, resp)
		rs.writeMu.Unlock()
		return
	}

	// Flat combining: publish first, then take the lock. By the time the
	// lock is held the op has either been applied by an earlier holder
	// (who drained the list while this writer was parked) or is still on
	// the list — in which case this writer drains the list itself,
	// applying everyone's writes in one critical section. Either way no
	// op is ever stranded: it cannot be on the list while the lock sits
	// free with its owner past the drain.
	op := writeOpPool.Get().(*writeOp)
	op.req, op.resp, op.applied = req, resp, false
	rs.publish(op)

	rs.writeMu.Lock()
	if !op.applied {
		batch := rs.drain()
		for _, o := range batch {
			st.applyWriteLocked(rs, o.req, o.resp)
			o.applied = true
		}
		rs.recycle(batch)
	}
	rs.writeMu.Unlock()
	op.req, op.resp = nil, nil
	writeOpPool.Put(op)
}

// applyWriteLocked deduplicates and applies one validated write under
// rs.writeMu. Its allocations are deliberate: the stored value must
// outlive the connection's frame buffer (one string copy per applied
// write), and the dedup window's map and order slice grow only until a
// client's window fills, then reuse their capacity.
//
//bloom:allowalloc
func (st *Store) applyWriteLocked(rs *regState, req *wire.Request, resp *wire.Response) {
	var w *clientWindow
	if req.Client != "" {
		w = rs.applied[req.Client]
		if w != nil {
			if stamp, ok := w.stamps[req.Seq]; ok {
				// A retransmission of an applied write: answer with the
				// original outcome, do not apply again. Dup tells the
				// journal tap this reply is not a second write effect.
				resp.Stamp = stamp
				resp.Dup = true
				return
			}
			if w.evicted && req.Seq <= w.evictedMax {
				// Beyond the window we can no longer tell a replay from a
				// fresh-but-ancient write; refusing is the only answer
				// that cannot double-apply.
				failStaleSeq(resp, req.Seq, req.Client, w.evictedMax)
				return
			}
		}
	}
	resp.Stamp = rs.reg.WriteStamped(string(req.Val))
	if req.Client != "" {
		if w == nil {
			w = &clientWindow{stamps: make(map[uint64]int64)}
			rs.applied[req.Client] = w
		}
		w.stamps[req.Seq] = resp.Stamp
		w.order = append(w.order, req.Seq)
		if int64(len(w.order)) > st.window.Load() {
			old := w.order[0]
			w.order = w.order[1:]
			delete(w.stamps, old)
			w.evicted = true
			if old > w.evictedMax {
				w.evictedMax = old
			}
		}
	}
}

// readInto serves one read request into resp, copying the value into
// valBuf (see handle) and returning the possibly-grown buffer.
//
//bloom:noalloc
func (st *Store) readInto(req *wire.Request, resp *wire.Response, valBuf []byte) []byte {
	rs := st.lookup(req.Reg)
	if rs == nil {
		failUnknownReg(resp, req.Reg)
		return valBuf
	}
	if req.Port < 0 || req.Port >= rs.reg.Counters().Ports() {
		failBadPort(resp, req.Port)
		return valBuf
	}
	v, stamp := rs.reg.ReadStamped(req.Port)
	valBuf = append(valBuf[:0], v...)
	resp.Val = valBuf
	resp.Stamp = stamp
	if int64(cap(valBuf)) > st.valCap.Load() {
		return nil
	}
	return valBuf
}

// qReadInto serves one quorum read: the q-cell's (ts, wid, val), the
// value copied into valBuf like readInto (resp.Val aliases it, valid
// until the next handle call on the same connection).
//
//bloom:noalloc
func (st *Store) qReadInto(req *wire.Request, resp *wire.Response, valBuf []byte) []byte {
	rs := st.lookup(req.Reg)
	if rs == nil {
		failUnknownReg(resp, req.Reg)
		return valBuf
	}
	rs.qMu.Lock()
	valBuf = append(valBuf[:0], rs.qVal...)
	resp.Stamp = rs.qTS
	resp.WID = rs.qWID
	rs.qMu.Unlock()
	resp.Val = valBuf
	if int64(cap(valBuf)) > st.valCap.Load() {
		return nil
	}
	return valBuf
}

// qTimestamp serves one timestamp-only query (the message-frugal
// variant's phase 1): the q-cell's (ts, wid) with no value bytes — a
// constant-size reply regardless of the stored value.
//
//bloom:noalloc
func (st *Store) qTimestamp(req *wire.Request, resp *wire.Response) {
	rs := st.lookup(req.Reg)
	if rs == nil {
		failUnknownReg(resp, req.Reg)
		return
	}
	rs.qMu.Lock()
	resp.Stamp = rs.qTS
	resp.WID = rs.qWID
	rs.qMu.Unlock()
}

// qWriteBack applies one ABD write-back: store (ts, wid, val) iff it is
// lexicographically newer than the q-cell. The merge is idempotent —
// replaying a qwrite can never regress the cell, so unlike plain writes
// it needs no dedup window. A stale qwrite (the cell already holds
// something at least as new) is acked with the cell's current (ts, wid)
// and resp.Dup set: the ack is what the quorum client counts, and Dup is
// what keeps the journal tap from recording a write effect that did not
// happen (a stale write-back of an old value would otherwise fabricate a
// new-old inversion in the merged history).
//
// allowalloc, not noalloc: the q-cell buffer append amortizes — it grows
// only when an incoming value exceeds every earlier one, then is reused
// in place. The buffer roots in the long-lived register state rather
// than a caller-owned parameter, which the static analyzer cannot
// credit; BenchmarkStoreValBuf is the runtime cross-check that the
// steady state stays at 0 allocs/op.
//
//bloom:allowalloc
func (st *Store) qWriteBack(req *wire.Request, resp *wire.Response) {
	rs := st.lookup(req.Reg)
	if rs == nil {
		failUnknownReg(resp, req.Reg)
		return
	}
	if len(req.Val) == 0 || !json.Valid(req.Val) {
		failBadValue(resp, len(req.Val))
		return
	}
	rs.qMu.Lock()
	if req.TS > rs.qTS || (req.TS == rs.qTS && req.WID > rs.qWID) {
		rs.qTS = req.TS
		rs.qWID = req.WID
		rs.qVal = append(rs.qVal[:0], req.Val...)
	} else {
		resp.Dup = true
	}
	resp.Stamp = rs.qTS
	resp.WID = rs.qWID
	rs.qMu.Unlock()
}
