package netreg_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/history"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/wire"
)

// TestPipelineDepthOverlaps proves the client actually pipelines: a
// hand-rolled server withholds every response until it has read depth
// requests off the one connection, so the test deadlocks unless depth
// operations can be in flight simultaneously — a serial round-trip client
// would send one frame and wait forever. The in-flight gauge must reach
// exactly depth.
func TestPipelineDepthOverlaps(t *testing.T) {
	const depth = 8
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			codec, err := wire.Sniff(br)
			if err != nil {
				return err
			}
			rd := wire.NewReader(codec, br)
			bw := bufio.NewWriter(conn)
			wr := wire.NewWriter(codec, bw)
			var reqs []wire.Request
			for len(reqs) < depth {
				var req wire.Request
				if err := rd.ReadRequest(&req); err != nil {
					return fmt.Errorf("reading request %d: %w", len(reqs), err)
				}
				reqs = append(reqs, req)
			}
			for i, req := range reqs {
				resp := wire.Response{ID: req.ID, Stamp: int64(i + 1)}
				if err := wr.WriteResponse(&resp); err != nil {
					return err
				}
			}
			return bw.Flush()
		}()
	}()

	ws := obs.NewWire()
	c, err := netreg.Dial[int](ln.Addr().String(),
		netreg.WithTimeout(5*time.Second),
		netreg.WithWireStats(ws))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.WriteErr(i); err != nil {
				t.Errorf("pipelined write %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if p := ws.InFlightPeak(); p != depth {
		t.Fatalf("in-flight peak = %d, want %d (all ops must overlap)", p, depth)
	}
	if in, out := ws.Frames(); in != depth || out != depth {
		t.Fatalf("frames = %d in / %d out, want %d/%d", in, out, depth, depth)
	}
	if in, out := ws.Bytes(); in == 0 || out == 0 {
		t.Fatalf("bytes = %d in / %d out, want both nonzero", in, out)
	}
}

// TestPipelinedHammerCertified is the satellite's race test: N goroutines
// hammer one Reg over a single pipelined connection per server, and the
// resulting two-writer run must certify atomic — pipelining may reorder
// transport frames, but stamps are assigned server-side inside each
// register's critical section, so the history is as linearizable as a
// per-connection run's. Run under -race this also shakes the writer and
// reader goroutines' synchronization.
func TestPipelinedHammerCertified(t *testing.T) {
	const readers = 4
	seq := new(history.Sequencer)
	type val = core.Tagged[string]
	init := val{Val: "v0"}

	srv0, err := netreg.NewServer("127.0.0.1:0", init, readers+1, seq)
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	srv1, err := netreg.NewServer("127.0.0.1:0", init, readers+1, seq)
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()

	// One pipelined connection per server carries every port's traffic.
	r0, err := netreg.NewSharedReg[val](srv0.Addr(), readers+1, netreg.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := netreg.NewSharedReg[val](srv1.Addr(), readers+1, netreg.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	tw := core.New(readers, "v0",
		core.WithRegisters[string](r0, r1),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())
	if !tw.Certifiable() {
		t.Fatal("shared-connection registers should be certifiable")
	}

	const opsPer = 40
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < opsPer; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < opsPer; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()

	lin, err := proof.Certify(tw.Recorder().Trace("v0"))
	if err != nil {
		t.Fatalf("pipelined run failed certification: %v", err)
	}
	if got := lin.Report.PotentWrites + lin.Report.ImpotentWrites; got != 2*opsPer {
		t.Fatalf("classified %d writes, want %d", got, 2*opsPer)
	}
}

// TestPipelinedRetryNoDoubleApply is the regression for retry × pipelining:
// over a link that drops and severs at seeded points, concurrent writers
// pipeline over ONE connection, every transport failure fails the whole
// connection (sending every in-flight request to its own retry), and a
// retried request re-sends its original sequence number — so the server's
// counters must show every logical write applied exactly once, no matter
// how many times its frame crossed the wire.
func TestPipelinedRetryNoDoubleApply(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := &faultnet.Plan{Seed: 23, DropProb: 0.2, SeverProb: 0.05}
	rpc := obs.NewRPC()
	c, err := netreg.Dial[int](srv.Addr(),
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(200*time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 20, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}),
		netreg.WithRPCStats(rpc))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				if _, err := c.WriteErr(w*1000 + k); err != nil {
					t.Errorf("worker %d write %d: %v", w, k, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if n := srv.Store().Counters().Writes(); n != workers*perWorker {
		t.Fatalf("server applied %d writes, want exactly %d (retries must not double-apply)",
			n, workers*perWorker)
	}
	s := rpc.Snapshot()
	var retries int64
	for _, op := range s.Ops {
		retries += op.Retries
	}
	if retries == 0 {
		t.Fatal("faulty link produced zero retries; fault injection not exercised")
	}
	t.Logf("recovered: %d retries, %d reconnects",
		retries, s.Recovery.ReconnectOK+s.Recovery.ReconnectFail)
}

// TestGarbledBinaryFramesRecover aims bit corruption at the binary
// transport: every garbled Write flips byte 0 of the batch, which is the
// high byte of a length prefix, turning it into a length beyond
// wire.MaxFrame — so the receiver rejects the batch wholesale instead of
// ever applying a corrupted frame, the link drops, and the client's
// retries (original sequence numbers, deduplicated server-side) land
// every write exactly once with its bytes intact.
func TestGarbledBinaryFramesRecover(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := &faultnet.Plan{Seed: 7, GarbleProb: 0.25}
	c, err := netreg.Dial[string](srv.Addr(),
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(200*time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 20, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const writes = 30
	for i := 0; i < writes; i++ {
		if _, err := c.WriteErr(fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatalf("write %d through garbling link: %v", i, err)
		}
	}
	if n := plan.Stats().Injected[faultnet.FaultGarble.String()]; n == 0 {
		t.Fatal("no garbles injected; corruption not exercised")
	}
	if n := srv.Store().Counters().Writes(); n != writes {
		t.Fatalf("server applied %d writes, want exactly %d", n, writes)
	}

	// Read back over a clean connection: the value that survived must be
	// the last write, byte-for-byte — corruption may cost retries, never
	// integrity.
	clean, err := netreg.Dial[string](srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	v, _, err := clean.ReadErr(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("v%02d", writes-1); v != want {
		t.Fatalf("final value = %q, want %q (corrupted write applied)", v, want)
	}
}

// TestCodecCompat runs the same traffic over both codecs and mixes them on
// one listener: the server sniffs each connection's first byte, so a JSON
// client (the original newline-delimited framing) and a binary client
// coexist against the same store.
func TestCodecCompat(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "init", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	jc, err := netreg.Dial[string](srv.Addr(), netreg.WithCodec(wire.JSON))
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	bc, err := netreg.Dial[string](srv.Addr(), netreg.WithCodec(wire.Binary))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	s1, err := jc.WriteErr("from-json")
	if err != nil {
		t.Fatalf("json write: %v", err)
	}
	v, s2, err := bc.ReadErr(0)
	if err != nil {
		t.Fatalf("binary read: %v", err)
	}
	if v != "from-json" || s2 <= s1 {
		t.Fatalf("binary read after json write = %q stamp %d (write stamp %d)", v, s2, s1)
	}
	if _, err := bc.WriteErr("from-binary"); err != nil {
		t.Fatalf("binary write: %v", err)
	}
	v, _, err = jc.ReadErr(0)
	if err != nil {
		t.Fatalf("json read: %v", err)
	}
	if v != "from-binary" {
		t.Fatalf("json read after binary write = %q", v)
	}
}

// TestMultiRegisterHosting exercises the store's named registers: one
// listener, several independent registers, per-register isolation of
// values, counters, and dedup state — plus the unknown-register error.
func TestMultiRegisterHosting(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "default-v", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	st := srv.Store()
	for _, name := range []string{"alpha", "beta"} {
		if err := netreg.AddRegister(st, name, "init-"+name, 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := netreg.AddRegister(st, "alpha", "dup", 1, nil); err == nil {
		t.Fatal("duplicate AddRegister succeeded")
	}
	if got := st.Registers(); !(len(got) == 3 && got[0] == "" && got[1] == "alpha" && got[2] == "beta") {
		t.Fatalf("Registers() = %q", got)
	}

	dial := func(reg string) *netreg.Client[string] {
		c, err := netreg.Dial[string](srv.Addr(), netreg.WithRegister(reg))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	def, alpha, beta := dial(""), dial("alpha"), dial("beta")

	if _, err := alpha.WriteErr("alpha-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.WriteErr("beta-1"); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		c    *netreg.Client[string]
		want string
	}{{def, "default-v"}, {alpha, "alpha-1"}, {beta, "beta-1"}} {
		v, _, err := tc.c.ReadErr(0)
		if err != nil {
			t.Fatal(err)
		}
		if v != tc.want {
			t.Fatalf("read = %q, want %q (registers must be isolated)", v, tc.want)
		}
	}
	if n := st.RegisterCounters("alpha").Writes(); n != 1 {
		t.Fatalf("alpha writes = %d, want 1", n)
	}
	if n := st.RegisterCounters("").Writes(); n != 0 {
		t.Fatalf("default register writes = %d, want 0", n)
	}
	if st.RegisterCounters("nope") != nil {
		t.Fatal("counters for unknown register should be nil")
	}

	ghost := dial("no-such-register")
	if _, err := ghost.WriteErr("x"); err == nil || !strings.Contains(err.Error(), "unknown register") {
		t.Fatalf("write to unknown register: err = %v, want unknown-register error", err)
	}
	if _, _, err := ghost.ReadErr(0); err == nil || !strings.Contains(err.Error(), "unknown register") {
		t.Fatalf("read of unknown register: err = %v, want unknown-register error", err)
	}
	// The error reply is survivable: the same connection still serves a
	// well-aimed client afterwards (exercised via def above on the same
	// listener, and here the ghost client can be re-aimed only by
	// redialing, so just check the link did not die).
	if _, err := ghost.WriteErr("y"); err == nil || !strings.Contains(err.Error(), "unknown register") {
		t.Fatalf("second write on same conn: err = %v, want unknown-register error (conn must survive)", err)
	}
}

// TestMultiRegisterFanOutCertified hosts both protocol registers as named
// instances on ONE listener and runs the certified two-writer protocol
// across them — the multi-register analog of the two-server test, sharing
// one sequencer through one Store.
func TestMultiRegisterFanOutCertified(t *testing.T) {
	const readers = 2
	seq := new(history.Sequencer)
	type val = core.Tagged[string]
	init := val{Val: "v0"}

	st, err := netreg.NewStore(init, readers+1, seq)
	if err != nil {
		t.Fatal(err)
	}
	if err := netreg.AddRegister(st, "node1", init, readers+1, seq); err != nil {
		t.Fatal(err)
	}
	srv, err := netreg.Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r0, err := netreg.NewSharedReg[val](srv.Addr(), readers+1, netreg.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := netreg.NewSharedReg[val](srv.Addr(), readers+1,
		netreg.WithTimeout(5*time.Second), netreg.WithRegister("node1"))
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	tw := core.New(readers, "v0",
		core.WithRegisters[string](r0, r1),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < 20; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < 20; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()

	if _, err := proof.Certify(tw.Recorder().Trace("v0")); err != nil {
		t.Fatalf("one-listener two-register run failed certification: %v", err)
	}
}
