package netreg_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/linz"
	"repro/internal/netreg"
	"repro/internal/obs"
)

// TestJournalInlineCertified taps a single-connection serial workload on
// the inline worker model and proves the drained journal certifies
// linearizable end to end.
func TestJournalInlineCertified(t *testing.T) {
	j := obs.NewJournal()
	srv, err := netreg.NewServer("127.0.0.1:0", "v0", 1, nil, netreg.WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := netreg.AddRegister(srv.Store(), "other", "o0", 1, nil); err != nil {
		t.Fatal(err)
	}

	c, err := netreg.Dial[string](srv.Addr(), netreg.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := netreg.Dial[string](srv.Addr(), netreg.WithTimeout(5*time.Second), netreg.WithRegister("other"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := c.WriteErr(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.ReadErr(0); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.WriteErr(fmt.Sprintf("o%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	c2.Close()
	srv.Close() // closes conns → taps close → horizon unbounded

	if j.Drops() != 0 {
		t.Fatalf("journal dropped %d records", j.Drops())
	}
	h := linz.NewHistory()
	total := 0
	for _, s := range j.Sources() {
		s.Drain(func(r obs.Rec) {
			total++
			kind := linz.Read
			if r.Kind == obs.JWrite {
				kind = linz.Write
			}
			h.Add(j.KeyName(r.Key), linz.Op{
				Inv: r.Inv, Res: r.Res, Val: r.Val, Client: r.Client, Kind: kind,
			})
		})
	}
	if total != 3*n {
		t.Fatalf("journaled %d ops, want %d", total, 3*n)
	}
	rep := linz.Check(h, linz.Options{Timeout: 10 * time.Second})
	if rep.Verdict != linz.Ok {
		t.Fatalf("journal of a real run not certified: %v (%+v)", rep.Verdict, rep.Failures)
	}
	if rep.Keys != 2 {
		t.Fatalf("keys = %d, want the default and the named register", rep.Keys)
	}
}

// TestJournalWorkerModelsOnline runs concurrent pipelined traffic against
// the gated tap on each dispatching worker model with the online checker
// live, asserting every op is journaled, checked, and certified.
func TestJournalWorkerModelsOnline(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"pool4", 4},
		{"per-request", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j := obs.NewJournal()
			tally := obs.NewLinz()
			st, err := netreg.NewStore("init", 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := netreg.Serve("127.0.0.1:0", st,
				netreg.WithWorkers(tc.workers), netreg.WithJournal(j))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			ol := linz.NewOnline(j, linz.OnlineOptions{Interval: 2 * time.Millisecond, Tally: tally})
			ol.Start()

			const (
				clients = 3
				opsEach = 120
			)
			var wg sync.WaitGroup
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					c, err := netreg.Dial[string](srv.Addr(), netreg.WithTimeout(5*time.Second))
					if err != nil {
						t.Error(err)
						return
					}
					defer c.Close()
					for i := 0; i < opsEach; i++ {
						if i%2 == 0 {
							if _, err := c.WriteErr(fmt.Sprintf("g%d-i%d", g, i)); err != nil {
								t.Error(err)
								return
							}
						} else if _, _, err := c.ReadErr(0); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			srv.Close() // taps close → final sweep sees an unbounded horizon
			ol.Stop()

			if f := ol.FirstFailure(); f != nil {
				t.Fatalf("live traffic failed certification: %s (%+v)", f.Reason, f)
			}
			snap := tally.Snapshot()
			if snap.OpsChecked != clients*opsEach {
				t.Fatalf("checked %d ops, want %d (drops=%d shed=%d)",
					snap.OpsChecked, clients*opsEach, j.Drops(), snap.ShedOps)
			}
			if snap.WindowsViolation != 0 || snap.WindowsUndecided != 0 {
				t.Fatalf("windows ok/violation/undecided = %d/%d/%d",
					snap.WindowsOK, snap.WindowsViolation, snap.WindowsUndecided)
			}
		})
	}
}

// TestJournalFlagsDedupReplays re-sends an applied write (same client
// and seq — what a retrying client does after losing a response) and
// checks the replay is journaled flagged: the original record already
// carries the write's true interval, and an unflagged replay would let
// checkers condemn correct runs for a second write effect that never
// happened.
func TestJournalFlagsDedupReplays(t *testing.T) {
	j := obs.NewJournal()
	srv, err := netreg.NewServer("127.0.0.1:0", "v0", 1, nil, netreg.WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	frame := `{"op":"write","val":"x","client":"c1","seq":1}` + "\n"
	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		if _, err := io.WriteString(conn, frame); err != nil {
			t.Fatal(err)
		}
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	srv.Close()

	var fresh, dup int
	for _, s := range j.Sources() {
		s.Drain(func(r obs.Rec) {
			if r.Kind != obs.JWrite {
				return
			}
			if r.Flags&obs.JDup != 0 {
				dup++
			} else if r.Flags == 0 {
				fresh++
			}
		})
	}
	if fresh != 1 || dup != 1 {
		t.Fatalf("journaled %d fresh + %d dup write records, want 1 + 1", fresh, dup)
	}
}

// TestJournalFlagsRefusedOps checks that a refused operation is
// journaled with the error flag so checkers skip it.
func TestJournalFlagsRefusedOps(t *testing.T) {
	j := obs.NewJournal()
	srv, err := netreg.NewServer("127.0.0.1:0", "v0", 1, nil, netreg.WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := netreg.Dial[string](srv.Addr(),
		netreg.WithTimeout(5*time.Second), netreg.WithRegister("no-such-register"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteErr("x"); err == nil {
		t.Fatal("write to unknown register succeeded")
	}
	c.Close()
	srv.Close()

	var flagged int
	for _, s := range j.Sources() {
		s.Drain(func(r obs.Rec) {
			if r.Flags&obs.JErr != 0 {
				flagged++
			}
		})
	}
	if flagged == 0 {
		t.Fatal("refused op not journaled with JErr")
	}
}
