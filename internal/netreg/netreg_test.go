package netreg_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netreg"
	"repro/internal/proof"
)

func TestRoundTrip(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "initial", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := netreg.Dial[string](srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v, s1, err := c.ReadErr(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != "initial" {
		t.Fatalf("initial read = %q", v)
	}
	s2, err := c.WriteErr("hello")
	if err != nil {
		t.Fatal(err)
	}
	v, s3, err := c.ReadErr(1)
	if err != nil {
		t.Fatal(err)
	}
	if v != "hello" {
		t.Fatalf("read after write = %q", v)
	}
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("stamps not increasing: %d %d %d", s1, s2, s3)
	}
}

func TestStructValues(t *testing.T) {
	type point struct {
		X, Y int
		Name string
	}
	srv, err := netreg.NewServer("127.0.0.1:0", point{1, 2, "origin-ish"}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := netreg.Dial[point](srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := c.ReadErr(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != (point{1, 2, "origin-ish"}) {
		t.Fatalf("struct roundtrip = %+v", got)
	}
	if _, err := c.WriteErr(point{3, 4, "moved"}); err != nil {
		t.Fatal(err)
	}
	got, _, err = c.ReadErr(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != (point{3, 4, "moved"}) {
		t.Fatalf("struct after write = %+v", got)
	}
}

func TestServerErrors(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := netreg.Dial[int](srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.ReadErr(5); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range port: %v", err)
	}
	// The connection survives a server-side error.
	if _, _, err := c.ReadErr(0); err != nil {
		t.Fatalf("connection did not survive: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := netreg.Dial[int](srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if _, _, err := c.ReadErr(0); err == nil {
		t.Fatal("read on closed client succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

// TestBloomOverNetworkCertified is the paper's opening scenario end to
// end: two register servers (each node's "file system"), remote clients,
// the two-writer protocol on top, real goroutine concurrency — and the
// run is certified by the Section 7 construction, because the servers
// share a sequencer and stamp every access inside its critical section.
func TestBloomOverNetworkCertified(t *testing.T) {
	const readers = 2
	seq := new(history.Sequencer)
	type val = core.Tagged[string]
	init := val{Val: "v0"}

	srv0, err := netreg.NewServer("127.0.0.1:0", init, readers+1, seq)
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	srv1, err := netreg.NewServer("127.0.0.1:0", init, readers+1, seq)
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()

	r0, err := netreg.NewReg[val](srv0.Addr(), readers+1)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := netreg.NewReg[val](srv1.Addr(), readers+1)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	tw := core.New(readers, "v0",
		core.WithRegisters[string](r0, r1),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())
	if !tw.Certifiable() {
		t.Fatal("network registers should be certifiable")
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < 30; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < 30; k++ {
				_ = r.Read()
			}
		}(j)
	}
	wg.Wait()

	lin, err := proof.Certify(tw.Recorder().Trace("v0"))
	if err != nil {
		t.Fatalf("network-backed run failed certification: %v", err)
	}
	if got := lin.Report.PotentWrites + lin.Report.ImpotentWrites; got != 60 {
		t.Fatalf("classified %d writes, want 60", got)
	}
}

func TestAwkwardValues(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", "", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := netreg.Dial[string](srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Newlines, quotes and unicode must survive the line-oriented
	// transport (JSON escapes them).
	for _, v := range []string{"", "line1\nline2", `quo"ted`, "ünïcødé", "\x00nul"} {
		if _, err := c.WriteErr(v); err != nil {
			t.Fatalf("write %q: %v", v, err)
		}
		got, _, err := c.ReadErr(0)
		if err != nil {
			t.Fatalf("read after %q: %v", v, err)
		}
		if got != v {
			t.Fatalf("roundtrip %q → %q", v, got)
		}
	}
}

func TestManyConcurrentClients(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := netreg.Dial[int](srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < 100; k++ {
				if _, _, err := c.ReadErr(p); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRegAdapterPanicsOnDeadServer(t *testing.T) {
	srv, err := netreg.NewServer("127.0.0.1:0", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := netreg.NewReg[int](srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("read against a dead server did not panic")
		}
	}()
	r.Read(0)
}
