package netreg_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netreg"
)

// TestBreakerHalfOpenSingleProbe is the PR-9 stampede regression test:
// when an open breaker's cooldown expires, exactly ONE caller may go out
// as the half-open probe; every other caller racing the boundary must
// keep fast-failing with ErrUnavailable until the probe resolves. The
// replaced behavior admitted the whole burst, and a still-dead server
// absorbed N doomed round trips per cooldown.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	st, err := netreg.NewStore("v", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netreg.Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}

	var dials atomic.Int64
	const cooldown = 250 * time.Millisecond
	c, err := netreg.Dial[string](srv.Addr(),
		netreg.WithDialer(func(addr string) (net.Conn, error) {
			dials.Add(1)
			return net.Dial("tcp", addr)
		}),
		netreg.WithTimeout(100*time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 0, Backoff: time.Millisecond, MaxBackoff: time.Millisecond}),
		netreg.WithBreaker(1, cooldown),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.ReadErr(0); err != nil {
		t.Fatalf("read against a live server: %v", err)
	}

	// Kill the server for good; the next round trip fails and (threshold
	// 1) opens the breaker.
	srv.Close()
	if _, _, err := c.ReadErr(0); err == nil {
		t.Fatal("read succeeded against a closed server")
	}
	opened := time.Now()

	// While the cooldown runs, every call must fast-fail without a dial.
	preDials := dials.Load()
	for i := 0; i < 8; i++ {
		if _, _, err := c.ReadErr(0); !errors.Is(err, netreg.ErrUnavailable) {
			t.Fatalf("call during cooldown: got %v, want ErrUnavailable", err)
		}
	}
	if d := dials.Load(); d != preDials {
		t.Fatalf("open breaker dialed %d times; fast-fail must not touch the network", d-preDials)
	}

	// Race N goroutines across the expired cooldown boundary. Exactly one
	// becomes the probe (one dial, a real transport error); the rest keep
	// fast-failing with ErrUnavailable — including after the probe fails,
	// because a failed probe re-opens for a fresh cooldown immediately.
	time.Sleep(time.Until(opened.Add(cooldown)) + 20*time.Millisecond)
	const racers = 32
	var unavailable, probeErrs atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, _, err := c.ReadErr(0)
			switch {
			case err == nil:
				t.Error("read succeeded against a dead server")
			case errors.Is(err, netreg.ErrUnavailable):
				unavailable.Add(1)
			default:
				probeErrs.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := dials.Load() - preDials; got != 1 {
		t.Errorf("%d racing callers produced %d dials, want exactly 1 (the half-open probe)", racers, got)
	}
	if p := probeErrs.Load(); p != 1 {
		t.Errorf("%d callers returned transport errors, want exactly 1 (the probe)", p)
	}
	if u := unavailable.Load(); u != racers-1 {
		t.Errorf("%d callers fast-failed with ErrUnavailable, want %d", u, racers-1)
	}
}

// TestBreakerProbeClosesOnRecovery is the companion: a probe that finds
// the server healthy again closes the breaker for everyone.
func TestBreakerProbeClosesOnRecovery(t *testing.T) {
	st, err := netreg.NewStore("v", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netreg.Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	const cooldown = 100 * time.Millisecond
	c, err := netreg.Dial[string](addr,
		netreg.WithTimeout(200*time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 0, Backoff: time.Millisecond, MaxBackoff: time.Millisecond}),
		netreg.WithBreaker(1, cooldown),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.ReadErr(0); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if _, _, err := c.ReadErr(0); err == nil {
		t.Fatal("read succeeded against a closed server")
	}

	// Restart on the same address over the same store, wait out the
	// cooldown: the probe must succeed and close the breaker.
	srv, err = netreg.Serve(addr, st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	time.Sleep(cooldown + 20*time.Millisecond)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := c.ReadErr(0); err == nil {
			break
		} else if !errors.Is(err, netreg.ErrUnavailable) && time.Now().After(deadline) {
			t.Fatalf("probe never closed the breaker: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker still open against a recovered server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := c.ReadErr(0); err != nil {
			t.Fatalf("closed breaker still failing: %v", err)
		}
	}
}
