package netreg_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/history"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/proof"
)

// TestCrashRestartSoak is the resilience layer's acceptance test, meant to
// run under -race: the full two-writer protocol over networked registers
// while (a) faultnet drops and severs links at seeded points and (b) both
// register servers are repeatedly killed and restarted over their stores
// mid-protocol. The clients must recover, no retried write may be applied
// twice (authoritative server-side write counts), and the completed
// history must certify atomic via the Section 7 construction.
func TestCrashRestartSoak(t *testing.T) {
	const (
		readers        = 2
		writesPerNode  = 30
		readsPerReader = 30
	)
	seq := new(history.Sequencer)
	type val = core.Tagged[string]
	init := val{Val: "v0"}

	stores := make([]*netreg.Store, 2)
	servers := make([]*netreg.Server, 2)
	addrs := make([]string, 2)
	for i := range stores {
		st, err := netreg.NewStore(init, readers+1, seq)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := netreg.Serve("127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		stores[i], servers[i], addrs[i] = st, srv, srv.Addr()
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	// Seeded link faults on every client connection, plus a generous
	// retry budget: each downtime window below is ~40ms, far inside what
	// the backoff schedule can ride out.
	plan := &faultnet.Plan{Seed: 20260805, DropProb: 0.03, SeverProb: 0.02}
	rpc := obs.NewRPC()
	opts := []netreg.DialOption{
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(300 * time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 60, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
		netreg.WithRPCStats(rpc),
	}
	r0, err := netreg.NewReg[val](addrs[0], readers+1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := netreg.NewReg[val](addrs[1], readers+1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	tw := core.New(readers, "v0",
		core.WithRegisters[string](r0, r1),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < writesPerNode; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
				time.Sleep(time.Millisecond) // stretch the run across the crash windows
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < readsPerReader; k++ {
				_ = r.Read()
				time.Sleep(time.Millisecond)
			}
		}(j)
	}

	// The chaos schedule: kill and restart each server twice while the
	// protocol runs. Closing a server severs every client connection
	// (in-flight round trips fail over to retries), and the restart binds
	// the same address over the same store.
	for round := 0; round < 2; round++ {
		for i := range servers {
			time.Sleep(25 * time.Millisecond)
			servers[i].Close()
			time.Sleep(15 * time.Millisecond)
			srv, err := netreg.Serve(addrs[i], stores[i])
			if err != nil {
				t.Fatalf("restarting server %d (round %d) on %s: %v", i, round, addrs[i], err)
			}
			servers[i] = srv
		}
	}
	wg.Wait()

	// At most once, from the authoritative side: each node's register
	// applied exactly its writer's writes, retries notwithstanding.
	for i, st := range stores {
		if n := st.Counters().Writes(); n != writesPerNode {
			t.Errorf("server %d applied %d writes, want %d (duplicate or lost retries)", i, n, writesPerNode)
		}
	}

	// The recovered history certifies atomic end to end.
	lin, err := proof.Certify(tw.Recorder().Trace("v0"))
	if err != nil {
		t.Fatalf("crash/restart run failed certification: %v", err)
	}
	if got := lin.Report.PotentWrites + lin.Report.ImpotentWrites; got != 2*writesPerNode {
		t.Errorf("certifier classified %d writes, want %d", got, 2*writesPerNode)
	}

	// The run must actually have been faulty, and the recovery layer must
	// have worked for it: nonzero injected faults, retries, reconnects.
	if plan.Stats().Total() == 0 {
		t.Error("no faults injected; the soak proved nothing")
	}
	if rpc.Retries(obs.RPCRead)+rpc.Retries(obs.RPCWrite) == 0 {
		t.Error("no retries recorded despite crashes and injected faults")
	}
	if ok, _ := rpc.Reconnects(); ok == 0 {
		t.Error("no reconnects recorded despite server restarts")
	}
}

// TestPipelinedSoak is the crash/restart soak over the pipelined
// arrangement: ONE connection per server carries every port's traffic
// (NewSharedReg), so a server kill fails a whole pipeline of in-flight
// operations at once and each must recover through its own retry with its
// original sequence number. Meant to run under -race; the assertions are
// the same authoritative ones — exact server-side write counts and a
// certified history.
func TestPipelinedSoak(t *testing.T) {
	const (
		readers        = 3
		writesPerNode  = 30
		readsPerReader = 30
	)
	seq := new(history.Sequencer)
	type val = core.Tagged[string]
	init := val{Val: "v0"}

	stores := make([]*netreg.Store, 2)
	servers := make([]*netreg.Server, 2)
	addrs := make([]string, 2)
	for i := range stores {
		st, err := netreg.NewStore(init, readers+1, seq)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := netreg.Serve("127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		stores[i], servers[i], addrs[i] = st, srv, srv.Addr()
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	plan := &faultnet.Plan{Seed: 20260806, DropProb: 0.03, SeverProb: 0.02}
	rpc := obs.NewRPC()
	ws := obs.NewWire()
	opts := []netreg.DialOption{
		netreg.WithDialer(plan.Dialer()),
		netreg.WithTimeout(300 * time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 60, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
		netreg.WithRPCStats(rpc),
		netreg.WithWireStats(ws),
	}
	r0, err := netreg.NewSharedReg[val](addrs[0], readers+1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := netreg.NewSharedReg[val](addrs[1], readers+1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	tw := core.New(readers, "v0",
		core.WithRegisters[string](r0, r1),
		core.WithSequencer[string](seq),
		core.WithRecording[string]())

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tw.Writer(i)
			for k := 0; k < writesPerNode; k++ {
				w.Write(fmt.Sprintf("w%d-%d", i, k))
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	for j := 1; j <= readers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r := tw.Reader(j)
			for k := 0; k < readsPerReader; k++ {
				_ = r.Read()
				time.Sleep(time.Millisecond)
			}
		}(j)
	}

	for round := 0; round < 2; round++ {
		for i := range servers {
			time.Sleep(25 * time.Millisecond)
			servers[i].Close()
			time.Sleep(15 * time.Millisecond)
			srv, err := netreg.Serve(addrs[i], stores[i])
			if err != nil {
				t.Fatalf("restarting server %d (round %d) on %s: %v", i, round, addrs[i], err)
			}
			servers[i] = srv
		}
	}
	wg.Wait()

	for i, st := range stores {
		if n := st.Counters().Writes(); n != writesPerNode {
			t.Errorf("server %d applied %d writes, want %d (duplicate or lost retries)", i, n, writesPerNode)
		}
	}

	lin, err := proof.Certify(tw.Recorder().Trace("v0"))
	if err != nil {
		t.Fatalf("pipelined crash/restart run failed certification: %v", err)
	}
	if got := lin.Report.PotentWrites + lin.Report.ImpotentWrites; got != 2*writesPerNode {
		t.Errorf("certifier classified %d writes, want %d", got, 2*writesPerNode)
	}

	if plan.Stats().Total() == 0 {
		t.Error("no faults injected; the soak proved nothing")
	}
	if ok, _ := rpc.Reconnects(); ok == 0 {
		t.Error("no reconnects recorded despite server restarts")
	}
	// The shared connections must actually have pipelined: protocol
	// operations from several ports overlap on one link.
	if p := ws.InFlightPeak(); p < 2 {
		t.Errorf("in-flight peak = %d, want ≥2 (traffic never pipelined)", p)
	}
}
