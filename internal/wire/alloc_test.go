package wire_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/wire"
)

// loopReader replays one byte sequence forever, so a decode loop can run
// an unbounded number of frames without the test harness allocating.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// encodeFrames returns the wire bytes of req repeated once and resp
// repeated once, in binary framing.
func encodeFrames(t testing.TB, req *wire.Request, resp *wire.Response) (reqFrame, respFrame []byte) {
	t.Helper()
	encode := func(write func(w *wire.Writer) error) []byte {
		var buf bytes.Buffer
		w := wire.NewWriter(wire.Binary, bufio.NewWriter(&buf))
		if err := write(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	return encode(func(w *wire.Writer) error { return w.WriteRequest(req) }),
		encode(func(w *wire.Writer) error { return w.WriteResponse(resp) })
}

var allocReq = wire.Request{
	ID: 123456, Op: "write", Reg: "shard-7",
	Val: json.RawMessage(`"w0-17"`), Client: "deadbeef01234567", Seq: 123456,
}

var allocResp = wire.Response{ID: 123456, Stamp: 987654, Val: json.RawMessage(`"w0-17"`)}

// TestEncodeZeroAllocs is the hard gate on the binary encode path: steady
// state, a request or response frame must not allocate at all.
func TestEncodeZeroAllocs(t *testing.T) {
	w := wire.NewWriter(wire.Binary, bufio.NewWriterSize(io.Discard, 1<<16))
	// Warm the scratch buffer.
	for i := 0; i < 8; i++ {
		if err := w.WriteRequest(&allocReq); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteResponse(&allocResp); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := w.WriteRequest(&allocReq); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteResponse(&allocResp); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("binary encode allocates %.1f allocs per request+response, want 0", allocs)
	}
}

// TestDecodeZeroAllocs is the hard gate on the binary decode path: steady
// state (names already interned), decoding a request or response frame
// must not allocate at all.
func TestDecodeZeroAllocs(t *testing.T) {
	reqFrame, respFrame := encodeFrames(t, &allocReq, &allocResp)

	rr := wire.NewReader(wire.Binary, bufio.NewReaderSize(&loopReader{data: reqFrame}, 1<<16))
	var req wire.Request
	for i := 0; i < 8; i++ { // warm the intern cache and frame buffer
		if err := rr.ReadRequest(&req); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := rr.ReadRequest(&req); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("binary request decode allocates %.1f allocs/op, want 0", allocs)
	}
	if req.Reg != allocReq.Reg || req.Client != allocReq.Client || !bytes.Equal(req.Val, allocReq.Val) {
		t.Fatalf("steady-state decode corrupted the frame: %+v", req)
	}

	pr := wire.NewReader(wire.Binary, bufio.NewReaderSize(&loopReader{data: respFrame}, 1<<16))
	var resp wire.Response
	for i := 0; i < 8; i++ {
		if err := pr.ReadResponse(&resp); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := pr.ReadResponse(&resp); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("binary response decode allocates %.1f allocs/op, want 0", allocs)
	}
	if resp.Stamp != allocResp.Stamp || !bytes.Equal(resp.Val, allocResp.Val) {
		t.Fatalf("steady-state decode corrupted the frame: %+v", resp)
	}
}

// TestDecodedFieldsAliasFrameBuffer pins the documented contract: a
// decoded Val is valid until the next read, and the next read replaces it.
func TestDecodedFieldsAliasFrameBuffer(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(wire.Binary, bufio.NewWriter(&buf))
	first := wire.Request{ID: 1, Op: "write", Val: json.RawMessage(`"first"`)}
	second := wire.Request{ID: 2, Op: "write", Val: json.RawMessage(`"second-longer"`)}
	if err := w.WriteRequest(&first); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRequest(&second); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(wire.Binary, bufio.NewReader(&buf))
	var req wire.Request
	if err := r.ReadRequest(&req); err != nil {
		t.Fatal(err)
	}
	held := req.Val // aliases the frame buffer
	if !bytes.Equal(held, first.Val) {
		t.Fatalf("first Val = %q", held)
	}
	if err := r.ReadRequest(&req); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req.Val, second.Val) {
		t.Fatalf("second Val = %q", req.Val)
	}
}

// TestPoolDropsOversizedBuffers is the regression test for the pool
// inflation bug: a buffer grown past MaxPooledBuf while serving one large
// value must NOT be recycled, so a burst of large frames cannot
// permanently inflate the pool's steady-state residency.
func TestPoolDropsOversizedBuffers(t *testing.T) {
	big := wire.GetBuf(4 << 20) // a 4 MiB value's parse buffer
	wire.PutBuf(big)
	got := wire.GetBuf(0)
	defer wire.PutBuf(got)
	if cap(*got) > wire.MaxPooledBuf {
		t.Fatalf("pool recycled a %d-byte buffer; cap above %d must be dropped", cap(*got), wire.MaxPooledBuf)
	}
}

// TestSteadyStateHeapAfterLargeValueBurst drives the full codec through a
// burst of large-value frames, then checks that steady small-frame
// traffic is allocation-free again — i.e. neither the writer scratch nor
// the reader pool kept multi-megabyte buffers alive per frame, and small
// frames after the burst don't keep paying for it.
func TestSteadyStateHeapAfterLargeValueBurst(t *testing.T) {
	bigVal := bytes.Repeat([]byte("x"), 2<<20)
	bigVal[0], bigVal[len(bigVal)-1] = '"', '"'
	big := wire.Request{ID: 9, Op: "write", Val: bigVal, Client: "c"}

	var buf bytes.Buffer
	w := wire.NewWriter(wire.Binary, bufio.NewWriter(&buf))
	r := wire.NewReader(wire.Binary, bufio.NewReader(&buf))
	var req wire.Request
	for i := 0; i < 4; i++ { // the burst
		if err := w.WriteRequest(&big); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := r.ReadRequest(&req); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()

	// Steady state after the burst: small frames, zero allocs, through the
	// same Writer and Reader.
	small := allocReq
	for i := 0; i < 8; i++ {
		if err := w.WriteRequest(&small); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := r.ReadRequest(&req); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := w.WriteRequest(&small); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := r.ReadRequest(&req); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("post-burst steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkFrameEncode and BenchmarkFrameDecode are the CI allocs/op
// gates: `go test -run=NONE -bench=BenchmarkFrame -benchmem` must report
// 0 allocs/op for both, enforced by the workflow.
func BenchmarkFrameEncode(b *testing.B) {
	w := wire.NewWriter(wire.Binary, bufio.NewWriterSize(io.Discard, 1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteRequest(&allocReq); err != nil {
			b.Fatal(err)
		}
		if err := w.WriteResponse(&allocResp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	reqFrame, respFrame := encodeFrames(b, &allocReq, &allocResp)
	stream := append(append([]byte{}, reqFrame...), respFrame...)
	r := wire.NewReader(wire.Binary, bufio.NewReaderSize(&loopReader{data: stream}, 1<<16))
	var req wire.Request
	var resp wire.Response
	if err := r.ReadRequest(&req); err != nil { // warm intern cache
		b.Fatal(err)
	}
	if err := r.ReadResponse(&resp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ReadRequest(&req); err != nil {
			b.Fatal(err)
		}
		if err := r.ReadResponse(&resp); err != nil {
			b.Fatal(err)
		}
	}
}
