// Package wire is the framing layer of the networked registers
// (internal/netreg): the request/response message types, and two codecs
// that put them on a TCP stream.
//
// The default codec is a compact length-prefixed binary framing built for
// throughput — one length word plus a flat field encoding, written through
// a bufio.Writer so a pipelined batch of frames costs one syscall. Encode
// and decode are zero-allocation in steady state: frames are assembled in
// a per-Writer scratch buffer reused across flushes, decoded payloads live
// in pooled buffers each Reader holds until its next frame (decoded byte
// fields alias them — see Reader), and repeated name strings are interned
// per connection. The original newline-delimited JSON framing survives as
// the JSON codec for wire-compatibility tests and hand-written frames.
//
// # Binary frame layout
//
// Every binary frame is a 4-byte big-endian payload length followed by the
// payload. Payloads are < MaxFrame (16 MiB), so the first byte on the wire
// is always 0x00 — which is never the first byte of a JSON document. That
// single byte is the whole codec negotiation: the server peeks at it
// (Sniff) and speaks whatever the client speaks.
//
// Request payload:
//
//	kind     1 byte  (0x01 read, 0x02 write, 0x03 qread, 0x04 qwrite, 0x05 qts)
//	id       uvarint request id (pipelining correlation)
//	reg      uvarint length + bytes (register name, "" = default)
//	port     uvarint (reads)
//	client   uvarint length + bytes (dedup client id)
//	seq      uvarint (dedup sequence number)
//	val      uvarint length + bytes (JSON value, writes)
//	ts       zigzag varint (replica timestamp, qwrite)
//	wid      uvarint (writer id, qwrite timestamp tiebreak)
//
// Response payload:
//
//	kind     1 byte  (0x81)
//	id       uvarint (echoes the request id)
//	stamp    zigzag varint (*-action stamp, or replica timestamp for q-ops)
//	err      uvarint length + bytes
//	val      uvarint length + bytes (JSON value, reads)
//	wid      uvarint (writer id paired with stamp, q-ops)
//
// All integers are unsigned varints except stamp and ts, which are
// zigzag-encoded (both are int64 and could in principle go negative on a
// foreign sequencer). The q-ops carry the ABD quorum protocol
// (internal/replica): qread returns the replica's (timestamp, writer id,
// value), qts returns only (timestamp, writer id), and qwrite stores
// (ts, wid, val) iff it is newer than what the replica holds (a stale
// qwrite is acked without effect). ts/wid ride at the tail of every
// request frame and wid at the tail of every response frame so the
// layout stays uniform across kinds; for plain reads and writes they
// encode as two zero bytes.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Codec selects a frame encoding.
type Codec int

const (
	// Binary is the length-prefixed binary framing (the default).
	Binary Codec = iota
	// JSON is the original newline-delimited JSON framing, kept for
	// wire-compatibility tests and debuggability (frames can be typed by
	// hand into a TCP session).
	JSON
)

// String names the codec as it appears in benchmark tables.
func (c Codec) String() string {
	switch c {
	case Binary:
		return "binary"
	case JSON:
		return "json"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// MaxFrame bounds a binary payload. It keeps a corrupted length prefix
// (e.g. a garbled high byte) from provoking a giant allocation: oversized
// frames are a framing error and drop the connection.
const MaxFrame = 16 << 20

// Request is one access on the wire.
type Request struct {
	// ID correlates the response on a pipelined connection; it is echoed
	// verbatim. 0 is what hand-written JSON frames get and is served fine
	// (a serial connection needs no correlation).
	ID uint64 `json:"id,omitempty"`
	// Op is "read", "write", or one of the replica quorum ops: "qread"
	// (query a replica's timestamped value), "qts" (query only the
	// timestamp — the message-frugal variant's phase 1), or "qwrite"
	// (store-if-newer write-back).
	Op string `json:"op"`
	// Reg names the register instance on a multi-register server; "" is
	// the default register.
	Reg string `json:"reg,omitempty"`
	// Port is the reader's port (reads only).
	Port int `json:"port,omitempty"`
	// Val is the value written (writes only), as raw JSON.
	Val json.RawMessage `json:"val,omitempty"`
	// Client identifies the sending client for write dedup.
	Client string `json:"client,omitempty"`
	// Seq is the client's per-request sequence number; a retried request
	// re-sends the same Seq, which is how the server recognizes it.
	Seq uint64 `json:"seq,omitempty"`
	// TS is the replica timestamp a qwrite carries (the ABD write-back
	// phase); unused by other ops.
	TS int64 `json:"ts,omitempty"`
	// WID is the writer id paired with TS: (TS, WID) order
	// lexicographically, so concurrent writers with equal timestamps are
	// broken deterministically.
	WID uint32 `json:"wid,omitempty"`
}

// Response is one access result on the wire.
type Response struct {
	// ID echoes the request's id.
	ID uint64 `json:"id,omitempty"`
	// Val is the value read (reads only), as raw JSON.
	Val json.RawMessage `json:"val,omitempty"`
	// Stamp is the access's *-action stamp; for the replica quorum ops it
	// carries the replica's current timestamp instead.
	Stamp int64 `json:"stamp"`
	// WID is the writer id paired with Stamp on quorum-op replies (qread,
	// qts, qwrite); zero otherwise.
	WID uint32 `json:"wid,omitempty"`
	// Err reports a server-side failure.
	Err string `json:"err,omitempty"`
	// Dup marks a write answered from the dedup window (a retransmission
	// of an already-applied write). Server-side only: it never crosses the
	// wire, but lets the journal tap flag the record so history checkers
	// don't count one write effect twice.
	Dup bool `json:"-"`
}

// Sniff peeks one byte to decide which codec the peer speaks: a binary
// frame's first byte is always 0x00 (the high byte of a < 16 MiB length),
// which no JSON document starts with. It consumes nothing.
func Sniff(br *bufio.Reader) (Codec, error) {
	b, err := br.Peek(1)
	if err != nil {
		return Binary, err
	}
	if b[0] == 0x00 {
		return Binary, nil
	}
	return JSON, nil
}

// Reader decodes frames from one connection. Not safe for concurrent use;
// a connection has one reading goroutine.
//
// Binary decode is zero-allocation in steady state, which comes with an
// ALIASING CONTRACT: the byte fields of a decoded Request or Response
// (Val) point into a buffer the Reader reuses, and are valid only until
// the next ReadRequest/ReadResponse call. A caller that lets a value
// outlive the frame — handing it to another goroutine, storing it —
// must copy it first. Name strings (Reg, Client) are interned per
// connection and safe to retain.
type Reader struct {
	codec Codec
	br    *bufio.Reader
	dec   *json.Decoder // JSON codec only

	// held is the pooled buffer backing the last decoded binary frame; it
	// is released back to the pool when the next frame replaces it, which
	// is what keeps the aliased fields above valid between reads.
	held  *[]byte
	names interner
}

// NewReader returns a frame reader over br speaking codec c.
func NewReader(c Codec, br *bufio.Reader) *Reader {
	r := &Reader{codec: c, br: br}
	if c == JSON {
		r.dec = json.NewDecoder(br)
	} else {
		r.names.m = make(map[string]string)
	}
	return r
}

// Buffered reports how many decoded-but-unconsumed payload bytes are
// sitting in the reader's buffers. The server flushes its response buffer
// only when this hits zero — i.e. when the next ReadRequest would block —
// which is what batches a pipelined burst's responses into one syscall.
// For the JSON codec, inter-frame whitespace (the newline the encoder
// emits after every document) does not count: it is not a pending frame,
// and counting it would starve the flush forever.
func (r *Reader) Buffered() int {
	if r.dec == nil {
		return r.br.Buffered()
	}
	n := countNonSpace(r.dec.Buffered())
	if b, err := r.br.Peek(r.br.Buffered()); err == nil {
		n += countNonSpaceBytes(b)
	}
	return n
}

// countNonSpace counts the non-whitespace bytes readable from rd (a
// snapshot reader; reading it consumes nothing from the stream).
func countNonSpace(rd io.Reader) int {
	var tmp [256]byte
	n := 0
	for {
		k, err := rd.Read(tmp[:])
		n += countNonSpaceBytes(tmp[:k])
		if err != nil || k == 0 {
			return n
		}
	}
}

// countNonSpaceBytes counts the bytes of b outside JSON's insignificant
// whitespace set.
func countNonSpaceBytes(b []byte) int {
	n := 0
	for _, c := range b {
		switch c {
		case ' ', '\t', '\r', '\n':
		default:
			n++
		}
	}
	return n
}

// ReadRequest decodes the next request frame into req. Binary-decoded
// byte fields alias the Reader's frame buffer; see the Reader contract.
func (r *Reader) ReadRequest(req *Request) error {
	if r.codec == JSON {
		*req = Request{}
		return r.dec.Decode(req)
	}
	p, err := r.readBinary()
	if err != nil {
		return err
	}
	return parseRequest(p, req, &r.names)
}

// ReadResponse decodes the next response frame into resp. Binary-decoded
// byte fields alias the Reader's frame buffer; see the Reader contract.
func (r *Reader) ReadResponse(resp *Response) error {
	if r.codec == JSON {
		*resp = Response{}
		return r.dec.Decode(resp)
	}
	p, err := r.readBinary()
	if err != nil {
		return err
	}
	return parseResponse(p, resp)
}

// readBinary reads one length-prefixed payload into a pooled buffer and
// returns it. The Reader holds the buffer until the NEXT readBinary call
// releases it, so decoded fields may alias the payload between reads —
// that deferred hand-back is what makes steady-state decode allocation
// free.
func (r *Reader) readBinary() ([]byte, error) {
	if r.held != nil {
		putBuf(r.held)
		r.held = nil
	}
	// The length prefix is peeked out of bufio's own buffer rather than
	// read into a local array: a local passed down through io.Reader
	// escapes to the heap, and this is the per-frame hot path.
	hdr, err := r.br.Peek(4)
	if err != nil {
		return nil, err
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if _, err := r.br.Discard(4); err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit %d (corrupt stream?)", n, MaxFrame)
	}
	buf := getBuf(n)
	if _, err := io.ReadFull(r.br, (*buf)[:n]); err != nil {
		putBuf(buf)
		return nil, err
	}
	r.held = buf
	return (*buf)[:n], nil
}

// Writer encodes frames onto one connection through a bufio.Writer. Write
// calls buffer; nothing reaches the wire until Flush. Not safe for
// concurrent use; a connection has one writing goroutine.
//
// Binary encode is zero-allocation in steady state: frames are assembled
// in a scratch buffer the Writer reuses across flushes (shrunk back after
// an oversized value so one large frame doesn't pin its capacity
// forever).
type Writer struct {
	codec   Codec
	bw      *bufio.Writer
	enc     *json.Encoder // JSON codec only
	scratch []byte
}

// NewWriter returns a frame writer over bw speaking codec c.
func NewWriter(c Codec, bw *bufio.Writer) *Writer {
	w := &Writer{codec: c, bw: bw}
	if c == JSON {
		w.enc = json.NewEncoder(bw)
	}
	return w
}

// WriteRequest buffers one request frame.
func (w *Writer) WriteRequest(req *Request) error {
	if w.codec == JSON {
		return w.enc.Encode(req)
	}
	w.scratch = appendRequest(append(w.scratch[:0], 0, 0, 0, 0), req)
	return w.writeScratch()
}

// WriteResponse buffers one response frame.
func (w *Writer) WriteResponse(resp *Response) error {
	if w.codec == JSON {
		return w.enc.Encode(resp)
	}
	w.scratch = appendResponse(append(w.scratch[:0], 0, 0, 0, 0), resp)
	return w.writeScratch()
}

// writeScratch fills in the length prefix over the scratch's 4-byte
// placeholder and buffers the whole frame with one write (a separate
// header write would escape its array to the heap through the io.Writer
// interface — one of the hot path's chased-out allocations). The scratch
// is dropped if one oversized value grew it past the steady-state cap.
func (w *Writer) writeScratch() error {
	n := len(w.scratch) - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxFrame)
	}
	w.scratch[0], w.scratch[1], w.scratch[2], w.scratch[3] =
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	_, err := w.bw.Write(w.scratch)
	if cap(w.scratch) > maxPooledBuf {
		w.scratch = nil
	}
	return err
}

// Flush pushes every buffered frame to the wire.
func (w *Writer) Flush() error { return w.bw.Flush() }
