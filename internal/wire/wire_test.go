package wire_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/wire"
)

// pipe returns a Writer feeding a buffer and a Reader over that buffer's
// eventual contents (call flush first).
func codecPipe(c wire.Codec) (*wire.Writer, func() *wire.Reader) {
	var buf bytes.Buffer
	w := wire.NewWriter(c, bufio.NewWriter(&buf))
	return w, func() *wire.Reader { return wire.NewReader(c, bufio.NewReader(&buf)) }
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []wire.Request{
		{ID: 1, Op: "read", Port: 3},
		{ID: 2, Op: "write", Val: json.RawMessage(`"hello"`), Client: "c1", Seq: 9},
		{ID: 1<<63 + 5, Op: "write", Reg: "shard-7", Val: json.RawMessage(`{"x":1}`), Client: "deadbeef01234567", Seq: 1 << 40},
		{Op: "read"}, // all-zero fields
		{ID: 4, Op: "write", Val: json.RawMessage(`"line1\nline2 ünïcødé"`), Client: "c", Seq: 2},
	}
	for _, c := range []wire.Codec{wire.Binary, wire.JSON} {
		w, rd := codecPipe(c)
		for i := range reqs {
			if err := w.WriteRequest(&reqs[i]); err != nil {
				t.Fatalf("%v: WriteRequest(%d): %v", c, i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := rd()
		for i := range reqs {
			var got wire.Request
			if err := r.ReadRequest(&got); err != nil {
				t.Fatalf("%v: ReadRequest(%d): %v", c, i, err)
			}
			want := reqs[i]
			if got.ID != want.ID || got.Op != want.Op || got.Reg != want.Reg ||
				got.Port != want.Port || got.Client != want.Client || got.Seq != want.Seq ||
				!bytes.Equal(got.Val, want.Val) {
				t.Fatalf("%v: request %d round-tripped to %+v, want %+v", c, i, got, want)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []wire.Response{
		{ID: 1, Stamp: 42, Val: json.RawMessage(`"v"`)},
		{ID: 2, Stamp: -7, Err: "port 9 out of range"},
		{Stamp: 0},
		{ID: 1 << 50, Stamp: 1<<62 + 3, Val: json.RawMessage(`{"nested":["a","b"]}`)},
	}
	for _, c := range []wire.Codec{wire.Binary, wire.JSON} {
		w, rd := codecPipe(c)
		for i := range resps {
			if err := w.WriteResponse(&resps[i]); err != nil {
				t.Fatalf("%v: WriteResponse(%d): %v", c, i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := rd()
		for i := range resps {
			var got wire.Response
			if err := r.ReadResponse(&got); err != nil {
				t.Fatalf("%v: ReadResponse(%d): %v", c, i, err)
			}
			want := resps[i]
			if got.ID != want.ID || got.Stamp != want.Stamp || got.Err != want.Err ||
				!bytes.Equal(got.Val, want.Val) {
				t.Fatalf("%v: response %d round-tripped to %+v, want %+v", c, i, got, want)
			}
		}
	}
}

// TestRandomRoundTrip hammers the binary codec with seeded random frames:
// whatever goes in must come out, across a wide range of field sizes.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	w, rd := codecPipe(wire.Binary)
	var want []wire.Request
	for i := 0; i < 200; i++ {
		op := "read"
		if rng.Intn(2) == 1 {
			op = "write"
		}
		req := wire.Request{
			ID:     rng.Uint64(),
			Op:     op,
			Reg:    string(randBytes(rng.Intn(20))),
			Port:   rng.Intn(1 << 16),
			Client: string(randBytes(rng.Intn(32))),
			Seq:    rng.Uint64(),
			Val:    randBytes(rng.Intn(4096)),
		}
		if len(req.Val) == 0 {
			req.Val = nil
		}
		want = append(want, req)
		if err := w.WriteRequest(&req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := rd()
	for i := range want {
		var got wire.Request
		if err := r.ReadRequest(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want[i].ID || got.Op != want[i].Op || got.Reg != want[i].Reg ||
			got.Port != want[i].Port || got.Client != want[i].Client ||
			got.Seq != want[i].Seq || !bytes.Equal(got.Val, want[i].Val) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, got, want[i])
		}
	}
}

// TestSniff checks the one-byte codec negotiation: binary frames lead with
// 0x00 (a < 16 MiB length's high byte), JSON frames with the document's
// first byte.
func TestSniff(t *testing.T) {
	for _, c := range []wire.Codec{wire.Binary, wire.JSON} {
		var buf bytes.Buffer
		w := wire.NewWriter(c, bufio.NewWriter(&buf))
		if err := w.WriteRequest(&wire.Request{ID: 1, Op: "read"}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(&buf)
		got, err := wire.Sniff(br)
		if err != nil {
			t.Fatalf("%v: Sniff: %v", c, err)
		}
		if got != c {
			t.Fatalf("Sniff(%v frame) = %v", c, got)
		}
		// Sniff must consume nothing: the frame still decodes.
		var req wire.Request
		if err := wire.NewReader(got, br).ReadRequest(&req); err != nil {
			t.Fatalf("%v: decode after Sniff: %v", c, err)
		}
		if req.Op != "read" || req.ID != 1 {
			t.Fatalf("%v: frame after Sniff = %+v", c, req)
		}
	}
}

// TestOversizedFrameRejected checks the framing guard: a corrupted length
// prefix (as a garbled link produces) must be a clean error, not a 500 MB
// allocation.
func TestOversizedFrameRejected(t *testing.T) {
	raw := []byte{0x20, 0x00, 0x00, 0x01, 0xff} // garbled high byte: length 537 MB
	r := wire.NewReader(wire.Binary, bufio.NewReader(bytes.NewReader(raw)))
	var req wire.Request
	err := r.ReadRequest(&req)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame error = %v, want a frame-limit error", err)
	}
}

// TestTruncatedFrameRejected checks every truncation point of a valid
// frame errors rather than hanging or mis-parsing.
func TestTruncatedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(wire.Binary, bufio.NewWriter(&buf))
	if err := w.WriteRequest(&wire.Request{ID: 7, Op: "write", Val: json.RawMessage(`"x"`), Client: "c", Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		r := wire.NewReader(wire.Binary, bufio.NewReader(bytes.NewReader(full[:n])))
		var req wire.Request
		if err := r.ReadRequest(&req); err == nil {
			t.Fatalf("frame truncated to %d/%d bytes decoded successfully: %+v", n, len(full), req)
		}
	}
}

// TestJSONWireCompat pins the JSON codec to the original hand-writable
// wire format: the exact frames the pre-binary tests (and any external
// client) send must still decode, and responses must still carry the same
// field names.
func TestJSONWireCompat(t *testing.T) {
	r := wire.NewReader(wire.JSON, bufio.NewReader(strings.NewReader(
		`{"op":"write","val":"\"once\"","client":"c1","seq":7}`+"\n"+
			`{"op":"read","port":2}`+"\n")))
	var req wire.Request
	if err := r.ReadRequest(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != "write" || string(req.Val) != `"\"once\""` || req.Client != "c1" || req.Seq != 7 || req.ID != 0 {
		t.Fatalf("legacy write frame decoded to %+v", req)
	}
	if err := r.ReadRequest(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != "read" || req.Port != 2 {
		t.Fatalf("legacy read frame decoded to %+v", req)
	}

	var buf bytes.Buffer
	w := wire.NewWriter(wire.JSON, bufio.NewWriter(&buf))
	if err := w.WriteResponse(&wire.Response{Stamp: 9, Val: json.RawMessage(`"v"`)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["stamp"] != float64(9) || m["val"] != "v" {
		t.Fatalf("response JSON = %s, want legacy stamp/val fields", buf.Bytes())
	}
	if _, has := m["id"]; has {
		t.Fatalf("id 0 should be omitted for legacy clients, got %s", buf.Bytes())
	}
}

// TestBufferedTracksBothLayers checks the flush heuristic's input: after a
// partial read, Buffered must see the remaining frames whether they sit in
// the bufio layer (binary) or the json.Decoder's own buffer (JSON).
func TestBufferedTracksBothLayers(t *testing.T) {
	for _, c := range []wire.Codec{wire.Binary, wire.JSON} {
		var buf bytes.Buffer
		w := wire.NewWriter(c, bufio.NewWriter(&buf))
		for i := 0; i < 3; i++ {
			if err := w.WriteRequest(&wire.Request{ID: uint64(i + 1), Op: "read"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(c, bufio.NewReader(&buf))
		var req wire.Request
		if err := r.ReadRequest(&req); err != nil {
			t.Fatal(err)
		}
		if r.Buffered() == 0 {
			t.Fatalf("%v: two frames remain but Buffered() = 0", c)
		}
		for i := 0; i < 2; i++ {
			if err := r.ReadRequest(&req); err != nil {
				t.Fatal(err)
			}
		}
		if n := r.Buffered(); n != 0 {
			t.Fatalf("%v: stream drained but Buffered() = %d", c, n)
		}
	}
}

func BenchmarkEncodeRequest(b *testing.B) {
	req := wire.Request{ID: 12345, Op: "write", Val: json.RawMessage(`"w0-17"`), Client: "deadbeef01234567", Seq: 12345}
	for _, c := range []wire.Codec{wire.Binary, wire.JSON} {
		b.Run(c.String(), func(b *testing.B) {
			var buf bytes.Buffer
			buf.Grow(1 << 20)
			w := wire.NewWriter(c, bufio.NewWriter(&buf))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					buf.Reset()
				}
				if err := w.WriteRequest(&req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
