package wire

// Test hooks into the buffer pool and parser internals.

const MaxPooledBuf = maxPooledBuf

var (
	GetBuf = getBuf
	PutBuf = putBuf
)

// ParseRequestForFuzz decodes one binary request payload, with interning,
// exactly as ReadRequest does after deframing.
func ParseRequestForFuzz(p []byte, req *Request) error {
	in := &interner{m: make(map[string]string)}
	return parseRequest(p, req, in)
}

// ParseResponseForFuzz decodes one binary response payload.
func ParseResponseForFuzz(p []byte, resp *Response) error {
	return parseResponse(p, resp)
}

// AppendRequestForFuzz re-encodes a request payload (no frame header).
func AppendRequestForFuzz(b []byte, req *Request) []byte { return appendRequest(b, req) }

// AppendResponseForFuzz re-encodes a response payload (no frame header).
func AppendResponseForFuzz(b []byte, resp *Response) []byte { return appendResponse(b, resp) }
