package wire

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Binary payload kind bytes. Requests are 0x01–0x05 so neither the length
// prefix nor the kind can be confused with the start of a JSON document.
const (
	kindRead     = 0x01
	kindWrite    = 0x02
	kindQRead    = 0x03 // replica quorum read: (ts, wid, val) query
	kindQWrite   = 0x04 // replica write-back: store (ts, wid, val) if newer
	kindQTS      = 0x05 // replica timestamp-only query (message-frugal phase 1)
	kindResponse = 0x81
)

// bufPool recycles frame parse buffers; steady-state decode allocates
// nothing (decoded fields alias the pooled buffer, which its Reader holds
// until the next frame).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// maxPooledBuf caps the capacity of a buffer recycled into bufPool. A
// single large value must not permanently inflate the pool: a buffer that
// grew past the cap while serving one oversized frame is dropped for the
// garbage collector instead of being re-pooled, so steady-state pool
// residency stays bounded by the cap regardless of bursts.
const maxPooledBuf = 64 << 10

// getBuf returns a pooled buffer with capacity ≥ n and length n. The
// make is the pool-miss cold path: steady state hits the pool and
// allocates nothing, which is what the runtime allocs/op gate measures.
//
//bloom:allowalloc
func getBuf(n int) *[]byte {
	b := bufPool.Get().(*[]byte)
	if cap(*b) < n {
		*b = make([]byte, n)
	}
	*b = (*b)[:n]
	return b
}

// putBuf recycles a buffer obtained from getBuf, unless serving an
// oversized frame grew it past maxPooledBuf.
//
//bloom:noalloc
func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// appendRequest encodes req onto b in the binary payload layout. It is a
// pure append — one of the hot-path leaves the static wait-free and
// no-alloc checks cover (the appends reuse the caller's buffer).
//
//bloom:waitfree
//bloom:noalloc
func appendRequest(b []byte, req *Request) []byte {
	kind := byte(kindRead)
	switch req.Op {
	case "write":
		kind = kindWrite
	case "qread":
		kind = kindQRead
	case "qwrite":
		kind = kindQWrite
	case "qts":
		kind = kindQTS
	}
	b = append(b, kind)
	b = binary.AppendUvarint(b, req.ID)
	b = appendString(b, req.Reg)
	b = binary.AppendUvarint(b, uint64(uint(req.Port)))
	b = appendString(b, req.Client)
	b = binary.AppendUvarint(b, req.Seq)
	b = appendBytes(b, req.Val)
	b = binary.AppendVarint(b, req.TS)
	return binary.AppendUvarint(b, uint64(req.WID))
}

// appendResponse encodes resp onto b in the binary payload layout.
//
//bloom:waitfree
//bloom:noalloc
func appendResponse(b []byte, resp *Response) []byte {
	b = append(b, byte(kindResponse))
	b = binary.AppendUvarint(b, resp.ID)
	b = binary.AppendVarint(b, resp.Stamp)
	b = appendString(b, resp.Err)
	b = appendBytes(b, resp.Val)
	return binary.AppendUvarint(b, uint64(resp.WID))
}

// appendString appends a uvarint length followed by the string bytes.
//
//bloom:noalloc
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes appends a uvarint length followed by the slice bytes.
//
//bloom:noalloc
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// parseError reports a truncated or malformed field. It is a dedicated
// type (rather than fmt.Errorf) so the parse functions keep their
// //bloom:waitfree discipline: fmt's printer state comes from a
// sync.Pool, whose slow path takes a mutex, and error construction sits
// on the frame-decode hot path. The message is assembled only when the
// error is actually printed.
type parseError struct{ what string }

func (e *parseError) Error() string { return "wire: truncated or malformed " + e.what }

// Frame-shape errors, preallocated for the same reason.
var (
	errUnknownRequestKind  = errors.New("wire: unknown request kind byte")
	errUnknownResponseKind = errors.New("wire: unknown response kind byte")
	errTrailingBytes       = errors.New("wire: trailing bytes after frame payload")
)

// maxInterned bounds a Reader's string-intern cache. A connection sees a
// handful of distinct register names and client ids over and over; past
// the bound (an adversarial peer cycling names) the cache stops growing
// and decode falls back to a per-frame allocation.
const maxInterned = 1024

// interner caches the small strings decoded off one connection — register
// names, client ids — so steady-state decode of a repeated name costs a
// map probe instead of an allocation. Not safe for concurrent use; it
// belongs to a single Reader.
type interner struct {
	m map[string]string
}

// intern returns a string equal to b, reusing a previously decoded one
// when the connection has seen these bytes before. The map probe with a
// []byte key does not allocate; only the first sight of a name does.
//
//bloom:waitfree
func (in *interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.m) < maxInterned {
		in.m[s] = s
	}
	return s
}

// parser walks a binary payload. Every accessor reports malformation by
// setting err; the caller checks once at the end. Decoded byte fields
// ALIAS the payload (see Reader: the buffer stays valid until the next
// frame is read); decoded name strings go through the interner.
type parser struct {
	p   []byte
	in  *interner
	err error
}

// fail records the first malformation. Constructing the parseError is
// the malformed-frame cold path, off the steady-state decode budget.
//
//bloom:allowalloc
func (d *parser) fail(what string) {
	if d.err == nil {
		d.err = &parseError{what}
	}
}

func (d *parser) byte(what string) byte {
	if d.err != nil || len(d.p) == 0 {
		d.fail(what)
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *parser) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *parser) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.p = d.p[n:]
	return v
}

// bytes returns the next length-prefixed field WITHOUT copying: the
// returned slice aliases the frame buffer, which the owning Reader keeps
// stable until its next Read call. Callers that let a field outlive the
// frame must copy it themselves (see Reader).
func (d *parser) bytes(what string) []byte {
	n := d.uvarint(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.p)) {
		d.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := d.p[:n:n]
	d.p = d.p[n:]
	return out
}

// name decodes a length-prefixed string through the intern cache: a
// repeated register name or client id costs a map probe, not an
// allocation. Excused rather than claimed alloc-free: the interner-less
// fallback and the intern cache's first sight of a name do allocate.
//
//bloom:allowalloc
func (d *parser) name(what string) string {
	n := d.uvarint(what)
	if d.err != nil || n > uint64(len(d.p)) {
		d.fail(what)
		return ""
	}
	b := d.p[:n]
	d.p = d.p[n:]
	if d.in != nil {
		return d.in.intern(b)
	}
	return string(b)
}

// string decodes a length-prefixed string as a fresh allocation (free when
// empty). Used for fields that vary per frame, like error messages, where
// interning would only churn the cache: an allocation here is deliberate,
// hence excused.
//
//bloom:allowalloc
func (d *parser) string(what string) string {
	n := d.uvarint(what)
	if d.err != nil || n > uint64(len(d.p)) {
		d.fail(what)
		return ""
	}
	s := string(d.p[:n])
	d.p = d.p[n:]
	return s
}

// parseRequest decodes one binary request payload into req. req.Val
// aliases p; req.Reg and req.Client come from the intern cache. The
// steady-state decode of a well-formed frame allocates nothing; the
// excused leaves (fail, name) allocate only on malformed frames or
// first-seen names.
//
//bloom:waitfree
//bloom:noalloc
func parseRequest(p []byte, req *Request, in *interner) error {
	d := parser{p: p, in: in}
	switch d.byte("kind") {
	case kindRead:
		req.Op = "read"
	case kindWrite:
		req.Op = "write"
	case kindQRead:
		req.Op = "qread"
	case kindQWrite:
		req.Op = "qwrite"
	case kindQTS:
		req.Op = "qts"
	default:
		if d.err == nil {
			d.err = errUnknownRequestKind
		}
	}
	req.ID = d.uvarint("id")
	req.Reg = d.name("reg")
	req.Port = int(d.uvarint("port"))
	req.Client = d.name("client")
	req.Seq = d.uvarint("seq")
	req.Val = d.bytes("val")
	req.TS = d.varint("ts")
	req.WID = uint32(d.uvarint("wid"))
	if d.err == nil && len(d.p) != 0 {
		d.err = errTrailingBytes
	}
	return d.err
}

// parseResponse decodes one binary response payload into resp. resp.Val
// aliases p.
//
//bloom:waitfree
//bloom:noalloc
func parseResponse(p []byte, resp *Response) error {
	d := parser{p: p}
	if k := d.byte("kind"); k != kindResponse && d.err == nil {
		d.err = errUnknownResponseKind
	}
	resp.ID = d.uvarint("id")
	resp.Stamp = d.varint("stamp")
	resp.Err = d.string("err")
	resp.Val = d.bytes("val")
	resp.WID = uint32(d.uvarint("wid"))
	if d.err == nil && len(d.p) != 0 {
		d.err = errTrailingBytes
	}
	return d.err
}
