package wire_test

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzParseFrame throws arbitrary payload bytes at the binary frame
// parsers (the exact bytes ReadRequest/ReadResponse hand them after
// deframing). The parsers must never panic, and anything they accept must
// survive a re-encode/re-parse round trip unchanged — the property that
// makes "parsed OK" mean "well-formed frame".
func FuzzParseFrame(f *testing.F) {
	// Seed with one valid request and response payload, plus shape-probing
	// corpus entries.
	f.Add([]byte{0x01, 0x07, 0x00, 0x03, 0x00, 0x00, 0x00}) // read frame shape
	f.Add(wire.AppendRequestForFuzz(nil, &wire.Request{
		ID: 9, Op: "write", Reg: "r", Val: []byte(`"v"`), Client: "c", Seq: 9,
	}))
	f.Add(wire.AppendResponseForFuzz(nil, &wire.Response{ID: 9, Stamp: -3, Val: []byte(`"v"`)}))
	f.Add([]byte{})
	f.Add([]byte{0x81})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, p []byte) {
		var req wire.Request
		if err := wire.ParseRequestForFuzz(p, &req); err == nil {
			re := wire.AppendRequestForFuzz(nil, &req)
			var req2 wire.Request
			if err := wire.ParseRequestForFuzz(re, &req2); err != nil {
				t.Fatalf("re-parse of re-encoded request failed: %v (original %x)", err, p)
			}
			if req2.ID != req.ID || req2.Op != req.Op || req2.Reg != req.Reg ||
				req2.Port != req.Port || req2.Client != req.Client || req2.Seq != req.Seq ||
				!bytes.Equal(req2.Val, req.Val) {
				t.Fatalf("request round trip changed: %+v vs %+v (original %x)", req2, req, p)
			}
		}
		var resp wire.Response
		if err := wire.ParseResponseForFuzz(p, &resp); err == nil {
			re := wire.AppendResponseForFuzz(nil, &resp)
			var resp2 wire.Response
			if err := wire.ParseResponseForFuzz(re, &resp2); err != nil {
				t.Fatalf("re-parse of re-encoded response failed: %v (original %x)", err, p)
			}
			if resp2.ID != resp.ID || resp2.Stamp != resp.Stamp || resp2.Err != resp.Err ||
				!bytes.Equal(resp2.Val, resp.Val) {
				t.Fatalf("response round trip changed: %+v vs %+v (original %x)", resp2, resp, p)
			}
		}
	})
}
