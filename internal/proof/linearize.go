package proof

import (
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/spec"
)

// classifyWrites computes each effective write's potency and, for impotent
// writes, its prefinisher, checking Lemmas 1 and 2 along the way.
func (c *certifier[V]) classifyWrites() error {
	for _, w := range c.t.Writes {
		if !w.DidWrite {
			continue
		}
		// Potency (Section 7): W by Wri is potent iff the mod-2 sum of
		// the tag bits immediately after W's real write is i.
		other, _ := c.contentAt(1-w.Writer, w.WriteSeq)
		sum := w.WriteTag ^ other.Tag
		potent := int(sum) == w.Writer
		c.potent[w.OpID] = potent

		// The writer's real read must have seen the content Reg¬i held
		// at that instant (substrate-atomicity coherence).
		atRead, _ := c.contentAt(1-w.Writer, w.ReadSeq)
		if atRead.Tag != w.ReadTag || atRead.Val != w.ReadVal {
			return fmt.Errorf("proof: write op %d read (%v,%d) from Reg%d at %d, but γ implies content (%v,%d)",
				w.OpID, w.ReadVal, w.ReadTag, 1-w.Writer, w.ReadSeq, atRead.Val, atRead.Tag)
		}

		// Prefinisher: the last real write by Wr¬i between W's real
		// read and W's real write (Definition 1).
		pf := c.lastWriteIn(1-w.Writer, w.ReadSeq, w.WriteSeq)
		if pf != nil {
			c.prefin[w.OpID] = pf.idx
		}
		if !potent && pf == nil {
			// Lemma 1: every impotent write is prefinished.
			return fmt.Errorf("proof: Lemma 1 violated: impotent write op %d (writer %d) has no prefinisher", w.OpID, w.Writer)
		}
	}

	// Substrate coherence for reads: the tags each read observed must
	// match the register contents γ implies at the read's stamps.
	for _, r := range c.t.Reads {
		if r.Crashed {
			continue
		}
		if got, _ := c.contentAt(0, r.R0Seq); got.Tag != r.T0 {
			return fmt.Errorf("proof: read op %d saw tag %d on Reg0 at %d, but γ implies %d", r.OpID, r.T0, r.R0Seq, got.Tag)
		}
		if got, _ := c.contentAt(1, r.R1Seq); got.Tag != r.T1 {
			return fmt.Errorf("proof: read op %d saw tag %d on Reg1 at %d, but γ implies %d", r.OpID, r.T1, r.R1Seq, got.Tag)
		}
	}

	// Lemma 2: the prefinisher of an impotent write is potent.
	for opID, pfIdx := range c.prefin {
		if c.potent[opID] {
			continue // potent writes may have a "prefinisher"; it is unused
		}
		pf := c.t.Writes[pfIdx]
		if !c.potent[pf.OpID] {
			return fmt.Errorf("proof: Lemma 2 violated: impotent write op %d has impotent prefinisher op %d", opID, pf.OpID)
		}
	}
	return nil
}

// lastWriteIn returns the last real write to reg with stamp in the open
// interval (lo, hi), or nil.
func (c *certifier[V]) lastWriteIn(reg int, lo, hi int64) *realWrite[V] {
	ws := c.byReg[reg]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].seq >= hi })
	if i == 0 {
		return nil
	}
	w := &ws[i-1]
	if w.seq <= lo {
		return nil
	}
	return w
}

// place runs Steps 1–4, producing the ordered linearization.
func (c *certifier[V]) place() (*Linearization[V], error) {
	lin := &Linearization[V]{Init: c.t.Init}
	lin.Report.Prefinisher = make(map[int]int)

	// Steps 1: writes.
	for _, w := range c.t.Writes {
		if !w.DidWrite {
			lin.Report.DroppedWrites++
			continue
		}
		op := Op[V]{
			OpID:      w.OpID,
			Chan:      history.ProcID(w.Writer),
			IsWrite:   true,
			Val:       w.Val,
			Inv:       w.InvokeSeq,
			Res:       w.RespondSeq,
			ReadsFrom: -1,
		}
		if c.potent[w.OpID] {
			op.Class = PotentWrite
			op.Key = Key{Anchor: w.WriteSeq, Rank: rankPotent}
			lin.Report.PotentWrites++
		} else {
			pf := c.t.Writes[c.prefin[w.OpID]]
			op.Class = ImpotentWrite
			op.Key = Key{Anchor: pf.WriteSeq, Rank: rankImpotent}
			lin.Report.ImpotentWrites++
			lin.Report.Prefinisher[w.OpID] = pf.OpID

			// Legitimacy of Step 1 (Section 7.1): the prefinisher's
			// real write lies inside the impotent write's interval,
			// so the assigned point does too.
			if pf.WriteSeq <= w.ReadSeq || pf.WriteSeq >= w.WriteSeq {
				return nil, fmt.Errorf("proof: prefinisher op %d real write at %d outside (read %d, write %d) of impotent op %d",
					pf.OpID, pf.WriteSeq, w.ReadSeq, w.WriteSeq, w.OpID)
			}
		}
		lin.Ops = append(lin.Ops, op)
	}

	// Steps 2–4: reads.
	for _, r := range c.t.Reads {
		if r.Crashed {
			lin.Report.DroppedReads++
			continue
		}
		op := Op[V]{
			OpID:      r.OpID,
			Chan:      r.Proc,
			Val:       r.Ret,
			Inv:       r.InvokeSeq,
			Res:       r.RespondSeq,
			ReadsFrom: -1,
		}
		// "R reads the value written by W" (Section 6): W's real write
		// is the last real write to Reg_j before R's final real read.
		_, from := c.contentAt(r.R2Reg, r.R2Seq)
		if from == nil {
			// Read of the initial value. Lemma 6 implies this can only
			// happen through Reg0 with no preceding real writes at all.
			if r.R2Reg != 0 {
				return nil, fmt.Errorf("proof: Lemma 6 violated: read op %d returned the initial value through Reg1", r.OpID)
			}
			if w := c.lastWriteIn(1, 0, r.R1Seq); w != nil {
				return nil, fmt.Errorf("proof: Lemma 6 violated: read op %d of the initial value follows a real write to Reg1 at %d", r.OpID, w.seq)
			}
			if r.Ret != c.t.Init {
				return nil, fmt.Errorf("proof: read op %d returned %v, but γ implies the initial value %v", r.OpID, r.Ret, c.t.Init)
			}
			op.Class = ReadOfInitial
			op.Key = Key{Anchor: r.R1Seq, Rank: rankReadAfter} // Step 4: after the second real read
			lin.Report.ReadsOfInitial++
			lin.Ops = append(lin.Ops, op)
			continue
		}
		if r.Ret != from.val {
			return nil, fmt.Errorf("proof: read op %d returned %v, but γ implies it read %v from write op %d",
				r.OpID, r.Ret, from.val, from.opID)
		}
		op.ReadsFrom = from.opID
		if c.potent[from.opID] {
			// Step 2: immediately after the later of R's first real
			// read and W's *-action (which sits at W's real write).
			op.Class = ReadOfPotent
			anchor := from.seq
			if r.R0Seq > anchor {
				anchor = r.R0Seq
			}
			op.Key = Key{Anchor: anchor, Rank: rankReadAfter}
			lin.Report.ReadsOfPotent++
		} else {
			// Step 3: immediately after W0's *-action, which sits just
			// before its prefinisher's (anchor = prefinisher's real
			// write, between ranks -2 and 0).
			pf := c.t.Writes[c.prefin[from.opID]]
			op.Class = ReadOfImpotent
			op.Key = Key{Anchor: pf.WriteSeq, Rank: rankReadImpotent}
			lin.Report.ReadsOfImp++

			// Lemma 4: the impotent write's point falls inside the
			// read's interval.
			if pf.WriteSeq < r.InvokeSeq || pf.WriteSeq >= r.RespondSeq {
				return nil, fmt.Errorf("proof: Lemma 4 violated: *-action of impotent write op %d (at prefinisher write %d) outside read op %d's interval [%d,%d]",
					from.opID, pf.WriteSeq, r.OpID, r.InvokeSeq, r.RespondSeq)
			}
		}
		lin.Ops = append(lin.Ops, op)
	}

	// Tie-break operations that share (Anchor, Rank): the paper inserts
	// them in arbitrary order; we use OpID for determinism.
	sort.Slice(lin.Ops, func(i, j int) bool {
		a, b := lin.Ops[i], lin.Ops[j]
		if a.Key.Anchor != b.Key.Anchor {
			return a.Key.Anchor < b.Key.Anchor
		}
		if a.Key.Rank != b.Key.Rank {
			return a.Key.Rank < b.Key.Rank
		}
		return a.OpID < b.OpID
	})
	var tie int32
	for i := range lin.Ops {
		if i > 0 && lin.Ops[i].Key.Anchor == lin.Ops[i-1].Key.Anchor && lin.Ops[i].Key.Rank == lin.Ops[i-1].Key.Rank {
			tie++
		} else {
			tie = 0
		}
		lin.Ops[i].Key.Tie = tie
	}
	return lin, nil
}

// Validate checks a linearization against the paper's atomicity
// definition: every *-action lies within its operation's interval, keys
// are strictly increasing, and replaying the sequence satisfies the
// register property. Certify calls it automatically; it is exported so
// tests can validate hand-built or mutated linearizations.
func Validate[V comparable](lin *Linearization[V]) error {
	cur := lin.Init
	for i, op := range lin.Ops {
		if i > 0 && !lin.Ops[i-1].Key.Less(op.Key) {
			return fmt.Errorf("proof: *-actions of ops %d and %d out of order", lin.Ops[i-1].OpID, op.OpID)
		}
		// The point (Anchor, Rank, Tie) occurs strictly after the γ
		// event with stamp Anchor and strictly before the next one, so
		// it lies inside (Inv, Res) iff Anchor ≥ Inv and Anchor < Res.
		if op.Key.Anchor < op.Inv {
			return fmt.Errorf("proof: *-action of op %d at anchor %d precedes its invocation at %d", op.OpID, op.Key.Anchor, op.Inv)
		}
		if op.Key.Anchor >= op.Res {
			return fmt.Errorf("proof: *-action of op %d at anchor %d does not precede its acknowledgment at %d", op.OpID, op.Key.Anchor, op.Res)
		}
		if op.IsWrite {
			cur = op.Val
			continue
		}
		if op.Val != cur {
			return fmt.Errorf("proof: register property violated: read op %d (%s) returned %v but the preceding write left %v",
				op.OpID, op.Class, op.Val, cur)
		}
	}
	return nil
}

// witnessScale spreads γ stamps out so that sub-event positions (rank,
// tie) fit between consecutive events when flattening a linearization to
// a spec.Witness.
const witnessScale = 1 << 20

// AsWitness flattens lin onto a single int64 scale and returns rescaled
// operations plus a spec.Witness, so the generic validator in package spec
// can independently confirm the certificate. Ties beyond witnessScale/4
// operations at one anchor cannot be flattened and return an error.
func AsWitness[V comparable](ops []history.Op[V], lin *Linearization[V]) ([]history.Op[V], spec.Witness, error) {
	scaled := make([]history.Op[V], len(ops))
	for i, op := range ops {
		op.Inv *= witnessScale
		if op.Res != history.PendingSeq {
			op.Res *= witnessScale
		}
		op.Star = 0
		scaled[i] = op
	}
	w := make(spec.Witness, len(lin.Ops))
	for _, op := range lin.Ops {
		if op.Key.Tie >= witnessScale/4 {
			return nil, nil, fmt.Errorf("proof: %d ties at anchor %d exceed the witness scale", op.Key.Tie, op.Key.Anchor)
		}
		pt := op.Key.Anchor*witnessScale + int64(op.Key.Rank+2)*(witnessScale/4) + int64(op.Key.Tie)
		w[op.OpID] = pt
	}
	return scaled, w, nil
}
