package proof

import (
	"testing"

	"repro/internal/history"
	"repro/internal/spec"
)

func TestAsWitnessValidatesUnderSpec(t *testing.T) {
	tr := impotentWriteTrace()
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	ops := tr.Ops()
	scaled, wit, err := AsWitness(ops, lin)
	if err != nil {
		t.Fatal(err)
	}
	if len(wit) != len(lin.Ops) {
		t.Fatalf("witness has %d points, want %d", len(wit), len(lin.Ops))
	}
	if err := spec.ValidateWitness(scaled, "v0", wit); err != nil {
		t.Fatalf("spec rejected the flattened certificate: %v", err)
	}
}

func TestAsWitnessPreservesPending(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes[0].Crashed = true
	tr.Writes[0].RespondSeq = history.PendingSeq
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	scaled, wit, err := AsWitness(tr.Ops(), lin)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range scaled {
		if op.IsWrite && op.Res != history.PendingSeq {
			t.Fatalf("pending write's response was scaled: %v", op)
		}
	}
	if err := spec.ValidateWitness(scaled, "v0", wit); err != nil {
		t.Fatalf("spec rejected pending-write certificate: %v", err)
	}
}

func TestAsWitnessTieOverflow(t *testing.T) {
	lin, err := Certify(potentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	lin.Ops[0].Key.Tie = witnessScale / 4
	if _, _, err := AsWitness(nil, lin); err == nil {
		t.Fatal("tie overflow not caught")
	}
}

func TestValidateIntervalBranches(t *testing.T) {
	lin, err := Certify(potentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Anchor before invocation.
	bad := *lin
	bad.Ops = append([]Op[string](nil), lin.Ops...)
	bad.Ops[0].Key.Anchor = bad.Ops[0].Inv - 1
	if err := Validate(&bad); err == nil {
		t.Fatal("anchor before invocation accepted")
	}
	// Anchor at/after response.
	bad.Ops = append([]Op[string](nil), lin.Ops...)
	bad.Ops[1].Key.Anchor = bad.Ops[1].Res
	if err := Validate(&bad); err == nil {
		t.Fatal("anchor past acknowledgment accepted")
	}
}
