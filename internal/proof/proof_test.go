package proof

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
)

// potentWriteTrace is a minimal sequential trace: Wr0 writes "a", a reader
// reads it.
func potentWriteTrace() core.Trace[string] {
	return core.Trace[string]{
		Init: "v0",
		Writes: []core.WriteRec[string]{{
			OpID: 0, Writer: 0, Val: "a",
			InvokeSeq: 1, RespondSeq: 4,
			DidRead: true, ReadSeq: 2, ReadTag: 0, ReadVal: "v0",
			DidWrite: true, WriteSeq: 3, WriteTag: 0,
		}},
		Reads: []core.ReadRec[string]{{
			OpID: 1, Proc: core.ChanReader(1), ReaderIndex: 1,
			InvokeSeq: 5, RespondSeq: 10,
			R0Seq: 6, T0: 0, R1Seq: 7, T1: 0,
			R2Seq: 8, R2Reg: 0, Ret: "a",
		}},
	}
}

// impotentWriteTrace reproduces the paper's slow-reader situation: a
// reader samples both tags, then Wr0's write is prefinished by Wr1's, and
// the reader's final read lands on the impotent write's value.
//
// γ timeline (stamps):
//
//	 1  W0 invoked (Wr0, value "x")
//	 2  R invoked (reader 1)
//	 3  R reads Reg0: tag 0
//	 4  R reads Reg1: tag 0      → target Reg0
//	 5  W0 real-reads Reg1: tag 0 → will write tag 0
//	 6  W1 invoked (Wr1, value "c")
//	 7  W1 real-reads Reg0: tag 0 → will write tag 1
//	 8  W1 real-writes Reg1 = ("c",1)   [potent: 0⊕1 = 1 = index]
//	 9  W1 acknowledged
//	10  W0 real-writes Reg0 = ("x",0)   [impotent: 0⊕1 = 1 ≠ 0]
//	11  W0 acknowledged
//	12  R final-reads Reg0 = ("x",0)    → returns "x", an impotent write's value
//	13  R acknowledged
func impotentWriteTrace() core.Trace[string] {
	return core.Trace[string]{
		Init: "v0",
		Writes: []core.WriteRec[string]{
			{
				OpID: 0, Writer: 0, Val: "x",
				InvokeSeq: 1, RespondSeq: 11,
				DidRead: true, ReadSeq: 5, ReadTag: 0, ReadVal: "v0",
				DidWrite: true, WriteSeq: 10, WriteTag: 0,
			},
			{
				OpID: 2, Writer: 1, Val: "c",
				InvokeSeq: 6, RespondSeq: 9,
				DidRead: true, ReadSeq: 7, ReadTag: 0, ReadVal: "v0",
				DidWrite: true, WriteSeq: 8, WriteTag: 1,
			},
		},
		Reads: []core.ReadRec[string]{{
			OpID: 1, Proc: core.ChanReader(1), ReaderIndex: 1,
			InvokeSeq: 2, RespondSeq: 13,
			R0Seq: 3, T0: 0, R1Seq: 4, T1: 0,
			R2Seq: 12, R2Reg: 0, Ret: "x",
		}},
	}
}

func TestKeyLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{Key{1, 0, 0}, Key{2, 0, 0}, true},
		{Key{2, 0, 0}, Key{1, 0, 0}, false},
		{Key{1, -2, 0}, Key{1, -1, 0}, true},
		{Key{1, -1, 0}, Key{1, 0, 0}, true},
		{Key{1, 0, 0}, Key{1, 1, 0}, true},
		{Key{1, 1, 0}, Key{1, 1, 1}, true},
		{Key{1, 1, 1}, Key{1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		PotentWrite:    "potent write",
		ImpotentWrite:  "impotent write",
		ReadOfPotent:   "read of potent write",
		ReadOfImpotent: "read of impotent write",
		ReadOfInitial:  "read of initial value",
		Class(77):      "Class(77)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestCertifyPotentWrite(t *testing.T) {
	lin, err := Certify(potentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	if lin.Report.PotentWrites != 1 || lin.Report.ImpotentWrites != 0 {
		t.Fatalf("report = %+v, want 1 potent write", lin.Report)
	}
	if lin.Report.ReadsOfPotent != 1 {
		t.Fatalf("report = %+v, want 1 read of potent", lin.Report)
	}
	if len(lin.Ops) != 2 || !lin.Ops[0].IsWrite || lin.Ops[1].IsWrite {
		t.Fatalf("linearization order wrong: %+v", lin.Ops)
	}
	if lin.Ops[1].ReadsFrom != 0 {
		t.Fatalf("read should read from op 0, got %d", lin.Ops[1].ReadsFrom)
	}
}

func TestCertifyImpotentWrite(t *testing.T) {
	lin, err := Certify(impotentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	rep := lin.Report
	if rep.PotentWrites != 1 || rep.ImpotentWrites != 1 || rep.ReadsOfImp != 1 {
		t.Fatalf("report = %+v, want 1 potent, 1 impotent, 1 read-of-impotent", rep)
	}
	if pf := rep.Prefinisher[0]; pf != 2 {
		t.Fatalf("prefinisher of op 0 = %d, want 2 (W1)", pf)
	}
	// Section 7 placement: W0* < R* < W1*, all anchored at W1's real
	// write (stamp 8).
	if len(lin.Ops) != 3 {
		t.Fatalf("got %d ops", len(lin.Ops))
	}
	if lin.Ops[0].Class != ImpotentWrite || lin.Ops[1].Class != ReadOfImpotent || lin.Ops[2].Class != PotentWrite {
		t.Fatalf("order = %v %v %v", lin.Ops[0].Class, lin.Ops[1].Class, lin.Ops[2].Class)
	}
	for _, op := range lin.Ops {
		if op.Key.Anchor != 8 {
			t.Fatalf("op %d anchored at %d, want 8", op.OpID, op.Key.Anchor)
		}
	}
}

func TestCertifyReadOfInitial(t *testing.T) {
	tr := core.Trace[string]{
		Init: "v0",
		Reads: []core.ReadRec[string]{{
			OpID: 0, Proc: core.ChanReader(1), ReaderIndex: 1,
			InvokeSeq: 1, RespondSeq: 6,
			R0Seq: 2, T0: 0, R1Seq: 3, T1: 0,
			R2Seq: 4, R2Reg: 0, Ret: "v0",
		}},
	}
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Report.ReadsOfInitial != 1 {
		t.Fatalf("report = %+v", lin.Report)
	}
	// Step 4: anchored at the second real read.
	if lin.Ops[0].Key.Anchor != 3 {
		t.Fatalf("read of initial anchored at %d, want 3", lin.Ops[0].Key.Anchor)
	}
}

func TestCertifyRejectsWrongReturnValue(t *testing.T) {
	tr := potentWriteTrace()
	tr.Reads[0].Ret = "tampered"
	if _, err := Certify(tr); err == nil || !strings.Contains(err.Error(), "returned") {
		t.Fatalf("tampered return value not caught: %v", err)
	}
}

func TestCertifyRejectsWrongTarget(t *testing.T) {
	tr := potentWriteTrace()
	tr.Reads[0].R2Reg = 1
	if _, err := Certify(tr); err == nil || !strings.Contains(err.Error(), "t0⊕t1") {
		t.Fatalf("wrong final-read target not caught: %v", err)
	}
}

func TestCertifyRejectsProtocolTagViolation(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes[0].WriteTag = 1 // protocol requires i⊕t' = 0
	if _, err := Certify(tr); err == nil || !strings.Contains(err.Error(), "i⊕t'") {
		t.Fatalf("tag-rule violation not caught: %v", err)
	}
}

func TestCertifyRejectsStaleWriterRead(t *testing.T) {
	tr := impotentWriteTrace()
	// Claim W1 read tag 1 although γ implies tag 0 at stamp 7: the tag
	// rule then wants WriteTag = 1⊕1 = 0; keep the pair self-consistent
	// so only the substrate-coherence check can catch it.
	tr.Writes[1].ReadTag = 1
	tr.Writes[1].WriteTag = 0
	if _, err := Certify(tr); err == nil || !strings.Contains(err.Error(), "γ implies content") {
		t.Fatalf("stale writer read not caught: %v", err)
	}
}

func TestCertifyRejectsStaleReaderTag(t *testing.T) {
	tr := potentWriteTrace()
	tr.Reads[0].T0 = 1
	tr.Reads[0].R2Reg = 1 // keep t0⊕t1 consistent
	if _, err := Certify(tr); err == nil || !strings.Contains(err.Error(), "saw tag") {
		t.Fatalf("stale reader tag not caught: %v", err)
	}
}

func TestCertifyRejectsDuplicateStamps(t *testing.T) {
	tr := potentWriteTrace()
	tr.Reads[0].R1Seq = tr.Reads[0].R0Seq
	if _, err := Certify(tr); err == nil {
		t.Fatal("duplicate stamps not caught")
	}
}

func TestCertifyRejectsUnstamped(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes[0].ReadSeq = 0
	if _, err := Certify(tr); err == nil || !strings.Contains(err.Error(), "stamp") {
		t.Fatalf("unstamped trace not caught: %v", err)
	}
}

func TestCertifyRejectsDisorderedStamps(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes[0].WriteSeq, tr.Writes[0].ReadSeq = tr.Writes[0].ReadSeq, tr.Writes[0].WriteSeq
	if _, err := Certify(tr); err == nil {
		t.Fatal("real write before real read not caught")
	}
}

func TestCertifyCrashedWriteBeforeRealWrite(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes[0].DidWrite = false
	tr.Writes[0].Crashed = true
	tr.Writes[0].RespondSeq = history.PendingSeq
	// The read can no longer return "a"; make it a read of the initial value.
	tr.Reads[0].Ret = "v0"
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Report.DroppedWrites != 1 || lin.Report.ReadsOfInitial != 1 {
		t.Fatalf("report = %+v", lin.Report)
	}
}

func TestCertifyCrashedWriteAfterRealWrite(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes[0].Crashed = true
	tr.Writes[0].RespondSeq = history.PendingSeq
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The write took effect and is readable even though never acknowledged.
	if lin.Report.PotentWrites != 1 || lin.Report.ReadsOfPotent != 1 {
		t.Fatalf("report = %+v", lin.Report)
	}
}

func TestCertifyCrashedRead(t *testing.T) {
	tr := potentWriteTrace()
	tr.Reads[0].Crashed = true
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Report.DroppedReads != 1 {
		t.Fatalf("report = %+v", lin.Report)
	}
}

func TestValidateRejectsMutatedCertificate(t *testing.T) {
	lin, err := Certify(impotentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Swap the read's value: the register property must fail.
	for i := range lin.Ops {
		if !lin.Ops[i].IsWrite {
			lin.Ops[i].Val = "c"
		}
	}
	if err := Validate(lin); err == nil {
		t.Fatal("mutated certificate accepted")
	}
}

func TestValidateRejectsOutOfOrderKeys(t *testing.T) {
	lin, err := Certify(impotentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	lin.Ops[0], lin.Ops[1] = lin.Ops[1], lin.Ops[0]
	if err := Validate(lin); err == nil {
		t.Fatal("out-of-order certificate accepted")
	}
}

func TestStepTwoAnchorsAtLaterOfReadAndWrite(t *testing.T) {
	// Case T0 > Tw: the read's first real read happens after the potent
	// write's real write; anchor must be the first real read.
	lin, err := Certify(potentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	read := lin.Ops[1]
	if read.Key.Anchor != 6 { // R0Seq = 6 > WriteSeq = 3
		t.Fatalf("anchor = %d, want 6 (the first real read)", read.Key.Anchor)
	}

	// Case T0 < Tw: the write lands between the read's first and final
	// real reads; anchor must be the write.
	tr := core.Trace[string]{
		Init: "v0",
		Writes: []core.WriteRec[string]{{
			OpID: 0, Writer: 0, Val: "a",
			InvokeSeq: 4, RespondSeq: 9,
			DidRead: true, ReadSeq: 5, ReadTag: 0, ReadVal: "v0",
			DidWrite: true, WriteSeq: 7, WriteTag: 0,
		}},
		Reads: []core.ReadRec[string]{{
			OpID: 1, Proc: core.ChanReader(1), ReaderIndex: 1,
			InvokeSeq: 1, RespondSeq: 11,
			R0Seq: 2, T0: 0, R1Seq: 3, T1: 0,
			R2Seq: 8, R2Reg: 0, Ret: "a",
		}},
	}
	lin, err = Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range lin.Ops {
		if !op.IsWrite && op.Key.Anchor != 7 {
			t.Fatalf("anchor = %d, want 7 (the potent write)", op.Key.Anchor)
		}
	}
}
