package proof

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExplainListsEverything(t *testing.T) {
	lin, err := Certify(impotentWriteTrace())
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(lin)
	for _, want := range []string{
		"linearization of 3 operations",
		"impotent write",
		"prefinished by op 2",
		"reads from op 0",
		"potent write",
		"classification:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output lacks %q:\n%s", want, out)
		}
	}
}

func TestExplainReadOfInitial(t *testing.T) {
	tr := potentWriteTrace()
	tr.Writes = nil
	tr.Reads[0].Ret = "v0"
	lin, err := Certify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out := Explain(lin); !strings.Contains(out, "reads the initial value") {
		t.Errorf("Explain output lacks initial-value note:\n%s", out)
	}
}

// TestKeyLessIsStrictTotalOrder property-checks Key.Less: irreflexive,
// asymmetric, transitive, and total (trichotomy).
func TestKeyLessIsStrictTotalOrder(t *testing.T) {
	type triple struct {
		A1, A2, A3 int16
		R1, R2, R3 int8
		T1, T2, T3 int16
	}
	mk := func(a int16, r int8, tie int16) Key {
		return Key{Anchor: int64(a), Rank: r % 3, Tie: int32(tie)}
	}
	f := func(tr triple) bool {
		a, b, c := mk(tr.A1, tr.R1, tr.T1), mk(tr.A2, tr.R2, tr.T2), mk(tr.A3, tr.R3, tr.T3)
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		// Trichotomy.
		if a != b && !a.Less(b) && !b.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
