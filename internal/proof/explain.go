package proof

import (
	"fmt"
	"strings"
)

// Explain renders a linearization as a human-readable listing: one line
// per operation in *-action order, with its classification and, for
// impotent writes, the prefinisher relationship. Used by cmd/trace and in
// test failure output.
func Explain[V comparable](lin *Linearization[V]) string {
	var b strings.Builder
	fmt.Fprintf(&b, "linearization of %d operations (initial value %v):\n", len(lin.Ops), lin.Init)
	for i, op := range lin.Ops {
		kind := "R"
		if op.IsWrite {
			kind = "W"
		}
		fmt.Fprintf(&b, "%3d. %s op %d on channel %d = %v  [%s, anchored at γ stamp %d",
			i+1, kind, op.OpID, op.Chan, op.Val, op.Class, op.Key.Anchor)
		if op.Class == ImpotentWrite {
			if pf, ok := lin.Report.Prefinisher[op.OpID]; ok {
				fmt.Fprintf(&b, ", prefinished by op %d", pf)
			}
		}
		if !op.IsWrite && op.ReadsFrom >= 0 {
			fmt.Fprintf(&b, ", reads from op %d", op.ReadsFrom)
		}
		if !op.IsWrite && op.ReadsFrom < 0 {
			b.WriteString(", reads the initial value")
		}
		b.WriteString("]\n")
	}
	fmt.Fprintf(&b, "classification: %d potent + %d impotent writes; %d/%d/%d reads of potent/impotent/initial; %d writes and %d reads dropped (crashed)\n",
		lin.Report.PotentWrites, lin.Report.ImpotentWrites,
		lin.Report.ReadsOfPotent, lin.Report.ReadsOfImp, lin.Report.ReadsOfInitial,
		lin.Report.DroppedWrites, lin.Report.DroppedReads)
	return b.String()
}
