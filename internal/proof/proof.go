// Package proof implements Section 7 of Bloom (PODC 1987) as an executable
// algorithm: a certifying linearizer for the two-writer protocol.
//
// The paper's correctness proof is constructive. Given a schedule γ that
// includes the *-actions of the real registers, it classifies simulated
// writes as potent or impotent, finds each impotent write's prefinisher,
// and inserts a *-action for every simulated operation in four steps:
//
//	Step 1: a potent write's *-action goes immediately after its real
//	        write; an impotent write's goes immediately before its
//	        prefinisher's *-action.
//	Step 2: a read of a potent write W goes immediately after the later
//	        of its first real read and W's *-action.
//	Step 3: a read of an impotent write W0 goes immediately after W0's
//	        *-action.
//	Step 4: a read of the initial value goes immediately after its
//	        second real read.
//
// Certify executes exactly these steps on a recorded core.Trace and then
// *validates* the result against the register property, so every
// successful call yields a machine-checked witness that the run was atomic
// — in near-linear time, unlike the exponential search in package
// atomicity. The paper's Lemmas 1, 2, 4 and 6 become runtime-checked
// invariants; any protocol or substrate bug surfaces as a certification
// error with a description of the violated lemma.
package proof

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/history"
)

// Class labels an operation's role in the Section 7 case analysis.
type Class uint8

// Operation classes, in the order Section 7 processes them.
const (
	// PotentWrite is a write after whose real write the mod-2 sum of
	// the tag bits equals the writer's index.
	PotentWrite Class = iota + 1
	// ImpotentWrite is a write that is not potent; it has a unique
	// potent prefinisher (Lemmas 1 and 2).
	ImpotentWrite
	// ReadOfPotent is a read returning a potent write's value.
	ReadOfPotent
	// ReadOfImpotent is a read returning an impotent write's value.
	ReadOfImpotent
	// ReadOfInitial is a read returning the initial value v0.
	ReadOfInitial
)

// String returns the class name as used in the paper.
func (c Class) String() string {
	switch c {
	case PotentWrite:
		return "potent write"
	case ImpotentWrite:
		return "impotent write"
	case ReadOfPotent:
		return "read of potent write"
	case ReadOfImpotent:
		return "read of impotent write"
	case ReadOfInitial:
		return "read of initial value"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Rank orders *-actions that share an anchor event, implementing the
// paper's "immediately before/after" placements: at the real write of a
// potent write P, the order is
//
//	real write of P  <  impotent write chained to P (rank -2)
//	                 <  reads of that impotent write (rank -1)
//	                 <  P itself (rank 0)
//	                 <  reads of P anchored here (rank +1)
const (
	rankImpotent     = -2
	rankReadImpotent = -1
	rankPotent       = 0
	rankReadAfter    = 1
)

// Key is a *-action position: immediately after the γ event with stamp
// Anchor, sub-ordered by Rank and then Tie. Keys order lexicographically.
type Key struct {
	Anchor int64
	Rank   int8
	Tie    int32
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.Anchor != o.Anchor {
		return k.Anchor < o.Anchor
	}
	if k.Rank != o.Rank {
		return k.Rank < o.Rank
	}
	return k.Tie < o.Tie
}

// Op is one simulated operation with its assigned *-action.
type Op[V comparable] struct {
	// OpID identifies the operation in the trace's external history.
	OpID int
	// Chan is the operation's channel.
	Chan history.ProcID
	// IsWrite distinguishes writes from reads.
	IsWrite bool
	// Val is the value written or returned.
	Val V
	// Class is the Section 7 case the operation fell into.
	Class Class
	// Key is the assigned *-action position.
	Key Key
	// Inv and Res delimit the operation (Res is history.PendingSeq for
	// a crashed write that nevertheless took effect).
	Inv, Res int64
	// ReadsFrom is the OpID of the write this read returns, or -1 for
	// reads of the initial value. Unused (-1) for writes.
	ReadsFrom int
}

// Linearization is a validated witness: the operations in *-action order.
type Linearization[V comparable] struct {
	// Ops is sorted by Key; replaying it satisfies the register
	// property starting from Init.
	Ops []Op[V]
	// Init is the initial value v0.
	Init V
	// Report summarizes the classification.
	Report Report
}

// Report counts the Section 7 cases and records the prefinisher mapping.
type Report struct {
	PotentWrites   int
	ImpotentWrites int
	ReadsOfPotent  int
	ReadsOfImp     int
	ReadsOfInitial int
	DroppedWrites  int // crashed before their real write: never occurred
	DroppedReads   int // crashed reads: returned nothing
	// Prefinisher maps each impotent write's OpID to its prefinisher's
	// OpID (Lemma 1: the mapping is total and unique).
	Prefinisher map[int]int
}

// ErrUnstamped is returned when the trace lacks real-access stamps (the
// substrate does not implement register.Stamped), so γ cannot be
// reconstructed.
var ErrUnstamped = errors.New("proof: trace has no real-access stamps; use a stamped substrate or the exhaustive checker")

// realWrite is one effective real write in γ.
type realWrite[V comparable] struct {
	seq  int64
	reg  int
	tag  uint8
	val  V
	opID int
	idx  int // index into trace.Writes
}

type certifier[V comparable] struct {
	t      core.Trace[V]
	byReg  [2][]realWrite[V] // real writes per register, sorted by seq
	potent map[int]bool      // write OpID → potency
	prefin map[int]int       // impotent write OpID → prefinisher write index (into t.Writes)
	wByID  map[int]int       // write OpID → index into t.Writes
}

// Certify runs the Section 7 construction on tr and validates the result.
// On success the returned linearization is a machine-checked atomicity
// witness for the run; on failure the error pinpoints the violated
// coherence condition or lemma.
func Certify[V comparable](tr core.Trace[V]) (*Linearization[V], error) {
	c := &certifier[V]{
		t:      tr,
		potent: make(map[int]bool),
		prefin: make(map[int]int),
		wByID:  make(map[int]int),
	}
	if err := c.checkCoherence(); err != nil {
		return nil, err
	}
	c.collectRealWrites()
	if err := c.classifyWrites(); err != nil {
		return nil, err
	}
	lin, err := c.place()
	if err != nil {
		return nil, err
	}
	if err := Validate(lin); err != nil {
		return nil, err
	}
	return lin, nil
}

// checkCoherence verifies that the trace is self-consistent before any
// proof steps run: stamps are present, distinct, and ordered within each
// operation, and the tags every read observed match the register contents
// that the recorded real writes imply.
func (c *certifier[V]) checkCoherence() error {
	seen := make(map[int64]string)
	record := func(seq int64, what string) error {
		if seq == 0 {
			return fmt.Errorf("%w (%s)", ErrUnstamped, what)
		}
		if prev, dup := seen[seq]; dup {
			return fmt.Errorf("proof: stamp %d reused by %s and %s", seq, prev, what)
		}
		seen[seq] = what
		return nil
	}
	for i, w := range c.t.Writes {
		c.wByID[w.OpID] = i
		name := fmt.Sprintf("write op %d", w.OpID)
		if w.DidRead {
			if err := record(w.ReadSeq, name+" real read"); err != nil {
				return err
			}
			if w.ReadSeq <= w.InvokeSeq {
				return fmt.Errorf("proof: %s real read at %d not after invocation %d", name, w.ReadSeq, w.InvokeSeq)
			}
		}
		if w.DidWrite {
			if !w.DidRead {
				return fmt.Errorf("proof: %s wrote without reading", name)
			}
			if err := record(w.WriteSeq, name+" real write"); err != nil {
				return err
			}
			if w.WriteSeq <= w.ReadSeq {
				return fmt.Errorf("proof: %s real write at %d not after real read at %d", name, w.WriteSeq, w.ReadSeq)
			}
			if !w.Crashed && w.RespondSeq <= w.WriteSeq {
				return fmt.Errorf("proof: %s acknowledged at %d before its real write at %d", name, w.RespondSeq, w.WriteSeq)
			}
			want := uint8(w.Writer) ^ w.ReadTag
			if w.WriteTag != want {
				return fmt.Errorf("proof: %s wrote tag %d, protocol requires i⊕t' = %d", name, w.WriteTag, want)
			}
		}
		if w.Writer != 0 && w.Writer != 1 {
			return fmt.Errorf("proof: %s has writer index %d", name, w.Writer)
		}
	}
	for _, r := range c.t.Reads {
		name := fmt.Sprintf("read op %d", r.OpID)
		if r.Crashed {
			continue
		}
		for _, s := range []struct {
			seq  int64
			what string
		}{{r.R0Seq, " read of Reg0"}, {r.R1Seq, " read of Reg1"}, {r.R2Seq, " final read"}} {
			if err := record(s.seq, name+s.what); err != nil {
				return err
			}
		}
		if !(r.InvokeSeq < r.R0Seq && r.R0Seq < r.R1Seq && r.R1Seq < r.R2Seq && r.R2Seq < r.RespondSeq) {
			return fmt.Errorf("proof: %s stamps not ordered: inv %d, reads %d %d %d, resp %d",
				name, r.InvokeSeq, r.R0Seq, r.R1Seq, r.R2Seq, r.RespondSeq)
		}
		if want := int(r.T0 ^ r.T1); r.R2Reg != want {
			return fmt.Errorf("proof: %s final read targeted Reg%d, protocol requires t0⊕t1 = %d", name, r.R2Reg, want)
		}
	}
	return nil
}

func (c *certifier[V]) collectRealWrites() {
	for i, w := range c.t.Writes {
		if !w.DidWrite {
			continue
		}
		c.byReg[w.Writer] = append(c.byReg[w.Writer], realWrite[V]{
			seq: w.WriteSeq, reg: w.Writer, tag: w.WriteTag, val: w.Val, opID: w.OpID, idx: i,
		})
	}
	for r := 0; r < 2; r++ {
		sort.Slice(c.byReg[r], func(i, j int) bool { return c.byReg[r][i].seq < c.byReg[r][j].seq })
	}
}

// contentAt returns the content of real register reg immediately after
// time seq: the last real write to reg with stamp ≤ seq, or the initial
// content (v0, tag 0).
func (c *certifier[V]) contentAt(reg int, seq int64) (core.Tagged[V], *realWrite[V]) {
	ws := c.byReg[reg]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].seq > seq })
	if i == 0 {
		return core.Tagged[V]{Val: c.t.Init, Tag: 0}, nil
	}
	w := &ws[i-1]
	return core.Tagged[V]{Val: w.val, Tag: w.tag}, w
}
