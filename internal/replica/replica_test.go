package replica_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/history"
	"repro/internal/linz"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/wire"
)

// cluster is an m-replica test fixture: independent stores, one server
// each, with a per-replica journal.
type cluster struct {
	addrs    []string
	servers  []*netreg.Server
	journals []*obs.Journal
}

func startCluster(t *testing.T, m int, initial string) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < m; i++ {
		st, err := netreg.NewStore(initial, 1, new(history.Sequencer))
		if err != nil {
			t.Fatal(err)
		}
		j := obs.NewJournal()
		srv, err := netreg.Serve("127.0.0.1:0", st, netreg.WithJournal(j))
		if err != nil {
			t.Fatal(err)
		}
		c.addrs = append(c.addrs, srv.Addr())
		c.servers = append(c.servers, srv)
		c.journals = append(c.journals, j)
	}
	t.Cleanup(func() {
		for _, srv := range c.servers {
			srv.Close()
		}
	})
	return c
}

// kill permanently crashes replica i: the listener closes and every live
// connection is severed; nothing restarts it.
func (c *cluster) kill(i int) { c.servers[i].Close() }

func fastOpts() []netreg.DialOption {
	return []netreg.DialOption{
		netreg.WithTimeout(300 * time.Millisecond),
		netreg.WithRetry(netreg.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}),
	}
}

// fastTimeout is the engine phase timeout the in-process tests run with:
// long enough that a local round trip never trips it, short enough that
// failure tests stay fast.
const fastTimeout = 300 * time.Millisecond

// TestQuorumModesReadWrite drives each protocol variant through writes
// and reads on a healthy cluster: reads return the latest written value
// and stamps never regress.
func TestQuorumModesReadWrite(t *testing.T) {
	for _, mode := range []replica.Mode{replica.ModeABD, replica.ModeFast, replica.ModeFrugal} {
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, 3, "v0")
			q, err := replica.Dial(c.addrs, replica.Options{Mode: mode, WriterID: 1, Timeout: fastTimeout})
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()

			var lastTS int64
			var lastWID uint32
			for k := 0; k < 10; k++ {
				want, _ := json.Marshal(fmt.Sprintf("v%d", k+1))
				ts, wid, err := q.WriteStamped(want)
				if err != nil {
					t.Fatalf("write %d: %v", k, err)
				}
				if !stampAfter(ts, wid, lastTS, lastWID) {
					t.Fatalf("write %d stamp (%d,%d) not after (%d,%d)", k, ts, wid, lastTS, lastWID)
				}
				lastTS, lastWID = ts, wid
				got, rts, rwid, err := q.ReadStamped()
				if err != nil {
					t.Fatalf("read %d: %v", k, err)
				}
				if string(got) != string(want) {
					t.Fatalf("read %d = %s, want %s", k, got, want)
				}
				if rts != lastTS || rwid != lastWID {
					t.Fatalf("read %d stamp (%d,%d), want (%d,%d)", k, rts, rwid, lastTS, lastWID)
				}
			}
		})
	}
}

func stampAfter(ts int64, wid uint32, ts2 int64, wid2 uint32) bool {
	return ts > ts2 || (ts == ts2 && wid > wid2)
}

// TestFastPathOneRound pins the ModeFast contract: once every replica
// agrees on (ts, wid), a read completes in one round; while any replica
// lags, the read pays the write-back.
func TestFastPathOneRound(t *testing.T) {
	c := startCluster(t, 3, "v0")
	tally := obs.NewReplica(3)
	q, err := replica.Dial(c.addrs, replica.Options{Mode: replica.ModeFast, WriterID: 1, Tally: tally, Timeout: fastTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	val, _ := json.Marshal("converged")
	ts, wid, err := q.WriteStamped(val)
	if err != nil {
		t.Fatal(err)
	}

	// Force-converge every replica (a logical write only reaches a
	// majority), then the fast path is deterministic.
	for _, addr := range c.addrs {
		cl, err := netreg.Dial[json.RawMessage](addr, fastOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Do(&wire.Request{Op: "qwrite", TS: ts, WID: wid, Val: val}); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}

	got, err := q.Read()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(val) {
		t.Fatalf("fast read = %s, want %s", got, val)
	}
	if f := tally.Fast(obs.QRead); f != 1 {
		t.Errorf("fast-path reads = %d, want 1 (converged cluster must take the one-round path)", f)
	}
	if r := tally.Rounds(obs.QRead); r != 1 {
		t.Errorf("read rounds = %d, want 1", r)
	}
}

// TestFrugalBytes measures the point of ModeFrugal: at large values its
// reads move far fewer bytes than plain ABD, because phase-1 queries
// carry timestamps only and the value ships once, not m ways.
func TestFrugalBytes(t *testing.T) {
	c := startCluster(t, 3, "v0")
	big := make([]byte, 16<<10)
	for i := range big {
		big[i] = 'a' + byte(i%26)
	}
	val, _ := json.Marshal(string(big))

	read := func(mode replica.Mode) int64 {
		ws := obs.NewWire()
		q, err := replica.Dial(c.addrs, replica.Options{Mode: mode, WriterID: 7, Timeout: fastTimeout, Wire: ws})
		if err != nil {
			t.Fatal(err)
		}
		defer q.Close()
		if err := q.Write(val); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			if _, err := q.Read(); err != nil {
				t.Fatal(err)
			}
		}
		in, _ := ws.Bytes()
		return in
	}

	abd := read(replica.ModeABD)
	frugal := read(replica.ModeFrugal)
	if frugal*2 >= abd {
		t.Errorf("frugal reads pulled %d bytes vs ABD's %d; want less than half", frugal, abd)
	}
}

// TestCrashSoakQuorumAtomic is the tentpole acceptance test, meant for
// -race: an m=5 cluster with a seeded kill plan crashing f=2 replicas
// permanently mid-stream while writers and readers (one per mode) hammer
// the register. Every logical operation must keep succeeding, stamps
// must never regress per client, and the merged per-replica journals
// plus the quorum clients' logical journal must certify atomic online.
func TestCrashSoakQuorumAtomic(t *testing.T) {
	const (
		m            = 5
		f            = 2
		opsPerClient = 60
	)
	c := startCluster(t, m, "v0")
	initJSON, _ := json.Marshal("v0")

	qj := obs.NewJournal()
	tally := obs.NewReplica(m)

	parts := []linz.JournalPart{{J: qj, Prefix: "q/"}}
	for i, j := range c.journals {
		parts = append(parts, linz.JournalPart{J: j, Prefix: fmt.Sprintf("r%d/", i)})
	}
	lt := obs.NewLinz()
	ol := linz.NewOnlineParts(parts, linz.OnlineOptions{Interval: 10 * time.Millisecond, Tally: lt})
	for _, p := range parts {
		ol.SetInit(p.Prefix, obs.HashVal(initJSON))
	}
	ol.Start()

	// A generous phase timeout rides out the kill transients; the engine
	// turns a dead replica's connection into instant local failures while
	// its redial loop backs off, so a crash costs one timeout, not one per
	// exchange.
	modes := []replica.Mode{replica.ModeABD, replica.ModeFast, replica.ModeFrugal, replica.ModeABD}
	clients := make([]*replica.QClient, len(modes))
	for i, mode := range modes {
		q, err := replica.Dial(c.addrs, replica.Options{
			Mode: mode, WriterID: uint32(i + 1), Journal: qj, Tally: tally,
			Timeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = q
	}

	kills := faultnet.PlanKills(20260808, m, f, 250*time.Millisecond)
	var killed sync.Map
	stop := faultnet.Schedule(kills, func(r int) {
		killed.Store(r, true)
		c.kill(r)
	})
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	for i, q := range clients {
		wg.Add(1)
		go func(i int, q *replica.QClient) {
			defer wg.Done()
			writer := i%2 == 0 // clients 0 and 2 write, 1 and 3 read
			var lastTS int64
			var lastWID uint32
			for k := 0; k < opsPerClient; k++ {
				var ts int64
				var wid uint32
				var err error
				if writer {
					v, _ := json.Marshal(fmt.Sprintf("c%d-%d", i, k))
					ts, wid, err = q.WriteStamped(v)
				} else {
					_, ts, wid, err = q.ReadStamped()
				}
				if err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", i, k, err)
					return
				}
				if ts < lastTS || (ts == lastTS && wid < lastWID) {
					errs <- fmt.Errorf("client %d op %d: stamp regressed (%d,%d) -> (%d,%d)", i, k, lastTS, lastWID, ts, wid)
					return
				}
				lastTS, lastWID = ts, wid
				time.Sleep(2 * time.Millisecond)
			}
			errs <- nil
		}(i, q)
	}
	wg.Wait()
	for range clients {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	stop()

	// The soak must actually have crashed replicas mid-stream.
	nKilled := 0
	killed.Range(func(_, _ any) bool { nKilled++; return true })
	if nKilled != f {
		t.Errorf("%d replicas killed, want %d", nKilled, f)
	}

	// Close all producers so the final sweep checks the full tail, then
	// demand a clean verdict over every journal at once.
	for _, q := range clients {
		q.Close()
	}
	for _, srv := range c.servers {
		srv.Close()
	}
	ol.Stop()
	if fl := ol.FirstFailure(); fl != nil {
		t.Fatalf("merged journals failed certification: %+v", fl)
	}
	if ol.Windows() == 0 {
		t.Fatal("checker never checked a window; the soak certified nothing")
	}
	if qj.Drops() != 0 {
		t.Errorf("client journal dropped %d records; certification incomplete", qj.Drops())
	}
	if tally.NoQuorum(obs.QRead)+tally.NoQuorum(obs.QWrite) != 0 {
		t.Errorf("quorum lost during f<m/2 soak: %d read / %d write no-quorum failures",
			tally.NoQuorum(obs.QRead), tally.NoQuorum(obs.QWrite))
	}
}

// TestNoQuorumFailsFast kills a majority: every logical operation must
// fail with ErrNoQuorum — visible as netreg.ErrUnavailable to transport-
// level tests — in bounded time, never hang.
func TestNoQuorumFailsFast(t *testing.T) {
	c := startCluster(t, 3, "v0")
	q, err := replica.Dial(c.addrs, replica.Options{WriterID: 1, Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	if err := q.Write(json.RawMessage(`"pre"`)); err != nil {
		t.Fatal(err)
	}
	c.kill(0)
	c.kill(1)

	start := time.Now()
	_, rerr := q.Read()
	werr := q.Write(json.RawMessage(`"post"`))
	elapsed := time.Since(start)

	for _, err := range []error{rerr, werr} {
		if err == nil {
			t.Fatal("operation succeeded without a quorum")
		}
		if !errors.Is(err, replica.ErrNoQuorum) {
			t.Errorf("error does not identify as ErrNoQuorum: %v", err)
		}
		if !errors.Is(err, netreg.ErrUnavailable) {
			t.Errorf("error does not identify as netreg.ErrUnavailable: %v", err)
		}
	}
	// Quorum loss must be a fast failure (retry budget + breaker), not a
	// hang: well under the several-second hang a lost phase would cost.
	if elapsed > 5*time.Second {
		t.Errorf("no-quorum failure took %v; want fast failure", elapsed)
	}
}
