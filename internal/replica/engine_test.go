package replica_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/history"
	"repro/internal/linz"
	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/replica"
)

// TestCombinedReadsCertify is the combining correctness test: concurrent
// same-key reads on one QClient share in-flight quorum queries (a seeded
// slow-link plan keeps the dispatcher busy so readers actually pile onto
// leaders), every logical op journals exactly once, and the merged
// client + replica journals certify atomic online — a follower's
// borrowed (Inv, Res) interval must be as sound as a round of its own.
func TestCombinedReadsCertify(t *testing.T) {
	const (
		m         = 3
		readers   = 6
		readsEach = 25
		writes    = 15
	)
	c := startCluster(t, m, "v0")
	initJSON, _ := json.Marshal("v0")

	qj := obs.NewJournal()
	tally := obs.NewReplica(m)

	parts := []linz.JournalPart{{J: qj, Prefix: "q/"}}
	for i, j := range c.journals {
		parts = append(parts, linz.JournalPart{J: j, Prefix: fmt.Sprintf("r%d/", i)})
	}
	ol := linz.NewOnlineParts(parts, linz.OnlineOptions{Interval: 10 * time.Millisecond})
	for _, p := range parts {
		ol.SetInit(p.Prefix, obs.HashVal(initJSON))
	}
	ol.Start()

	// Every socket operation pays a fixed delay: while a flush (or a
	// response read) sleeps, newly arriving reads join the unsealed
	// leader's query instead of running their own — the deterministic way
	// to open the combining window wide.
	plan := &faultnet.Plan{Seed: 20260808, Delay: 2 * time.Millisecond, DelayProb: 1}

	qr, err := replica.Dial(c.addrs, replica.Options{
		Mode: replica.ModeABD, WriterID: 2, Journal: qj, Tally: tally,
		Timeout: 2 * time.Second, Dialer: plan.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	qw, err := replica.Dial(c.addrs, replica.Options{
		Mode: replica.ModeABD, WriterID: 1, Journal: qj, Tally: tally,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < writes; k++ {
			v, _ := json.Marshal(fmt.Sprintf("w%d", k))
			if err := qw.Write(v); err != nil {
				errs <- fmt.Errorf("write %d: %w", k, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		errs <- nil
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastTS int64
			var lastWID uint32
			for k := 0; k < readsEach; k++ {
				_, ts, wid, err := qr.ReadStamped()
				if err != nil {
					errs <- fmt.Errorf("reader %d op %d: %w", r, k, err)
					return
				}
				if ts < lastTS || (ts == lastTS && wid < lastWID) {
					errs <- fmt.Errorf("reader %d op %d: stamp regressed (%d,%d) -> (%d,%d)",
						r, k, lastTS, lastWID, ts, wid)
					return
				}
				lastTS, lastWID = ts, wid
			}
			errs <- nil
		}(r)
	}
	wg.Wait()
	for i := 0; i < readers+1; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}

	if combined := tally.Combined(obs.QRead); combined == 0 {
		t.Error("no read combined despite concurrent readers over a slow link")
	} else {
		t.Logf("combined %d of %d reads", combined, readers*readsEach)
	}

	// Close producers so the final sweep certifies the full tail.
	qr.Close()
	qw.Close()
	for _, srv := range c.servers {
		srv.Close()
	}
	ol.Stop()
	if fl := ol.FirstFailure(); fl != nil {
		t.Fatalf("merged journals failed certification: %+v", fl)
	}
	if ol.Windows() == 0 {
		t.Fatal("checker never checked a window")
	}
	if qj.Drops() != 0 {
		t.Errorf("client journal dropped %d records", qj.Drops())
	}
	// Exactly-once accounting: a combined read must journal once — never
	// zero (its interval would vanish from the certified history), never
	// twice (a leader delivering to a follower must not also journal for
	// it).
	wantOps := int64(readers*readsEach + writes)
	if got := ol.PartOps("q/"); got != wantOps {
		t.Errorf("client journal drained %d logical ops, want exactly %d", got, wantOps)
	}
}

// TestElisionKeepsInversionGuard is the write-back-elision regression:
// an elided read is only legal because a quorum already acked the
// candidate stamp, so a fresh client's read after an elided read must
// still return a stamp at least that new — eliding must never reopen the
// new-old inversion ABD's write-back exists to close.
func TestElisionKeepsInversionGuard(t *testing.T) {
	const m = 3
	stores := make([]*netreg.Store, m)
	servers := make([]*netreg.Server, m)
	addrs := make([]string, m)
	for i := 0; i < m; i++ {
		st, err := netreg.NewStore("v0", 1, new(history.Sequencer))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := netreg.Serve("127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		stores[i], servers[i], addrs[i] = st, srv, srv.Addr()
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	tally := obs.NewReplica(m)
	a, err := replica.Dial(addrs, replica.Options{
		Mode: replica.ModeFast, WriterID: 1, Tally: tally, Timeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	v1, _ := json.Marshal("settled")
	if err := a.Write(v1); err != nil {
		t.Fatal(err)
	}

	// Crash replica 2, write v2 — the quorum {0, 1} acks (ts2, 1) and the
	// client's watermark rises to it while replica 2 stays behind — then
	// restart replica 2 on its surviving store at the same address.
	servers[2].Close()
	v2, _ := json.Marshal("elided-candidate")
	ts2, wid2, err := a.WriteStamped(v2)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := netreg.Serve(addrs[2], stores[2])
	if err != nil {
		t.Fatal(err)
	}
	servers[2] = srv2

	// Once the engine has redialed replica 2, reads see a disagreeing
	// majority — (ts2, 1) twice, the stale stamp once — whose maximum the
	// watermark covers: the write-back is elided and replica 2 is
	// deliberately never repaired by this client.
	deadline := time.Now().Add(5 * time.Second)
	for tally.Elided(obs.QRead) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no read elided its write-back after replica 2 rejoined stale")
		}
		got, ts, wid, err := a.ReadStamped()
		if err != nil {
			t.Fatal(err)
		}
		if ts != ts2 || wid != wid2 || string(got) != string(v2) {
			t.Fatalf("read = %s (%d,%d), want %s (%d,%d)", got, ts, wid, v2, ts2, wid2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The guard: a FRESH client — no watermark, no combining history —
	// must read at least (ts2, wid2). Its query majority intersects the
	// {0, 1} quorum that acked the candidate, so anything older is a
	// new-old inversion the elision would have caused.
	b, err := replica.Dial(addrs, replica.Options{
		Mode: replica.ModeABD, WriterID: 9, Timeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, ts, wid, err := b.ReadStamped()
	if err != nil {
		t.Fatal(err)
	}
	if ts < ts2 || (ts == ts2 && wid < wid2) {
		t.Fatalf("fresh client read stamp (%d,%d) older than elided candidate (%d,%d): new-old inversion",
			ts, wid, ts2, wid2)
	}
	if ts == ts2 && wid == wid2 && string(got) != string(v2) {
		t.Fatalf("fresh client read %s under stamp (%d,%d), want %s", got, ts, wid, v2)
	}
}

// stalledServer accepts connections and reads every byte without ever
// answering: the pathological replica that takes requests and goes
// silent. Close stops the listener and severs every connection.
type stalledServer struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup
}

func newStalledServer(t *testing.T) *stalledServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stalledServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	return s
}

func (s *stalledServer) Close() {
	s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// TestStalledReplicaBoundsGoroutines is the straggler-retirement
// regression from the PR 9 audit: with one replica accepting requests
// but never answering, quorum operations must keep completing off the
// live majority AND the process goroutine count must stay flat — the
// engine retires stragglers by failing the silent connection on a read
// deadline, it never parks a goroutine per abandoned exchange.
func TestStalledReplicaBoundsGoroutines(t *testing.T) {
	const ops = 200
	c := startCluster(t, 2, "v0")
	stalled := newStalledServer(t)
	defer stalled.Close()
	addrs := append(append([]string(nil), c.addrs...), stalled.ln.Addr().String())

	base := runtime.NumGoroutine()
	q, err := replica.Dial(addrs, replica.Options{
		Mode: replica.ModeABD, WriterID: 1, Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	val, _ := json.Marshal("steady")
	var buf []byte
	for k := 0; k < ops; k++ {
		if err := q.Write(val); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
		if buf, _, _, err = q.ReadInto(buf); err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
	}

	// Steady state holds 2 goroutines per replica connection (dispatcher
	// + reader) plus redial transients; a per-op or per-exchange leak at
	// 400 ops × 3 replicas would dwarf the slack.
	if g := runtime.NumGoroutine(); g > base+20 {
		t.Errorf("goroutines grew %d -> %d during %d ops against a stalled replica", base, g, 2*ops)
	}

	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base+4 {
		t.Errorf("goroutines did not drain after Close: %d -> %d", base, g)
	}
}

// TestQuorumErrorCauses pins satellite 1: a no-quorum failure names every
// replica's last transport error, reachable both through the rendered
// message and through errors.Is/As over the wrapped cause list.
func TestQuorumErrorCauses(t *testing.T) {
	c := startCluster(t, 3, "v0")
	q, err := replica.Dial(c.addrs, replica.Options{WriterID: 1, Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := q.Write(json.RawMessage(`"pre"`)); err != nil {
		t.Fatal(err)
	}
	c.kill(0)
	c.kill(1)

	_, err = q.Read()
	if err == nil {
		t.Fatal("read succeeded without a quorum")
	}
	var qe *replica.QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("error is %T, want *replica.QuorumError", err)
	}
	if qe.Replicas != 3 || qe.Quorum != 2 {
		t.Errorf("QuorumError cluster shape = %d/%d, want 3/2", qe.Quorum, qe.Replicas)
	}
	if len(qe.Causes()) == 0 {
		t.Error("QuorumError carries no per-replica causes")
	}
	for _, target := range []error{replica.ErrNoQuorum, netreg.ErrUnavailable} {
		if !errors.Is(err, target) {
			t.Errorf("errors.Is(%v) = false", target)
		}
	}
}
