package replica

import "strings"

// QuorumError is the failure a logical operation returns when no
// majority of replicas answered, carrying the per-replica causes so a
// dead-majority diagnosis reads straight off the error instead of
// requiring the obs counters. It is errors.Is-compatible with both
// ErrNoQuorum and netreg.ErrUnavailable (the first unwrap target is
// ErrNoQuorum, which itself wraps netreg.ErrUnavailable).
type QuorumError struct {
	// Replicas is the cluster size, Quorum the majority the phase needed.
	Replicas int
	Quorum   int

	// causes[0] is ErrNoQuorum; the rest attribute the most recent
	// transport error seen per failed replica ("replica 2: ...: EOF").
	causes []error
}

// Error renders the failure with every per-replica cause.
func (e *QuorumError) Error() string {
	var b strings.Builder
	b.WriteString(ErrNoQuorum.Error())
	if len(e.causes) > 1 {
		b.WriteString(" (")
		for i, c := range e.causes[1:] {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(c.Error())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Unwrap exposes ErrNoQuorum plus the per-replica causes to errors.Is /
// errors.As.
func (e *QuorumError) Unwrap() []error { return e.causes }

// Causes returns the per-replica cause list (without the leading
// ErrNoQuorum sentinel).
func (e *QuorumError) Causes() []error {
	if len(e.causes) <= 1 {
		return nil
	}
	return e.causes[1:]
}
