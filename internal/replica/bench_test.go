package replica_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/netreg"
	"repro/internal/replica"
)

// benchCluster starts an in-process m-replica cluster for the allocation
// benchmarks: no journals, no wire stats — nothing that isn't the quorum
// path itself.
func benchCluster(b *testing.B, m int) []string {
	b.Helper()
	var addrs []string
	for i := 0; i < m; i++ {
		st, err := netreg.NewStore("v0", 1, new(history.Sequencer))
		if err != nil {
			b.Fatal(err)
		}
		srv, err := netreg.Serve("127.0.0.1:0", st)
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, srv.Addr())
		b.Cleanup(func() { srv.Close() })
	}
	return addrs
}

// benchClient dials a quorum client for the benchmarks and warms the
// engine: the record pool, the per-connection rings, and the value
// buffers all reach steady state before the measured loop, so the
// reported allocs/op is the steady-state figure the allocs gate enforces
// (zero).
func benchClient(b *testing.B, mode replica.Mode, warm []byte) *replica.QClient {
	b.Helper()
	addrs := benchCluster(b, 3)
	q, err := replica.Dial(addrs, replica.Options{Mode: mode, WriterID: 1, Timeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { q.Close() })
	var buf []byte
	for i := 0; i < 100; i++ {
		if err := q.Write(warm); err != nil {
			b.Fatal(err)
		}
		if buf, _, _, err = q.ReadInto(buf); err != nil {
			b.Fatal(err)
		}
	}
	return q
}

// BenchmarkQuorumRead is the engine's steady-state read path: ReadInto
// with a caller-owned buffer over a warm 3-replica cluster. CI gates this
// at 0 allocs/op — the runtime counterpart of //bloom:noalloc on the
// path.
func BenchmarkQuorumRead(b *testing.B) {
	val, _ := json.Marshal("bench-value")
	for _, mode := range []replica.Mode{replica.ModeABD, replica.ModeFast, replica.ModeFrugal} {
		b.Run(mode.String(), func(b *testing.B) {
			q := benchClient(b, mode, val)
			var buf []byte
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf, _, _, err = q.ReadInto(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuorumWrite is the engine's steady-state write path: two
// quorum phases per op, gated at 0 allocs/op like the read.
func BenchmarkQuorumWrite(b *testing.B) {
	val, _ := json.Marshal("bench-value")
	q := benchClient(b, replica.ModeABD, val)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Write(val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuorumReadLegacy measures the PR 9 per-op-goroutine client on
// the same workload, the baseline the bloombench -replica gate holds the
// engine to (>= 2x at one-core saturation).
func BenchmarkQuorumReadLegacy(b *testing.B) {
	val, _ := json.Marshal("bench-value")
	addrs := benchCluster(b, 3)
	q, err := replica.DialLegacy(addrs, replica.Options{Mode: replica.ModeABD, WriterID: 1},
		netreg.WithTimeout(time.Second))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { q.Close() })
	if err := q.Write(val); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
