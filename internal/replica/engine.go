// The quorum engine: a persistent, zero-allocation transport for the
// QClient's phases. PR 9's client fanned every phase out by spawning m
// goroutines and collecting replies on a fresh buffered channel — per
// logical op that is 2×(m spawns + a garbage chan + boxed requests) over
// a wire layer that is itself alloc-free. The engine inverts the shape:
// each replica gets ONE long-lived dispatcher goroutine fed by a
// mutex-light submission ring (a buffered channel of by-value items) and
// ONE reader goroutine per connection generation; per-op state lives in
// pooled records recycled through a freelist; majority completion is an
// ack counter plus a per-op doorbell channel. Steady-state reads and
// writes spawn nothing and allocate nothing — proven statically by
// //bloom:noalloc on the hot path and at runtime by the allocs gate on
// BenchmarkQuorumRead/BenchmarkQuorumWrite.
//
// # Lifecycle of one phase
//
// runPhase retags the op's pooled record (invalidating any straggler
// acks from earlier phases), pushes one subItem per target connection,
// and sleeps on the record's doorbell with a deadline. Each dispatcher
// dequeues the item, appends the frame to its connection's write buffer,
// pushes the request id onto the connection's pending conveyor, and
// flushes in netreg-style spin-batched bursts. The reader correlates
// responses to conveyor entries and acks the record: merge the reply's
// (ts, wid, value) under the record's mutex, bump the ok counter, and on
// crossing the quorum ring the doorbell exactly once. A failed exchange
// acks the fail counter instead; crossing the impossibility bound
// (fails > m - quorum) rings the doorbell with the phase marked failed.
//
// # Exactly-once accounting
//
// Every enqueued item holds one reference on its record, released by
// exactly one ack: the reader's response or failure path, the
// dispatcher's drain of undelivered items while a connection is down,
// or the submitter's own undo when an enqueue times out before the item
// ever enters the ring. A record returns to the freelist only when it is
// retired AND its reference count is zero, so a straggler ack can never
// touch a record that has been recycled into a different logical op —
// the tag check just makes the straggler a no-op on the counters.
//
// # Straggler retirement
//
// A replica that accepts requests but stops answering cannot leak
// resources: the reader arms a read deadline whenever work is
// outstanding (armed by the dispatcher on send when the reader is idle,
// refreshed by the reader on every response), and a deadline expiry with
// outstanding entries fails the whole connection — every in-flight item
// is fail-acked, the socket is closed, and the dispatcher redials with
// backoff. This is the deterministic answer to PR 9's
// goroutine-blocked-on-send straggler audit: there is no per-op
// goroutine to leak, and per-conn state is reclaimed on a timeout bound.
package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netreg"
	"repro/internal/obs"
	"repro/internal/wire"
)

const (
	// engineBufSize sizes each connection's read and write buffers
	// (matches netreg's clientBufSize).
	engineBufSize = 64 << 10
	// subDepth bounds each connection's submission ring. A full ring
	// parks the submitter in a deadline select; it never drops items.
	subDepth = 256
	// pendDepth bounds the sent-but-unanswered conveyor between a
	// dispatcher and its reader.
	pendDepth = 4096
	// engineFlushSpins mirrors netreg's flushSpins: scheduler yields
	// spent re-forming a batch before paying for a flush syscall.
	engineFlushSpins = 3
	// defaultTimeout bounds one phase (and one connection's read
	// silence) when Options.Timeout is zero.
	defaultTimeout = time.Second
	// redialMin/redialMax bound the down-connection redial backoff.
	redialMin = time.Millisecond
	redialMax = 100 * time.Millisecond
)

// Phase kinds, indexing qOpName.
const (
	kQRead uint8 = iota
	kQTS
	kQWrite
)

// qOpName maps phase kinds to wire op names. The strings are package
// constants, so setting req.Op from here never allocates.
var qOpName = [...]string{kQRead: "qread", kQTS: "qts", kQWrite: "qwrite"}

// subItem is one replica's share of a phase, passed by value through the
// submission ring (no boxing, no per-item allocation).
type subItem struct {
	s    *opState
	val  []byte // qwrite payload; aliases s.wval or s.val, pinned by the item's ref
	ts   int64
	tag  uint32
	wid  uint32
	kind uint8
	seal bool // first dequeue anywhere seals the combiner (see tryLead)
}

// opState is one pooled per-op record: phase progress, the running
// (ts, wid, value) maximum, the doorbell the waiter sleeps on, and the
// combining hand-off fields. Records are recycled through the arena
// freelist; the tag distinguishes incarnations so straggler acks from a
// previous phase (or a previous op) cannot corrupt the current one.
//
// Every phase field is guarded by mu. Helpers on the ack hot path
// (merge, and the resolve switch that calls it) run with mu already
// held by the caller — the sharedfield pass's must-hold dataflow is
// per-function and cannot see a caller-held lock, hence the waiver.
// The race detector covers the same property dynamically: the whole
// replica test suite runs under -race in CI.
//
//bloom:allowshared
type opState struct {
	slot  uint32
	db    chan struct{} // doorbell, capacity 1
	timer *time.Timer   // reused for every deadline wait this op performs

	mu      sync.Mutex
	tag     uint32
	refs    int32
	retired bool

	// Current phase, guarded by mu.
	phaseKind   uint8
	need, total int
	oks, fails  int
	done        bool
	phaseFailed bool
	agree       bool
	haveBest    bool
	bestTS      int64
	bestWID     uint32
	bestIdx     int
	val         []byte // merged best value (owned; reused across ops)
	wval        []byte // write payload copy (owned; reused across ops)

	// Combining follower hand-off, guarded by the combiner's mutex.
	followers []*opState
	leader    *opState
	fDone     bool
	fErr      error
	fTS       int64
	fWID      uint32
}

// ring rings the doorbell without blocking. Callers hold s.mu and only
// ring on the done transition, so at most one token is ever pending.
//
//bloom:noalloc
func (s *opState) ring() {
	select {
	case s.db <- struct{}{}:
	default:
	}
}

// beginPhase retags the record for a fresh phase, invalidating straggler
// acks, and returns the new tag.
//
//bloom:noalloc
func (s *opState) beginPhase(kind uint8, need, total int) uint32 {
	s.mu.Lock()
	s.tag++
	tag := s.tag
	s.phaseKind = kind
	s.need, s.total = need, total
	s.oks, s.fails = 0, 0
	s.done, s.phaseFailed = false, false
	s.agree, s.haveBest = true, false
	s.mu.Unlock()
	select { // defensive: no stale token can survive a completed phase
	case <-s.db:
	default:
	}
	return tag
}

// merge folds one value-carrying reply into the running maximum. Caller
// holds s.mu. The value copy is mandatory: resp.Val aliases the reader's
// frame buffer, which the next ReadResponse reuses.
//
//bloom:noalloc
func (s *opState) merge(resp *wire.Response, idx int) {
	if !s.haveBest {
		s.haveBest = true
		s.bestTS, s.bestWID, s.bestIdx = resp.Stamp, resp.WID, idx
		if s.phaseKind == kQRead {
			s.val = append(s.val[:0], resp.Val...)
		}
		return
	}
	if resp.Stamp != s.bestTS || resp.WID != s.bestWID {
		s.agree = false
	}
	if newer(resp.Stamp, resp.WID, s.bestTS, s.bestWID) {
		s.bestTS, s.bestWID, s.bestIdx = resp.Stamp, resp.WID, idx
		if s.phaseKind == kQRead {
			s.val = append(s.val[:0], resp.Val...)
		}
	}
}

// arena pools opState records. Lookup by slot is lock-free (a
// copy-on-write snapshot of the slot table) because the reader resolves
// acks on the hot path; get/put take the freelist mutex.
type arena struct {
	slots atomic.Pointer[[]*opState]

	mu   sync.Mutex
	free []uint32
}

// get pops a recycled record, or grows the arena (the cold, amortized
// path: steady state always pops).
//
//bloom:allowalloc
func (a *arena) get() *opState {
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		slot := a.free[n-1]
		a.free = a.free[:n-1]
		s := (*a.slots.Load())[slot]
		a.mu.Unlock()
		s.mu.Lock()
		s.retired = false
		s.mu.Unlock()
		return s
	}
	var cur []*opState
	if sp := a.slots.Load(); sp != nil {
		cur = *sp
	}
	s := &opState{slot: uint32(len(cur)), db: make(chan struct{}, 1)}
	s.timer = time.NewTimer(time.Hour)
	s.timer.Stop()
	grown := make([]*opState, len(cur)+1)
	copy(grown, cur)
	grown[len(cur)] = s
	a.slots.Store(&grown)
	a.mu.Unlock()
	return s
}

// put returns a record to the freelist. Callers guarantee retired &&
// refs == 0 (the exactly-once recycling condition).
//
//bloom:noalloc
func (a *arena) put(s *opState) {
	a.mu.Lock()
	a.free = appendSlot(a.free, s.slot)
	a.mu.Unlock()
}

// appendSlot grows the freelist; amortized (the freelist high-water mark
// is the concurrency level, reached once).
//
//bloom:allowalloc
func appendSlot(free []uint32, slot uint32) []uint32 {
	return append(free, slot)
}

// combiner tracks the current unsealed leader read (see tryLead).
type combiner struct {
	mu  sync.Mutex
	cur *opState
}

// econn is one replica's persistent connection machinery: the submission
// ring callers push phases onto, the dispatcher goroutine that owns the
// socket's write side, and one reader goroutine per connection
// generation. up gates fast-fail submission while the connection is
// down; armed coordinates the read-deadline watchdog between dispatcher
// and reader.
type econn struct {
	q    *QClient
	idx  int
	addr string

	sub   chan subItem
	pend  chan uint64
	up    atomic.Bool
	armed atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	lastErr error
}

// fault records the connection's most recent transport error (surfaced
// through QuorumError).
func (e *econn) fault(err error) {
	e.mu.Lock()
	e.lastErr = err
	e.mu.Unlock()
}

// lastError returns the most recent transport error, if any.
func (e *econn) lastError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// dispatch is the connection's owner goroutine: serve the submission
// ring over one connection generation, tear the generation down on any
// fault, redial with backoff, repeat. It exits only on Close.
func (e *econn) dispatch(conn net.Conn) {
	defer close(e.done)
	bw := bufio.NewWriterSize(conn, engineBufSize)
	wr := wire.NewWriter(wire.Binary, bw)
	var req wire.Request
	req.Reg = e.q.reg
	for {
		e.up.Store(true)
		readerEnd := make(chan struct{})
		go e.readLoop(conn, readerEnd)
		e.serve(conn, wr, &req, readerEnd)
		e.up.Store(false)
		conn.Close()
		<-readerEnd   // reader has fail-acked everything it adopted
		e.drainPend() // fail-ack sent entries the reader never adopted
		select {
		case <-e.stop:
			e.drainSub()
			return
		default:
		}
		conn = e.redial()
		if conn == nil {
			e.drainSub()
			return
		}
		bw.Reset(conn)
	}
}

// serve pumps the submission ring onto one connection generation,
// spin-batching flushes like netreg's writeLoop. It returns when the
// generation is broken (write fault or reader death) or the client is
// closing.
func (e *econn) serve(conn net.Conn, wr *wire.Writer, req *wire.Request, readerEnd chan struct{}) {
	for {
		select {
		case <-e.stop:
			return
		case <-readerEnd:
			return
		case it := <-e.sub:
			if !e.emit(wr, req, it, readerEnd) {
				return
			}
			for spin := 0; spin < engineFlushSpins; spin++ {
			drain:
				for {
					select {
					case it := <-e.sub:
						if !e.emit(wr, req, it, readerEnd) {
							return
						}
						spin = 0
					default:
						break drain
					}
				}
				runtime.Gosched()
			}
			if err := wr.Flush(); err != nil {
				e.fault(err)
				return
			}
			e.arm(conn)
		}
	}
}

// emit buffers one item's frame and pushes its id onto the pending
// conveyor. On failure the item is fail-acked here (it never reached the
// conveyor, so nobody else will).
func (e *econn) emit(wr *wire.Writer, req *wire.Request, it subItem, readerEnd chan struct{}) bool {
	if it.seal {
		e.q.seal(it.s)
	}
	id := uint64(it.tag)<<32 | uint64(it.s.slot)
	req.ID = id
	req.Op = qOpName[it.kind]
	req.TS = it.ts
	req.WID = it.wid
	req.Val = it.val
	if err := wr.WriteRequest(req); err != nil {
		e.fault(err)
		e.q.ack(id, false, nil, e.idx)
		return false
	}
	e.q.ws.FrameOut()
	select {
	case e.pend <- id:
		return true
	case <-readerEnd:
		e.q.ack(id, false, nil, e.idx)
		return false
	}
}

// arm starts the read-deadline watchdog if the reader is idle: the
// deadline covers the silence between this send and the first response.
// The reader takes the watchdog over (refreshing per response) once it
// has outstanding entries in hand.
func (e *econn) arm(conn net.Conn) {
	if e.armed.CompareAndSwap(false, true) {
		conn.SetReadDeadline(time.Now().Add(e.q.timeout + e.q.timeout/2))
	}
}

// readLoop owns the connection's read side for one generation:
// correlate responses to conveyor entries, ack them, and kill the
// connection when outstanding work sees read silence past the deadline.
// Any exit fail-acks every adopted entry exactly once.
func (e *econn) readLoop(conn net.Conn, end chan struct{}) {
	defer close(end)
	rd := wire.NewReader(wire.Binary, bufio.NewReaderSize(conn, engineBufSize))
	var outs []uint64
	var resp wire.Response
	for {
		outs = e.adopt(outs)
		if len(outs) == 0 {
			// Disarm before the final adopt: a dispatcher that pushes
			// after that adopt sees armed == false and arms the deadline
			// itself, so there is no window where work is outstanding and
			// no deadline is set.
			e.armed.Store(false)
			conn.SetReadDeadline(time.Time{})
			if outs = e.adopt(outs); len(outs) > 0 {
				e.rearm(conn)
			}
		} else {
			e.rearm(conn)
		}
		if err := rd.ReadResponse(&resp); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if outs = e.adopt(outs); len(outs) == 0 {
					// Idle expiry with nothing outstanding: every request
					// has been answered and consumed, so no frame can be
					// mid-flight — the stream is clean, keep reading.
					continue
				}
			}
			e.fault(err)
			for _, id := range outs {
				e.q.ack(id, false, nil, e.idx)
			}
			return
		}
		e.q.ws.FrameIn()
		i := findID(outs, resp.ID)
		if i < 0 {
			outs = e.adopt(outs)
			i = findID(outs, resp.ID)
		}
		if i < 0 {
			continue // duplicate or unknown id: no entry, no ref, drop it
		}
		outs[i] = outs[len(outs)-1]
		outs = outs[:len(outs)-1]
		e.q.ack(resp.ID, resp.Err == "", &resp, e.idx)
	}
}

// rearm refreshes the watchdog: the connection is failed only after
// timeout-and-a-half of total read silence while work is outstanding.
func (e *econn) rearm(conn net.Conn) {
	e.armed.Store(true)
	conn.SetReadDeadline(time.Now().Add(e.q.timeout + e.q.timeout/2))
}

// findID locates id in outs (responses arrive near-FIFO, so the scan is
// effectively O(1)).
//
//bloom:noalloc
func findID(outs []uint64, id uint64) int {
	for i, v := range outs {
		if v == id {
			return i
		}
	}
	return -1
}

// adopt drains the pending conveyor into the reader's working set.
//
//bloom:allowalloc
func (e *econn) adopt(outs []uint64) []uint64 {
	for {
		select {
		case id := <-e.pend:
			outs = append(outs, id)
		default:
			return outs
		}
	}
}

// drainPend fail-acks sent entries the dead generation's reader never
// adopted.
func (e *econn) drainPend() {
	for {
		select {
		case id := <-e.pend:
			e.q.ack(id, false, nil, e.idx)
		default:
			return
		}
	}
}

// drainSub fail-acks items still sitting in the submission ring (the
// connection is down or closing; they were never sent). Seal flags still
// take effect — a combining leader must be sealed even if its query
// never reached a socket.
func (e *econn) drainSub() {
	for {
		select {
		case it := <-e.sub:
			if it.seal {
				e.q.seal(it.s)
			}
			e.q.ack(uint64(it.tag)<<32|uint64(it.s.slot), false, nil, e.idx)
		default:
			return
		}
	}
}

// redial reconnects with capped exponential backoff, fail-acking
// anything submitted meanwhile. Returns nil when the client is closing.
func (e *econn) redial() net.Conn {
	backoff := redialMin
	for {
		e.drainSub()
		conn, err := e.q.dialRaw(e.addr)
		if err == nil {
			return conn
		}
		e.fault(err)
		t := time.NewTimer(backoff)
		select {
		case <-e.stop:
			t.Stop()
			return nil
		case <-t.C:
		}
		if backoff *= 2; backoff > redialMax {
			backoff = redialMax
		}
	}
}

// QClient is a quorum client over m replicas, built on the persistent
// engine (see the file comment). All methods are safe for concurrent
// use; one QClient is one writer identity. Concurrent same-key reads
// combine: followers piggyback on the leader's in-flight quorum query
// and complete in zero rounds of their own (Options.NoCombine opts
// out). ModeFast clients additionally elide a read's write-back when a
// quorum is already known to hold the candidate (ts, wid) — the
// watermark raised by earlier writes, write-backs, and unanimous
// queries — so repeat reads of a settled register take the one-round
// path even when a straggler replica lags.
type QClient struct {
	conns   []*econn
	quorum  int
	mode    Mode
	wid     uint32
	reg     string
	tally   *obs.Replica
	tap     *qTap
	timeout time.Duration
	dialer  func(addr string) (net.Conn, error)
	ws      *obs.Wire

	pool arena
	comb *combiner // nil: combining disabled (frugal mode or NoCombine)

	// Acked watermark: the newest (ts, wid) proven held by a full
	// quorum. Monotone; used by ModeFast write-back elision.
	wmMu   sync.Mutex
	wmTS   int64
	wmWID  uint32
	haveWM bool
}

// Dial connects one persistent engine connection per replica address and
// returns a quorum client over them. Dialing fails if any replica is
// unreachable at start (a cluster that begins degraded is a deployment
// error, not a fault to tolerate); after that, a crashed replica
// degrades to instant local failures while its dispatcher redials with
// backoff.
func Dial(addrs []string, o Options) (*QClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("replica: no replica addresses")
	}
	timeout := o.Timeout
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	q := &QClient{
		quorum:  len(addrs)/2 + 1,
		mode:    o.Mode,
		wid:     o.WriterID,
		reg:     o.Register,
		tally:   o.Tally,
		timeout: timeout,
		dialer:  o.Dialer,
		ws:      o.Wire,
	}
	if o.Journal != nil {
		q.tap = newQTap(o.Journal, o.Register)
	}
	if o.Mode != ModeFrugal && !o.NoCombine {
		q.comb = &combiner{}
	}
	for i, a := range addrs {
		e := &econn{
			q:    q,
			idx:  i,
			addr: a,
			sub:  make(chan subItem, subDepth),
			pend: make(chan uint64, pendDepth),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		conn, err := q.dialRaw(a)
		if err != nil {
			for _, d := range q.conns {
				d.stopOnce.Do(func() { close(d.stop) })
			}
			for _, d := range q.conns {
				<-d.done
			}
			return nil, fmt.Errorf("replica: dialing %s: %w", a, err)
		}
		q.conns = append(q.conns, e)
		go e.dispatch(conn)
	}
	return q, nil
}

// dialRaw opens one replica connection, via Options.Dialer when set
// (the fault-injection hook), wrapped for byte counting when
// Options.Wire is set.
func (q *QClient) dialRaw(addr string) (net.Conn, error) {
	var c net.Conn
	var err error
	if q.dialer != nil {
		c, err = q.dialer(addr)
	} else {
		c, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	if q.ws != nil {
		c = netreg.StatConn(c, q.ws)
	}
	return c, nil
}

// Quorum returns the majority size the client waits for.
func (q *QClient) Quorum() int { return q.quorum }

// Mode returns the client's protocol variant.
func (q *QClient) Mode() Mode { return q.mode }

// Close shuts the engine down: every dispatcher tears its connection
// down, fail-acks whatever is still queued, and exits. Concurrent
// operations fail with ErrNoQuorum. The journal tap, if any, is closed
// so it stops holding the journal horizon back.
func (q *QClient) Close() error {
	if q.tap != nil {
		q.tap.close()
	}
	for _, e := range q.conns {
		e.stopOnce.Do(func() { close(e.stop) })
	}
	for _, e := range q.conns {
		<-e.done
	}
	return nil
}

// seal closes the combining window for s: once any dispatcher has
// dequeued one of the leader's phase-1 items (and therefore before any
// request byte hits a socket), new readers must not join — a follower's
// result is only sound if every quorum contact happened inside the
// follower's own (Inv, Res) interval, which joining before the first
// send guarantees. Idempotent across the m dispatchers.
func (q *QClient) seal(s *opState) {
	q.comb.mu.Lock()
	if q.comb.cur == s {
		q.comb.cur = nil
	}
	q.comb.mu.Unlock()
}

// ack resolves one enqueued item: always releases its reference, and —
// when the tag still matches the record's current phase and the phase is
// still undecided — folds the outcome into the counters, ringing the
// doorbell on the deciding transition. Recycles the record when the last
// straggler of a retired op drains.
//
//bloom:noalloc
func (q *QClient) ack(id uint64, ok bool, resp *wire.Response, idx int) {
	slot := uint32(id)
	tag := uint32(id >> 32)
	sp := q.pool.slots.Load()
	if sp == nil || int(slot) >= len(*sp) {
		return
	}
	s := (*sp)[slot]
	s.mu.Lock()
	s.refs--
	freeNow := s.retired && s.refs == 0
	if tag == s.tag && !s.done {
		if ok {
			if s.phaseKind != kQWrite {
				s.merge(resp, idx)
			}
			s.oks++
			if s.oks >= s.need {
				s.done = true
				s.ring()
			}
		} else {
			s.fails++
			if s.fails > s.total-s.need {
				s.done, s.phaseFailed = true, true
				s.ring()
			}
		}
	}
	s.mu.Unlock()
	if freeNow {
		q.pool.put(s)
	}
	q.tally.RecordReplica(idx, ok)
}

// oneFail counts a target that could not even be submitted to (down
// connection, full ring): a phase failure with no reference attached.
//
//bloom:noalloc
func (q *QClient) oneFail(s *opState, tag uint32, idx int) {
	s.mu.Lock()
	if tag == s.tag && !s.done {
		s.fails++
		if s.fails > s.total-s.need {
			s.done, s.phaseFailed = true, true
			s.ring()
		}
	}
	s.mu.Unlock()
	q.tally.RecordReplica(idx, false)
}

// enqueue pushes one item onto a connection's submission ring: a down
// connection fails instantly, a full ring parks the submitter until the
// phase deadline. The reference is taken before the send so the ack can
// never race the increment; the timeout path undoes it because the item
// provably never entered the ring.
//
//bloom:noalloc
func (q *QClient) enqueue(e *econn, s *opState, it subItem, deadline time.Time) {
	if !e.up.Load() {
		q.oneFail(s, it.tag, e.idx)
		return
	}
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
	select {
	case e.sub <- it:
		return
	default:
	}
	s.timer.Reset(time.Until(deadline))
	select {
	case e.sub <- it:
		s.timer.Stop()
	case <-s.timer.C:
		s.mu.Lock()
		s.refs--
		s.mu.Unlock()
		q.oneFail(s, it.tag, e.idx)
	}
}

// runPhase runs one quorum round: target < 0 fans out to every replica
// and waits for a majority; target >= 0 is a single-replica exchange
// (the frugal fetch). Returns false when the phase failed (no quorum
// within the deadline).
//
//bloom:noalloc
func (q *QClient) runPhase(s *opState, kind uint8, target int, ts int64, wid uint32, val []byte, seal bool) bool {
	need, total := q.quorum, len(q.conns)
	if target >= 0 {
		need, total = 1, 1
	}
	tag := s.beginPhase(kind, need, total)
	it := subItem{s: s, tag: tag, kind: kind, seal: seal, ts: ts, wid: wid, val: val}
	deadline := time.Now().Add(q.timeout)
	if target >= 0 {
		q.enqueue(q.conns[target], s, it, deadline)
	} else {
		for _, e := range q.conns {
			q.enqueue(e, s, it, deadline)
		}
	}
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if !done {
		s.timer.Reset(time.Until(deadline))
		select {
		case <-s.db:
			s.timer.Stop()
		case <-s.timer.C:
			s.mu.Lock()
			if !s.done {
				s.done, s.phaseFailed = true, true
			}
			s.mu.Unlock()
		}
	}
	select { // a completion that raced the timeout left its token behind
	case <-s.db:
	default:
	}
	s.mu.Lock()
	failed := s.phaseFailed
	s.mu.Unlock()
	return !failed
}

// retire returns a finished op's record to the pool — immediately when
// no straggler acks are outstanding, otherwise the last straggler does
// it. The tag bump makes any still-queued item a counted no-op.
//
//bloom:noalloc
func (q *QClient) retire(s *opState) {
	select {
	case <-s.db:
	default:
	}
	s.mu.Lock()
	s.tag++
	freeNow := s.refs == 0
	if !freeNow {
		s.retired = true
	}
	s.mu.Unlock()
	if freeNow {
		q.pool.put(s)
	}
}

// raiseWM advances the acked watermark to (ts, wid) — called only after
// a full quorum has acked that stamp (completed write phase, completed
// write-back, or unanimous phase-1 agreement).
//
//bloom:noalloc
func (q *QClient) raiseWM(ts int64, wid uint32) {
	q.wmMu.Lock()
	if !q.haveWM || newer(ts, wid, q.wmTS, q.wmWID) {
		q.wmTS, q.wmWID, q.haveWM = ts, wid, true
	}
	q.wmMu.Unlock()
}

// wmCovers reports whether a quorum is already known to hold a stamp at
// least as new as (ts, wid) — the write-back elision condition. Sound
// because q-cells are monotone: the watermark quorum holds >= the
// watermark forever, and any later read's query majority intersects it,
// so no later read can return older than (ts, wid).
//
//bloom:noalloc
func (q *QClient) wmCovers(ts int64, wid uint32) bool {
	q.wmMu.Lock()
	ok := q.haveWM && !newer(ts, wid, q.wmTS, q.wmWID)
	q.wmMu.Unlock()
	return ok
}

// tryLead claims the combining leadership for s, or joins s as a
// follower of the current unsealed leader. Returns true when s leads.
//
//bloom:noalloc
func (q *QClient) tryLead(s *opState) bool {
	q.comb.mu.Lock()
	if cur := q.comb.cur; cur != nil {
		s.leader = cur
		s.fDone = false
		s.fErr = nil
		joinFollower(cur, s)
		q.comb.mu.Unlock()
		return false
	}
	q.comb.cur = s
	q.comb.mu.Unlock()
	return true
}

// joinFollower appends f to the leader's follower set (comb.mu held).
// Amortized: the slice is reset to length 0 at delivery, so its capacity
// tracks the high-water follower count.
//
//bloom:allowalloc
func joinFollower(leader, f *opState) {
	leader.followers = append(leader.followers, f)
}

// deliver hands the leader's read outcome to every follower that joined
// before the query was sealed, then drops leadership if the seal never
// fired (the all-connections-down case). Runs for failures too — a
// follower must never be left waiting on a leader that has given up.
//
//bloom:noalloc
func (q *QClient) deliver(s *opState, ts int64, wid uint32, err error) {
	q.comb.mu.Lock()
	if q.comb.cur == s {
		q.comb.cur = nil
	}
	for _, f := range s.followers {
		f.fTS, f.fWID, f.fErr = ts, wid, err
		if err == nil {
			f.val = appendVal(f.val[:0], s.val)
		}
		f.fDone = true
		f.ring()
	}
	s.followers = s.followers[:0]
	q.comb.mu.Unlock()
}

// appendVal copies src into the follower's owned buffer (amortized: the
// buffer is reused across the record's lifetimes).
//
//bloom:allowalloc
func appendVal(dst, src []byte) []byte {
	return append(dst, src...)
}

// followWait parks a combining follower on its doorbell until the leader
// delivers (or the deadline passes — generous enough for the leader's
// two phases plus slack, so it only fires when the leader itself is
// stuck past its own timeouts).
//
//bloom:noalloc
func (q *QClient) followWait(s *opState, buf []byte, start time.Time, inv, handle int64) ([]byte, int64, uint32, error) {
	s.timer.Reset(2*q.timeout + q.timeout/2)
	select {
	case <-s.db:
		s.timer.Stop()
	case <-s.timer.C:
		q.comb.mu.Lock()
		if !s.fDone {
			detachFollower(s.leader, s)
			q.comb.mu.Unlock()
			q.tally.RecordNoQuorum(obs.QRead)
			q.tap.record(obs.JRead, nil, inv, handle, true)
			q.retire(s)
			return nil, 0, 0, errCombinedTimeout
		}
		q.comb.mu.Unlock()
		select { // delivery raced the timeout; consume its token
		case <-s.db:
		default:
		}
	}
	if s.fErr != nil {
		err := s.fErr
		q.tally.RecordNoQuorum(obs.QRead)
		q.tap.record(obs.JRead, nil, inv, handle, true)
		q.retire(s)
		return nil, 0, 0, err
	}
	buf = appendVal(buf[:0], s.val)
	ts, wid := s.fTS, s.fWID
	q.tap.record(obs.JRead, buf, inv, handle, false)
	q.tally.RecordOp(obs.QRead, 0, time.Since(start))
	q.retire(s)
	return buf, ts, wid, nil
}

// errCombinedTimeout is returned by a follower whose leader never
// delivered within the combined deadline; static so the path allocates
// nothing.
var errCombinedTimeout = fmt.Errorf("%w: combined read timed out waiting for its leader query", ErrNoQuorum)

// detachFollower removes f from its leader's follower set (comb.mu
// held; the leader is alive because delivery — which empties the set —
// has not happened).
//
//bloom:noalloc
func detachFollower(leader, f *opState) {
	for i, g := range leader.followers {
		if g == f {
			leader.followers[i] = leader.followers[len(leader.followers)-1]
			leader.followers = leader.followers[:len(leader.followers)-1]
			return
		}
	}
}

// ReadInto performs one logical quorum read, appending the value into
// buf[:0] and returning it with the (ts, wid) it carried. This is the
// zero-allocation read path: with a recycled record, a warm freelist,
// and a caller-owned buffer, the steady state allocates nothing and
// spawns nothing.
//
//bloom:noalloc
func (q *QClient) ReadInto(buf []byte) ([]byte, int64, uint32, error) {
	start := time.Now()
	inv, handle := q.tap.begin()
	s := q.pool.get()
	if q.comb != nil && !q.tryLead(s) {
		return q.followWait(s, buf, start, inv, handle)
	}
	ts, wid, rounds, err := q.readEngine(s)
	if q.comb != nil {
		q.deliver(s, ts, wid, err)
	}
	if err != nil {
		q.tally.RecordNoQuorum(obs.QRead)
		q.tap.record(obs.JRead, nil, inv, handle, true)
		q.retire(s)
		return nil, 0, 0, err
	}
	buf = appendVal(buf[:0], s.val)
	q.tap.record(obs.JRead, buf, inv, handle, false)
	q.tally.RecordOp(obs.QRead, rounds, time.Since(start))
	q.retire(s)
	return buf, ts, wid, nil
}

// readEngine runs the mode's read phases on the engine, leaving the
// result in s.val / s.bestTS / s.bestWID.
//
//bloom:noalloc
func (q *QClient) readEngine(s *opState) (ts int64, wid uint32, rounds int, err error) {
	if q.mode == ModeFrugal {
		return q.readFrugalEngine(s)
	}
	if !q.runPhase(s, kQRead, -1, 0, 0, nil, q.comb != nil) {
		return 0, 0, 1, q.noQuorumErr()
	}
	ts, wid = s.bestTS, s.bestWID
	if q.mode == ModeFast {
		if s.agree {
			// Fast path: a unanimous majority already holds (ts, wid).
			q.raiseWM(ts, wid)
			return ts, wid, 1, nil
		}
		if q.wmCovers(ts, wid) {
			// Elision: the quorum acked >= (ts, wid) earlier (write,
			// write-back, or unanimous query), so the write-back below
			// would be a no-op at every intersecting majority.
			q.tally.RecordElided(obs.QRead)
			return ts, wid, 1, nil
		}
	}
	if !q.runPhase(s, kQWrite, -1, ts, wid, s.val, false) {
		return 0, 0, 2, q.noQuorumErr()
	}
	q.raiseWM(ts, wid)
	return ts, wid, 2, nil
}

// readFrugalEngine is ModeFrugal's read on the engine: constant-size
// timestamp query, single-replica value fetch (full-query fallback),
// write-back.
//
//bloom:noalloc
func (q *QClient) readFrugalEngine(s *opState) (int64, uint32, int, error) {
	if !q.runPhase(s, kQTS, -1, 0, 0, nil, false) {
		return 0, 0, 1, q.noQuorumErr()
	}
	p1ts, p1wid, src := s.bestTS, s.bestWID, s.bestIdx
	if !q.runPhase(s, kQRead, src, 0, 0, nil, false) || newer(p1ts, p1wid, s.bestTS, s.bestWID) {
		// The fetch target died between phases or answered stale — pay
		// the full ABD query instead.
		if !q.runPhase(s, kQRead, -1, 0, 0, nil, false) {
			return 0, 0, 2, q.noQuorumErr()
		}
	}
	ts, wid := s.bestTS, s.bestWID
	if !q.runPhase(s, kQWrite, -1, ts, wid, s.val, false) {
		return 0, 0, 2, q.noQuorumErr()
	}
	q.raiseWM(ts, wid)
	return ts, wid, 2, nil
}

// Read performs one logical quorum read, returning the raw JSON value in
// a fresh buffer (one allocation; use ReadInto to amortize it away).
func (q *QClient) Read() (json.RawMessage, error) {
	v, _, _, err := q.ReadStamped()
	return v, err
}

// ReadStamped performs one logical quorum read and returns the value
// with the (ts, wid) it carried, in a fresh buffer (one allocation; use
// ReadInto to amortize it away).
func (q *QClient) ReadStamped() (json.RawMessage, int64, uint32, error) {
	v, ts, wid, err := q.ReadInto(nil)
	return json.RawMessage(v), ts, wid, err
}

// Write performs one logical quorum write of raw JSON value val.
func (q *QClient) Write(val json.RawMessage) error {
	_, _, err := q.WriteStamped(val)
	return err
}

// WriteStamped performs one logical quorum write and returns the
// (ts, wid) it installed. val is copied into an owned buffer before the
// phases run (amortized across the record pool), so the caller may reuse
// it immediately.
//
//bloom:noalloc
func (q *QClient) WriteStamped(val json.RawMessage) (int64, uint32, error) {
	start := time.Now()
	inv, handle := q.tap.begin()
	s := q.pool.get()
	s.wval = appendVal(s.wval[:0], val)

	// Phase 1: learn a timestamp no completed write exceeds. ModeFrugal
	// asks for timestamps only.
	kind := kQRead
	if q.mode == ModeFrugal {
		kind = kQTS
	}
	if !q.runPhase(s, kind, -1, 0, 0, nil, false) {
		err := q.noQuorumErr()
		q.tally.RecordNoQuorum(obs.QWrite)
		q.tap.record(obs.JWrite, val, inv, handle, true)
		q.retire(s)
		return 0, 0, err
	}
	ts := s.bestTS + 1

	// Phase 2: install (ts, wid, val) at a majority.
	if !q.runPhase(s, kQWrite, -1, ts, q.wid, s.wval, false) {
		err := q.noQuorumErr()
		q.tally.RecordNoQuorum(obs.QWrite)
		q.tap.record(obs.JWrite, val, inv, handle, true)
		q.retire(s)
		return 0, 0, err
	}
	q.raiseWM(ts, q.wid)
	q.tap.record(obs.JWrite, val, inv, handle, false)
	q.tally.RecordOp(obs.QWrite, 2, time.Since(start))
	q.retire(s)
	return ts, q.wid, nil
}

// noQuorumErr builds the per-replica-attributed quorum failure (cold
// path; see QuorumError).
//
//bloom:allowalloc
func (q *QClient) noQuorumErr() error {
	qe := &QuorumError{Replicas: len(q.conns), Quorum: q.quorum}
	qe.causes = append(qe.causes, ErrNoQuorum)
	for i, e := range q.conns {
		if err := e.lastError(); err != nil {
			qe.causes = append(qe.causes, fmt.Errorf("replica %d: %w", i, err))
		}
	}
	return qe
}
